#include "control/autopilot/autopilot.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "control/autopilot/estimator.h"
#include "control/autopilot/policy.h"
#include "core/flat_tree.h"
#include "traffic/traces.h"

namespace flattree {
namespace {

constexpr double kInfPast = -std::numeric_limits<double>::infinity();

Controller make_controller() {
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  ControllerOptions opts;
  opts.count_rules = true;
  opts.delay.controllers = 24;
  opts.k_global = opts.k_local = opts.k_clos = 2;
  return Controller{FlatTree{params}, opts};
}

std::uint32_t k_for_assignment(const Controller& controller,
                               const ModeAssignment& assignment) {
  std::uint32_t k = 0;
  for (PodMode mode : assignment.pod_modes) {
    k = std::max(k, controller.k_for(mode));
  }
  return k;
}

// One cross-Pod record: server 0 of src_pod to server 0 of dst_pod.
obs::FlowRecord cross_pod(const ClosParams& layout, std::uint32_t src_pod,
                          std::uint32_t dst_pod, double bytes) {
  const std::uint32_t per_pod = layout.servers_per_edge * layout.edge_per_pod;
  obs::FlowRecord rec;
  rec.src = src_pod * per_pod;
  rec.dst = dst_pod * per_pod;
  rec.bytes = bytes;
  rec.completed = true;
  return rec;
}

// A demand estimate that unambiguously wants all-global from all-Clos:
// every directed Pod pair carries heavy cross-Pod mass.
DemandEstimate network_wide_estimate(const ClosParams& layout, double bytes) {
  TrafficMatrixEstimator est{layout, {.half_life_s = 1.0}};
  std::vector<obs::FlowRecord> records;
  for (std::uint32_t p = 0; p < layout.pods; ++p) {
    for (std::uint32_t q = 0; q < layout.pods; ++q) {
      if (p != q) records.push_back(cross_pod(layout, p, q, bytes));
    }
  }
  est.observe(records, 1.0);
  return est.estimate();
}

// --- TrafficMatrixEstimator ------------------------------------------------

TEST(AutopilotTest, EstimatorDecayHalvesMassPerHalfLife) {
  const ClosParams layout = ClosParams::testbed();
  TrafficMatrixEstimator est{layout, {.half_life_s = 2.0}};
  est.observe({cross_pod(layout, 0, 1, 1000.0)}, 0.0);
  EXPECT_DOUBLE_EQ(est.estimate().at(0, 1), 1000.0);

  est.advance_to(2.0);  // exactly one half-life
  EXPECT_DOUBLE_EQ(est.estimate().at(0, 1), 500.0);
  est.advance_to(6.0);  // two more
  EXPECT_DOUBLE_EQ(est.estimate().at(0, 1), 125.0);

  // The per-Pod profiles decay in lockstep with the matrix. A cross-Pod
  // flow is credited to both endpoint Pods' profiles but counts once in
  // the fabric-wide mass.
  const DemandEstimate e = est.estimate();
  EXPECT_DOUBLE_EQ(e.per_pod[0].inter_pod, 125.0);
  EXPECT_DOUBLE_EQ(e.per_pod[1].inter_pod, 125.0);
  EXPECT_DOUBLE_EQ(e.total_bytes, 125.0);
}

TEST(AutopilotTest, EstimatorClockNeverRunsBackwards) {
  const ClosParams layout = ClosParams::testbed();
  TrafficMatrixEstimator est{layout, {.half_life_s = 1.0}};
  est.observe({cross_pod(layout, 0, 1, 64.0)}, 4.0);
  est.advance_to(2.0);  // stale batch boundary: no-op
  EXPECT_DOUBLE_EQ(est.now(), 4.0);
  EXPECT_DOUBLE_EQ(est.estimate().at(0, 1), 64.0);
}

TEST(AutopilotTest, EstimatorStateSurvivesFailover) {
  const ClosParams layout = ClosParams::testbed();
  TrafficMatrixEstimator primary{layout, {.half_life_s = 1.5}};
  primary.observe({cross_pod(layout, 0, 2, 7e6),
                   cross_pod(layout, 1, 3, 3e6)},
                  1.0);
  primary.observe({cross_pod(layout, 2, 0, 5e6)}, 2.25);

  // Standby restores the snapshot mid-stream, then both fold the same
  // subsequent telemetry: every later estimate must be byte-exact equal.
  TrafficMatrixEstimator standby{layout, {.half_life_s = 1.5}};
  standby.restore(primary.state());
  const std::vector<obs::FlowRecord> later{cross_pod(layout, 3, 1, 9e6),
                                           cross_pod(layout, 0, 0, 2e6)};
  primary.observe(later, 3.5);
  standby.observe(later, 3.5);

  const DemandEstimate a = primary.estimate();
  const DemandEstimate b = standby.estimate();
  ASSERT_EQ(a.inter_pod.size(), b.inter_pod.size());
  for (std::size_t i = 0; i < a.inter_pod.size(); ++i) {
    EXPECT_EQ(a.inter_pod[i], b.inter_pod[i]) << "entry " << i;
  }
  for (std::size_t p = 0; p < a.per_pod.size(); ++p) {
    EXPECT_EQ(a.per_pod[p].intra_rack, b.per_pod[p].intra_rack);
    EXPECT_EQ(a.per_pod[p].intra_pod, b.per_pod[p].intra_pod);
    EXPECT_EQ(a.per_pod[p].inter_pod, b.per_pod[p].inter_pod);
    EXPECT_EQ(a.per_pod[p].total_bytes, b.per_pod[p].total_bytes);
  }
  EXPECT_EQ(a.total_bytes, b.total_bytes);
}

// --- ReconfigPolicy hysteresis edges ---------------------------------------

TEST(AutopilotTest, EmptyTelemetryColdStartHolds) {
  const Controller controller = make_controller();
  const ReconfigPolicy policy{controller, {}};
  TrafficMatrixEstimator est{controller.tree().clos(), {}};
  const CompiledMode current = controller.compile_uniform(PodMode::kClos);

  const PolicyDecision d =
      policy.evaluate(est.estimate(), current, 5.0, kInfPast);
  EXPECT_EQ(d.action, PolicyAction::kHold);
  EXPECT_EQ(d.hold_reason, HoldReason::kColdStart);
  EXPECT_FALSE(d.priced);  // nothing was forecast, nothing was compiled
  EXPECT_EQ(d.target.pod_modes, current.assignment().pod_modes);
}

TEST(AutopilotTest, DwellBoundaryIsExclusive) {
  const Controller controller = make_controller();
  ReconfigPolicyOptions opts;
  opts.min_dwell_s = 3.0;
  opts.min_gain_frac = 0.0;
  opts.gain_cost_multiple = 0.0;
  const ReconfigPolicy policy{controller, opts};
  const CompiledMode current = controller.compile_uniform(PodMode::kClos);
  const DemandEstimate estimate =
      network_wide_estimate(controller.tree().clos(), 1e9);

  // Inside the window (now - last < dwell): held, however good the move.
  const PolicyDecision held =
      policy.evaluate(estimate, current, 12.0, 9.0 + 1e-9);
  EXPECT_EQ(held.action, PolicyAction::kHold);
  EXPECT_EQ(held.hold_reason, HoldReason::kDwell);
  EXPECT_TRUE(held.priced);  // the decision log still carries gain/cost

  // Exactly at the boundary (now - last == dwell): the gate is strict `<`,
  // so the conversion goes through.
  const PolicyDecision fired = policy.evaluate(estimate, current, 12.0, 9.0);
  EXPECT_EQ(fired.action, PolicyAction::kConvert);
  EXPECT_EQ(fired.hold_reason, HoldReason::kNone);
}

TEST(AutopilotTest, DemandStepExactlyAtGainThreshold) {
  const Controller controller = make_controller();
  const CompiledMode current = controller.compile_uniform(PodMode::kClos);
  const DemandEstimate estimate =
      network_wide_estimate(controller.tree().clos(), 1e9);

  // First measure the priced gain with the floors at zero.
  ReconfigPolicyOptions base;
  base.min_dwell_s = 0.0;
  base.min_gain_frac = 0.0;
  base.gain_cost_multiple = 0.0;
  const PolicyDecision probe = ReconfigPolicy{controller, base}.evaluate(
      estimate, current, 10.0, kInfPast);
  ASSERT_EQ(probe.action, PolicyAction::kConvert);
  ASSERT_GT(probe.predicted_gain_s, 0.0);
  const double frac_at_gain =
      probe.predicted_gain_s / probe.predicted_current_fct_s;

  // A gain floor one ulp below the gain converts; one ulp above holds.
  // The gate is strict `<`: a demand step landing exactly on the threshold
  // fires (the boundary belongs to the conversion, pinned here from both
  // sides).
  ReconfigPolicyOptions below = base;
  below.min_gain_frac = std::nextafter(frac_at_gain, 0.0);
  const PolicyDecision fired = ReconfigPolicy{controller, below}.evaluate(
      estimate, current, 10.0, kInfPast);
  EXPECT_EQ(fired.action, PolicyAction::kConvert);

  ReconfigPolicyOptions above = base;
  above.min_gain_frac = std::nextafter(frac_at_gain, 1.0);
  const PolicyDecision held = ReconfigPolicy{controller, above}.evaluate(
      estimate, current, 10.0, kInfPast);
  EXPECT_EQ(held.action, PolicyAction::kHold);
  EXPECT_EQ(held.hold_reason, HoldReason::kGain);
}

TEST(AutopilotTest, OscillatingDemandBoundedByDwell) {
  const Controller controller = make_controller();
  const ClosParams& layout = controller.tree().clos();
  ReconfigPolicyOptions opts;
  opts.min_dwell_s = 3.0;
  opts.min_gain_frac = 0.0;
  opts.gain_cost_multiple = 0.0;
  const ReconfigPolicy policy{controller, opts};

  // Pod-local demand: every Pod talks only to itself, across racks.
  TrafficMatrixEstimator local_est{layout, {.half_life_s = 1.0}};
  {
    std::vector<obs::FlowRecord> records;
    const std::uint32_t per_rack = layout.servers_per_edge;
    for (std::uint32_t p = 0; p < layout.pods; ++p) {
      obs::FlowRecord rec = cross_pod(layout, p, p, 1e9);
      rec.dst += per_rack;  // cross-rack, same Pod
      records.push_back(rec);
    }
    local_est.observe(records, 1.0);
  }
  const DemandEstimate local = local_est.estimate();
  const DemandEstimate global = network_wide_estimate(layout, 1e9);

  // Flip the demand every 1 s for 12 s; conversions commit instantly (the
  // adversarial best case for thrash). The dwell alone must keep any two
  // conversions at least min_dwell_s apart.
  CompiledMode current = controller.compile_uniform(PodMode::kClos);
  double last_conversion = kInfPast;
  std::uint32_t conversions = 0;
  double prev_fire = kInfPast;
  for (std::uint32_t epoch = 1; epoch <= 12; ++epoch) {
    const double now = static_cast<double>(epoch);
    const DemandEstimate& estimate = epoch % 2 == 0 ? global : local;
    const PolicyDecision d =
        policy.evaluate(estimate, current, now, last_conversion);
    if (d.action != PolicyAction::kConvert) continue;
    ++conversions;
    if (prev_fire > kInfPast) {
      EXPECT_GE(now - prev_fire, opts.min_dwell_s)
          << "conversions closer than the dwell window";
    }
    prev_fire = now;
    last_conversion = now;
    current =
        controller.compile(d.target, k_for_assignment(controller, d.target));
  }
  EXPECT_GE(conversions, 1u);  // the loop did react
  EXPECT_LE(conversions, 4u);  // 12 s / 3 s dwell
}

// --- AutopilotLoop ---------------------------------------------------------

AutopilotResult run_small_loop(const Controller& controller) {
  TraceParams web = TraceParams::web();
  TraceParams hadoop = TraceParams::hadoop1();
  web.flows_per_s = hadoop.flows_per_s = 200.0;
  web.mean_flow_bytes = hadoop.mean_flow_bytes = 4e6;
  ModulatedTraceParams trace;
  trace.low = web;
  trace.high = hadoop;
  trace.duration_s = 6.0;
  trace.seed = 7;
  const Workload flows =
      generate_modulated_trace(controller.tree().clos(), trace);

  AutopilotOptions opts;
  opts.epoch_s = 1.0;
  opts.estimator.half_life_s = 1.0;
  opts.policy.min_dwell_s = 1.5;
  opts.policy.min_gain_frac = 0.05;
  opts.policy.flows_per_entry = 6;
  opts.policy.horizon_s = 2.0;
  opts.exec.stage_checkpoints = true;
  opts.exec.seed = 7;
  const AutopilotLoop loop{controller, opts};
  return loop.run(flows,
                  ModeAssignment::uniform(controller.tree().clos().pods,
                                          PodMode::kClos),
                  trace.duration_s);
}

TEST(AutopilotTest, DecisionLogReplays) {
  const Controller controller = make_controller();
  const AutopilotResult result = run_small_loop(controller);
  ASSERT_FALSE(result.epochs.empty());

  // Rebuild the policy from the loop's (derived) options and re-evaluate
  // every logged decision from its recorded inputs: the replay must match
  // the log bit-for-bit.
  AutopilotOptions opts;
  opts.epoch_s = 1.0;
  opts.estimator.half_life_s = 1.0;
  opts.policy.min_dwell_s = 1.5;
  opts.policy.min_gain_frac = 0.05;
  opts.policy.flows_per_entry = 6;
  opts.policy.horizon_s = 2.0;
  opts.exec.stage_checkpoints = true;
  opts.exec.seed = 7;
  const AutopilotLoop configured{controller, opts};
  const ReconfigPolicy policy{controller, configured.options().policy};

  for (const EpochRecord& rec : result.epochs) {
    const CompiledMode current = controller.compile(
        rec.assignment_at_decision,
        k_for_assignment(controller, rec.assignment_at_decision));
    const PolicyDecision replay = policy.evaluate(
        rec.estimate, current, rec.end_s, rec.last_conversion_s);
    EXPECT_EQ(replay.action, rec.decision.action) << "epoch " << rec.epoch;
    EXPECT_EQ(replay.hold_reason, rec.decision.hold_reason)
        << "epoch " << rec.epoch;
    EXPECT_EQ(replay.target.pod_modes, rec.decision.target.pod_modes)
        << "epoch " << rec.epoch;
    EXPECT_EQ(replay.predicted_current_fct_s,
              rec.decision.predicted_current_fct_s)
        << "epoch " << rec.epoch;
    EXPECT_EQ(replay.predicted_target_fct_s,
              rec.decision.predicted_target_fct_s)
        << "epoch " << rec.epoch;
    EXPECT_EQ(replay.predicted_gain_s, rec.decision.predicted_gain_s)
        << "epoch " << rec.epoch;
    EXPECT_EQ(replay.conversion_cost_s, rec.decision.conversion_cost_s)
        << "epoch " << rec.epoch;
    EXPECT_EQ(replay.priced, rec.decision.priced) << "epoch " << rec.epoch;
  }
}

TEST(AutopilotTest, LoopIsDeterministic) {
  const Controller controller = make_controller();
  const AutopilotResult a = run_small_loop(controller);
  const AutopilotResult b = run_small_loop(controller);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  EXPECT_EQ(a.fct_sum_s, b.fct_sum_s);
  EXPECT_EQ(a.conversions_started, b.conversions_started);
  EXPECT_EQ(a.final_assignment.pod_modes, b.final_assignment.pod_modes);
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].fct_sum_s, b.epochs[i].fct_sum_s) << "epoch " << i;
    EXPECT_EQ(a.epochs[i].decision.action, b.epochs[i].decision.action)
        << "epoch " << i;
  }
}

}  // namespace
}  // namespace flattree
