// Property tests for the pooled event engine's building blocks
// (sim/event_queue.h): the 4-ary indexed heap + arena, the ring queue, and
// the out-of-order bitmap. These are the structures the packet simulator's
// correctness now rests on, so each is fuzzed against the obvious oracle
// (std::priority_queue / std::deque / std::set) under deterministic Rng
// streams — run under ASan/UBSan/TSan via scripts/ci.sh.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <queue>
#include <set>
#include <vector>

#include "net/rng.h"

namespace flattree::sim {
namespace {

using Queue = EventQueue<std::uint32_t>;

TEST(EventQueue, PopsInTimeOrder) {
  Queue q;
  Rng rng{1};
  for (std::uint32_t i = 0; i < 1000; ++i) {
    q.push(rng.next_double(), i);
  }
  double last = -1.0;
  while (!q.empty()) {
    EXPECT_GE(q.top_time(), last);
    last = q.top_time();
    (void)q.pop();
  }
}

TEST(EventQueue, EqualTimestampsPopInPushOrder) {
  // The engine's tie-break contract: (time, push sequence) is a total
  // order, so same-time events come back FIFO regardless of interleaving.
  Queue q;
  q.push(2.0, 100);
  for (std::uint32_t i = 0; i < 64; ++i) q.push(1.0, i);
  q.push(0.5, 200);
  EXPECT_EQ(q.pop(), 200u);
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(q.pop(), i) << "equal-time events must pop in push order";
  }
  EXPECT_EQ(q.pop(), 100u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopOrderNonDecreasingUnderPushPopCancel) {
  // Random interleavings of push/pop/cancel under the simulator's
  // scheduling discipline (events land at or after "now", the last popped
  // time): the (time, seq) key of popped events must be non-decreasing,
  // with seq strictly increasing at equal times. Payload encodes the push
  // index so seq order is checkable.
  Rng rng{7};
  Queue q;
  std::vector<Queue::Handle> live;
  std::uint32_t pushed = 0;
  double last_t = 0.0;
  std::uint64_t pops = 0;
  std::uint32_t last_idx = 0;
  for (int op = 0; op < 50000; ++op) {
    const std::uint64_t roll = rng.next_below(10);
    if (roll < 5 || q.empty()) {
      // Coarse offsets off "now" force heavy ties (offset 0 = same time).
      const double t = last_t + static_cast<double>(rng.next_below(64));
      live.push_back(q.push(t, pushed++));
    } else if (roll < 8) {
      double t = 0.0;
      const std::uint32_t idx = q.pop(&t);
      EXPECT_GE(t, last_t);
      if (t == last_t && pops > 0) {
        EXPECT_GT(idx, last_idx) << "tie-break must follow push order";
      }
      last_t = t;
      last_idx = idx;
      ++pops;
    } else if (!live.empty()) {
      const std::size_t pick = rng.next_below(live.size());
      (void)q.cancel(live[pick]);  // may be stale; both outcomes legal
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  EXPECT_GT(pops, 1000u);
}

TEST(EventQueue, CancelRemovesExactlyOnce) {
  Queue q;
  const auto h1 = q.push(1.0, 1);
  const auto h2 = q.push(2.0, 2);
  const auto h3 = q.push(3.0, 3);
  EXPECT_TRUE(q.live(h2));
  EXPECT_TRUE(q.cancel(h2));
  EXPECT_FALSE(q.live(h2));
  EXPECT_FALSE(q.cancel(h2)) << "second cancel of the same handle is a no-op";
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), 3u);
  EXPECT_FALSE(q.cancel(h1)) << "cancel after pop must fail";
  (void)h3;
}

TEST(EventQueue, FreelistNeverDoubleVends) {
  // Churn slots hard; at every point the set of live handles must map to
  // distinct slots (a double-vended slot would alias two live events), and
  // a recycled slot's old handle must be dead (generation bumped).
  Rng rng{99};
  Queue q;
  std::vector<Queue::Handle> live;
  std::vector<Queue::Handle> retired;
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t roll = rng.next_below(3);
    if (roll == 0 || q.empty()) {
      live.push_back(q.push(rng.next_double(), 0));
    } else if (roll == 1) {
      (void)q.pop();
      // We don't know which handle that was; refresh liveness below.
    } else {
      const std::size_t pick = rng.next_below(live.size());
      if (q.cancel(live[pick])) retired.push_back(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    std::set<std::uint32_t> slots;
    for (const auto& h : live) {
      if (!q.live(h)) continue;  // popped out from under us
      EXPECT_TRUE(slots.insert(h.slot).second)
          << "two live handles share arena slot " << h.slot;
    }
    for (const auto& h : retired) {
      EXPECT_FALSE(q.live(h)) << "cancelled handle came back to life";
    }
    if (retired.size() > 64) retired.erase(retired.begin());
  }
  // Churn must have recycled: the arena stays near the live watermark
  // instead of growing with total pushes.
  EXPECT_LT(q.arena_slots(), q.pushes() / 2);
}

TEST(EventQueue, MillionOpFuzzAgainstPriorityQueue) {
  // 1e6 random push/pop/cancel ops cross-checked against
  // std::priority_queue with lazy deletion. Keys are (t, seq); the oracle
  // must agree on every popped (t, payload) and on emptiness throughout.
  struct Ref {
    double t;
    std::uint64_t seq;
    std::uint32_t payload;
    bool operator>(const Ref& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };
  Rng rng{20170821};
  Queue q;
  std::priority_queue<Ref, std::vector<Ref>, std::greater<>> ref;
  std::set<std::uint64_t> cancelled;                // seqs cancelled in q
  std::vector<std::pair<Queue::Handle, std::uint64_t>> live;  // handle, seq
  std::uint64_t seq = 0;
  std::uint32_t payload = 0;
  std::size_t in_ref = 0;  // non-cancelled elements in ref
  for (int op = 0; op < 1000000; ++op) {
    const std::uint64_t roll = rng.next_below(16);
    if (roll < 8 || in_ref == 0) {
      const double t = static_cast<double>(rng.next_below(1024)) / 8.0;
      live.emplace_back(q.push(t, payload), seq);
      ref.push(Ref{t, seq, payload});
      ++seq;
      ++payload;
      ++in_ref;
    } else if (roll < 14) {
      ASSERT_EQ(q.empty(), in_ref == 0);
      double t = 0.0;
      const std::uint32_t got = q.pop(&t);
      while (cancelled.count(ref.top().seq) > 0) {
        cancelled.erase(ref.top().seq);
        ref.pop();
      }
      ASSERT_EQ(t, ref.top().t);
      ASSERT_EQ(got, ref.top().payload);
      ref.pop();
      --in_ref;
    } else if (!live.empty()) {
      const std::size_t pick = rng.next_below(live.size());
      const auto [handle, s] = live[pick];
      if (q.cancel(handle)) {
        cancelled.insert(s);
        --in_ref;
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (live.size() > 4096) {
      live.erase(live.begin(), live.begin() + 2048);  // forget, don't cancel
    }
  }
  ASSERT_EQ(q.empty(), in_ref == 0);
}

TEST(RingQueue, FuzzAgainstDeque) {
  Rng rng{3};
  RingQueue<std::uint64_t> ring;
  std::deque<std::uint64_t> ref;
  for (int op = 0; op < 200000; ++op) {
    const std::uint64_t roll = rng.next_below(16);
    if (roll < 9 || ref.empty()) {
      const std::uint64_t v = rng();
      ring.push_back(v);
      ref.push_back(v);
    } else if (roll < 15) {
      ASSERT_EQ(ring.front(), ref.front());
      ring.pop_front();
      ref.pop_front();
    } else {
      ring.clear();
      ref.clear();
    }
    ASSERT_EQ(ring.size(), ref.size());
    ASSERT_EQ(ring.empty(), ref.empty());
    if (!ref.empty()) {
      ASSERT_EQ(ring.front(), ref.front());
    }
  }
}

TEST(SeqWindow, FuzzAgainstSet) {
  // The receiver access pattern, including the advancing-ack erase loop
  // and far-ahead inserts after the window drained.
  Rng rng{11};
  SeqWindow window;
  std::set<std::uint32_t> ref;
  std::uint32_t base = 0;
  for (int op = 0; op < 200000; ++op) {
    const std::uint64_t roll = rng.next_below(8);
    if (roll < 5) {
      const std::uint32_t s =
          base + 1 + static_cast<std::uint32_t>(rng.next_below(512));
      window.insert(s);
      ref.insert(s);
    } else if (roll < 7) {
      // Advance the ack point as on_data_at_receiver does.
      ++base;
      while (true) {
        const bool had = ref.erase(base) > 0;
        ASSERT_EQ(window.erase(base), had);
        if (!had) break;
        ++base;
      }
    } else {
      const std::uint32_t probe =
          base + static_cast<std::uint32_t>(rng.next_below(600));
      ASSERT_EQ(window.contains(probe), ref.count(probe) > 0);
    }
    ASSERT_EQ(window.size(), ref.size());
    ASSERT_EQ(window.empty(), ref.empty());
    if (rng.next_below(1024) == 0) {
      // Occasionally leap far ahead (mimics a conversion restarting the
      // stream): drain everything, then jump the base.
      for (const std::uint32_t s : ref) ASSERT_TRUE(window.erase(s));
      ref.clear();
      ASSERT_TRUE(window.empty());
      base += 1u << 20;
    }
  }
}

}  // namespace
}  // namespace flattree::sim
