#include <gtest/gtest.h>

#include <sstream>

#include "core/flat_tree.h"
#include "net/dot.h"
#include "topo/clos.h"
#include "traffic/apps.h"
#include "traffic/io.h"
#include "traffic/traces.h"

namespace flattree {
namespace {

// ---------- workload CSV -----------------------------------------------------

TEST(WorkloadCsv, RoundTripSimpleFlows) {
  Workload flows;
  flows.push_back(Flow{1, 2, 1000.0, 0.5});
  flows.push_back(Flow{3, 4, 2e6, 1.25});
  const Workload parsed = workload_from_csv(workload_to_csv(flows));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].src, 1u);
  EXPECT_EQ(parsed[0].dst, 2u);
  EXPECT_DOUBLE_EQ(parsed[0].bytes, 1000.0);
  EXPECT_DOUBLE_EQ(parsed[1].start_s, 1.25);
}

TEST(WorkloadCsv, RoundTripDependencies) {
  BroadcastParams p;
  p.num_workers = 6;
  p.iterations = 2;
  const Workload flows = spark_broadcast(p);
  const Workload parsed = workload_from_csv(workload_to_csv(flows));
  ASSERT_EQ(parsed.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(parsed[i].src, flows[i].src);
    EXPECT_EQ(parsed[i].dst, flows[i].dst);
    EXPECT_EQ(parsed[i].depends_on, flows[i].depends_on);
    EXPECT_DOUBLE_EQ(parsed[i].dep_delay_s, flows[i].dep_delay_s);
  }
}

TEST(WorkloadCsv, RoundTripGeneratedTrace) {
  TraceParams params = TraceParams::web();
  params.duration_s = 0.05;
  const Workload flows = generate_trace(ClosParams::topo2(), params);
  const Workload parsed = workload_from_csv(workload_to_csv(flows));
  ASSERT_EQ(parsed.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); i += 7) {
    EXPECT_DOUBLE_EQ(parsed[i].bytes, flows[i].bytes);
  }
}

TEST(WorkloadCsv, SkipsCommentsAndBlankLines) {
  const Workload parsed = workload_from_csv(
      "# header\n"
      "\n"
      "0,1,100,0\n"
      "# trailing comment\n"
      "1,0,200,0.5\n");
  EXPECT_EQ(parsed.size(), 2u);
}

TEST(WorkloadCsv, MinimalFourFieldForm) {
  const Workload parsed = workload_from_csv("7,9,5e6,2.0\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed[0].bytes, 5e6);
  EXPECT_TRUE(parsed[0].depends_on.empty());
}

TEST(WorkloadCsv, WindowsLineEndings) {
  const Workload parsed = workload_from_csv("0,1,100,0\r\n1,0,100,0\r\n");
  EXPECT_EQ(parsed.size(), 2u);
}

TEST(WorkloadCsv, RejectsBadFieldCounts) {
  EXPECT_THROW((void)workload_from_csv("1,2,3\n"), std::invalid_argument);
  EXPECT_THROW((void)workload_from_csv("1,2,3,4,5,6,7\n"),
               std::invalid_argument);
}

TEST(WorkloadCsv, RejectsGarbage) {
  EXPECT_THROW((void)workload_from_csv("a,2,3,4\n"), std::invalid_argument);
  EXPECT_THROW((void)workload_from_csv("1,2,xyz,4\n"), std::invalid_argument);
}

TEST(WorkloadCsv, RejectsForwardDependencies) {
  EXPECT_THROW((void)workload_from_csv("0,1,100,0,0,1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)workload_from_csv("0,1,100,0,0,7\n0,2,100,0\n"),
               std::invalid_argument);
}

TEST(WorkloadCsv, ErrorMessagesNameTheLine) {
  try {
    (void)workload_from_csv("0,1,100,0\nbroken\n");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

// ---------- DOT export -------------------------------------------------------

TEST(DotExport, ContainsAllNodesAndLinks) {
  const Graph g = build_clos(ClosParams::testbed());
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph flattree {"), std::string::npos);
  // 20 switches labeled by role.
  EXPECT_NE(dot.find("core0"), std::string::npos);
  EXPECT_NE(dot.find("edge7"), std::string::npos);
  EXPECT_NE(dot.find("agg7"), std::string::npos);
  // Count edges: one " -- " per link.
  std::size_t count = 0;
  for (std::size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, g.link_count());
}

TEST(DotExport, PodClusters) {
  const Graph g = build_clos(ClosParams::testbed());
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("subgraph cluster_pod0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_pod3"), std::string::npos);
}

TEST(DotExport, ServerlessView) {
  const Graph g = build_clos(ClosParams::testbed());
  DotOptions options;
  options.include_servers = false;
  const std::string dot = to_dot(g, options);
  std::size_t count = 0;
  for (std::size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1)) {
    ++count;
  }
  // Only the 32 switch-switch links remain (16 edge-agg + 16 agg-core).
  EXPECT_EQ(count, 32u);
}

TEST(DotExport, FlatTreeModesDiffer) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  const FlatTree tree{p};
  DotOptions options;
  options.include_servers = false;
  EXPECT_NE(to_dot(tree.realize_uniform(PodMode::kClos), options),
            to_dot(tree.realize_uniform(PodMode::kGlobal), options));
}

}  // namespace
}  // namespace flattree
