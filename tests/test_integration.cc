// Cross-module integration tests: the paper's headline behaviours at test
// scale. These are the "does the system actually deliver the claims"
// checks — core bandwidth gain from conversion, per-workload mode ranking,
// and the full controller -> simulator pipeline.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "control/controller.h"
#include "core/flat_tree.h"
#include "net/stats.h"
#include "routing/ecmp.h"
#include "routing/ksp.h"
#include "sim/fluid.h"
#include "sim/packet.h"
#include "topo/clos.h"
#include "traffic/patterns.h"
#include "traffic/traces.h"

namespace flattree {
namespace {

FlatTree testbed_tree() {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  return FlatTree{p};
}

PathProvider ksp_provider(const Graph& g, std::uint32_t k) {
  auto cache = std::make_shared<PathCache>(g, k);
  return [cache](NodeId src, NodeId dst, std::uint32_t) {
    return cache->server_paths(src, dst);
  };
}

PathProvider ecmp_provider(const Graph& g) {
  auto router = std::make_shared<EcmpRouter>(g);
  return [router](NodeId src, NodeId dst, std::uint32_t flow) {
    return std::vector<Path>{router->flow_path(src, dst, flow)};
  };
}

double total_rate(const Graph& g, const Workload& flows, std::uint32_t k) {
  FluidSimulator sim{g, ksp_provider(g, k)};
  const auto rates = sim.measure_rates(flows);
  return std::accumulate(rates.begin(), rates.end(), 0.0);
}

// ---- §5.3 headline: global mode raises core bandwidth over Clos ----------

TEST(Integration, GlobalModeRaisesCoreBandwidth) {
  const FlatTree tree = testbed_tree();
  const Graph clos = tree.realize_uniform(PodMode::kClos);
  const Graph global = tree.realize_uniform(PodMode::kGlobal);
  // iPerf pattern of §5.3: every server sends to its counterparts in the
  // other pods (6 servers per pod -> pod-stride x3).
  Workload flows;
  for (std::uint32_t s = 0; s < 24; ++s) {
    for (std::uint32_t stride = 1; stride < 4; ++stride) {
      flows.push_back(Flow{s, (s + 6 * stride) % 24});
    }
  }
  const double clos_bw = total_rate(clos, flows, 4);
  const double global_bw = total_rate(global, flows, 4);
  // The paper measures +27.6%; at fluid granularity we demand a clear gain.
  EXPECT_GT(global_bw, clos_bw * 1.1);
  // And the Clos mode cannot exceed its oversubscribed core: 160 Gb/s.
  EXPECT_LE(clos_bw, 160e9 + 1e6);
}

TEST(Integration, LocalModeMatchesClosForCoreTraffic) {
  // §5.3: "the local mode rearranges servers within Pods only, so there is
  // no change to the core bandwidth" — within a modest tolerance.
  const FlatTree tree = testbed_tree();
  const Graph clos = tree.realize_uniform(PodMode::kClos);
  const Graph local = tree.realize_uniform(PodMode::kLocal);
  Workload flows;
  for (std::uint32_t s = 0; s < 24; ++s) {
    flows.push_back(Flow{s, (s + 6) % 24});
  }
  const double clos_bw = total_rate(clos, flows, 4);
  const double local_bw = total_rate(local, flows, 4);
  EXPECT_NEAR(local_bw / clos_bw, 1.0, 0.25);
}

// ---- §5.2 behaviour: mode ranking follows traffic locality ----------------

TEST(Integration, RackLocalTrafficFavorsClos) {
  // All-to-all within each rack (3 servers per edge switch in the testbed).
  const FlatTree tree = testbed_tree();
  const Workload flows = clustered_all_to_all(24, 3);
  const double clos_bw =
      total_rate(tree.realize_uniform(PodMode::kClos), flows, 4);
  const double global_bw =
      total_rate(tree.realize_uniform(PodMode::kGlobal), flows, 4);
  EXPECT_GE(clos_bw, global_bw);
}

TEST(Integration, NetworkWideTrafficFavorsGlobal) {
  const FlatTree tree = testbed_tree();
  Rng rng{21};
  const Workload flows = permutation_traffic(24, rng);
  const double clos_bw =
      total_rate(tree.realize_uniform(PodMode::kClos), flows, 4);
  const double global_bw =
      total_rate(tree.realize_uniform(PodMode::kGlobal), flows, 4);
  // A single permutation leaves every NIC under-committed, so the Clos core
  // never saturates and convertibility buys nothing — the paper's gain
  // appears when the core is the bottleneck (covered by
  // GlobalModeRaisesCoreBandwidth). Here we only require global mode to
  // stay within a small margin at light load (§5.4: "their network
  // structures are not hugely different at this small scale").
  EXPECT_GE(global_bw, clos_bw * 0.85);
  // Under a saturating cross-pod load (3 permutations stacked), the ranking
  // must flip to global.
  Workload heavy;
  Rng rng2{22};
  for (int rep = 0; rep < 3; ++rep) {
    for (const Flow& f : permutation_traffic(24, rng2)) {
      if (f.src / 6 != f.dst / 6) heavy.push_back(f);
    }
  }
  const double clos_heavy =
      total_rate(tree.realize_uniform(PodMode::kClos), heavy, 4);
  const double global_heavy =
      total_rate(tree.realize_uniform(PodMode::kGlobal), heavy, 4);
  EXPECT_GT(global_heavy, clos_heavy);
}

// ---- ECMP vs k-shortest-path + MPTCP ---------------------------------------

TEST(Integration, EcmpSinglePathUnderperformsMptcp) {
  const FlatTree tree = testbed_tree();
  const Graph clos = tree.realize_uniform(PodMode::kClos);
  Workload flows;
  for (std::uint32_t s = 0; s < 24; ++s) {
    flows.push_back(Flow{s, (s + 6) % 24});
  }
  FluidSimulator ecmp_sim{clos, ecmp_provider(clos)};
  FluidSimulator mptcp_sim{clos, ksp_provider(clos, 4)};
  const auto ecmp_rates = ecmp_sim.measure_rates(flows);
  const auto mptcp_rates = mptcp_sim.measure_rates(flows);
  const double ecmp_total =
      std::accumulate(ecmp_rates.begin(), ecmp_rates.end(), 0.0);
  const double mptcp_total =
      std::accumulate(mptcp_rates.begin(), mptcp_rates.end(), 0.0);
  EXPECT_GE(mptcp_total, ecmp_total);
}

// ---- trace-driven FCT ranking (Figure 8 shape at test scale) --------------

TEST(Integration, CacheTrafficFavorsLocalMode) {
  // Pod-local traffic: local mode should not lose to Clos mode on mean FCT.
  const FlatTree tree = testbed_tree();
  TraceParams params = TraceParams::cache();
  params.duration_s = 0.4;
  params.flows_per_s = 500;
  params.mean_flow_bytes = 2e6;
  const Workload flows = generate_trace(tree.clos(), params);

  const auto mean_fct = [&](const Graph& g) {
    FluidSimulator sim{g, ksp_provider(g, 4)};
    const auto results = sim.run(flows);
    double total = 0;
    std::size_t done = 0;
    for (const auto& r : results) {
      if (r.completed) {
        total += r.fct_s();
        ++done;
      }
    }
    EXPECT_GT(done, flows.size() * 9 / 10);
    return total / static_cast<double>(done);
  };
  const double local_fct = mean_fct(tree.realize_uniform(PodMode::kLocal));
  const double clos_fct = mean_fct(tree.realize_uniform(PodMode::kClos));
  EXPECT_LE(local_fct, clos_fct * 1.2);
}

// ---- controller + packet sim end to end ------------------------------------

TEST(Integration, RuntimeConversionPipeline) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.clos.link_bps = 50e6;  // scaled for test speed
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = 4;
  options.k_clos = 4;
  options.k_local = 4;
  const Controller ctl{FlatTree{p}, options};

  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  const ConversionReport report = ctl.plan_conversion(clos, global);
  ASSERT_GT(report.total_s(), 0.0);

  PacketSim sim;
  sim.set_network(clos.graph());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::uint32_t s = 0; s < 6; ++s) {
    pairs.emplace_back(s, s + 6);
    sim.add_flow(s, s + 6, 0, 0.0,
                 clos.paths().server_paths(NodeId{s}, NodeId{s + 6}));
  }
  sim.run_until(1.0);
  const std::uint64_t before = sim.total_bytes_acked();
  EXPECT_GT(before, 0u);

  sim.apply_conversion(
      global.graph(),
      [&](std::uint32_t flow) {
        return global.paths().server_paths(NodeId{pairs[flow].first},
                                           NodeId{pairs[flow].second});
      },
      report.total_s());
  sim.run_until(4.0);
  EXPECT_GT(sim.total_bytes_acked(), before);
  // Traffic is flowing again after the conversion window.
  const std::uint64_t at_4s = sim.total_bytes_acked();
  sim.run_until(5.0);
  EXPECT_GT(sim.total_bytes_acked(), at_4s);
}

// ---- hybrid zones -----------------------------------------------------------

TEST(Integration, HybridZonesServeBothWorkloads) {
  const FlatTree tree = testbed_tree();
  ModeAssignment hybrid = ModeAssignment::uniform(4, PodMode::kGlobal);
  hybrid.pod_modes[0] = PodMode::kClos;  // rack-local zone
  const Graph g = tree.realize(hybrid);
  EXPECT_TRUE(g.connected());
  // Rack-local flows in pod 0 and cross-pod flows among pods 1..3.
  Workload flows = clustered_all_to_all(6, 3);  // servers 0..5 = pod 0
  for (std::uint32_t s = 6; s < 12; ++s) {
    flows.push_back(Flow{s, s + 6});
  }
  FluidSimulator sim{g, ksp_provider(g, 4)};
  const auto rates = sim.measure_rates(flows);
  for (double r : rates) EXPECT_GT(r, 0.0);
}

}  // namespace
}  // namespace flattree
