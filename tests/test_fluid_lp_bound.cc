// Cross-layer invariant: the fluid simulator's steady-state max-min rates
// are one feasible point of the very MCF instance the LP layer optimizes,
// so they can never beat the LP optima. Violations mean the two layers
// disagree about capacity accounting (the bug class this test exists for:
// e.g. the fluid model double-counting parallel links or the LP compressing
// the wrong edges). Checked on the Table-1 architecture trio.
#include "sim/fluid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "lp/mcf.h"
#include "lp/throughput.h"
#include "net/capacity.h"
#include "routing/ksp.h"
#include "topo/clos.h"
#include "topo/random_graph.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

constexpr double kRelTol = 1e-6;

struct Instance {
  std::vector<double> fluid_rates;
  McfResult lp_min;
  McfResult lp_avg;
};

// The fluid rates and the LP bounds over the SAME routing: one shared
// PathCache supplies both the simulator's provider and the MCF commodities.
Instance solve_both(const Graph& g, const Workload& flows, std::uint32_t k) {
  auto cache = std::make_shared<PathCache>(g, k);
  const PathProvider provider = [cache](NodeId src, NodeId dst,
                                        std::uint32_t) {
    return cache->server_paths(src, dst);
  };
  FluidSimulator fluid{g, provider};

  const LogicalTopology topo{g};
  std::vector<FlowPaths> flow_paths;
  flow_paths.reserve(flows.size());
  for (const Flow& f : flows) {
    flow_paths.push_back(FlowPaths{
        NodeId{f.src}, NodeId{f.dst},
        cache->server_paths(NodeId{f.src}, NodeId{f.dst})});
  }
  const McfInstance instance = build_mcf_instance(topo, flow_paths);

  Instance out;
  out.fluid_rates = fluid.measure_rates(flows);
  out.lp_min = solve_lp_min(instance);
  out.lp_avg = solve_lp_avg(instance);
  return out;
}

void expect_bounded(const Instance& inst, const char* label) {
  ASSERT_FALSE(inst.fluid_rates.empty()) << label;
  ASSERT_TRUE(inst.lp_min.feasible) << label;
  ASSERT_TRUE(inst.lp_avg.feasible) << label;

  double total = 0.0;
  double min_rate = std::numeric_limits<double>::infinity();
  for (const double r : inst.fluid_rates) {
    EXPECT_GE(r, 0.0) << label;
    total += r;
    min_rate = std::min(min_rate, r);
  }
  const double n = static_cast<double>(inst.fluid_rates.size());
  const double lp_total = inst.lp_avg.avg_rate * n;
  // LP-average maximizes total throughput over every feasible allocation.
  EXPECT_LE(total, lp_total * (1 + kRelTol)) << label;
  // LP-minimum maximizes the worst flow's rate over every feasible
  // allocation, so no feasible point has a better minimum.
  EXPECT_LE(min_rate, inst.lp_min.min_rate * (1 + kRelTol)) << label;
}

TEST(FluidLpBound, Table1ArchitecturesClusteredTraffic) {
  const ClosParams clos = ClosParams::fat_tree(4);
  const Graph fat_tree = build_clos(clos);
  RandomGraphParams rg = RandomGraphParams::from_clos(clos);
  rg.seed = 20170821;
  const Graph random_graph = build_random_graph(rg);
  TwoStageParams ts = TwoStageParams::from_clos(clos);
  ts.seed = 20170821;
  const Graph two_stage = build_two_stage_random_graph(ts);

  const Workload flows = clustered_all_to_all(clos.total_servers(), 4);
  expect_bounded(solve_both(fat_tree, flows, 4), "fat_tree");
  expect_bounded(solve_both(random_graph, flows, 4), "random_graph");
  expect_bounded(solve_both(two_stage, flows, 4), "two_stage");
}

TEST(FluidLpBound, PermutationTrafficAndMorePaths) {
  const ClosParams clos = ClosParams::fat_tree(4);
  const Graph fat_tree = build_clos(clos);
  Rng rng{7};
  const Workload flows = permutation_traffic(clos.total_servers(), rng);
  expect_bounded(solve_both(fat_tree, flows, 1), "k=1");
  expect_bounded(solve_both(fat_tree, flows, 8), "k=8");
}

// With single-path routing the fluid rate vector maps directly onto edge
// loads, so feasibility can be checked against raw capacities too.
TEST(FluidLpBound, SinglePathRatesRespectEdgeCapacities) {
  const ClosParams clos = ClosParams::fat_tree(4);
  const Graph g = build_clos(clos);
  const LogicalTopology topo{g};
  PathCache cache{g, 1};
  const Workload flows = clustered_all_to_all(clos.total_servers(), 8);

  const PathProvider provider = [&cache](NodeId src, NodeId dst,
                                         std::uint32_t) {
    return cache.server_paths(src, dst);
  };
  FluidSimulator fluid{g, provider};
  const std::vector<double> rates = fluid.measure_rates(flows);
  ASSERT_EQ(rates.size(), flows.size());

  std::vector<double> load(topo.directed_count(), 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto paths = cache.server_paths(NodeId{flows[i].src},
                                          NodeId{flows[i].dst});
    ASSERT_EQ(paths.size(), 1u);
    for (const std::uint32_t e : topo.path_edges(paths[0])) {
      load[e] += rates[i];
    }
  }
  for (std::size_t e = 0; e < load.size(); ++e) {
    EXPECT_LE(load[e],
              topo.capacity(static_cast<std::uint32_t>(e)) * (1 + kRelTol))
        << "directed edge " << e << " oversubscribed";
  }
}

}  // namespace
}  // namespace flattree
