// Cross-layer invariant: the fluid simulator's steady-state max-min rates
// are one feasible point of the very MCF instance the LP layer optimizes,
// so they can never beat the LP optima. Violations mean the two layers
// disagree about capacity accounting (the bug class this test exists for:
// e.g. the fluid model double-counting parallel links or the LP compressing
// the wrong edges). Checked on the Table-1 architecture trio.
#include "sim/fluid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "lp/mcf.h"
#include "lp/throughput.h"
#include "net/capacity.h"
#include "net/rng.h"
#include "routing/ksp.h"
#include "sim/fluid_incremental.h"
#include "topo/clos.h"
#include "topo/random_graph.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

constexpr double kRelTol = 1e-6;

struct Instance {
  std::vector<double> fluid_rates;
  McfResult lp_min;
  McfResult lp_avg;
};

// The fluid rates and the LP bounds over the SAME routing: one shared
// PathCache supplies both the simulator's provider and the MCF commodities.
Instance solve_both(const Graph& g, const Workload& flows, std::uint32_t k) {
  auto cache = std::make_shared<PathCache>(g, k);
  const PathProvider provider = [cache](NodeId src, NodeId dst,
                                        std::uint32_t) {
    return cache->server_paths(src, dst);
  };
  FluidSimulator fluid{g, provider};

  const LogicalTopology topo{g};
  std::vector<FlowPaths> flow_paths;
  flow_paths.reserve(flows.size());
  for (const Flow& f : flows) {
    flow_paths.push_back(FlowPaths{
        NodeId{f.src}, NodeId{f.dst},
        cache->server_paths(NodeId{f.src}, NodeId{f.dst})});
  }
  const McfInstance instance = build_mcf_instance(topo, flow_paths);

  Instance out;
  out.fluid_rates = fluid.measure_rates(flows);
  out.lp_min = solve_lp_min(instance);
  out.lp_avg = solve_lp_avg(instance);
  return out;
}

void expect_bounded(const Instance& inst, const char* label) {
  ASSERT_FALSE(inst.fluid_rates.empty()) << label;
  ASSERT_TRUE(inst.lp_min.feasible) << label;
  ASSERT_TRUE(inst.lp_avg.feasible) << label;

  double total = 0.0;
  double min_rate = std::numeric_limits<double>::infinity();
  for (const double r : inst.fluid_rates) {
    EXPECT_GE(r, 0.0) << label;
    total += r;
    min_rate = std::min(min_rate, r);
  }
  const double n = static_cast<double>(inst.fluid_rates.size());
  const double lp_total = inst.lp_avg.avg_rate * n;
  // LP-average maximizes total throughput over every feasible allocation.
  EXPECT_LE(total, lp_total * (1 + kRelTol)) << label;
  // LP-minimum maximizes the worst flow's rate over every feasible
  // allocation, so no feasible point has a better minimum.
  EXPECT_LE(min_rate, inst.lp_min.min_rate * (1 + kRelTol)) << label;
}

TEST(FluidLpBound, Table1ArchitecturesClusteredTraffic) {
  const ClosParams clos = ClosParams::fat_tree(4);
  const Graph fat_tree = build_clos(clos);
  RandomGraphParams rg = RandomGraphParams::from_clos(clos);
  rg.seed = 20170821;
  const Graph random_graph = build_random_graph(rg);
  TwoStageParams ts = TwoStageParams::from_clos(clos);
  ts.seed = 20170821;
  const Graph two_stage = build_two_stage_random_graph(ts);

  const Workload flows = clustered_all_to_all(clos.total_servers(), 4);
  expect_bounded(solve_both(fat_tree, flows, 4), "fat_tree");
  expect_bounded(solve_both(random_graph, flows, 4), "random_graph");
  expect_bounded(solve_both(two_stage, flows, 4), "two_stage");
}

TEST(FluidLpBound, PermutationTrafficAndMorePaths) {
  const ClosParams clos = ClosParams::fat_tree(4);
  const Graph fat_tree = build_clos(clos);
  Rng rng{7};
  const Workload flows = permutation_traffic(clos.total_servers(), rng);
  expect_bounded(solve_both(fat_tree, flows, 1), "k=1");
  expect_bounded(solve_both(fat_tree, flows, 8), "k=8");
}

// With single-path routing the fluid rate vector maps directly onto edge
// loads, so feasibility can be checked against raw capacities too.
TEST(FluidLpBound, SinglePathRatesRespectEdgeCapacities) {
  const ClosParams clos = ClosParams::fat_tree(4);
  const Graph g = build_clos(clos);
  const LogicalTopology topo{g};
  PathCache cache{g, 1};
  const Workload flows = clustered_all_to_all(clos.total_servers(), 8);

  const PathProvider provider = [&cache](NodeId src, NodeId dst,
                                         std::uint32_t) {
    return cache.server_paths(src, dst);
  };
  FluidSimulator fluid{g, provider};
  const std::vector<double> rates = fluid.measure_rates(flows);
  ASSERT_EQ(rates.size(), flows.size());

  std::vector<double> load(topo.directed_count(), 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto paths = cache.server_paths(NodeId{flows[i].src},
                                          NodeId{flows[i].dst});
    ASSERT_EQ(paths.size(), 1u);
    for (const std::uint32_t e : topo.path_edges(paths[0])) {
      load[e] += rates[i];
    }
  }
  for (std::size_t e = 0; e < load.size(); ++e) {
    EXPECT_LE(load[e],
              topo.capacity(static_cast<std::uint32_t>(e)) * (1 + kRelTol))
        << "directed edge " << e << " oversubscribed";
  }
}

// ---- water-filling optimality certificate for the incremental solver -------
//
// After every event of a fuzzed stream driven through the *incremental*
// allocator (sim/fluid_incremental.h), the allocation must carry the
// progressive-filling certificate:
//   (a) feasibility — no directed edge's load exceeds its capacity;
//   (b) bottleneck  — every subflow crosses at least one saturated edge on
//       which its rate equals the maximum crosser rate (it froze when that
//       edge filled, so nothing crossing the edge outranks it).
// Together these are exactly max-min optimality of the subflow allocation;
// a violation means the trace replay reused a stale bottleneck level.
void expect_water_filling_certificate(const Graph& g, std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  const LogicalTopology topo{g};
  PathCache cache{g, 4};
  std::vector<NodeId> servers;
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    if (!is_switch(g.node(NodeId{i}).role)) servers.push_back(NodeId{i});
  }

  constexpr std::uint32_t kSlots = 32;
  std::vector<double> caps(topo.directed_count());
  for (std::size_t e = 0; e < caps.size(); ++e) {
    caps[e] = topo.capacity(static_cast<std::uint32_t>(e));
  }
  IncrementalMaxMinSolver inc;
  inc.reset(caps, kSlots);
  std::vector<std::vector<std::vector<std::uint32_t>>> paths_of(kSlots);
  std::vector<bool> present(kSlots, false);
  std::vector<bool> edge_failed(topo.edge_count(), false);

  Rng rng{seed};
  for (int ev = 0; ev < 120; ++ev) {
    const double roll = rng.next_double();
    const std::uint32_t slot =
        static_cast<std::uint32_t>(rng.next_below(kSlots));
    if (roll < 0.45) {
      const NodeId src = servers[rng.next_below(servers.size())];
      NodeId dst = src;
      while (dst == src) dst = servers[rng.next_below(servers.size())];
      std::vector<std::vector<std::uint32_t>> pe;
      for (const Path& p : cache.server_paths(src, dst)) {
        pe.push_back(topo.path_edges(p));
      }
      if (present[slot]) inc.remove_flow(slot);
      inc.add_flow(slot, pe);
      paths_of[slot] = std::move(pe);
      present[slot] = true;
    } else if (roll < 0.70) {
      if (present[slot]) {
        inc.remove_flow(slot);
        present[slot] = false;
      }
    } else {
      const std::uint32_t e =
          static_cast<std::uint32_t>(rng.next_below(topo.edge_count()));
      edge_failed[e] = !edge_failed[e];
      for (const std::uint32_t d : {2 * e, 2 * e + 1}) {
        inc.set_capacity(d, edge_failed[e] ? 0.0 : topo.capacity(d));
      }
    }
    inc.solve();

    // Per-edge load and per-edge max subflow rate from the solver's own
    // per-path rates.
    std::vector<double> load(topo.directed_count(), 0.0);
    std::vector<double> max_rate(topo.directed_count(), 0.0);
    for (std::uint32_t s = 0; s < kSlots; ++s) {
      if (!present[s]) continue;
      const std::vector<double> pr = inc.path_rates(s);
      ASSERT_EQ(pr.size(), paths_of[s].size());
      for (std::size_t p = 0; p < pr.size(); ++p) {
        for (const std::uint32_t e : paths_of[s][p]) {
          load[e] += pr[p];
          max_rate[e] = std::max(max_rate[e], pr[p]);
        }
      }
    }
    for (std::size_t e = 0; e < load.size(); ++e) {
      const double cap = inc.capacity(static_cast<std::uint32_t>(e));
      EXPECT_LE(load[e], cap * (1 + kRelTol) + 1e-9)
          << "event " << ev << ": directed edge " << e << " over capacity";
    }
    const auto saturated = [&](std::uint32_t e) {
      const double cap = inc.capacity(e);
      return cap - load[e] <= kRelTol * cap + 1e-9;
    };
    for (std::uint32_t s = 0; s < kSlots; ++s) {
      if (!present[s]) continue;
      const std::vector<double> pr = inc.path_rates(s);
      for (std::size_t p = 0; p < pr.size(); ++p) {
        if (paths_of[s][p].empty()) continue;
        bool bottlenecked = false;
        for (const std::uint32_t e : paths_of[s][p]) {
          if (saturated(e) && pr[p] >= max_rate[e] * (1 - kRelTol) - 1e-9) {
            bottlenecked = true;
            break;
          }
        }
        EXPECT_TRUE(bottlenecked)
            << "event " << ev << ": slot " << s << " path " << p
            << " (rate " << pr[p] << ") crosses no saturated edge it "
            << "dominates — not max-min";
      }
    }
  }
}

TEST(FluidLpBound, IncrementalWaterFillingCertificateFatTree) {
  const Graph g = build_clos(ClosParams::fat_tree(4));
  for (const std::uint64_t seed : {3u, 13u, 23u}) {
    expect_water_filling_certificate(g, seed);
  }
}

TEST(FluidLpBound, IncrementalWaterFillingCertificateTwoStage) {
  TwoStageParams ts = TwoStageParams::from_clos(ClosParams::fat_tree(4));
  ts.seed = 20170821;
  const Graph g = build_two_stage_random_graph(ts);
  for (const std::uint64_t seed : {5u, 15u}) {
    expect_water_filling_certificate(g, seed);
  }
}

}  // namespace
}  // namespace flattree
