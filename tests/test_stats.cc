#include "net/stats.h"

#include <gtest/gtest.h>

#include "topo/clos.h"
#include "topo/params.h"

namespace flattree {
namespace {

Graph line_graph() {
  // s0 - e0 - e1 - e2 - s1   (a path of three switches with end servers)
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  const NodeId e2 = g.add_node(NodeRole::kEdge);
  g.add_link(s0, e0, 1e9);
  g.add_link(s1, e2, 1e9);
  g.add_link(e0, e1, 1e9);
  g.add_link(e1, e2, 1e9);
  return g;
}

TEST(PathLengthStats, LineGraph) {
  const auto stats = compute_path_length_stats(line_graph());
  // Ordered switch pairs: (e0,e1)=1 (e0,e2)=2 (e1,e0)=1 (e1,e2)=1 (e2,e0)=2
  // (e2,e1)=1 -> avg = 8/6.
  EXPECT_NEAR(stats.avg_switch_pair_hops, 8.0 / 6.0, 1e-12);
  EXPECT_EQ(stats.diameter, 2u);
  // Server pairs: s0<->s1 both directions, switch distance 2, +2 hops = 4.
  EXPECT_NEAR(stats.avg_server_pair_hops, 4.0, 1e-12);
}

TEST(PathLengthStats, Histogram) {
  const auto stats = compute_path_length_stats(line_graph());
  EXPECT_EQ(stats.switch_hop_histogram.at(1), 4u);
  EXPECT_EQ(stats.switch_hop_histogram.at(2), 2u);
}

TEST(PathLengthStats, SameSwitchServerPairsCountTwoHops) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kServer);
  const NodeId b = g.add_node(NodeRole::kServer);
  const NodeId c = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  g.add_link(a, e0, 1e9);
  g.add_link(b, e0, 1e9);
  g.add_link(c, e1, 1e9);
  g.add_link(e0, e1, 1e9);
  const auto stats = compute_path_length_stats(g);
  // Pairs: (a,b),(b,a): 2 hops. (a,c),(c,a),(b,c),(c,b): 1+2=3 hops.
  EXPECT_NEAR(stats.avg_server_pair_hops, (2 * 2 + 4 * 3) / 6.0, 1e-12);
}

TEST(PathLengthStats, DisconnectedThrows) {
  Graph g;
  g.add_node(NodeRole::kEdge);
  g.add_node(NodeRole::kEdge);
  EXPECT_THROW((void)compute_path_length_stats(g), std::logic_error);
}

TEST(PathLengthStats, FatTreeDiameter) {
  // Canonical fat-tree: switch diameter 4 (edge-agg-core-agg-edge).
  const Graph g = build_clos(ClosParams::fat_tree(4));
  const auto stats = compute_path_length_stats(g);
  EXPECT_EQ(stats.diameter, 4u);
}

TEST(ServersPerSwitch, ClosEdgesUniform) {
  const ClosParams p = ClosParams::testbed();
  const Graph g = build_clos(p);
  const auto per_edge = servers_per_switch(g, NodeRole::kEdge);
  ASSERT_EQ(per_edge.size(), p.total_edges());
  for (const std::size_t c : per_edge) EXPECT_EQ(c, p.servers_per_edge);
  for (const std::size_t c : servers_per_switch(g, NodeRole::kCore)) {
    EXPECT_EQ(c, 0u);
  }
  for (const std::size_t c : servers_per_switch(g, NodeRole::kAgg)) {
    EXPECT_EQ(c, 0u);
  }
}

TEST(LinksByPeerRole, ClosCoreSeesOnlyAggs) {
  const ClosParams p = ClosParams::testbed();
  const Graph g = build_clos(p);
  const auto agg_links = links_by_peer_role(g, NodeRole::kCore, NodeRole::kAgg);
  for (const std::size_t c : agg_links) EXPECT_EQ(c, p.core_ports);
  const auto edge_links =
      links_by_peer_role(g, NodeRole::kCore, NodeRole::kEdge);
  for (const std::size_t c : edge_links) EXPECT_EQ(c, 0u);
}

TEST(CoreLinkCapacity, CountsOnlyCoreLinks) {
  const ClosParams p = ClosParams::testbed();
  const Graph g = build_clos(p);
  // testbed: 4 cores x 4 downlinks x 10G = 160G of core-adjacent capacity.
  EXPECT_DOUBLE_EQ(core_link_capacity(g),
                   p.cores * p.core_ports * p.link_bps);
}

}  // namespace
}  // namespace flattree
