#include "control/rule_compiler.h"

#include <gtest/gtest.h>

#include "core/flat_tree.h"
#include "routing/rules.h"

namespace flattree {
namespace {

FlatTree testbed_tree() {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  return FlatTree{p};
}

struct Compiled {
  Graph graph;
  std::unique_ptr<PathCache> paths;
  std::unique_ptr<AddressPlan> plan;
  std::unique_ptr<CompiledRuleTables> tables;

  Compiled(const FlatTree& tree, PodMode mode, std::uint32_t k)
      : graph{tree.realize_uniform(mode)} {
    paths = std::make_unique<PathCache>(graph, k);
    plan = std::make_unique<AddressPlan>(graph, code_for(mode), k);
    tables = std::make_unique<CompiledRuleTables>(graph, *paths, *plan);
  }
};

class RuleCompilerModeTest : public ::testing::TestWithParam<PodMode> {};
INSTANTIATE_TEST_SUITE_P(Modes, RuleCompilerModeTest,
                         ::testing::Values(PodMode::kClos, PodMode::kLocal,
                                           PodMode::kGlobal),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(RuleCompilerModeTest, EveryRoutablePairDelivers) {
  const FlatTree tree = testbed_tree();
  const Compiled c{tree, GetParam(), 4};
  const std::uint32_t addresses = c.plan->addresses_per_server();  // 2 for k=4
  const auto servers = c.graph.servers();
  for (NodeId src : servers) {
    for (NodeId dst : servers) {
      if (src == dst) continue;
      for (std::uint32_t i = 0; i < addresses; ++i) {
        for (std::uint32_t j = 0; j < addresses; ++j) {
          const FlatTreeAddress sa = c.plan->addresses(src)[i];
          const FlatTreeAddress da = c.plan->addresses(dst)[j];
          const auto walk = c.tables->forward(sa, da);
          ASSERT_TRUE(walk.has_value())
              << c.graph.label(src) << " -> " << c.graph.label(dst)
              << " combo " << i << "," << j;
          EXPECT_EQ(walk->back(), dst);
          EXPECT_EQ(walk->front(), c.graph.attachment_switch(src));
        }
      }
    }
  }
}

TEST_P(RuleCompilerModeTest, WalksMatchComputedPaths) {
  const FlatTree tree = testbed_tree();
  const Compiled c{tree, GetParam(), 4};
  const auto servers = c.graph.servers();
  const NodeId src = servers[0];
  const NodeId dst = servers[20];
  const NodeId src_sw = c.graph.attachment_switch(src);
  const NodeId dst_sw = c.graph.attachment_switch(dst);
  const auto& path_set = c.paths->switch_paths(src_sw, dst_sw);
  const std::uint32_t addresses = c.plan->addresses_per_server();
  for (std::uint32_t i = 0; i < addresses; ++i) {
    for (std::uint32_t j = 0; j < addresses; ++j) {
      const std::uint32_t combo = i * addresses + j;
      const auto walk = c.tables->forward(c.plan->addresses(src)[i],
                                          c.plan->addresses(dst)[j]);
      ASSERT_TRUE(walk.has_value());
      // The walk is the selected switch path plus the final server hop.
      const Path& expected = path_set[combo % path_set.size()];
      ASSERT_EQ(walk->size(), expected.size() + 1);
      for (std::size_t h = 0; h < expected.size(); ++h) {
        EXPECT_EQ((*walk)[h], expected[h]);
      }
    }
  }
}

TEST(RuleCompiler, UnnecessarySubflowsAreUnroutable) {
  // k = 8 needs 3 addresses -> 9 combos; combo 8 gets no rules (§4.1).
  const FlatTree tree = testbed_tree();
  const Compiled c{tree, PodMode::kClos, 8};
  ASSERT_EQ(c.plan->addresses_per_server(), 3u);
  const auto servers = c.graph.servers();
  const NodeId src = servers[0];
  const NodeId dst = servers[20];
  const auto walk = c.tables->forward(c.plan->addresses(src)[2],
                                      c.plan->addresses(dst)[2]);
  EXPECT_FALSE(walk.has_value());
  // ...but combo (2, 1) = index 7 < 8 routes fine.
  EXPECT_TRUE(c.tables->forward(c.plan->addresses(src)[2],
                                c.plan->addresses(dst)[1])
                  .has_value());
}

TEST(RuleCompiler, OtherModesAddressesAreUnroutable) {
  // Load global-mode tables; a Clos-mode address of a relocated server must
  // not be deliverable (its exact-match delivery entry only exists in the
  // Clos plan).
  const FlatTree tree = testbed_tree();
  const Compiled global{tree, PodMode::kGlobal, 4};
  const Graph clos_graph = tree.realize_uniform(PodMode::kClos);
  const AddressPlan clos_plan{clos_graph, TopoCode::kClos, 4};

  // Find a server that moved between the modes.
  NodeId moved = NodeId::invalid();
  for (NodeId s : global.graph.servers()) {
    if (global.graph.attachment_switch(s) != clos_graph.attachment_switch(s)) {
      moved = s;
      break;
    }
  }
  ASSERT_TRUE(moved.valid());
  const NodeId src = global.graph.servers()[0] == moved
                         ? global.graph.servers()[1]
                         : global.graph.servers()[0];
  const auto walk = global.tables->forward(global.plan->addresses(src)[0],
                                           clos_plan.addresses(moved)[0]);
  EXPECT_FALSE(walk.has_value());
}

TEST(RuleCompiler, SameRackDeliveryNeedsNoPrefixRules) {
  const FlatTree tree = testbed_tree();
  const Compiled c{tree, PodMode::kClos, 4};
  const auto servers = c.graph.servers();
  // Servers 0 and 1 share edge 0 in Clos mode.
  const auto walk = c.tables->forward(c.plan->addresses(servers[0])[0],
                                      c.plan->addresses(servers[1])[0]);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->size(), 2u);  // ingress switch -> server
}

TEST(RuleCompiler, RuleCountsTrackStateAnalysis) {
  // The materialized tables track the analytical aggregated counts: they
  // differ only at the margins (the analyzer counts the egress switch as
  // holding a per-path rule where the compiler installs exact-match
  // delivery entries instead; conversely, address combos that reuse a path
  // add extra prefix pairs over the same hops).
  const FlatTree tree = testbed_tree();
  const Compiled c{tree, PodMode::kGlobal, 4};
  const auto pairs = all_ingress_pairs(c.graph);
  const PortMap ports{c.graph};
  const StateCounts counts =
      analyze_states(c.graph, *c.paths, pairs, ports.max_port_count(), 5);
  EXPECT_GE(c.tables->max_prefix_rules(), counts.aggregated_max / 2);
  EXPECT_LE(c.tables->max_prefix_rules(), counts.aggregated_max * 3);
  EXPECT_GT(c.tables->total_prefix_rules(), 0u);
}

TEST(RuleCompiler, DeliveryRulesCoverEveryAddress) {
  const FlatTree tree = testbed_tree();
  const Compiled c{tree, PodMode::kLocal, 4};
  std::size_t delivery_total = 0;
  for (NodeId sw : c.graph.switches()) {
    delivery_total += c.tables->delivery_rules_at(sw);
  }
  // 24 servers x 2 addresses.
  EXPECT_EQ(delivery_total, 48u);
}

TEST(RuleCompiler, BogusAddressRejected) {
  const FlatTree tree = testbed_tree();
  const Compiled c{tree, PodMode::kClos, 4};
  FlatTreeAddress bogus;
  bogus.switch_id = 8000;
  EXPECT_FALSE(
      c.tables->forward(bogus, c.plan->addresses(c.graph.servers()[0])[0])
          .has_value());
}

}  // namespace
}  // namespace flattree
