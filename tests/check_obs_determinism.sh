#!/usr/bin/env bash
# The observability determinism contract, end to end: for a fixed seed the
# deterministic metrics export — and everything else the bench records —
# must be byte-identical across thread counts. Runs one bench at
# --threads 1/2/8 with --metrics-out and --trace-out enabled and diffs the
# metrics JSON, the BENCH json (metrics block folded in), and stdout.
#
# usage: check_obs_determinism.sh <bench-binary> <bench-name> [bench-args...]
# Extra arguments are passed through to every invocation (e.g. --quick).
set -u

bin="$1"
name="$2"
shift 2

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

for t in 1 2 8; do
  if ! "$bin" "$@" --threads "$t" \
      --metrics-out "metrics_$t.json" \
      --trace-out "trace_$t.json" \
      --json-out "bench_$t.json" > "stdout_$t.txt" 2> "stderr_$t.txt"; then
    echo "FAIL: $name --threads $t exited nonzero" >&2
    cat "stderr_$t.txt" >&2
    exit 1
  fi
  # The trace is scheduling-dependent by design (not diffed), but it must
  # exist and be non-empty whenever --trace-out is passed.
  if ! [ -s "trace_$t.json" ]; then
    echo "FAIL: trace_$t.json missing or empty" >&2
    exit 1
  fi
done

fail=0
for t in 2 8; do
  if ! diff -u metrics_1.json "metrics_$t.json"; then
    echo "FAIL: metrics JSON differs between --threads 1 and $t" >&2
    fail=1
  fi
  if ! diff -u bench_1.json "bench_$t.json"; then
    echo "FAIL: BENCH json differs between --threads 1 and $t" >&2
    fail=1
  fi
  # stdout embeds the --json-out filename; normalize it before comparing.
  sed "s/bench_$t\\.json/bench_1.json/" "stdout_$t.txt" | \
      diff -u stdout_1.txt - || {
    echo "FAIL: stdout differs between --threads 1 and $t" >&2
    fail=1
  }
done
exit $fail
