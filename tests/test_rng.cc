#include "net/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace flattree {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng{7};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowApproximatelyUniform) {
  Rng rng{99};
  std::vector<int> counts(10, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, samples / 10, samples / 100);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{11};
  const double rate = 4.0;
  double sum = 0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) sum += rng.next_exponential(rate);
  EXPECT_NEAR(sum / samples, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialRejectsBadRate) {
  Rng rng{1};
  EXPECT_THROW(rng.next_exponential(0), std::invalid_argument);
  EXPECT_THROW(rng.next_exponential(-1), std::invalid_argument);
}

TEST(Rng, ParetoAtLeastMinimum) {
  Rng rng{13};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.next_pareto(1.5, 2.0), 2.0);
  }
}

TEST(Rng, ParetoMeanApproximately) {
  Rng rng{17};
  const double alpha = 2.5, xm = 1.0;
  double sum = 0;
  const int samples = 400000;
  for (int i = 0; i < samples; ++i) sum += rng.next_pareto(alpha, xm);
  // mean = alpha*xm/(alpha-1) = 5/3
  EXPECT_NEAR(sum / samples, alpha * xm / (alpha - 1), 0.05);
}

TEST(Rng, ParetoRejectsBadParams) {
  Rng rng{1};
  EXPECT_THROW(rng.next_pareto(0, 1), std::invalid_argument);
  EXPECT_THROW(rng.next_pareto(1, 0), std::invalid_argument);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  Rng parent{42};
  Rng child_a = parent.fork(3);
  Rng child_b = Rng{42}.fork(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child_a(), child_b());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent{42};
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{3};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  shuffle(v, rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleDeterministic) {
  std::vector<int> a(50), b(50);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Rng ra{9}, rb{9};
  shuffle(a, ra);
  shuffle(b, rb);
  EXPECT_EQ(a, b);
}

TEST(Rng, Mix64Deterministic) {
  EXPECT_EQ(mix64(1, 2, 3), mix64(1, 2, 3));
  EXPECT_NE(mix64(1, 2, 3), mix64(1, 2, 4));
  EXPECT_NE(mix64(1), mix64(2));
}

}  // namespace
}  // namespace flattree
