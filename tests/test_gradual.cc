// Gradual (Pod-by-Pod) topology conversion (§4.3): plan generation in the
// controller and disruption behavior in the packet simulator.
#include <gtest/gtest.h>

#include "control/controller.h"
#include "sim/packet.h"
#include "topo/params.h"

namespace flattree {
namespace {

TEST(GradualPlan, OneStepPerChangedPod) {
  const ModeAssignment from = ModeAssignment::uniform(4, PodMode::kClos);
  const ModeAssignment to = ModeAssignment::uniform(4, PodMode::kGlobal);
  const auto stages = Controller::gradual_plan(from, to);
  ASSERT_EQ(stages.size(), 4u);
  for (std::size_t s = 0; s < stages.size(); ++s) {
    // Pods 0..s converted, rest still Clos.
    for (std::size_t pod = 0; pod < 4; ++pod) {
      EXPECT_EQ(stages[s].pod_modes[pod],
                pod <= s ? PodMode::kGlobal : PodMode::kClos);
    }
  }
  EXPECT_EQ(stages.back().pod_modes, to.pod_modes);
}

TEST(GradualPlan, SkipsPodsAlreadyInTargetMode) {
  ModeAssignment from = ModeAssignment::uniform(4, PodMode::kClos);
  from.pod_modes[2] = PodMode::kGlobal;
  const ModeAssignment to = ModeAssignment::uniform(4, PodMode::kGlobal);
  const auto stages = Controller::gradual_plan(from, to);
  EXPECT_EQ(stages.size(), 3u);
}

TEST(GradualPlan, NoOpIsEmpty) {
  const ModeAssignment same = ModeAssignment::uniform(4, PodMode::kLocal);
  EXPECT_TRUE(Controller::gradual_plan(same, same).empty());
}

TEST(GradualPlan, MismatchedSizesThrow) {
  EXPECT_THROW((void)Controller::gradual_plan(
                   ModeAssignment::uniform(4, PodMode::kClos),
                   ModeAssignment::uniform(3, PodMode::kClos)),
               std::invalid_argument);
}

TEST(GradualPlan, EveryStageRealizes) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  const FlatTree tree{p};
  const auto stages =
      Controller::gradual_plan(ModeAssignment::uniform(4, PodMode::kClos),
                               ModeAssignment::uniform(4, PodMode::kGlobal));
  for (const ModeAssignment& stage : stages) {
    const Graph g = tree.realize(stage);
    EXPECT_TRUE(g.connected());
  }
}

// ---- packet-simulator conversion semantics ---------------------------------

struct TwoPodNet {
  // Two independent dumbbells, standing in for two Pods.
  Graph before;
  Graph after;  // pod B's middle link upgraded; pod A untouched
  TwoPodNet() {
    for (Graph* g : {&before, &after}) {
      const NodeId a0 = g->add_node(NodeRole::kServer, PodId{0});
      const NodeId a1 = g->add_node(NodeRole::kServer, PodId{0});
      const NodeId b0 = g->add_node(NodeRole::kServer, PodId{1});
      const NodeId b1 = g->add_node(NodeRole::kServer, PodId{1});
      const NodeId ea0 = g->add_node(NodeRole::kEdge, PodId{0});
      const NodeId ea1 = g->add_node(NodeRole::kEdge, PodId{0});
      const NodeId eb0 = g->add_node(NodeRole::kEdge, PodId{1});
      const NodeId eb1 = g->add_node(NodeRole::kEdge, PodId{1});
      g->add_link(a0, ea0, 1e9);
      g->add_link(a1, ea1, 1e9);
      g->add_link(b0, eb0, 1e9);
      g->add_link(b1, eb1, 1e9);
      g->add_link(ea0, ea1, 100e6);
      g->add_link(eb0, eb1, g == &before ? 100e6 : 400e6);
    }
  }
  [[nodiscard]] static Path path_a() {
    return Path{NodeId{0}, NodeId{4}, NodeId{5}, NodeId{1}};
  }
  [[nodiscard]] static Path path_b() {
    return Path{NodeId{2}, NodeId{6}, NodeId{7}, NodeId{3}};
  }
};

TEST(GradualConversion, ChangedOnlyScopeLeavesOtherPodFlowing) {
  TwoPodNet net;
  PacketSim sim;
  sim.set_network(net.before);
  const auto fa = sim.add_flow(0, 1, 0, 0.0, {TwoPodNet::path_a()});
  const auto fb = sim.add_flow(2, 3, 0, 0.0, {TwoPodNet::path_b()});
  sim.run_until(1.0);
  const std::uint64_t a_before = sim.flow_bytes_acked(fa);

  // Convert pod B only, with a long blackout, changed-pipes-only scope.
  sim.apply_conversion(
      net.after,
      [&](std::uint32_t flow) {
        return std::vector<Path>{flow == fa ? TwoPodNet::path_a()
                                            : TwoPodNet::path_b()};
      },
      /*blackout_s=*/0.5, ConversionScope::kChangedOnly);
  sim.run_until(1.4);
  // Pod A's flow never stalls: it moves >85% of line rate through the
  // conversion window.
  const double a_rate =
      static_cast<double>(sim.flow_bytes_acked(fa) - a_before) * 8 / 0.4;
  EXPECT_GT(a_rate, 85e6);
  // Pod B's flow rides the upgraded link after the blackout.
  const std::uint64_t b_mid = sim.flow_bytes_acked(fb);
  sim.run_until(3.4);
  const double b_rate =
      static_cast<double>(sim.flow_bytes_acked(fb) - b_mid) * 8 / 2.0;
  EXPECT_GT(b_rate, 250e6);
}

TEST(GradualConversion, FullBlackoutStallsEverything) {
  TwoPodNet net;
  PacketSim sim;
  sim.set_network(net.before);
  const auto fa = sim.add_flow(0, 1, 0, 0.0, {TwoPodNet::path_a()});
  sim.run_until(1.0);
  const std::uint64_t a_before = sim.flow_bytes_acked(fa);
  sim.apply_conversion(
      net.after,
      [&](std::uint32_t) { return std::vector<Path>{TwoPodNet::path_a()}; },
      /*blackout_s=*/0.5, ConversionScope::kFullBlackout);
  sim.run_until(1.4);
  // Even the untouched pod stalls under a full control-plane blackout.
  const double a_rate =
      static_cast<double>(sim.flow_bytes_acked(fa) - a_before) * 8 / 0.4;
  EXPECT_LT(a_rate, 30e6);
}

TEST(GradualConversion, UnchangedPathsKeepCongestionState) {
  TwoPodNet net;
  PacketSim sim;
  sim.set_network(net.before);
  const auto fa = sim.add_flow(0, 1, 0, 0.0, {TwoPodNet::path_a()});
  sim.run_until(1.0);
  const std::uint64_t before = sim.flow_bytes_acked(fa);
  // Zero-blackout conversion to an identical topology: a warm connection
  // should not even hiccup (no slow-start restart).
  sim.apply_conversion(
      net.before,
      [&](std::uint32_t) { return std::vector<Path>{TwoPodNet::path_a()}; },
      0.0, ConversionScope::kChangedOnly);
  sim.run_until(1.2);
  const double rate =
      static_cast<double>(sim.flow_bytes_acked(fa) - before) * 8 / 0.2;
  EXPECT_GT(rate, 90e6);
}

TEST(GradualConversion, StagedPipelineReachesTarget) {
  // Full controller integration: testbed Clos -> global in 4 pod stages.
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.clos.link_bps = 100e6;  // scaled for test speed
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = options.k_local = options.k_clos = 4;
  options.count_rules = false;
  const Controller ctl{FlatTree{p}, options};

  const ModeAssignment from = ModeAssignment::uniform(4, PodMode::kClos);
  const ModeAssignment to = ModeAssignment::uniform(4, PodMode::kGlobal);
  const auto stages = Controller::gradual_plan(from, to);

  CompiledMode current = ctl.compile(from, 4);
  PacketSim sim;
  sim.set_network(current.graph());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::uint32_t s = 0; s < 12; ++s) {
    pairs.emplace_back(s, (s + 6) % 24);
    sim.add_flow(s, (s + 6) % 24, 0, 0.0,
                 current.paths().server_paths(NodeId{s}, NodeId{(s + 6) % 24}));
  }
  double t = 0.5;
  sim.run_until(t);
  for (const ModeAssignment& stage : stages) {
    CompiledMode next = ctl.compile(stage, 4);
    sim.apply_conversion(
        next.graph(),
        [&](std::uint32_t flow) {
          return next.paths().server_paths(NodeId{pairs[flow].first},
                                           NodeId{pairs[flow].second});
        },
        0.05, ConversionScope::kChangedOnly);
    t += 0.5;
    sim.run_until(t);
    current = std::move(next);
  }
  // Traffic flows throughout and after the staged conversion.
  EXPECT_GT(sim.total_bytes_acked(), 0u);
  const std::uint64_t before = sim.total_bytes_acked();
  sim.run_until(t + 0.5);
  EXPECT_GT(sim.total_bytes_acked(), before);
}

}  // namespace
}  // namespace flattree
