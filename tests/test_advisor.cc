#include "control/advisor.h"

#include <gtest/gtest.h>

#include <limits>

#include "traffic/patterns.h"
#include "traffic/traces.h"

namespace flattree {
namespace {

const ClosParams kLayout = ClosParams::topo2();  // 1728 servers

TEST(Advisor, RackLocalTrafficMeansClos) {
  // All-to-all within each rack.
  const Workload flows =
      clustered_all_to_all(kLayout.total_servers(), kLayout.servers_per_edge);
  const Advice advice = advise_modes(kLayout, flows);
  EXPECT_EQ(advice.uniform, PodMode::kClos);
  for (const PodMode mode : advice.assignment.pod_modes) {
    EXPECT_EQ(mode, PodMode::kClos);
  }
}

TEST(Advisor, PodLocalTrafficMeansLocal) {
  const std::uint32_t per_pod =
      kLayout.servers_per_edge * kLayout.edge_per_pod;
  // Cross-rack pairs within each pod.
  Workload flows;
  for (std::uint32_t s = 0; s < kLayout.total_servers(); ++s) {
    const std::uint32_t pod = s / per_pod;
    const std::uint32_t dst =
        pod * per_pod + (s + kLayout.servers_per_edge) % per_pod;
    if (dst != s) flows.push_back(Flow{s, dst, 1e6});
  }
  const Advice advice = advise_modes(kLayout, flows);
  EXPECT_EQ(advice.uniform, PodMode::kLocal);
}

TEST(Advisor, NetworkWideTrafficMeansGlobal) {
  const std::uint32_t per_pod =
      kLayout.servers_per_edge * kLayout.edge_per_pod;
  const Workload flows =
      pod_stride_traffic(kLayout.total_servers(), per_pod);
  const Advice advice = advise_modes(kLayout, flows);
  EXPECT_EQ(advice.uniform, PodMode::kGlobal);
  for (const PodMode mode : advice.assignment.pod_modes) {
    EXPECT_EQ(mode, PodMode::kGlobal);
  }
}

TEST(Advisor, TracePresetsMapToTheirPaperModes) {
  // §5.2's conclusions: Hadoop-2 (rack-local) -> Clos; Web/Cache
  // (Pod-local) -> local; Hadoop-1 (network-wide) -> global.
  const auto advise = [&](TraceParams params) {
    params.duration_s = 2.0;
    params.flows_per_s = 3000;
    return advise_modes(kLayout, generate_trace(kLayout, params)).uniform;
  };
  EXPECT_EQ(advise(TraceParams::hadoop2()), PodMode::kClos);
  EXPECT_EQ(advise(TraceParams::web()), PodMode::kLocal);
  EXPECT_EQ(advise(TraceParams::cache()), PodMode::kLocal);
  EXPECT_EQ(advise(TraceParams::hadoop1()), PodMode::kGlobal);
}

TEST(Advisor, HybridZonesFromMixedWorkload) {
  // Pod 0 runs a rack-local service, pod 1 a pod-local one, pods 2+ a
  // network-wide one -> hybrid assignment.
  const std::uint32_t per_rack = kLayout.servers_per_edge;
  const std::uint32_t per_pod = per_rack * kLayout.edge_per_pod;
  Workload flows;
  // Pod 0: intra-rack chatter.
  for (std::uint32_t s = 0; s < per_pod; ++s) {
    flows.push_back(Flow{s, (s / per_rack) * per_rack + (s + 1) % per_rack, 1e6});
  }
  // Pod 1: cross-rack intra-pod.
  for (std::uint32_t s = per_pod; s < 2 * per_pod; ++s) {
    flows.push_back(Flow{s, per_pod + (s + per_rack) % per_pod, 1e6});
  }
  // Pods 2..: pod stride among themselves.
  for (std::uint32_t s = 2 * per_pod; s < kLayout.total_servers(); ++s) {
    std::uint32_t dst = s + per_pod;
    if (dst >= kLayout.total_servers()) dst = 2 * per_pod + (dst % per_pod);
    if (dst / per_pod != s / per_pod) flows.push_back(Flow{s, dst, 1e6});
  }
  const Advice advice = advise_modes(kLayout, flows);
  EXPECT_EQ(advice.assignment.pod_modes[0], PodMode::kClos);
  EXPECT_EQ(advice.assignment.pod_modes[1], PodMode::kLocal);
  EXPECT_EQ(advice.assignment.pod_modes[2], PodMode::kGlobal);
  EXPECT_EQ(advice.assignment.pod_modes.back(), PodMode::kGlobal);
}

TEST(Advisor, BytesOutweighFlowCounts) {
  // Many tiny rack-local flows vs few huge inter-pod flows: bytes decide.
  const std::uint32_t per_pod =
      kLayout.servers_per_edge * kLayout.edge_per_pod;
  Workload flows;
  for (int i = 0; i < 100; ++i) flows.push_back(Flow{0, 1, 1e3});
  flows.push_back(Flow{0, per_pod, 1e9});
  const Advice advice = advise_modes(kLayout, flows);
  EXPECT_EQ(advice.assignment.pod_modes[0], PodMode::kGlobal);
}

TEST(Advisor, PersistentFlowsCountAsUnits) {
  const Workload flows{Flow{0, 1, 0.0}, Flow{0, 2, 0.0}, Flow{0, 1, 0.0}};
  const Advice advice = advise_modes(kLayout, flows);
  EXPECT_DOUBLE_EQ(advice.per_pod[0].total_bytes, 3.0);
  EXPECT_EQ(advice.assignment.pod_modes[0], PodMode::kClos);
}

TEST(Advisor, IdlePodsDefaultToGlobal) {
  const Workload flows{Flow{0, 1, 1e6}};
  const Advice advice = advise_modes(kLayout, flows);
  EXPECT_EQ(advice.assignment.pod_modes.back(), PodMode::kGlobal);
}

TEST(Advisor, RejectsOutOfRangeServers) {
  const Workload flows{Flow{0, 99999999, 1e6}};
  EXPECT_THROW((void)advise_modes(kLayout, flows), std::invalid_argument);
}

TEST(Advisor, ThresholdsAreTunable) {
  // 40% rack-local: below the default 50% threshold, above a 30% one.
  Workload flows;
  for (int i = 0; i < 40; ++i) flows.push_back(Flow{0, 1, 1e6});
  for (int i = 0; i < 60; ++i) {
    flows.push_back(Flow{0, kLayout.servers_per_edge *
                                kLayout.edge_per_pod * 2u,
                         1e6});
  }
  AdvisorOptions loose;
  loose.rack_threshold = 0.3;
  EXPECT_EQ(advise_modes(kLayout, flows).assignment.pod_modes[0],
            PodMode::kGlobal);
  EXPECT_EQ(advise_modes(kLayout, flows, loose).assignment.pod_modes[0],
            PodMode::kClos);
}

TEST(Advisor, TieBreakExactRackThresholdIsClos) {
  // Rack fraction landing exactly on the threshold qualifies (>=, never >),
  // and Clos outranks local and global on a tie.
  PodTrafficProfile profile;
  profile.intra_rack = 50.0;
  profile.intra_pod = 0.0;
  profile.inter_pod = 50.0;
  profile.total_bytes = 100.0;
  EXPECT_EQ(profile.recommended(AdvisorOptions{}), PodMode::kClos);
}

TEST(Advisor, TieBreakExactPodThresholdIsLocal) {
  // Below the rack threshold, exactly on the Pod threshold: local wins over
  // global, never the other way round.
  PodTrafficProfile profile;
  profile.intra_rack = 10.0;
  profile.intra_pod = 40.0;
  profile.inter_pod = 50.0;
  profile.total_bytes = 100.0;
  EXPECT_EQ(profile.recommended(AdvisorOptions{}), PodMode::kLocal);
}

TEST(Advisor, TieBreakBothThresholdsMetPrefersMostLocal) {
  // A fully rack-local Pod qualifies for Clos AND local (rack locality
  // implies Pod locality); the explicit order makes Clos the winner rather
  // than an artifact of branch ordering.
  PodTrafficProfile profile;
  profile.intra_rack = 100.0;
  profile.total_bytes = 100.0;
  EXPECT_EQ(profile.recommended(AdvisorOptions{}), PodMode::kClos);
}

TEST(Advisor, TieBreakNoTrafficIsGlobal) {
  EXPECT_EQ(PodTrafficProfile{}.recommended(AdvisorOptions{}),
            PodMode::kGlobal);
}

TEST(Advisor, ProfileValidateRejectsNegativeAndNaN) {
  PodTrafficProfile negative;
  negative.intra_rack = -1.0;
  negative.total_bytes = 1.0;
  EXPECT_THROW(negative.validate(), std::invalid_argument);

  PodTrafficProfile nan;
  nan.inter_pod = std::numeric_limits<double>::quiet_NaN();
  nan.total_bytes = 1.0;
  EXPECT_THROW(nan.validate(), std::invalid_argument);

  // Component sums exceeding total_bytes beyond rounding slack: a profile
  // that crossed a trust boundary with inconsistent books is rejected too.
  PodTrafficProfile overflow;
  overflow.intra_rack = 60.0;
  overflow.intra_pod = 60.0;
  overflow.total_bytes = 100.0;
  EXPECT_THROW(overflow.validate(), std::invalid_argument);

  PodTrafficProfile ok;
  ok.intra_rack = 40.0;
  ok.intra_pod = 30.0;
  ok.inter_pod = 30.0;
  ok.total_bytes = 100.0;
  EXPECT_NO_THROW(ok.validate());
}

TEST(Advisor, AdviceValidateRejectsShapeMismatch) {
  Advice advice;
  advice.assignment.pod_modes = {PodMode::kClos, PodMode::kClos};
  advice.per_pod.resize(3);  // not parallel to the assignment
  EXPECT_THROW(advice.validate(), std::invalid_argument);

  advice.per_pod.resize(2);
  EXPECT_NO_THROW(advice.validate());

  advice.per_pod[1].intra_pod = -5.0;  // offending Pod named in diagnostic
  EXPECT_THROW(advice.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace flattree
