#include "lp/mcf.h"

#include <gtest/gtest.h>

#include "lp/throughput.h"
#include "net/capacity.h"
#include "routing/ksp.h"
#include "topo/clos.h"

namespace flattree {
namespace {

// Two flows share one unit-capacity edge.
McfInstance shared_edge_instance() {
  McfInstance inst;
  inst.capacity = {1.0};
  inst.commodities.resize(2);
  inst.commodities[0].paths = {{0}};
  inst.commodities[1].paths = {{0}};
  return inst;
}

TEST(McfLpMin, SharedEdgeSplitsEvenly) {
  const McfResult r = solve_lp_min(shared_edge_instance());
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.min_rate, 0.5, 1e-7);
  EXPECT_NEAR(r.avg_rate, 0.5, 1e-7);  // LP-min allocates no residual
}

TEST(McfLpAvg, SharedEdgeTotalIsCapacity) {
  const McfResult r = solve_lp_avg(shared_edge_instance());
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.avg_rate * 2, 1.0, 1e-7);
}

TEST(McfFill, SharedEdgeSplitsEvenly) {
  const McfResult r = solve_max_min_fill(shared_edge_instance());
  EXPECT_NEAR(r.flow_rate[0], 0.5, 1e-9);
  EXPECT_NEAR(r.flow_rate[1], 0.5, 1e-9);
}

// Classic max-min example: flows A(e0), B(e0,e1), C(e1); cap(e0)=1,
// cap(e1)=2. Max-min rates: A=B=0.5, C=1.5.
McfInstance chain_instance() {
  McfInstance inst;
  inst.capacity = {1.0, 2.0};
  inst.commodities.resize(3);
  inst.commodities[0].paths = {{0}};
  inst.commodities[1].paths = {{0, 1}};
  inst.commodities[2].paths = {{1}};
  return inst;
}

TEST(McfFill, ProgressiveFillingChain) {
  const McfResult r = solve_max_min_fill(chain_instance());
  EXPECT_NEAR(r.flow_rate[0], 0.5, 1e-9);
  EXPECT_NEAR(r.flow_rate[1], 0.5, 1e-9);
  EXPECT_NEAR(r.flow_rate[2], 1.5, 1e-9);
}

TEST(McfLpMin, ChainMaxMinObjective) {
  const McfResult r = solve_lp_min(chain_instance());
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.min_rate, 0.5, 1e-7);
}

TEST(McfLpAvg, ChainMaximizesUtilization) {
  // LP average starves B: A=1, C=2, B=0 -> total 3.
  const McfResult r = solve_lp_avg(chain_instance());
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.avg_rate * 3, 3.0, 1e-7);
  EXPECT_NEAR(r.flow_rate[1], 0.0, 1e-7);
}

// Multipath: one flow with two disjoint unit paths reaches rate 2.
TEST(McfAll, MultipathAggregates) {
  McfInstance inst;
  inst.capacity = {1.0, 1.0};
  inst.commodities.resize(1);
  inst.commodities[0].paths = {{0}, {1}};
  EXPECT_NEAR(solve_lp_min(inst).min_rate, 2.0, 1e-7);
  EXPECT_NEAR(solve_lp_avg(inst).avg_rate, 2.0, 1e-7);
  EXPECT_NEAR(solve_max_min_fill(inst).flow_rate[0], 2.0, 1e-9);
}

TEST(McfLpMin, LpSplitBeatsSubflowFill) {
  // LP-min can shift load between paths; subflow filling cannot. Flow A has
  // paths {e0} and {e1}; flow B only {e0}. cap = 1 each.
  // Fill: e0 splits 0.5/0.5, A also gets e1 full: A=1.5, B=0.5.
  // LP-min: A can vacate e0 -> A=1 (e1), B=1 (e0): min = 1.
  McfInstance inst;
  inst.capacity = {1.0, 1.0};
  inst.commodities.resize(2);
  inst.commodities[0].paths = {{0}, {1}};
  inst.commodities[1].paths = {{0}};
  const McfResult lp = solve_lp_min(inst);
  const McfResult fill = solve_max_min_fill(inst);
  EXPECT_NEAR(lp.min_rate, 1.0, 1e-7);
  EXPECT_NEAR(fill.flow_rate[1], 0.5, 1e-9);
  EXPECT_GE(lp.min_rate, fill.min_rate - 1e-9);  // LP-min dominates fill min
}

// ---- equal-split flow-level filling ----------------------------------------

TEST(McfEqualSplit, SharedEdgeSplitsEvenly) {
  const McfResult r = solve_equal_split_fill(shared_edge_instance());
  EXPECT_NEAR(r.flow_rate[0], 0.5, 1e-9);
  EXPECT_NEAR(r.flow_rate[1], 0.5, 1e-9);
}

TEST(McfEqualSplit, SplitsAcrossParallelPaths) {
  McfInstance inst;
  inst.capacity = {1.0, 1.0};
  inst.commodities.resize(1);
  inst.commodities[0].paths = {{0}, {1}};
  const McfResult r = solve_equal_split_fill(inst);
  EXPECT_NEAR(r.flow_rate[0], 2.0, 1e-9);
  EXPECT_NEAR(r.path_rates[0][0], 1.0, 1e-9);
  EXPECT_NEAR(r.path_rates[0][1], 1.0, 1e-9);
}

TEST(McfEqualSplit, AsymmetricPathsBoundByWorst) {
  // Equal split cannot shift load: a flow over a 1G and a 3G path is
  // bound to 2x the slow path.
  McfInstance inst;
  inst.capacity = {1.0, 3.0};
  inst.commodities.resize(1);
  inst.commodities[0].paths = {{0}, {1}};
  const McfResult r = solve_equal_split_fill(inst);
  EXPECT_NEAR(r.flow_rate[0], 2.0, 1e-9);
}

TEST(McfEqualSplit, BeatsSubflowFillOnSharedBottleneck) {
  // Flow A has a private path and a shared one; flow B only the shared one.
  // Subflow filling starves B to 0.5; equal split is fairer (B = 2/3).
  McfInstance inst;
  inst.capacity = {1.0, 1.0};
  inst.commodities.resize(2);
  inst.commodities[0].paths = {{0}, {1}};
  inst.commodities[1].paths = {{0}};
  const McfResult eq = solve_equal_split_fill(inst);
  const McfResult sub = solve_max_min_fill(inst);
  EXPECT_NEAR(eq.flow_rate[1], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(sub.flow_rate[1], 0.5, 1e-9);
  EXPECT_GT(eq.min_rate, sub.min_rate);
}

TEST(McfEqualSplit, TerminatesOnFractionalCoefficients) {
  // Regression: 12-way splits once caused epsilon-shaving livelock.
  McfInstance inst;
  inst.capacity.assign(24, 1.0);
  inst.commodities.resize(6);
  for (std::size_t f = 0; f < 6; ++f) {
    for (int p = 0; p < 12; ++p) {
      inst.commodities[f].paths.push_back(
          {static_cast<std::uint32_t>((f * 7 + p) % 24),
           static_cast<std::uint32_t>((f * 11 + p * 3) % 24)});
    }
  }
  const McfResult r = solve_equal_split_fill(inst);
  for (double rate : r.flow_rate) EXPECT_GT(rate, 0.0);
}

// ---- coupled-MPTCP model (LP-min base + residual filling) ------------------

TEST(McfMptcpModel, DominatesLpMin) {
  const McfResult mptcp = solve_mptcp_model(chain_instance());
  const McfResult lp_min = solve_lp_min(chain_instance());
  ASSERT_TRUE(mptcp.feasible);
  // Every flow gets at least the max-min fair rate...
  EXPECT_GE(mptcp.min_rate, lp_min.min_rate - 1e-6);
  // ...and residual capacity is consumed: flow C rides the slack on e1.
  EXPECT_GT(mptcp.avg_rate, lp_min.avg_rate + 0.1);
}

TEST(McfMptcpModel, BoundedByLpAvg) {
  const McfResult mptcp = solve_mptcp_model(chain_instance());
  const McfResult lp_avg = solve_lp_avg(chain_instance());
  EXPECT_LE(mptcp.avg_rate, lp_avg.avg_rate + 1e-6);
}

TEST(McfMptcpModel, RespectsCapacities) {
  const McfInstance inst = chain_instance();
  const McfResult r = solve_mptcp_model(inst);
  std::vector<double> load(inst.capacity.size(), 0.0);
  for (std::size_t f = 0; f < inst.commodities.size(); ++f) {
    for (std::size_t p = 0; p < inst.commodities[f].paths.size(); ++p) {
      for (std::uint32_t e : inst.commodities[f].paths[p]) {
        load[e] += r.path_rates[f][p];
      }
    }
  }
  for (std::size_t e = 0; e < load.size(); ++e) {
    EXPECT_LE(load[e], inst.capacity[e] + 1e-6);
  }
}

TEST(McfMptcpModel, MorePathsNeverHurt) {
  // The LP base can only improve with extra path columns.
  McfInstance narrow;
  narrow.capacity = {1.0, 1.0, 1.0};
  narrow.commodities.resize(2);
  narrow.commodities[0].paths = {{0}};
  narrow.commodities[1].paths = {{0}};
  McfInstance wide = narrow;
  wide.commodities[0].paths.push_back({1});
  wide.commodities[1].paths.push_back({2});
  EXPECT_GE(solve_mptcp_model(wide).min_rate,
            solve_mptcp_model(narrow).min_rate - 1e-9);
}

TEST(McfValidate, EmptyCommodityPathsThrow) {
  McfInstance inst;
  inst.capacity = {1.0};
  inst.commodities.resize(1);
  EXPECT_THROW((void)solve_lp_min(inst), std::invalid_argument);
  EXPECT_THROW((void)solve_max_min_fill(inst), std::invalid_argument);
}

TEST(McfValidate, BadEdgeIndexThrows) {
  McfInstance inst;
  inst.capacity = {1.0};
  inst.commodities.resize(1);
  inst.commodities[0].paths = {{3}};
  EXPECT_THROW((void)solve_lp_avg(inst), std::invalid_argument);
}

TEST(McfEmpty, NoCommoditiesIsFeasiblyZero) {
  McfInstance inst;
  inst.capacity = {1.0};
  EXPECT_TRUE(solve_lp_min(inst).feasible);
  EXPECT_TRUE(solve_lp_avg(inst).feasible);
}

TEST(BuildMcfInstance, CompressesToUsedEdges) {
  const Graph g = build_clos(ClosParams::testbed());
  const LogicalTopology topo{g};
  PathCache cache{g, 4};
  const auto servers = g.servers();
  std::vector<FlowPaths> flows;
  flows.push_back(
      FlowPaths{servers[0], servers[6], cache.server_paths(servers[0], servers[6])});
  const McfInstance inst = build_mcf_instance(topo, flows);
  EXPECT_EQ(inst.commodities.size(), 1u);
  // Row count is bounded by the edges the paths touch, not the whole net.
  EXPECT_LT(inst.capacity.size(), topo.directed_count());
  EXPECT_GT(inst.capacity.size(), 0u);
}

TEST(BuildMcfInstance, LpAgreesWithFillOnSymmetricClos) {
  // Pod-stride-like pair of flows on the testbed: both solvers should find
  // the same (symmetric) optimum.
  const Graph g = build_clos(ClosParams::testbed());
  const LogicalTopology topo{g};
  PathCache cache{g, 4};
  const auto servers = g.servers();
  std::vector<FlowPaths> flows;
  flows.push_back(FlowPaths{servers[0], servers[6],
                            cache.server_paths(servers[0], servers[6])});
  flows.push_back(FlowPaths{servers[6], servers[0],
                            cache.server_paths(servers[6], servers[0])});
  const McfInstance inst = build_mcf_instance(topo, flows);
  const McfResult lp = solve_lp_min(inst);
  const McfResult fill = solve_max_min_fill(inst);
  ASSERT_TRUE(lp.feasible);
  // One 10G NIC each, opposite directions: both reach full rate.
  EXPECT_NEAR(lp.min_rate, 10e9, 1e3);
  EXPECT_NEAR(fill.min_rate, 10e9, 1e3);
}

}  // namespace
}  // namespace flattree
