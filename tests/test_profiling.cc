#include "core/profiling.h"

#include <gtest/gtest.h>

#include "net/stats.h"

namespace flattree {
namespace {

TEST(ProfileMn, TestbedSweepIsTrivial) {
  // Testbed: h/r = 2, so (m, n) = (1, 1) is the only candidate.
  const MnProfile profile =
      profile_mn(ClosParams::testbed(), WiringPattern::kPattern1);
  ASSERT_EQ(profile.candidates.size(), 1u);
  EXPECT_EQ(profile.best.m, 1u);
  EXPECT_EQ(profile.best.n, 1u);
  EXPECT_GT(profile.best.avg_server_pair_hops, 0.0);
}

TEST(ProfileMn, SweepCoversGrid) {
  // topo-2: h/r = 6 -> candidates (m,n) with m,n >= 1, m+n <= 6: 15 pairs.
  const MnProfile profile =
      profile_mn(ClosParams::topo2(), WiringPattern::kPattern1, /*stride=*/1);
  EXPECT_EQ(profile.candidates.size(), 15u);
}

TEST(ProfileMn, BestIsMinimal) {
  const MnProfile profile =
      profile_mn(ClosParams::topo2(), WiringPattern::kPattern1);
  for (const MnCandidate& c : profile.candidates) {
    EXPECT_LE(profile.best.avg_server_pair_hops,
              c.avg_server_pair_hops + 1e-12);
  }
}

TEST(ProfileMn, StrideSubsamples) {
  const MnProfile full =
      profile_mn(ClosParams::topo2(), WiringPattern::kPattern1, 1);
  const MnProfile coarse =
      profile_mn(ClosParams::topo2(), WiringPattern::kPattern1, 2);
  EXPECT_LT(coarse.candidates.size(), full.candidates.size());
}

TEST(ProfileMn, ZeroStrideThrows) {
  EXPECT_THROW(
      (void)profile_mn(ClosParams::testbed(), WiringPattern::kPattern1, 0),
      std::invalid_argument);
}

TEST(ProfileMn, BestBeatsClosBaseline) {
  // Any profiled global-mode layout must beat the Clos baseline's average
  // path length — the motivation for flattening.
  const ClosParams clos = ClosParams::topo2();
  const MnProfile profile = profile_mn(clos, WiringPattern::kPattern1, 2);
  FlatTreeParams params;
  params.clos = clos;
  params.six_port_per_column = profile.best.m;
  params.four_port_per_column = profile.best.n;
  const FlatTree tree{params};
  const auto clos_stats =
      compute_path_length_stats(tree.realize_uniform(PodMode::kClos));
  EXPECT_LT(profile.best.avg_server_pair_hops,
            clos_stats.avg_server_pair_hops);
}

}  // namespace
}  // namespace flattree
