// Randomized cross-validation properties: independent implementations (or
// mathematical identities) checked against each other over seeded random
// instances. These catch subtle algorithmic bugs that fixed examples miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <set>

#include "core/flat_tree.h"
#include "lp/mcf.h"
#include "net/rng.h"
#include "routing/ksp.h"
#include "sim/fluid.h"
#include "sim/packet.h"
#include "topo/clos.h"
#include "topo/random_graph.h"

namespace flattree {
namespace {

// ---- Yen's algorithm vs exhaustive path enumeration ------------------------

// All loopless switch paths from src to dst, by DFS.
void enumerate_paths(const Graph& g, NodeId here, NodeId dst,
                     std::vector<NodeId>& stack, std::set<NodeId>& seen,
                     std::vector<Path>& out) {
  if (here == dst) {
    out.push_back(stack);
    return;
  }
  for (const Adjacency& adj : g.neighbors(here)) {
    if (!is_switch(g.node(adj.peer).role)) continue;
    if (seen.contains(adj.peer)) continue;
    seen.insert(adj.peer);
    stack.push_back(adj.peer);
    enumerate_paths(g, adj.peer, dst, stack, seen, out);
    stack.pop_back();
    seen.erase(adj.peer);
  }
}

Graph random_switch_graph(std::uint64_t seed, std::uint32_t nodes,
                          std::uint32_t extra_links) {
  Graph g;
  Rng rng{seed};
  std::vector<NodeId> switches;
  for (std::uint32_t i = 0; i < nodes; ++i) {
    switches.push_back(g.add_node(NodeRole::kEdge));
  }
  // Random spanning tree first (connectivity), then extra random links.
  for (std::uint32_t i = 1; i < nodes; ++i) {
    g.add_link(switches[i], switches[rng.next_below(i)], 1e9);
  }
  std::uint32_t added = 0;
  while (added < extra_links) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(nodes));
    const std::uint32_t b = static_cast<std::uint32_t>(rng.next_below(nodes));
    if (a == b) continue;
    bool exists = false;
    for (const Adjacency& adj : g.neighbors(switches[a])) {
      if (adj.peer == switches[b]) exists = true;
    }
    if (exists) continue;
    g.add_link(switches[a], switches[b], 1e9);
    ++added;
  }
  return g;
}

class YenVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, YenVsBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_P(YenVsBruteForce, TopKLengthsMatch) {
  const Graph g = random_switch_graph(GetParam(), 8, 6);
  const KspSolver solver{g};
  const NodeId src{0}, dst{7};

  std::vector<Path> all;
  std::vector<NodeId> stack{src};
  std::set<NodeId> seen{src};
  enumerate_paths(g, src, dst, stack, seen, all);
  ASSERT_FALSE(all.empty());
  std::vector<std::size_t> lengths;
  for (const Path& p : all) lengths.push_back(path_length(p));
  std::sort(lengths.begin(), lengths.end());

  const std::uint32_t k = 5;
  const auto yen = solver.k_shortest_paths(src, dst, k);
  ASSERT_EQ(yen.size(), std::min<std::size_t>(k, all.size()));
  for (std::size_t i = 0; i < yen.size(); ++i) {
    EXPECT_EQ(path_length(yen[i]), lengths[i]) << "rank " << i;
  }
  // Yen's paths must each be one of the enumerated paths.
  for (const Path& p : yen) {
    EXPECT_NE(std::find(all.begin(), all.end(), p), all.end());
  }
}

TEST_P(YenVsBruteForce, PathsAreDistinctAndSorted) {
  const Graph g = random_switch_graph(GetParam() + 100, 9, 8);
  const KspSolver solver{g};
  const auto paths = solver.k_shortest_paths(NodeId{0}, NodeId{8}, 10);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(path_length(paths[i]), path_length(paths[i - 1]));
    for (std::size_t j = 0; j < i; ++j) EXPECT_NE(paths[i], paths[j]);
  }
}

// ---- LP-min vs progressive filling on single-path flows --------------------
// With one path per flow, progressive filling's first saturation level is
// exactly the LP max-min optimum.

class LpVsFill : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, LpVsFill, ::testing::Values(11, 12, 13, 14, 15));

McfInstance random_single_path_instance(std::uint64_t seed) {
  Rng rng{seed};
  McfInstance inst;
  const std::uint32_t edges = 6 + static_cast<std::uint32_t>(rng.next_below(6));
  for (std::uint32_t e = 0; e < edges; ++e) {
    inst.capacity.push_back(1e9 * (1 + rng.next_below(10)));
  }
  const std::uint32_t flows = 4 + static_cast<std::uint32_t>(rng.next_below(8));
  for (std::uint32_t f = 0; f < flows; ++f) {
    std::vector<std::uint32_t> path;
    const std::uint32_t hops = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    std::set<std::uint32_t> used;
    for (std::uint32_t h = 0; h < hops; ++h) {
      const std::uint32_t e = static_cast<std::uint32_t>(rng.next_below(edges));
      if (used.insert(e).second) path.push_back(e);
    }
    inst.commodities.push_back(McfCommodity{{path}});
  }
  return inst;
}

TEST_P(LpVsFill, SinglePathMaxMinEqualsLpMin) {
  const McfInstance inst = random_single_path_instance(GetParam());
  const McfResult lp = solve_lp_min(inst);
  const McfResult fill = solve_max_min_fill(inst);
  ASSERT_TRUE(lp.feasible);
  EXPECT_NEAR(lp.min_rate / fill.min_rate, 1.0, 1e-6);
}

TEST_P(LpVsFill, EqualSplitMatchesSubflowFillOnSinglePaths) {
  // With exactly one path per flow the two filling disciplines coincide.
  const McfInstance inst = random_single_path_instance(GetParam() + 50);
  const McfResult a = solve_max_min_fill(inst);
  const McfResult b = solve_equal_split_fill(inst);
  for (std::size_t f = 0; f < inst.commodities.size(); ++f) {
    EXPECT_NEAR(a.flow_rate[f], b.flow_rate[f], 1.0);
  }
}

TEST_P(LpVsFill, MptcpSandwichedBetweenBounds) {
  const McfInstance inst = random_single_path_instance(GetParam() + 99);
  const McfResult lp_min = solve_lp_min(inst);
  const McfResult lp_avg = solve_lp_avg(inst);
  const McfResult mptcp = solve_mptcp_model(inst);
  ASSERT_TRUE(mptcp.feasible);
  EXPECT_GE(mptcp.min_rate, lp_min.min_rate - 1.0);
  EXPECT_LE(mptcp.avg_rate, lp_avg.avg_rate + 1.0);
  EXPECT_GE(mptcp.avg_rate, lp_min.avg_rate - 1.0);
}

// ---- allocators respect capacities ------------------------------------------

class CapacityRespect : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, CapacityRespect,
                         ::testing::Values(21, 22, 23, 24));

McfInstance random_multipath_instance(std::uint64_t seed) {
  Rng rng{seed};
  McfInstance inst;
  const std::uint32_t edges = 10;
  for (std::uint32_t e = 0; e < edges; ++e) {
    inst.capacity.push_back(1e9 * (1 + rng.next_below(5)));
  }
  for (std::uint32_t f = 0; f < 6; ++f) {
    McfCommodity commodity;
    const std::uint32_t paths = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    for (std::uint32_t p = 0; p < paths; ++p) {
      std::vector<std::uint32_t> path;
      std::set<std::uint32_t> used;
      for (std::uint32_t h = 0; h < 1 + rng.next_below(3); ++h) {
        const std::uint32_t e =
            static_cast<std::uint32_t>(rng.next_below(edges));
        if (used.insert(e).second) path.push_back(e);
      }
      commodity.paths.push_back(std::move(path));
    }
    inst.commodities.push_back(std::move(commodity));
  }
  return inst;
}

TEST_P(CapacityRespect, AllAllocatorsFeasible) {
  const McfInstance inst = random_multipath_instance(GetParam());
  const auto check = [&](const McfResult& r) {
    std::vector<double> load(inst.capacity.size(), 0.0);
    for (std::size_t f = 0; f < inst.commodities.size(); ++f) {
      for (std::size_t p = 0; p < inst.commodities[f].paths.size(); ++p) {
        for (std::uint32_t e : inst.commodities[f].paths[p]) {
          load[e] += r.path_rates[f][p];
        }
      }
    }
    for (std::size_t e = 0; e < load.size(); ++e) {
      EXPECT_LE(load[e], inst.capacity[e] * (1 + 1e-9) + 1e-3);
    }
  };
  check(solve_max_min_fill(inst));
  check(solve_equal_split_fill(inst));
  check(solve_mptcp_model(inst));
  const McfResult lp = solve_lp_avg(inst);
  if (lp.feasible) check(lp);
}

// ---- packet simulator vs fluid model ----------------------------------------

TEST(PacketVsFluid, DumbbellRatesAgree) {
  // Long-run TCP goodput on a shared bottleneck should approach the fluid
  // max-min allocation (equal shares).
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId s2 = g.add_node(NodeRole::kServer);
  const NodeId s3 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  g.add_link(s0, e0, 1e9);
  g.add_link(s1, e0, 1e9);
  g.add_link(s2, e1, 1e9);
  g.add_link(s3, e1, 1e9);
  g.add_link(e0, e1, 200e6);

  auto cache = std::make_shared<PathCache>(g, 1);
  const auto provider = [cache](NodeId a, NodeId b, std::uint32_t) {
    return cache->server_paths(a, b);
  };
  FluidSimulator fluid{g, provider};
  const Workload flows{Flow{0, 2}, Flow{1, 3}};
  const auto fluid_rates = fluid.measure_rates(flows);

  PacketSim packet;
  packet.set_network(g);
  packet.add_flow(0, 2, 0, 0.0, provider(s0, s2, 0));
  packet.add_flow(1, 3, 0, 0.0, provider(s1, s3, 1));
  packet.run_until(4.0);
  for (int f = 0; f < 2; ++f) {
    const double goodput = packet.flow_bytes_acked(f) * 8 / 4.0;
    EXPECT_NEAR(goodput / fluid_rates[f], 1.0, 0.15) << "flow " << f;
  }
}

TEST(PacketVsFluid, FctOrderingPreserved) {
  // A 4x larger flow should take ~4x longer in both simulators.
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  g.add_link(s0, e0, 1e9);
  g.add_link(s1, e1, 1e9);
  g.add_link(e0, e1, 100e6);
  auto cache = std::make_shared<PathCache>(g, 1);
  const auto provider = [cache](NodeId a, NodeId b, std::uint32_t) {
    return cache->server_paths(a, b);
  };

  FluidSimulator fluid{g, provider};
  const auto fluid_results =
      fluid.run({Flow{0, 1, 1e6, 0.0}, Flow{0, 1, 4e6, 10.0}});
  const double fluid_ratio =
      fluid_results[1].fct_s() / fluid_results[0].fct_s();

  PacketSim packet;
  packet.set_network(g);
  const auto f1 = packet.add_flow(0, 1, 1e6, 0.0, provider(s0, s1, 0));
  const auto f2 = packet.add_flow(0, 1, 4e6, 10.0, provider(s0, s1, 1));
  packet.run_until(30.0);
  ASSERT_TRUE(packet.flow_completed(f1));
  ASSERT_TRUE(packet.flow_completed(f2));
  const double packet_ratio = (packet.flow_finish_time(f2) - 10.0) /
                              packet.flow_finish_time(f1);
  EXPECT_NEAR(packet_ratio / fluid_ratio, 1.0, 0.35);
}

// ---- realized flat-tree invariants over a parameter sweep -------------------

class FlatTreeSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};
INSTANTIATE_TEST_SUITE_P(MnGrid, FlatTreeSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(1u, 2u, 3u)));

TEST_P(FlatTreeSweep, EveryMnRealizesEveryMode) {
  const auto& [m, n] = GetParam();
  FlatTreeParams p;
  p.clos = ClosParams{4, 4, 4, 4, 8, 8, 32, 4};  // h/r = 8: room for m+n <= 6
  p.six_port_per_column = m;
  p.four_port_per_column = n;
  const FlatTree tree{p};
  for (const PodMode mode : {PodMode::kClos, PodMode::kLocal, PodMode::kGlobal}) {
    const Graph g = tree.realize_uniform(mode);
    EXPECT_TRUE(g.connected()) << "m=" << m << " n=" << n;
    for (NodeId core : g.nodes_with_role(NodeRole::kCore)) {
      EXPECT_EQ(g.degree(core), p.clos.core_ports);
    }
  }
}

// ---- random converter configurations ----------------------------------------

class RandomConfigs : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigs,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

TEST_P(RandomConfigs, RealizeEitherThrowsOrConservesPorts) {
  // Fuzz the configuration space: any per-type-legal configuration vector
  // must either be rejected (mismatched side bundles) or realize into a
  // port-conserving connected graph — never crash or corrupt.
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  const FlatTree tree{p};
  Rng rng{GetParam()};
  std::vector<ConverterConfig> configs;
  for (const Converter& conv : tree.converters()) {
    if (conv.type == ConverterType::kFourPort) {
      configs.push_back(rng.next_below(2) == 0 ? ConverterConfig::kDefault
                                               : ConverterConfig::kLocal);
    } else {
      switch (rng.next_below(4)) {
        case 0: configs.push_back(ConverterConfig::kDefault); break;
        case 1: configs.push_back(ConverterConfig::kLocal); break;
        case 2: configs.push_back(ConverterConfig::kSide); break;
        default: configs.push_back(ConverterConfig::kCross); break;
      }
    }
  }
  try {
    const Graph g = tree.realize(configs);
    // Accepted: the physical invariants must hold.
    for (NodeId core : g.nodes_with_role(NodeRole::kCore)) {
      EXPECT_EQ(g.degree(core), p.clos.core_ports);
    }
    for (NodeId server : g.servers()) {
      EXPECT_EQ(g.degree(server), 1u);
    }
  } catch (const std::logic_error&) {
    // Rejected: a half-configured side bundle. Also fine.
  }
}

// ---- repeated run-time conversions -------------------------------------------

TEST(PacketSimStress, ManyBackToBackConversions) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.clos.link_bps = 50e6;
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  const FlatTree tree{p};
  const Graph clos = tree.realize_uniform(PodMode::kClos);
  const Graph global = tree.realize_uniform(PodMode::kGlobal);
  PathCache clos_paths{clos, 4};
  PathCache global_paths{global, 4};

  PacketSim sim;
  sim.set_network(clos);
  for (std::uint32_t s = 0; s < 6; ++s) {
    sim.add_flow(s, s + 6, 0, 0.0,
                 clos_paths.server_paths(NodeId{s}, NodeId{s + 6}));
  }
  double t = 0.3;
  sim.run_until(t);
  std::uint64_t last = sim.total_bytes_acked();
  for (int round = 0; round < 10; ++round) {
    const bool to_global = round % 2 == 0;
    PathCache& paths = to_global ? global_paths : clos_paths;
    sim.apply_conversion(
        to_global ? global : clos,
        [&](std::uint32_t flow) {
          return paths.server_paths(NodeId{flow}, NodeId{flow + 6});
        },
        0.02);
    t += 0.3;
    sim.run_until(t);
    // Traffic keeps moving after every flip.
    EXPECT_GT(sim.total_bytes_acked(), last) << "round " << round;
    last = sim.total_bytes_acked();
  }
}

}  // namespace
}  // namespace flattree
