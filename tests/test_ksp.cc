#include "routing/ksp.h"

#include <gtest/gtest.h>

#include "core/flat_tree.h"
#include "routing/path.h"
#include "topo/clos.h"

namespace flattree {
namespace {

// Diamond: a - {b, c} - d, plus a longer detour a - e - f - d.
class DiamondGraph : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = g_.add_node(NodeRole::kEdge);
    b_ = g_.add_node(NodeRole::kEdge);
    c_ = g_.add_node(NodeRole::kEdge);
    d_ = g_.add_node(NodeRole::kEdge);
    e_ = g_.add_node(NodeRole::kEdge);
    f_ = g_.add_node(NodeRole::kEdge);
    g_.add_link(a_, b_, 1e9);
    g_.add_link(a_, c_, 1e9);
    g_.add_link(b_, d_, 1e9);
    g_.add_link(c_, d_, 1e9);
    g_.add_link(a_, e_, 1e9);
    g_.add_link(e_, f_, 1e9);
    g_.add_link(f_, d_, 1e9);
  }
  Graph g_;
  NodeId a_, b_, c_, d_, e_, f_;
};

TEST_F(DiamondGraph, ShortestPath) {
  const KspSolver solver{g_};
  const auto path = solver.shortest_path(a_, d_);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path_length(*path), 2u);
  // Lexicographic tie-break picks b (lower id) over c.
  EXPECT_EQ((*path)[1], b_);
}

TEST_F(DiamondGraph, TrivialPath) {
  const KspSolver solver{g_};
  const auto path = solver.shortest_path(a_, a_);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST_F(DiamondGraph, KShortestOrdering) {
  const KspSolver solver{g_};
  const auto paths = solver.k_shortest_paths(a_, d_, 3);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(path_length(paths[0]), 2u);
  EXPECT_EQ(path_length(paths[1]), 2u);
  EXPECT_EQ(path_length(paths[2]), 3u);
  EXPECT_EQ(paths[0][1], b_);
  EXPECT_EQ(paths[1][1], c_);
  EXPECT_EQ(paths[2][1], e_);
}

TEST_F(DiamondGraph, KLargerThanPathCount) {
  const KspSolver solver{g_};
  const auto paths = solver.k_shortest_paths(a_, d_, 50);
  // Exactly 3 loopless paths exist.
  EXPECT_EQ(paths.size(), 3u);
}

TEST_F(DiamondGraph, PathsAreLooplessAndValid) {
  const KspSolver solver{g_};
  for (const Path& p : solver.k_shortest_paths(a_, d_, 10)) {
    EXPECT_TRUE(is_valid_path(g_, p));
  }
}

TEST_F(DiamondGraph, PathsAreDistinct) {
  const KspSolver solver{g_};
  const auto paths = solver.k_shortest_paths(a_, d_, 10);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i], paths[j]);
    }
  }
}

TEST_F(DiamondGraph, ZeroKReturnsEmpty) {
  const KspSolver solver{g_};
  EXPECT_TRUE(solver.k_shortest_paths(a_, d_, 0).empty());
}

TEST(Ksp, DisconnectedReturnsNothing) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kEdge);
  const KspSolver solver{g};
  EXPECT_FALSE(solver.shortest_path(a, b).has_value());
  EXPECT_TRUE(solver.k_shortest_paths(a, b, 4).empty());
}

TEST(Ksp, ServersNotTransited) {
  // a - s - b but also a - c - b; the server route must not be used.
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kEdge);
  const NodeId s = g.add_node(NodeRole::kServer);
  const NodeId c = g.add_node(NodeRole::kEdge);
  g.add_link(a, s, 1e9);
  g.add_link(s, b, 1e9);
  g.add_link(a, c, 1e9);
  g.add_link(c, b, 1e9);
  const KspSolver solver{g};
  const auto paths = solver.k_shortest_paths(a, b, 5);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ((*paths.begin())[1], c);
}

TEST(Ksp, FatTreeEqualCostPaths) {
  // k=4 fat-tree: 4 shortest inter-pod switch paths (one per core).
  const Graph g = build_clos(ClosParams::fat_tree(4));
  const KspSolver solver{g};
  const auto edges = g.nodes_with_role(NodeRole::kEdge);
  const auto paths = solver.k_shortest_paths(edges[0], edges[2], 8);
  ASSERT_GE(paths.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(path_length(paths[i]), 4u);  // edge-agg-core-agg-edge
  }
  if (paths.size() > 4) {
    EXPECT_GT(path_length(paths[4]), 4u);
  }
}

TEST(Ksp, Deterministic) {
  const Graph g = build_clos(ClosParams::testbed());
  const KspSolver solver{g};
  const auto edges = g.nodes_with_role(NodeRole::kEdge);
  const auto p1 = solver.k_shortest_paths(edges[0], edges[5], 6);
  const auto p2 = solver.k_shortest_paths(edges[0], edges[5], 6);
  EXPECT_EQ(p1, p2);
}

TEST(PathCache, CachesAndReturnsServerPaths) {
  const Graph g = build_clos(ClosParams::testbed());
  PathCache cache{g, 4};
  const auto servers = g.servers();
  // Cross-pod pair.
  const NodeId src = servers[0];
  const NodeId dst = servers[10];
  const auto paths = cache.server_paths(src, dst);
  ASSERT_FALSE(paths.empty());
  EXPECT_LE(paths.size(), 4u);
  for (const Path& p : paths) {
    EXPECT_TRUE(is_valid_path(g, p));
    EXPECT_EQ(p.front(), src);
    EXPECT_EQ(p.back(), dst);
  }
  EXPECT_GE(cache.cached_pairs(), 1u);
  // Second call hits the cache (same switch pair).
  (void)cache.server_paths(src, dst);
  EXPECT_EQ(cache.cached_pairs(), 1u);
}

TEST(PathCache, SameRackPairUsesSharedSwitch) {
  const Graph g = build_clos(ClosParams::testbed());
  PathCache cache{g, 4};
  const auto servers = g.servers();
  // Servers 0,1,2 share edge 0 in the testbed layout.
  const auto paths = cache.server_paths(servers[0], servers[1]);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 3u);
}

TEST(PathCache, GlobalModeFlatTreePathsShorter) {
  // Flattening must reduce (or preserve) inter-pod switch distance.
  FlatTreeParams params = FlatTreeParams::defaults_for(ClosParams::testbed());
  const FlatTree tree{params};
  const Graph clos = tree.realize_uniform(PodMode::kClos);
  const Graph global = tree.realize_uniform(PodMode::kGlobal);
  const KspSolver sc{clos};
  const KspSolver sg{global};
  const auto edges_c = clos.nodes_with_role(NodeRole::kEdge);
  double total_c = 0, total_g = 0;
  int pairs = 0;
  for (std::size_t i = 0; i < edges_c.size(); ++i) {
    for (std::size_t j = 0; j < edges_c.size(); ++j) {
      if (i == j) continue;
      total_c += path_length(*sc.shortest_path(edges_c[i], edges_c[j]));
      total_g += path_length(*sg.shortest_path(edges_c[i], edges_c[j]));
      ++pairs;
    }
  }
  EXPECT_LE(total_g, total_c);
}

}  // namespace
}  // namespace flattree
