#include "routing/ecmp.h"

#include <gtest/gtest.h>

#include <set>

#include "routing/path.h"
#include "topo/clos.h"

namespace flattree {
namespace {

TEST(Ecmp, PathIsValidAndShortest) {
  const Graph g = build_clos(ClosParams::fat_tree(4));
  EcmpRouter router{g};
  const auto servers = g.servers();
  const Path p = router.flow_path(servers[0], servers[15], /*flow_key=*/1);
  EXPECT_TRUE(is_valid_path(g, p));
  EXPECT_EQ(p.front(), servers[0]);
  EXPECT_EQ(p.back(), servers[15]);
  // Inter-pod server path in a fat-tree: 6 hops (srv-e-a-c-a-e-srv).
  EXPECT_EQ(path_length(p), 6u);
}

TEST(Ecmp, SameRackPath) {
  const Graph g = build_clos(ClosParams::fat_tree(4));
  EcmpRouter router{g};
  const auto servers = g.servers();
  const Path p = router.flow_path(servers[0], servers[1], 1);
  EXPECT_EQ(path_length(p), 2u);
}

TEST(Ecmp, DeterministicPerFlow) {
  const Graph g = build_clos(ClosParams::fat_tree(4));
  EcmpRouter r1{g}, r2{g};
  const auto servers = g.servers();
  EXPECT_EQ(r1.flow_path(servers[0], servers[15], 9),
            r2.flow_path(servers[0], servers[15], 9));
}

TEST(Ecmp, DifferentFlowsSpreadAcrossPaths) {
  const Graph g = build_clos(ClosParams::fat_tree(8));
  EcmpRouter router{g};
  const auto servers = g.servers();
  std::set<Path> distinct;
  for (std::uint64_t flow = 0; flow < 64; ++flow) {
    distinct.insert(router.flow_path(servers[0], servers.back(), flow));
  }
  // 16 equal-cost paths exist; hashing should find several.
  EXPECT_GE(distinct.size(), 4u);
}

TEST(Ecmp, SingleFlowUsesSinglePath) {
  // The paper's point about ECMP: one flow -> one path, repeatedly.
  const Graph g = build_clos(ClosParams::fat_tree(8));
  EcmpRouter router{g};
  const auto servers = g.servers();
  const Path first = router.flow_path(servers[3], servers[100], 77);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(router.flow_path(servers[3], servers[100], 77), first);
  }
}

TEST(Ecmp, EqualCostPathCountFatTree) {
  // k-ary fat-tree: (k/2)^2 shortest paths between edge switches in
  // different pods, k/2 within a pod.
  const Graph g = build_clos(ClosParams::fat_tree(4));
  EcmpRouter router{g};
  const auto edges = g.nodes_with_role(NodeRole::kEdge);
  EXPECT_EQ(router.equal_cost_path_count(edges[0], edges[2]), 4u);
  EXPECT_EQ(router.equal_cost_path_count(edges[0], edges[1]), 2u);
  EXPECT_EQ(router.equal_cost_path_count(edges[0], edges[0]), 1u);
}

TEST(Ecmp, EqualCostPathCountCap) {
  const Graph g = build_clos(ClosParams::fat_tree(8));
  EcmpRouter router{g};
  const auto edges = g.nodes_with_role(NodeRole::kEdge);
  EXPECT_EQ(router.equal_cost_path_count(edges[0], edges[8], 3), 3u);
}

TEST(Ecmp, SeedChangesHashing) {
  const Graph g = build_clos(ClosParams::fat_tree(8));
  EcmpRouter r1{g, 1}, r2{g, 2};
  const auto servers = g.servers();
  int diffs = 0;
  for (std::uint64_t flow = 0; flow < 32; ++flow) {
    if (r1.flow_path(servers[0], servers.back(), flow) !=
        r2.flow_path(servers[0], servers.back(), flow)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

}  // namespace
}  // namespace flattree
