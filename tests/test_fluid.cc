#include "sim/fluid.h"

#include <gtest/gtest.h>

#include "net/rng.h"
#include "routing/ksp.h"
#include "topo/clos.h"

namespace flattree {
namespace {

// Dumbbell: 2 servers per side, 1G bottleneck between the switches.
struct Dumbbell {
  Graph g;
  std::vector<NodeId> servers;
  Dumbbell() {
    const NodeId s0 = g.add_node(NodeRole::kServer);
    const NodeId s1 = g.add_node(NodeRole::kServer);
    const NodeId s2 = g.add_node(NodeRole::kServer);
    const NodeId s3 = g.add_node(NodeRole::kServer);
    const NodeId e0 = g.add_node(NodeRole::kEdge);
    const NodeId e1 = g.add_node(NodeRole::kEdge);
    g.add_link(s0, e0, 10e9);
    g.add_link(s1, e0, 10e9);
    g.add_link(s2, e1, 10e9);
    g.add_link(s3, e1, 10e9);
    g.add_link(e0, e1, 1e9);
    servers = {s0, s1, s2, s3};
  }
};

PathProvider ksp_provider(const Graph& g, std::uint32_t k) {
  auto cache = std::make_shared<PathCache>(g, k);
  return [cache](NodeId src, NodeId dst, std::uint32_t) {
    return cache->server_paths(src, dst);
  };
}

TEST(FluidRates, SingleFlowGetsBottleneck) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  Workload flows{Flow{0, 2}};
  const auto rates = sim.measure_rates(flows);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_NEAR(rates[0], 1e9, 1.0);
}

TEST(FluidRates, TwoFlowsShareBottleneck) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  Workload flows{Flow{0, 2}, Flow{1, 3}};
  const auto rates = sim.measure_rates(flows);
  EXPECT_NEAR(rates[0], 0.5e9, 1.0);
  EXPECT_NEAR(rates[1], 0.5e9, 1.0);
}

TEST(FluidRates, OppositeDirectionsDontContend) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  Workload flows{Flow{0, 2}, Flow{2, 0}};
  const auto rates = sim.measure_rates(flows);
  EXPECT_NEAR(rates[0], 1e9, 1.0);
  EXPECT_NEAR(rates[1], 1e9, 1.0);
}

TEST(FluidRun, SingleFlowFct) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  Workload flows{Flow{0, 2, /*bytes=*/1e9 / 8, /*start=*/0.5}};
  const auto results = sim.run(flows);
  ASSERT_TRUE(results[0].completed);
  EXPECT_NEAR(results[0].start_s, 0.5, 1e-9);
  // 125 MB at 1 Gb/s = 1 s.
  EXPECT_NEAR(results[0].fct_s(), 1.0, 1e-6);
}

TEST(FluidRun, SequentialFlowsDontInterfere) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  Workload flows{Flow{0, 2, 1e8, 0.0}, Flow{1, 3, 1e8, 100.0}};
  const auto results = sim.run(flows);
  EXPECT_NEAR(results[0].fct_s(), 8e8 / 1e9, 1e-6);
  EXPECT_NEAR(results[1].fct_s(), 8e8 / 1e9, 1e-6);
}

TEST(FluidRun, ConcurrentFlowsSlowdown) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  Workload flows{Flow{0, 2, 1e8, 0.0}, Flow{1, 3, 1e8, 0.0}};
  const auto results = sim.run(flows);
  // Perfect sharing: both finish at 1.6 s (0.8 s of work each at half rate).
  EXPECT_NEAR(results[0].fct_s(), 1.6, 1e-6);
  EXPECT_NEAR(results[1].fct_s(), 1.6, 1e-6);
}

TEST(FluidRun, ShorterFlowReleasesBandwidth) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  // Flow B is half the size: finishes first, then A speeds up.
  Workload flows{Flow{0, 2, 1e8, 0.0}, Flow{1, 3, 0.5e8, 0.0}};
  const auto results = sim.run(flows);
  // B: 0.4e9 bits at 0.5G = 0.8 s. A: 0.4e9 bits at 0.5G + 0.4e9 at 1G = 1.2 s.
  EXPECT_NEAR(results[1].fct_s(), 0.8, 1e-6);
  EXPECT_NEAR(results[0].fct_s(), 1.2, 1e-6);
}

TEST(FluidRun, DependenciesGateRelease) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  Workload flows;
  flows.push_back(Flow{0, 2, 1e8, 0.0});
  Flow second{2, 0, 1e8, 0.0};
  second.depends_on = {0};
  second.dep_delay_s = 0.25;
  flows.push_back(second);
  const auto results = sim.run(flows);
  EXPECT_NEAR(results[0].finish_s, 0.8, 1e-6);
  EXPECT_NEAR(results[1].start_s, 0.8 + 0.25, 1e-6);
  EXPECT_NEAR(results[1].finish_s, 1.05 + 0.8, 1e-6);
}

TEST(FluidRun, DependencyChainOrders) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  Workload flows;
  for (int i = 0; i < 4; ++i) {
    Flow f{static_cast<std::uint32_t>(i % 2), static_cast<std::uint32_t>(2 + i % 2),
           1e7, 0.0};
    if (i > 0) f.depends_on = {static_cast<std::uint32_t>(i - 1)};
    flows.push_back(f);
  }
  const auto results = sim.run(flows);
  for (int i = 1; i < 4; ++i) {
    EXPECT_GE(results[i].start_s, results[i - 1].finish_s - 1e-9);
  }
}

TEST(FluidRun, MultipathUsesBothPaths) {
  // Two switches connected by two parallel 1G links -> logical 2G pipe; a
  // 2-subflow flow should fill both.
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId a0 = g.add_node(NodeRole::kAgg);
  const NodeId a1 = g.add_node(NodeRole::kAgg);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  g.add_link(s0, e0, 10e9);
  g.add_link(s1, e1, 10e9);
  g.add_link(e0, a0, 1e9);
  g.add_link(e0, a1, 1e9);
  g.add_link(a0, e1, 1e9);
  g.add_link(a1, e1, 1e9);
  FluidSimulator sim{g, ksp_provider(g, 2)};
  Workload flows{Flow{0, 1}};
  const auto rates = sim.measure_rates(flows);
  EXPECT_NEAR(rates[0], 2e9, 1.0);
}

TEST(FluidRates, EqualSplitModelOption) {
  // Same dumbbell under the equal-split model: a two-path flow is bound to
  // 2x its slowest path, and single-path flows behave identically to the
  // subflow model.
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId a0 = g.add_node(NodeRole::kAgg);
  const NodeId a1 = g.add_node(NodeRole::kAgg);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  g.add_link(s0, e0, 10e9);
  g.add_link(s1, e1, 10e9);
  g.add_link(e0, a0, 1e9);
  g.add_link(e0, a1, 3e9);
  g.add_link(a0, e1, 1e9);
  g.add_link(a1, e1, 3e9);
  FluidOptions options;
  options.rate_model = RateModel::kEqualSplit;
  FluidSimulator sim{g, ksp_provider(g, 2), options};
  const auto rates = sim.measure_rates({Flow{0, 1}});
  EXPECT_NEAR(rates[0], 2e9, 1.0);  // equal split: 2x the 1G path
}

TEST(FluidRun, EqualSplitFctConsistent) {
  Dumbbell net;
  FluidOptions options;
  options.rate_model = RateModel::kEqualSplit;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1), options};
  Workload flows{Flow{0, 2, 1e8, 0.0}};
  const auto results = sim.run(flows);
  ASSERT_TRUE(results[0].completed);
  EXPECT_NEAR(results[0].fct_s(), 0.8, 1e-6);
}

TEST(FluidRun, CoflowCompletionTimes) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  // Two coflows: group 0 has a fast and a slow member; group 1 one flow.
  Workload flows;
  Flow a{0, 2, 1e7, 0.0};
  a.group = 0;
  Flow b{1, 3, 5e7, 0.0};
  b.group = 0;
  Flow c{0, 3, 1e7, 10.0};
  c.group = 1;
  flows = {a, b, c};
  const auto results = sim.run(flows);
  const auto coflows = coflow_completion_times(flows, results);
  ASSERT_EQ(coflows.size(), 2u);
  EXPECT_TRUE(coflows[0].completed);
  EXPECT_EQ(coflows[0].flows, 2u);
  // CCT = the slow member's finish (both started at 0).
  EXPECT_NEAR(coflows[0].cct_s, results[1].finish_s, 1e-9);
  EXPECT_GT(coflows[0].cct_s, results[0].fct_s());
  EXPECT_NEAR(coflows[1].cct_s, results[2].fct_s(), 1e-9);
}

TEST(FluidRun, UngroupedFlowsExcludedFromCoflows) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  Workload flows{Flow{0, 2, 1e6, 0.0}};  // group defaults to kNoGroup
  const auto results = sim.run(flows);
  EXPECT_TRUE(coflow_completion_times(flows, results).empty());
}

TEST(FluidRun, RejectsZeroByteFlows) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  Workload flows{Flow{0, 2, 0.0, 0.0}};
  EXPECT_THROW((void)sim.run(flows), std::invalid_argument);
}

TEST(FluidRun, RejectsBadDependencyIndex) {
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  Flow f{0, 2, 1e6, 0.0};
  f.depends_on = {7};
  EXPECT_THROW((void)sim.run({f}), std::invalid_argument);
}

TEST(FluidRun, HorizonCutsOff) {
  Dumbbell net;
  FluidOptions options;
  options.max_time_s = 0.1;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1), options};
  Workload flows{Flow{0, 2, 1e12, 0.0}};  // would take ~2 hours
  const auto results = sim.run(flows);
  EXPECT_FALSE(results[0].completed);
  EXPECT_TRUE(results[0].started);
}

TEST(FluidRun, SubUlpFlowTailTerminates) {
  // Zeno-stall regression: a flow remainder just above the retirement
  // threshold, draining at a rate whose completion increment is smaller
  // than one ulp of the clock, used to round `now + dt` back to `now` and
  // spin the event loop forever. The forced minimal step must retire it.
  Graph g;
  const NodeId a = g.add_node(NodeRole::kServer);
  const NodeId b = g.add_node(NodeRole::kServer);
  g.add_link(a, b, 100e9);
  FluidSimulator sim{g, ksp_provider(g, 1)};
  Flow f{0, 1, 1.1e-6};  // above the 1e-6 retire threshold
  f.start_s = 16.0;      // ulp(16) >> 1.1e-6 * 8 / 100e9
  const auto results = sim.run({f});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].completed);
}

TEST(FluidSchedule, CapacityOnlyFailureStallsAndResumes) {
  // Null refresh: the bottleneck vanishes mid-flow and the flow stalls on
  // its (unchanged) path until the recovery event restores capacity.
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  const LinkId bottleneck{4};  // e0-e1, the fifth link added
  FailureSchedule schedule;
  schedule.fail_at(0.2, FailureSet{{bottleneck}, {}});
  schedule.recover_at(1.0, FailureSet{{bottleneck}, {}});
  Workload flows{Flow{0, 2, 1e8, 0.0}};  // 0.8 s at 1 Gb/s uninterrupted
  ScheduleRunStats stats;
  const auto results =
      sim.run_with_schedule(flows, schedule, 0.05, nullptr, &stats);
  ASSERT_TRUE(results[0].completed);
  // 0.2 s of progress, a 0.8 s outage, then the remaining 0.6 s.
  EXPECT_NEAR(results[0].fct_s(), 1.6, 1e-6);
  EXPECT_EQ(stats.fail_events, 1u);
  EXPECT_EQ(stats.recover_events, 1u);
  EXPECT_EQ(stats.reroutes, 0u);
}

TEST(FluidSchedule, RerouteAfterRepairLag) {
  // Two disjoint 1G paths e0-a0-e1 / e0-a1-e1; kill the agg the flow uses
  // and check it stalls for exactly one repair lag, then finishes at full
  // rate on the surviving path.
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId a0 = g.add_node(NodeRole::kAgg);
  const NodeId a1 = g.add_node(NodeRole::kAgg);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  g.add_link(s0, e0, 10e9);
  g.add_link(s1, e1, 10e9);
  g.add_link(e0, a0, 1e9);
  g.add_link(e0, a1, 1e9);
  g.add_link(a0, e1, 1e9);
  g.add_link(a1, e1, 1e9);

  auto cache = std::make_shared<PathCache>(g, 1);
  const auto paths = cache->server_paths(s0, s1);
  ASSERT_EQ(paths.size(), 1u);
  ASSERT_EQ(paths[0].size(), 5u);  // s0 e0 agg e1 s1
  const NodeId agg_used = paths[0][2];

  FluidSimulator sim{g, [cache](NodeId src, NodeId dst, std::uint32_t) {
                       return cache->server_paths(src, dst);
                     }};
  FailureSchedule schedule;
  schedule.fail_at(0.2, FailureSet{{}, {agg_used}});
  const RoutingRefresh refresh = [](const Graph& degraded) -> PathProvider {
    auto fresh = std::make_shared<PathCache>(degraded, 1);
    return [fresh](NodeId src, NodeId dst, std::uint32_t) {
      return fresh->server_paths(src, dst);
    };
  };
  Workload flows{Flow{0, 1, 1e8, 0.0}};
  ScheduleRunStats stats;
  const auto results =
      sim.run_with_schedule(flows, schedule, 0.3, refresh, &stats);
  ASSERT_TRUE(results[0].completed);
  // Progress stops at t=0.2; the refreshed routing lands at t=0.5 and the
  // remaining 0.6 s drains on the other agg: 0.8 s of work + 0.3 s stalled.
  EXPECT_NEAR(results[0].fct_s(), 1.1, 1e-6);
  EXPECT_EQ(stats.fail_events, 1u);
  EXPECT_EQ(stats.refreshes, 1u);
  EXPECT_EQ(stats.reroutes, 1u);
  EXPECT_EQ(stats.black_holed, 0u);
}

TEST(FluidSchedule, BlackHoledFlowWaitsForRecovery) {
  // The only inter-side path dies: the routing refresh finds no route
  // (black-holed), and the flow sits stalled until the recovery event
  // restores its old path's capacity.
  Dumbbell net;
  FluidSimulator sim{net.g, ksp_provider(net.g, 1)};
  const LinkId bottleneck{4};
  FailureSchedule schedule;
  schedule.fail_at(0.2, FailureSet{{bottleneck}, {}});
  schedule.recover_at(1.0, FailureSet{{bottleneck}, {}});
  const RoutingRefresh refresh = [](const Graph& degraded) -> PathProvider {
    auto fresh = std::make_shared<PathCache>(degraded, 1);
    return [fresh](NodeId src, NodeId dst, std::uint32_t) {
      return fresh->server_paths(src, dst);
    };
  };
  Workload flows{Flow{0, 2, 1e8, 0.0}};
  ScheduleRunStats stats;
  const auto results =
      sim.run_with_schedule(flows, schedule, 0.1, refresh, &stats);
  ASSERT_TRUE(results[0].completed);
  EXPECT_NEAR(results[0].fct_s(), 1.6, 1e-6);
  EXPECT_EQ(stats.black_holed, 1u);
  EXPECT_EQ(stats.refreshes, 2u);
  EXPECT_EQ(stats.reroutes, 0u);
}

TEST(FluidRun, OnClosTestbedManyFlows) {
  const Graph g = build_clos(ClosParams::testbed());
  FluidSimulator sim{g, ksp_provider(g, 4)};
  Workload flows;
  Rng rng{3};
  for (int i = 0; i < 50; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.next_below(24));
    auto dst = static_cast<std::uint32_t>(rng.next_below(24));
    if (dst == src) dst = (dst + 1) % 24;
    flows.push_back(Flow{src, dst, 1e7, rng.next_double()});
  }
  const auto results = sim.run(flows);
  for (const auto& r : results) {
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.fct_s(), 0.0);
  }
}

}  // namespace
}  // namespace flattree
