#include "topo/random_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

namespace flattree {
namespace {

RandomGraphParams small_rg() {
  RandomGraphParams p;
  p.switches = 40;
  p.ports_per_switch = 12;
  p.servers = 120;
  p.seed = 42;
  return p;
}

TEST(RandomGraph, NodeCounts) {
  const Graph g = build_random_graph(small_rg());
  EXPECT_EQ(g.count_role(NodeRole::kServer), 120u);
  EXPECT_EQ(g.switches().size(), 40u);
}

TEST(RandomGraph, ServerDistributionUniform) {
  const Graph g = build_random_graph(small_rg());
  for (NodeId sw : g.switches()) {
    EXPECT_EQ(g.attached_servers(sw).size(), 3u);  // 120 / 40
  }
}

TEST(RandomGraph, PortBudgetRespected) {
  const auto p = small_rg();
  const Graph g = build_random_graph(p);
  for (NodeId sw : g.switches()) {
    EXPECT_LE(g.degree(sw), p.ports_per_switch);
    // At most one dark port from odd stub counts (none here: budget even).
    EXPECT_GE(g.degree(sw) + 1, p.ports_per_switch);
  }
}

TEST(RandomGraph, Connected) {
  EXPECT_TRUE(build_random_graph(small_rg()).connected());
}

TEST(RandomGraph, DeterministicBySeed) {
  const Graph a = build_random_graph(small_rg());
  const Graph b = build_random_graph(small_rg());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t i = 0; i < a.link_count(); ++i) {
    const Link& la = a.link(LinkId{static_cast<std::uint32_t>(i)});
    const Link& lb = b.link(LinkId{static_cast<std::uint32_t>(i)});
    EXPECT_EQ(la.a, lb.a);
    EXPECT_EQ(la.b, lb.b);
  }
}

TEST(RandomGraph, DifferentSeedsDiffer) {
  auto p1 = small_rg();
  auto p2 = small_rg();
  p2.seed = 43;
  const Graph a = build_random_graph(p1);
  const Graph b = build_random_graph(p2);
  std::size_t same = 0;
  for (std::size_t i = 0; i < std::min(a.link_count(), b.link_count()); ++i) {
    const Link& la = a.link(LinkId{static_cast<std::uint32_t>(i)});
    const Link& lb = b.link(LinkId{static_cast<std::uint32_t>(i)});
    if (la.a == lb.a && la.b == lb.b) ++same;
  }
  EXPECT_LT(same, a.link_count() / 2);
}

TEST(RandomGraph, MostlySimpleGraph) {
  // The repair pass should leave at most a handful of parallel links.
  const Graph g = build_random_graph(small_rg());
  std::size_t parallel = 0;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (std::size_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{static_cast<std::uint32_t>(i)});
    if (g.node(l.a).role == NodeRole::kServer ||
        g.node(l.b).role == NodeRole::kServer) {
      continue;
    }
    const auto key = std::make_pair(std::min(l.a.value(), l.b.value()),
                                    std::max(l.a.value(), l.b.value()));
    if (!seen.insert(key).second) ++parallel;
  }
  EXPECT_LE(parallel, 3u);
}

TEST(RandomGraph, RejectsOverfullServers) {
  RandomGraphParams p;
  p.switches = 2;
  p.ports_per_switch = 4;
  p.servers = 20;
  EXPECT_THROW((void)build_random_graph(p), std::invalid_argument);
}

TEST(RandomGraph, FromClosDeviceBudget) {
  const ClosParams clos = ClosParams::testbed();
  const Graph g = build_random_graph_from_clos(clos, 7);
  EXPECT_EQ(g.count_role(NodeRole::kServer), clos.total_servers());
  EXPECT_EQ(g.switches().size(), clos.total_switches());
  EXPECT_TRUE(g.connected());
  // Port budgets: no switch exceeds its Clos port count.
  for (NodeId sw : g.nodes_with_role(NodeRole::kEdge)) {
    EXPECT_LE(g.degree(sw), clos.edge_uplinks + clos.servers_per_edge);
  }
  for (NodeId sw : g.nodes_with_role(NodeRole::kCore)) {
    EXPECT_LE(g.degree(sw), clos.core_ports);
  }
}

TEST(TwoStage, NodeCountsAndLocality) {
  const ClosParams clos = ClosParams::testbed();
  const TwoStageParams p = TwoStageParams::from_clos(clos);
  const Graph g = build_two_stage_random_graph(p);
  EXPECT_EQ(g.count_role(NodeRole::kServer), clos.total_servers());
  EXPECT_TRUE(g.connected());
  // Core switches take no servers (§2.1).
  for (NodeId core : g.nodes_with_role(NodeRole::kCore)) {
    EXPECT_TRUE(g.attached_servers(core).empty());
  }
  // Servers are uniform within each pod.
  for (NodeId sw : g.nodes_with_role(NodeRole::kEdge)) {
    const std::size_t expected =
        clos.total_servers() / clos.pods / p.switches_per_pod;
    const std::size_t got = g.attached_servers(sw).size();
    EXPECT_GE(got + 1, expected);
    EXPECT_LE(got, expected + 1);
  }
}

TEST(TwoStage, PodLocalLinksStayInPod) {
  const TwoStageParams p = TwoStageParams::from_clos(ClosParams::testbed());
  const Graph g = build_two_stage_random_graph(p);
  // Count switch-switch links within pods vs across; local random graphs
  // must exist (some intra-pod links) and the global stage must connect
  // pods (some links touching cores or crossing pods).
  std::size_t intra = 0, cross = 0;
  for (std::size_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{static_cast<std::uint32_t>(i)});
    const Node& na = g.node(l.a);
    const Node& nb = g.node(l.b);
    if (na.role == NodeRole::kServer || nb.role == NodeRole::kServer) continue;
    if (na.pod.valid() && nb.pod.valid() && na.pod == nb.pod) {
      ++intra;
    } else {
      ++cross;
    }
  }
  EXPECT_GT(intra, 0u);
  EXPECT_GT(cross, 0u);
}

TEST(TwoStage, RejectsNonDividingServers) {
  TwoStageParams p = TwoStageParams::from_clos(ClosParams::testbed());
  p.servers = 25;  // not divisible by 4 pods
  EXPECT_THROW((void)build_two_stage_random_graph(p), std::invalid_argument);
}

TEST(TwoStage, Deterministic) {
  const TwoStageParams p = TwoStageParams::from_clos(ClosParams::testbed());
  const Graph a = build_two_stage_random_graph(p);
  const Graph b = build_two_stage_random_graph(p);
  EXPECT_EQ(a.link_count(), b.link_count());
}

}  // namespace
}  // namespace flattree
