#include "routing/segment_routing.h"

#include <gtest/gtest.h>

#include "core/flat_tree.h"
#include "routing/ksp.h"
#include "topo/clos.h"

namespace flattree {
namespace {

TEST(SegmentRouting, EncodeReplayRoundTrip) {
  const Graph g = build_clos(ClosParams::testbed());
  const PortMap ports{g};
  PathCache cache{g, 4};
  const auto servers = g.servers();
  for (const Path& path : cache.server_paths(servers[0], servers[20])) {
    const LabelStack stack = encode_label_stack(ports, path);
    const auto visited = replay_label_stack(g, ports, stack, path[1]);
    ASSERT_EQ(visited.size() + 1, path.size());
    for (std::size_t i = 0; i < visited.size(); ++i) {
      EXPECT_EQ(visited[i], path[i + 1]);
    }
  }
}

TEST(SegmentRouting, AgreesWithMacEncodingOnShortPaths) {
  // The two source-routing schemes must drive packets over the same hops.
  const Graph g = build_clos(ClosParams::testbed());
  const PortMap ports{g};
  const KspSolver solver{g};
  const auto edges = g.nodes_with_role(NodeRole::kEdge);
  for (const Path& path : solver.k_shortest_paths(edges[0], edges[7], 4)) {
    const auto mac_walk =
        replay_route(g, ports, encode_route(ports, path), path.front());
    const auto mpls_walk =
        replay_label_stack(g, ports, encode_label_stack(ports, path),
                           path.front());
    EXPECT_EQ(mac_walk, mpls_walk);
  }
}

TEST(SegmentRouting, NoDepthLimit) {
  // A 10-hop chain overflows the 48-bit MAC scheme but not a label stack.
  Graph g;
  std::vector<NodeId> chain;
  for (int i = 0; i < 11; ++i) chain.push_back(g.add_node(NodeRole::kEdge));
  for (int i = 0; i + 1 < 11; ++i) g.add_link(chain[i], chain[i + 1], 1e9);
  const PortMap ports{g};
  const Path path(chain.begin(), chain.end());
  EXPECT_THROW((void)encode_route(ports, path), std::invalid_argument);
  const LabelStack stack = encode_label_stack(ports, path);
  EXPECT_EQ(stack.depth(), 10u);
  const auto visited = replay_label_stack(g, ports, stack, chain.front());
  EXPECT_EQ(visited.back(), chain.back());
}

TEST(SegmentRouting, ShortPathRejected) {
  const Graph g = build_clos(ClosParams::testbed());
  const PortMap ports{g};
  EXPECT_THROW((void)encode_label_stack(ports, Path{g.switches().front()}),
               std::invalid_argument);
}

TEST(SegmentRouting, BadLabelThrows) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kEdge);
  g.add_link(a, b, 1e9);
  const PortMap ports{g};
  LabelStack stack;
  stack.labels = {42};  // no such port
  EXPECT_THROW((void)replay_label_stack(g, ports, stack, a),
               std::logic_error);
}

TEST(SegmentRouting, TransitRulesIndependentOfDiameter) {
  // C rules per transit switch, vs D x C for the TTL-masked MAC scheme.
  EXPECT_EQ(segment_transit_rule_count(48), 48u);
  EXPECT_LT(segment_transit_rule_count(48), transit_rule_count(4, 48));
}

TEST(SegmentRouting, FlatTreeGlobalModeAllPairs) {
  const FlatTree tree{FlatTreeParams::defaults_for(ClosParams::testbed())};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  const PortMap ports{g};
  PathCache cache{g, 4};
  const auto switches = g.switches();
  for (std::size_t i = 0; i < switches.size(); i += 4) {
    for (std::size_t j = 1; j < switches.size(); j += 4) {
      if (switches[i] == switches[j]) continue;
      for (const Path& path : cache.switch_paths(switches[i], switches[j])) {
        const auto visited = replay_label_stack(
            g, ports, encode_label_stack(ports, path), path.front());
        EXPECT_EQ(visited.back(), switches[j]);
      }
    }
  }
}

}  // namespace
}  // namespace flattree
