#include "routing/two_level.h"

#include <gtest/gtest.h>

#include <set>

#include "core/flat_tree.h"
#include "topo/clos.h"

namespace flattree {
namespace {

class TwoLevelPresetTest : public ::testing::TestWithParam<const char*> {};
INSTANTIATE_TEST_SUITE_P(Presets, TwoLevelPresetTest,
                         ::testing::Values("topo-2", "topo-4"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(TwoLevelPresetTest, AllSampledPairsRouteValidly) {
  const ClosParams p = ClosParams::preset(GetParam());
  const Graph g = build_clos(p);
  const TwoLevelRouter router{g, p};
  const std::uint32_t servers = p.total_servers();
  for (std::uint32_t src = 0; src < servers; src += 37) {
    for (std::uint32_t dst = 0; dst < servers; dst += 41) {
      if (src == dst) continue;
      const Path path = router.route(NodeId{src}, NodeId{dst});
      EXPECT_TRUE(is_valid_path(g, path))
          << src << " -> " << dst;
      EXPECT_EQ(path.front(), NodeId{src});
      EXPECT_EQ(path.back(), NodeId{dst});
    }
  }
}

TEST_P(TwoLevelPresetTest, PathsAreShortest) {
  const ClosParams p = ClosParams::preset(GetParam());
  const Graph g = build_clos(p);
  const TwoLevelRouter router{g, p};
  // Same rack: 2 hops; same pod: 4; cross pod: 6.
  const std::uint32_t spe = p.servers_per_edge;
  const std::uint32_t per_pod = spe * p.edge_per_pod;
  EXPECT_EQ(path_length(router.route(NodeId{0}, NodeId{1})), 2u);
  EXPECT_EQ(path_length(router.route(NodeId{0}, NodeId{spe})), 4u);
  EXPECT_EQ(path_length(router.route(NodeId{0}, NodeId{per_pod})), 6u);
}

TEST(TwoLevel, Deterministic) {
  const ClosParams p = ClosParams::testbed();
  const Graph g = build_clos(p);
  const TwoLevelRouter router{g, p};
  EXPECT_EQ(router.route(NodeId{0}, NodeId{20}),
            router.route(NodeId{0}, NodeId{20}));
}

TEST(TwoLevel, SuffixSpreadsAcrossCores) {
  // Destinations with different host suffixes in another pod must use
  // different cores — the deterministic load spreading of the scheme.
  const ClosParams p = ClosParams::fat_tree(8);
  const Graph g = build_clos(p);
  const TwoLevelRouter router{g, p};
  std::set<NodeId> cores_used;
  const std::uint32_t per_pod = p.servers_per_edge * p.edge_per_pod;
  for (std::uint32_t dst = per_pod; dst < per_pod + per_pod; ++dst) {
    const Path path = router.route(NodeId{0}, NodeId{dst});
    for (NodeId n : path) {
      if (g.node(n).role == NodeRole::kCore) cores_used.insert(n);
    }
  }
  // A whole pod's worth of destinations should fan over many cores.
  EXPECT_GE(cores_used.size(), p.agg_per_pod);
}

TEST(TwoLevel, AllTrafficToOneHostConverges) {
  // The defining property (and weakness) of destination-suffix routing:
  // everyone sends to host X over the same core.
  const ClosParams p = ClosParams::fat_tree(8);
  const Graph g = build_clos(p);
  const TwoLevelRouter router{g, p};
  const NodeId dst{100};  // pod 6 (128 servers total)
  std::set<NodeId> cores_used;
  for (std::uint32_t src = 0; src < 16; ++src) {
    if (src == dst.value()) continue;
    for (NodeId n : router.route(NodeId{src}, dst)) {
      if (g.node(n).role == NodeRole::kCore) cores_used.insert(n);
    }
  }
  EXPECT_EQ(cores_used.size(), 1u);
}

TEST(TwoLevel, TinyStateFootprint) {
  const ClosParams p = ClosParams::topo1();
  const Graph g = build_clos(p);
  const TwoLevelRouter router{g, p};
  for (NodeId sw : g.switches()) {
    // O(pod size) state, orders of magnitude below per-pair rules.
    EXPECT_LE(router.prefix_entries(sw) + router.suffix_entries(sw), 64u);
  }
}

TEST(TwoLevel, RejectsMismatchedGraph) {
  const Graph g = build_clos(ClosParams::testbed());
  EXPECT_THROW((TwoLevelRouter{g, ClosParams::topo1()}),
               std::invalid_argument);
}

TEST(TwoLevel, RejectsConvertedTopologies) {
  // Two-level routing presumes canonical Clos server placement; flat-tree
  // global mode relocates servers and must be rejected.
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  const FlatTree tree{params};
  const Graph global = tree.realize_uniform(PodMode::kGlobal);
  EXPECT_THROW((TwoLevelRouter{global, params.clos}), std::invalid_argument);
}

TEST(TwoLevel, RejectsSelfRoute) {
  const ClosParams p = ClosParams::testbed();
  const Graph g = build_clos(p);
  const TwoLevelRouter router{g, p};
  EXPECT_THROW((void)router.route(NodeId{3}, NodeId{3}),
               std::invalid_argument);
  EXPECT_THROW((void)router.route(NodeId{3}, NodeId{5000}),
               std::invalid_argument);
}

}  // namespace
}  // namespace flattree
