// The contract the parallel experiment engine rests on: fan-out across any
// thread count is bit-identical to serial execution. These tests pin that
// down for the raw primitives (parallel_for / parallel_map / task_rng), for
// the two parallelized substrate paths (PathCache::precompute and
// profile_mn), and for the machine-readable result serialization; plus the
// pool lifecycle edges (shutdown drain, exception propagation, nested
// fork-join). Run them under -DFLATTREE_SANITIZE=thread as well — the tsan
// preset exists for exactly this binary.
#include "exec/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "core/profiling.h"
#include "exec/pool.h"
#include "exec/results.h"
#include "exec/runner.h"
#include "routing/ksp.h"
#include "topo/clos.h"

namespace flattree {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    exec::ThreadPool pool{4};
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.help_while([&count] { return count.load() == 100; });
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    exec::ThreadPool pool{2};
    for (int i = 0; i < 32; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds{1});
        count.fetch_add(1);
      });
    }
    // Destructor must drain all 32, not drop the queued ones.
  }
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {2u, 8u}) {
    exec::ThreadPool pool{threads};
    std::vector<std::atomic<int>> hits(257);
    exec::parallel_for(&pool, hits.size(),
                       [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelFor, NestedForkJoinCompletes) {
  // Benches nest: cell-level parallel_for whose cells run inner
  // parallel_for on the same pool (KSP precompute inside a grid cell).
  exec::ThreadPool pool{2};
  std::atomic<int> total{0};
  exec::parallel_for(&pool, 4, [&](std::size_t) {
    exec::parallel_for(&pool, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ParallelFor, PropagatesLowestIndexException) {
  exec::ThreadPool pool{4};
  // Two iterations throw; the serial loop would hit index 3 first, so the
  // parallel run must surface that one regardless of scheduling.
  try {
    exec::parallel_for(&pool, 64, [](std::size_t i) {
      if (i == 3) throw std::runtime_error("low");
      if (i == 40) throw std::runtime_error("high");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "low");
  }
  // The pool survives a throwing batch.
  std::atomic<int> count{0};
  exec::parallel_for(&pool, 16, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ParallelMap, MatchesSerialForAnyThreadCount) {
  const std::uint64_t seed = 20260805;
  const auto cell = [seed](std::size_t i) {
    Rng rng = exec::task_rng(seed, i);
    double acc = 0;
    for (int draw = 0; draw < 10; ++draw) acc += rng.next_double();
    return acc;
  };
  std::vector<double> serial;
  for (std::size_t i = 0; i < 37; ++i) serial.push_back(cell(i));
  for (const std::size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool{threads};
    const std::vector<double> parallel =
        exec::parallel_map(&pool, serial.size(), cell);
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(TaskRng, StreamsAreIndexPureAndDistinct) {
  // Stream identity depends only on (base_seed, index).
  EXPECT_EQ(exec::task_seed(7, 3), exec::task_seed(7, 3));
  EXPECT_NE(exec::task_seed(7, 3), exec::task_seed(7, 4));
  EXPECT_NE(exec::task_seed(7, 3), exec::task_seed(8, 3));
  Rng a = exec::task_rng(7, 3);
  Rng b = exec::task_rng(7, 3);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a(), b());
}

TEST(ProfileMn, ParallelSweepMatchesSerial) {
  const ClosParams clos = ClosParams::topo2();
  const MnProfile serial = profile_mn(clos, WiringPattern::kPattern1);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool{threads};
    const MnProfile parallel =
        profile_mn(clos, WiringPattern::kPattern1, 1, &pool);
    ASSERT_EQ(parallel.candidates.size(), serial.candidates.size());
    for (std::size_t i = 0; i < serial.candidates.size(); ++i) {
      EXPECT_EQ(parallel.candidates[i].m, serial.candidates[i].m);
      EXPECT_EQ(parallel.candidates[i].n, serial.candidates[i].n);
      // Bit-identical, not approximately equal: same realize + stats code
      // runs per cell regardless of the thread that executes it.
      EXPECT_EQ(parallel.candidates[i].avg_server_pair_hops,
                serial.candidates[i].avg_server_pair_hops);
      EXPECT_EQ(parallel.candidates[i].avg_switch_pair_hops,
                serial.candidates[i].avg_switch_pair_hops);
    }
    EXPECT_EQ(parallel.best.m, serial.best.m);
    EXPECT_EQ(parallel.best.n, serial.best.n);
  }
}

TEST(PathCachePrecompute, MatchesSerialLookups) {
  const Graph g = build_clos(ClosParams::fat_tree(4));
  const std::vector<NodeId> servers = g.servers();
  ASSERT_GE(servers.size(), 8u);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    for (std::size_t j = 0; j < servers.size(); ++j) {
      if (i != j) pairs.emplace_back(servers[i], servers[j]);
    }
  }

  PathCache serial{g, 4};
  for (const auto& [src, dst] : pairs) {
    (void)serial.server_paths(src, dst);
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool{threads};
    PathCache warmed{g, 4};
    warmed.precompute(pairs, &pool);
    EXPECT_EQ(warmed.cached_pairs(), serial.cached_pairs());
    for (const auto& [src, dst] : pairs) {
      EXPECT_EQ(warmed.server_paths(src, dst), serial.server_paths(src, dst));
    }
    // Idempotent: a second precompute finds nothing new.
    EXPECT_EQ(warmed.precompute(pairs, &pool), 0u);
  }
}

TEST(Results, SerializationIsStable) {
  exec::BenchReport report;
  report.bench = "unit";
  report.seed = 42;
  report.meta.emplace_back("k", exec::JsonValue{std::int64_t{8}});
  exec::ResultRow row;
  row.set("label", "a\"b").set("ratio", 0.1).set("count", std::uint64_t{7})
      .set("ok", true);
  report.rows.push_back(row);
  EXPECT_EQ(report.to_json(),
            "{\"bench\":\"unit\",\"seed\":42,\"k\":8,\"results\":[\n"
            "  {\"label\":\"a\\\"b\",\"ratio\":0.1,\"count\":7,\"ok\":true}\n"
            "]}\n");
}

TEST(Results, WriteReportRoundTrips) {
  exec::BenchReport report;
  report.bench = "unit_io";
  report.seed = 1;
  const std::string path = ::testing::TempDir() + "BENCH_unit_io.json";
  ASSERT_TRUE(exec::write_report(report, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[256] = {};
  const std::size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buffer, read), report.to_json());
}

TEST(Runner, JsonIsByteIdenticalAcrossThreadCounts) {
  std::string dir = ::testing::TempDir();
  if (dir.empty() || dir.back() != '/') dir += '/';
  std::vector<std::string> payloads;
  for (const std::uint32_t threads : {1u, 8u}) {
    exec::RunnerOptions options;
    options.name = "unit_runner";
    options.seed = 99;
    options.threads = threads;
    options.json_out = dir;
    exec::ExperimentRunner runner{options};
    EXPECT_EQ(runner.rng(5)(), exec::task_rng(99, 5)());
    runner.map_cells("cells", 23, [](std::size_t i, Rng& rng) {
      exec::ResultRow row;
      row.set("cell", i).set("draw", rng.next_double());
      return row;
    });
    ASSERT_TRUE(runner.write());
    std::FILE* f = std::fopen(runner.json_path().c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buffer[8192] = {};
    const std::size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, f);
    std::fclose(f);
    payloads.emplace_back(buffer, read);
  }
  std::remove((dir + "BENCH_unit_runner.json").c_str());
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], payloads[1]);
  // The payload never mentions the thread count.
  EXPECT_EQ(payloads[0].find("thread"), std::string::npos);
}

}  // namespace
}  // namespace flattree
