// Differential battery: the pooled event engine vs the seed-state
// reference engine (PacketSim::Engine::kReference). Both engines must be
// event-for-event equivalent — the event order is the total order
// (time, schedule sequence), independent of queue internals — so every
// observable (per-flow FCT/bytes, drop counts, event counts, SegmentStats,
// the deterministic metrics export) must match EXACTLY, not approximately.
// Also pins the ShardedPacketSim contracts: shard-merge equals the
// monolithic run when flow groups are link-disjoint, and merged results
// are bit-identical across thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/flat_tree.h"
#include "exec/parallel.h"
#include "exec/pool.h"
#include "net/rng.h"
#include "obs/metrics.h"
#include "routing/ksp.h"
#include "sim/packet.h"
#include "sim/sharded.h"
#include "topo/clos.h"
#include "topo/params.h"

namespace flattree {
namespace {

// Everything one run exposes, collected exhaustively for exact comparison.
struct RunTrace {
  std::vector<bool> completed;
  std::vector<double> finish_s;
  std::vector<std::uint64_t> bytes;
  std::uint64_t drops{0};
  std::uint64_t events{0};
  std::uint64_t total_bytes{0};
  std::uint64_t heap_max{0};
  PacketSim::SegmentStats segment;
  std::string metrics_json;

  bool operator==(const RunTrace& o) const {
    return completed == o.completed && finish_s == o.finish_s &&
           bytes == o.bytes && drops == o.drops && events == o.events &&
           total_bytes == o.total_bytes && heap_max == o.heap_max &&
           segment.packets_dropped == o.segment.packets_dropped &&
           segment.events_processed == o.segment.events_processed &&
           segment.rto_timeouts == o.segment.rto_timeouts &&
           segment.fast_retransmits == o.segment.fast_retransmits &&
           segment.flows_completed == o.segment.flows_completed &&
           segment.bytes_acked == o.segment.bytes_acked &&
           metrics_json == o.metrics_json;
  }
};

RunTrace capture(const PacketSim& sim, std::size_t flows,
                 obs::MetricsRegistry& reg) {
  RunTrace t;
  for (std::uint32_t f = 0; f < flows; ++f) {
    t.completed.push_back(sim.flow_completed(f));
    t.finish_s.push_back(sim.flow_finish_time(f));
    t.bytes.push_back(sim.flow_bytes_acked(f));
  }
  t.drops = sim.packets_dropped();
  t.events = sim.events_processed();
  t.total_bytes = sim.total_bytes_acked();
  t.heap_max = sim.heap_max();
  t.segment = sim.segment_stats();
  t.metrics_json = reg.metrics_object_json();
  return t;
}

// The testbed flat-tree in global mode: multipath (k = 2), converters,
// cross-pod contention — the richest small network we have.
Graph testbed_global() {
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.clos.link_bps = 100e6;  // scaled: keeps the event count tractable
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  return FlatTree{params}.realize_uniform(PodMode::kGlobal);
}

// 200 finite flows with stream-seeded sizes/endpoints/start times.
RunTrace run_workload(PacketEngine engine, std::uint64_t stream) {
  const Graph g = testbed_global();
  PathCache cache{g, 2};
  PacketSimOptions options;
  options.engine = engine;
  PacketSim sim{options};
  obs::MetricsRegistry reg;
  sim.attach_obs(obs::ObsSink{&reg, nullptr});
  sim.set_network(g);
  Rng rng{mix64(stream, 0x64696666ULL /* "diff" */)};
  const std::size_t kFlows = 200;
  for (std::size_t i = 0; i < kFlows; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.next_below(24));
    auto dst = static_cast<std::uint32_t>(rng.next_below(23));
    if (dst >= src) ++dst;
    const double bytes = 3e4 + rng.next_double() * 3e5;
    const double start = rng.next_double() * 0.2;
    sim.add_flow(src, dst, bytes, start,
                 cache.server_paths(NodeId{src}, NodeId{dst}));
  }
  sim.run_until(3.0);
  return capture(sim, kFlows, reg);
}

TEST(PacketDiff, EnginesAgreeOn200FlowSeeds) {
  for (std::uint64_t stream = 0; stream < 5; ++stream) {
    const RunTrace pooled = run_workload(PacketEngine::kPooled, stream);
    const RunTrace reference =
        run_workload(PacketSim::Engine::kReference, stream);
    EXPECT_TRUE(pooled == reference) << "engines diverged on stream "
                                     << stream;
    // The run must be non-trivial for the comparison to mean anything.
    EXPECT_GT(pooled.events, 100000u);
    EXPECT_GT(pooled.segment.flows_completed, 100u);
  }
}

// Failure/recovery through run_with_schedule: a mid-run outage drops
// queues, black-holes retransmissions, and the repair re-paths — the
// hardest sequencing in the simulator (conversion + dead-pipe
// resurrection), diffed engine against engine.
RunTrace run_schedule(PacketEngine engine) {
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.clos.link_bps = 100e6;
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  const Graph g = FlatTree{params}.realize_uniform(PodMode::kClos);
  PathCache cache{g, 1};
  PacketSimOptions options;
  options.engine = engine;
  PacketSim sim{options};
  obs::MetricsRegistry reg;
  sim.attach_obs(obs::ObsSink{&reg, nullptr});
  sim.set_network(g);
  const std::size_t kFlows = 12;
  for (std::uint32_t s = 0; s < kFlows; ++s) {
    sim.add_flow(s, s + 6, 4e6, 0.01 * s,
                 cache.server_paths(NodeId{s}, NodeId{s + 6}));
  }
  // Kill a mid-path switch of flow 0, recover it later; repairs re-path.
  const auto paths0 = cache.server_paths(NodeId{0}, NodeId{6});
  const NodeId mid = paths0[0][paths0[0].size() / 2];
  FailureSchedule schedule;
  schedule.fail_at(0.3, FailureSet{{}, {mid}});
  schedule.recover_at(1.2, FailureSet{{}, {mid}});
  const auto repath = [&](std::uint32_t fi,
                          const Graph& now) -> std::vector<Path> {
    PathCache fresh{now, 1};
    return fresh.server_paths(NodeId{fi}, NodeId{fi + 6});
  };
  run_with_schedule(sim, g, schedule, repath, /*horizon_s=*/4.0);
  return capture(sim, kFlows, reg);
}

TEST(PacketDiff, EnginesAgreeAcrossFailureAndRecovery) {
  const RunTrace pooled = run_schedule(PacketEngine::kPooled);
  const RunTrace reference = run_schedule(PacketEngine::kReference);
  EXPECT_TRUE(pooled == reference);
  EXPECT_GT(pooled.segment.events_processed, 0u);
  std::size_t done = 0;
  for (const bool c : pooled.completed) done += c ? 1 : 0;
  EXPECT_GT(done, 6u) << "most flows should survive the outage";
}

// ---- sharding contracts ----------------------------------------------------

// Pod-local permutation traffic on a pure Clos: paths never leave the pod,
// so per-pod groups are link-disjoint and sharding is exact.
void add_pod_flows(PacketSim& sim, PathCache& cache, const ClosParams& clos,
                   std::uint32_t pod, Rng& rng) {
  const std::uint32_t per_pod = clos.edge_per_pod * clos.servers_per_edge;
  std::vector<std::uint32_t> dst(per_pod);
  for (std::uint32_t i = 0; i < per_pod; ++i) dst[i] = pod * per_pod + i;
  shuffle(dst, rng);
  for (std::uint32_t i = 0; i < per_pod; ++i) {
    const std::uint32_t src = pod * per_pod + i;
    if (dst[i] == src) continue;
    const double bytes = 1e5 + rng.next_double() * 4e5;
    sim.add_flow(src, dst[i], bytes, rng.next_double() * 0.05,
                 cache.server_paths(NodeId{src}, NodeId{dst[i]}));
  }
}

TEST(PacketDiff, ShardedEqualsMonolithicOnDisjointGroups) {
  const ClosParams clos = ClosParams::fat_tree(4);
  ClosParams scaled = clos;
  scaled.link_bps = 100e6;
  const Graph g = build_clos(scaled);
  PathCache cache{g, 1};
  const std::uint64_t kSeed = 42;
  const double kHorizon = 1.5;

  // Monolithic: every pod's flows in one simulator, pod-major order.
  PacketSim mono;
  mono.set_network(g);
  for (std::uint32_t pod = 0; pod < scaled.pods; ++pod) {
    Rng rng = exec::task_rng(kSeed, pod);
    add_pod_flows(mono, cache, scaled, pod, rng);
  }
  mono.run_until(kHorizon);

  // Sharded: one shard per pod (the same per-pod RNG streams by
  // construction), serial pool.
  ShardedPacketSim sharded{g, PacketSimOptions{}, kSeed};
  const ShardedRunStats stats = sharded.run(
      scaled.pods,
      [&](std::uint32_t pod, PacketSim& sim, Rng& rng) {
        PathCache local{g, 1};
        add_pod_flows(sim, local, scaled, pod, rng);
      },
      kHorizon);

  EXPECT_EQ(stats.flows, mono.flow_count());
  EXPECT_EQ(stats.events_processed, mono.events_processed());
  EXPECT_EQ(stats.packets_dropped, mono.packets_dropped());
  EXPECT_EQ(stats.bytes_acked, mono.total_bytes_acked());
  std::vector<double> mono_fcts;
  std::size_t mono_completed = 0;
  for (std::uint32_t f = 0; f < mono.flow_count(); ++f) {
    if (!mono.flow_completed(f)) continue;
    ++mono_completed;
    mono_fcts.push_back(mono.flow_finish_time(f) - mono.flow_start_time(f));
  }
  EXPECT_EQ(stats.flows_completed, mono_completed);
  EXPECT_EQ(stats.fcts_s, mono_fcts);  // exact doubles, shard-major order
  EXPECT_GT(stats.flows_completed, 0u);
}

TEST(PacketDiff, ShardedRunBitIdenticalAcrossThreadCounts) {
  const ClosParams clos = ClosParams::fat_tree(4);
  ClosParams scaled = clos;
  scaled.link_bps = 100e6;
  const Graph g = build_clos(scaled);
  const auto build = [&](std::uint32_t pod, PacketSim& sim, Rng& rng) {
    PathCache local{g, 1};
    add_pod_flows(sim, local, scaled, pod, rng);
  };
  ShardedPacketSim sharded{g, PacketSimOptions{}, 7};

  const ShardedRunStats serial = sharded.run(scaled.pods, build, 1.0);
  for (const std::size_t threads : {2u, 5u}) {
    exec::ThreadPool pool{threads};
    const ShardedRunStats parallel =
        sharded.run(scaled.pods, build, 1.0, &pool);
    EXPECT_EQ(parallel.events_processed, serial.events_processed);
    EXPECT_EQ(parallel.packets_dropped, serial.packets_dropped);
    EXPECT_EQ(parallel.bytes_acked, serial.bytes_acked);
    EXPECT_EQ(parallel.flows, serial.flows);
    EXPECT_EQ(parallel.flows_completed, serial.flows_completed);
    EXPECT_EQ(parallel.heap_max, serial.heap_max);
    EXPECT_EQ(parallel.arena_high_water, serial.arena_high_water);
    EXPECT_EQ(parallel.fcts_s, serial.fcts_s);
  }
}

}  // namespace
}  // namespace flattree
