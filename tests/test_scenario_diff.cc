// Differential pin: scenarios/failure_recovery_clos.json describes exactly
// the Clos-mode cell of bench_failure_recovery (same topology, permutation
// workload, core-column schedule, repair pipeline), so run_scenario must
// reproduce that bench's numbers *bit for bit* — baseline and failed FCTs,
// repair lag, eviction counts, schedule counters. This is what licenses the
// DSL as a replacement for hand-coded bench pipelines: a scenario file is
// not an approximation of the experiment, it IS the experiment.
//
// The left-hand side below inlines bench_failure_recovery.cc's Clos cell
// verbatim (bench/bench_failure_recovery.cc:130-175); the right-hand side
// compiles and runs the scenario file. Any divergence — a reordered random
// draw, a different default, a drifted percentile definition — fails with
// exact values on both sides.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "control/controller.h"
#include "core/flat_tree.h"
#include "net/failures.h"
#include "scenario/runner.h"
#include "sim/fluid.h"
#include "traffic/patterns.h"

namespace flattree::scenario {
namespace {

// bench::percentile's exact definition (bench/util.h) — the scenario runner
// documents that its percentile matches it, and this test is the proof.
double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

struct RunStats {
  double worst_fct{0.0};
  double p99_fct{0.0};
  std::size_t completed{0};
  std::size_t total{0};
};

RunStats summarize(const std::vector<FluidFlowResult>& results) {
  RunStats stats;
  std::vector<double> fcts;
  for (const FluidFlowResult& r : results) {
    ++stats.total;
    if (!r.completed) continue;
    ++stats.completed;
    fcts.push_back(r.fct_s());
  }
  for (double f : fcts) stats.worst_fct = std::max(stats.worst_fct, f);
  stats.p99_fct = percentile(fcts, 99.0);
  return stats;
}

PathProvider mode_provider(CompiledMode& mode) {
  return [&mode](NodeId src, NodeId dst, std::uint32_t) {
    return mode.paths().server_paths(src, dst);
  };
}

double extra(const ScenarioResult& r, const std::string& key) {
  for (const auto& [k, v] : r.extras) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "scenario result has no extra \"" << key << "\"";
  return std::nan("");
}

TEST(ScenarioDiff, FailureRecoveryClosCellIsBitIdentical) {
  // ---- left: bench_failure_recovery's Clos cell, inlined ----
  const ClosParams clos{8, 4, 4, 4, 8, 4, 16, 8};  // 256 servers, 2:1 edge
  FlatTreeParams params;
  params.clos = clos;
  params.six_port_per_column = 2;
  params.four_port_per_column = 2;

  ControllerOptions opts;
  opts.count_rules = false;
  opts.delay.controllers = 64;
  const Controller controller{FlatTree{params}, opts};

  Rng traffic_rng{17};
  Workload flows = permutation_traffic(clos.total_servers(), traffic_rng);
  for (Flow& f : flows) f.bytes = 200e6;

  CompiledMode live = controller.compile_uniform(PodMode::kClos);
  const std::uint32_t column_width = clos.core_connectors_per_edge();
  const FailureSet columns =
      core_column_failure(live.graph(), 0, 3 * column_width);

  FluidOptions fluid_opts;
  FluidSimulator baseline{live.graph(), mode_provider(live), fluid_opts};
  const RunStats base = summarize(baseline.run(flows));

  RepairPlan plan = controller.plan_repair(live, columns, RepairOptions{});

  CompiledMode pre = controller.compile_uniform(PodMode::kClos);
  const Graph sim_graph = graph_union(pre.graph(), *plan.graph);
  FluidSimulator sim{sim_graph, mode_provider(pre), fluid_opts};
  FailureSchedule schedule;
  schedule.fail_at(0.05, columns);
  schedule.recover_at(60.0, columns);
  const RoutingRefresh refresh = [&](const Graph&) -> PathProvider {
    return mode_provider(live);
  };
  ScheduleRunStats sched;
  const RunStats failed = summarize(
      sim.run_with_schedule(flows, schedule, plan.total_s(), refresh, &sched));

  // ---- right: the scenario file, through the DSL pipeline ----
  const ScenarioResult result = run_scenario(
      compile_scenario_file(std::string{SCENARIO_DIR} +
                            "/failure_recovery_clos.json"));

  // Exact double equality throughout: the claim is bit-identity, not
  // tolerance. EXPECT_EQ on doubles compares with ==.
  EXPECT_EQ(result.aggregate.flows, failed.total);
  EXPECT_EQ(result.aggregate.completed, failed.completed);
  EXPECT_EQ(result.aggregate.worst_fct_s, failed.worst_fct);
  EXPECT_EQ(result.aggregate.p99_fct_s, failed.p99_fct);

  EXPECT_EQ(extra(result, "base_worst_fct_s"), base.worst_fct);
  EXPECT_EQ(extra(result, "base_p99_fct_s"), base.p99_fct);
  EXPECT_EQ(extra(result, "inflation"), failed.worst_fct / base.worst_fct);
  EXPECT_EQ(extra(result, "repair_lag_s"), plan.total_s());
  EXPECT_EQ(extra(result, "pairs_invalidated"),
            static_cast<double>(plan.pairs_invalidated));
  EXPECT_EQ(extra(result, "pairs_retained"),
            static_cast<double>(plan.pairs_retained));

  EXPECT_EQ(extra(result, "fail_events"), static_cast<double>(sched.fail_events));
  EXPECT_EQ(extra(result, "recover_events"),
            static_cast<double>(sched.recover_events));
  EXPECT_EQ(extra(result, "refreshes"), static_cast<double>(sched.refreshes));
  EXPECT_EQ(extra(result, "reroutes"), static_cast<double>(sched.reroutes));
  EXPECT_EQ(extra(result, "black_holed"),
            static_cast<double>(sched.black_holed));

  // Sanity on the left side itself: the schedule must actually have fired
  // (otherwise both sides would trivially agree on a failure-free run).
  EXPECT_EQ(sched.fail_events, 1u);
  EXPECT_EQ(sched.recover_events, 1u);
  EXPECT_GT(plan.pairs_invalidated, 0u);
  EXPECT_GT(failed.worst_fct, base.worst_fct);
}

// The scenario's declared topology (fat_tree k=8, servers_per_edge=8,
// m=n=2) must land on the exact device budget the bench hard-codes; if the
// spec's defaults drift, the bit-identity test above would fail confusingly
// downstream, so pin the budget translation separately.
TEST(ScenarioDiff, ScenarioTopologyMatchesBenchBudget) {
  const CompiledScenario compiled = compile_scenario_file(
      std::string{SCENARIO_DIR} + "/failure_recovery_clos.json");
  const ClosParams bench_clos{8, 4, 4, 4, 8, 4, 16, 8};
  EXPECT_EQ(compiled.clos.total_servers(), bench_clos.total_servers());
  EXPECT_EQ(compiled.servers, 256u);
  EXPECT_EQ(compiled.flows.size(), 256u);
  EXPECT_EQ(compiled.spec.sim.controllers, 64u);
  EXPECT_FALSE(compiled.spec.sim.count_rules);
  EXPECT_EQ(compiled.spec.seed, 17u);
  EXPECT_EQ(compiled.spec.traffic[0].seed, 17u);  // explicit in the file
}

}  // namespace
}  // namespace flattree::scenario
