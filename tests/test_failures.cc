#include "net/failures.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/flat_tree.h"
#include "routing/ksp.h"
#include "sim/fluid.h"
#include "topo/clos.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

TEST(RemoveLinks, PreservesNodesRemovesLinks) {
  const Graph g = build_clos(ClosParams::testbed());
  const Graph degraded = remove_links(g, {LinkId{0}, LinkId{5}});
  EXPECT_EQ(degraded.node_count(), g.node_count());
  EXPECT_EQ(degraded.link_count(), g.link_count() - 2);
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    EXPECT_EQ(degraded.node(NodeId{i}).role, g.node(NodeId{i}).role);
  }
}

TEST(RemoveLinks, EmptyFailureSetIsIdentity) {
  const Graph g = build_clos(ClosParams::testbed());
  const Graph same = remove_links(g, {});
  EXPECT_EQ(same.link_count(), g.link_count());
}

TEST(RemoveLinks, DuplicateIdsRemoveOnce) {
  const Graph g = build_clos(ClosParams::testbed());
  const Graph degraded = remove_links(g, {LinkId{3}, LinkId{3}});
  EXPECT_EQ(degraded.link_count(), g.link_count() - 1);
}

TEST(RemoveLinks, OutOfRangeThrows) {
  const Graph g = build_clos(ClosParams::testbed());
  EXPECT_THROW((void)remove_links(g, {LinkId{99999}}), std::invalid_argument);
}

TEST(SampleFabricFailures, NeverTouchesServerLinks) {
  const Graph g = build_clos(ClosParams::testbed());
  Rng rng{5};
  for (LinkId id : sample_fabric_failures(g, 0.5, rng)) {
    const Link& l = g.link(id);
    EXPECT_TRUE(is_switch(g.node(l.a).role));
    EXPECT_TRUE(is_switch(g.node(l.b).role));
  }
}

TEST(SampleFabricFailures, FractionRespected) {
  const Graph g = build_clos(ClosParams::topo2());
  Rng rng{5};
  const std::size_t fabric_links = g.link_count() - g.servers().size();
  const auto failed = sample_fabric_failures(g, 0.25, rng);
  EXPECT_NEAR(static_cast<double>(failed.size()),
              0.25 * static_cast<double>(fabric_links), 2.0);
}

TEST(SampleFabricFailures, BadFractionThrows) {
  const Graph g = build_clos(ClosParams::testbed());
  Rng rng{5};
  EXPECT_THROW((void)sample_fabric_failures(g, 1.5, rng),
               std::invalid_argument);
  EXPECT_THROW((void)sample_fabric_failures(g, -0.1, rng),
               std::invalid_argument);
}

TEST(ServersConnected, DetectsPartition) {
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  g.add_link(s0, e0, 1e9);
  g.add_link(s1, e1, 1e9);
  const LinkId bridge = g.add_link(e0, e1, 1e9);
  EXPECT_TRUE(servers_connected(g));
  EXPECT_FALSE(servers_connected(remove_links(g, {bridge})));
}

// The headline property the paper asserts but defers: flat-tree global mode
// degrades more gracefully than Clos mode under fabric failures.
TEST(FailureResilience, GlobalDegradesMoreGracefullyThanClos) {
  // Same 256-server layout as bench_failure: large enough that the
  // worst-flow statistic is stable across failure draws.
  FlatTreeParams p;
  p.clos = ClosParams{8, 4, 4, 4, 8, 4, 16, 8};
  p.six_port_per_column = 2;
  p.four_port_per_column = 2;
  const FlatTree tree{p};
  const Graph clos = tree.realize_uniform(PodMode::kClos);
  const Graph global = tree.realize_uniform(PodMode::kGlobal);

  // Worst-flow (max-min fair floor) throughput: the resilience metric.
  const auto throughput = [&](const Graph& g) {
    auto cache = std::make_shared<PathCache>(g, 8);
    FluidSimulator sim{g, [cache](NodeId s, NodeId d, std::uint32_t) {
                         return cache->server_paths(s, d);
                       }};
    Rng traffic_rng{9};
    const Workload flows =
        permutation_traffic(p.clos.total_servers(), traffic_rng);
    const auto rates = sim.measure_rates(flows);
    double worst = rates.empty() ? 0.0 : rates.front();
    for (double r : rates) worst = std::min(worst, r);
    return worst;
  };

  // Average over several failure draws at 20% — single draws are noisy
  // (one lucky Clos draw can miss every oversubscribed rack).
  const auto mean_retention = [&](const Graph& intact) {
    const double base = throughput(intact);
    double total = 0;
    int draws = 0;
    for (const std::uint64_t seed : {77u, 78u, 79u, 80u}) {
      Rng rng{seed};
      const Graph degraded =
          remove_links(intact, sample_fabric_failures(intact, 0.20, rng));
      if (!servers_connected(degraded)) continue;
      total += throughput(degraded) / base;
      ++draws;
    }
    EXPECT_GT(draws, 0);
    return total / draws;
  };

  const double clos_ratio = mean_retention(clos);
  const double global_ratio = mean_retention(global);
  // The flattened topology's worst flow must not degrade worse than the
  // Clos mode's.
  EXPECT_GE(global_ratio, clos_ratio - 0.05);
}

TEST(FailureResilience, RoutingSurvivesModestFailures) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  const FlatTree tree{p};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  Rng rng{3};
  const Graph degraded = remove_links(g, sample_fabric_failures(g, 0.1, rng));
  if (!servers_connected(degraded)) GTEST_SKIP();
  PathCache cache{degraded, 4};
  const auto servers = degraded.servers();
  for (std::size_t i = 0; i < servers.size(); i += 5) {
    const auto paths =
        cache.server_paths(servers[i], servers[(i + 7) % servers.size()]);
    EXPECT_FALSE(paths.empty());
    for (const Path& path : paths) {
      EXPECT_TRUE(is_valid_path(degraded, path));
    }
  }
}

}  // namespace
}  // namespace flattree
