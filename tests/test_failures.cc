#include "net/failures.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>

#include "core/flat_tree.h"
#include "routing/ksp.h"
#include "sim/fluid.h"
#include "sim/packet.h"
#include "topo/clos.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

TEST(RemoveLinks, PreservesNodesRemovesLinks) {
  const Graph g = build_clos(ClosParams::testbed());
  const Graph degraded = remove_links(g, {LinkId{0}, LinkId{5}});
  EXPECT_EQ(degraded.node_count(), g.node_count());
  EXPECT_EQ(degraded.link_count(), g.link_count() - 2);
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    EXPECT_EQ(degraded.node(NodeId{i}).role, g.node(NodeId{i}).role);
  }
}

TEST(RemoveLinks, EmptyFailureSetIsIdentity) {
  const Graph g = build_clos(ClosParams::testbed());
  const Graph same = remove_links(g, {});
  EXPECT_EQ(same.link_count(), g.link_count());
}

TEST(RemoveLinks, DuplicateIdsRemoveOnce) {
  const Graph g = build_clos(ClosParams::testbed());
  const Graph degraded = remove_links(g, {LinkId{3}, LinkId{3}});
  EXPECT_EQ(degraded.link_count(), g.link_count() - 1);
}

TEST(RemoveLinks, OutOfRangeThrows) {
  const Graph g = build_clos(ClosParams::testbed());
  EXPECT_THROW((void)remove_links(g, {LinkId{99999}}), std::invalid_argument);
}

TEST(SampleFabricFailures, NeverTouchesServerLinks) {
  const Graph g = build_clos(ClosParams::testbed());
  Rng rng{5};
  for (LinkId id : sample_fabric_failures(g, 0.5, rng)) {
    const Link& l = g.link(id);
    EXPECT_TRUE(is_switch(g.node(l.a).role));
    EXPECT_TRUE(is_switch(g.node(l.b).role));
  }
}

TEST(SampleFabricFailures, FractionRespected) {
  const Graph g = build_clos(ClosParams::topo2());
  Rng rng{5};
  const std::size_t fabric_links = g.link_count() - g.servers().size();
  const auto failed = sample_fabric_failures(g, 0.25, rng);
  EXPECT_NEAR(static_cast<double>(failed.size()),
              0.25 * static_cast<double>(fabric_links), 2.0);
}

TEST(SampleFabricFailures, BadFractionThrows) {
  const Graph g = build_clos(ClosParams::testbed());
  Rng rng{5};
  EXPECT_THROW((void)sample_fabric_failures(g, 1.5, rng),
               std::invalid_argument);
  EXPECT_THROW((void)sample_fabric_failures(g, -0.1, rng),
               std::invalid_argument);
  // NaN compares false against every bound, so a naive range check passes
  // it through; the validation must reject it explicitly.
  EXPECT_THROW(
      (void)sample_fabric_failures(g, std::numeric_limits<double>::quiet_NaN(),
                                   rng),
      std::invalid_argument);
}

TEST(SampleSwitchFailures, SamplesOnlyRequestedRole) {
  const Graph g = build_clos(ClosParams::testbed());
  Rng rng{7};
  const auto failed = sample_switch_failures(g, NodeRole::kCore, 0.5, rng);
  EXPECT_FALSE(failed.empty());
  for (NodeId id : failed) {
    EXPECT_EQ(g.node(id).role, NodeRole::kCore);
  }
}

TEST(SampleSwitchFailures, RejectsBadInputs) {
  const Graph g = build_clos(ClosParams::testbed());
  Rng rng{7};
  EXPECT_THROW((void)sample_switch_failures(g, NodeRole::kCore, 2.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)sample_switch_failures(
                   g, NodeRole::kCore, std::numeric_limits<double>::quiet_NaN(),
                   rng),
               std::invalid_argument);
  EXPECT_THROW((void)sample_switch_failures(g, NodeRole::kServer, 0.5, rng),
               std::invalid_argument);
}

TEST(Degrade, SwitchFailureSeversFabricKeepsServerLinks) {
  const Graph g = build_clos(ClosParams::testbed());
  const NodeId edge = g.nodes_with_role(NodeRole::kEdge).front();
  const Graph degraded = degrade(g, FailureSet{{}, {edge}});
  EXPECT_EQ(degraded.node_count(), g.node_count());
  // Every neighbor left on the dead edge switch is a server: the servers
  // stay cabled to the dead box, all switch-switch links are gone.
  std::size_t server_links = 0;
  for (const Adjacency& adj : degraded.neighbors(edge)) {
    EXPECT_EQ(degraded.node(adj.peer).role, NodeRole::kServer);
    ++server_links;
  }
  EXPECT_GT(server_links, 0u);
  // Those servers are attached but unreachable from the rest.
  EXPECT_FALSE(servers_connected(degraded));
  EXPECT_EQ(degraded.attachment_switch(degraded.neighbors(edge)[0].peer),
            edge);
}

TEST(Degrade, RejectsServerAsFailedSwitch) {
  const Graph g = build_clos(ClosParams::testbed());
  const NodeId server = g.servers().front();
  EXPECT_THROW((void)degrade(g, FailureSet{{}, {server}}),
               std::invalid_argument);
  EXPECT_THROW((void)degrade(g, FailureSet{{}, {NodeId{99999}}}),
               std::invalid_argument);
}

TEST(DegradeMapped, ResolvesLinksAcrossRealizations) {
  // The same flat-tree in two modes: link ids differ, node ids are shared.
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  const FlatTree tree{p};
  const Graph global = tree.realize_uniform(PodMode::kGlobal);
  const Graph local = tree.realize_uniform(PodMode::kLocal);
  // Pick a fabric link that exists (as a node pair) in both realizations.
  for (std::uint32_t i = 0; i < global.link_count(); ++i) {
    const Link& l = global.link(LinkId{i});
    if (!is_switch(global.node(l.a).role) || !is_switch(global.node(l.b).role))
      continue;
    if (!local.adjacent(l.a, l.b)) continue;
    const Graph degraded = degrade_mapped(local, global, FailureSet{{LinkId{i}}, {}});
    EXPECT_LT(degraded.link_count(), local.link_count());
    EXPECT_FALSE(degraded.adjacent(l.a, l.b));
    return;
  }
  FAIL() << "no shared fabric pair between realizations";
}

TEST(CoreColumnFailure, SelectsConsecutiveCoresWrapping) {
  const Graph g = build_clos(ClosParams::testbed());
  const auto cores = g.nodes_with_role(NodeRole::kCore);
  ASSERT_GE(cores.size(), 2u);
  const FailureSet wrap = core_column_failure(
      g, static_cast<std::uint32_t>(cores.size()) - 1, 2);
  ASSERT_EQ(wrap.switches.size(), 2u);
  EXPECT_EQ(wrap.switches.front(), cores.front());
  EXPECT_EQ(wrap.switches.back(), cores.back());
  EXPECT_THROW((void)core_column_failure(
                   g, 0, static_cast<std::uint32_t>(cores.size()) + 1),
               std::invalid_argument);
}

TEST(FailureSchedule, EventsSortedStably) {
  FailureSchedule schedule;
  schedule.fail_at(2.0, FailureSet{{LinkId{2}}, {}});
  schedule.fail_at(1.0, FailureSet{{LinkId{0}}, {}});
  schedule.recover_at(1.0, FailureSet{{LinkId{0}}, {}});
  ASSERT_EQ(schedule.events().size(), 3u);
  EXPECT_DOUBLE_EQ(schedule.events()[0].time_s, 1.0);
  // Equal timestamps keep insertion order: the fail added first stays first.
  EXPECT_FALSE(schedule.events()[0].recover);
  EXPECT_TRUE(schedule.events()[1].recover);
  EXPECT_DOUBLE_EQ(schedule.events()[2].time_s, 2.0);
}

TEST(FailureSchedule, ActiveAtAccumulates) {
  FailureSchedule schedule;
  schedule.fail_at(1.0, FailureSet{{LinkId{0}, LinkId{1}}, {NodeId{9}}});
  schedule.recover_at(2.0, FailureSet{{LinkId{0}}, {}});
  EXPECT_TRUE(schedule.active_at(0.5).empty());
  const FailureSet mid = schedule.active_at(1.5);
  EXPECT_EQ(mid.links.size(), 2u);
  EXPECT_EQ(mid.switches.size(), 1u);
  const FailureSet late = schedule.active_at(3.0);
  ASSERT_EQ(late.links.size(), 1u);
  EXPECT_EQ(late.links[0], LinkId{1});
  EXPECT_EQ(late.switches.size(), 1u);
}

TEST(FailureSchedule, RejectsRecoverBeforeFail) {
  // Recovering an element that was never failed used to be a silent no-op;
  // it is now rejected at construction time, and the rejected event leaves
  // the schedule untouched.
  FailureSchedule schedule;
  EXPECT_THROW(schedule.recover_at(1.0, FailureSet{{LinkId{3}}, {NodeId{2}}}),
               std::invalid_argument);
  EXPECT_TRUE(schedule.empty());
  // Recover scheduled before (or colliding into the slot ahead of) the
  // element's fail is the same violation, even when inserted fail-first.
  schedule.fail_at(2.0, FailureSet{{LinkId{3}}, {}});
  EXPECT_THROW(schedule.recover_at(1.0, FailureSet{{LinkId{3}}, {}}),
               std::invalid_argument);
  EXPECT_EQ(schedule.events().size(), 1u);
}

TEST(FailureSchedule, RejectsDuplicateFailWithoutRecover) {
  FailureSchedule schedule;
  schedule.fail_at(1.0, FailureSet{{LinkId{0}}, {NodeId{7}}});
  EXPECT_THROW(schedule.fail_at(2.0, FailureSet{{LinkId{0}}, {}}),
               std::invalid_argument);
  EXPECT_THROW(schedule.fail_at(2.0, FailureSet{{}, {NodeId{7}}}),
               std::invalid_argument);
  // A fail landing *before* the existing fail is the same double-fail.
  EXPECT_THROW(schedule.fail_at(0.5, FailureSet{{LinkId{0}}, {}}),
               std::invalid_argument);
  // After a recover the element may fail again (flap).
  schedule.recover_at(2.0, FailureSet{{LinkId{0}}, {}});
  schedule.fail_at(3.0, FailureSet{{LinkId{0}}, {}});
  EXPECT_EQ(schedule.events().size(), 3u);
  ASSERT_EQ(schedule.active_at(5.0).links.size(), 1u);
}

TEST(FailureSchedule, RejectsDuplicateElementInOneEvent) {
  FailureSchedule schedule;
  EXPECT_THROW(schedule.fail_at(1.0, FailureSet{{LinkId{4}, LinkId{4}}, {}}),
               std::invalid_argument);
  EXPECT_THROW(schedule.fail_at(1.0, FailureSet{{}, {NodeId{4}, NodeId{4}}}),
               std::invalid_argument);
  EXPECT_TRUE(schedule.empty());
}

TEST(FailureSchedule, ValidatePassesConstructedSchedules) {
  FailureSchedule schedule;
  schedule.fail_at(1.0, FailureSet{{LinkId{0}}, {NodeId{3}}});
  schedule.recover_at(2.0, FailureSet{{LinkId{0}}, {}});
  schedule.fail_at(2.5, FailureSet{{LinkId{0}}, {}});
  schedule.recover_at(3.0, FailureSet{{LinkId{0}}, {NodeId{3}}});
  EXPECT_NO_THROW(schedule.validate());
  EXPECT_NO_THROW(FailureSchedule{}.validate());
}

TEST(FailureSchedule, NegativeTimeThrows) {
  FailureSchedule schedule;
  EXPECT_THROW(schedule.fail_at(-0.1, FailureSet{}), std::invalid_argument);
  EXPECT_THROW(
      schedule.fail_at(std::numeric_limits<double>::quiet_NaN(), FailureSet{}),
      std::invalid_argument);
}

TEST(ServersConnected, DetectsPartition) {
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  g.add_link(s0, e0, 1e9);
  g.add_link(s1, e1, 1e9);
  const LinkId bridge = g.add_link(e0, e1, 1e9);
  EXPECT_TRUE(servers_connected(g));
  EXPECT_FALSE(servers_connected(remove_links(g, {bridge})));
}

// The headline property the paper asserts but defers: flat-tree global mode
// degrades more gracefully than Clos mode under fabric failures.
TEST(FailureResilience, GlobalDegradesMoreGracefullyThanClos) {
  // Same 256-server layout as bench_failure: large enough that the
  // worst-flow statistic is stable across failure draws.
  FlatTreeParams p;
  p.clos = ClosParams{8, 4, 4, 4, 8, 4, 16, 8};
  p.six_port_per_column = 2;
  p.four_port_per_column = 2;
  const FlatTree tree{p};
  const Graph clos = tree.realize_uniform(PodMode::kClos);
  const Graph global = tree.realize_uniform(PodMode::kGlobal);

  // Worst-flow (max-min fair floor) throughput: the resilience metric.
  const auto throughput = [&](const Graph& g) {
    auto cache = std::make_shared<PathCache>(g, 8);
    FluidSimulator sim{g, [cache](NodeId s, NodeId d, std::uint32_t) {
                         return cache->server_paths(s, d);
                       }};
    Rng traffic_rng{9};
    const Workload flows =
        permutation_traffic(p.clos.total_servers(), traffic_rng);
    const auto rates = sim.measure_rates(flows);
    double worst = rates.empty() ? 0.0 : rates.front();
    for (double r : rates) worst = std::min(worst, r);
    return worst;
  };

  // Average over several failure draws at 20% — single draws are noisy
  // (one lucky Clos draw can miss every oversubscribed rack).
  const auto mean_retention = [&](const Graph& intact) {
    const double base = throughput(intact);
    double total = 0;
    int draws = 0;
    for (const std::uint64_t seed : {77u, 78u, 79u, 80u}) {
      Rng rng{seed};
      const Graph degraded =
          remove_links(intact, sample_fabric_failures(intact, 0.20, rng));
      if (!servers_connected(degraded)) continue;
      total += throughput(degraded) / base;
      ++draws;
    }
    EXPECT_GT(draws, 0);
    return total / draws;
  };

  const double clos_ratio = mean_retention(clos);
  const double global_ratio = mean_retention(global);
  // The flattened topology's worst flow must not degrade worse than the
  // Clos mode's.
  EXPECT_GE(global_ratio, clos_ratio - 0.05);
}

TEST(ServersConnected, SingleServerIsTriviallyConnected) {
  Graph g;
  const NodeId s = g.add_node(NodeRole::kServer);
  const NodeId e = g.add_node(NodeRole::kEdge);
  g.add_link(s, e, 1e9);
  EXPECT_TRUE(servers_connected(g));
}

TEST(ServersConnected, SwitchOnlyCutWithServersReachable) {
  // Two edges joined by two parallel fabric paths through distinct aggs;
  // cutting one agg's links partitions nothing server-visible.
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  const NodeId a0 = g.add_node(NodeRole::kAgg);
  const NodeId a1 = g.add_node(NodeRole::kAgg);
  g.add_link(s0, e0, 1e9);
  g.add_link(s1, e1, 1e9);
  const LinkId e0a0 = g.add_link(e0, a0, 1e9);
  g.add_link(e1, a0, 1e9);
  const LinkId e0a1 = g.add_link(e0, a1, 1e9);
  const LinkId e1a1 = g.add_link(e1, a1, 1e9);
  // Isolate a1 entirely: a switch becomes unreachable, but both servers
  // still reach each other through a0 — the predicate is about servers,
  // not about graph-wide connectivity.
  const Graph degraded = remove_links(g, {e0a1, e1a1});
  EXPECT_FALSE(degraded.connected());
  EXPECT_TRUE(servers_connected(degraded));
  // Cutting the remaining e0 uplink partitions the servers.
  EXPECT_FALSE(servers_connected(remove_links(g, {e0a0, e0a1})));
}

TEST(ServersConnected, FullyPartitioned) {
  // Every fabric link gone: each server sits alone behind its edge switch.
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  g.add_link(s0, e0, 1e9);
  g.add_link(s1, e1, 1e9);
  EXPECT_FALSE(servers_connected(g));
}

TEST(PathCacheInvalidate, EvictsOnlyBrokenPairsAndReportsRules) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  const FlatTree tree{p};
  const Graph g = tree.realize_uniform(PodMode::kClos);
  PathCache cache{g, 4};
  const auto servers = g.servers();
  // Warm the cache with a handful of pairs.
  for (std::size_t i = 0; i + 1 < servers.size(); i += 2) {
    (void)cache.server_paths(servers[i], servers[i + 1]);
  }
  const std::size_t warm = cache.cached_pairs();
  ASSERT_GT(warm, 0u);

  // Kill one core switch; pairs in the same pod never transit cores, so
  // some cached pairs must survive while inter-pod ones are evicted.
  const NodeId core = g.nodes_with_role(NodeRole::kCore).front();
  const Graph degraded = degrade(g, FailureSet{{}, {core}});
  std::vector<EvictedPair> evicted;
  const std::vector<NodeId> failed{core};
  const std::size_t n = cache.rebind_and_invalidate(degraded, failed, &evicted);
  EXPECT_EQ(n, evicted.size());
  EXPECT_EQ(cache.cached_pairs(), warm - n);
  for (const EvictedPair& pair : evicted) {
    EXPECT_GT(pair.rules, 0u);
  }
  // Survivors still hold valid paths on the degraded graph.
  for (std::size_t i = 0; i + 1 < servers.size(); i += 2) {
    for (const Path& path : cache.server_paths(servers[i], servers[i + 1])) {
      EXPECT_TRUE(is_valid_path(degraded, path));
      for (NodeId hop : path) EXPECT_NE(hop, core);
    }
  }
}

TEST(FailureResilience, RoutingSurvivesModestFailures) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  const FlatTree tree{p};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  Rng rng{3};
  const Graph degraded = remove_links(g, sample_fabric_failures(g, 0.1, rng));
  if (!servers_connected(degraded)) GTEST_SKIP();
  PathCache cache{degraded, 4};
  const auto servers = degraded.servers();
  for (std::size_t i = 0; i < servers.size(); i += 5) {
    const auto paths =
        cache.server_paths(servers[i], servers[(i + 7) % servers.size()]);
    EXPECT_FALSE(paths.empty());
    for (const Path& path : paths) {
      EXPECT_TRUE(is_valid_path(degraded, path));
    }
  }
}

// -- same-timestamp semantics -------------------------------------------------
// FailureEvent's contract (net/failures.h): events at one timestamp apply in
// insertion order, and both simulators drain the whole batch before acting on
// the resulting state — so a fail and a recover of the same element at the
// identical timestamp net out and the element is never observed failed.

// Single-path dumbbell: s0 - e0 =100Mb= e1 - s1. Failing the bottleneck
// stalls the one flow, so any observed outage shows up in its FCT.
struct ScheduleDumbbell {
  Graph g;
  LinkId bottleneck{};
  ScheduleDumbbell() {
    const NodeId s0 = g.add_node(NodeRole::kServer);
    const NodeId s1 = g.add_node(NodeRole::kServer);
    const NodeId e0 = g.add_node(NodeRole::kEdge);
    const NodeId e1 = g.add_node(NodeRole::kEdge);
    g.add_link(s0, e0, 1e9);
    g.add_link(s1, e1, 1e9);
    bottleneck = g.add_link(e0, e1, 100e6);
  }
};

TEST(SameTimestampFailRecover, FluidNeverObservesTheOutage) {
  ScheduleDumbbell net;
  auto cache = std::make_shared<PathCache>(net.g, 1);
  const auto provider = [cache](NodeId s, NodeId d, std::uint32_t) {
    return cache->server_paths(s, d);
  };
  // 10 MB: 0.8 s at 100 Mb/s.
  const Workload flows{Flow{.src = 0, .dst = 1, .bytes = 1e7}};

  FluidSimulator clean{net.g, provider};
  const double baseline = clean.run(flows)[0].fct_s();

  FailureSchedule schedule;
  schedule.fail_at(0.2, FailureSet{{net.bottleneck}, {}});
  schedule.recover_at(0.2, FailureSet{{net.bottleneck}, {}});
  FluidSimulator sim{net.g, provider};
  ScheduleRunStats stats;
  const auto results =
      sim.run_with_schedule(flows, schedule, 0.05, nullptr, &stats);
  ASSERT_TRUE(results[0].completed);
  EXPECT_NEAR(results[0].fct_s(), baseline, 1e-9);
  // Both events were processed — they netted out, not got dropped.
  EXPECT_EQ(stats.fail_events, 1u);
  EXPECT_EQ(stats.recover_events, 1u);

  // Control: the same two events pulled apart stall the flow for the gap,
  // proving the zero-width window netted out rather than the link not
  // mattering.
  FailureSchedule apart;
  apart.fail_at(0.2, FailureSet{{net.bottleneck}, {}});
  apart.recover_at(1.0, FailureSet{{net.bottleneck}, {}});
  FluidSimulator stalled{net.g, provider};
  const auto slow = stalled.run_with_schedule(flows, apart, 0.05, nullptr);
  ASSERT_TRUE(slow[0].completed);
  EXPECT_NEAR(slow[0].fct_s(), baseline + 0.8, 1e-6);
}

TEST(SameTimestampFailRecover, FluidInsertionOrderBreaksTies) {
  // A flap whose recover collides with the next fail: at t=0.2 the recover
  // (inserted first) lands first, then the fail re-applies — the batch's
  // net state is "failed", so the outage that started at t=0.1 runs
  // unbroken until the final recovery. If equal-timestamp events applied
  // in reverse insertion order the link would be UP after 0.2 and the flow
  // would finish ~0.8 s earlier.
  ScheduleDumbbell net;
  auto cache = std::make_shared<PathCache>(net.g, 1);
  const auto provider = [cache](NodeId s, NodeId d, std::uint32_t) {
    return cache->server_paths(s, d);
  };
  FailureSchedule schedule;
  schedule.fail_at(0.1, FailureSet{{net.bottleneck}, {}});
  schedule.recover_at(0.2, FailureSet{{net.bottleneck}, {}});
  schedule.fail_at(0.2, FailureSet{{net.bottleneck}, {}});
  schedule.recover_at(1.0, FailureSet{{net.bottleneck}, {}});
  FluidSimulator sim{net.g, provider};
  const Workload flows{Flow{.src = 0, .dst = 1, .bytes = 1e7}};
  const auto results = sim.run_with_schedule(flows, schedule, 0.05, nullptr);
  ASSERT_TRUE(results[0].completed);
  // 0.1 s of progress, a 0.9 s outage, the remaining 0.7 s.
  EXPECT_NEAR(results[0].fct_s(), 1.7, 1e-6);
}

TEST(SameTimestampFailRecover, PacketNeverObservesTheOutage) {
  ScheduleDumbbell net;
  PathCache cache{net.g, 1};
  const auto paths = cache.server_paths(NodeId{0}, NodeId{1});
  ASSERT_FALSE(paths.empty());

  PacketSim clean;
  clean.set_network(net.g);
  const auto base_id = clean.add_flow(0, 1, 10e6, 0.0, paths);
  clean.run_until(5.0);
  ASSERT_TRUE(clean.flow_completed(base_id));
  const double baseline = clean.flow_finish_time(base_id);

  PacketSim sim;
  sim.set_network(net.g);
  const auto id = sim.add_flow(0, 1, 10e6, 0.0, paths);
  FailureSchedule schedule;
  schedule.fail_at(0.5, FailureSet{{net.bottleneck}, {}});
  schedule.recover_at(0.5, FailureSet{{net.bottleneck}, {}});
  const auto repath = [](std::uint32_t, const Graph& degraded) {
    PathCache fresh{degraded, 1};
    return fresh.server_paths(NodeId{0}, NodeId{1});
  };
  run_with_schedule(sim, net.g, schedule, repath, /*horizon_s=*/5.0);
  ASSERT_TRUE(sim.flow_completed(id));
  // The schedule driver degrades against active_at(0.5), which folds the
  // batch to the empty set: no pipe ever dies, no packet is ever dropped,
  // and completion is bit-identical to the clean run.
  EXPECT_NEAR(sim.flow_finish_time(id), baseline, 1e-9);

  // Control: the same events pulled apart delay completion past the
  // recovery (10 MB needs ~0.85 s, impossible before the t=0.5 outage).
  PacketSim stalled;
  stalled.set_network(net.g);
  const auto slow_id = stalled.add_flow(0, 1, 10e6, 0.0, paths);
  FailureSchedule apart;
  apart.fail_at(0.5, FailureSet{{net.bottleneck}, {}});
  apart.recover_at(1.5, FailureSet{{net.bottleneck}, {}});
  run_with_schedule(stalled, net.g, apart, repath, /*horizon_s=*/5.0);
  ASSERT_TRUE(stalled.flow_completed(slow_id));
  EXPECT_GT(stalled.flow_finish_time(slow_id), 1.5);
  EXPECT_GT(stalled.flow_finish_time(slow_id), baseline);
}

}  // namespace
}  // namespace flattree
