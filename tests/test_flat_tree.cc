#include "core/flat_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/stats.h"
#include "topo/clos.h"

namespace flattree {
namespace {

FlatTreeParams testbed_params() {
  // The Figure 2 example: one 4-port and one 6-port converter per
  // edge/aggregation pair (m = n = 1).
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  return p;
}

FlatTreeParams topo1_params() {
  FlatTreeParams p;
  p.clos = ClosParams::topo1();
  p.six_port_per_column = 2;
  p.four_port_per_column = 2;
  return p;
}

// ---------- parameter validation -------------------------------------------

TEST(FlatTreeParams, ValidatesTestbed) {
  EXPECT_NO_THROW(testbed_params().validate());
}

TEST(FlatTreeParams, RejectsTooManyConverters) {
  FlatTreeParams p = testbed_params();
  p.six_port_per_column = 2;  // m + n = 3 > h/r = 2
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(FlatTreeParams, RejectsZeroConverters) {
  FlatTreeParams p = testbed_params();
  p.six_port_per_column = 0;
  p.four_port_per_column = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(FlatTreeParams, RejectsOddEdgeCount) {
  FlatTreeParams p;
  p.clos = ClosParams{/*pods=*/2, /*edge_per_pod=*/3, /*agg_per_pod=*/3,
                      /*edge_uplinks=*/3, /*servers_per_edge=*/4,
                      /*agg_uplinks=*/3, /*cores=*/9, /*core_ports=*/2};
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(FlatTreeParams, RejectsMoreConvertersThanServers) {
  FlatTreeParams p;
  p.clos = ClosParams::topo1();
  p.clos.servers_per_edge = 3;
  p.clos.edge_uplinks = 8;  // keep fabric valid
  p.six_port_per_column = 2;
  p.four_port_per_column = 2;  // 4 > 3 servers
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(FlatTreeParams, DefaultsAreFeasible) {
  for (const char* name :
       {"topo-1", "topo-2", "topo-3", "topo-4", "topo-5", "topo-6"}) {
    const auto p = FlatTreeParams::defaults_for(ClosParams::preset(name));
    EXPECT_NO_THROW(p.validate()) << name;
    EXPECT_GE(p.m(), 1u);
    EXPECT_GE(p.n(), 1u);
  }
}

// ---------- static wiring ---------------------------------------------------

TEST(FlatTreeWiring, ConverterCount) {
  const FlatTree tree{testbed_params()};
  // pods * d * (m + n) = 4 * 2 * 2 = 16 converters.
  EXPECT_EQ(tree.converters().size(), 16u);
}

TEST(FlatTreeWiring, ConverterAttachmentsInRange) {
  const FlatTree tree{topo1_params()};
  const ClosParams& c = tree.clos();
  for (const Converter& conv : tree.converters()) {
    EXPECT_LT(conv.edge, c.total_edges());
    EXPECT_LT(conv.agg, c.total_aggs());
    EXPECT_LT(conv.core, c.cores);
    EXPECT_LT(conv.server, c.total_servers());
    // The converter's edge and agg are the paired switches of its column.
    EXPECT_EQ(conv.agg, conv.pod.value() * c.agg_per_pod + conv.col / c.r());
    EXPECT_EQ(conv.edge, conv.pod.value() * c.edge_per_pod + conv.col);
  }
}

TEST(FlatTreeWiring, ServersUniquePerConverter) {
  const FlatTree tree{topo1_params()};
  std::set<std::uint32_t> servers;
  for (const Converter& conv : tree.converters()) {
    EXPECT_TRUE(servers.insert(conv.server).second);
  }
}

TEST(FlatTreeWiring, SixPortSidePeersAreMutual) {
  const FlatTree tree{topo1_params()};
  for (std::size_t i = 0; i < tree.converters().size(); ++i) {
    const Converter& conv = tree.converters()[i];
    if (conv.type != ConverterType::kSixPort) continue;
    ASSERT_TRUE(conv.side_peer.valid());
    const Converter& peer = tree.converter(conv.side_peer);
    EXPECT_EQ(peer.side_peer.index(), i);
    EXPECT_EQ(peer.row, conv.row);  // §3.3: same row pairs
    EXPECT_EQ(peer.type, ConverterType::kSixPort);
  }
}

TEST(FlatTreeWiring, SidePeersInAdjacentPods) {
  const FlatTree tree{topo1_params()};
  const std::uint32_t pods = tree.clos().pods;
  const std::uint32_t half = tree.clos().edge_per_pod / 2;
  for (const Converter& conv : tree.converters()) {
    if (conv.type != ConverterType::kSixPort) continue;
    const Converter& peer = tree.converter(conv.side_peer);
    if (conv.col < half) {
      // Left blade pairs with the previous pod's right blade.
      EXPECT_EQ(peer.pod.value(), (conv.pod.value() + pods - 1) % pods);
      EXPECT_GE(peer.col, half);
    } else {
      EXPECT_EQ(peer.pod.value(), (conv.pod.value() + 1) % pods);
      EXPECT_LT(peer.col, half);
    }
  }
}

TEST(FlatTreeWiring, ShiftPatternIsBijective) {
  // §3.3: for each row, the left->right column mapping is a bijection, so
  // an edge switch reaches m distinct columns in the adjacent pod.
  const FlatTree tree{topo1_params()};
  const std::uint32_t half = tree.clos().edge_per_pod / 2;
  for (std::uint32_t row = 0; row < tree.params().m(); ++row) {
    std::set<std::uint32_t> peer_cols;
    for (const Converter& conv : tree.converters()) {
      if (conv.type != ConverterType::kSixPort || conv.row != row) continue;
      if (conv.pod.value() != 1 || conv.col >= half) continue;
      peer_cols.insert(tree.converter(conv.side_peer).col);
    }
    EXPECT_EQ(peer_cols.size(), half);
  }
}

TEST(FlatTreeWiring, CoreForSlotCoversGroup) {
  const FlatTree tree{testbed_params()};
  const std::uint32_t g = tree.clos().core_connectors_per_edge();
  // Within a (pod, column) the g slots hit g distinct cores.
  for (std::uint32_t pod = 0; pod < tree.clos().pods; ++pod) {
    for (std::uint32_t col = 0; col < tree.clos().edge_per_pod; ++col) {
      std::set<std::uint32_t> cores;
      for (std::uint32_t slot = 0; slot < g; ++slot) {
        cores.insert(tree.core_for_slot(pod, col, slot));
      }
      EXPECT_EQ(cores.size(), g);
    }
  }
}

TEST(FlatTreeWiring, PatternsDiffer) {
  FlatTreeParams p1 = topo1_params();
  FlatTreeParams p2 = topo1_params();
  p2.pattern = WiringPattern::kPattern2;
  const FlatTree t1{p1};
  const FlatTree t2{p2};
  bool any_difference = false;
  // Pod 0 is wired identically (offset 0); later pods rotate differently.
  for (std::uint32_t col = 0; col < p1.clos.edge_per_pod && !any_difference;
       ++col) {
    for (std::uint32_t slot = 0; slot < p1.clos.core_connectors_per_edge();
         ++slot) {
      if (t1.core_for_slot(2, col, slot) != t2.core_for_slot(2, col, slot)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

// ---------- mode configuration ---------------------------------------------

TEST(FlatTreeModes, ClosModeAllDefault) {
  const FlatTree tree{testbed_params()};
  const auto configs = tree.configs_for(
      ModeAssignment::uniform(tree.clos().pods, PodMode::kClos));
  for (const ConverterConfig c : configs) {
    EXPECT_EQ(c, ConverterConfig::kDefault);
  }
}

TEST(FlatTreeModes, GlobalModeConfigs) {
  const FlatTree tree{topo1_params()};
  const auto configs = tree.configs_for(
      ModeAssignment::uniform(tree.clos().pods, PodMode::kGlobal));
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Converter& conv = tree.converters()[i];
    if (conv.type == ConverterType::kFourPort) {
      EXPECT_EQ(configs[i], ConverterConfig::kLocal);
    } else {
      EXPECT_EQ(configs[i], conv.row % 2 == 0 ? ConverterConfig::kSide
                                              : ConverterConfig::kCross);
    }
  }
}

TEST(FlatTreeModes, LocalModeRelocatesHalfTheServers) {
  const FlatTree tree{topo1_params()};
  const Graph g = tree.realize_uniform(PodMode::kLocal);
  const ClosParams& c = tree.clos();
  // m+n = 4 relocatable per edge, target = spe/2 = 16 > 4 => all relocate.
  std::size_t at_agg = 0;
  for (NodeId sw : g.nodes_with_role(NodeRole::kAgg)) {
    at_agg += g.attached_servers(sw).size();
  }
  EXPECT_EQ(at_agg, static_cast<std::size_t>(c.total_edges()) *
                        (tree.params().m() + tree.params().n()));
  // Local mode keeps servers off the cores.
  for (NodeId sw : g.nodes_with_role(NodeRole::kCore)) {
    EXPECT_TRUE(g.attached_servers(sw).empty());
  }
}

TEST(FlatTreeModes, LocalModeHonorsHalfTarget) {
  // Testbed: spe=3, target=1; the 4-port converter relocates it, the 6-port
  // stays default.
  const FlatTree tree{testbed_params()};
  const auto configs = tree.configs_for(
      ModeAssignment::uniform(tree.clos().pods, PodMode::kLocal));
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Converter& conv = tree.converters()[i];
    if (conv.type == ConverterType::kFourPort) {
      EXPECT_EQ(configs[i], ConverterConfig::kLocal);
    } else {
      EXPECT_EQ(configs[i], ConverterConfig::kDefault);
    }
  }
}

TEST(FlatTreeModes, WrongModeCountThrows) {
  const FlatTree tree{testbed_params()};
  ModeAssignment bad;
  bad.pod_modes = {PodMode::kClos};
  EXPECT_THROW((void)tree.configs_for(bad), std::invalid_argument);
}

TEST(FlatTreeModes, HybridBoundaryFallsBackToLocal) {
  // One global pod sandwiched between Clos pods: its 6-port converters
  // cannot use side bundles and must fall back to local.
  const FlatTree tree{testbed_params()};
  ModeAssignment assignment =
      ModeAssignment::uniform(tree.clos().pods, PodMode::kClos);
  assignment.pod_modes[1] = PodMode::kGlobal;
  const auto configs = tree.configs_for(assignment);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Converter& conv = tree.converters()[i];
    if (conv.pod.value() != 1) continue;
    if (conv.type == ConverterType::kSixPort) {
      EXPECT_EQ(configs[i], ConverterConfig::kLocal);
    }
  }
}

TEST(FlatTreeModes, AdjacentGlobalPodsUseSideBundles) {
  const FlatTree tree{testbed_params()};
  ModeAssignment assignment =
      ModeAssignment::uniform(tree.clos().pods, PodMode::kClos);
  assignment.pod_modes[1] = PodMode::kGlobal;
  assignment.pod_modes[2] = PodMode::kGlobal;
  const auto configs = tree.configs_for(assignment);
  bool any_side = false;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Converter& conv = tree.converters()[i];
    if (conv.pod.value() == 2 && conv.type == ConverterType::kSixPort &&
        !conv.left_blade(tree.clos().edge_per_pod)) {
      // Right blade of pod 2 pairs with pod 3 (Clos): fallback.
      EXPECT_EQ(configs[i], ConverterConfig::kLocal);
    }
    if (configs[i] == ConverterConfig::kSide ||
        configs[i] == ConverterConfig::kCross) {
      any_side = true;
      // Side/cross only between the two global pods.
      const Converter& peer = tree.converter(conv.side_peer);
      const std::set<std::uint32_t> global_pods{1, 2};
      EXPECT_TRUE(global_pods.contains(conv.pod.value()));
      EXPECT_TRUE(global_pods.contains(peer.pod.value()));
    }
  }
  EXPECT_TRUE(any_side);
}

// ---------- realization: port conservation ---------------------------------

class RealizeModeTest
    : public ::testing::TestWithParam<std::tuple<const char*, PodMode>> {};

INSTANTIATE_TEST_SUITE_P(
    AllTopologiesAllModes, RealizeModeTest,
    ::testing::Combine(::testing::Values("testbed", "topo-1", "topo-2",
                                         "topo-3", "topo-4", "topo-5",
                                         "topo-6"),
                       ::testing::Values(PodMode::kClos, PodMode::kLocal,
                                         PodMode::kGlobal)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n + "_" + to_string(std::get<1>(info.param));
    });

FlatTreeParams params_for_name(const std::string& name) {
  if (name == "testbed") {
    FlatTreeParams p;
    p.clos = ClosParams::testbed();
    p.six_port_per_column = 1;
    p.four_port_per_column = 1;
    return p;
  }
  return FlatTreeParams::defaults_for(ClosParams::preset(name));
}

TEST_P(RealizeModeTest, PortConservation) {
  const auto& [name, mode] = GetParam();
  const FlatTree tree{params_for_name(name)};
  const ClosParams& c = tree.clos();
  const Graph g = tree.realize_uniform(mode);

  // Converter switches are passive: degrees must equal the Clos budget in
  // every mode (§2.2: links are repurposed, never added).
  for (NodeId n : g.nodes_with_role(NodeRole::kServer)) {
    EXPECT_EQ(g.degree(n), 1u);
  }
  for (NodeId n : g.nodes_with_role(NodeRole::kEdge)) {
    EXPECT_EQ(g.degree(n), c.edge_uplinks + c.servers_per_edge);
  }
  const std::uint32_t agg_down = c.edge_per_pod * c.edge_uplinks / c.agg_per_pod;
  for (NodeId n : g.nodes_with_role(NodeRole::kAgg)) {
    EXPECT_EQ(g.degree(n), agg_down + c.agg_uplinks);
  }
  for (NodeId n : g.nodes_with_role(NodeRole::kCore)) {
    EXPECT_EQ(g.degree(n), c.core_ports);
  }
}

TEST_P(RealizeModeTest, Connected) {
  const auto& [name, mode] = GetParam();
  const FlatTree tree{params_for_name(name)};
  EXPECT_TRUE(tree.realize_uniform(mode).connected());
}

TEST_P(RealizeModeTest, TotalLinkCountConserved) {
  const auto& [name, mode] = GetParam();
  const FlatTree tree{params_for_name(name)};
  const Graph g = tree.realize_uniform(mode);
  const Graph clos = build_clos(tree.clos());
  EXPECT_EQ(g.link_count(), clos.link_count());
}

TEST_P(RealizeModeTest, NodeIdsStableAcrossModes) {
  const auto& [name, mode] = GetParam();
  const FlatTree tree{params_for_name(name)};
  const Graph g = tree.realize_uniform(mode);
  const Graph clos = tree.realize_uniform(PodMode::kClos);
  ASSERT_EQ(g.node_count(), clos.node_count());
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    EXPECT_EQ(g.node(NodeId{i}).role, clos.node(NodeId{i}).role);
    EXPECT_EQ(g.node(NodeId{i}).pod, clos.node(NodeId{i}).pod);
  }
}

// ---------- mode semantics ---------------------------------------------------

TEST(FlatTreeRealize, ClosModeMatchesClosLinkTypes) {
  const FlatTree tree{testbed_params()};
  const Graph g = tree.realize_uniform(PodMode::kClos);
  for (std::size_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{static_cast<std::uint32_t>(i)});
    const NodeRole ra = g.node(l.a).role;
    const NodeRole rb = g.node(l.b).role;
    const bool hierarchical =
        (ra == NodeRole::kServer && rb == NodeRole::kEdge) ||
        (ra == NodeRole::kEdge && rb == NodeRole::kServer) ||
        (ra == NodeRole::kEdge && rb == NodeRole::kAgg) ||
        (ra == NodeRole::kAgg && rb == NodeRole::kEdge) ||
        (ra == NodeRole::kAgg && rb == NodeRole::kCore) ||
        (ra == NodeRole::kCore && rb == NodeRole::kAgg);
    EXPECT_TRUE(hierarchical) << g.label(l.a) << " -- " << g.label(l.b);
  }
}

TEST(FlatTreeRealize, GlobalModeServerDistribution) {
  const FlatTree tree{topo1_params()};
  const ClosParams& c = tree.clos();
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  // m servers per column to cores, n to aggs, rest stay on edges.
  std::size_t at_core = 0, at_agg = 0, at_edge = 0;
  for (NodeId s : g.servers()) {
    switch (g.node(g.attachment_switch(s)).role) {
      case NodeRole::kCore: ++at_core; break;
      case NodeRole::kAgg: ++at_agg; break;
      case NodeRole::kEdge: ++at_edge; break;
      default: FAIL();
    }
  }
  EXPECT_EQ(at_core, static_cast<std::size_t>(c.total_edges()) * tree.params().m());
  EXPECT_EQ(at_agg, static_cast<std::size_t>(c.total_edges()) * tree.params().n());
  EXPECT_EQ(at_edge, static_cast<std::size_t>(c.total_edges()) *
                         (c.servers_per_edge - tree.params().m() -
                          tree.params().n()));
}

TEST(FlatTreeRealize, Property1ServersUniformAcrossCores) {
  // §3.2 Property 1: in global mode, servers are distributed uniformly
  // across the core switches (both wiring patterns).
  for (const WiringPattern pattern :
       {WiringPattern::kPattern1, WiringPattern::kPattern2}) {
    FlatTreeParams p = topo1_params();
    p.pattern = pattern;
    const FlatTree tree{p};
    const Graph g = tree.realize_uniform(PodMode::kGlobal);
    const auto per_core = servers_per_switch(g, NodeRole::kCore);
    const std::size_t expected = static_cast<std::size_t>(
        tree.clos().total_edges()) * tree.params().m() / tree.clos().cores;
    for (const std::size_t c : per_core) {
      EXPECT_EQ(c, expected);
    }
  }
}

TEST(FlatTreeRealize, Property2EqualLinkTypesPerCore) {
  // §3.2 Property 2: every core switch has an equal number of links of each
  // type (to servers, to edges, to aggs) in global mode.
  for (const WiringPattern pattern :
       {WiringPattern::kPattern1, WiringPattern::kPattern2}) {
    FlatTreeParams p = topo1_params();
    p.pattern = pattern;
    const FlatTree tree{p};
    const Graph g = tree.realize_uniform(PodMode::kGlobal);
    for (const NodeRole peer :
         {NodeRole::kServer, NodeRole::kEdge, NodeRole::kAgg}) {
      const auto counts = links_by_peer_role(g, NodeRole::kCore, peer);
      for (const std::size_t c : counts) {
        EXPECT_EQ(c, counts.front()) << to_string(peer);
      }
    }
  }
}

TEST(FlatTreeRealize, GlobalModeHasCrossPodFlatLinks) {
  const FlatTree tree{testbed_params()};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  std::size_t edge_edge = 0, agg_agg = 0, edge_agg_cross = 0;
  for (std::size_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{static_cast<std::uint32_t>(i)});
    const Node& na = g.node(l.a);
    const Node& nb = g.node(l.b);
    if (!na.pod.valid() || !nb.pod.valid() || na.pod == nb.pod) continue;
    if (na.role == NodeRole::kEdge && nb.role == NodeRole::kEdge) ++edge_edge;
    if (na.role == NodeRole::kAgg && nb.role == NodeRole::kAgg) ++agg_agg;
    if ((na.role == NodeRole::kEdge && nb.role == NodeRole::kAgg) ||
        (na.role == NodeRole::kAgg && nb.role == NodeRole::kEdge)) {
      ++edge_agg_cross;
    }
  }
  // Testbed: m=1 (row 0, even) so all bundles are "side": peer-wise links.
  EXPECT_GT(edge_edge, 0u);
  EXPECT_GT(agg_agg, 0u);
  EXPECT_EQ(edge_agg_cross, 0u);
}

TEST(FlatTreeRealize, CrossConfigProducesEdgeAggLinks) {
  // topo-1 defaults have m=2: row 1 bundles are "cross".
  const FlatTree tree{topo1_params()};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  std::size_t edge_agg_cross = 0;
  for (std::size_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{static_cast<std::uint32_t>(i)});
    const Node& na = g.node(l.a);
    const Node& nb = g.node(l.b);
    if (!na.pod.valid() || !nb.pod.valid() || na.pod == nb.pod) continue;
    if ((na.role == NodeRole::kEdge && nb.role == NodeRole::kAgg) ||
        (na.role == NodeRole::kAgg && nb.role == NodeRole::kEdge)) {
      ++edge_agg_cross;
    }
  }
  EXPECT_GT(edge_agg_cross, 0u);
}

TEST(FlatTreeRealize, GlobalModeEdgeCoreLinksExist) {
  // 4-port "local" config connects core and edge switches directly.
  const FlatTree tree{testbed_params()};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  std::size_t edge_core = 0;
  for (std::size_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{static_cast<std::uint32_t>(i)});
    const NodeRole ra = g.node(l.a).role;
    const NodeRole rb = g.node(l.b).role;
    if ((ra == NodeRole::kEdge && rb == NodeRole::kCore) ||
        (ra == NodeRole::kCore && rb == NodeRole::kEdge)) {
      ++edge_core;
    }
  }
  // One per 4-port converter: pods * d * n = 4 * 2 * 1.
  EXPECT_EQ(edge_core, 8u);
}

TEST(FlatTreeRealize, IllegalConfigThrows) {
  const FlatTree tree{testbed_params()};
  auto configs = tree.configs_for(
      ModeAssignment::uniform(tree.clos().pods, PodMode::kClos));
  // Force a 4-port converter to "side".
  for (std::size_t i = 0; i < tree.converters().size(); ++i) {
    if (tree.converters()[i].type == ConverterType::kFourPort) {
      configs[i] = ConverterConfig::kSide;
      break;
    }
  }
  EXPECT_THROW((void)tree.realize(configs), std::invalid_argument);
}

TEST(FlatTreeRealize, MismatchedBundleThrows) {
  const FlatTree tree{testbed_params()};
  auto configs = tree.configs_for(
      ModeAssignment::uniform(tree.clos().pods, PodMode::kGlobal));
  // Break one side bundle: flip a single six-port side to local.
  for (std::size_t i = 0; i < tree.converters().size(); ++i) {
    if (configs[i] == ConverterConfig::kSide) {
      configs[i] = ConverterConfig::kLocal;
      break;
    }
  }
  EXPECT_THROW((void)tree.realize(configs), std::logic_error);
}

TEST(FlatTreeRealize, ConfigSizeMismatchThrows) {
  const FlatTree tree{testbed_params()};
  EXPECT_THROW((void)tree.realize(std::vector<ConverterConfig>{}),
               std::invalid_argument);
}

TEST(FlatTreeRealize, GlobalShortensPaths) {
  // The whole point: the flattened network has shorter average paths than
  // the Clos mode on the same hardware.
  const FlatTree tree{topo1_params()};
  const auto clos_stats =
      compute_path_length_stats(tree.realize_uniform(PodMode::kClos));
  const auto global_stats =
      compute_path_length_stats(tree.realize_uniform(PodMode::kGlobal));
  EXPECT_LT(global_stats.avg_server_pair_hops,
            clos_stats.avg_server_pair_hops);
}

TEST(FlatTreeRealize, LocalBetweenClosAndGlobal) {
  const FlatTree tree{topo1_params()};
  const auto clos_stats =
      compute_path_length_stats(tree.realize_uniform(PodMode::kClos));
  const auto local_stats =
      compute_path_length_stats(tree.realize_uniform(PodMode::kLocal));
  EXPECT_LE(local_stats.avg_server_pair_hops,
            clos_stats.avg_server_pair_hops + 1e-9);
}

}  // namespace
}  // namespace flattree
