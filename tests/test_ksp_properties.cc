// Property tests for Yen's k-shortest paths over randomized topologies:
// every returned path must be simple (loop-free), sorted by hop count, the
// first path must match the Dijkstra shortest path, and the parallel
// precompute must agree with serial per-pair lookups for any pool size.
// These are the §4.2 routing invariants the whole control plane leans on —
// pinned on graphs the hand-written fixtures in test_ksp.cc never reach.
#include "routing/ksp.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "exec/pool.h"
#include "net/failures.h"
#include "net/rng.h"
#include "routing/path.h"
#include "topo/clos.h"
#include "topo/random_graph.h"

namespace flattree {
namespace {

// Jellyfish-style random graphs give irregular path structure; different
// seeds give different wirings. Kept small so Yen's stays fast.
Graph random_fabric(std::uint64_t seed) {
  RandomGraphParams params;
  params.switches = 12;
  params.ports_per_switch = 6;
  params.servers = 24;
  params.seed = seed;
  return build_random_graph(params);
}

// All (switch, switch) pairs of g with src != dst.
std::vector<std::pair<NodeId, NodeId>> switch_pairs(const Graph& g) {
  std::vector<NodeId> switches;
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    if (is_switch(g.node(NodeId{i}).role)) switches.push_back(NodeId{i});
  }
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const NodeId a : switches) {
    for (const NodeId b : switches) {
      if (a != b) pairs.emplace_back(a, b);
    }
  }
  return pairs;
}

bool is_simple(const Path& path) {
  const std::set<NodeId> unique(path.begin(), path.end());
  return unique.size() == path.size();
}

bool uses_only_existing_links(const Graph& g, const Path& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!g.adjacent(path[i], path[i + 1])) return false;
  }
  return true;
}

TEST(KspProperties, PathsAreSimpleSortedAndValid) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    const Graph g = random_fabric(seed);
    const KspSolver solver{g};
    for (const auto& [src, dst] : switch_pairs(g)) {
      const std::vector<Path> paths = solver.k_shortest_paths(src, dst, 6);
      ASSERT_FALSE(paths.empty()) << "random fabric should be connected";
      std::set<Path> distinct;
      for (std::size_t i = 0; i < paths.size(); ++i) {
        const Path& p = paths[i];
        ASSERT_GE(p.size(), 2u);
        EXPECT_EQ(p.front(), src);
        EXPECT_EQ(p.back(), dst);
        EXPECT_TRUE(is_simple(p)) << "loop in path " << i;
        EXPECT_TRUE(uses_only_existing_links(g, p));
        if (i > 0) {
          EXPECT_GE(path_length(p), path_length(paths[i - 1]))
              << "paths must be sorted by hop count";
        }
        distinct.insert(p);
      }
      EXPECT_EQ(distinct.size(), paths.size()) << "duplicate path returned";
    }
  }
}

TEST(KspProperties, FirstPathMatchesDijkstra) {
  for (const std::uint64_t seed : {3u, 11u}) {
    const Graph g = random_fabric(seed);
    const KspSolver solver{g};
    for (const auto& [src, dst] : switch_pairs(g)) {
      const auto shortest = solver.shortest_path(src, dst);
      const auto paths = solver.k_shortest_paths(src, dst, 4);
      ASSERT_TRUE(shortest.has_value());
      ASSERT_FALSE(paths.empty());
      // Deterministic tie-breaking makes this an exact match, not just a
      // length match.
      EXPECT_EQ(paths[0], *shortest);
    }
  }
}

// Fat-tree structure: equal-cost multipath everywhere; inter-Pod pairs at
// k=8 have many same-length shortest paths, exercising Yen's tie-breaking.
TEST(KspProperties, FatTreePathsRespectStructure) {
  const Graph g = build_clos(ClosParams::fat_tree(4));
  const KspSolver solver{g};
  for (const auto& [src, dst] : switch_pairs(g)) {
    const auto paths = solver.k_shortest_paths(src, dst, 8);
    for (const Path& p : paths) {
      EXPECT_TRUE(is_simple(p));
      for (const NodeId n : p) {
        EXPECT_TRUE(is_switch(g.node(n).role))
            << "switch-pair paths must transit switches only";
      }
    }
  }
}

TEST(KspProperties, PrecomputeMatchesSerialLookupsAcrossPoolSizes) {
  const Graph g = random_fabric(20170821);
  const auto pairs = switch_pairs(g);

  // Ground truth: on-demand serial lookups.
  PathCache serial{g, 4};
  std::vector<std::vector<Path>> expected;
  expected.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) {
    expected.push_back(serial.switch_paths(src, dst));
  }

  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool{threads};
    PathCache cache{g, 4};
    EXPECT_EQ(cache.precompute(pairs, &pool), pairs.size());
    EXPECT_EQ(cache.cached_pairs(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(cache.switch_paths(pairs[i].first, pairs[i].second),
                expected[i])
          << "pair " << i << " differs with " << threads << " threads";
    }
    // A second precompute finds everything cached.
    EXPECT_EQ(cache.precompute(pairs, &pool), 0u);
  }
}

// ---- warm incremental rebinds vs cold recompute -----------------------------

// Random single-edge delete/restore walks: after every flap the warm cache
// (rebind_warm + lazy refill) must hold exactly the path sets a cold
// PathCache computes on the same graph — same paths, same order — for every
// switch pair. This is the exactness contract that lets the fluid refresh
// path keep a cache warm across failure/recovery events.
void expect_warm_matches_cold(const Graph& base, std::uint64_t seed,
                              int flaps) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  const auto pairs = switch_pairs(base);
  std::vector<LinkId> fabric;
  for (std::uint32_t i = 0; i < base.link_count(); ++i) {
    const Link& l = base.link(LinkId{i});
    if (is_switch(base.node(l.a).role) && is_switch(base.node(l.b).role)) {
      fabric.push_back(LinkId{i});
    }
  }
  ASSERT_FALSE(fabric.empty());

  PathCache warm{base, 4};
  for (const auto& [src, dst] : pairs) (void)warm.switch_paths(src, dst);

  Rng rng{seed};
  std::vector<bool> down(base.link_count(), false);
  // rebind_warm keeps a pointer to the graph; every realization must stay
  // alive for the cache's lifetime.
  std::vector<std::unique_ptr<Graph>> alive;
  std::size_t total_evicted = 0;
  for (int step = 0; step < flaps; ++step) {
    const LinkId flip = fabric[rng.next_below(fabric.size())];
    down[flip.index()] = !down[flip.index()];
    std::vector<LinkId> removed;
    for (std::uint32_t i = 0; i < base.link_count(); ++i) {
      if (down[i]) removed.push_back(LinkId{i});
    }
    alive.push_back(std::make_unique<Graph>(remove_links(base, removed)));
    const Graph& g = *alive.back();
    total_evicted += warm.rebind_warm(g);

    PathCache cold{g, 4};
    for (const auto& [src, dst] : pairs) {
      EXPECT_EQ(warm.switch_paths(src, dst), cold.switch_paths(src, dst))
          << "step " << step << " pair " << src.value() << "->"
          << dst.value();
    }
  }
  // The warm cache must actually be warm: across the walk it cannot have
  // evicted (and recomputed) every pair at every step.
  EXPECT_LT(total_evicted, static_cast<std::size_t>(flaps) * pairs.size());
}

TEST(KspProperties, WarmDeltaMatchesColdRandomFabric) {
  for (const std::uint64_t seed : {5u, 19u, 77u}) {
    expect_warm_matches_cold(random_fabric(seed), seed, 8);
  }
}

TEST(KspProperties, WarmDeltaMatchesColdFatTree) {
  const Graph g = build_clos(ClosParams::fat_tree(4));
  for (const std::uint64_t seed : {2u, 4u}) {
    expect_warm_matches_cold(g, seed, 6);
  }
}

TEST(KspProperties, WarmRebindNoDeltaEvictsNothing) {
  const Graph g = random_fabric(123);
  const auto pairs = switch_pairs(g);
  PathCache warm{g, 4};
  for (const auto& [src, dst] : pairs) (void)warm.switch_paths(src, dst);
  // Same adjacency structure (the identical graph): zero evictions, cache
  // intact. Also pins that server-access-only changes are no delta.
  EXPECT_EQ(warm.rebind_warm(g), 0u);
  EXPECT_EQ(warm.cached_pairs(), pairs.size());
  const AdjacencyDelta delta = adjacency_delta(g, g);
  EXPECT_TRUE(delta.empty());
}

}  // namespace
}  // namespace flattree
