// Conversion under fire: the storm-tolerant executor layers.
//
// Three guarantees are load-bearing and pinned here:
//   1. Live re-planning: data-plane failures concurrent with the step
//      schedule re-route broken pairs instead of aborting, and a fully
//      recovered storm leaves the installed routes bit-for-bit on plan.
//   2. Stage checkpoints: gradual per-Pod stages each commit as a durable
//      rollback point; an exhausted step rolls back to the last checkpoint
//      (kPartial), and the terminal state is exactly that checkpoint.
//   3. Controller failover: a standby takes over mid-conversion from
//      durable state alone, re-issues the in-flight step, and the
//      execution still terminates in a checkpointed mode.
// Plus the channel-jitter contract: retry backoff jitter is decorrelated
// from the drop stream, so it reshapes timing without touching outcomes.
#include "control/conversion_exec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "core/flat_tree.h"
#include "net/failures.h"
#include "routing/path.h"

namespace flattree {
namespace {

Controller testbed_controller(std::uint32_t k = 4) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = k;
  options.k_local = k;
  options.k_clos = k;
  options.count_rules = false;
  return Controller{FlatTree{p}, options};
}

std::vector<std::pair<NodeId, NodeId>> tracked_pairs(const Graph& graph,
                                                     std::size_t stride = 3) {
  const std::vector<NodeId> servers = graph.servers();
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (std::size_t i = 0; i < servers.size(); i += stride) {
    pairs.emplace_back(servers[i],
                       servers[(i + servers.size() / 2) % servers.size()]);
  }
  return pairs;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> link_multiset(
    const Graph& g) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (std::uint32_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{i});
    out.emplace_back(std::min(l.a.value(), l.b.value()),
                     std::max(l.a.value(), l.b.value()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t count_violations(const ExecutionReport& report, ViolationKind k) {
  return static_cast<std::size_t>(
      std::count_if(report.violations.begin(), report.violations.end(),
                    [k](const TransientViolation& v) { return v.kind == k; }));
}

// A fabric link of `graph` that some installed route of `mode` actually
// crosses — failing it is guaranteed to break a tracked pair.
LinkId route_fabric_link(const CompiledMode& mode,
                         const std::pair<NodeId, NodeId>& pair,
                         std::size_t hop = 1) {
  const std::vector<Path> paths =
      mode.paths().server_paths(pair.first, pair.second);
  EXPECT_FALSE(paths.empty());
  const Path& path = paths.front();
  EXPECT_GT(path.size(), hop + 1);
  const NodeId a = path[hop];
  const NodeId b = path[hop + 1];
  const Graph& g = mode.graph();
  for (std::uint32_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{i});
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return LinkId{i};
  }
  ADD_FAILURE() << "no fabric link between consecutive route hops";
  return LinkId{0};
}

// The terminal contract: the last timeline point runs exactly the terminal
// checkpoint's mode — same physical graph, same canonical routes, per pair,
// bit for bit.
void expect_terminal_is_checkpoint(const Controller& ctl,
                                   const ExecutionReport& report) {
  ASSERT_FALSE(report.checkpoints.empty());
  const CheckpointRecord& terminal = report.checkpoints.back();
  EXPECT_EQ(report.terminal_assignment.pod_modes, terminal.assignment.pod_modes);
  EXPECT_EQ(report.terminal_configs, terminal.configs);
  const Graph realized = ctl.tree().realize(terminal.configs);
  const TimelinePoint& last = report.timeline.back();
  EXPECT_EQ(link_multiset(*last.graph), link_multiset(realized));
  ASSERT_EQ(last.routes.size(), terminal.routes.size());
  for (std::size_t i = 0; i < last.routes.size(); ++i) {
    EXPECT_EQ(last.routes[i], terminal.routes[i]) << "pair " << i;
  }
}

TEST(ConversionStorm, ReplansAroundFlapAndEndsOnPlan) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  const ConversionExecutor exec{ctl, ConversionExecOptions{}};

  // Calibrate storm times off the undisturbed execution.
  const ExecutionReport clean = exec.execute(from, to, pairs);
  ASSERT_EQ(clean.outcome, ConversionOutcome::kConverted);
  const double T = clean.finish_s;

  const LinkId victim = route_fabric_link(from, pairs.front());
  FailureSchedule storm;
  storm.fail_at(0.25 * T, FailureSet{{victim}, {}});
  storm.recover_at(0.60 * T, FailureSet{{victim}, {}});

  const ExecutionReport report =
      exec.execute_under_storm(from, to, pairs, storm);

  EXPECT_EQ(report.outcome, ConversionOutcome::kConverted);
  EXPECT_GE(report.replans, 1u);
  // At every boundary the executor had a chance to act, no reachable pair
  // is black-holed and no route loops: every broken pair is re-planned at
  // the fold boundary.
  EXPECT_EQ(count_violations(report, ViolationKind::kBlackhole), 0u);
  EXPECT_EQ(count_violations(report, ViolationKind::kLoop), 0u);
  EXPECT_EQ(count_violations(report, ViolationKind::kDisconnected), 0u);
  // The timeline binds the failure at its physical time, so the victim pair
  // is dark for the detection latency (failure -> next boundary's re-plan)
  // — but strictly less than the full outage a non-re-planning executor
  // would eat.
  ConversionExecOptions frozen_opts;
  frozen_opts.live_replanning = false;
  const ExecutionReport frozen = ConversionExecutor{ctl, frozen_opts}
                                     .execute_under_storm(from, to, pairs, storm);
  EXPECT_GT(frozen.total_blackhole_s, 0.0);
  EXPECT_LT(report.total_blackhole_s, frozen.total_blackhole_s);
  // Re-plan steps are marked as such.
  EXPECT_TRUE(std::any_of(
      report.steps.begin(), report.steps.end(),
      [](const StepRecord& s) { return s.replan && s.ok; }));
  // Terminal state: bit-for-bit the target plan (the storm recovered).
  expect_terminal_is_checkpoint(ctl, report);
  EXPECT_EQ(report.terminal_configs, to.configs());
  const TimelinePoint& last = report.timeline.back();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(last.routes[i],
              to.paths().server_paths(pairs[i].first, pairs[i].second));
  }
}

TEST(ConversionStorm, DivergedRoutesReconcileOnRecovery) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  const ConversionExecutor exec{ctl, ConversionExecOptions{}};
  const double T = exec.execute(from, to, pairs).finish_s;

  // Two victims on different tracked routes; the second one never recovers
  // until very late, so mid-execution state is genuinely diverged.
  const LinkId v1 = route_fabric_link(from, pairs.front());
  const LinkId v2 = route_fabric_link(from, pairs.back());
  FailureSchedule storm;
  storm.fail_at(0.20 * T, FailureSet{{v1}, {}});
  if (v2 != v1) storm.fail_at(0.30 * T, FailureSet{{v2}, {}});
  storm.recover_at(0.55 * T, FailureSet{{v1}, {}});
  if (v2 != v1) storm.recover_at(0.70 * T, FailureSet{{v2}, {}});

  const ExecutionReport report =
      exec.execute_under_storm(from, to, pairs, storm);
  EXPECT_EQ(report.outcome, ConversionOutcome::kConverted);
  EXPECT_GE(report.pairs_replanned, 1u);
  EXPECT_EQ(count_violations(report, ViolationKind::kBlackhole), 0u);
  expect_terminal_is_checkpoint(ctl, report);
  EXPECT_EQ(report.terminal_configs, to.configs());
}

TEST(ConversionStorm, StageCheckpointsCommitPerPod) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  ConversionExecOptions opts;
  opts.stage_checkpoints = true;
  const ConversionExecutor exec{ctl, opts};
  const ExecutionReport report = exec.execute(from, to, pairs);

  const auto pods =
      static_cast<std::uint32_t>(from.assignment().pod_modes.size());
  EXPECT_EQ(report.outcome, ConversionOutcome::kConverted);
  EXPECT_EQ(report.stages_total, pods);  // one Pod converts per stage
  EXPECT_EQ(report.stages_committed, pods);
  ASSERT_EQ(report.checkpoints.size(), pods + 1);
  // Checkpoints march one Pod at a time from origin to target, and the
  // epoch counter counts committed stages.
  for (std::size_t s = 0; s < report.checkpoints.size(); ++s) {
    const CheckpointRecord& cp = report.checkpoints[s];
    EXPECT_EQ(cp.stage, s);
    EXPECT_EQ(cp.epoch, s);
    const auto converted = static_cast<std::size_t>(std::count(
        cp.assignment.pod_modes.begin(), cp.assignment.pod_modes.end(),
        PodMode::kGlobal));
    EXPECT_EQ(converted, s);
  }
  EXPECT_EQ(report.timeline.back().epoch, pods);
  EXPECT_EQ(report.checkpoints.back().assignment.pod_modes,
            to.assignment().pod_modes);
  // Every intermediate boundary keeps every pair routed (the hybrid stages
  // are real modes, driven through the same make-before-break protocol).
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.total_blackhole_s, 0.0);
  expect_terminal_is_checkpoint(ctl, report);
}

TEST(ConversionStorm, ExhaustedStepRollsBackToLastCheckpointNotOrigin) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  ConversionExecOptions opts;
  opts.stage_checkpoints = true;
  const ConversionExecutor exec{ctl, opts};

  // The last stage's last OCS partition, from a clean reference run
  // (StepRecord::partition carries the global partition index).
  const ExecutionReport clean = exec.execute(from, to, pairs);
  std::uint32_t last_partition = 0;
  for (const StepRecord& s : clean.steps) {
    if (s.kind == StepKind::kOcs && !s.rollback) {
      last_partition = std::max(last_partition, s.partition);
    }
  }

  ConversionFaults faults;
  faults.fail_ocs_partitions = {last_partition};
  const ExecutionReport report = exec.execute(from, to, pairs, faults);

  EXPECT_EQ(report.outcome, ConversionOutcome::kPartial);
  EXPECT_EQ(report.stages_committed, report.stages_total - 1);
  ASSERT_EQ(report.checkpoints.size(), report.stages_committed + 1);
  // The fabric landed on the *last checkpoint* — a hybrid mode with every
  // Pod but one converted — not back at the origin.
  const CheckpointRecord& terminal = report.checkpoints.back();
  EXPECT_NE(terminal.assignment.pod_modes, from.assignment().pod_modes);
  EXPECT_NE(terminal.assignment.pod_modes, to.assignment().pod_modes);
  expect_terminal_is_checkpoint(ctl, report);
  // The staged protocol keeps its transient guarantees through the
  // rollback: no pair ever black-holes.
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.total_blackhole_s, 0.0);
}

TEST(ConversionStorm, FailoverStandbyResumesFromDurableState) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  ConversionExecOptions opts;
  opts.stage_checkpoints = true;
  opts.channel.drop_probability = 0.02;
  opts.seed = 11;
  const ConversionExecutor exec{ctl, opts};
  const double T = exec.execute(from, to, pairs).finish_s;

  ConversionFaults faults;
  faults.kill_primary_at_s = 0.45 * T;
  const ExecutionReport report = exec.execute(from, to, pairs, faults);

  EXPECT_EQ(report.failovers, 1u);
  EXPECT_EQ(report.steps_reissued, 1u);
  EXPECT_EQ(report.outcome, ConversionOutcome::kConverted);
  EXPECT_TRUE(report.violations.empty());
  // Exactly one takeover point: primary steps strictly before standby
  // steps, and the re-issued confirm is the first standby step.
  bool seen_standby = false;
  for (const StepRecord& s : report.steps) {
    if (s.standby) {
      seen_standby = true;
    } else {
      EXPECT_FALSE(seen_standby) << "primary step after the takeover";
    }
  }
  EXPECT_TRUE(seen_standby);
  // The takeover costs promotion time but never epoch mixing: the terminal
  // state is still bit-for-bit the target.
  expect_terminal_is_checkpoint(ctl, report);
  EXPECT_EQ(report.terminal_configs, to.configs());
}

TEST(ConversionStorm, FailoverDuringStormStillTerminatesCheckpointed) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  ConversionExecOptions opts;
  opts.stage_checkpoints = true;
  opts.channel.drop_probability = 0.05;
  opts.seed = 29;
  const ConversionExecutor exec{ctl, opts};
  const double T = exec.execute(from, to, pairs).finish_s;

  const LinkId victim = route_fabric_link(from, pairs.front());
  FailureSchedule storm;
  storm.fail_at(0.30 * T, FailureSet{{victim}, {}});
  storm.recover_at(0.50 * T, FailureSet{{victim}, {}});
  ConversionFaults faults;
  faults.kill_primary_at_s = 0.40 * T;

  const ExecutionReport report =
      exec.execute_under_storm(from, to, pairs, storm, faults);
  EXPECT_EQ(report.failovers, 1u);
  // Whatever the outcome at this loss rate, the terminal state is one of
  // the checkpointed modes, exactly.
  expect_terminal_is_checkpoint(ctl, report);
  EXPECT_EQ(count_violations(report, ViolationKind::kBlackhole), 0u);
  EXPECT_EQ(count_violations(report, ViolationKind::kLoop), 0u);
}

// Satellite: the compound fault. An OCS partition failure and a data-plane
// link failure land on the in-flight stage in the same tick; the stage must
// roll back to the last checkpoint and the terminal state must still be
// bit-for-bit a checkpointed mode once the link recovers. (This test also
// runs under ASan/UBSan and TSan in CI.)
TEST(ConversionStorm, CompoundOcsAndLinkFaultSameTick) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  ConversionExecOptions opts;
  opts.stage_checkpoints = true;
  const ConversionExecutor exec{ctl, opts};

  // From the clean run, take the last stage's final OCS pass and schedule
  // the link failure at exactly its start time: both faults hit the same
  // execution tick of an in-flight (uncommitted) stage.
  const ExecutionReport clean = exec.execute(from, to, pairs);
  std::uint32_t last_partition = 0;
  double ocs_start = 0.0;
  for (const StepRecord& s : clean.steps) {
    if (s.kind == StepKind::kOcs && !s.rollback &&
        s.partition >= last_partition) {
      last_partition = s.partition;
      ocs_start = s.start_s;
    }
  }
  const LinkId victim = route_fabric_link(from, pairs.front());
  FailureSchedule storm;
  storm.fail_at(ocs_start, FailureSet{{victim}, {}});
  storm.recover_at(ocs_start + 1.0, FailureSet{{victim}, {}});
  ConversionFaults faults;
  faults.fail_ocs_partitions = {last_partition};

  const ExecutionReport report =
      exec.execute_under_storm(from, to, pairs, storm, faults);

  EXPECT_EQ(report.outcome, ConversionOutcome::kPartial);
  EXPECT_EQ(report.stages_committed, report.stages_total - 1);
  EXPECT_EQ(count_violations(report, ViolationKind::kBlackhole), 0u);
  EXPECT_EQ(count_violations(report, ViolationKind::kLoop), 0u);
  // The link recovered during the rollback, so the terminal state is
  // exactly the last checkpoint: graph, configs and routes, bit for bit.
  expect_terminal_is_checkpoint(ctl, report);
}

// Satellite: deterministic decorrelated jitter. The jitter stream only
// shapes retry *timing*; every delivery outcome (attempt counts, drops,
// step success, conversion outcome) is identical across jitter settings
// because the drop stream never sees a jitter draw.
TEST(ConversionStorm, JitterReshapesTimingWithoutTouchingOutcomes) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());

  ConversionExecOptions a;
  a.channel.drop_probability = 0.20;
  a.channel.jitter = 0.0;
  a.seed = 7;
  ConversionExecOptions b = a;
  b.channel.jitter = 0.30;

  const ExecutionReport ra = ConversionExecutor{ctl, a}.execute(from, to, pairs);
  const ExecutionReport rb = ConversionExecutor{ctl, b}.execute(from, to, pairs);

  EXPECT_EQ(ra.outcome, rb.outcome);
  EXPECT_EQ(ra.retries, rb.retries);
  EXPECT_EQ(ra.messages_dropped, rb.messages_dropped);
  EXPECT_EQ(ra.steps_failed, rb.steps_failed);
  ASSERT_EQ(ra.steps.size(), rb.steps.size());
  bool any_retry = false;
  for (std::size_t i = 0; i < ra.steps.size(); ++i) {
    EXPECT_EQ(ra.steps[i].kind, rb.steps[i].kind);
    EXPECT_EQ(ra.steps[i].attempts, rb.steps[i].attempts);
    EXPECT_EQ(ra.steps[i].ok, rb.steps[i].ok);
    EXPECT_EQ(ra.steps[i].rules_added, rb.steps[i].rules_added);
    EXPECT_EQ(ra.steps[i].rules_deleted, rb.steps[i].rules_deleted);
    if (ra.steps[i].attempts > 1) any_retry = true;
  }
  ASSERT_TRUE(any_retry);  // at 20% loss the seed must produce retries
  // Jitter strictly shortens backoff waits, so the jittered run finishes
  // earlier — timing moved, outcomes did not.
  EXPECT_LT(rb.finish_s, ra.finish_s);
}

TEST(ConversionStorm, ZeroDropRunsAreByteIdenticalAcrossJitter) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  ConversionExecOptions a;
  a.channel.jitter = 0.0;
  ConversionExecOptions b;
  b.channel.jitter = 1.0;
  const ExecutionReport ra = ConversionExecutor{ctl, a}.execute(from, to, pairs);
  const ExecutionReport rb = ConversionExecutor{ctl, b}.execute(from, to, pairs);
  // No retry ever happens, so no jitter is ever drawn: identical timings.
  ASSERT_EQ(ra.steps.size(), rb.steps.size());
  for (std::size_t i = 0; i < ra.steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.steps[i].finish_s, rb.steps[i].finish_s);
  }
  EXPECT_DOUBLE_EQ(ra.finish_s, rb.finish_s);
}

TEST(ConversionStorm, ApiValidation) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());

  ControlChannelOptions ch;
  ch.jitter = -0.1;
  EXPECT_THROW(ch.validate(), std::invalid_argument);
  ch.jitter = 1.5;
  EXPECT_THROW(ch.validate(), std::invalid_argument);

  // stage_checkpoints requires the staged protocol.
  ConversionExecOptions opts;
  opts.staged = false;
  opts.stage_checkpoints = true;
  const ConversionExecutor bad{ctl, opts};
  EXPECT_THROW((void)bad.execute(from, to, pairs), std::invalid_argument);

  // Storm link ids must name links of the origin realization, and storm
  // switches must be switches.
  const ConversionExecutor exec{ctl, ConversionExecOptions{}};
  FailureSchedule out_of_range;
  out_of_range.fail_at(0.1,
                       FailureSet{{LinkId{from.graph().link_count()}}, {}});
  EXPECT_THROW(
      (void)exec.execute_under_storm(from, to, pairs, out_of_range),
      std::invalid_argument);
  FailureSchedule server_storm;
  server_storm.fail_at(0.1, FailureSet{{}, {from.graph().servers().front()}});
  EXPECT_THROW(
      (void)exec.execute_under_storm(from, to, pairs, server_storm),
      std::invalid_argument);
}

TEST(ConversionStorm, EmptyStormMatchesPlainExecute) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  ConversionExecOptions opts;
  opts.channel.drop_probability = 0.05;
  opts.seed = 3;
  const ConversionExecutor exec{ctl, opts};
  const ExecutionReport plain = exec.execute(from, to, pairs);
  const ExecutionReport storm =
      exec.execute_under_storm(from, to, pairs, FailureSchedule{});
  ASSERT_EQ(plain.steps.size(), storm.steps.size());
  for (std::size_t i = 0; i < plain.steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.steps[i].finish_s, storm.steps[i].finish_s);
    EXPECT_EQ(plain.steps[i].attempts, storm.steps[i].attempts);
  }
  EXPECT_EQ(plain.replans, storm.replans);
  EXPECT_DOUBLE_EQ(plain.finish_s, storm.finish_s);
}

}  // namespace
}  // namespace flattree
