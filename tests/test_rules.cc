#include "routing/rules.h"

#include <gtest/gtest.h>

#include "core/flat_tree.h"
#include "net/stats.h"
#include "routing/source_routing.h"
#include "topo/clos.h"

namespace flattree {
namespace {

StateCounts analyze(const Graph& g, std::uint32_t k) {
  PathCache cache{g, k};
  const auto pairs = all_ingress_pairs(g);
  const PortMap ports{g};
  const auto stats = compute_path_length_stats(g);
  return analyze_states(g, cache, pairs, ports.max_port_count(),
                        stats.diameter);
}

TEST(AllIngressPairs, ClosOnlyEdgesAreIngress) {
  const Graph g = build_clos(ClosParams::testbed());
  const auto pairs = all_ingress_pairs(g);
  // 8 edge switches -> 8*7 ordered pairs.
  EXPECT_EQ(pairs.size(), 56u);
}

TEST(AllIngressPairs, GlobalModeAllSwitchesAreIngress) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  const FlatTree tree{p};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  // All 20 switches carry servers in global mode.
  EXPECT_EQ(all_ingress_pairs(g).size(), 20u * 19u);
}

TEST(StateCounts, ReductionHierarchy) {
  // §4.2: naive >> aggregated >= source-routing ingress state.
  const Graph g = build_clos(ClosParams::testbed());
  const StateCounts counts = analyze(g, 4);
  EXPECT_GT(counts.naive_avg, counts.aggregated_avg);
  EXPECT_GE(counts.aggregated_max, counts.ingress_max);
  EXPECT_GT(counts.path_count, 0u);
}

TEST(StateCounts, NaiveScalesWithServerFan) {
  // Testbed racks hold 3 servers; naive state multiplies by 3*3 per pair.
  const Graph g = build_clos(ClosParams::testbed());
  const StateCounts counts = analyze(g, 4);
  EXPECT_NEAR(counts.naive_avg / counts.aggregated_avg, 9.0, 1e-9);
}

TEST(StateCounts, FormulaTracksExactCounts) {
  // The paper's closed-form S^2 k L / N should be within a factor ~2 of the
  // measured per-switch average (it ignores endpoint effects).
  const Graph g = build_clos(ClosParams::testbed());
  const StateCounts counts = analyze(g, 4);
  EXPECT_GT(counts.formula_aggregated_avg, counts.aggregated_avg * 0.4);
  EXPECT_LT(counts.formula_aggregated_avg, counts.aggregated_avg * 2.5);
}

TEST(StateCounts, TransitStaticIsDxC) {
  const Graph g = build_clos(ClosParams::testbed());
  const StateCounts counts = analyze(g, 4);
  const PortMap ports{g};
  const auto stats = compute_path_length_stats(g);
  EXPECT_EQ(counts.transit_static, stats.diameter * ports.max_port_count());
}

TEST(StateCounts, MoreIngressSwitchesMoreRules) {
  // Global mode (20 ingress switches) needs more aggregated rules than
  // Clos mode (8) — the §5.3 testbed observation (242 vs 76).
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  const FlatTree tree{p};
  const StateCounts global = analyze(tree.realize_uniform(PodMode::kGlobal), 4);
  const StateCounts local = analyze(tree.realize_uniform(PodMode::kLocal), 4);
  const StateCounts clos = analyze(tree.realize_uniform(PodMode::kClos), 4);
  EXPECT_GT(global.aggregated_max, local.aggregated_max);
  EXPECT_GT(local.aggregated_max, clos.aggregated_max);
}

TEST(StateCounts, KScalesIngressState) {
  const Graph g = build_clos(ClosParams::testbed());
  const StateCounts k2 = analyze(g, 2);
  const StateCounts k4 = analyze(g, 4);
  EXPECT_GT(k4.ingress_avg, k2.ingress_avg);
}

}  // namespace
}  // namespace flattree
