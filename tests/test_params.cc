#include "topo/params.h"

#include <gtest/gtest.h>

namespace flattree {
namespace {

struct PresetCase {
  const char* name;
  std::uint32_t edges, aggs, cores, servers;
  double edge_or, agg_or;
};

class PresetTest : public ::testing::TestWithParam<PresetCase> {};

// Table 2 of the paper, including the topo-6 reinterpretation (DESIGN.md).
INSTANTIATE_TEST_SUITE_P(
    Table2, PresetTest,
    ::testing::Values(
        PresetCase{"topo-1", 128, 128, 64, 4096, 4.0, 1.0},
        // topo-2 is "a proportional down-scale of topo-1" (§5.1), so its
        // edge oversubscription is 4:1 like topo-1's (the Table 2 text is
        // garbled in extraction; 24 downlinks / 6 uplinks = 4).
        PresetCase{"topo-2", 72, 72, 36, 1728, 4.0, 1.0},
        PresetCase{"topo-3", 128, 128, 64, 8192, 8.0, 1.0},
        PresetCase{"topo-4", 128, 64, 32, 4096, 4.0, 1.0},
        PresetCase{"topo-5", 128, 128, 64, 4096, 2.0, 2.0},
        PresetCase{"topo-6", 128, 64, 32, 4096, 2.0, 2.0}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST_P(PresetTest, MatchesTable2) {
  const PresetCase& c = GetParam();
  const ClosParams p = ClosParams::preset(c.name);
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.total_edges(), c.edges);
  EXPECT_EQ(p.total_aggs(), c.aggs);
  EXPECT_EQ(p.cores, c.cores);
  EXPECT_EQ(p.total_servers(), c.servers);
  EXPECT_DOUBLE_EQ(p.edge_oversubscription(), c.edge_or);
  EXPECT_DOUBLE_EQ(p.agg_oversubscription(), c.agg_or);
}

TEST_P(PresetTest, PortBudgetsBalance) {
  const ClosParams p = ClosParams::preset(GetParam().name);
  EXPECT_EQ(static_cast<std::uint64_t>(p.total_aggs()) * p.agg_uplinks,
            static_cast<std::uint64_t>(p.cores) * p.core_ports);
  EXPECT_EQ(p.edge_per_pod % p.agg_per_pod, 0u);
  EXPECT_EQ(p.agg_uplinks % p.r(), 0u);
}

TEST(ClosParams, UnknownPresetThrows) {
  EXPECT_THROW((void)ClosParams::preset("topo-9"), std::invalid_argument);
}

TEST(ClosParams, Testbed) {
  const ClosParams p = ClosParams::testbed();
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.total_servers(), 24u);
  EXPECT_EQ(p.total_switches(), 20u);  // 8 edge + 8 agg + 4 core
  EXPECT_DOUBLE_EQ(p.edge_oversubscription(), 1.5);  // §5.3: 1.5:1
}

TEST(ClosParams, FatTree) {
  const ClosParams p = ClosParams::fat_tree(16);
  EXPECT_NO_THROW(p.validate());
  // §2.1: k=16 fat-tree has 8 servers per edge switch, 64 per Pod.
  EXPECT_EQ(p.servers_per_edge, 8u);
  EXPECT_EQ(p.servers_per_edge * p.edge_per_pod, 64u);
  EXPECT_EQ(p.total_servers(), 1024u);
  EXPECT_EQ(p.total_switches(), 320u);
  EXPECT_DOUBLE_EQ(p.edge_oversubscription(), 1.0);
}

TEST(ClosParams, FatTreeRejectsOddK) {
  EXPECT_THROW((void)ClosParams::fat_tree(5), std::invalid_argument);
  EXPECT_THROW((void)ClosParams::fat_tree(0), std::invalid_argument);
}

TEST(ClosParams, ValidateRejectsImbalance) {
  ClosParams p = ClosParams::testbed();
  p.cores = 5;  // 5*4 != 4*2*2*... port budget broken
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ClosParams, ValidateRejectsZeroLayers) {
  ClosParams p = ClosParams::testbed();
  p.pods = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ClosParams, ValidateRejectsNonDividingAggs) {
  ClosParams p = ClosParams::testbed();
  p.agg_per_pod = 3;  // edge_per_pod=2 not a multiple
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ClosParams, ValidateRejectsBadLinkRate) {
  ClosParams p = ClosParams::testbed();
  p.link_bps = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ClosParams, CoreConnectorsPerEdge) {
  // topo-4: h=16, r=2 -> 8 connectors per edge column.
  EXPECT_EQ(ClosParams::topo4().core_connectors_per_edge(), 8u);
  EXPECT_EQ(ClosParams::testbed().core_connectors_per_edge(), 2u);
}

}  // namespace
}  // namespace flattree
