#include "core/multi_stage.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/dot.h"
#include "net/stats.h"
#include "routing/ksp.h"
#include "sim/fluid.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

// Lower: 4 Pods x (4 edge + 4 agg), 8 servers/edge, 16 "cores".
// Upper: 4 switch-only Pods x (4 edge + 4 agg), 16 top cores.
MultiStageParams small_params() {
  MultiStageParams p;
  p.lower.clos = ClosParams{/*pods=*/4, /*edge_per_pod=*/4, /*agg_per_pod=*/4,
                            /*edge_uplinks=*/4, /*servers_per_edge=*/8,
                            /*agg_uplinks=*/4, /*cores=*/16, /*core_ports=*/4};
  p.lower.six_port_per_column = 1;
  p.lower.four_port_per_column = 1;
  p.upper_pods = 4;
  p.upper_edge_per_pod = 4;
  p.upper_agg_per_pod = 4;
  p.upper_edge_uplinks = 4;
  p.upper_agg_uplinks = 4;
  p.top_cores = 16;
  p.top_core_ports = 4;
  p.upper_m = 1;
  p.upper_n = 1;
  return p;
}

TEST(MultiStageParams, Validates) {
  EXPECT_NO_THROW(small_params().validate());
}

TEST(MultiStageParams, RejectsCoreMismatch) {
  MultiStageParams p = small_params();
  p.upper_pods = 2;  // 2 * 4 != 16 lower cores
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(MultiStageParams, RejectsOverfullUpperBlades) {
  MultiStageParams p = small_params();
  p.upper_m = 3;
  p.upper_n = 3;  // 6 > min(h_u/r_u = 4, connectors = 4)
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(MultiStageParams, UpperAsFlatTree) {
  const FlatTreeParams upper = small_params().upper_as_flat_tree();
  EXPECT_EQ(upper.clos.servers_per_edge, 4u);  // = lower core_ports
  EXPECT_EQ(upper.clos.total_servers(), 64u);  // = 16 cores x 4 connectors
  EXPECT_NO_THROW(upper.validate());
}

class MultiStageRealizeTest
    : public ::testing::TestWithParam<std::pair<PodMode, PodMode>> {};

INSTANTIATE_TEST_SUITE_P(
    ModeCombos, MultiStageRealizeTest,
    ::testing::Values(std::pair{PodMode::kClos, PodMode::kClos},
                      std::pair{PodMode::kGlobal, PodMode::kClos},
                      std::pair{PodMode::kClos, PodMode::kGlobal},
                      std::pair{PodMode::kGlobal, PodMode::kGlobal},
                      std::pair{PodMode::kLocal, PodMode::kLocal},
                      std::pair{PodMode::kGlobal, PodMode::kLocal}),
    [](const auto& info) {
      return std::string(to_string(info.param.first)) + "_" +
             to_string(info.param.second);
    });

TEST_P(MultiStageRealizeTest, NodeCounts) {
  const auto& [lower_mode, upper_mode] = GetParam();
  const MultiStageFlatTree tree{small_params()};
  const Graph g = tree.realize_uniform(lower_mode, upper_mode);
  EXPECT_EQ(g.count_role(NodeRole::kServer), 128u);
  EXPECT_EQ(g.count_role(NodeRole::kEdge), 16u);
  EXPECT_EQ(g.count_role(NodeRole::kAgg), 16u);
  EXPECT_EQ(g.count_role(NodeRole::kCore), 16u);   // upper edges
  EXPECT_EQ(g.count_role(NodeRole::kAgg2), 16u);
  EXPECT_EQ(g.count_role(NodeRole::kCore2), 16u);
}

TEST_P(MultiStageRealizeTest, Connected) {
  const auto& [lower_mode, upper_mode] = GetParam();
  const MultiStageFlatTree tree{small_params()};
  EXPECT_TRUE(tree.realize_uniform(lower_mode, upper_mode).connected());
}

TEST_P(MultiStageRealizeTest, PortConservation) {
  const auto& [lower_mode, upper_mode] = GetParam();
  const MultiStageParams p = small_params();
  const MultiStageFlatTree tree{p};
  const Graph g = tree.realize_uniform(lower_mode, upper_mode);
  for (NodeId n : g.nodes_with_role(NodeRole::kServer)) {
    EXPECT_EQ(g.degree(n), 1u);
  }
  for (NodeId n : g.nodes_with_role(NodeRole::kEdge)) {
    EXPECT_EQ(g.degree(n),
              p.lower.clos.edge_uplinks + p.lower.clos.servers_per_edge);
  }
  // Upper edge switches ("cores"): lower connectors + uplinks to kAgg2.
  for (NodeId n : g.nodes_with_role(NodeRole::kCore)) {
    EXPECT_EQ(g.degree(n),
              p.lower.clos.core_ports + p.upper_edge_uplinks);
  }
  for (NodeId n : g.nodes_with_role(NodeRole::kCore2)) {
    EXPECT_EQ(g.degree(n), p.top_core_ports);
  }
}

TEST_P(MultiStageRealizeTest, NodeIdsStableAcrossModes) {
  const auto& [lower_mode, upper_mode] = GetParam();
  const MultiStageFlatTree tree{small_params()};
  const Graph a = tree.realize_uniform(lower_mode, upper_mode);
  const Graph b = tree.realize_uniform(PodMode::kClos, PodMode::kClos);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (std::uint32_t i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.node(NodeId{i}).role, b.node(NodeId{i}).role);
  }
}

TEST(MultiStage, FullClosHasNoServersAboveEdge) {
  const MultiStageFlatTree tree{small_params()};
  const Graph g = tree.realize_uniform(PodMode::kClos, PodMode::kClos);
  for (const NodeRole role :
       {NodeRole::kAgg, NodeRole::kCore, NodeRole::kAgg2, NodeRole::kCore2}) {
    for (NodeId sw : g.nodes_with_role(role)) {
      EXPECT_TRUE(g.attached_servers(sw).empty()) << g.label(sw);
    }
  }
}

TEST(MultiStage, FullGlobalSpreadsServersToAllLayers) {
  // Lower global relocates servers to aggs and "cores" (upper edges); upper
  // global forwards some of those to agg2 and the top cores — the deepest
  // flattening the paper sketches.
  const MultiStageFlatTree tree{small_params()};
  const Graph g = tree.realize_uniform(PodMode::kGlobal, PodMode::kGlobal);
  std::size_t by_role[6] = {0, 0, 0, 0, 0, 0};
  for (NodeId s : g.servers()) {
    by_role[static_cast<std::size_t>(g.node(g.attachment_switch(s)).role)]++;
  }
  const MultiStageParams p = small_params();
  // Lower global mode keeps spe - m - n servers per edge...
  EXPECT_EQ(by_role[static_cast<std::size_t>(NodeRole::kEdge)],
            p.lower.clos.total_edges() *
                (p.lower.clos.servers_per_edge - p.lower.m() - p.lower.n()));
  // ...relocates n per column to lower aggs...
  EXPECT_EQ(by_role[static_cast<std::size_t>(NodeRole::kAgg)],
            p.lower.clos.total_edges() * p.lower.n());
  // ...and sends m per column upward, where the upper stage re-distributes
  // them across its own layers (upper edges / kAgg2 / top cores).
  const std::size_t upward = p.lower.clos.total_edges() * p.lower.m();
  EXPECT_EQ(by_role[static_cast<std::size_t>(NodeRole::kCore)] +
                by_role[static_cast<std::size_t>(NodeRole::kAgg2)] +
                by_role[static_cast<std::size_t>(NodeRole::kCore2)],
            upward);
  // The deepest flattening reaches the top: some servers land on kAgg2 and
  // some on the top-level cores.
  EXPECT_GT(by_role[static_cast<std::size_t>(NodeRole::kAgg2)], 0u);
  EXPECT_GT(by_role[static_cast<std::size_t>(NodeRole::kCore2)], 0u);
}

TEST(MultiStage, DeeperFlatteningShortensPaths) {
  const MultiStageFlatTree tree{small_params()};
  const auto clos_stats = compute_path_length_stats(
      tree.realize_uniform(PodMode::kClos, PodMode::kClos));
  const auto lower_only_stats = compute_path_length_stats(
      tree.realize_uniform(PodMode::kGlobal, PodMode::kClos));
  const auto full_stats = compute_path_length_stats(
      tree.realize_uniform(PodMode::kGlobal, PodMode::kGlobal));
  EXPECT_LT(lower_only_stats.avg_server_pair_hops,
            clos_stats.avg_server_pair_hops);
  EXPECT_LT(full_stats.avg_server_pair_hops,
            clos_stats.avg_server_pair_hops);
}

TEST(MultiStage, CrossStagePodTrafficFlows) {
  // End-to-end sanity: route and allocate a permutation across the full
  // two-stage network in its deepest mode.
  const MultiStageFlatTree tree{small_params()};
  const Graph g = tree.realize_uniform(PodMode::kGlobal, PodMode::kGlobal);
  auto cache = std::make_shared<PathCache>(g, 4);
  FluidSimulator sim{g, [cache](NodeId s, NodeId d, std::uint32_t) {
                       return cache->server_paths(s, d);
                     }};
  Rng rng{12};
  const Workload flows = permutation_traffic(tree.total_servers(), rng);
  const auto rates = sim.measure_rates(flows);
  for (double r : rates) EXPECT_GT(r, 0.0);
}

TEST(MultiStage, LinkBudgetConservedAcrossModes) {
  const MultiStageFlatTree tree{small_params()};
  const std::size_t clos_links =
      tree.realize_uniform(PodMode::kClos, PodMode::kClos).link_count();
  for (const PodMode lower : {PodMode::kLocal, PodMode::kGlobal}) {
    for (const PodMode upper : {PodMode::kLocal, PodMode::kGlobal}) {
      EXPECT_EQ(tree.realize_uniform(lower, upper).link_count(), clos_links);
    }
  }
}

TEST(MultiStage, StatsCoverUpperRoles) {
  // The graph-statistics helpers must see the upper layers through their
  // dedicated roles.
  const MultiStageFlatTree tree{small_params()};
  const Graph g = tree.realize_uniform(PodMode::kGlobal, PodMode::kGlobal);
  const auto per_core2 = servers_per_switch(g, NodeRole::kCore2);
  ASSERT_EQ(per_core2.size(), 16u);
  std::size_t total = 0;
  for (std::size_t c : per_core2) total += c;
  EXPECT_GT(total, 0u);
  // In the all-Clos baseline, by contrast, top cores link exclusively to
  // upper aggregation switches (the strict hierarchy).
  const Graph clos_g = tree.realize_uniform(PodMode::kClos, PodMode::kClos);
  const auto agg2_links = links_by_peer_role(clos_g, NodeRole::kCore2,
                                             NodeRole::kAgg2);
  const MultiStageParams p = small_params();
  for (std::size_t c : agg2_links) {
    EXPECT_EQ(c, p.top_core_ports);
  }
}

TEST(MultiStage, DotExportShowsAllLayers) {
  const MultiStageFlatTree tree{small_params()};
  const Graph g = tree.realize_uniform(PodMode::kClos, PodMode::kClos);
  DotOptions options;
  options.include_servers = false;
  const std::string dot = to_dot(g, options);
  EXPECT_NE(dot.find("agg2"), std::string::npos);
  EXPECT_NE(dot.find("core2"), std::string::npos);
}

TEST(MultiStage, UniformUpperServerLoad) {
  // Every upper edge receives exactly the lower stage's core_ports
  // connectors, so the spliced "server" load is uniform by construction.
  const MultiStageParams p = small_params();
  const MultiStageFlatTree tree{p};
  const Graph g = tree.realize_uniform(PodMode::kGlobal, PodMode::kClos);
  // In (global, clos): all upward-relocated servers sit on upper edges.
  const auto per_upper_edge = servers_per_switch(g, NodeRole::kCore);
  const std::size_t expected =
      p.lower.clos.total_edges() * p.lower.m() / p.lower.clos.cores;
  for (std::size_t c : per_upper_edge) {
    EXPECT_EQ(c, expected);
  }
}

}  // namespace
}  // namespace flattree
