#!/usr/bin/env bash
# Golden-file regression gate: run one bench binary at its defaults in a
# scratch directory and byte-compare stdout and BENCH_<name>.json against
# the checked-in goldens. Any drift in the recorded numbers — including an
# accidental cost of the (default-off) observability layer — fails the test.
#
# usage: golden_diff.sh <bench-binary> <bench-name> <golden-dir> [bench-args...]
# Extra arguments are passed through to the bench invocation (e.g. the
# scenario directory for bench_scenarios).
#
# Regenerating after an intentional change:
#   cd $(mktemp -d) && <bench-binary> [bench-args...] > <name>.stdout 2>/dev/null
#   cp <name>.stdout BENCH_<name>.json <golden-dir>/
set -u

bin="$1"
name="$2"
golden="$3"
shift 3

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

# stderr carries wall-clock timings and is deliberately not compared.
"$bin" "$@" > "$name.stdout" 2> stderr.log
status=$?
if [ $status -ne 0 ]; then
  echo "FAIL: $name exited with $status" >&2
  cat stderr.log >&2
  exit 1
fi

fail=0
if ! diff -u "$golden/$name.stdout" "$name.stdout"; then
  echo "FAIL: $name stdout drifted from golden" >&2
  fail=1
fi
if ! diff -u "$golden/BENCH_$name.json" "BENCH_$name.json"; then
  echo "FAIL: BENCH_$name.json drifted from golden" >&2
  fail=1
fi
exit $fail
