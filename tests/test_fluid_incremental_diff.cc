// Differential oracle for the incremental max-min allocator
// (sim/fluid_incremental.h): its whole value proposition is *bit-for-bit*
// equality with solve_max_min_fill while touching O(affected) state, so
// every assertion here is exact — EXPECT_EQ on the raw double bits, never a
// tolerance. Three layers:
//
//   1. Solver-level fuzz: random event streams (flow arrivals/departures,
//      link fail/recover, conversion-style capacity rescales) against a
//      from-scratch solve of the same instance after EVERY event, on k=4 /
//      k=8 fat-trees and a two-stage (multi-stage) random graph, >= 5 seeds
//      each.
//   2. Simulator-level: run_with_schedule with options.incremental on vs
//      off must produce identical FCT trajectories and schedule stats.
//   3. Metric determinism: the fluid.realloc.* counters the incremental
//      path emits are byte-identical across exec-pool thread counts.
#include "sim/fluid_incremental.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/parallel.h"
#include "exec/pool.h"
#include "lp/mcf.h"
#include "net/capacity.h"
#include "net/failures.h"
#include "net/rng.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "routing/ksp.h"
#include "sim/fluid.h"
#include "topo/clos.h"
#include "topo/random_graph.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

using PathEdges = std::vector<std::vector<std::uint32_t>>;

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

// ---- solver-level fuzz ------------------------------------------------------

// Shadow state the scratch oracle solves from. Flows keyed by slot; the
// map's ascending iteration order matches the solver's documented
// equivalence (commodities in ascending slot order).
struct ShadowWorld {
  std::vector<double> capacity;  // directed, effective (0 when failed)
  std::map<std::uint32_t, PathEdges> flows;
};

std::map<std::uint32_t, double> scratch_rates(const ShadowWorld& w) {
  McfInstance instance;
  instance.capacity = w.capacity;
  std::vector<std::uint32_t> order;
  for (const auto& [slot, paths] : w.flows) {
    McfCommodity commodity;
    commodity.paths = paths;
    instance.commodities.push_back(std::move(commodity));
    order.push_back(slot);
  }
  std::map<std::uint32_t, double> out;
  if (order.empty()) return out;
  const std::vector<double> solved = solve_max_min_fill(instance).flow_rate;
  for (std::size_t i = 0; i < order.size(); ++i) out[order[i]] = solved[i];
  return out;
}

std::vector<NodeId> server_nodes(const Graph& g) {
  std::vector<NodeId> servers;
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    if (!is_switch(g.node(NodeId{i}).role)) servers.push_back(NodeId{i});
  }
  return servers;
}

// One fuzzed event stream: mutates the incremental solver and the shadow
// world in lockstep and asserts exact rate equality after every event.
void fuzz_stream(const Graph& g, std::uint64_t seed, int num_events,
                 const char* label) {
  SCOPED_TRACE(std::string(label) + " seed=" + std::to_string(seed));
  const LogicalTopology topo{g};
  PathCache cache{g, 4};
  const std::vector<NodeId> servers = server_nodes(g);
  ASSERT_GE(servers.size(), 2u);

  // Per-directed-edge base capacity (mutated by conversion rescales) and
  // undirected failure flags; effective = failed ? 0 : base.
  std::vector<double> base(topo.directed_count());
  for (std::size_t e = 0; e < base.size(); ++e) {
    base[e] = topo.capacity(static_cast<std::uint32_t>(e));
  }
  std::vector<bool> edge_failed(topo.edge_count(), false);

  constexpr std::uint32_t kSlots = 48;
  IncrementalMaxMinSolver inc;
  inc.reset(base, kSlots);
  ShadowWorld w{base, {}};

  std::vector<std::uint32_t> free_slots;
  for (std::uint32_t s = kSlots; s-- > 0;) free_slots.push_back(s);
  std::vector<std::uint32_t> used;

  const auto set_effective = [&](std::uint32_t directed, double v) {
    if (w.capacity[directed] == v) return;
    w.capacity[directed] = v;
    inc.set_capacity(directed, v);
  };

  Rng rng{seed};
  for (int ev = 0; ev < num_events; ++ev) {
    const double roll = rng.next_double();
    if ((roll < 0.40 && !free_slots.empty()) || used.empty()) {
      // Arrival on a random distinct server pair.
      const NodeId src = servers[rng.next_below(servers.size())];
      NodeId dst = src;
      while (dst == src) dst = servers[rng.next_below(servers.size())];
      const std::vector<Path> paths = cache.server_paths(src, dst);
      ASSERT_FALSE(paths.empty());
      PathEdges pe;
      pe.reserve(paths.size());
      for (const Path& p : paths) pe.push_back(topo.path_edges(p));
      const std::uint32_t slot = free_slots.back();
      free_slots.pop_back();
      used.push_back(slot);
      inc.add_flow(slot, pe);
      w.flows[slot] = std::move(pe);
    } else if (roll < 0.60) {
      // Departure of a random live flow.
      const std::size_t i = rng.next_below(used.size());
      const std::uint32_t slot = used[i];
      used[i] = used.back();
      used.pop_back();
      free_slots.push_back(slot);
      inc.remove_flow(slot);
      w.flows.erase(slot);
    } else if (roll < 0.80) {
      // Link fail/recover toggle on a random undirected edge.
      const std::uint32_t e =
          static_cast<std::uint32_t>(rng.next_below(topo.edge_count()));
      edge_failed[e] = !edge_failed[e];
      for (const std::uint32_t d : {2 * e, 2 * e + 1}) {
        set_effective(d, edge_failed[e] ? 0.0 : base[d]);
      }
    } else {
      // Conversion-style delta: rescale a few undirected edges' base
      // capacity (half / double / restore), as a mode change would.
      const int n = 1 + static_cast<int>(rng.next_below(4));
      for (int j = 0; j < n; ++j) {
        const std::uint32_t e =
            static_cast<std::uint32_t>(rng.next_below(topo.edge_count()));
        const double factor =
            (rng.next_below(3) == 0) ? 0.5 : (rng.next_below(2) ? 2.0 : 1.0);
        for (const std::uint32_t d : {2 * e, 2 * e + 1}) {
          base[d] = topo.capacity(d) * factor;
          if (!edge_failed[e]) set_effective(d, base[d]);
        }
      }
    }

    inc.solve();
    const std::map<std::uint32_t, double> expect = scratch_rates(w);
    for (std::uint32_t s = 0; s < kSlots; ++s) {
      const auto it = expect.find(s);
      const double want = it == expect.end() ? 0.0 : it->second;
      const double got = inc.flow_rate(s);
      ASSERT_EQ(bits(got), bits(want))
          << "event " << ev << " slot " << s << ": incremental " << got
          << " vs scratch " << want;
    }
    // The per-solve touch accounting must never exceed the network: the
    // O(affected) contract's upper bound.
    EXPECT_LE(inc.last_stats().links_touched, topo.directed_count());
  }
}

Graph fat_tree(std::uint32_t k) { return build_clos(ClosParams::fat_tree(k)); }

Graph two_stage_fabric(std::uint64_t seed) {
  TwoStageParams ts = TwoStageParams::from_clos(ClosParams::fat_tree(4));
  ts.seed = seed;
  return build_two_stage_random_graph(ts);
}

TEST(FluidIncrementalDiff, FuzzFatTreeK4) {
  const Graph g = fat_tree(4);
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    fuzz_stream(g, seed, 160, "fat_tree_k4");
  }
}

TEST(FluidIncrementalDiff, FuzzFatTreeK8) {
  const Graph g = fat_tree(8);
  for (const std::uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
    fuzz_stream(g, seed, 80, "fat_tree_k8");
  }
}

TEST(FluidIncrementalDiff, FuzzTwoStageMultiStage) {
  const Graph g = two_stage_fabric(20170821);
  for (const std::uint64_t seed : {7u, 17u, 27u, 37u, 47u}) {
    fuzz_stream(g, seed, 160, "two_stage");
  }
}

// ---- simulator-level: incremental on vs off --------------------------------

struct SimOutcome {
  std::vector<FluidFlowResult> results;
  ScheduleRunStats stats;
};

SimOutcome run_sim(const Graph& g, const Workload& flows,
                   const FailureSchedule& sched, double lag,
                   bool incremental, obs::MetricsRegistry* reg = nullptr) {
  auto cache = std::make_shared<PathCache>(g, 4);
  const PathProvider provider = [cache](NodeId src, NodeId dst,
                                        std::uint32_t) {
    return cache->server_paths(src, dst);
  };
  FluidOptions opt;
  opt.incremental = incremental;
  if (reg != nullptr) opt.sink = obs::ObsSink{reg, nullptr};
  FluidSimulator sim{g, provider, opt};
  const RoutingRefresh refresh = [](const Graph& degraded) {
    auto c = std::make_shared<PathCache>(degraded, 4);
    return PathProvider{[c](NodeId src, NodeId dst, std::uint32_t) {
      return c->server_paths(src, dst);
    }};
  };
  SimOutcome out;
  out.results = sim.run_with_schedule(flows, sched, lag, refresh, &out.stats);
  return out;
}

// A workload with staggered arrivals + a fail/recover schedule, so the run
// exercises arrivals, completions, reroutes and black-holes interleaved.
void compare_sim(const Graph& g, std::uint64_t seed, const char* label) {
  SCOPED_TRACE(label);
  Rng rng{seed};
  const std::uint32_t servers =
      static_cast<std::uint32_t>(server_nodes(g).size());
  Workload flows = permutation_traffic(servers, rng);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    flows[i].bytes = 20e6 + 5e6 * static_cast<double>(i % 7);
    flows[i].start_s = 0.01 * static_cast<double>(i % 11);
  }
  // Fail two random fabric links mid-run, recover one of them later.
  std::vector<LinkId> fabric;
  for (std::uint32_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{i});
    if (is_switch(g.node(l.a).role) && is_switch(g.node(l.b).role)) {
      fabric.push_back(LinkId{i});
    }
  }
  ASSERT_GE(fabric.size(), 2u);
  const LinkId a = fabric[rng.next_below(fabric.size())];
  LinkId b = a;
  while (b == a) b = fabric[rng.next_below(fabric.size())];
  FailureSchedule sched;
  sched.fail_at(0.05, FailureSet{{a}, {}});
  sched.fail_at(0.09, FailureSet{{b}, {}});
  sched.recover_at(0.16, FailureSet{{a}, {}});

  const SimOutcome on = run_sim(g, flows, sched, 0.02, true);
  const SimOutcome off = run_sim(g, flows, sched, 0.02, false);
  ASSERT_EQ(on.results.size(), off.results.size());
  for (std::size_t i = 0; i < on.results.size(); ++i) {
    EXPECT_EQ(on.results[i].started, off.results[i].started) << "flow " << i;
    EXPECT_EQ(on.results[i].completed, off.results[i].completed)
        << "flow " << i;
    EXPECT_EQ(bits(on.results[i].start_s), bits(off.results[i].start_s))
        << "flow " << i;
    EXPECT_EQ(bits(on.results[i].finish_s), bits(off.results[i].finish_s))
        << "flow " << i << ": incremental " << on.results[i].finish_s
        << " vs scratch " << off.results[i].finish_s;
  }
  EXPECT_EQ(on.stats.fail_events, off.stats.fail_events);
  EXPECT_EQ(on.stats.recover_events, off.stats.recover_events);
  EXPECT_EQ(on.stats.refreshes, off.stats.refreshes);
  EXPECT_EQ(on.stats.reroutes, off.stats.reroutes);
  EXPECT_EQ(on.stats.black_holed, off.stats.black_holed);
}

TEST(FluidIncrementalDiff, SimulatorFctEquality) {
  compare_sim(fat_tree(4), 91, "fat_tree_k4");
  compare_sim(fat_tree(8), 92, "fat_tree_k8");
  compare_sim(two_stage_fabric(20170821), 93, "two_stage");
}

// ---- thread-count invariance of the emitted metrics -------------------------

// The same batch of failure-injected fluid runs fanned over 1 / 2 / 8
// worker threads must export byte-identical metrics JSON — the
// fluid.realloc.* counters are commutative aggregations like every other
// deterministic metric.
TEST(FluidIncrementalDiff, MetricsThreadInvariance) {
  const Graph g = fat_tree(4);
  const auto run_cells = [&](std::size_t threads) {
    obs::MetricsRegistry reg;
    exec::ThreadPool pool{threads};
    exec::parallel_for(&pool, 6, [&](std::size_t cell) {
      Rng rng{mix64(4242, cell)};
      const std::uint32_t servers =
          static_cast<std::uint32_t>(server_nodes(g).size());
      Workload flows = permutation_traffic(servers, rng);
      for (std::size_t i = 0; i < flows.size(); ++i) {
        flows[i].bytes = 10e6 + 1e6 * static_cast<double>(i % 5);
        flows[i].start_s = 0.005 * static_cast<double>(i % 9);
      }
      std::vector<LinkId> fabric;
      for (std::uint32_t i = 0; i < g.link_count(); ++i) {
        const Link& l = g.link(LinkId{i});
        if (is_switch(g.node(l.a).role) && is_switch(g.node(l.b).role)) {
          fabric.push_back(LinkId{i});
        }
      }
      const LinkId a = fabric[rng.next_below(fabric.size())];
      FailureSchedule sched;
      sched.fail_at(0.03, FailureSet{{a}, {}});
      sched.recover_at(0.11, FailureSet{{a}, {}});
      run_sim(g, flows, sched, 0.02, true, &reg);
    });
    return reg.to_json();
  };
  const std::string one = run_cells(1);
  EXPECT_EQ(one, run_cells(2));
  EXPECT_EQ(one, run_cells(8));
  // The incremental path actually engaged: its counters are present.
  EXPECT_NE(one.find("fluid.realloc.links_touched"), std::string::npos);
  EXPECT_NE(one.find("fluid.realloc.flows_touched"), std::string::npos);
}

}  // namespace
}  // namespace flattree
