#include "lp/simplex.h"

#include <gtest/gtest.h>

namespace flattree {
namespace {

LpProblem make_problem(std::uint32_t vars, std::vector<double> objective) {
  LpProblem p;
  p.num_vars = vars;
  p.objective = std::move(objective);
  return p;
}

void add_row(LpProblem& p,
             std::vector<std::pair<std::uint32_t, double>> terms,
             ConstraintSense sense, double rhs) {
  p.constraints.push_back(LpConstraint{std::move(terms), sense, rhs});
}

TEST(Simplex, SimpleTwoVariableMax) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  -> x=2, y=6, obj=36.
  LpProblem p = make_problem(2, {3, 5});
  add_row(p, {{0, 1}}, ConstraintSense::kLe, 4);
  add_row(p, {{1, 2}}, ConstraintSense::kLe, 12);
  add_row(p, {{0, 3}, {1, 2}}, ConstraintSense::kLe, 18);
  const LpSolution s = SimplexSolver{}.solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-7);
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
  EXPECT_NEAR(s.x[1], 6.0, 1e-7);
}

TEST(Simplex, GreaterEqualConstraints) {
  // max -x - y st x + y >= 4, x <= 10, y <= 10 -> obj = -4.
  LpProblem p = make_problem(2, {-1, -1});
  add_row(p, {{0, 1}, {1, 1}}, ConstraintSense::kGe, 4);
  add_row(p, {{0, 1}}, ConstraintSense::kLe, 10);
  add_row(p, {{1, 1}}, ConstraintSense::kLe, 10);
  const LpSolution s = SimplexSolver{}.solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-7);
}

TEST(Simplex, EqualityConstraints) {
  // max x + 2y st x + y = 3, x - y = 1 -> x=2, y=1, obj=4.
  LpProblem p = make_problem(2, {1, 2});
  add_row(p, {{0, 1}, {1, 1}}, ConstraintSense::kEq, 3);
  add_row(p, {{0, 1}, {1, -1}}, ConstraintSense::kEq, 1);
  const LpSolution s = SimplexSolver{}.solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
  EXPECT_NEAR(s.x[1], 1.0, 1e-7);
  EXPECT_NEAR(s.objective, 4.0, 1e-7);
}

TEST(Simplex, NegativeRhsNormalized) {
  // x - y <= -2 with x,y >= 0: equivalent to y - x >= 2.
  // max x + y st x - y <= -2, x + y <= 10 -> x=4, y=6.
  LpProblem p = make_problem(2, {1, 1});
  add_row(p, {{0, 1}, {1, -1}}, ConstraintSense::kLe, -2);
  add_row(p, {{0, 1}, {1, 1}}, ConstraintSense::kLe, 10);
  const LpSolution s = SimplexSolver{}.solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-7);
  EXPECT_NEAR(s.x[1] - s.x[0], 2.0, 1e-6);
}

TEST(Simplex, InfeasibleDetected) {
  // x <= 1 and x >= 3.
  LpProblem p = make_problem(1, {1});
  add_row(p, {{0, 1}}, ConstraintSense::kLe, 1);
  add_row(p, {{0, 1}}, ConstraintSense::kGe, 3);
  EXPECT_EQ(SimplexSolver{}.solve(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  // max x with only x >= 1.
  LpProblem p = make_problem(1, {1});
  add_row(p, {{0, 1}}, ConstraintSense::kGe, 1);
  EXPECT_EQ(SimplexSolver{}.solve(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, ZeroObjectiveFeasible) {
  LpProblem p = make_problem(2, {0, 0});
  add_row(p, {{0, 1}, {1, 1}}, ConstraintSense::kLe, 5);
  const LpSolution s = SimplexSolver{}.solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
}

TEST(Simplex, DegenerateProblem) {
  // Multiple constraints intersecting at the optimum (degeneracy).
  LpProblem p = make_problem(2, {1, 1});
  add_row(p, {{0, 1}}, ConstraintSense::kLe, 2);
  add_row(p, {{1, 1}}, ConstraintSense::kLe, 2);
  add_row(p, {{0, 1}, {1, 1}}, ConstraintSense::kLe, 4);
  add_row(p, {{0, 1}, {1, 1}}, ConstraintSense::kLe, 4);  // duplicate row
  const LpSolution s = SimplexSolver{}.solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 twice (phase 1 must drive out the second artificial).
  LpProblem p = make_problem(2, {1, 0});
  add_row(p, {{0, 1}, {1, 1}}, ConstraintSense::kEq, 2);
  add_row(p, {{0, 1}, {1, 1}}, ConstraintSense::kEq, 2);
  const LpSolution s = SimplexSolver{}.solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(Simplex, ObjectiveSizeMismatchThrows) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0};
  EXPECT_THROW((void)SimplexSolver{}.solve(p), std::invalid_argument);
}

TEST(Simplex, BadVariableIndexThrows) {
  LpProblem p = make_problem(1, {1});
  add_row(p, {{5, 1}}, ConstraintSense::kLe, 1);
  EXPECT_THROW((void)SimplexSolver{}.solve(p), std::invalid_argument);
}

TEST(Simplex, MediumRandomFeasibleProblem) {
  // A transportation-style LP with a known optimum: max sum x_ij
  // st row sums <= 1 (10 rows), col sums <= 1 (10 cols) -> obj = 10.
  const int n = 10;
  LpProblem p = make_problem(n * n, std::vector<double>(n * n, 1.0));
  for (int i = 0; i < n; ++i) {
    LpConstraint row;
    LpConstraint col;
    for (int j = 0; j < n; ++j) {
      row.terms.emplace_back(i * n + j, 1.0);
      col.terms.emplace_back(j * n + i, 1.0);
    }
    row.sense = ConstraintSense::kLe;
    row.rhs = 1.0;
    col.sense = ConstraintSense::kLe;
    col.rhs = 1.0;
    p.constraints.push_back(std::move(row));
    p.constraints.push_back(std::move(col));
  }
  const LpSolution s = SimplexSolver{}.solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-6);
}

TEST(Simplex, SolutionSatisfiesConstraints) {
  LpProblem p = make_problem(3, {2, 3, 1});
  add_row(p, {{0, 1}, {1, 1}, {2, 1}}, ConstraintSense::kLe, 10);
  add_row(p, {{0, 2}, {1, 1}}, ConstraintSense::kLe, 8);
  add_row(p, {{1, 1}, {2, 3}}, ConstraintSense::kGe, 3);
  const LpSolution s = SimplexSolver{}.solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  for (const LpConstraint& c : p.constraints) {
    double lhs = 0;
    for (const auto& [v, coeff] : c.terms) lhs += coeff * s.x[v];
    if (c.sense == ConstraintSense::kLe) EXPECT_LE(lhs, c.rhs + 1e-6);
    if (c.sense == ConstraintSense::kGe) EXPECT_GE(lhs, c.rhs - 1e-6);
  }
  for (double v : s.x) EXPECT_GE(v, -1e-9);
}

}  // namespace
}  // namespace flattree
