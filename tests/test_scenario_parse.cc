// Negative-path coverage for the scenario DSL: every malformed spec must be
// rejected with its exact "<file>:<line>:<col>: ..." diagnostic — never a
// silent default — and compile-stage rejections (realized-topology checks,
// FailureSchedule::validate, ConversionDelayModel::validate) must land at
// parse/compile time with the file name attached, never mid-run.
#include "scenario/spec.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "scenario/runner.h"

namespace flattree::scenario {
namespace {

// Asserts parse_scenario(text, "bad.json") throws exactly `expected`. The
// expected string is position-anchored: the offending token's line:col must
// match too, so a diagnostic that drifts to the wrong token fails here.
void expect_parse_error(std::string_view text, std::string_view expected) {
  try {
    (void)parse_scenario(text, "bad.json");
    FAIL() << "expected ScenarioError: " << expected;
  } catch (const ScenarioError& e) {
    EXPECT_EQ(std::string{e.what()}, expected) << "for input:\n" << text;
  }
}

// A minimal valid scenario the mutation cases below perturb one key at a
// time; parsing it must succeed.
constexpr std::string_view kValid = R"({
  "name": "ok",
  "topology": {"kind": "fat_tree", "k": 4},
  "traffic": [{"pattern": "permutation"}]
})";

TEST(ScenarioParse, MinimalScenarioParses) {
  const Scenario s = parse_scenario(kValid, "ok.json");
  EXPECT_EQ(s.name, "ok");
  EXPECT_EQ(s.topology.kind, TopologyKind::kFatTree);
  EXPECT_EQ(s.traffic.size(), 1u);
  EXPECT_EQ(s.sim.engine, Engine::kFluid);
  // Seed resolution: entry i defaults to scenario seed + i.
  EXPECT_EQ(s.traffic[0].seed, s.seed + 0);
}

// ---- JSON layer -------------------------------------------------------------

TEST(ScenarioParse, MalformedJson) {
  expect_parse_error("{\"name\": }",
                     "bad.json:1:10: unexpected character '}'");
}

TEST(ScenarioParse, DuplicateKey) {
  expect_parse_error("{\"name\": \"a\", \"name\": \"b\"}",
                     "bad.json:1:15: duplicate key \"name\"");
}

TEST(ScenarioParse, TrailingContent) {
  expect_parse_error("{} x",
                     "bad.json:1:4: trailing content after the top-level value");
}

TEST(ScenarioParse, UnterminatedString) {
  expect_parse_error("{\"name\": \"oops",
                     "bad.json:1:15: unterminated string");
}

TEST(ScenarioParse, TopLevelMustBeObject) {
  expect_parse_error("[1]",
                     "bad.json:1:1: expected a scenario object, got array");
}

// ---- scenario section -------------------------------------------------------

TEST(ScenarioParse, MissingName) {
  expect_parse_error("{}", "bad.json:1:1: missing required key \"name\"");
}

TEST(ScenarioParse, UnknownTopLevelKey) {
  expect_parse_error("{\"nom\": 1}",
                     "bad.json:1:9: unknown key \"nom\" in scenario");
}

TEST(ScenarioParse, NameMustBeIdentifier) {
  expect_parse_error("{\"name\": \"Bad Name\"}",
                     "bad.json:1:10: key \"name\": must match [a-z0-9_]+");
}

TEST(ScenarioParse, MissingTopology) {
  expect_parse_error("{\"name\": \"x\"}",
                     "bad.json:1:1: missing required key \"topology\"");
}

TEST(ScenarioParse, UnknownExpectVerdict) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"expect\": \"maybe\"}",
      "bad.json:2:12: key \"expect\": unknown verdict \"maybe\" (expected "
      "\"pass\" or \"fail\")");
}

// ---- topology section -------------------------------------------------------

TEST(ScenarioParse, UnknownTopologyKind) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"butterfly\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}]}",
      "bad.json:2:23: key \"kind\": unknown topology kind \"butterfly\" "
      "(expected \"fat_tree\", \"flat_tree\", \"random_graph\" or "
      "\"two_stage\")");
}

TEST(ScenarioParse, OddKRejected) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\", \"k\": 5},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}]}",
      "bad.json:2:40: key \"k\": must be even");
}

TEST(ScenarioParse, KOutOfRange) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\", \"k\": 2},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}]}",
      "bad.json:2:40: key \"k\": value 2 out of range [4, 32]");
}

TEST(ScenarioParse, PodModesRequireFlatTree) {
  expect_parse_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"fat_tree\",\n"
      "  \"pod_modes\": [\"clos\"]},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}]}",
      "bad.json:3:16: key \"pod_modes\" is only valid for kind \"flat_tree\"");
}

TEST(ScenarioParse, PodModesCountMustBeOneOrK) {
  expect_parse_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\",\n"
      "  \"pod_modes\": [\"clos\", \"global\"]},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}]}",
      "bad.json:3:16: key \"pod_modes\": expected 1 or 4 entries, got 2");
}

TEST(ScenarioParse, UnknownPodMode) {
  expect_parse_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\",\n"
      "  \"pod_modes\": [\"hybrid\"]},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}]}",
      "bad.json:3:17: unknown Pod mode \"hybrid\" (expected \"clos\", "
      "\"local\" or \"global\")");
}

TEST(ScenarioParse, WiringSeedRequiresRandomKind) {
  expect_parse_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"fat_tree\",\n"
      "  \"wiring_seed\": 3},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}]}",
      "bad.json:3:18: key \"wiring_seed\" is only valid for kind "
      "\"random_graph\" or \"two_stage\"");
}

// ---- traffic section --------------------------------------------------------

TEST(ScenarioParse, EmptyTrafficRejected) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": []}",
      "bad.json:3:13: key \"traffic\": at least one traffic entry is "
      "required");
}

TEST(ScenarioParse, UnknownTrafficPattern) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"storm\"}]}",
      "bad.json:3:26: key \"pattern\": unknown traffic pattern \"storm\" "
      "(expected \"permutation\", \"incast\", \"class\", \"three_tier\", "
      "\"trace\" or \"tenant_churn\")");
}

TEST(ScenarioParse, KeyOfAnotherPatternRejected) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\",\n"
      "  \"fanin\": 4}]}",
      "bad.json:4:12: key \"fanin\" is not valid for pattern "
      "\"permutation\"");
}

TEST(ScenarioParse, UnknownTrafficKeyRejected) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\",\n"
      "  \"bogus\": 4}]}",
      "bad.json:4:12: unknown key \"bogus\" in traffic entry");
}

TEST(ScenarioParse, ParetoAlphaMustExceedOne) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"incast\",\n"
      "  \"alpha\": 1.0}]}",
      "bad.json:4:12: key \"alpha\": must be > 1");
}

TEST(ScenarioParse, UnknownTraceProfile) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"trace\",\n"
      "  \"profile\": \"hadoop3\"}]}",
      "bad.json:4:14: key \"profile\": unknown trace profile \"hadoop3\" "
      "(expected \"hadoop1\", \"hadoop2\", \"web\" or \"cache\")");
}

// ---- failure section --------------------------------------------------------

TEST(ScenarioParse, RecoverMustFollowFail) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"failures\": [{\"kind\": \"links\", \"fraction\": 0.1,\n"
      "  \"fail_at\": 0.5, \"recover_at\": 0.5}]}",
      "bad.json:5:33: key \"recover_at\": must be greater than fail_at");
}

TEST(ScenarioParse, FlappingRequiresRecoverAt) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"failures\": [{\"kind\": \"links\", \"fraction\": 0.1,\n"
      "  \"fail_at\": 0.5, \"flaps\": 3}]}",
      "bad.json:5:28: key \"flaps\": flapping requires recover_at");
}

TEST(ScenarioParse, PeriodRequiresFlaps) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"failures\": [{\"kind\": \"links\", \"fraction\": 0.1,\n"
      "  \"fail_at\": 0.5, \"period_s\": 1.0}]}",
      "bad.json:5:31: key \"period_s\" requires flaps > 1");
}

TEST(ScenarioParse, FlapPeriodMustExceedWindow) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"failures\": [{\"kind\": \"links\", \"fraction\": 0.1,\n"
      "  \"fail_at\": 0.5, \"recover_at\": 1.0, \"flaps\": 2,\n"
      "  \"period_s\": 0.25}]}",
      "bad.json:6:15: key \"period_s\": flap period must exceed recover_at "
      "- fail_at");
}

TEST(ScenarioParse, OverlappingWindowsSameSelector) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"failures\": [\n"
      "  {\"kind\": \"core_column\", \"count\": 2, \"fail_at\": 0.1,"
      " \"recover_at\": 0.5},\n"
      "  {\"kind\": \"core_column\", \"count\": 2, \"fail_at\": 0.3,"
      " \"recover_at\": 0.7}]}",
      "bad.json:6:3: failure window overlaps an earlier window for the same "
      "selector");
}

TEST(ScenarioParse, FractionOutOfRange) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"failures\": [{\"kind\": \"links\", \"fraction\": 1.5,\n"
      "  \"fail_at\": 0.5}]}",
      "bad.json:4:45: key \"fraction\": must lie in (0, 1]");
}

// ---- conversion / slo / sim cross checks ------------------------------------

TEST(ScenarioParse, ConversionRequiresFlatTree) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"]}}",
      "bad.json:4:16: conversion requires topology kind \"flat_tree\"");
}

TEST(ScenarioParse, SloRequiresMaxOrMin) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"slos\": [{\"metric\": \"p99_fct_s\"}]}",
      "bad.json:4:11: slo requires \"max\" or \"min\"");
}

TEST(ScenarioParse, SloClassMustBeDefined) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"slos\": [{\"class\": \"gold\", \"metric\": \"p99_fct_s\","
      " \"max\": 1.0}]}",
      "bad.json:4:21: key \"class\": tenant class \"gold\" is not defined "
      "by any traffic entry");
}

TEST(ScenarioParse, FailuresUnsupportedOffFluid) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"failures\": [{\"kind\": \"links\", \"fraction\": 0.1,"
      " \"fail_at\": 0.5}],\n"
      " \"sim\": {\"engine\": \"packet\"}}",
      "bad.json:4:14: key \"failures\" is not supported by engine "
      "\"packet\"");
}

TEST(ScenarioParse, AutopilotSupportsAggregateSlosOnly) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"slos\": [{\"metric\": \"p99_fct_s\", \"max\": 1.0}],\n"
      " \"sim\": {\"engine\": \"autopilot\"}}",
      "bad.json:4:11: engine \"autopilot\" supports aggregate SLOs only "
      "(class \"\", metric \"mean_fct_s\" or \"completed_frac\")");
}

TEST(ScenarioParse, RepairRefreshRequiresFlatKind) {
  expect_parse_error(
      "{\"name\": \"x\",\n \"topology\": {\"kind\": \"random_graph\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"sim\": {\"engine\": \"fluid\", \"refresh\": \"repair\"}}",
      "bad.json:4:40: key \"refresh\": \"repair\" requires topology kind "
      "\"fat_tree\" or \"flat_tree\"");
}

// ---- compile-stage rejections -----------------------------------------------
// Invalid embedded schedules and delay models must be rejected by
// compile_scenario — before any simulator runs — with the file name
// prefixed (FailureSchedule::validate / ConversionDelayModel::validate,
// invoked from the compiler).

void expect_compile_error(std::string_view text, std::string_view prefix) {
  const Scenario spec = parse_scenario(text, "bad.json");  // parses clean
  try {
    (void)compile_scenario(spec, "bad.json");
    FAIL() << "expected ScenarioError starting with: " << prefix;
  } catch (const ScenarioError& e) {
    EXPECT_EQ(std::string{e.what()}.substr(0, prefix.size()), prefix)
        << "actual: " << e.what();
  }
}

TEST(ScenarioCompile, InvalidDelayModelRejectedBeforeRun) {
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"], \"ocs_s\": -0.1}}",
      "bad.json: conversion delay model rejected: ");
}

TEST(ScenarioCompile, OversubscribedConverterColumnsRejected) {
  // m + n exceeds the per-column converter budget for k = 4.
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\", \"m\": 9, \"n\": 9},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}]}",
      "bad.json: topology rejected: ");
}

TEST(ScenarioCompile, CoreColumnBeyondCoresRejected) {
  // fat_tree k=4 has 4 cores; a 12-switch column cannot exist. The
  // schedule must be rejected at compile time, not mid-run.
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"failures\": [{\"kind\": \"core_column\", \"count\": 12,"
      " \"fail_at\": 0.1}]}",
      "bad.json: failure schedule rejected: ");
}

TEST(ScenarioCompile, EmptySampledFailureSetRejected) {
  // fraction small enough to round to zero links on a k=4 fabric.
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"failures\": [{\"kind\": \"links\", \"fraction\": 0.0001,"
      " \"fail_at\": 0.1}]}",
      "bad.json: failure schedule rejected: ");
}

TEST(ScenarioCompile, TrafficGeneratorRejectionNamesEntry) {
  // fanin must stay below the server count (16 for k = 4); the generator's
  // invalid_argument surfaces as a compile diagnostic naming the entry.
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"incast\", \"fanin\": 64}]}",
      "bad.json: traffic entry 0 (\"incast\") rejected: ");
}

TEST(ScenarioCompile, ShardedEngineRequiresPodLocalTraffic) {
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"sim\": {\"engine\": \"packet_sharded\"}}",
      "bad.json: engine \"packet_sharded\" requires Pod-local traffic");
}

TEST(ScenarioCompile, AutopilotHorizonBounded) {
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"sim\": {\"engine\": \"autopilot\", \"max_time_s\": 3600.0}}",
      "bad.json: engine \"autopilot\" requires max_time_s in (0, 600]");
}

// ---- control-plane fault grammar --------------------------------------------
// controller_crash / control_partition entries (PR: partition-tolerant
// hierarchy): acceptance of the full shape, and every structural rejection
// position-anchored at the offending entry.

TEST(ScenarioParse, ControlFaultsParse) {
  const Scenario s = parse_scenario(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"], \"stage_checkpoints\": true},\n"
      " \"failures\": [\n"
      "  {\"kind\": \"controller_crash\", \"fail_at\": 0.5},\n"
      "  {\"kind\": \"control_partition\", \"fail_at\": 0.5,"
      " \"recover_at\": 2.0, \"first\": 1, \"count\": 2},\n"
      "  {\"kind\": \"links\", \"fraction\": 0.1, \"fail_at\": 0.2}]}",
      "ok.json");
  ASSERT_EQ(s.failures.size(), 3u);
  EXPECT_EQ(s.failures[0].kind, FailureKind::kControllerCrash);
  EXPECT_EQ(s.failures[0].fail_at, 0.5);
  EXPECT_EQ(s.failures[1].kind, FailureKind::kControlPartition);
  EXPECT_EQ(s.failures[1].recover_at, 2.0);
  EXPECT_EQ(s.failures[1].first, 1u);
  EXPECT_EQ(s.failures[1].count, 2u);
  // A never-healing partition: recover_at stays the down-forever sentinel.
  EXPECT_EQ(s.failures[1].flaps, 1u);
  (void)compile_scenario(s, "ok.json");  // compiles clean end to end
}

TEST(ScenarioParse, ControllerCrashAdmitsNoRecovery) {
  // The dead primary never comes back; the standby takes over instead.
  expect_parse_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"]},\n"
      " \"failures\": [{\"kind\": \"controller_crash\", \"fail_at\": 0.5,"
      " \"recover_at\": 2.0}]}",
      "bad.json:5:74: key \"recover_at\" is not valid for failure kind "
      "\"controller_crash\"");
}

TEST(ScenarioParse, ControlFaultsRequireConversion) {
  expect_parse_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"failures\": [{\"kind\": \"controller_crash\", \"fail_at\": 0.5}]}",
      "bad.json:4:15: failure kind \"controller_crash\" requires a "
      "\"conversion\" section");
}

TEST(ScenarioParse, ControlPartitionRequiresStagedConversion) {
  // The atomic baseline has no checkpoint to fall back on.
  expect_parse_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"], \"staged\": false},\n"
      " \"failures\": [{\"kind\": \"control_partition\", \"fail_at\": 0.5,"
      " \"count\": 2}]}",
      "bad.json:5:15: failure kind \"control_partition\" requires a staged "
      "conversion");
}

TEST(ScenarioParse, ControlPartitionPodRangeBounded) {
  expect_parse_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"]},\n"
      " \"failures\": [{\"kind\": \"control_partition\", \"fail_at\": 0.5,"
      " \"first\": 3, \"count\": 2}]}",
      "bad.json:5:15: failure kind \"control_partition\": pod range [first, "
      "first + count) exceeds the topology's pods");
}

TEST(ScenarioParse, ControlPartitionRequiresCount) {
  expect_parse_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"]},\n"
      " \"failures\": [{\"kind\": \"control_partition\", \"fail_at\": 0.5}]}",
      "bad.json:5:15: missing required key \"count\"");
}

TEST(ScenarioParse, ConversionScenariosRejectOtherFailureKinds) {
  expect_parse_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"]},\n"
      " \"failures\": [{\"kind\": \"core_column\", \"fail_at\": 0.5,"
      " \"count\": 1}]}",
      "bad.json:5:15: conversion scenarios support failure kinds \"links\", "
      "\"controller_crash\" and \"control_partition\" only");
}

TEST(ScenarioParse, DropProbabilityRangeChecked) {
  expect_parse_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"], \"drop_probability\": 1.0}}",
      "bad.json:4:55: key \"drop_probability\": must lie in [0, 1)");
}

// The remaining channel knobs are parsed for type only; compile_scenario
// invokes ControlChannelOptions::validate() before any cell runs, so every
// out-of-range value lands with the channel's own message — pinned here,
// one per field.

TEST(ScenarioCompile, ChannelDelayRejected) {
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"], \"channel_delay_s\": -0.1}}",
      "bad.json: conversion channel rejected: ControlChannelOptions: "
      "delay_s must be >= 0");
}

TEST(ScenarioCompile, ChannelTimeoutRejected) {
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"], \"channel_timeout_s\": 0.0}}",
      "bad.json: conversion channel rejected: ControlChannelOptions: "
      "timeout_s must be > 0");
}

TEST(ScenarioCompile, ChannelBackoffRejected) {
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"], \"channel_backoff\": 0.5}}",
      "bad.json: conversion channel rejected: ControlChannelOptions: "
      "backoff must be >= 1");
}

TEST(ScenarioCompile, ChannelJitterRejected) {
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"], \"channel_jitter\": 1.5}}",
      "bad.json: conversion channel rejected: ControlChannelOptions: "
      "jitter must be in [0, 1]");
}

TEST(ScenarioCompile, ChannelMaxAttemptsRejected) {
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"flat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"conversion\": {\"to\": [\"global\"], \"channel_max_attempts\": 0}}",
      "bad.json: conversion channel rejected: ControlChannelOptions: "
      "max_attempts must be >= 1");
}

TEST(ScenarioCompile, RepairRefreshSingleWindowOnly) {
  expect_compile_error(
      "{\"name\": \"x\",\n"
      " \"topology\": {\"kind\": \"fat_tree\"},\n"
      " \"traffic\": [{\"pattern\": \"permutation\"}],\n"
      " \"failures\": [{\"kind\": \"links\", \"fraction\": 0.1,"
      " \"fail_at\": 0.1, \"recover_at\": 0.2, \"flaps\": 2,"
      " \"period_s\": 0.5}],\n"
      " \"sim\": {\"engine\": \"fluid\", \"refresh\": \"repair\"}}",
      "bad.json: refresh \"repair\" supports a single failure window");
}

}  // namespace
}  // namespace flattree::scenario
