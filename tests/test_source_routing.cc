#include "routing/source_routing.h"

#include <gtest/gtest.h>

#include "core/flat_tree.h"
#include "routing/ksp.h"
#include "topo/clos.h"

namespace flattree {
namespace {

TEST(PortMap, PortsAreStableAndInvertible) {
  const Graph g = build_clos(ClosParams::testbed());
  const PortMap ports{g};
  for (NodeId sw : g.switches()) {
    for (const Adjacency& adj : g.neighbors(sw)) {
      const std::uint8_t port = ports.port_to(sw, adj.peer);
      const auto back = ports.neighbor_at(sw, port);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, adj.peer);
    }
  }
}

TEST(PortMap, UnusedPortIsEmpty) {
  const Graph g = build_clos(ClosParams::testbed());
  const PortMap ports{g};
  const NodeId sw = g.switches().front();
  EXPECT_FALSE(ports.neighbor_at(sw, 200).has_value());
}

TEST(PortMap, NotAdjacentThrows) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kEdge);
  const NodeId c = g.add_node(NodeRole::kEdge);
  g.add_link(a, b, 1e9);
  const PortMap ports{g};
  EXPECT_THROW((void)ports.port_to(a, c), std::logic_error);
}

TEST(PortMap, ParallelLinksShareOnePort) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kEdge);
  g.add_link(a, b, 1e9);
  g.add_link(a, b, 1e9);
  const PortMap ports{g};
  EXPECT_EQ(ports.port_count(a), 1u);
}

TEST(PortMap, MaxPortCount) {
  const ClosParams p = ClosParams::testbed();
  const Graph g = build_clos(p);
  const PortMap ports{g};
  // Edge switches have the most ports: servers + uplinks.
  EXPECT_EQ(ports.max_port_count(), p.servers_per_edge + p.edge_uplinks);
}

TEST(SourceRoute, EncodeReplayRoundTrip) {
  const Graph g = build_clos(ClosParams::testbed());
  const PortMap ports{g};
  PathCache cache{g, 4};
  const auto servers = g.servers();
  // Cross-pod server pair.
  for (const Path& path : cache.server_paths(servers[0], servers[20])) {
    const SourceRoute route = encode_route(ports, path);
    const std::vector<NodeId> visited =
        replay_route(g, ports, route, path[1]);
    // The replay must traverse exactly the path's switch+destination tail.
    ASSERT_EQ(visited.size() + 1, path.size());
    for (std::size_t i = 0; i < visited.size(); ++i) {
      EXPECT_EQ(visited[i], path[i + 1]);
    }
  }
}

TEST(SourceRoute, SwitchToSwitchPathEncodes) {
  const Graph g = build_clos(ClosParams::testbed());
  const PortMap ports{g};
  const KspSolver solver{g};
  const auto edges = g.nodes_with_role(NodeRole::kEdge);
  const auto path = solver.shortest_path(edges[0], edges[7]);
  ASSERT_TRUE(path.has_value());
  const SourceRoute route = encode_route(ports, *path);
  EXPECT_EQ(route.hop_count, path_length(*path));
  const auto visited = replay_route(g, ports, route, (*path)[0]);
  EXPECT_EQ(visited.back(), edges[7]);
}

TEST(SourceRoute, TooManyHopsRejected) {
  // A long chain exceeds the 6-hop MAC budget.
  Graph g;
  std::vector<NodeId> chain;
  for (int i = 0; i < 10; ++i) chain.push_back(g.add_node(NodeRole::kEdge));
  for (int i = 0; i + 1 < 10; ++i) g.add_link(chain[i], chain[i + 1], 1e9);
  const PortMap ports{g};
  Path path(chain.begin(), chain.end());
  EXPECT_THROW((void)encode_route(ports, path), std::invalid_argument);
}

TEST(SourceRoute, ShortPathRejected) {
  const Graph g = build_clos(ClosParams::testbed());
  const PortMap ports{g};
  EXPECT_THROW((void)encode_route(ports, Path{g.switches().front()}),
               std::invalid_argument);
}

TEST(SourceRoute, TtlCursorMatchesPaperExample) {
  // §4.2.2: TTL 253 = third hop = byte 2 of the MAC.
  SourceRoute route;
  route.mac = 0x0102030405060000ULL >> 16;  // bytes: 01 02 03 04 05 06
  route.hop_count = 6;
  EXPECT_EQ(route_port_at(route, 255), 0x01);
  EXPECT_EQ(route_port_at(route, 253), 0x03);
  EXPECT_EQ(route_port_at(route, 250), 0x06);
  EXPECT_THROW((void)route_port_at(route, 249), std::invalid_argument);
}

TEST(SourceRoute, TransitRuleCountIsDxC) {
  EXPECT_EQ(transit_rule_count(3, 48), 144u);
  EXPECT_EQ(transit_rule_count(6, 256), 1536u);  // "at most a thousand"-ish
}

TEST(SourceRoute, FlatTreeGlobalModeAllPairsEncode) {
  // Every k-shortest switch path in the testbed's global mode fits the
  // 6-hop source-route budget (flat-tree is a small-diameter network).
  const FlatTree tree{FlatTreeParams::defaults_for(ClosParams::testbed())};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  const PortMap ports{g};
  PathCache cache{g, 4};
  const auto switches = g.switches();
  for (std::size_t i = 0; i < switches.size(); i += 3) {
    for (std::size_t j = 0; j < switches.size(); j += 3) {
      if (i == j) continue;
      for (const Path& path : cache.switch_paths(switches[i], switches[j])) {
        const SourceRoute route = encode_route(ports, path);
        const auto visited = replay_route(g, ports, route, path.front());
        EXPECT_EQ(visited.back(), switches[j]);
      }
    }
  }
}

}  // namespace
}  // namespace flattree
