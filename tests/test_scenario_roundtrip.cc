// Round-trip property: for any valid scenario text, parse -> canonical_json
// -> parse yields an identical Scenario struct, and canonical_json is a
// fixed point (serializing the re-parse reproduces the same bytes). Fuzzed
// over seeded randomly-generated specs spanning every topology kind,
// traffic pattern, failure kind, engine and SLO shape the grammar admits.
//
// The canonical form (documented in DESIGN.md): every section present,
// every field materialized with its resolved default (including parse-time
// seed resolution), keys in grammar order, two-space indentation,
// shortest-round-trip numbers. This is what keeps golden summaries and
// scenario files diffable as the grammar grows.
#include "scenario/spec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/rng.h"

namespace flattree::scenario {
namespace {

// A tiny JSON emitter for the fuzzer: builds one syntactically valid
// scenario text, choosing sections, keys and values at random within the
// grammar's invariants.
class SpecBuilder {
 public:
  explicit SpecBuilder(std::uint64_t seed) : rng_{seed} {}

  std::string build() {
    const char* kinds[] = {"fat_tree", "flat_tree", "random_graph",
                           "two_stage"};
    kind_ = kinds[pick(4)];
    flat_ = kind_ == std::string{"fat_tree"} || kind_ == std::string{"flat_tree"};
    const char* engines_flat[] = {"fluid", "fluid", "packet",
                                  "packet_sharded", "autopilot"};
    const char* engines_random[] = {"fluid", "packet"};
    engine_ = flat_ ? engines_flat[pick(5)]
                    : engines_random[pick(2)];
    k_ = 4 + 2 * pick(3);  // 4, 6, 8

    std::string out = "{\n";
    out += "  \"name\": \"fuzz_" + std::to_string(pick(1000)) + "\",\n";
    if (chance(70)) {
      out += "  \"seed\": " + std::to_string(pick(100000)) + ",\n";
    }
    if (chance(50)) {
      out += std::string{"  \"expect\": \""} +
             (chance(80) ? "pass" : "fail") + "\",\n";
    }
    out += topology_section();
    out += traffic_section();
    if (engine_ == std::string{"fluid"}) {
      const std::string conversion = conversion_section();
      out += failures_section();  // links-only when conversion_ is set
      out += conversion;
    }
    out += slos_section();
    out += sim_section();
    out.pop_back();  // trailing newline
    out.pop_back();  // trailing comma
    out += "\n}\n";
    return out;
  }

 private:
  std::uint32_t pick(std::uint32_t bound) {
    return static_cast<std::uint32_t>(rng_.next_below(bound));
  }
  bool chance(std::uint32_t percent) { return pick(100) < percent; }

  std::string num(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::string topology_section() {
    std::string out = "  \"topology\": {\"kind\": \"" + kind_ + "\"";
    out += ", \"k\": " + std::to_string(k_);
    if (chance(40)) {
      out += ", \"servers_per_edge\": " + std::to_string(1 + pick(8));
    }
    if (flat_ && chance(30)) out += ", \"m\": " + std::to_string(1 + pick(2));
    if (flat_ && chance(30)) out += ", \"n\": " + std::to_string(1 + pick(2));
    if (kind_ == std::string{"flat_tree"} && chance(60)) {
      const char* modes[] = {"clos", "local", "global"};
      out += ", \"pod_modes\": [";
      const std::uint32_t count = chance(50) ? 1 : k_;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (i > 0) out += ", ";
        out += std::string{"\""} + modes[pick(3)] + "\"";
      }
      out += "]";
    }
    if (!flat_ && chance(60)) {
      out += ", \"wiring_seed\": " + std::to_string(pick(1000));
    }
    return out + "},\n";
  }

  std::string traffic_entry() {
    const char* patterns[] = {"permutation", "incast", "class", "three_tier",
                              "trace", "tenant_churn"};
    // Packet engines reject three_tier at compile time but parse it fine;
    // keep the fuzz space full for the parser.
    const std::string pattern = patterns[pick(6)];
    std::string out = "    {\"pattern\": \"" + pattern + "\"";
    if (chance(50)) {
      const std::string cls = "t" + std::to_string(pick(4));
      out += ", \"class\": \"" + cls + "\"";
      classes_.push_back(cls);
    }
    if (chance(50)) {
      out += ", \"seed\": " + std::to_string(pick(100000));
    }
    if (chance(30)) out += ", \"start_s\": " + num(rng_.next_double() * 2);
    if (pattern == "permutation" && chance(60)) {
      out += ", \"bytes\": " + num(1e4 + rng_.next_double() * 1e7);
    }
    if (pattern == "incast") {
      if (chance(50)) out += ", \"groups\": " + std::to_string(1 + pick(8));
      if (chance(50)) out += ", \"fanin\": " + std::to_string(1 + pick(8));
      if (chance(50)) out += ", \"alpha\": " + num(1.1 + rng_.next_double());
      if (chance(30)) out += ", \"pod_local\": " + std::string{chance(50) ? "true" : "false"};
    }
    if (pattern == "class") {
      if (chance(50)) out += ", \"flows_per_s\": " + num(10 + rng_.next_double() * 500);
      if (chance(40)) out += ", \"intra_rack_frac\": " + num(rng_.next_double() * 0.5);
      if (chance(40)) out += ", \"hot_pod\": " + std::to_string(pick(2));
      if (chance(40)) out += ", \"hot_pod_frac\": " + num(rng_.next_double());
    }
    if (pattern == "three_tier" && chance(50)) {
      out += ", \"miss_frac\": " + num(rng_.next_double());
      out += ", \"think_s\": " + num(rng_.next_double() * 0.01);
    }
    if (pattern == "trace") {
      const char* profiles[] = {"hadoop1", "hadoop2", "web", "cache"};
      out += std::string{", \"profile\": \""} + profiles[pick(4)] + "\"";
      if (chance(50)) out += ", \"duration_s\": " + num(0.1 + rng_.next_double());
    }
    if (pattern == "tenant_churn" && chance(50)) {
      out += ", \"arrivals_per_s\": " + num(0.2 + rng_.next_double() * 2);
    }
    return out + "}";
  }

  std::string traffic_section() {
    std::string out = "  \"traffic\": [\n";
    const std::uint32_t entries = 1 + pick(3);
    for (std::uint32_t i = 0; i < entries; ++i) {
      if (i > 0) out += ",\n";
      out += traffic_entry();
    }
    return out + "\n  ],\n";
  }

  std::string failures_section() {
    if (!chance(50)) return "";
    std::string out = "  \"failures\": [\n";
    const std::uint32_t entries = 1 + pick(2);
    for (std::uint32_t i = 0; i < entries; ++i) {
      if (i > 0) out += ",\n";
      const double fail_at = 0.1 + i * 10.0;  // windows never overlap
      const double recover_at = fail_at + 0.5;
      const char* kinds[] = {"core_column", "links", "switches"};
      const std::string kind =
          conversion_ ? "links" : kinds[pick(3)];
      out += "    {\"kind\": \"" + kind + "\", \"fail_at\": " + num(fail_at);
      if (chance(70)) out += ", \"recover_at\": " + num(recover_at);
      if (kind == "core_column") {
        out += ", \"count\": " + std::to_string(1 + pick(4));
        if (chance(50)) out += ", \"first\": " + std::to_string(pick(4));
      } else {
        out += ", \"fraction\": " + num(0.05 + rng_.next_double() * 0.4);
        out += ", \"seed\": " + std::to_string(i);  // distinct selectors
        if (kind == "switches" && chance(60)) {
          const char* roles[] = {"edge", "agg", "core"};
          out += std::string{", \"role\": \""} + roles[pick(3)] + "\"";
        }
      }
      out += "}";
    }
    return out + "\n  ],\n";
  }

  std::string conversion_section() {
    if (kind_ != std::string{"flat_tree"} || !chance(40)) return "";
    conversion_ = true;
    std::string out = "  \"conversion\": {\"to\": [\"";
    const char* modes[] = {"clos", "local", "global"};
    out += modes[pick(3)];
    out += "\"]";
    if (chance(50)) out += ", \"at_s\": " + num(rng_.next_double());
    const bool staged = chance(70);
    if (chance(60)) out += std::string{", \"staged\": "} + (staged ? "true" : "false");
    if (staged && chance(40)) out += ", \"stage_checkpoints\": true";
    if (chance(40)) out += ", \"drop_probability\": " + num(rng_.next_double() * 0.1);
    if (chance(40)) out += ", \"controllers\": " + std::to_string(1 + pick(64));
    return out + "},\n";
  }

  std::string slos_section() {
    if (!chance(70)) return "";
    std::string out = "  \"slos\": [\n";
    const std::uint32_t entries = 1 + pick(2);
    const bool aggregate_only = engine_ == std::string{"autopilot"} ||
                                engine_ == std::string{"packet_sharded"};
    for (std::uint32_t i = 0; i < entries; ++i) {
      if (i > 0) out += ",\n";
      out += "    {";
      if (!aggregate_only && !classes_.empty() && chance(40)) {
        out += "\"class\": \"" + classes_[pick(
                   static_cast<std::uint32_t>(classes_.size()))] + "\", ";
      }
      const char* metric =
          engine_ == std::string{"autopilot"}
              ? (chance(50) ? "mean_fct_s" : "completed_frac")
              : (chance(50) ? "p99_fct_s"
                            : (chance(50) ? "worst_fct_s" : "completed_frac"));
      out += std::string{"\"metric\": \""} + metric + "\"";
      const bool has_max = chance(70);
      if (has_max) out += ", \"max\": " + num(0.5 + rng_.next_double() * 10);
      if (!has_max || chance(30)) out += ", \"min\": " + num(rng_.next_double() * 0.5);
      out += "}";
    }
    return out + "\n  ],\n";
  }

  std::string sim_section() {
    std::string out = "  \"sim\": {\"engine\": \"" + engine_ + "\"";
    if (chance(50)) out += ", \"max_time_s\": " + num(1 + rng_.next_double() * 100);
    if (chance(50)) out += ", \"k_paths\": " + std::to_string(1 + pick(8));
    if (engine_ == std::string{"fluid"}) {
      if (chance(40)) {
        out += std::string{", \"refresh\": \""} +
               (flat_ ? (chance(50) ? "repair" : "reroute")
                      : (chance(50) ? "reroute" : "none")) +
               "\"";
      }
      if (chance(30)) out += ", \"repair_lag_s\": " + num(rng_.next_double());
      if (chance(30)) out += ", \"controllers\": " + std::to_string(1 + pick(64));
      if (chance(30)) out += std::string{", \"count_rules\": "} + (chance(50) ? "true" : "false");
    }
    if (engine_ == std::string{"autopilot"} && chance(50)) {
      out += ", \"epoch_s\": " + num(0.5 + rng_.next_double());
    }
    return out + "},\n";
  }

  Rng rng_;
  std::string kind_;
  std::string engine_;
  bool flat_{false};
  bool conversion_{false};
  std::uint32_t k_{4};
  std::vector<std::string> classes_;
};

TEST(ScenarioRoundtrip, CanonicalFormIsAFixedPoint) {
  std::uint32_t generated = 0;
  for (std::uint64_t seed = 0; generated < 50; ++seed) {
    const std::string text = SpecBuilder{seed}.build();
    Scenario first;
    try {
      first = parse_scenario(text, "fuzz.json");
    } catch (const ScenarioError&) {
      // The builder occasionally emits a spec the cross-section checks
      // reject (e.g. an SLO metric the chosen engine disallows); those are
      // parser-correctness cases, not round-trip cases.
      continue;
    }
    ++generated;
    const std::string canonical = canonical_json(first);
    Scenario second;
    ASSERT_NO_THROW(second = parse_scenario(canonical, "canon.json"))
        << "canonical form failed to re-parse:\n" << canonical;
    EXPECT_EQ(first, second) << "round-trip changed the scenario for:\n"
                             << text << "\ncanonical:\n" << canonical;
    EXPECT_EQ(canonical_json(second), canonical)
        << "canonical_json is not a fixed point for:\n" << text;
  }
  // The grammar invariants in the builder keep the reject rate low; make
  // sure the fuzz actually exercised 50 full round-trips.
  EXPECT_EQ(generated, 50u);
}

TEST(ScenarioRoundtrip, HandWrittenSpecRoundTrips) {
  const std::string text = R"({
    "name": "hand",
    "seed": 9,
    "topology": {"kind": "flat_tree", "k": 4, "pod_modes": ["clos"]},
    "traffic": [
      {"pattern": "class", "class": "gold", "flows_per_s": 100.0},
      {"pattern": "permutation", "bytes": 1000000.0}
    ],
    "conversion": {"at_s": 0.25, "to": ["global"]},
    "slos": [{"class": "gold", "metric": "p99_fct_s", "max": 0.5}],
    "sim": {"engine": "fluid", "refresh": "repair"}
  })";
  const Scenario first = parse_scenario(text, "hand.json");
  // Parse-time seed resolution is explicit in the canonical form.
  EXPECT_EQ(first.traffic[0].seed, 9u);
  EXPECT_EQ(first.traffic[1].seed, 10u);
  EXPECT_EQ(first.conversion.seed, 9u);
  const std::string canonical = canonical_json(first);
  const Scenario second = parse_scenario(canonical, "canon.json");
  EXPECT_EQ(first, second);
  EXPECT_EQ(canonical_json(second), canonical);
}

}  // namespace
}  // namespace flattree::scenario
