#include "sim/packet.h"

#include <gtest/gtest.h>

#include "core/flat_tree.h"
#include "routing/ksp.h"
#include "topo/clos.h"

namespace flattree {
namespace {

// Dumbbell with a 100 Mb/s bottleneck (small rates keep event counts low).
struct Dumbbell {
  Graph g;
  Dumbbell() {
    const NodeId s0 = g.add_node(NodeRole::kServer);
    const NodeId s1 = g.add_node(NodeRole::kServer);
    const NodeId s2 = g.add_node(NodeRole::kServer);
    const NodeId s3 = g.add_node(NodeRole::kServer);
    const NodeId e0 = g.add_node(NodeRole::kEdge);
    const NodeId e1 = g.add_node(NodeRole::kEdge);
    g.add_link(s0, e0, 1e9);
    g.add_link(s1, e0, 1e9);
    g.add_link(s2, e1, 1e9);
    g.add_link(s3, e1, 1e9);
    g.add_link(e0, e1, 100e6);
  }
  [[nodiscard]] std::vector<Path> path(std::uint32_t src,
                                       std::uint32_t dst) const {
    PathCache cache{g, 1};
    return cache.server_paths(NodeId{src}, NodeId{dst});
  }
};

TEST(PacketSim, SingleFlowSaturatesBottleneck) {
  Dumbbell net;
  PacketSim sim;
  sim.set_network(net.g);
  sim.add_flow(0, 2, /*bytes=*/0, /*start=*/0.0, net.path(0, 2));
  sim.run_until(2.0);
  const double goodput = sim.flow_bytes_acked(0) * 8 / 2.0;
  EXPECT_GT(goodput, 80e6);   // > 80% of the 100M bottleneck
  EXPECT_LT(goodput, 101e6);  // never exceeds capacity
}

TEST(PacketSim, TwoFlowsShareFairly) {
  Dumbbell net;
  PacketSim sim;
  sim.set_network(net.g);
  sim.add_flow(0, 2, 0, 0.0, net.path(0, 2));
  sim.add_flow(1, 3, 0, 0.0, net.path(1, 3));
  sim.run_until(3.0);
  const double a = static_cast<double>(sim.flow_bytes_acked(0));
  const double b = static_cast<double>(sim.flow_bytes_acked(1));
  EXPECT_GT(a + b, 0.8 * 100e6 / 8 * 3);
  EXPECT_GT(a / b, 0.6);
  EXPECT_LT(a / b, 1.67);
}

TEST(PacketSim, FiniteFlowCompletes) {
  Dumbbell net;
  PacketSim sim;
  sim.set_network(net.g);
  const auto id = sim.add_flow(0, 2, 1e6, 0.0, net.path(0, 2));
  sim.run_until(5.0);
  EXPECT_TRUE(sim.flow_completed(id));
  // 1 MB at ~100 Mb/s is ~0.08 s plus slow start.
  EXPECT_GT(sim.flow_finish_time(id), 0.08);
  EXPECT_LT(sim.flow_finish_time(id), 1.0);
}

TEST(PacketSim, FlowStartTimeRespected) {
  Dumbbell net;
  PacketSim sim;
  sim.set_network(net.g);
  const auto id = sim.add_flow(0, 2, 1e5, 1.0, net.path(0, 2));
  sim.run_until(0.9);
  EXPECT_EQ(sim.flow_bytes_acked(id), 0u);
  sim.run_until(3.0);
  EXPECT_TRUE(sim.flow_completed(id));
  EXPECT_GT(sim.flow_finish_time(id), 1.0);
}

TEST(PacketSim, DropsUnderCongestion) {
  Dumbbell net;
  PacketSimOptions options;
  options.queue_packets = 8;  // tiny buffers
  PacketSim sim{options};
  sim.set_network(net.g);
  sim.add_flow(0, 2, 0, 0.0, net.path(0, 2));
  sim.add_flow(1, 3, 0, 0.0, net.path(1, 3));
  sim.run_until(2.0);
  EXPECT_GT(sim.packets_dropped(), 0u);
  // And yet both flows keep making progress.
  EXPECT_GT(sim.flow_bytes_acked(0), 1e6);
  EXPECT_GT(sim.flow_bytes_acked(1), 1e6);
}

TEST(PacketSim, MptcpUsesParallelPaths) {
  // Two disjoint 100M paths: an MPTCP flow with 2 subflows should beat one
  // path's capacity.
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId a0 = g.add_node(NodeRole::kAgg);
  const NodeId a1 = g.add_node(NodeRole::kAgg);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  g.add_link(s0, e0, 1e9);
  g.add_link(s1, e1, 1e9);
  g.add_link(e0, a0, 100e6);
  g.add_link(e0, a1, 100e6);
  g.add_link(a0, e1, 100e6);
  g.add_link(a1, e1, 100e6);
  PacketSim sim;
  sim.set_network(g);
  PathCache cache{g, 2};
  sim.add_flow(0, 1, 0, 0.0, cache.server_paths(s0, s1));
  sim.run_until(2.0);
  const double goodput = sim.flow_bytes_acked(0) * 8 / 2.0;
  EXPECT_GT(goodput, 140e6);  // well beyond a single 100M path
}

TEST(PacketSim, UncoupledSubflowsGrabMoreThanCoupled) {
  // LIA caps a multipath flow near a single-TCP share; uncoupled subflows
  // behave like independent TCPs and take more from a shared bottleneck.
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId s2 = g.add_node(NodeRole::kServer);
  const NodeId s3 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  g.add_link(s0, e0, 1e9);
  g.add_link(s1, e0, 1e9);
  g.add_link(s2, e1, 1e9);
  g.add_link(s3, e1, 1e9);
  g.add_link(e0, e1, 100e6);
  PathCache cache{g, 1};
  const auto share_of_multipath = [&](bool coupled) {
    PacketSimOptions options;
    options.mptcp_coupled = coupled;
    PacketSim sim{options};
    sim.set_network(g);
    // Flow A: two subflows over the same bottleneck; flow B: one.
    std::vector<Path> two{cache.server_paths(s0, s2)[0],
                          cache.server_paths(s0, s2)[0]};
    sim.add_flow(0, 2, 0, 0.0, two);
    sim.add_flow(1, 3, 0, 0.0, cache.server_paths(s1, s3));
    sim.run_until(4.0);
    return static_cast<double>(sim.flow_bytes_acked(0)) /
           static_cast<double>(sim.flow_bytes_acked(0) +
                               sim.flow_bytes_acked(1));
  };
  const double coupled_share = share_of_multipath(true);
  const double uncoupled_share = share_of_multipath(false);
  EXPECT_GT(uncoupled_share, coupled_share);
  // Coupled MPTCP stays in the neighborhood of a fair half.
  EXPECT_LT(coupled_share, 0.62);
}

TEST(PacketSim, ConversionDropsThenRecovers) {
  Dumbbell net;
  PacketSim sim;
  sim.set_network(net.g);
  sim.add_flow(0, 2, 0, 0.0, net.path(0, 2));
  sim.run_until(1.0);
  const std::uint64_t before = sim.flow_bytes_acked(0);
  EXPECT_GT(before, 0u);
  // "Convert" to the same topology with a 200 ms blackout.
  sim.apply_conversion(
      net.g, [&](std::uint32_t) { return net.path(0, 2); }, 0.2);
  sim.run_until(1.15);
  // During the blackout almost nothing gets through.
  EXPECT_LT(sim.flow_bytes_acked(0) - before, 100e6 / 8 * 0.15 * 0.5);
  sim.run_until(3.0);
  const double post_rate =
      (sim.flow_bytes_acked(0) - before) * 8.0 / 2.0;  // over [1s, 3s]
  EXPECT_GT(post_rate, 50e6);  // recovered to a healthy fraction
}

TEST(PacketSim, ConversionToBetterTopologyRaisesThroughput) {
  // Start with a 50M middle link; convert to a 200M one.
  Graph slow, fast;
  for (Graph* g : {&slow, &fast}) {
    const NodeId s0 = g->add_node(NodeRole::kServer);
    const NodeId s1 = g->add_node(NodeRole::kServer);
    const NodeId e0 = g->add_node(NodeRole::kEdge);
    const NodeId e1 = g->add_node(NodeRole::kEdge);
    g->add_link(s0, e0, 1e9);
    g->add_link(s1, e1, 1e9);
    g->add_link(e0, e1, g == &slow ? 50e6 : 200e6);
  }
  PathCache cache_slow{slow, 1};
  PacketSim sim;
  sim.set_network(slow);
  sim.add_flow(0, 1, 0, 0.0, cache_slow.server_paths(NodeId{0}, NodeId{1}));
  sim.run_until(2.0);
  const double rate_before = sim.flow_bytes_acked(0) * 8 / 2.0;
  PathCache cache_fast{fast, 1};
  sim.apply_conversion(
      fast,
      [&](std::uint32_t) {
        return cache_fast.server_paths(NodeId{0}, NodeId{1});
      },
      0.1);
  const std::uint64_t at_conv = sim.flow_bytes_acked(0);
  sim.run_until(5.0);
  const double rate_after = (sim.flow_bytes_acked(0) - at_conv) * 8 / 3.0;
  EXPECT_GT(rate_after, rate_before * 2);
}

TEST(PacketSim, FlowPathsAccessor) {
  Dumbbell net;
  PacketSim sim;
  sim.set_network(net.g);
  const auto paths = net.path(0, 2);
  const auto id = sim.add_flow(0, 2, 0, 0.0, paths);
  EXPECT_EQ(sim.flow_paths(id), paths);
}

TEST(PacketSim, FailureBlackHolesTraffic) {
  // The bottleneck pipe dies mid-run: packets routed into it vanish and
  // goodput stops until routing state is refreshed.
  Dumbbell net;
  PacketSim sim;
  sim.set_network(net.g);
  sim.add_flow(0, 2, 0, 0.0, net.path(0, 2));
  sim.run_until(1.0);
  const std::uint64_t before = sim.flow_bytes_acked(0);
  EXPECT_GT(before, 5e6);
  sim.apply_failure(degrade(net.g, FailureSet{{LinkId{4}}, {}}));
  sim.run_until(2.0);
  // Only acks already in flight can still land; no new data gets across.
  EXPECT_LT(sim.flow_bytes_acked(0) - before, 1e5);
}

TEST(PacketSim, ScheduledFailureStallsThenRecovers) {
  // A finite flow is cut off by an outage spanning its natural completion
  // and finishes only after the recovery event restores the pipe.
  Dumbbell net;
  PacketSim sim;
  sim.set_network(net.g);
  const auto id = sim.add_flow(0, 2, 10e6, 0.0, net.path(0, 2));
  FailureSchedule schedule;
  schedule.fail_at(0.5, FailureSet{{LinkId{4}}, {}});
  schedule.recover_at(1.5, FailureSet{{LinkId{4}}, {}});
  const auto repath = [](std::uint32_t, const Graph& g) -> std::vector<Path> {
    PathCache cache{g, 1};
    return cache.server_paths(NodeId{0}, NodeId{2});
  };
  run_with_schedule(sim, net.g, schedule, repath, /*horizon_s=*/5.0);
  EXPECT_TRUE(sim.flow_completed(id));
  // 10 MB needs ~0.85 s at 100 Mb/s: impossible before the t=0.5 outage,
  // so completion lands after the t=1.5 recovery.
  EXPECT_GT(sim.flow_finish_time(id), 1.5);
  EXPECT_LT(sim.flow_finish_time(id), 3.0);
}

TEST(PacketSim, ScheduledFailureReroutesOntoSurvivingPath) {
  // Parallel aggs: when the path in use dies, the repair step re-paths the
  // flow onto the surviving agg and goodput continues despite the element
  // never recovering.
  Graph g;
  const NodeId s0 = g.add_node(NodeRole::kServer);
  const NodeId s1 = g.add_node(NodeRole::kServer);
  const NodeId e0 = g.add_node(NodeRole::kEdge);
  const NodeId a0 = g.add_node(NodeRole::kAgg);
  const NodeId a1 = g.add_node(NodeRole::kAgg);
  const NodeId e1 = g.add_node(NodeRole::kEdge);
  g.add_link(s0, e0, 1e9);
  g.add_link(s1, e1, 1e9);
  g.add_link(e0, a0, 100e6);
  g.add_link(e0, a1, 100e6);
  g.add_link(a0, e1, 100e6);
  g.add_link(a1, e1, 100e6);
  PathCache cache{g, 1};
  const auto paths = cache.server_paths(s0, s1);
  ASSERT_EQ(paths[0].size(), 5u);  // s0 e0 agg e1 s1
  const NodeId agg_used = paths[0][2];

  PacketSim sim;
  sim.set_network(g);
  const auto id = sim.add_flow(0, 1, 0, 0.0, paths);
  FailureSchedule schedule;
  schedule.fail_at(1.0, FailureSet{{}, {agg_used}});
  const auto repath = [](std::uint32_t, const Graph& degraded) {
    PathCache fresh{degraded, 1};
    return fresh.server_paths(NodeId{0}, NodeId{1});
  };
  PacketScheduleOptions options;
  options.repair_lag_s = 0.2;
  run_with_schedule(sim, g, schedule, repath, /*horizon_s=*/3.0, options);
  // The refreshed path avoids the dead agg...
  ASSERT_EQ(sim.flow_paths(id).size(), 1u);
  EXPECT_NE(sim.flow_paths(id)[0][2], agg_used);
  // ...and the flow kept moving after the outage: >2.5 s of useful time at
  // ~100 Mb/s minus the 0.2 s repair lag.
  EXPECT_GT(sim.flow_bytes_acked(id) * 8.0, 0.6 * 100e6 * 2.8);
}

TEST(PacketSim, Deterministic) {
  Dumbbell net;
  std::uint64_t acked[2];
  for (int trial = 0; trial < 2; ++trial) {
    PacketSim sim;
    sim.set_network(net.g);
    sim.add_flow(0, 2, 0, 0.0, net.path(0, 2));
    sim.add_flow(1, 3, 0, 0.0, net.path(1, 3));
    sim.run_until(1.0);
    acked[trial] = sim.flow_bytes_acked(0) + sim.flow_bytes_acked(1);
  }
  EXPECT_EQ(acked[0], acked[1]);
}

TEST(PacketSim, ErrorsOnMisuse) {
  PacketSim sim;
  Dumbbell net;
  EXPECT_THROW((void)sim.add_flow(0, 2, 0, 0.0, net.path(0, 2)),
               std::logic_error);
  sim.set_network(net.g);
  EXPECT_THROW((void)sim.add_flow(0, 2, 0, 0.0, {}), std::invalid_argument);
}

TEST(PacketSim, SegmentStatsResetWithoutTouchingCumulativeCounters) {
  // Regression: per-segment stats must start from zero at begin_segment()
  // while the cumulative accessors (which older tests and the validation
  // bench assert against) keep counting across segments.
  Dumbbell net;
  PacketSim sim;
  sim.set_network(net.g);
  sim.add_flow(0, 2, 1e6, 0.0, net.path(0, 2));
  sim.run_until(1.0);
  const std::uint64_t events_before = sim.events_processed();
  ASSERT_GT(events_before, 0u);
  EXPECT_EQ(sim.segment_stats().events_processed, events_before);
  EXPECT_EQ(sim.segment_stats().flows_completed, 1u);

  sim.begin_segment();
  EXPECT_EQ(sim.segment_stats().events_processed, 0u);
  EXPECT_EQ(sim.segment_stats().flows_completed, 0u);
  EXPECT_EQ(sim.segment_stats().bytes_acked, 0u);
  EXPECT_EQ(sim.events_processed(), events_before);  // cumulative untouched

  sim.add_flow(1, 3, 1e5, 1.5, net.path(1, 3));
  sim.run_until(3.0);
  EXPECT_GT(sim.segment_stats().events_processed, 0u);
  EXPECT_EQ(sim.segment_stats().flows_completed, 1u);
  EXPECT_GT(sim.events_processed(),
            events_before + sim.segment_stats().events_processed - 1);
}

TEST(PacketSim, ScheduleDriverOpensFreshSegmentPerStep) {
  // run_with_schedule() must call begin_segment() at every schedule step:
  // after a run with a mid-stream failure, the live segment covers only the
  // post-recovery interval, not the whole run.
  Dumbbell net;
  PacketSim sim;
  sim.set_network(net.g);
  sim.add_flow(0, 2, 10e6, 0.0, net.path(0, 2));
  FailureSchedule schedule;
  schedule.fail_at(0.5, FailureSet{{LinkId{4}}, {}});
  schedule.recover_at(1.5, FailureSet{{LinkId{4}}, {}});
  const auto repath = [](std::uint32_t, const Graph& g) -> std::vector<Path> {
    PathCache cache{g, 1};
    return cache.server_paths(NodeId{0}, NodeId{2});
  };
  run_with_schedule(sim, net.g, schedule, repath, /*horizon_s=*/5.0);
  ASSERT_GT(sim.events_processed(), 0u);
  EXPECT_LT(sim.segment_stats().events_processed, sim.events_processed());
  EXPECT_LT(sim.segment_stats().bytes_acked, sim.total_bytes_acked());
  // The pre-failure segment finished no flow, so the completion landed in
  // the segment opened by a schedule step.
  EXPECT_EQ(sim.segment_stats().flows_completed, 1u);
}

TEST(PacketSim, TestbedFlatTreeGlobalModeRuns) {
  // Smoke: the full testbed network in global mode carries pod-stride
  // traffic at nontrivial rate.
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.clos.link_bps = 100e6;  // scale down for test speed
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  const FlatTree tree{p};
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  PacketSim sim;
  sim.set_network(g);
  PathCache cache{g, 4};
  for (std::uint32_t s = 0; s < 6; ++s) {
    sim.add_flow(s, s + 6, 0, 0.0,
                 cache.server_paths(NodeId{s}, NodeId{s + 6}));
  }
  sim.run_until(1.0);
  EXPECT_GT(sim.total_bytes_acked() * 8.0, 6 * 20e6);
  EXPECT_GT(sim.events_processed(), 1000u);
}

}  // namespace
}  // namespace flattree
