#include "topo/clos.h"

#include <gtest/gtest.h>

#include <string>

namespace flattree {
namespace {

class ClosBuildTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Table2, ClosBuildTest,
                         ::testing::Values("topo-1", "topo-2", "topo-3",
                                           "topo-4", "topo-5", "topo-6"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(ClosBuildTest, NodeCounts) {
  const ClosParams p = ClosParams::preset(GetParam());
  const Graph g = build_clos(p);
  EXPECT_EQ(g.count_role(NodeRole::kServer), p.total_servers());
  EXPECT_EQ(g.count_role(NodeRole::kEdge), p.total_edges());
  EXPECT_EQ(g.count_role(NodeRole::kAgg), p.total_aggs());
  EXPECT_EQ(g.count_role(NodeRole::kCore), p.cores);
}

TEST_P(ClosBuildTest, Degrees) {
  const ClosParams p = ClosParams::preset(GetParam());
  const Graph g = build_clos(p);
  for (NodeId n : g.nodes_with_role(NodeRole::kServer)) {
    EXPECT_EQ(g.degree(n), 1u);
  }
  for (NodeId n : g.nodes_with_role(NodeRole::kEdge)) {
    EXPECT_EQ(g.degree(n), p.edge_uplinks + p.servers_per_edge);
  }
  const std::uint32_t agg_down =
      p.edge_per_pod * p.edge_uplinks / p.agg_per_pod;
  for (NodeId n : g.nodes_with_role(NodeRole::kAgg)) {
    EXPECT_EQ(g.degree(n), agg_down + p.agg_uplinks);
  }
  for (NodeId n : g.nodes_with_role(NodeRole::kCore)) {
    EXPECT_EQ(g.degree(n), p.core_ports);
  }
}

TEST_P(ClosBuildTest, Connected) {
  const Graph g = build_clos(ClosParams::preset(GetParam()));
  EXPECT_TRUE(g.connected());
}

TEST_P(ClosBuildTest, LinksAreHierarchicalOnly) {
  // Clos has only server-edge, edge-agg, agg-core links.
  const Graph g = build_clos(ClosParams::preset(GetParam()));
  for (std::size_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{static_cast<std::uint32_t>(i)});
    const NodeRole ra = g.node(l.a).role;
    const NodeRole rb = g.node(l.b).role;
    const bool ok = (ra == NodeRole::kServer && rb == NodeRole::kEdge) ||
                    (ra == NodeRole::kEdge && rb == NodeRole::kServer) ||
                    (ra == NodeRole::kEdge && rb == NodeRole::kAgg) ||
                    (ra == NodeRole::kAgg && rb == NodeRole::kEdge) ||
                    (ra == NodeRole::kAgg && rb == NodeRole::kCore) ||
                    (ra == NodeRole::kCore && rb == NodeRole::kAgg);
    EXPECT_TRUE(ok) << g.label(l.a) << " -- " << g.label(l.b);
  }
}

TEST_P(ClosBuildTest, IntraPodEdgeAggOnly) {
  const Graph g = build_clos(ClosParams::preset(GetParam()));
  for (std::size_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{static_cast<std::uint32_t>(i)});
    const Node& na = g.node(l.a);
    const Node& nb = g.node(l.b);
    if ((na.role == NodeRole::kEdge && nb.role == NodeRole::kAgg) ||
        (na.role == NodeRole::kAgg && nb.role == NodeRole::kEdge)) {
      EXPECT_EQ(na.pod, nb.pod);
    }
  }
}

TEST_P(ClosBuildTest, NodeOrderingConvention) {
  // Servers occupy node ids [0, total_servers): the cross-module contract.
  const ClosParams p = ClosParams::preset(GetParam());
  const Graph g = build_clos(p);
  for (std::uint32_t s = 0; s < p.total_servers(); ++s) {
    EXPECT_EQ(g.node(NodeId{s}).role, NodeRole::kServer);
  }
}

TEST(ClosBuild, SameIndexAggsShareCoreGroups) {
  // Figure 4a: agg switches with the same in-pod index in different Pods
  // connect to the same group of h core switches.
  const ClosParams p = ClosParams::testbed();
  const Graph g = build_clos(p);
  const auto aggs = g.nodes_with_role(NodeRole::kAgg);
  const auto cores_of = [&](NodeId agg) {
    std::vector<std::uint32_t> cores;
    for (const Adjacency& adj : g.neighbors(agg)) {
      if (g.node(adj.peer).role == NodeRole::kCore) {
        cores.push_back(g.node(adj.peer).index_in_role);
      }
    }
    std::sort(cores.begin(), cores.end());
    return cores;
  };
  // aggs are pod-major: agg index a in pod q is aggs[q*agg_per_pod + a].
  for (std::uint32_t a = 0; a < p.agg_per_pod; ++a) {
    const auto group0 = cores_of(aggs[a]);
    for (std::uint32_t pod = 1; pod < p.pods; ++pod) {
      EXPECT_EQ(cores_of(aggs[pod * p.agg_per_pod + a]), group0);
    }
  }
}

TEST(ClosBuild, FatTreeIsNonBlocking) {
  const ClosParams p = ClosParams::fat_tree(4);
  const Graph g = build_clos(p);
  EXPECT_EQ(g.count_role(NodeRole::kServer), 16u);
  EXPECT_EQ(g.count_role(NodeRole::kCore), 4u);
  for (NodeId n : g.switches()) {
    EXPECT_EQ(g.degree(n), 4u) << g.label(n);  // every switch uses k ports
  }
}

TEST(ClosBuild, MultiLinkPairs) {
  // topo-6 interpretation: each edge has 2 links to each of its 8 aggs.
  const ClosParams p = ClosParams::topo6();
  const Graph g = build_clos(p);
  const NodeId edge0 = g.nodes_with_role(NodeRole::kEdge).front();
  std::size_t to_first_agg = 0;
  const auto aggs = g.nodes_with_role(NodeRole::kAgg);
  for (const Adjacency& adj : g.neighbors(edge0)) {
    if (adj.peer == aggs.front()) ++to_first_agg;
  }
  EXPECT_EQ(to_first_agg, 2u);
}

}  // namespace
}  // namespace flattree
