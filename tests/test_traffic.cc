#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "traffic/apps.h"
#include "traffic/patterns.h"
#include "traffic/traces.h"

namespace flattree {
namespace {

// ---------- synthetic patterns ----------------------------------------------

TEST(Permutation, IsDerangementAndCovers) {
  Rng rng{1};
  const Workload flows = permutation_traffic(100, rng);
  EXPECT_EQ(flows.size(), 100u);
  std::set<std::uint32_t> sources, destinations;
  for (const Flow& f : flows) {
    EXPECT_NE(f.src, f.dst);
    sources.insert(f.src);
    destinations.insert(f.dst);
  }
  EXPECT_EQ(sources.size(), 100u);
  EXPECT_EQ(destinations.size(), 100u);
}

TEST(Permutation, DeterministicBySeed) {
  Rng r1{5}, r2{5};
  const Workload a = permutation_traffic(64, r1);
  const Workload b = permutation_traffic(64, r2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
}

TEST(Permutation, RejectsTinyNetworks) {
  Rng rng{1};
  EXPECT_THROW((void)permutation_traffic(1, rng), std::invalid_argument);
}

TEST(PodStride, CounterpartInNextPod) {
  const Workload flows = pod_stride_traffic(24, 6);
  EXPECT_EQ(flows.size(), 24u);
  for (const Flow& f : flows) {
    EXPECT_EQ(f.dst, (f.src + 6) % 24);
    EXPECT_NE(f.src / 6, f.dst / 6);  // always crosses a pod boundary
  }
}

TEST(PodStride, RejectsBadDivision) {
  EXPECT_THROW((void)pod_stride_traffic(25, 6), std::invalid_argument);
  EXPECT_THROW((void)pod_stride_traffic(6, 6), std::invalid_argument);
}

TEST(HotSpot, OneBroadcasterPerCluster) {
  const Workload flows = hot_spot_traffic(300, 100);
  EXPECT_EQ(flows.size(), 3u * 99u);
  std::set<std::uint32_t> broadcasters;
  for (const Flow& f : flows) broadcasters.insert(f.src);
  EXPECT_EQ(broadcasters.size(), 3u);
  EXPECT_TRUE(broadcasters.contains(0u));
  EXPECT_TRUE(broadcasters.contains(100u));
  EXPECT_TRUE(broadcasters.contains(200u));
}

TEST(HotSpot, PartialTailClusterDropped) {
  const Workload flows = hot_spot_traffic(250, 100);
  EXPECT_EQ(flows.size(), 2u * 99u);
}

TEST(ManyToMany, AllToAllWithinClusters) {
  const Workload flows = many_to_many_traffic(40, 20);
  EXPECT_EQ(flows.size(), 2u * 20u * 19u);
  for (const Flow& f : flows) {
    EXPECT_EQ(f.src / 20, f.dst / 20);
    EXPECT_NE(f.src, f.dst);
  }
}

TEST(ClusteredAllToAll, MaxClustersLimit) {
  const Workload flows = clustered_all_to_all(1000, 8, 2);
  EXPECT_EQ(flows.size(), 2u * 8u * 7u);
}

TEST(ClusteredAllToAll, RejectsTooSmall) {
  EXPECT_THROW((void)clustered_all_to_all(4, 8), std::invalid_argument);
  EXPECT_THROW((void)clustered_all_to_all(100, 1), std::invalid_argument);
}

// ---------- traces -----------------------------------------------------------

class TracePresetTest : public ::testing::TestWithParam<TraceParams> {};

INSTANTIATE_TEST_SUITE_P(Facebook, TracePresetTest,
                         ::testing::Values(TraceParams::hadoop1(),
                                           TraceParams::hadoop2(),
                                           TraceParams::web(),
                                           TraceParams::cache()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(TracePresetTest, LocalityMatchesTarget) {
  TraceParams params = GetParam();
  params.duration_s = 5.0;
  params.flows_per_s = 4000;
  const ClosParams layout = ClosParams::topo1();
  const Workload flows = generate_trace(layout, params);
  const LocalityMix mix = measure_locality(layout, flows);
  EXPECT_NEAR(mix.intra_rack, params.intra_rack_frac, 0.02) << params.name;
  EXPECT_NEAR(mix.intra_pod, params.intra_pod_frac, 0.02) << params.name;
  EXPECT_NEAR(mix.inter_pod,
              1.0 - params.intra_rack_frac - params.intra_pod_frac, 0.03);
}

TEST_P(TracePresetTest, ArrivalsArePoissonish) {
  TraceParams params = GetParam();
  params.duration_s = 4.0;
  params.flows_per_s = 1000;
  const Workload flows = generate_trace(ClosParams::topo1(), params);
  EXPECT_NEAR(static_cast<double>(flows.size()),
              params.duration_s * params.flows_per_s,
              4 * std::sqrt(params.duration_s * params.flows_per_s));
  for (std::size_t i = 1; i < flows.size(); ++i) {
    EXPECT_GE(flows[i].start_s, flows[i - 1].start_s);
  }
}

TEST_P(TracePresetTest, SizesHeavyTailedWithRightMean) {
  TraceParams params = GetParam();
  params.duration_s = 20.0;
  params.flows_per_s = 2000;
  const Workload flows = generate_trace(ClosParams::topo1(), params);
  double total = 0;
  for (const Flow& f : flows) {
    EXPECT_GT(f.bytes, 0.0);
    total += f.bytes;
  }
  // Pareto mean converges slowly; accept a wide band.
  EXPECT_NEAR(total / flows.size() / params.mean_flow_bytes, 1.0, 0.5);
}

TEST(Trace, Deterministic) {
  const TraceParams p = TraceParams::web();
  const Workload a = generate_trace(ClosParams::topo1(), p);
  const Workload b = generate_trace(ClosParams::topo1(), p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_DOUBLE_EQ(a[i].bytes, b[i].bytes);
  }
}

TEST(Trace, RejectsBadFractions) {
  TraceParams p = TraceParams::web();
  p.intra_rack_frac = 0.8;
  p.intra_pod_frac = 0.8;
  EXPECT_THROW((void)generate_trace(ClosParams::topo1(), p),
               std::invalid_argument);
}

TEST(Trace, NoSelfFlows) {
  TraceParams p = TraceParams::hadoop2();
  p.duration_s = 2.0;
  for (const Flow& f : generate_trace(ClosParams::topo1(), p)) {
    EXPECT_NE(f.src, f.dst);
  }
}

// ---------- application models ----------------------------------------------

TEST(SparkBroadcast, EveryWorkerReceivesEachIteration) {
  BroadcastParams p;
  p.num_workers = 23;
  p.iterations = 2;
  p.chunks = 1;
  const Workload flows = spark_broadcast(p);
  EXPECT_EQ(flows.size(), 2u * 23u);
  for (std::uint32_t iter = 0; iter < 2; ++iter) {
    std::set<std::uint32_t> receivers;
    for (std::size_t i = iter * 23; i < (iter + 1) * 23; ++i) {
      receivers.insert(flows[i].dst);
    }
    EXPECT_EQ(receivers.size(), 23u);
  }
}

TEST(SparkBroadcast, SendersAlreadyHaveTheBlock) {
  // Torrent invariant: a sender is the master or a receiver of an earlier
  // flow in the same iteration.
  BroadcastParams p;
  p.num_workers = 16;
  p.iterations = 1;
  p.chunks = 1;
  const Workload flows = spark_broadcast(p);
  std::set<std::uint32_t> holders{p.master};
  for (const Flow& f : flows) {
    EXPECT_TRUE(holders.contains(f.src)) << "server " << f.src;
    holders.insert(f.dst);
  }
}

TEST(SparkBroadcast, DependenciesFormTree) {
  BroadcastParams p;
  p.num_workers = 8;
  p.iterations = 1;
  p.chunks = 1;
  const Workload flows = spark_broadcast(p);
  // First flow (from master) has no deps; all others depend on the flow
  // that delivered the block to their sender.
  EXPECT_TRUE(flows[0].depends_on.empty());
  for (std::size_t i = 1; i < flows.size(); ++i) {
    if (flows[i].src == p.master) continue;
    ASSERT_EQ(flows[i].depends_on.size(), 1u);
    const Flow& dep = flows[flows[i].depends_on[0]];
    EXPECT_EQ(dep.dst, flows[i].src);
  }
}

TEST(SparkBroadcast, IterationsAreChained) {
  BroadcastParams p;
  p.num_workers = 4;
  p.iterations = 2;
  p.chunks = 1;
  const Workload flows = spark_broadcast(p);
  // The second iteration's first flow depends on the first iteration.
  const Flow& first_of_second = flows[4];
  EXPECT_FALSE(first_of_second.depends_on.empty());
}

TEST(SparkBroadcast, ChunksMultiplyFlows) {
  BroadcastParams p;
  p.num_workers = 10;
  p.iterations = 2;
  p.chunks = 4;
  const Workload flows = spark_broadcast(p);
  EXPECT_EQ(flows.size(), 2u * 4u * 10u);
  // Chunk size is the block divided by the chunk count.
  for (const Flow& f : flows) {
    EXPECT_DOUBLE_EQ(f.bytes, p.block_bytes / 4);
  }
}

TEST(SparkBroadcast, PerChunkHolderInvariant) {
  // Within one iteration, each chunk's flows form their own valid torrent
  // tree: a chunk's sender already holds that chunk.
  BroadcastParams p;
  p.num_workers = 12;
  p.iterations = 1;
  p.chunks = 3;
  const Workload flows = spark_broadcast(p);
  ASSERT_EQ(flows.size(), 3u * 12u);
  for (std::uint32_t chunk = 0; chunk < 3; ++chunk) {
    std::set<std::uint32_t> holders{p.master};
    for (std::size_t i = chunk * 12; i < (chunk + 1) * 12; ++i) {
      EXPECT_TRUE(holders.contains(flows[i].src));
      holders.insert(flows[i].dst);
    }
  }
}

TEST(SparkBroadcast, ZeroChunksRejected) {
  BroadcastParams p;
  p.chunks = 0;
  EXPECT_THROW((void)spark_broadcast(p), std::invalid_argument);
}

TEST(CoflowJobs, GroupsAndShapes) {
  CoflowJobsParams p;
  p.num_servers = 64;
  p.jobs = 5;
  p.mappers_per_job = 4;
  p.reducers_per_job = 2;
  const Workload flows = coflow_jobs(p);
  EXPECT_EQ(flows.size(), 5u * 4u * 2u);
  for (const Flow& f : flows) {
    EXPECT_LT(f.group, 5u);
    EXPECT_NE(f.src, f.dst);  // mapper and reducer sets are disjoint
    EXPECT_GT(f.bytes, 0.0);
  }
  // Members of one job share an arrival time; jobs arrive in order.
  for (std::size_t i = 1; i < flows.size(); ++i) {
    if (flows[i].group == flows[i - 1].group) {
      EXPECT_DOUBLE_EQ(flows[i].start_s, flows[i - 1].start_s);
    } else {
      EXPECT_GT(flows[i].start_s, flows[i - 1].start_s);
    }
  }
}

TEST(CoflowJobs, Deterministic) {
  CoflowJobsParams p;
  p.num_servers = 64;
  p.jobs = 3;
  const Workload a = coflow_jobs(p);
  const Workload b = coflow_jobs(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
}

TEST(CoflowJobs, RejectsImpossibleShapes) {
  CoflowJobsParams p;
  p.num_servers = 4;
  p.mappers_per_job = 4;
  p.reducers_per_job = 2;
  EXPECT_THROW((void)coflow_jobs(p), std::invalid_argument);
  p.num_servers = 64;
  p.jobs = 0;
  EXPECT_THROW((void)coflow_jobs(p), std::invalid_argument);
}

TEST(HadoopShuffle, MapperReducerMesh) {
  ShuffleParams p;
  p.num_mappers = 23;
  p.num_reducers = 8;
  const Workload flows = hadoop_shuffle(p);
  // 23 mappers x 8 reducers minus the 8 self-pairs.
  EXPECT_EQ(flows.size(), 23u * 8u - 8u);
  for (const Flow& f : flows) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_GE(f.src, p.first_worker);
    EXPECT_LT(f.dst, p.first_worker + p.num_reducers);
  }
}

TEST(HadoopShuffle, RejectsBadShapes) {
  ShuffleParams p;
  p.num_mappers = 4;
  p.num_reducers = 8;
  EXPECT_THROW((void)hadoop_shuffle(p), std::invalid_argument);
  p.num_mappers = 0;
  EXPECT_THROW((void)hadoop_shuffle(p), std::invalid_argument);
}

}  // namespace
}  // namespace flattree
