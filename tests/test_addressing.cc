#include "core/addressing.h"

#include <gtest/gtest.h>

#include <set>

namespace flattree {
namespace {

FlatTree testbed_tree() {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  return FlatTree{p};
}

TEST(FlatTreeAddress, RoundTrip) {
  FlatTreeAddress a;
  a.switch_id = 1234;
  a.path_id = 5;
  a.topology = 2;
  a.server_id = 42;
  const FlatTreeAddress b = FlatTreeAddress::from_ipv4(a.to_ipv4());
  EXPECT_EQ(a, b);
}

TEST(FlatTreeAddress, AllFieldsRoundTripExhaustively) {
  for (std::uint16_t sw : {0, 1, 8191}) {
    for (std::uint8_t path : {0, 7}) {
      for (std::uint8_t topo : {0, 1, 2}) {
        for (std::uint8_t server : {0, 63}) {
          FlatTreeAddress a{sw, path, topo, server};
          EXPECT_EQ(FlatTreeAddress::from_ipv4(a.to_ipv4()), a);
        }
      }
    }
  }
}

TEST(FlatTreeAddress, PaperExampleFigure5c) {
  // Figure 5c row 1: switch 3, path 0, topology 0 (global), server 2
  // -> 10.0.24.2.
  FlatTreeAddress a{3, 0, 0, 2};
  EXPECT_EQ(a.str(), "10.0.24.2");
  // Next path id -> 10.0.25.2; path 3 -> 10.0.27.2.
  EXPECT_EQ((FlatTreeAddress{3, 1, 0, 2}.str()), "10.0.25.2");
  EXPECT_EQ((FlatTreeAddress{3, 3, 0, 2}.str()), "10.0.27.2");
  // Row 2: switch 8, path 0, topology 1 (local), server 1 -> 10.0.64.65.
  EXPECT_EQ((FlatTreeAddress{8, 0, 1, 1}.str()), "10.0.64.65");
  // Row 3: switch 5, path 0, topology 2 (clos), server 0 -> 10.0.40.128.
  EXPECT_EQ((FlatTreeAddress{5, 0, 2, 0}.str()), "10.0.40.128");
  EXPECT_EQ((FlatTreeAddress{5, 1, 2, 0}.str()), "10.0.41.128");
}

TEST(FlatTreeAddress, InTenSlashEight) {
  FlatTreeAddress a{100, 2, 1, 7};
  EXPECT_EQ(a.to_ipv4() >> 24, 0x0au);
}

TEST(FlatTreeAddress, OverflowThrows) {
  FlatTreeAddress a;
  a.switch_id = 1u << 13;
  EXPECT_THROW((void)a.to_ipv4(), std::invalid_argument);
  a = FlatTreeAddress{};
  a.path_id = 8;
  EXPECT_THROW((void)a.to_ipv4(), std::invalid_argument);
  a = FlatTreeAddress{};
  a.server_id = 64;
  EXPECT_THROW((void)a.to_ipv4(), std::invalid_argument);
  EXPECT_THROW((void)FlatTreeAddress::from_ipv4(0x0b000000),
               std::invalid_argument);
}

TEST(AddressesForK, SquareRootRule) {
  EXPECT_EQ(addresses_for_k(1), 1u);
  EXPECT_EQ(addresses_for_k(4), 2u);
  EXPECT_EQ(addresses_for_k(8), 3u);   // §4.1: 8 paths need 3 addresses
  EXPECT_EQ(addresses_for_k(16), 4u);
  EXPECT_EQ(addresses_for_k(64), 8u);
  EXPECT_THROW((void)addresses_for_k(65), std::invalid_argument);
  EXPECT_THROW((void)addresses_for_k(0), std::invalid_argument);
}

TEST(AddressPlan, PerServerCounts) {
  const FlatTree tree = testbed_tree();
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  const AddressPlan plan{g, TopoCode::kGlobal, 16};
  EXPECT_EQ(plan.addresses_per_server(), 4u);
  for (NodeId s : g.servers()) {
    EXPECT_EQ(plan.addresses(s).size(), 4u);
  }
}

TEST(AddressPlan, AddressesAreUnique) {
  const FlatTree tree = testbed_tree();
  const Graph g = tree.realize_uniform(PodMode::kGlobal);
  const AddressPlan plan{g, TopoCode::kGlobal, 4};
  std::set<std::uint32_t> seen;
  for (NodeId s : g.servers()) {
    for (const FlatTreeAddress& a : plan.addresses(s)) {
      EXPECT_TRUE(seen.insert(a.to_ipv4()).second) << a.str();
    }
  }
}

TEST(AddressPlan, ReverseLookup) {
  const FlatTree tree = testbed_tree();
  const Graph g = tree.realize_uniform(PodMode::kLocal);
  const AddressPlan plan{g, TopoCode::kLocal, 8};
  for (NodeId s : g.servers()) {
    for (const FlatTreeAddress& a : plan.addresses(s)) {
      const auto owner = plan.server_for(a);
      ASSERT_TRUE(owner.has_value());
      EXPECT_EQ(*owner, s);
    }
  }
  FlatTreeAddress unknown{8000, 0, 0, 63};
  EXPECT_FALSE(plan.server_for(unknown).has_value());
}

TEST(AddressPlan, SameSwitchServersSharePrefix) {
  // The /24 prefix aggregates by (switch, path id): all servers under one
  // ingress switch share it — the §4.2 state-reduction invariant.
  const FlatTree tree = testbed_tree();
  const Graph g = tree.realize_uniform(PodMode::kClos);
  const AddressPlan plan{g, TopoCode::kClos, 4};
  for (NodeId sw : g.switches()) {
    const auto servers = g.attached_servers(sw);
    if (servers.size() < 2) continue;
    const auto prefix0 = plan.addresses(servers[0])[0].ingress_prefix();
    for (NodeId s : servers) {
      EXPECT_EQ(plan.addresses(s)[0].ingress_prefix(), prefix0);
    }
  }
}

TEST(AddressPlan, TopologyFieldMatchesMode) {
  const FlatTree tree = testbed_tree();
  const Graph g = tree.realize_uniform(PodMode::kLocal);
  const AddressPlan plan{g, TopoCode::kLocal, 4};
  for (NodeId s : g.servers()) {
    for (const FlatTreeAddress& a : plan.addresses(s)) {
      EXPECT_EQ(a.topology, static_cast<std::uint8_t>(TopoCode::kLocal));
    }
  }
}

TEST(AddressBook, CombinesAllModes) {
  // Figure 5c: k = 16/8/4 -> 4 + 3 + 2 = 9 addresses per server.
  const FlatTree tree = testbed_tree();
  const AddressBook book{tree, 16, 8, 4};
  EXPECT_EQ(book.addresses_per_server(), 9u);
  EXPECT_EQ(book.plan(PodMode::kGlobal).addresses_per_server(), 4u);
  EXPECT_EQ(book.plan(PodMode::kLocal).addresses_per_server(), 3u);
  EXPECT_EQ(book.plan(PodMode::kClos).addresses_per_server(), 2u);
}

TEST(AddressBook, SwitchIdStableServerIdChanges) {
  // A relocated server keeps its identity but gets a new (switch, rank):
  // the same physical server must appear in every mode's plan.
  const FlatTree tree = testbed_tree();
  const AddressBook book{tree, 4, 4, 4};
  const Graph global = tree.realize_uniform(PodMode::kGlobal);
  for (NodeId s : global.servers()) {
    EXPECT_FALSE(book.plan(PodMode::kGlobal).addresses(s).empty());
    EXPECT_FALSE(book.plan(PodMode::kClos).addresses(s).empty());
  }
}

TEST(FlatTreeAddressV6, RoundTrip) {
  FlatTreeAddressV6 a;
  a.switch_id = 4321;
  a.path_id = 6;
  a.topology = 1;
  a.server_uid = 0xdeadbeefcafef00dULL;
  const auto [hi, lo] = a.to_ipv6();
  EXPECT_EQ(FlatTreeAddressV6::from_ipv6(hi, lo), a);
}

TEST(FlatTreeAddressV6, InUlaPrefix) {
  FlatTreeAddressV6 a;
  a.switch_id = 1;
  EXPECT_EQ(a.to_ipv6().first >> 48, 0xfd00u);
  EXPECT_TRUE(a.str().starts_with("fd00:"));
}

TEST(FlatTreeAddressV6, GloballyUniqueServerIds) {
  // Unlike IPv4's 6-bit reused server IDs, the v6 low half carries the full
  // unique server id — two servers under different switches never collide.
  FlatTreeAddressV6 a, b;
  a.switch_id = 1;
  a.server_uid = 70000;  // > 64: impossible in the IPv4 scheme
  b.switch_id = 2;
  b.server_uid = 70000;
  EXPECT_NE(a.to_ipv6(), b.to_ipv6());
  EXPECT_EQ(a.to_ipv6().second, 70000u);
}

TEST(FlatTreeAddressV6, PrefixAggregatesBySwitchPathTopology) {
  FlatTreeAddressV6 a, b, c;
  a.switch_id = b.switch_id = 9;
  a.path_id = b.path_id = 2;
  a.topology = b.topology = 1;
  a.server_uid = 1;
  b.server_uid = 999999;
  c = a;
  c.switch_id = 10;
  EXPECT_EQ(a.ingress_prefix(), b.ingress_prefix());
  EXPECT_NE(a.ingress_prefix(), c.ingress_prefix());
}

TEST(FlatTreeAddressV6, OverflowThrows) {
  FlatTreeAddressV6 a;
  a.switch_id = 1u << 13;
  EXPECT_THROW((void)a.to_ipv6(), std::invalid_argument);
  EXPECT_THROW((void)FlatTreeAddressV6::from_ipv6(0x2001000000000000ULL, 0),
               std::invalid_argument);
}

TEST(AddressPlanV6, NoServerCountLimit) {
  // The IPv4 plan caps at 64 servers per switch; v6 does not.
  Graph g;
  std::vector<NodeId> servers;
  const NodeId sw = [&] {
    for (int i = 0; i < 100; ++i) servers.push_back(g.add_node(NodeRole::kServer));
    return g.add_node(NodeRole::kEdge);
  }();
  for (NodeId s : servers) g.add_link(s, sw, 1e9);
  EXPECT_THROW((AddressPlan{g, TopoCode::kClos, 4}), std::invalid_argument);
  const AddressPlanV6 v6{g, TopoCode::kClos, 4};
  EXPECT_EQ(v6.addresses(servers[99]).size(), 2u);
}

TEST(AddressPlanV6, ServerUidStableAcrossModes) {
  const FlatTree tree = testbed_tree();
  const AddressPlanV6 global{tree.realize_uniform(PodMode::kGlobal),
                             TopoCode::kGlobal, 4};
  const AddressPlanV6 clos{tree.realize_uniform(PodMode::kClos),
                           TopoCode::kClos, 4};
  for (std::uint32_t s = 0; s < 24; ++s) {
    EXPECT_EQ(global.addresses(NodeId{s})[0].server_uid,
              clos.addresses(NodeId{s})[0].server_uid);
    EXPECT_EQ(global.addresses(NodeId{s})[0].server_uid, s);
  }
}

TEST(AddressPlanV6, SwitchFieldTracksRelocation) {
  const FlatTree tree = testbed_tree();
  const Graph global = tree.realize_uniform(PodMode::kGlobal);
  const Graph clos = tree.realize_uniform(PodMode::kClos);
  const AddressPlanV6 gplan{global, TopoCode::kGlobal, 4};
  const AddressPlanV6 cplan{clos, TopoCode::kClos, 4};
  bool any_moved = false;
  for (NodeId s : global.servers()) {
    if (global.attachment_switch(s) != clos.attachment_switch(s)) {
      EXPECT_NE(gplan.addresses(s)[0].switch_id,
                cplan.addresses(s)[0].switch_id);
      any_moved = true;
    }
  }
  EXPECT_TRUE(any_moved);
}

TEST(CodeFor, MatchesFigure5) {
  EXPECT_EQ(code_for(PodMode::kGlobal), TopoCode::kGlobal);
  EXPECT_EQ(code_for(PodMode::kLocal), TopoCode::kLocal);
  EXPECT_EQ(code_for(PodMode::kClos), TopoCode::kClos);
}

}  // namespace
}  // namespace flattree
