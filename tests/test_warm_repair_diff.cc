// Differential pin for ControllerOptions::warm_repair: on pure-removal
// failure streams the warm eviction policy (PathCache::rebind_warm, the
// provably minimal exact set under the adjacency delta) must produce a
// post-repair route state byte-identical to the legacy
// survivors-stay-valid scan — same RepairPlan accounting, same per-pair
// server paths, across every mode and across *sequences* of repairs where
// the second failure strikes an already-repaired cache. Converter-rewire
// repairs fall back to the legacy policy by construction, so the two
// controllers agree there too (used_converter_rewire included).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "control/controller.h"
#include "core/flat_tree.h"
#include "net/failures.h"
#include "net/graph.h"
#include "net/rng.h"

namespace flattree {
namespace {

Controller make_controller(bool warm, std::uint32_t k = 4) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = k;
  options.k_local = k;
  options.k_clos = k;
  options.count_rules = false;
  options.warm_repair = warm;
  return Controller{FlatTree{p}, options};
}

std::vector<LinkId> fabric_links(const Graph& g) {
  std::vector<LinkId> out;
  for (std::uint32_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{i});
    if (is_switch(g.node(l.a).role) && is_switch(g.node(l.b).role)) {
      out.push_back(LinkId{i});
    }
  }
  return out;
}

void expect_plans_equal(const RepairPlan& w, const RepairPlan& c) {
  EXPECT_EQ(w.converters_changed, c.converters_changed);
  EXPECT_EQ(w.rules_deleted, c.rules_deleted);
  EXPECT_EQ(w.rules_added, c.rules_added);
  EXPECT_EQ(w.ocs_s, c.ocs_s);
  EXPECT_EQ(w.delete_s, c.delete_s);
  EXPECT_EQ(w.add_s, c.add_s);
  EXPECT_EQ(w.pairs_invalidated, c.pairs_invalidated);
  EXPECT_EQ(w.pairs_retained, c.pairs_retained);
  EXPECT_EQ(w.used_converter_rewire, c.used_converter_rewire);
  EXPECT_EQ(w.configs, c.configs);
}

// Byte-identical route state: every server pair serves the exact same
// path list under both eviction policies.
void expect_routes_equal(const CompiledMode& w, const CompiledMode& c) {
  const std::vector<NodeId> servers = w.graph().servers();
  for (std::size_t a = 0; a < servers.size(); ++a) {
    for (std::size_t b = a + 1; b < servers.size(); ++b) {
      const std::vector<Path> pw = w.paths().server_paths(servers[a],
                                                          servers[b]);
      const std::vector<Path> pc = c.paths().server_paths(servers[a],
                                                          servers[b]);
      ASSERT_EQ(pw, pc) << "pair " << servers[a].value() << "->"
                        << servers[b].value();
    }
  }
}

TEST(WarmRepairDiff, PureRemovalStreamsMatchLegacyExactly) {
  const Controller warm_ctl = make_controller(true);
  const Controller cold_ctl = make_controller(false);
  const PodMode modes[] = {PodMode::kClos, PodMode::kLocal, PodMode::kGlobal};

  Rng rng{0xD1FF};
  for (std::uint32_t round = 0; round < 9; ++round) {
    const PodMode pm = modes[round % 3];
    CompiledMode warm_mode = warm_ctl.compile_uniform(pm);
    CompiledMode cold_mode = cold_ctl.compile_uniform(pm);

    RepairOptions ropts;
    ropts.allow_converter_rewire = false;  // pure removals only

    // A stream of two failure sets: the second strikes the repaired cache,
    // so warm eviction must stay exact on an already-incremental state.
    // Pure removal = fabric links only: a dead switch can strand a
    // converter-attached server, which needs the rewire action to rescue.
    for (std::uint32_t burst = 0; burst < 2; ++burst) {
      // Link ids are renumbered by the repaired realization, so re-derive
      // the candidate set from the live graph each burst.
      const std::vector<LinkId> links = fabric_links(warm_mode.graph());
      FailureSet failures;
      const std::size_t count = 1 + rng.next_below(3);
      for (std::size_t j = 0; j < count; ++j) {
        failures.links.push_back(links[rng.next_below(links.size())]);
      }
      const RepairPlan wp = warm_ctl.plan_repair(warm_mode, failures, ropts);
      const RepairPlan cp = cold_ctl.plan_repair(cold_mode, failures, ropts);
      EXPECT_FALSE(wp.used_converter_rewire);
      expect_plans_equal(wp, cp);
      expect_routes_equal(warm_mode, cold_mode);
    }
  }
}

TEST(WarmRepairDiff, ConverterRewireFallsBackToLegacy) {
  const Controller warm_ctl = make_controller(true);
  const Controller cold_ctl = make_controller(false);

  // Kill a core switch under kGlobal with rewire allowed: stranded servers
  // are rescued by flipping their converter pair, which adds adjacencies —
  // warm eviction is unsound there, so plan_repair must take the legacy
  // path on both controllers and still agree bit for bit.
  CompiledMode warm_mode = warm_ctl.compile_uniform(PodMode::kGlobal);
  CompiledMode cold_mode = cold_ctl.compile_uniform(PodMode::kGlobal);
  const std::vector<NodeId> cores =
      warm_mode.graph().nodes_with_role(NodeRole::kCore);
  ASSERT_FALSE(cores.empty());
  FailureSet failures;
  failures.switches.push_back(cores.front());

  const RepairPlan wp = warm_ctl.plan_repair(warm_mode, failures, {});
  const RepairPlan cp = cold_ctl.plan_repair(cold_mode, failures, {});
  expect_plans_equal(wp, cp);
  expect_routes_equal(warm_mode, cold_mode);
}

TEST(WarmRepairDiff, DefaultStaysLegacy) {
  // warm_repair defaults off: existing goldens depend on it.
  EXPECT_FALSE(ControllerOptions{}.warm_repair);
}

}  // namespace
}  // namespace flattree
