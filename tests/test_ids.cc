#include "net/ids.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace flattree {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(Ids, ExplicitValueIsValid) {
  NodeId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
  EXPECT_EQ(id.index(), 42u);
}

TEST(Ids, ZeroIsValid) {
  EXPECT_TRUE(NodeId{0}.valid());
}

TEST(Ids, Ordering) {
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_GT(NodeId{3}, NodeId{2});
  EXPECT_LE(NodeId{2}, NodeId{2});
  EXPECT_GE(NodeId{2}, NodeId{2});
  EXPECT_NE(NodeId{1}, NodeId{2});
  EXPECT_EQ(NodeId{7}, NodeId{7});
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, LinkId>);
  static_assert(!std::is_same_v<PodId, FlowId>);
}

TEST(Ids, Hashable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId{1});
  set.insert(NodeId{2});
  set.insert(NodeId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(NodeId{2}));
  EXPECT_FALSE(set.contains(NodeId{3}));
}

}  // namespace
}  // namespace flattree
