#include "net/capacity.h"

#include "routing/path.h"

#include <gtest/gtest.h>

namespace flattree {
namespace {

TEST(LogicalTopology, MergesParallelLinks) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kAgg);
  g.add_link(a, b, 1e9);
  g.add_link(a, b, 1e9);
  g.add_link(a, b, 2e9);
  const LogicalTopology topo{g};
  EXPECT_EQ(topo.edge_count(), 1u);
  EXPECT_EQ(topo.directed_count(), 2u);
  const auto e = topo.edge_between(a, b);
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(topo.capacity(2 * *e), 4e9);
  EXPECT_DOUBLE_EQ(topo.capacity(2 * *e + 1), 4e9);
}

TEST(LogicalTopology, DirectedIndexDistinguishesDirections) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kAgg);
  g.add_link(a, b, 1e9);
  const LogicalTopology topo{g};
  EXPECT_NE(topo.directed_index(a, b), topo.directed_index(b, a));
  EXPECT_EQ(topo.directed_index(a, b) / 2, topo.directed_index(b, a) / 2);
}

TEST(LogicalTopology, NonAdjacentThrows) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kAgg);
  const NodeId c = g.add_node(NodeRole::kCore);
  g.add_link(a, b, 1e9);
  const LogicalTopology topo{g};
  EXPECT_FALSE(topo.edge_between(a, c).has_value());
  EXPECT_THROW((void)topo.directed_index(a, c), std::logic_error);
}

TEST(LogicalTopology, PathEdges) {
  Graph g;
  const NodeId s = g.add_node(NodeRole::kServer);
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kAgg);
  const NodeId t = g.add_node(NodeRole::kServer);
  g.add_link(s, a, 1e9);
  g.add_link(a, b, 1e9);
  g.add_link(b, t, 1e9);
  const LogicalTopology topo{g};
  const Path path{s, a, b, t};
  const auto edges = topo.path_edges(path);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], topo.directed_index(s, a));
  EXPECT_EQ(edges[1], topo.directed_index(a, b));
  EXPECT_EQ(edges[2], topo.directed_index(b, t));
}

TEST(LogicalTopology, TrivialPathHasNoEdges) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const LogicalTopology topo{g};
  const Path path{a};
  EXPECT_TRUE(topo.path_edges(path).empty());
  EXPECT_TRUE(topo.path_edges(Path{}).empty());
}

TEST(LogicalTopology, OppositeDirectionsIndependentCapacity) {
  // Directions share the undirected capacity value but are separate
  // constraint rows: both directions of a 1G link report 1G.
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kAgg);
  g.add_link(a, b, 1e9);
  const LogicalTopology topo{g};
  EXPECT_DOUBLE_EQ(topo.capacity(topo.directed_index(a, b)), 1e9);
  EXPECT_DOUBLE_EQ(topo.capacity(topo.directed_index(b, a)), 1e9);
}

}  // namespace
}  // namespace flattree
