#include "control/controller.h"

#include <gtest/gtest.h>

namespace flattree {
namespace {

Controller testbed_controller(std::uint32_t k = 4) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = k;
  options.k_local = k;
  options.k_clos = k;
  return Controller{FlatTree{p}, options};
}

TEST(Controller, CompileProducesRealizedGraph) {
  const Controller ctl = testbed_controller();
  const CompiledMode mode = ctl.compile_uniform(PodMode::kGlobal);
  EXPECT_EQ(mode.graph().count_role(NodeRole::kServer), 24u);
  EXPECT_TRUE(mode.graph().connected());
  EXPECT_EQ(mode.k(), 4u);
  EXPECT_EQ(mode.configs().size(), ctl.tree().converters().size());
}

TEST(Controller, RuleCountOrderingMatchesPaper) {
  // §5.3: per-switch rule maxima order global > local > clos (242/180/76).
  const Controller ctl = testbed_controller();
  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  const CompiledMode local = ctl.compile_uniform(PodMode::kLocal);
  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
  ASSERT_TRUE(global.has_rule_counts());
  EXPECT_GT(global.max_rules_per_switch(), local.max_rules_per_switch());
  EXPECT_GT(local.max_rules_per_switch(), clos.max_rules_per_switch());
  // Same order of magnitude as the testbed numbers.
  EXPECT_GT(global.max_rules_per_switch(), 100u);
  EXPECT_LT(global.max_rules_per_switch(), 1000u);
  EXPECT_LT(clos.max_rules_per_switch(), 200u);
}

TEST(Controller, ConversionCountsChangedConverters) {
  const Controller ctl = testbed_controller();
  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  const ConversionReport report = ctl.plan_conversion(clos, global);
  // Every converter changes configuration between Clos and global mode.
  EXPECT_EQ(report.converters_changed, ctl.tree().converters().size());
  EXPECT_GT(report.rules_deleted, 0u);
  EXPECT_GT(report.rules_added, 0u);
}

TEST(Controller, NullConversionIsFree) {
  const Controller ctl = testbed_controller();
  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
  const ConversionReport report = ctl.plan_conversion(clos, clos);
  EXPECT_EQ(report.converters_changed, 0u);
  EXPECT_DOUBLE_EQ(report.ocs_s, 0.0);
}

TEST(Controller, DelayBreakdownShape) {
  // Table 3 structure: one OCS term (160 ms) + delete + add, total ~1 s.
  const Controller ctl = testbed_controller();
  const CompiledMode local = ctl.compile_uniform(PodMode::kLocal);
  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  const ConversionReport report = ctl.plan_conversion(local, global);
  EXPECT_DOUBLE_EQ(report.ocs_s, 0.160);
  EXPECT_GT(report.delete_s, 0.05);
  EXPECT_GT(report.add_s, 0.05);
  EXPECT_GT(report.total_s(), 0.3);
  EXPECT_LT(report.total_s(), 3.0);
}

TEST(Controller, ConversionDelayProportionalToRules) {
  // Converting to Clos adds fewer rules than converting to global.
  const Controller ctl = testbed_controller();
  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode local = ctl.compile_uniform(PodMode::kLocal);
  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  const ConversionReport to_clos = ctl.plan_conversion(global, clos);
  const ConversionReport to_global = ctl.plan_conversion(local, global);
  EXPECT_LT(to_clos.add_s, to_global.add_s);
  EXPECT_GT(to_clos.delete_s, to_global.delete_s * 0.9);
}

TEST(Controller, DistributedControllersSpeedUpRuleUpdates) {
  // §4.3: sharding the rule distribution across controllers divides the
  // update time but not the OCS reconfiguration pass.
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions sequential;
  sequential.k_global = sequential.k_local = sequential.k_clos = 4;
  ControllerOptions sharded = sequential;
  sharded.delay.controllers = 4;
  const Controller ctl1{FlatTree{p}, sequential};
  const Controller ctl4{FlatTree{p}, sharded};
  const CompiledMode clos = ctl1.compile_uniform(PodMode::kClos);
  const CompiledMode global = ctl1.compile_uniform(PodMode::kGlobal);
  const ConversionReport slow = ctl1.plan_conversion(clos, global);
  const ConversionReport fast = ctl4.plan_conversion(clos, global);
  EXPECT_NEAR(fast.delete_s, slow.delete_s / 4, 1e-9);
  EXPECT_NEAR(fast.add_s, slow.add_s / 4, 1e-9);
  EXPECT_DOUBLE_EQ(fast.ocs_s, slow.ocs_s);
  EXPECT_LT(fast.total_s(), slow.total_s());
}

TEST(Controller, HybridCompiles) {
  const Controller ctl = testbed_controller();
  ModeAssignment hybrid = ModeAssignment::uniform(4, PodMode::kClos);
  hybrid.pod_modes[0] = PodMode::kGlobal;
  hybrid.pod_modes[1] = PodMode::kGlobal;
  hybrid.pod_modes[2] = PodMode::kLocal;
  const CompiledMode mode = ctl.compile(hybrid, 4);
  EXPECT_TRUE(mode.graph().connected());
  // Zone structure: pod 3 (clos) keeps all servers on edges.
  const Graph& g = mode.graph();
  for (NodeId s : g.servers()) {
    if (g.node(s).pod.value() == 3) {
      EXPECT_EQ(g.node(g.attachment_switch(s)).role, NodeRole::kEdge);
    }
  }
}

TEST(Controller, KForModeHonorsOptions) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = 16;
  options.k_local = 8;
  options.k_clos = 4;
  const Controller ctl{FlatTree{p}, options};
  EXPECT_EQ(ctl.k_for(PodMode::kGlobal), 16u);
  EXPECT_EQ(ctl.k_for(PodMode::kLocal), 8u);
  EXPECT_EQ(ctl.k_for(PodMode::kClos), 4u);
}

TEST(Controller, DisableRuleCounting) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.count_rules = false;
  const Controller ctl{FlatTree{p}, options};
  const CompiledMode mode = ctl.compile_uniform(PodMode::kClos);
  EXPECT_FALSE(mode.has_rule_counts());
}

}  // namespace
}  // namespace flattree
