#include "control/controller.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "net/failures.h"

namespace flattree {
namespace {

Controller testbed_controller(std::uint32_t k = 4) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = k;
  options.k_local = k;
  options.k_clos = k;
  return Controller{FlatTree{p}, options};
}

TEST(Controller, CompileProducesRealizedGraph) {
  const Controller ctl = testbed_controller();
  const CompiledMode mode = ctl.compile_uniform(PodMode::kGlobal);
  EXPECT_EQ(mode.graph().count_role(NodeRole::kServer), 24u);
  EXPECT_TRUE(mode.graph().connected());
  EXPECT_EQ(mode.k(), 4u);
  EXPECT_EQ(mode.configs().size(), ctl.tree().converters().size());
}

TEST(Controller, RuleCountOrderingMatchesPaper) {
  // §5.3: per-switch rule maxima order global > local > clos (242/180/76).
  const Controller ctl = testbed_controller();
  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  const CompiledMode local = ctl.compile_uniform(PodMode::kLocal);
  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
  ASSERT_TRUE(global.has_rule_counts());
  EXPECT_GT(global.max_rules_per_switch(), local.max_rules_per_switch());
  EXPECT_GT(local.max_rules_per_switch(), clos.max_rules_per_switch());
  // Same order of magnitude as the testbed numbers.
  EXPECT_GT(global.max_rules_per_switch(), 100u);
  EXPECT_LT(global.max_rules_per_switch(), 1000u);
  EXPECT_LT(clos.max_rules_per_switch(), 200u);
}

TEST(Controller, ConversionCountsChangedConverters) {
  const Controller ctl = testbed_controller();
  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  const ConversionReport report = ctl.plan_conversion(clos, global);
  // Every converter changes configuration between Clos and global mode.
  EXPECT_EQ(report.converters_changed, ctl.tree().converters().size());
  EXPECT_GT(report.rules_deleted, 0u);
  EXPECT_GT(report.rules_added, 0u);
}

TEST(Controller, NullConversionIsFree) {
  const Controller ctl = testbed_controller();
  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
  const ConversionReport report = ctl.plan_conversion(clos, clos);
  EXPECT_EQ(report.converters_changed, 0u);
  EXPECT_DOUBLE_EQ(report.ocs_s, 0.0);
}

TEST(Controller, DelayBreakdownShape) {
  // Table 3 structure: one OCS term (160 ms) + delete + add, total ~1 s.
  const Controller ctl = testbed_controller();
  const CompiledMode local = ctl.compile_uniform(PodMode::kLocal);
  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  const ConversionReport report = ctl.plan_conversion(local, global);
  EXPECT_DOUBLE_EQ(report.ocs_s, 0.160);
  EXPECT_GT(report.delete_s, 0.05);
  EXPECT_GT(report.add_s, 0.05);
  EXPECT_GT(report.total_s(), 0.3);
  EXPECT_LT(report.total_s(), 3.0);
}

TEST(Controller, ConversionDelayProportionalToRules) {
  // Converting to Clos adds fewer rules than converting to global.
  const Controller ctl = testbed_controller();
  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode local = ctl.compile_uniform(PodMode::kLocal);
  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  const ConversionReport to_clos = ctl.plan_conversion(global, clos);
  const ConversionReport to_global = ctl.plan_conversion(local, global);
  EXPECT_LT(to_clos.add_s, to_global.add_s);
  EXPECT_GT(to_clos.delete_s, to_global.delete_s * 0.9);
}

TEST(Controller, DistributedControllersSpeedUpRuleUpdates) {
  // §4.3: sharding the rule distribution across controllers divides the
  // update time but not the OCS reconfiguration pass.
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions sequential;
  sequential.k_global = sequential.k_local = sequential.k_clos = 4;
  ControllerOptions sharded = sequential;
  sharded.delay.controllers = 4;
  const Controller ctl1{FlatTree{p}, sequential};
  const Controller ctl4{FlatTree{p}, sharded};
  const CompiledMode clos = ctl1.compile_uniform(PodMode::kClos);
  const CompiledMode global = ctl1.compile_uniform(PodMode::kGlobal);
  const ConversionReport slow = ctl1.plan_conversion(clos, global);
  const ConversionReport fast = ctl4.plan_conversion(clos, global);
  EXPECT_NEAR(fast.delete_s, slow.delete_s / 4, 1e-9);
  EXPECT_NEAR(fast.add_s, slow.add_s / 4, 1e-9);
  EXPECT_DOUBLE_EQ(fast.ocs_s, slow.ocs_s);
  EXPECT_LT(fast.total_s(), slow.total_s());
}

TEST(Controller, HybridCompiles) {
  const Controller ctl = testbed_controller();
  ModeAssignment hybrid = ModeAssignment::uniform(4, PodMode::kClos);
  hybrid.pod_modes[0] = PodMode::kGlobal;
  hybrid.pod_modes[1] = PodMode::kGlobal;
  hybrid.pod_modes[2] = PodMode::kLocal;
  const CompiledMode mode = ctl.compile(hybrid, 4);
  EXPECT_TRUE(mode.graph().connected());
  // Zone structure: pod 3 (clos) keeps all servers on edges.
  const Graph& g = mode.graph();
  for (NodeId s : g.servers()) {
    if (g.node(s).pod.value() == 3) {
      EXPECT_EQ(g.node(g.attachment_switch(s)).role, NodeRole::kEdge);
    }
  }
}

TEST(Controller, KForModeHonorsOptions) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = 16;
  options.k_local = 8;
  options.k_clos = 4;
  const Controller ctl{FlatTree{p}, options};
  EXPECT_EQ(ctl.k_for(PodMode::kGlobal), 16u);
  EXPECT_EQ(ctl.k_for(PodMode::kLocal), 8u);
  EXPECT_EQ(ctl.k_for(PodMode::kClos), 4u);
}

TEST(Controller, DisableRuleCounting) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.count_rules = false;
  const Controller ctl{FlatTree{p}, options};
  const CompiledMode mode = ctl.compile_uniform(PodMode::kClos);
  EXPECT_FALSE(mode.has_rule_counts());
}

// Warm every server pair so the repair below sees the full blast radius.
void warm_all_pairs(CompiledMode& mode) {
  const auto servers = mode.graph().servers();
  for (std::size_t i = 0; i < servers.size(); ++i) {
    for (std::size_t j = i + 1; j < servers.size(); ++j) {
      (void)mode.paths().server_paths(servers[i], servers[j]);
    }
  }
}

TEST(Repair, SingleLinkRepairUpdatesFewerRulesThanRecompile) {
  const Controller ctl = testbed_controller();
  CompiledMode live = ctl.compile_uniform(PodMode::kGlobal);
  ASSERT_TRUE(live.has_rule_counts());
  const std::uint64_t full_rules = live.total_rules();
  warm_all_pairs(live);
  const std::size_t warm = live.paths().cached_pairs();

  // Fail one fabric link that some cached path actually uses: the first
  // switch-switch hop of a multi-hop cached path (paths from server_paths
  // are server - switch ... switch - server, so hop [1]-[2] is fabric).
  const Graph& g = live.graph();
  LinkId victim{};
  bool found = false;
  const auto servers = g.servers();
  for (std::size_t i = 1; i < servers.size() && !found; ++i) {
    for (const Path& path : live.paths().server_paths(servers[0], servers[i])) {
      if (path.size() < 4) continue;
      for (std::uint32_t l = 0; l < g.link_count(); ++l) {
        const Link& link = g.link(LinkId{l});
        if ((link.a == path[1] && link.b == path[2]) ||
            (link.b == path[1] && link.a == path[2])) {
          victim = LinkId{l};
          found = true;
          break;
        }
      }
      if (found) break;
    }
  }
  ASSERT_TRUE(found);
  const std::size_t links_before = g.link_count();

  // plan_repair swaps the mode's graph; the old realization (and the `g`
  // reference) is dead beyond this point.
  const FailureSet failure{{victim}, {}};
  const RepairPlan plan = ctl.plan_repair(live, failure);

  // The incremental repair touched only the broken pairs...
  EXPECT_GT(plan.pairs_invalidated, 0u);
  EXPECT_GT(plan.pairs_retained, 0u);
  EXPECT_EQ(plan.pairs_invalidated + plan.pairs_retained, warm);
  EXPECT_GT(plan.rules_deleted, 0u);
  EXPECT_GT(plan.rules_added, 0u);
  // ...so it rewrites strictly fewer rules than recompiling the mode, which
  // deletes and reinstalls every rule in the network.
  EXPECT_LT(plan.rules_deleted + plan.rules_added, 2 * full_rules);
  EXPECT_LT(plan.rules_deleted, full_rules);
  // No circuits moved for a plain link failure.
  EXPECT_FALSE(plan.used_converter_rewire);
  EXPECT_EQ(plan.converters_changed, 0u);
  EXPECT_DOUBLE_EQ(plan.ocs_s, 0.0);
  EXPECT_GT(plan.total_s(), 0.0);

  // The mode now operates on the repaired topology: the link is gone and
  // re-solved paths route around it.
  EXPECT_EQ(&live.graph(), plan.graph.get());
  EXPECT_EQ(live.graph().link_count(), links_before - 1);
  for (std::size_t i = 1; i < servers.size(); ++i) {
    for (const Path& path : live.paths().server_paths(servers[0], servers[i])) {
      EXPECT_TRUE(is_valid_path(live.graph(), path));
    }
  }
}

TEST(Repair, ConverterRewireRescuesServersOnDeadCores) {
  const Controller ctl = testbed_controller();
  CompiledMode live = ctl.compile_uniform(PodMode::kGlobal);
  const Graph& g = live.graph();
  const auto cores = g.nodes_with_role(NodeRole::kCore);
  const FailureSet column =
      core_column_failure(g, 0, ctl.tree().clos().core_connectors_per_edge());
  ASSERT_FALSE(column.switches.empty());

  // Find a server broken out onto one of the dead cores.
  const auto converters = ctl.tree().converters();
  NodeId stranded = NodeId::invalid();
  for (std::size_t i = 0; i < converters.size(); ++i) {
    if (live.configs()[i] != ConverterConfig::kSide &&
        live.configs()[i] != ConverterConfig::kCross) {
      continue;
    }
    const NodeId core = cores[converters[i].core];
    if (std::find(column.switches.begin(), column.switches.end(), core) ==
        column.switches.end()) {
      continue;
    }
    stranded = g.servers()[converters[i].server];
    break;
  }
  ASSERT_TRUE(stranded.valid());
  EXPECT_EQ(g.node(g.attachment_switch(stranded)).role, NodeRole::kCore);
  const NodeId other = g.servers().front() == stranded ? g.servers()[1]
                                                       : g.servers().front();

  // Without the rewire the server stays cabled to the dead core.
  {
    CompiledMode frozen = ctl.compile_uniform(PodMode::kGlobal);
    RepairOptions no_rewire;
    no_rewire.allow_converter_rewire = false;
    const RepairPlan plan = ctl.plan_repair(frozen, column, no_rewire);
    EXPECT_FALSE(plan.used_converter_rewire);
    EXPECT_EQ(plan.converters_changed, 0u);
    EXPECT_DOUBLE_EQ(plan.ocs_s, 0.0);
    const Graph& repaired = *plan.graph;
    EXPECT_EQ(repaired.node(repaired.attachment_switch(stranded)).role,
              NodeRole::kCore);
    EXPECT_FALSE(servers_connected(repaired));
  }

  // With the rewire the converter pair flips to local, re-homing the
  // stranded servers onto their aggregation switches in one OCS pass.
  // (plan_repair swaps live's graph: `g` is dead beyond this point.)
  const RepairPlan plan = ctl.plan_repair(live, column);
  EXPECT_TRUE(plan.used_converter_rewire);
  EXPECT_GE(plan.converters_changed, 2u);
  EXPECT_EQ(plan.converters_changed % 2, 0u);  // side bundles flip pairwise
  EXPECT_DOUBLE_EQ(plan.ocs_s, 0.160);
  const Graph& repaired = live.graph();
  EXPECT_EQ(repaired.node(repaired.attachment_switch(stranded)).role,
            NodeRole::kAgg);
  EXPECT_TRUE(servers_connected(repaired));
  // Routes to the rescued server exist and are valid on the repaired graph.
  const auto paths = live.paths().server_paths(other, stranded);
  ASSERT_FALSE(paths.empty());
  for (const Path& path : paths) {
    EXPECT_TRUE(is_valid_path(repaired, path));
  }
}

TEST(Repair, RepairCostScalesWithBlastRadius) {
  // A one-link failure must price cheaper than a whole dead core column on
  // the same warm cache — recovery latency tracks the blast radius.
  const Controller ctl = testbed_controller();

  CompiledMode small = ctl.compile_uniform(PodMode::kClos);
  warm_all_pairs(small);
  // One agg-core link.
  const Graph& g = small.graph();
  LinkId agg_core{};
  bool found = false;
  for (std::uint32_t l = 0; l < g.link_count() && !found; ++l) {
    const Link& link = g.link(LinkId{l});
    const auto ra = g.node(link.a).role;
    const auto rb = g.node(link.b).role;
    if ((ra == NodeRole::kAgg && rb == NodeRole::kCore) ||
        (ra == NodeRole::kCore && rb == NodeRole::kAgg)) {
      agg_core = LinkId{l};
      found = true;
    }
  }
  ASSERT_TRUE(found);
  const RepairPlan link_plan =
      ctl.plan_repair(small, FailureSet{{agg_core}, {}});

  CompiledMode big = ctl.compile_uniform(PodMode::kClos);
  warm_all_pairs(big);
  const FailureSet column = core_column_failure(
      big.graph(), 0, ctl.tree().clos().core_connectors_per_edge());
  const RepairPlan column_plan = ctl.plan_repair(big, column);

  EXPECT_LT(link_plan.pairs_invalidated, column_plan.pairs_invalidated);
  EXPECT_LE(link_plan.rules_deleted, column_plan.rules_deleted);
  EXPECT_LT(link_plan.total_s(), column_plan.total_s());
}

// -- ConversionDelayModel validation ------------------------------------------
// Regression: a negative (or NaN) per-operation timing silently priced
// negative conversion totals before validate() was called at the pricing
// sites. Both plan_conversion and plan_repair must reject bad models.

Controller controller_with_delay(ConversionDelayModel delay) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.delay = delay;
  return Controller{FlatTree{p}, options};
}

TEST(ConversionDelayModel, ValidateRejectsBadFields) {
  ConversionDelayModel good;
  EXPECT_NO_THROW(good.validate());

  ConversionDelayModel d;
  d.ocs_reconfigure_s = -0.1;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = ConversionDelayModel{};
  d.rule_delete_s = -1e-9;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = ConversionDelayModel{};
  d.rule_add_s = -0.5;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = ConversionDelayModel{};
  d.rule_add_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(ConversionDelayModel, PlanConversionRejectsNegativeTimings) {
  ConversionDelayModel bad;
  bad.rule_add_s = -0.001;
  const Controller ctl = controller_with_delay(bad);
  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  EXPECT_THROW((void)ctl.plan_conversion(clos, global),
               std::invalid_argument);
}

TEST(ConversionDelayModel, PlanRepairRejectsNegativeTimings) {
  ConversionDelayModel bad;
  bad.ocs_reconfigure_s = -1.0;
  const Controller ctl = controller_with_delay(bad);
  CompiledMode live = ctl.compile_uniform(PodMode::kClos);
  // Any fabric link will do; validation fires before the plan is built.
  const Graph& g = live.graph();
  LinkId victim{};
  for (std::uint32_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{i});
    if (is_switch(g.node(l.a).role) && is_switch(g.node(l.b).role)) {
      victim = LinkId{i};
      break;
    }
  }
  EXPECT_THROW((void)ctl.plan_repair(live, FailureSet{{victim}, {}}),
               std::invalid_argument);
}

TEST(ConversionDelayModel, ZeroControllersPricesAsOne) {
  // The zero-guard lives in effective_controllers(): controllers == 0 must
  // price identically to controllers == 1, not divide by zero.
  ConversionDelayModel zero;
  zero.controllers = 0;
  ConversionDelayModel one;
  one.controllers = 1;
  EXPECT_DOUBLE_EQ(zero.effective_controllers(), 1.0);
  EXPECT_DOUBLE_EQ(one.effective_controllers(), 1.0);

  const Controller ctl_zero = controller_with_delay(zero);
  const Controller ctl_one = controller_with_delay(one);
  const auto price = [](const Controller& ctl) {
    const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
    const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
    return ctl.plan_conversion(clos, global).total_s();
  };
  EXPECT_DOUBLE_EQ(price(ctl_zero), price(ctl_one));
}

}  // namespace
}  // namespace flattree
