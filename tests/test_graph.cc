#include "net/graph.h"

#include <gtest/gtest.h>

namespace flattree {
namespace {

// Small fixture: a 2-switch dumbbell with two servers per switch.
class DumbbellGraph : public ::testing::Test {
 protected:
  void SetUp() override {
    s0_ = g_.add_node(NodeRole::kServer, PodId{0});
    s1_ = g_.add_node(NodeRole::kServer, PodId{0});
    s2_ = g_.add_node(NodeRole::kServer, PodId{1});
    s3_ = g_.add_node(NodeRole::kServer, PodId{1});
    e0_ = g_.add_node(NodeRole::kEdge, PodId{0});
    e1_ = g_.add_node(NodeRole::kEdge, PodId{1});
    g_.add_link(s0_, e0_, 10e9);
    g_.add_link(s1_, e0_, 10e9);
    g_.add_link(s2_, e1_, 10e9);
    g_.add_link(s3_, e1_, 10e9);
    mid_ = g_.add_link(e0_, e1_, 10e9);
  }
  Graph g_;
  NodeId s0_, s1_, s2_, s3_, e0_, e1_;
  LinkId mid_;
};

TEST_F(DumbbellGraph, Counts) {
  EXPECT_EQ(g_.node_count(), 6u);
  EXPECT_EQ(g_.link_count(), 5u);
  EXPECT_EQ(g_.count_role(NodeRole::kServer), 4u);
  EXPECT_EQ(g_.count_role(NodeRole::kEdge), 2u);
  EXPECT_EQ(g_.count_role(NodeRole::kCore), 0u);
}

TEST_F(DumbbellGraph, IndexInRole) {
  EXPECT_EQ(g_.node(s0_).index_in_role, 0u);
  EXPECT_EQ(g_.node(s3_).index_in_role, 3u);
  EXPECT_EQ(g_.node(e0_).index_in_role, 0u);
  EXPECT_EQ(g_.node(e1_).index_in_role, 1u);
}

TEST_F(DumbbellGraph, Adjacency) {
  EXPECT_EQ(g_.degree(e0_), 3u);
  EXPECT_EQ(g_.degree(s0_), 1u);
  EXPECT_EQ(g_.peer(mid_, e0_), e1_);
  EXPECT_EQ(g_.peer(mid_, e1_), e0_);
  EXPECT_THROW((void)g_.peer(mid_, s0_), std::logic_error);
}

TEST_F(DumbbellGraph, AttachmentSwitch) {
  EXPECT_EQ(g_.attachment_switch(s0_), e0_);
  EXPECT_EQ(g_.attachment_switch(s2_), e1_);
  EXPECT_THROW((void)g_.attachment_switch(e0_), std::logic_error);
}

TEST_F(DumbbellGraph, AttachedServers) {
  const auto servers = g_.attached_servers(e0_);
  EXPECT_EQ(servers.size(), 2u);
  EXPECT_EQ(g_.attached_servers(s0_).size(), 0u);
}

TEST_F(DumbbellGraph, BfsDistances) {
  const auto dist = g_.bfs_distances(s0_);
  EXPECT_EQ(dist[s0_.index()], 0u);
  EXPECT_EQ(dist[e0_.index()], 1u);
  EXPECT_EQ(dist[s1_.index()], 2u);
  EXPECT_EQ(dist[e1_.index()], 2u);
  EXPECT_EQ(dist[s3_.index()], 3u);
}

TEST_F(DumbbellGraph, BfsNeverTransitsServers) {
  // Remove the middle link's alternative: the only e0-e1 path is direct, so
  // distances via servers must not appear. Build a graph where transiting a
  // server would be shorter and verify it is not taken.
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kEdge);
  const NodeId s = g.add_node(NodeRole::kServer);
  g.add_link(a, s, 1e9);
  g.add_link(b, s, 1e9);  // a "dual-homed" server: still not a transit node
  const auto dist = g.bfs_distances(a);
  EXPECT_EQ(dist[s.index()], 1u);
  EXPECT_EQ(dist[b.index()], Graph::kUnreachable);
}

TEST_F(DumbbellGraph, Connected) {
  EXPECT_TRUE(g_.connected());
  Graph g2;
  g2.add_node(NodeRole::kEdge);
  g2.add_node(NodeRole::kEdge);
  EXPECT_FALSE(g2.connected());
}

TEST_F(DumbbellGraph, EmptyGraphIsConnected) {
  Graph g;
  EXPECT_TRUE(g.connected());
}

TEST_F(DumbbellGraph, Labels) {
  EXPECT_EQ(g_.label(e0_), "edge0(pod0)");
  EXPECT_EQ(g_.label(s2_), "server2(pod1)");
}

TEST(GraphErrors, SelfLoopRejected) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  EXPECT_THROW(g.add_link(a, a, 1e9), std::invalid_argument);
}

TEST(GraphErrors, BadCapacityRejected) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kEdge);
  EXPECT_THROW(g.add_link(a, b, 0), std::invalid_argument);
  EXPECT_THROW(g.add_link(a, b, -5), std::invalid_argument);
}

TEST(GraphErrors, OutOfRangeIds) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  EXPECT_THROW(g.add_link(a, NodeId{5}, 1e9), std::invalid_argument);
  EXPECT_THROW((void)g.node(NodeId{9}), std::out_of_range);
  EXPECT_THROW((void)g.link(LinkId{0}), std::out_of_range);
  EXPECT_THROW((void)g.neighbors(NodeId{9}), std::out_of_range);
}

TEST(GraphParallel, ParallelLinksAllowed) {
  Graph g;
  const NodeId a = g.add_node(NodeRole::kEdge);
  const NodeId b = g.add_node(NodeRole::kAgg);
  g.add_link(a, b, 1e9);
  g.add_link(a, b, 1e9);
  EXPECT_EQ(g.link_count(), 2u);
  EXPECT_EQ(g.degree(a), 2u);
}

TEST(GraphRole, SwitchPredicate) {
  EXPECT_FALSE(is_switch(NodeRole::kServer));
  EXPECT_TRUE(is_switch(NodeRole::kEdge));
  EXPECT_TRUE(is_switch(NodeRole::kAgg));
  EXPECT_TRUE(is_switch(NodeRole::kCore));
}

TEST(GraphRole, RoleNames) {
  EXPECT_STREQ(to_string(NodeRole::kServer), "server");
  EXPECT_STREQ(to_string(NodeRole::kEdge), "edge");
  EXPECT_STREQ(to_string(NodeRole::kAgg), "agg");
  EXPECT_STREQ(to_string(NodeRole::kCore), "core");
}

}  // namespace
}  // namespace flattree
