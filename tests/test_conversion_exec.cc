// Staged conversion execution: two-phase epoch protocol, lossy-channel
// retries, rollback, transient invariants, and the simulator drivers.
//
// The chaos battery is the load-bearing gate: a seeded adversary drops
// control messages, kills switches mid-conversion and fails OCS partitions,
// and every trial must land in exactly one of two terminal states — fully
// converted or fully rolled back — with zero blackhole/loop violations for
// the staged protocol.
#include "control/conversion_exec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "core/flat_tree.h"
#include "net/failures.h"
#include "routing/path.h"
#include "sim/packet.h"
#include "traffic/patterns.h"

namespace flattree {
namespace {

Controller testbed_controller(std::uint32_t k = 4) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = k;
  options.k_local = k;
  options.k_clos = k;
  options.count_rules = false;  // rule-state analysis is irrelevant here
  return Controller{FlatTree{p}, options};
}

std::vector<std::pair<NodeId, NodeId>> tracked_pairs(const Graph& graph,
                                                     std::size_t stride = 3) {
  const std::vector<NodeId> servers = graph.servers();
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (std::size_t i = 0; i < servers.size(); i += stride) {
    pairs.emplace_back(servers[i],
                       servers[(i + servers.size() / 2) % servers.size()]);
  }
  return pairs;
}

// Graphs as undirected node-pair multisets (link ids are renumbered by
// every realization; node pairs are the stable currency).
std::vector<std::pair<std::uint32_t, std::uint32_t>> link_multiset(
    const Graph& g) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (std::uint32_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{i});
    out.emplace_back(std::min(l.a.value(), l.b.value()),
                     std::max(l.a.value(), l.b.value()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t count_violations(const ExecutionReport& report, ViolationKind k) {
  return static_cast<std::size_t>(
      std::count_if(report.violations.begin(), report.violations.end(),
                    [k](const TransientViolation& v) { return v.kind == k; }));
}

TEST(ChannelOptions, ValidateRejectsBadFields) {
  ControlChannelOptions ch;
  EXPECT_NO_THROW(ch.validate());
  ch.drop_probability = 1.0;
  EXPECT_THROW(ch.validate(), std::invalid_argument);
  ch.drop_probability = -0.1;
  EXPECT_THROW(ch.validate(), std::invalid_argument);
  ch = ControlChannelOptions{};
  ch.delay_s = -1e-9;
  EXPECT_THROW(ch.validate(), std::invalid_argument);
  ch = ControlChannelOptions{};
  ch.timeout_s = 0.0;
  EXPECT_THROW(ch.validate(), std::invalid_argument);
  ch = ControlChannelOptions{};
  ch.backoff = 0.5;
  EXPECT_THROW(ch.validate(), std::invalid_argument);
  ch = ControlChannelOptions{};
  ch.max_attempts = 0;
  EXPECT_THROW(ch.validate(), std::invalid_argument);
}

TEST(ConversionExec, ZeroLossStagedConverges) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  const ConversionExecutor exec{ctl, ConversionExecOptions{}};
  const ExecutionReport report = exec.execute(from, to, pairs);

  EXPECT_EQ(report.outcome, ConversionOutcome::kConverted);
  EXPECT_TRUE(report.staged);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.messages_dropped, 0u);
  EXPECT_EQ(report.steps_failed, 0u);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.total_blackhole_s, 0.0);
  EXPECT_GT(report.finish_s, report.start_s);
  ASSERT_GE(report.timeline.size(), 3u);

  // Terminal state: the incoming mode's graph and routes, epoch flipped.
  const TimelinePoint& last = report.timeline.back();
  EXPECT_EQ(last.epoch, 1u);
  EXPECT_EQ(link_multiset(*last.graph), link_multiset(to.graph()));
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(last.routes[i],
              to.paths().server_paths(pairs[i].first, pairs[i].second));
  }
  // Make-before-break: every intermediate state keeps every pair routed.
  for (const TimelinePoint& pt : report.timeline) {
    for (const std::vector<Path>& rs : pt.routes) {
      ASSERT_FALSE(rs.empty());
      bool any_valid = false;
      for (const Path& path : rs) any_valid |= is_valid_path(*pt.graph, path);
      EXPECT_TRUE(any_valid);
    }
  }
}

TEST(ConversionExec, AtomicSwapHasBlackholeWindowStagedDoesNot) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());

  ConversionExecOptions staged_opts;
  ConversionExecOptions atomic_opts;
  atomic_opts.staged = false;
  const ExecutionReport staged =
      ConversionExecutor{ctl, staged_opts}.execute(from, to, pairs);
  const ExecutionReport atomic =
      ConversionExecutor{ctl, atomic_opts}.execute(from, to, pairs);

  EXPECT_EQ(staged.total_blackhole_s, 0.0);
  EXPECT_GT(atomic.total_blackhole_s, 0.0);
  EXPECT_GT(atomic.max_pair_blackhole_s, 0.0);
  EXPECT_GT(count_violations(atomic, ViolationKind::kBlackhole), 0u);
  EXPECT_EQ(atomic.outcome, ConversionOutcome::kConverted);
  // Both converge to the same terminal graph.
  EXPECT_EQ(link_multiset(*atomic.timeline.back().graph),
            link_multiset(to.graph()));
}

TEST(ConversionExec, StagedBeatsAtomicBlackholeAtTenPercentLoss) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  double staged_total = 0.0;
  double atomic_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ConversionExecOptions opts;
    opts.channel.drop_probability = 0.10;
    opts.channel.max_attempts = 8;  // loss alone should not force rollback
    opts.seed = seed;
    const ExecutionReport staged =
        ConversionExecutor{ctl, opts}.execute(from, to, pairs);
    opts.staged = false;
    const ExecutionReport atomic =
        ConversionExecutor{ctl, opts}.execute(from, to, pairs);
    staged_total += staged.total_blackhole_s;
    atomic_total += atomic.total_blackhole_s;
    EXPECT_EQ(staged.total_blackhole_s, 0.0) << "seed " << seed;
  }
  EXPECT_LT(staged_total, atomic_total);
}

TEST(ConversionExec, DeadSwitchRollsBackToExactFromState) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  // Kill a switch the incoming mode's routes depend on: its new-epoch rule
  // install can never ack, so phase A must fail and roll back.
  const Path to_path =
      to.paths().server_paths(pairs[0].first, pairs[0].second).front();
  ConversionFaults faults;
  faults.dead_switches = {to_path[to_path.size() / 2]};
  ASSERT_TRUE(is_switch(from.graph().node(faults.dead_switches[0]).role));
  const ConversionExecutor exec{ctl, ConversionExecOptions{}};
  const ExecutionReport report = exec.execute(from, to, pairs, faults);

  EXPECT_EQ(report.outcome, ConversionOutcome::kRolledBack);
  EXPECT_GT(report.steps_failed, 0u);
  const TimelinePoint& last = report.timeline.back();
  EXPECT_EQ(last.epoch, 0u);
  EXPECT_EQ(link_multiset(*last.graph), link_multiset(from.graph()));
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(last.routes[i],
              from.paths().server_paths(pairs[i].first, pairs[i].second));
  }
  // Staged rollback never black-holes or loops a pair either.
  EXPECT_EQ(count_violations(report, ViolationKind::kBlackhole), 0u);
  EXPECT_EQ(count_violations(report, ViolationKind::kLoop), 0u);
}

TEST(ConversionExec, OcsPartitionFailureRollsBack) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  ConversionFaults faults;
  faults.fail_ocs_partitions = {1};  // second pass dies mid-conversion
  const ConversionExecutor exec{ctl, ConversionExecOptions{}};
  const ExecutionReport report = exec.execute(from, to, pairs, faults);

  EXPECT_EQ(report.outcome, ConversionOutcome::kRolledBack);
  EXPECT_EQ(link_multiset(*report.timeline.back().graph),
            link_multiset(from.graph()));
  EXPECT_EQ(count_violations(report, ViolationKind::kBlackhole), 0u);
  EXPECT_EQ(count_violations(report, ViolationKind::kLoop), 0u);
  // The first partition applied and was reverted: at least two OCS steps.
  const auto ocs_steps = std::count_if(
      report.steps.begin(), report.steps.end(),
      [](const StepRecord& s) { return s.kind == StepKind::kOcs; });
  EXPECT_GE(ocs_steps, 2);
}

// The headline gate: a seeded adversary (control-channel loss + dead
// switches + OCS partition failures) across many trials; every staged trial
// must terminate in exactly one of the two sanctioned states with zero
// blackhole/loop violations.
TEST(ConversionExec, ChaosSeededAdversary) {
  const Controller ctl = testbed_controller();
  const CompiledMode clos = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode global = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(clos.graph());
  const auto aggs = clos.graph().nodes_with_role(NodeRole::kAgg);
  const auto edges = clos.graph().nodes_with_role(NodeRole::kEdge);

  std::size_t converted = 0;
  std::size_t rolled_back = 0;
  for (std::uint64_t trial = 0; trial < 25; ++trial) {
    Rng adversary{0x9d2c5680u + trial};
    ConversionExecOptions opts;
    opts.seed = trial + 1;
    opts.channel.drop_probability = 0.05 + 0.25 * adversary.next_double();
    opts.channel.max_attempts = 3 + static_cast<std::uint32_t>(
                                        adversary.next_double() * 4);
    opts.ocs_partitions = 1 + static_cast<std::uint32_t>(
                                  adversary.next_double() * 6);
    ConversionFaults faults;
    if (adversary.next_double() < 0.4) {
      faults.dead_switches.push_back(
          aggs[static_cast<std::size_t>(adversary.next_double() *
                                        static_cast<double>(aggs.size()))]);
    }
    if (adversary.next_double() < 0.3) {
      faults.dead_switches.push_back(
          edges[static_cast<std::size_t>(adversary.next_double() *
                                         static_cast<double>(edges.size()))]);
    }
    if (adversary.next_double() < 0.4) {
      faults.fail_ocs_partitions.push_back(static_cast<std::uint32_t>(
          adversary.next_double() * opts.ocs_partitions));
    }
    const bool forward = adversary.next_double() < 0.5;
    const CompiledMode& from = forward ? clos : global;
    const CompiledMode& to = forward ? global : clos;

    const ConversionExecutor exec{ctl, opts};
    const ExecutionReport report = exec.execute(from, to, pairs, faults);

    // Exactly one of two terminal states, bit-for-bit.
    const CompiledMode& terminal =
        report.outcome == ConversionOutcome::kConverted ? to : from;
    const TimelinePoint& last = report.timeline.back();
    EXPECT_EQ(link_multiset(*last.graph), link_multiset(terminal.graph()))
        << "trial " << trial;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(last.routes[i], terminal.paths().server_paths(
                                    pairs[i].first, pairs[i].second))
          << "trial " << trial << " pair " << i;
    }
    // The staged protocol never black-holes, loops, or partitions.
    EXPECT_EQ(report.violations.size(), 0u) << "trial " << trial;
    EXPECT_EQ(report.total_blackhole_s, 0.0) << "trial " << trial;
    (report.outcome == ConversionOutcome::kConverted ? converted
                                                     : rolled_back)++;
  }
  // The adversary is tuned so both terminal states actually occur.
  EXPECT_GT(converted, 0u);
  EXPECT_GT(rolled_back, 0u);
}

TEST(ConversionExec, SameSeedSameReport) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kLocal);
  const auto pairs = tracked_pairs(from.graph());
  ConversionExecOptions opts;
  opts.channel.drop_probability = 0.15;
  opts.seed = 42;
  const ConversionExecutor exec{ctl, opts};
  const ExecutionReport a = exec.execute(from, to, pairs);
  const ExecutionReport b = exec.execute(from, to, pairs);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.finish_s, b.finish_s);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.rules_added, b.rules_added);
  EXPECT_EQ(a.rules_deleted, b.rules_deleted);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].kind, b.steps[i].kind);
    EXPECT_EQ(a.steps[i].attempts, b.steps[i].attempts);
    EXPECT_EQ(a.steps[i].finish_s, b.steps[i].finish_s);
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t k = 0; k < a.timeline.size(); ++k) {
    EXPECT_EQ(a.timeline[k].t, b.timeline[k].t);
    EXPECT_EQ(a.timeline[k].routes, b.timeline[k].routes);
  }
}

TEST(ConversionExec, DelayModelValidationPropagates) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.count_rules = false;
  options.delay.rule_add_s = -1.0;
  const Controller ctl{FlatTree{p}, options};
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  const ConversionExecutor exec{ctl, ConversionExecOptions{}};
  EXPECT_THROW((void)exec.execute(from, to, pairs), std::invalid_argument);
}

TEST(ConversionExec, RejectsBadArguments) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto pairs = tracked_pairs(from.graph());
  ConversionExecOptions opts;
  opts.channel.drop_probability = 1.5;
  EXPECT_THROW(
      (void)ConversionExecutor(ctl, opts).execute(from, to, pairs),
      std::invalid_argument);
  ConversionFaults faults;
  faults.dead_switches = {from.graph().servers().front()};  // not a switch
  EXPECT_THROW((void)ConversionExecutor(ctl, ConversionExecOptions{})
                   .execute(from, to, pairs, faults),
               std::invalid_argument);
  EXPECT_THROW((void)ConversionExecutor(ctl, ConversionExecOptions{})
                   .execute(from, to, pairs, ConversionFaults{}, -1.0),
               std::invalid_argument);
}

// -- simulator drivers --------------------------------------------------------

TEST(ConversionDrive, FluidRunsThroughStagedConversion) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto servers = from.graph().servers();
  Rng rng{7};
  Workload flows = permutation_traffic(servers.size(), rng);
  for (Flow& f : flows) f.bytes = 10e6;
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const Flow& f : flows) {
    pairs.emplace_back(NodeId{f.src}, NodeId{f.dst});
  }
  ConversionExecOptions opts;
  opts.channel.drop_probability = 0.05;
  const ExecutionReport report =
      ConversionExecutor{ctl, opts}.execute(from, to, pairs);
  ASSERT_EQ(report.outcome, ConversionOutcome::kConverted);

  const ConversionDrive drive = make_conversion_drive(report);
  // The union graph covers every timeline state; every emitted event maps
  // to a timeline point.
  EXPECT_GE(drive.base->link_count(), from.graph().link_count());
  EXPECT_EQ(drive.schedule.events().size(), drive.refresh_point.size());
  for (std::size_t pt : drive.refresh_point) {
    EXPECT_LT(pt, report.timeline.size());
  }

  ScheduleRunStats stats;
  const std::vector<FluidFlowResult> results =
      run_fluid_with_conversion(report, flows, FluidOptions{}, &stats);
  ASSERT_EQ(results.size(), flows.size());
  for (const FluidFlowResult& r : results) {
    EXPECT_TRUE(r.completed);
  }
  // The staged protocol keeps every pair routed: no lookup ever comes back
  // empty during the conversion.
  EXPECT_EQ(stats.black_holed, 0u);
  EXPECT_GT(stats.refreshes, 0u);
}

TEST(ConversionDrive, PacketSimRunsThroughStagedConversion) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const auto servers = from.graph().servers();
  Rng rng{11};
  Workload flows = permutation_traffic(servers.size(), rng);
  flows.resize(8);  // a handful of flows keeps the packet run quick
  for (Flow& f : flows) f.bytes = 1e6;
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const Flow& f : flows) {
    pairs.emplace_back(NodeId{f.src}, NodeId{f.dst});
  }
  const ExecutionReport report =
      ConversionExecutor{ctl, ConversionExecOptions{}}.execute(
          from, to, pairs);
  ASSERT_EQ(report.outcome, ConversionOutcome::kConverted);

  PacketSim sim;
  sim.set_network(*report.timeline.front().graph);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    auto paths = conversion_paths_for(report, flows[i], 0);
    ASSERT_FALSE(paths.empty());
    sim.add_flow(flows[i].src, flows[i].dst, flows[i].bytes,
                 flows[i].start_s, std::move(paths));
  }
  const double horizon = report.finish_s + 5.0;
  drive_packet_sim(sim, report, flows, horizon);
  for (std::uint32_t i = 0; i < flows.size(); ++i) {
    EXPECT_TRUE(sim.flow_completed(i)) << "flow " << i;
    EXPECT_LE(sim.flow_finish_time(i), horizon);
  }
}

}  // namespace
}  // namespace flattree
