// The observability substrate's contract: every exported number is a pure
// function of the update multiset (never of thread interleaving or
// registration order), diagnostic-scope metrics stay out of the
// deterministic export, and the whole layer is inert when detached. Run
// this binary under -DFLATTREE_SANITIZE=thread as well — concurrent
// registration and recording is exactly what the exec pool does to it.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/sink.h"
#include "obs/trace.h"

namespace flattree::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetMaxIsRunningMaximum) {
  Gauge g;
  g.set_max(2.5);
  g.set_max(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set(3.0);  // last-write-wins escape hatch
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(Histogram, BucketsAreInclusiveUpperBounds) {
  Histogram h{{1.0, 2.0, 4.0}};
  h.record(0.5);  // bucket 0 (<= 1)
  h.record(1.0);  // bucket 0 (inclusive)
  h.record(1.5);  // bucket 1
  h.record(4.0);  // bucket 2 (inclusive)
  h.record(9.0);  // overflow bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(Histogram, RejectsNonAscendingBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);  // dead bucket
  // No bounds is legal: a single overflow bucket (count/min/max only).
  Histogram h{{}};
  h.record(3.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
}

TEST(Registry, TypeConflictThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::logic_error);
  // Same type re-request returns the same instance.
  reg.counter("x").add(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, HistogramReRequestKeepsOriginalBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  Histogram& again = reg.histogram("h", {5.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds().size(), 2u);
}

TEST(Registry, ExportIsSortedAndRegistrationOrderIndependent) {
  MetricsRegistry a;
  a.counter("zeta").add(1);
  a.counter("alpha").add(2);
  MetricsRegistry b;
  b.counter("alpha").add(2);
  b.counter("zeta").add(1);
  EXPECT_EQ(a.metrics_object_json(), b.metrics_object_json());
  const std::string json = a.metrics_object_json();
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
}

TEST(Registry, DiagnosticMetricsExcludedFromDeterministicExport) {
  MetricsRegistry reg;
  reg.counter("det.events").add(7);
  reg.counter("diag.steals", MetricScope::kDiagnostic).add(3);
  const std::string det = reg.metrics_object_json();
  EXPECT_NE(det.find("det.events"), std::string::npos);
  EXPECT_EQ(det.find("diag.steals"), std::string::npos);
  const std::string full = reg.metrics_object_json(/*include_diagnostic=*/true);
  EXPECT_NE(full.find("diag.steals"), std::string::npos);
  // The text summary always shows everything.
  EXPECT_NE(reg.text_summary().find("diag.steals"), std::string::npos);
}

// The determinism contract itself: the exported bytes depend only on the
// multiset of updates, not on which thread applied them or in what order.
TEST(Registry, ConcurrentUpdatesMatchSerialExport) {
  MetricsRegistry serial;
  for (int i = 0; i < 4000; ++i) {
    serial.counter("c").add(1);
    serial.histogram("h", {1.0, 10.0, 100.0}).record(i % 150);
    serial.gauge("g").set_max(i % 97);
  }

  MetricsRegistry parallel;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&parallel, w] {
      for (int i = w; i < 4000; i += 4) {
        parallel.counter("c").add(1);
        parallel.histogram("h", {1.0, 10.0, 100.0}).record(i % 150);
        parallel.gauge("g").set_max(i % 97);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(serial.metrics_object_json(), parallel.metrics_object_json());
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

TEST(Registry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.histogram("h", {1.0}).record(0.5);
  reg.reset();
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_EQ(reg.histogram("h", {1.0}).count(), 0u);
}

TEST(Tracer, RecordsSpansAndInstants) {
  EventTracer tracer{8};
  tracer.span("sim", "flow", 1.0, 0.5, /*track=*/3, /*arg=*/1024);
  tracer.instant("sim", "failure", 2.0);
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"flow\""), std::string::npos);
  const std::string summary = tracer.text_summary();
  EXPECT_NE(summary.find("sim/flow"), std::string::npos);
}

TEST(Tracer, MarkUsesMonotoneLogicalTicks) {
  EventTracer tracer{8};
  tracer.mark("control", "phase_a");
  tracer.mark("control", "phase_b");
  const std::string json = tracer.chrome_trace_json();
  // Two distinct, ordered logical timestamps.
  const auto first = json.find("\"ts\":");
  const auto second = json.find("\"ts\":", first + 1);
  ASSERT_NE(second, std::string::npos);
  EXPECT_NE(json.substr(first, 8), json.substr(second, 8));
}

TEST(Tracer, RingOverflowEvictsOldestFirst) {
  EventTracer tracer{4};
  for (std::int64_t i = 0; i < 10; ++i) {
    tracer.instant("t", "e", static_cast<double>(i), 0, i);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const std::string json = tracer.chrome_trace_json();
  // Events 0-5 were overwritten; the survivors are 6..9 oldest-first.
  EXPECT_EQ(json.find("\"value\":5"), std::string::npos);
  EXPECT_LT(json.find("\"value\":6"), json.find("\"value\":9"));
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, WriteChromeTraceRoundTrips) {
  EventTracer tracer{8};
  tracer.span("a", "b", 0.0, 1.0);
  const std::string path = ::testing::TempDir() + "trace_roundtrip.json";
  std::string error;
  ASSERT_TRUE(tracer.write_chrome_trace(path, &error)) << error;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 12, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  EXPECT_EQ(content, tracer.chrome_trace_json());
  std::string error2;
  EXPECT_FALSE(tracer.write_chrome_trace("/nonexistent-dir/x.json", &error2));
  EXPECT_FALSE(error2.empty());
}

// Detached sinks are the default state of every component: all handles are
// null and the free helpers must be safe no-ops.
TEST(Sink, DisabledByDefaultAndNullSafe) {
  const ObsSink sink;
  EXPECT_FALSE(sink.enabled());
  EXPECT_EQ(sink.metrics(), nullptr);
  EXPECT_EQ(sink.tracer(), nullptr);
  add(static_cast<Counter*>(nullptr), 5);
  record(static_cast<Histogram*>(nullptr), 1.0);
  set_max(static_cast<Gauge*>(nullptr), 1.0);

  MetricsRegistry reg;
  EventTracer tracer;
  const ObsSink attached{&reg, &tracer};
  EXPECT_TRUE(attached.enabled());
  add(&reg.counter("c"), 2);
  EXPECT_EQ(reg.counter("c").value(), 2u);
}

}  // namespace
}  // namespace flattree::obs
