// The two-level control plane: topology-aware RTTs, partition detection,
// Pod-local repair with journal/rejoin reconciliation, root failover, and
// the conversion delegation path.
//
// Load-bearing guarantees pinned here:
//   1. channel_for derives per-switch delays from hop distance: under the
//      hierarchy a Pod switch is charged its Pod controller's distance,
//      never more than the flat root's.
//   2. An islanded Pod repairs intra-Pod damage locally (journaled) while
//      the flat plane defers the same repair until the island heals — the
//      hierarchical plane's blackhole integral is never worse.
//   3. Rejoin replays exactly the journaled installs; every diverged pair
//      is reconciled back to the canonical plan.
//   4. Conversions delegated through the hierarchy inherit the executor's
//      checkpoint guarantee: the terminal state is bit-for-bit one of the
//      checkpointed modes, under any compound same-tick fault mix
//      (control_partition + controller_crash + link failure), and the
//      whole run is a pure function of its arguments.
#include "control/hierarchy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "control/conversion_exec.h"
#include "core/flat_tree.h"
#include "net/failures.h"
#include "net/rng.h"

namespace flattree {
namespace {

Controller testbed_controller(std::uint32_t k = 4) {
  FlatTreeParams p;
  p.clos = ClosParams::testbed();
  p.six_port_per_column = 1;
  p.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = k;
  options.k_local = k;
  options.k_clos = k;
  options.count_rules = false;
  return Controller{FlatTree{p}, options};
}

// Two intra-Pod pairs (Pods 0 and 1, spanning racks) plus one cross-Pod
// pair: enough to exercise both repair dispatch arms.
std::vector<std::pair<NodeId, NodeId>> mixed_pairs(const Graph& g) {
  std::vector<std::vector<NodeId>> by_pod;
  for (NodeId s : g.servers()) {
    const std::size_t p = g.node(s).pod.index();
    if (by_pod.size() <= p) by_pod.resize(p + 1);
    by_pod[p].push_back(s);
  }
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.emplace_back(by_pod[0].front(), by_pod[0].back());
  pairs.emplace_back(by_pod[1].front(), by_pod[1].back());
  pairs.emplace_back(by_pod[0][1], by_pod[2][1]);
  return pairs;
}

// A fabric link inside `pod` that an installed route of `pair` crosses.
LinkId intra_pod_route_link(const CompiledMode& mode,
                            const std::pair<NodeId, NodeId>& pair, PodId pod) {
  const Graph& g = mode.graph();
  for (const Path& path : mode.paths().server_paths(pair.first, pair.second)) {
    for (std::size_t h = 1; h + 2 < path.size(); ++h) {
      if (g.node(path[h]).pod != pod || g.node(path[h + 1]).pod != pod) {
        continue;
      }
      for (std::uint32_t i = 0; i < g.link_count(); ++i) {
        const Link& l = g.link(LinkId{i});
        if ((l.a == path[h] && l.b == path[h + 1]) ||
            (l.a == path[h + 1] && l.b == path[h])) {
          return LinkId{i};
        }
      }
    }
  }
  ADD_FAILURE() << "no intra-pod fabric link under the pair's routes";
  return LinkId{0};
}

void expect_results_identical(const HierarchyRunResult& a,
                              const HierarchyRunResult& b) {
  EXPECT_EQ(a.blackhole_pair_s, b.blackhole_pair_s);
  EXPECT_EQ(a.max_pair_blackhole_s, b.max_pair_blackhole_s);
  EXPECT_EQ(a.repairs_local, b.repairs_local);
  EXPECT_EQ(a.repairs_root, b.repairs_root);
  EXPECT_EQ(a.repairs_deferred, b.repairs_deferred);
  EXPECT_EQ(a.partitions_detected, b.partitions_detected);
  EXPECT_EQ(a.partitions_rejoined, b.partitions_rejoined);
  EXPECT_EQ(a.heartbeats_missed, b.heartbeats_missed);
  EXPECT_EQ(a.journal_appended, b.journal_appended);
  EXPECT_EQ(a.journal_replayed, b.journal_replayed);
  EXPECT_EQ(a.pairs_reconciled, b.pairs_reconciled);
  EXPECT_EQ(a.failovers, b.failovers);
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (std::size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].pair, b.repairs[i].pair);
    EXPECT_EQ(a.repairs[i].failed_at_s, b.repairs[i].failed_at_s);
    EXPECT_EQ(a.repairs[i].installed_at_s, b.repairs[i].installed_at_s);
    EXPECT_EQ(a.repairs[i].local, b.repairs[i].local);
    EXPECT_EQ(a.repairs[i].deferred, b.repairs[i].deferred);
  }
  ASSERT_EQ(a.conversion.has_value(), b.conversion.has_value());
  if (a.conversion.has_value()) {
    EXPECT_EQ(a.conversion->outcome, b.conversion->outcome);
    EXPECT_EQ(a.conversion->finish_s, b.conversion->finish_s);
    EXPECT_EQ(a.conversion->stages_committed, b.conversion->stages_committed);
    EXPECT_EQ(a.conversion->terminal_configs, b.conversion->terminal_configs);
    EXPECT_EQ(a.conversion->total_blackhole_s, b.conversion->total_blackhole_s);
  }
}

// The executor's no-mixed-epoch contract, restated over the delegated
// conversion: the terminal configs equal some checkpoint's, bit for bit.
void expect_terminal_checkpointed(const ExecutionReport& rep) {
  ASSERT_FALSE(rep.checkpoints.empty());
  EXPECT_EQ(rep.terminal_configs, rep.checkpoints.back().configs);
  const bool matches_some_checkpoint =
      std::any_of(rep.checkpoints.begin(), rep.checkpoints.end(),
                  [&](const CheckpointRecord& c) {
                    return c.configs == rep.terminal_configs;
                  });
  EXPECT_TRUE(matches_some_checkpoint);
}

TEST(ControlHierarchy, ToStringNamesBothKinds) {
  EXPECT_STREQ("flat", to_string(ControlPlaneKind::kFlat));
  EXPECT_STREQ("hierarchical", to_string(ControlPlaneKind::kHierarchical));
}

TEST(ControlHierarchy, OptionsValidateRejectsOutOfRange) {
  const auto expect_rejects = [](auto mutate, const char* message) {
    ControlHierarchyOptions o;
    mutate(o);
    try {
      o.validate();
      ADD_FAILURE() << "expected rejection: " << message;
    } catch (const std::invalid_argument& e) {
      EXPECT_STREQ(message, e.what());
    }
  };
  expect_rejects([](auto& o) { o.per_hop_s = -1e-9; },
                 "ControlHierarchyOptions: per_hop_s must be >= 0");
  expect_rejects([](auto& o) { o.heartbeat_period_s = 0.0; },
                 "ControlHierarchyOptions: heartbeat_period_s must be > 0");
  expect_rejects([](auto& o) { o.heartbeat_miss_limit = 0; },
                 "ControlHierarchyOptions: heartbeat_miss_limit must be >= 1");
  expect_rejects([](auto& o) { o.failover_takeover_s = -0.1; },
                 "ControlHierarchyOptions: failover_takeover_s must be >= 0");
  // Channel fields flow through the channel's own validate.
  ControlHierarchyOptions bad;
  bad.channel.drop_probability = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_THROW(
      (ControlHierarchy{testbed_controller(), ControlPlaneKind::kFlat, bad}),
      std::invalid_argument);
}

TEST(ControlHierarchy, SitesHomeOnCoresAndPodAggs) {
  const Controller ctl = testbed_controller();
  const CompiledMode mode = ctl.compile_uniform(PodMode::kClos);
  const Graph& g = mode.graph();
  const ControlHierarchy hier{ctl, ControlPlaneKind::kHierarchical, {}};

  const NodeId root = hier.root_site(g);
  const NodeId standby = hier.standby_site(g);
  ASSERT_TRUE(root.valid());
  ASSERT_TRUE(standby.valid());
  EXPECT_EQ(NodeRole::kCore, g.node(root).role);
  EXPECT_EQ(NodeRole::kCore, g.node(standby).role);
  EXPECT_NE(root, standby);

  for (std::uint32_t p = 0; p < ctl.tree().clos().pods; ++p) {
    const NodeId site = hier.pod_site(g, PodId{p});
    ASSERT_TRUE(site.valid());
    EXPECT_EQ(PodId{p}, g.node(site).pod);
    EXPECT_EQ(NodeRole::kAgg, g.node(site).role);
  }
}

TEST(ControlHierarchy, ChannelForChargesPodSwitchesFromTheirController) {
  const Controller ctl = testbed_controller();
  const CompiledMode mode = ctl.compile_uniform(PodMode::kClos);
  const Graph& g = mode.graph();
  const ControlHierarchy hier{ctl, ControlPlaneKind::kHierarchical, {}};
  const ControlHierarchy flat{ctl, ControlPlaneKind::kFlat, {}};

  const ControlChannelOptions hch = hier.channel_for(g);
  const ControlChannelOptions fch = flat.channel_for(g);
  ASSERT_EQ(g.node_count(), hch.switch_delay_s.size());
  ASSERT_EQ(g.node_count(), fch.switch_delay_s.size());
  hch.validate();
  fch.validate();

  // The Pod controller is at most as far from its own switches as the root
  // across the core; strictly closer for some switch in every Pod.
  bool some_strictly_closer = false;
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    const Node& n = g.node(NodeId{i});
    if (!n.pod.valid() || !is_switch(n.role)) continue;
    EXPECT_LE(hch.switch_delay_s[i], fch.switch_delay_s[i]) << "node " << i;
    if (hch.switch_delay_s[i] < fch.switch_delay_s[i]) {
      some_strictly_closer = true;
    }
  }
  EXPECT_TRUE(some_strictly_closer);

  // Core switches are root-programmed under both shapes.
  for (NodeId c : g.nodes_with_role(NodeRole::kCore)) {
    EXPECT_EQ(fch.switch_delay_s[c.index()], hch.switch_delay_s[c.index()]);
  }

  // Ablation: with topology RTTs off the uniform base channel comes back.
  ControlHierarchyOptions uniform;
  uniform.topology_rtts = false;
  const ControlHierarchy ablated{ctl, ControlPlaneKind::kHierarchical,
                                 uniform};
  EXPECT_TRUE(ablated.channel_for(g).switch_delay_s.empty());
}

TEST(ControlHierarchy, RunValidatesArguments) {
  const Controller ctl = testbed_controller();
  const CompiledMode mode = ctl.compile_uniform(PodMode::kClos);
  const std::vector<std::pair<NodeId, NodeId>> pairs = mixed_pairs(mode.graph());
  const ControlHierarchy hier{ctl, ControlPlaneKind::kHierarchical, {}};

  EXPECT_THROW(
      (void)hier.run(mode, pairs, FailureSchedule{}, HierarchyFaults{}, 0.0),
      std::invalid_argument);

  HierarchyFaults bad_pod;
  bad_pod.partitions.push_back(ControlPartition{PodId{99}, 0.0, 1.0});
  EXPECT_THROW((void)hier.run(mode, pairs, FailureSchedule{}, bad_pod, 1.0),
               std::invalid_argument);

  HierarchyFaults bad_window;
  bad_window.partitions.push_back(ControlPartition{PodId{0}, 2.0, 1.0});
  EXPECT_THROW((void)hier.run(mode, pairs, FailureSchedule{}, bad_window, 1.0),
               std::invalid_argument);
}

TEST(ControlHierarchy, CalmRunIsDarkFree) {
  const Controller ctl = testbed_controller();
  const CompiledMode mode = ctl.compile_uniform(PodMode::kClos);
  const std::vector<std::pair<NodeId, NodeId>> pairs = mixed_pairs(mode.graph());
  const ControlHierarchy hier{ctl, ControlPlaneKind::kHierarchical, {}};

  const HierarchyRunResult res =
      hier.run(mode, pairs, FailureSchedule{}, HierarchyFaults{}, 2.0);
  EXPECT_EQ(0.0, res.blackhole_pair_s);
  EXPECT_EQ(0.0, res.max_pair_blackhole_s);
  EXPECT_TRUE(res.repairs.empty());
  EXPECT_EQ(0u, res.partitions_detected);
  EXPECT_EQ(0u, res.heartbeats_missed);
  EXPECT_FALSE(res.conversion.has_value());
}

TEST(ControlHierarchy, HeartbeatsDetectAndRejoinPartitions) {
  const Controller ctl = testbed_controller();
  const CompiledMode mode = ctl.compile_uniform(PodMode::kClos);
  const std::vector<std::pair<NodeId, NodeId>> pairs = mixed_pairs(mode.graph());
  ControlHierarchyOptions opts;
  opts.heartbeat_period_s = 0.125;  // binary-exact: the miss count is crisp
  opts.heartbeat_miss_limit = 2;
  const ControlHierarchy hier{ctl, ControlPlaneKind::kHierarchical, opts};

  HierarchyFaults faults;
  faults.partitions.push_back(ControlPartition{PodId{0}, 1.0, 2.0});
  faults.partitions.push_back(ControlPartition{PodId{1}, 1.0, -1.0});

  const HierarchyRunResult res =
      hier.run(mode, pairs, FailureSchedule{}, faults, 4.0);
  // Pod 0's one-second window and Pod 1's three remaining seconds, at
  // eight heartbeats a second.
  EXPECT_EQ(2u, res.partitions_detected);
  EXPECT_EQ(1u, res.partitions_rejoined);
  EXPECT_EQ(8u + 24u, res.heartbeats_missed);

  // A window shorter than the detection latency passes unnoticed.
  HierarchyFaults blip;
  blip.partitions.push_back(ControlPartition{PodId{0}, 1.0, 1.2});
  const HierarchyRunResult quiet =
      hier.run(mode, pairs, FailureSchedule{}, blip, 4.0);
  EXPECT_EQ(0u, quiet.partitions_detected);
  EXPECT_EQ(0u, quiet.partitions_rejoined);
  EXPECT_EQ(1u, quiet.heartbeats_missed);

  // The flat plane has no heartbeat machinery to report.
  const ControlHierarchy flat{ctl, ControlPlaneKind::kFlat, opts};
  const HierarchyRunResult fres =
      flat.run(mode, pairs, FailureSchedule{}, faults, 4.0);
  EXPECT_EQ(0u, fres.partitions_detected);
  EXPECT_EQ(0u, fres.heartbeats_missed);
}

TEST(ControlHierarchy, IslandedPodRepairsLocallyFlatDefers) {
  const Controller ctl = testbed_controller();
  const CompiledMode mode = ctl.compile_uniform(PodMode::kClos);
  const std::vector<std::pair<NodeId, NodeId>> pairs = mixed_pairs(mode.graph());
  const LinkId broken = intra_pod_route_link(mode, pairs[0], PodId{0});

  FailureSchedule storm;
  storm.fail_at(1.5, FailureSet{{broken}, {}});
  storm.recover_at(3.5, FailureSet{{broken}, {}});

  HierarchyFaults faults;
  faults.partitions.push_back(ControlPartition{PodId{0}, 1.0, 3.0});

  const ControlHierarchy hier{ctl, ControlPlaneKind::kHierarchical, {}};
  const ControlHierarchy flat{ctl, ControlPlaneKind::kFlat, {}};
  const HierarchyRunResult hres = hier.run(mode, pairs, storm, faults, 5.0);
  const HierarchyRunResult fres = flat.run(mode, pairs, storm, faults, 5.0);

  // KSP detour paths can put the broken Pod-0 link under other pairs'
  // route sets too; the contract under test is specifically pair 0's
  // repair (both endpoints inside the island).
  const auto repair_of = [](const HierarchyRunResult& r,
                            std::size_t pair) -> const HierarchyRepair& {
    const auto it =
        std::find_if(r.repairs.begin(), r.repairs.end(),
                     [&](const HierarchyRepair& x) { return x.pair == pair; });
    EXPECT_NE(it, r.repairs.end());
    return *it;
  };

  // The Pod controller fixes its own island: a local, journaled repair,
  // replayed to the root at rejoin.
  EXPECT_GE(hres.repairs_local, 1u);
  EXPECT_GE(hres.journal_appended, 1u);
  EXPECT_EQ(hres.journal_appended, hres.journal_replayed);
  ASSERT_FALSE(hres.repairs.empty());
  EXPECT_TRUE(repair_of(hres, 0).local);
  EXPECT_FALSE(repair_of(hres, 0).deferred);
  EXPECT_LT(repair_of(hres, 0).installed_at_s, 3.0);

  // The flat root cannot install rules into the island until it heals.
  EXPECT_EQ(0u, fres.repairs_local);
  EXPECT_GE(fres.repairs_deferred, 1u);
  ASSERT_FALSE(fres.repairs.empty());
  EXPECT_TRUE(repair_of(fres, 0).deferred);
  EXPECT_GE(repair_of(fres, 0).installed_at_s, 3.0);

  // The deferral window is the blackhole gap.
  EXPECT_LT(hres.blackhole_pair_s, fres.blackhole_pair_s);
  EXPECT_LT(hres.mean_repair_lag_s(), fres.mean_repair_lag_s());
}

TEST(ControlHierarchy, RootCrashPromotesStandbyAndDefersRootRepairs) {
  const Controller ctl = testbed_controller();
  const CompiledMode mode = ctl.compile_uniform(PodMode::kClos);
  const std::vector<std::pair<NodeId, NodeId>> pairs = mixed_pairs(mode.graph());
  // Break the cross-Pod pair: its repair needs the root seat.
  const LinkId broken = intra_pod_route_link(mode, pairs[2], PodId{0});

  FailureSchedule storm;
  storm.fail_at(1.0, FailureSet{{broken}, {}});
  storm.recover_at(4.0, FailureSet{{broken}, {}});

  ControlHierarchyOptions opts;
  opts.failover_takeover_s = 0.5;
  HierarchyFaults faults;
  faults.root_crash_at_s = 0.9;

  const ControlHierarchy hier{ctl, ControlPlaneKind::kHierarchical, opts};
  const HierarchyRunResult res = hier.run(mode, pairs, storm, faults, 5.0);
  EXPECT_EQ(1u, res.failovers);
  for (const HierarchyRepair& r : res.repairs) {
    if (r.local) continue;
    // Non-local repairs wait out the empty root seat.
    EXPECT_TRUE(r.deferred);
    EXPECT_GE(r.installed_at_s, 0.9 + 0.5);
  }
}

TEST(ControlHierarchy, DelegatedConversionAdoptsTerminalCheckpoint) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const std::vector<std::pair<NodeId, NodeId>> pairs = mixed_pairs(from.graph());

  ConversionExecOptions exec_base;
  exec_base.stage_checkpoints = true;
  exec_base.seed = 7;

  const ControlHierarchy hier{ctl, ControlPlaneKind::kHierarchical, {}};
  const HierarchyRunResult res =
      hier.run(from, pairs, FailureSchedule{}, HierarchyFaults{}, 60.0, &to,
               1.0, exec_base);
  ASSERT_TRUE(res.conversion.has_value());
  EXPECT_EQ(ConversionOutcome::kConverted, res.conversion->outcome);
  EXPECT_EQ(to.configs(), res.conversion->terminal_configs);
  expect_terminal_checkpointed(*res.conversion);
  EXPECT_EQ(0.0, res.blackhole_pair_s);
}

// ISSUE satellite: compound same-tick chaos fuzz. Every seeded mix of a
// control partition, a root crash at the same instant, and a link failure
// on the same tick must terminate with the fabric bit-for-bit on a
// checkpointed mode — and the whole run must be a pure function of its
// arguments (two evaluations agree exactly).
TEST(ControlHierarchy, CompoundFaultFuzzTerminatesCheckpointed) {
  const Controller ctl = testbed_controller();
  const CompiledMode from = ctl.compile_uniform(PodMode::kClos);
  const CompiledMode to = ctl.compile_uniform(PodMode::kGlobal);
  const std::vector<std::pair<NodeId, NodeId>> pairs = mixed_pairs(from.graph());

  Rng rng{0xC0FFEE};
  for (std::uint32_t round = 0; round < 8; ++round) {
    const double tick = 0.5 + rng.next_double() * 2.0;
    const std::uint32_t pod = static_cast<std::uint32_t>(rng.next_below(4));
    const bool heals = rng.next_double() < 0.5;
    const double window = 0.5 + rng.next_double() * 2.0;
    const LinkId broken = intra_pod_route_link(
        from, pairs[pod % pairs.size()],
        from.graph().node(pairs[pod % pairs.size()].first).pod);

    FailureSchedule storm;
    storm.fail_at(tick, FailureSet{{broken}, {}});
    storm.recover_at(tick + 3.0, FailureSet{{broken}, {}});

    HierarchyFaults faults;
    faults.partitions.push_back(
        ControlPartition{PodId{pod}, tick, heals ? tick + window : -1.0});
    faults.root_crash_at_s = tick;  // same tick: crash + partition + failure

    ConversionExecOptions exec_base;
    exec_base.stage_checkpoints = true;
    exec_base.seed = 1000 + round;

    // Loss lives on the hierarchy's channel: run() re-derives the
    // executor's channel via channel_for, so exec_base.channel is ignored.
    ControlHierarchyOptions lossy;
    lossy.channel.drop_probability = 0.05;

    for (ControlPlaneKind kind :
         {ControlPlaneKind::kHierarchical, ControlPlaneKind::kFlat}) {
      const ControlHierarchy plane{ctl, kind, lossy};
      const HierarchyRunResult a =
          plane.run(from, pairs, storm, faults, 8.0, &to, tick, exec_base);
      ASSERT_TRUE(a.conversion.has_value());
      expect_terminal_checkpointed(*a.conversion);
      // Terminates: the executor came back with a finite timeline and the
      // serving loop drained to the horizon.
      EXPECT_GT(a.conversion->finish_s, tick);
      EXPECT_EQ(8.0, a.duration_s);

      const HierarchyRunResult b =
          plane.run(from, pairs, storm, faults, 8.0, &to, tick, exec_base);
      expect_results_identical(a, b);
    }
  }
}

TEST(ControlHierarchy, MetricsExportMatchesResultCounters) {
  obs::MetricsRegistry metrics;
  const obs::ObsSink sink{&metrics, nullptr};

  const Controller ctl = testbed_controller();
  const CompiledMode mode = ctl.compile_uniform(PodMode::kClos);
  const std::vector<std::pair<NodeId, NodeId>> pairs = mixed_pairs(mode.graph());
  const LinkId broken = intra_pod_route_link(mode, pairs[0], PodId{0});
  FailureSchedule storm;
  storm.fail_at(1.5, FailureSet{{broken}, {}});
  storm.recover_at(3.5, FailureSet{{broken}, {}});
  HierarchyFaults faults;
  faults.partitions.push_back(ControlPartition{PodId{0}, 1.0, 3.0});

  ControlHierarchyOptions opts;
  opts.sink = sink;
  const ControlHierarchy hier{ctl, ControlPlaneKind::kHierarchical, opts};
  const HierarchyRunResult res = hier.run(mode, pairs, storm, faults, 5.0);

  EXPECT_EQ(1u, metrics.counter("ctrl.hier.runs").value());
  EXPECT_EQ(res.repairs_local,
            metrics.counter("ctrl.hier.repairs.local").value());
  EXPECT_EQ(res.partitions_detected,
            metrics.counter("ctrl.hier.partitions.detected").value());
  EXPECT_EQ(res.journal_appended,
            metrics.counter("ctrl.hier.journal.appended").value());
}

}  // namespace
}  // namespace flattree
