// Hybrid mode (§3.5): organize the network into functionally separate zones
// — a Clos zone for a rack-local service, a global zone for a network-wide
// service — and show each workload running in its best-suited zone
// simultaneously on one physical network.
//
//   $ ./hybrid_zones
#include <cstdio>
#include <memory>
#include <numeric>

#include "core/flat_tree.h"
#include "routing/ksp.h"
#include "sim/fluid.h"
#include "topo/params.h"
#include "traffic/patterns.h"

using namespace flattree;

namespace {

double total_gbps(const Graph& g, const Workload& flows) {
  auto cache = std::make_shared<PathCache>(g, 4);
  FluidSimulator sim{g, [cache](NodeId s, NodeId d, std::uint32_t) {
                       return cache->server_paths(s, d);
                     }};
  const auto rates = sim.measure_rates(flows);
  return std::accumulate(rates.begin(), rates.end(), 0.0) / 1e9;
}

}  // namespace

int main() {
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  const FlatTree tree{params};

  // Zone plan: pod 0 runs a rack-local database (Clos mode keeps its racks
  // intact); pods 1-3 run an analytics cluster with network-wide shuffles
  // (global mode flattens them together).
  ModeAssignment zones = ModeAssignment::uniform(4, PodMode::kGlobal);
  zones.pod_modes[0] = PodMode::kClos;
  const Graph hybrid = tree.realize(zones);

  // Workloads: all-to-all inside pod 0's racks + pod-stride across 1..3.
  const Workload db = clustered_all_to_all(6, 3);  // servers 0..5 (pod 0)
  Workload analytics;
  for (std::uint32_t s = 6; s < 24; ++s) {
    const std::uint32_t dst = 6 + ((s - 6 + 6) % 18);
    if (dst != s) analytics.push_back(Flow{s, dst});
  }

  std::printf("zone plan: pod0=clos (rack-local DB), pods1-3=global "
              "(analytics)\n\n");
  std::printf("%-22s %12s %12s\n", "network", "DB (Gb/s)", "analytics (Gb/s)");
  const Graph uniform_clos = tree.realize_uniform(PodMode::kClos);
  const Graph uniform_global = tree.realize_uniform(PodMode::kGlobal);
  std::printf("%-22s %12.1f %12.1f\n", "all-Clos",
              total_gbps(uniform_clos, db), total_gbps(uniform_clos, analytics));
  std::printf("%-22s %12.1f %12.1f\n", "all-global",
              total_gbps(uniform_global, db),
              total_gbps(uniform_global, analytics));
  std::printf("%-22s %12.1f %12.1f\n", "hybrid (zoned)",
              total_gbps(hybrid, db), total_gbps(hybrid, analytics));
  std::printf("\nThe hybrid network serves both services at (or near) their "
              "best-mode\nthroughput simultaneously — the paper's "
              "service-specific zones (§5.2).\n");
  return 0;
}
