// Trace replay: generate a data-center trace with a chosen locality mix and
// replay it on every flat-tree mode, reporting flow-completion-time
// statistics — a miniature of the paper's Figure 8 experiment.
//
//   $ ./trace_replay [hadoop1 | hadoop2 | web | cache]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/flat_tree.h"
#include "routing/ksp.h"
#include "sim/fluid.h"
#include "topo/params.h"
#include "traffic/traces.h"

using namespace flattree;

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(p / 100.0 * (v.size() - 1))];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "web";
  TraceParams trace = which == "hadoop1"   ? TraceParams::hadoop1()
                      : which == "hadoop2" ? TraceParams::hadoop2()
                      : which == "cache"   ? TraceParams::cache()
                                           : TraceParams::web();

  // Quarter-scale topo-1 (512 servers) under a fabric-stressing load keeps
  // the replay interactive (~1 min) while letting the modes differ.
  const ClosParams clos{8, 4, 4, 4, 16, 4, 16, 8};
  trace.duration_s = 0.25;
  trace.flows_per_s = 6000;
  trace.mean_flow_bytes = 10e6;

  const Workload flows = generate_trace(clos, trace);
  const LocalityMix mix = measure_locality(clos, flows);
  std::printf("trace %s: %zu flows over %.1f s — locality rack %.1f%% / "
              "pod %.1f%% / inter-pod %.1f%%\n\n",
              trace.name.c_str(), flows.size(), trace.duration_s,
              mix.intra_rack * 100, mix.intra_pod * 100, mix.inter_pod * 100);

  const FlatTree tree{FlatTreeParams::defaults_for(clos)};
  std::printf("%-8s %10s %10s %10s %10s\n", "mode", "p50(ms)", "p90(ms)",
              "p99(ms)", "mean(ms)");
  for (const PodMode mode : {PodMode::kClos, PodMode::kLocal, PodMode::kGlobal}) {
    const Graph g = tree.realize_uniform(mode);
    auto cache = std::make_shared<PathCache>(g, 8);
    FluidSimulator sim{g, [cache](NodeId s, NodeId d, std::uint32_t) {
                         return cache->server_paths(s, d);
                       }};
    const auto results = sim.run(flows);
    std::vector<double> fct;
    double total = 0;
    for (const auto& r : results) {
      if (!r.completed) continue;
      fct.push_back(r.fct_s() * 1e3);
      total += r.fct_s() * 1e3;
    }
    std::printf("%-8s %10.2f %10.2f %10.2f %10.2f\n", to_string(mode),
                percentile(fct, 50), percentile(fct, 90), percentile(fct, 99),
                total / fct.size());
  }
  std::printf("\nPick the mode that matches your traffic's locality: Clos "
              "for rack-local,\nlocal for Pod-local, global for "
              "network-wide (§5.2).\n");
  return 0;
}
