// Multi-stage flat-tree tour (§2.2 future work, implemented here): build a
// two-stage convertible network and watch servers migrate through the
// hierarchy — edge -> aggregation -> upper Pods -> top cores — as each stage
// flattens.
//
//   $ ./multistage_tour
#include <cstdio>

#include "core/multi_stage.h"
#include "net/stats.h"

using namespace flattree;

int main() {
  MultiStageParams params;
  // Lower stage: 4 Pods x (4 edge + 4 agg), 8 servers per edge.
  params.lower.clos = ClosParams{4, 4, 4, 4, 8, 4, 16, 4};
  params.lower.six_port_per_column = 1;
  params.lower.four_port_per_column = 1;
  // Upper stage: 4 switch-only Pods whose edge switches are the lower
  // stage's "cores", topped by 16 true core switches.
  params.upper_pods = 4;
  params.upper_edge_per_pod = 4;
  params.upper_agg_per_pod = 4;
  params.upper_edge_uplinks = 4;
  params.upper_agg_uplinks = 4;
  params.top_cores = 16;
  params.top_core_ports = 4;
  params.upper_m = 1;
  params.upper_n = 1;

  const MultiStageFlatTree tree{params};
  std::printf("two-stage flat-tree: %u servers, 6 switch layers\n"
              "(edge / agg / upper-edge / upper-agg / top-core)\n\n",
              tree.total_servers());

  std::printf("%-22s %-10s %s\n", "(lower, upper) mode", "avg hops",
              "servers at edge/agg/upEdge/upAgg/topCore");
  for (const auto& [lower, upper] :
       {std::pair{PodMode::kClos, PodMode::kClos},
        std::pair{PodMode::kGlobal, PodMode::kClos},
        std::pair{PodMode::kGlobal, PodMode::kGlobal}}) {
    const Graph g = tree.realize_uniform(lower, upper);
    const PathLengthStats stats = compute_path_length_stats(g);
    std::size_t at[6] = {0, 0, 0, 0, 0, 0};
    for (NodeId s : g.servers()) {
      at[static_cast<std::size_t>(g.node(g.attachment_switch(s)).role)]++;
    }
    std::printf("(%-7s, %-7s)    %-10.3f %zu/%zu/%zu/%zu/%zu\n",
                to_string(lower), to_string(upper),
                stats.avg_server_pair_hops, at[1], at[2], at[3], at[4],
                at[5]);
  }
  std::printf(
      "\nEach flattened stage pulls servers deeper into the fabric and\n"
      "shortens average paths; (global, global) is the paper's sketched\n"
      "multi-stage conversion taken to its fullest.\n");
  return 0;
}
