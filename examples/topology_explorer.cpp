// Topology explorer: compare a Clos layout's flat-tree modes against random
// graph and two-stage random graph networks built from the same devices.
//
//   $ ./topology_explorer [topo-1 | topo-2 | ... | topo-6 | testbed]
//
// Prints structure, path-length statistics, wiring-property audits, and the
// (m, n) profiling result for the chosen layout.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/flat_tree.h"
#include "core/profiling.h"
#include "net/stats.h"
#include "topo/clos.h"
#include "topo/random_graph.h"

using namespace flattree;

namespace {

void describe(const char* name, const Graph& g) {
  const PathLengthStats stats = compute_path_length_stats(g);
  std::printf("  %-16s avg server-pair %.3f hops, avg switch-pair %.3f, "
              "diameter %u, links %zu\n",
              name, stats.avg_server_pair_hops, stats.avg_switch_pair_hops,
              stats.diameter, g.link_count());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string preset = argc > 1 ? argv[1] : "topo-2";
  const ClosParams clos = preset == "testbed" ? ClosParams::testbed()
                                              : ClosParams::preset(preset);

  std::printf("=== %s: %u servers, %u switches ===\n\n", preset.c_str(),
              clos.total_servers(), clos.total_switches());

  // Profile (m, n) as §3.4 suggests, then build the flat-tree with it.
  const MnProfile profile = profile_mn(clos, WiringPattern::kPattern1,
                                       clos.core_connectors_per_edge() > 6 ? 2 : 1);
  std::printf("profiled (m, n) = (%u, %u): avg server-pair path %.3f hops "
              "(%zu candidates swept)\n\n",
              profile.best.m, profile.best.n,
              profile.best.avg_server_pair_hops, profile.candidates.size());

  FlatTreeParams params;
  params.clos = clos;
  params.six_port_per_column = profile.best.m;
  params.four_port_per_column = profile.best.n;
  const FlatTree tree{params};

  std::printf("flat-tree modes (same hardware, converted by software):\n");
  describe("clos mode", tree.realize_uniform(PodMode::kClos));
  describe("local mode", tree.realize_uniform(PodMode::kLocal));
  const Graph global = tree.realize_uniform(PodMode::kGlobal);
  describe("global mode", global);

  std::printf("\nreference points (re-wired from the same device budget):\n");
  describe("random graph", build_random_graph_from_clos(clos, 1));
  TwoStageParams ts = TwoStageParams::from_clos(clos);
  describe("two-stage RG", build_two_stage_random_graph(ts));

  // Wiring property audits (§3.2).
  const auto per_core = servers_per_switch(global, NodeRole::kCore);
  const auto [lo, hi] = std::minmax_element(per_core.begin(), per_core.end());
  std::printf("\nglobal-mode audits: servers per core %zu..%zu (Property 1: "
              "uniform), ", *lo, *hi);
  const auto edge_links = links_by_peer_role(global, NodeRole::kCore,
                                             NodeRole::kEdge);
  const auto [elo, ehi] =
      std::minmax_element(edge_links.begin(), edge_links.end());
  std::printf("core-edge links per core %zu..%zu (Property 2: equal)\n",
              *elo, *ehi);
  return 0;
}
