// Quickstart: build a flat-tree from a Clos description, inspect its three
// operation modes, and plan a run-time conversion.
//
//   $ ./quickstart
//
// This walks the core public API end to end: ClosParams -> FlatTree ->
// realize() -> Controller::compile/plan_conversion.
#include <cstdio>

#include "control/controller.h"
#include "core/addressing.h"
#include "core/flat_tree.h"
#include "net/stats.h"
#include "topo/params.h"

using namespace flattree;

int main() {
  // 1. Describe the Clos network you already have. This is the paper's
  //    20-switch / 24-server testbed (Figure 2); swap in
  //    ClosParams::topo1() or your own numbers for something bigger.
  const ClosParams clos = ClosParams::testbed();
  std::printf("Clos budget: %u pods, %u edge + %u agg + %u core switches, "
              "%u servers (%.1f:1 oversubscribed)\n",
              clos.pods, clos.total_edges(), clos.total_aggs(), clos.cores,
              clos.total_servers(), clos.edge_oversubscription());

  // 2. Make it convertible: one 6-port and one 4-port converter switch per
  //    edge/aggregation pair (m = n = 1, as in the paper's example).
  FlatTreeParams params;
  params.clos = clos;
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  const FlatTree tree{params};
  std::printf("Flat-tree: %zu converter switches packaged into the pods\n\n",
              tree.converters().size());

  // 3. Each operation mode realizes a different topology on the same
  //    hardware.
  for (const PodMode mode : {PodMode::kClos, PodMode::kLocal, PodMode::kGlobal}) {
    const Graph g = tree.realize_uniform(mode);
    const PathLengthStats stats = compute_path_length_stats(g);
    std::size_t at_edge = 0, at_agg = 0, at_core = 0;
    for (NodeId s : g.servers()) {
      switch (g.node(g.attachment_switch(s)).role) {
        case NodeRole::kEdge: ++at_edge; break;
        case NodeRole::kAgg: ++at_agg; break;
        case NodeRole::kCore: ++at_core; break;
        default: break;
      }
    }
    std::printf("%-7s mode: avg server-pair path %.2f hops, diameter %u, "
                "servers at edge/agg/core = %zu/%zu/%zu\n",
                to_string(mode), stats.avg_server_pair_hops, stats.diameter,
                at_edge, at_agg, at_core);
  }

  // 4. The controller compiles modes (routing state + addressing) and
  //    prices conversions like the testbed control software.
  ControllerOptions options;
  options.k_global = options.k_local = options.k_clos = 4;
  const Controller controller{FlatTree{params}, options};
  const CompiledMode from = controller.compile_uniform(PodMode::kClos);
  const CompiledMode to = controller.compile_uniform(PodMode::kGlobal);
  const ConversionReport report = controller.plan_conversion(from, to);
  std::printf("\nClos -> global conversion: %u converters reconfigure, "
              "%llu rules out / %llu in, total %.0f ms\n",
              report.converters_changed,
              static_cast<unsigned long long>(report.rules_deleted),
              static_cast<unsigned long long>(report.rules_added),
              report.total_s() * 1e3);

  // 5. Every server keeps one preconfigured IP address set per mode
  //    (Figure 5); MPTCP only ever uses the routable subset.
  const AddressBook book{tree, /*k_global=*/16, /*k_local=*/8, /*k_clos=*/4};
  const NodeId server0{0};
  std::printf("\nserver0's preconfigured addresses (%u total):\n",
              book.addresses_per_server());
  for (const PodMode mode : {PodMode::kGlobal, PodMode::kLocal, PodMode::kClos}) {
    std::printf("  %-7s:", to_string(mode));
    for (const FlatTreeAddress& addr : book.plan(mode).addresses(server0)) {
      std::printf(" %s", addr.str().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
