// Run-time conversion demo: drive iPerf-style traffic through the
// packet-level simulator while the controller converts the testbed from
// Clos to global mode mid-run — watch the throughput dip through the
// control-plane blackout and recover on the richer topology (a miniature of
// the paper's Figure 10).
//
//   $ ./runtime_conversion
#include <cstdio>
#include <vector>

#include "control/controller.h"
#include "sim/packet.h"
#include "topo/params.h"

using namespace flattree;

int main() {
  FlatTreeParams params;
  params.clos = ClosParams::testbed();
  params.clos.link_bps = 500e6;  // scaled-down links keep the demo snappy
  params.six_port_per_column = 1;
  params.four_port_per_column = 1;
  ControllerOptions options;
  options.k_global = options.k_local = options.k_clos = 4;
  const Controller controller{FlatTree{params}, options};

  const CompiledMode clos = controller.compile_uniform(PodMode::kClos);
  const CompiledMode global = controller.compile_uniform(PodMode::kGlobal);

  PacketSim sim;
  sim.set_network(clos.graph());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::uint32_t s = 0; s < 24; ++s) {
    for (std::uint32_t stride = 1; stride < 4; ++stride) {
      const std::uint32_t dst = (s + 6 * stride) % 24;  // other pods
      pairs.emplace_back(s, dst);
      sim.add_flow(s, dst, /*bytes=*/0, /*start=*/0.0,
                   clos.paths().server_paths(NodeId{s}, NodeId{dst}));
    }
  }

  const ConversionReport plan = controller.plan_conversion(clos, global);
  std::printf("conversion plan: %u converters, %.0f ms blackout "
              "(OCS %.0f + delete %.0f + add %.0f)\n\n",
              plan.converters_changed, plan.total_s() * 1e3, plan.ocs_s * 1e3,
              plan.delete_s * 1e3, plan.add_s * 1e3);

  std::printf("time_s   goodput_gbps   phase\n");
  std::uint64_t last = 0;
  bool converted = false;
  for (int bin = 1; bin <= 24; ++bin) {
    const double t = bin * 0.5;
    if (!converted && t > 6.0) {
      sim.apply_conversion(
          global.graph(),
          [&](std::uint32_t flow) {
            return global.paths().server_paths(NodeId{pairs[flow].first},
                                               NodeId{pairs[flow].second});
          },
          plan.total_s());
      converted = true;
    }
    sim.run_until(t);
    const std::uint64_t bytes = sim.total_bytes_acked();
    std::printf("%5.1f    %8.3f       %s\n", t,
                static_cast<double>(bytes - last) * 8 / 0.5 / 1e9,
                !converted          ? "clos"
                : t < 6.0 + plan.total_s() + 2.5 ? "global (converging)"
                                                 : "global");
    last = bytes;
  }
  return 0;
}
