// flattree_cli — command-line front end for the library.
//
//   flattree_cli info <preset>                 Table-2 style summary + modes
//   flattree_cli dot <preset> <mode>           Graphviz DOT on stdout
//   flattree_cli profile <preset>              (m, n) profiling sweep (§3.4)
//   flattree_cli plan <preset> <from> <to>     conversion plan + Table-3 delay
//   flattree_cli rates <preset> <mode> <pattern>
//                                              fluid throughput (permutation |
//                                              stride | hotspot | shuffle)
//   flattree_cli gen-trace <preset> <trace>    workload CSV on stdout
//                                              (hadoop1|hadoop2|web|cache)
//   flattree_cli advise <preset> < flows.csv   recommend per-Pod modes for a
//                                              measured workload (§5.2)
//
// Presets: topo-1..topo-6, testbed. Modes: clos, local, global.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>

#include "control/advisor.h"
#include "control/controller.h"
#include "core/flat_tree.h"
#include "core/profiling.h"
#include "net/dot.h"
#include "net/stats.h"
#include "routing/ksp.h"
#include "sim/fluid.h"
#include "topo/params.h"
#include "traffic/io.h"
#include "traffic/patterns.h"
#include "traffic/traces.h"

using namespace flattree;

namespace {

ClosParams preset(const std::string& name) {
  return name == "testbed" ? ClosParams::testbed() : ClosParams::preset(name);
}

PodMode mode(const std::string& name) {
  if (name == "clos") return PodMode::kClos;
  if (name == "local") return PodMode::kLocal;
  if (name == "global") return PodMode::kGlobal;
  throw std::invalid_argument("unknown mode: " + name +
                              " (use clos|local|global)");
}

int cmd_info(const std::string& preset_name) {
  const ClosParams clos = preset(preset_name);
  const FlatTree tree{FlatTreeParams::defaults_for(clos)};
  std::printf("%s: %u pods, %u edge + %u agg + %u core switches, %u servers\n"
              "edge OR %.1f:1, agg OR %.1f:1, default (m,n) = (%u,%u), "
              "%zu converter switches\n\n",
              preset_name.c_str(), clos.pods, clos.total_edges(),
              clos.total_aggs(), clos.cores, clos.total_servers(),
              clos.edge_oversubscription(), clos.agg_oversubscription(),
              tree.params().m(), tree.params().n(), tree.converters().size());
  for (const PodMode m : {PodMode::kClos, PodMode::kLocal, PodMode::kGlobal}) {
    const Graph g = tree.realize_uniform(m);
    const PathLengthStats stats = compute_path_length_stats(g);
    std::printf("%-7s mode: avg server-pair %.3f hops, diameter %u\n",
                to_string(m), stats.avg_server_pair_hops, stats.diameter);
  }
  return 0;
}

int cmd_dot(const std::string& preset_name, const std::string& mode_name,
            bool servers) {
  const FlatTree tree{FlatTreeParams::defaults_for(preset(preset_name))};
  DotOptions options;
  options.include_servers = servers;
  write_dot(std::cout, tree.realize_uniform(mode(mode_name)), options);
  return 0;
}

int cmd_profile(const std::string& preset_name) {
  const ClosParams clos = preset(preset_name);
  const std::uint32_t stride = clos.core_connectors_per_edge() > 6 ? 2 : 1;
  const MnProfile profile =
      profile_mn(clos, WiringPattern::kPattern1, stride);
  std::printf("m     n     avg-server-hops\n");
  for (const MnCandidate& c : profile.candidates) {
    std::printf("%-5u %-5u %.4f%s\n", c.m, c.n, c.avg_server_pair_hops,
                c.m == profile.best.m && c.n == profile.best.n ? "  <- best"
                                                               : "");
  }
  return 0;
}

int cmd_plan(const std::string& preset_name, const std::string& from_name,
             const std::string& to_name) {
  FlatTreeParams params = FlatTreeParams::defaults_for(preset(preset_name));
  ControllerOptions options;
  options.k_global = options.k_local = options.k_clos = 4;
  const Controller ctl{FlatTree{params}, options};
  const CompiledMode from = ctl.compile_uniform(mode(from_name));
  const CompiledMode to = ctl.compile_uniform(mode(to_name));
  const ConversionReport r = ctl.plan_conversion(from, to);
  std::printf("%s -> %s: %u converters reconfigure\n"
              "rules: delete %llu, add %llu (per busiest switch)\n"
              "delay: OCS %.0f ms + delete %.0f ms + add %.0f ms = %.0f ms\n",
              from_name.c_str(), to_name.c_str(), r.converters_changed,
              static_cast<unsigned long long>(r.rules_deleted),
              static_cast<unsigned long long>(r.rules_added), r.ocs_s * 1e3,
              r.delete_s * 1e3, r.add_s * 1e3, r.total_s() * 1e3);
  return 0;
}

int cmd_rates(const std::string& preset_name, const std::string& mode_name,
              const std::string& pattern) {
  const ClosParams clos = preset(preset_name);
  const FlatTree tree{FlatTreeParams::defaults_for(clos)};
  const Graph g = tree.realize_uniform(mode(mode_name));
  Rng rng{2024};
  Workload flows;
  if (pattern == "permutation") {
    flows = permutation_traffic(clos.total_servers(), rng);
  } else if (pattern == "stride") {
    flows = pod_stride_traffic(clos.total_servers(),
                               clos.servers_per_edge * clos.edge_per_pod);
  } else if (pattern == "hotspot") {
    flows = hot_spot_traffic(clos.total_servers(),
                             std::min(100u, clos.total_servers() / 2));
  } else if (pattern == "shuffle") {
    flows = many_to_many_traffic(clos.total_servers(),
                                 std::min(20u, clos.total_servers() / 2));
  } else {
    throw std::invalid_argument("unknown pattern: " + pattern);
  }
  auto cache = std::make_shared<PathCache>(g, 8);
  FluidSimulator sim{g, [cache](NodeId s, NodeId d, std::uint32_t) {
                       return cache->server_paths(s, d);
                     }};
  const auto rates = sim.measure_rates(flows);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  const double worst = *std::min_element(rates.begin(), rates.end());
  std::printf("%zu flows: total %.1f Gb/s, mean %.2f Gb/s, min %.2f Gb/s\n",
              flows.size(), total / 1e9,
              total / static_cast<double>(flows.size()) / 1e9, worst / 1e9);
  return 0;
}

int cmd_gen_trace(const std::string& preset_name, const std::string& which) {
  TraceParams trace = which == "hadoop1"   ? TraceParams::hadoop1()
                      : which == "hadoop2" ? TraceParams::hadoop2()
                      : which == "cache"   ? TraceParams::cache()
                      : which == "web"
                          ? TraceParams::web()
                          : throw std::invalid_argument("unknown trace: " +
                                                        which);
  trace.duration_s = 1.0;
  write_workload_csv(std::cout, generate_trace(preset(preset_name), trace));
  return 0;
}

int cmd_advise(const std::string& preset_name) {
  const ClosParams clos = preset(preset_name);
  const Workload flows = read_workload_csv(std::cin);
  const Advice advice = advise_modes(clos, flows);
  std::printf("pod   rack%%   pod%%    inter%%  bytes         mode\n");
  for (std::size_t pod = 0; pod < advice.per_pod.size(); ++pod) {
    const PodTrafficProfile& p = advice.per_pod[pod];
    const double total = std::max(p.total_bytes, 1.0);
    std::printf("%-5zu %-7.1f %-7.1f %-7.1f %-13.3g %s\n", pod,
                p.intra_rack / total * 100,
                p.intra_pod / total * 100, p.inter_pod / total * 100,
                p.total_bytes,
                to_string(advice.assignment.pod_modes[pod]));
  }
  std::printf("\nuniform recommendation: %s mode\n",
              to_string(advice.uniform));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: flattree_cli <command> ...\n"
               "  info <preset>\n"
               "  dot <preset> <mode> [--no-servers]\n"
               "  profile <preset>\n"
               "  plan <preset> <from-mode> <to-mode>\n"
               "  rates <preset> <mode> <permutation|stride|hotspot|shuffle>\n"
               "  gen-trace <preset> <hadoop1|hadoop2|web|cache>\n"
               "  advise <preset> < flows.csv\n"
               "presets: topo-1..topo-6, testbed; modes: clos, local, global\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "info" && argc == 3) return cmd_info(argv[2]);
    if (cmd == "dot" && argc >= 4) {
      const bool servers = !(argc > 4 && std::strcmp(argv[4], "--no-servers") == 0);
      return cmd_dot(argv[2], argv[3], servers);
    }
    if (cmd == "profile" && argc == 3) return cmd_profile(argv[2]);
    if (cmd == "plan" && argc == 5) return cmd_plan(argv[2], argv[3], argv[4]);
    if (cmd == "rates" && argc == 5) return cmd_rates(argv[2], argv[3], argv[4]);
    if (cmd == "gen-trace" && argc == 4) return cmd_gen_trace(argv[2], argv[3]);
    if (cmd == "advise" && argc == 3) return cmd_advise(argv[2]);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
