#!/usr/bin/env bash
# CI gate: tier-1 verify (build + full ctest — which now includes the
# golden-file benchmark gates and the cross-thread observability
# determinism check) plus one sanitizer-preset build so the sanitize/tsan
# configurations actually gate changes instead of bit-rotting.
#
# Usage: scripts/ci.sh [sanitize-preset]
#   sanitize-preset   'tsan' (default) or 'sanitize' (ASan+UBSan).
#                     The preset is configured, the threaded exec and
#                     observability tests are built and run under it, and —
#                     for tsan — one bench is driven multithreaded with
#                     metrics+tracing attached to stress concurrent
#                     recording alongside the nested fan-out.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE_PRESET="${1:-tsan}"
JOBS="$(nproc)"

echo "== tier-1: configure + build + ctest (preset: default) =="
cmake --preset default
cmake --build --preset default -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== golden-file gate (explicit, fails loudly on drift) =="
ctest --test-dir build --output-on-failure -R 'golden_|obs_determinism'

echo "== sanitizer gate (preset: ${SANITIZE_PRESET}) =="
cmake --preset "${SANITIZE_PRESET}"
cmake --build "build-${SANITIZE_PRESET}" -j "${JOBS}" \
  --target test_exec test_obs test_ksp_properties test_event_queue \
           test_packet_diff test_conversion_exec test_conversion_storm \
           test_autopilot test_hierarchy test_warm_repair_diff \
           test_fluid_incremental_diff \
           test_scenario_parse test_scenario_roundtrip test_scenario_diff
"./build-${SANITIZE_PRESET}/tests/test_exec"
"./build-${SANITIZE_PRESET}/tests/test_obs"
"./build-${SANITIZE_PRESET}/tests/test_ksp_properties"
# The pooled event engine's property/fuzz battery and the engine
# differential (which also drives ShardedPacketSim across a pool, the
# TSan-relevant path).
"./build-${SANITIZE_PRESET}/tests/test_event_queue"
"./build-${SANITIZE_PRESET}/tests/test_packet_diff"
# The staged-conversion chaos battery (seeded adversary: lossy channel,
# dead switches, failed OCS partitions) — every trial must land fully
# converted or fully rolled back, sanitizer-clean.
"./build-${SANITIZE_PRESET}/tests/test_conversion_exec"
# Conversion under fire: storms folded mid-step, compound faults (OCS
# partition + link failure in the same tick), seeded controller failover —
# every execution must terminate bit-for-bit on a checkpointed mode,
# sanitizer-clean.
"./build-${SANITIZE_PRESET}/tests/test_conversion_storm"
# The closed loop: estimator folds, candidate pricing (nested fluid runs),
# decision-log replay and staged conversions, sanitizer-clean.
"./build-${SANITIZE_PRESET}/tests/test_autopilot"
# The two-level control plane: heartbeat/partition state machine, Pod-local
# repair + journal replay, root failover, and the compound same-tick
# control-fault fuzz (partition + root crash + link failure), every run
# terminating bit-for-bit on a checkpointed mode — sanitizer-clean.
"./build-${SANITIZE_PRESET}/tests/test_hierarchy"
# Warm-vs-legacy repair eviction differential on fuzzed failure streams.
"./build-${SANITIZE_PRESET}/tests/test_warm_repair_diff"
# The incremental-allocator differential oracle: fuzzed event streams with
# bitwise rate comparison against from-scratch progressive filling, plus
# the cross-thread metric invariance case (pool-fanned cells recording
# fluid.realloc.* concurrently — the TSan-relevant path).
"./build-${SANITIZE_PRESET}/tests/test_fluid_incremental_diff"
# The scenario DSL: the malformed-spec battery (exact diagnostics), the
# parse -> canonical -> parse fixed-point fuzz, and the differential pin
# against bench_failure_recovery's pipeline — all sanitizer-clean.
"./build-${SANITIZE_PRESET}/tests/test_scenario_parse"
"./build-${SANITIZE_PRESET}/tests/test_scenario_roundtrip"
"./build-${SANITIZE_PRESET}/tests/test_scenario_diff"

if [ "${SANITIZE_PRESET}" = "tsan" ]; then
  cmake --build build-tsan -j "${JOBS}" \
    --target bench_ablation_mn bench_failure_recovery bench_conversion_churn \
             bench_conversion_storm bench_control_partition bench_autopilot \
             bench_fluid_incremental bench_scenarios
  ./build-tsan/bench/bench_ablation_mn --threads 4 --json-out none \
    > /dev/null
  # Concurrent metric/trace recording from pool workers under TSan.
  obs_tmp="$(mktemp -d)"
  ./build-tsan/bench/bench_failure_recovery --threads 4 --json-out none \
    --metrics-out "${obs_tmp}/metrics.json" \
    --trace-out "${obs_tmp}/trace.json" > /dev/null
  # Six conversion-executor cells (each running both simulators) fanned
  # across pool workers, recording conv_exec.* metrics concurrently.
  ./build-tsan/bench/bench_conversion_churn --threads 4 --json-out none \
    --metrics-out "${obs_tmp}/churn_metrics.json" \
    --trace-out "${obs_tmp}/churn_trace.json" > /dev/null
  # Ten storm cells (checkpointed + rollback protocols under flap storms,
  # control loss and failover) fanned across pool workers, with the packet
  # replay and conv_exec.replan/checkpoint/failover metrics recording
  # concurrently.
  ./build-tsan/bench/bench_conversion_storm --threads 4 --json-out none \
    --metrics-out "${obs_tmp}/storm_metrics.json" \
    --trace-out "${obs_tmp}/storm_trace.json" > /dev/null
  # Eight partition cells (hierarchical + flat control planes under
  # islands, storms, loss and root crashes) fanned across pool workers,
  # each driving a delegated staged conversion while ctrl.hier.* metrics
  # record concurrently.
  ./build-tsan/bench/bench_control_partition --threads 4 --json-out none \
    --metrics-out "${obs_tmp}/ctrl_part_metrics.json" \
    --trace-out "${obs_tmp}/ctrl_part_trace.json" > /dev/null
  # Twelve autopilot cells (closed loop, statics, oracle, thrash arms)
  # fanned across pool workers, each cell nesting fluid pricing runs and
  # staged conversions while autopilot.* metrics record concurrently.
  ./build-tsan/bench/bench_autopilot --threads 4 --json-out none \
    --metrics-out "${obs_tmp}/autopilot_metrics.json" \
    --trace-out "${obs_tmp}/autopilot_trace.json" > /dev/null
  # Incremental-vs-scratch lockstep cells fanned across pool workers (each
  # asserting bitwise rate equality) while fluid.realloc.* counters record
  # concurrently.
  ./build-tsan/bench/bench_fluid_incremental --quick --threads 4 \
    --json-out none \
    --metrics-out "${obs_tmp}/fluid_inc_metrics.json" \
    --trace-out "${obs_tmp}/fluid_inc_trace.json" > /dev/null
  # The whole scenario battery — every engine (fluid plain/repair/reroute/
  # conversion, packet, sharded packet, autopilot) fanned across pool
  # workers with metrics+tracing recording concurrently.
  ./build-tsan/bench/bench_scenarios scenarios --threads 4 --json-out none \
    --metrics-out "${obs_tmp}/scenarios_metrics.json" \
    --trace-out "${obs_tmp}/scenarios_trace.json" > /dev/null
  rm -rf "${obs_tmp}"
fi

echo "== ci.sh: all gates passed =="
