#!/usr/bin/env bash
# CI gate: tier-1 verify (build + full ctest) plus one sanitizer-preset
# build so the sanitize/tsan configurations actually gate changes instead
# of bit-rotting.
#
# Usage: scripts/ci.sh [sanitize-preset]
#   sanitize-preset   'tsan' (default) or 'sanitize' (ASan+UBSan).
#                     The preset is configured, the threaded exec tests are
#                     built and run under it, and — for tsan — one bench is
#                     driven multithreaded to stress the nested fan-out.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE_PRESET="${1:-tsan}"
JOBS="$(nproc)"

echo "== tier-1: configure + build + ctest (preset: default) =="
cmake --preset default
cmake --build --preset default -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== sanitizer gate (preset: ${SANITIZE_PRESET}) =="
cmake --preset "${SANITIZE_PRESET}"
cmake --build "build-${SANITIZE_PRESET}" --target test_exec -j "${JOBS}"
"./build-${SANITIZE_PRESET}/tests/test_exec"

if [ "${SANITIZE_PRESET}" = "tsan" ]; then
  cmake --build build-tsan --target bench_ablation_mn -j "${JOBS}"
  ./build-tsan/bench/bench_ablation_mn --threads 4 --json-out none \
    > /dev/null
fi

echo "== ci.sh: all gates passed =="
