// Dense two-phase primal simplex.
//
// The evaluation methodology of §5.1 (and of the Jellyfish study it follows)
// computes optimal-routing throughput bounds by solving path-based
// multi-commodity-flow linear programs. This is a self-contained LP solver
// for those programs: maximize c^T x subject to mixed <= / >= / = row
// constraints and x >= 0.
//
// The implementation is a classic tableau method: phase 1 drives artificial
// variables to zero to find a basic feasible solution, phase 2 optimizes the
// real objective. Dantzig pricing with an automatic switch to Bland's rule
// guards against cycling. Suitable for the reduced-scale instances the
// benchmarks use (hundreds of rows, a few thousand columns); the scalable
// companion for the max-min objective is the progressive-filling allocator
// in mcf.h.
#pragma once

#include <cstdint>
#include <vector>

namespace flattree {

enum class ConstraintSense : std::uint8_t { kLe, kGe, kEq };

struct LpConstraint {
  // Sparse row: (variable index, coefficient).
  std::vector<std::pair<std::uint32_t, double>> terms;
  ConstraintSense sense{ConstraintSense::kLe};
  double rhs{0.0};
};

struct LpProblem {
  std::uint32_t num_vars{0};
  std::vector<double> objective;  // size num_vars; maximized
  std::vector<LpConstraint> constraints;
};

enum class LpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpSolution {
  LpStatus status{LpStatus::kIterationLimit};
  double objective{0.0};
  std::vector<double> x;
};

class SimplexSolver {
 public:
  struct Options {
    double eps{1e-8};
    std::uint64_t max_iterations{200000};
    // Iterations of Dantzig pricing before falling back to Bland's rule.
    std::uint64_t bland_after{20000};
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options options) : options_{options} {}

  [[nodiscard]] LpSolution solve(const LpProblem& problem) const;

 private:
  Options options_{};
};

}  // namespace flattree
