// Glue between graphs/paths and the MCF models: builds an McfInstance from
// per-flow path sets over a LogicalTopology, compressing edges down to the
// ones actually used so LP row counts stay proportional to the workload.
#pragma once

#include <span>
#include <vector>

#include "lp/mcf.h"
#include "net/capacity.h"
#include "net/graph.h"
#include "routing/path.h"

namespace flattree {

struct FlowPaths {
  NodeId src{};
  NodeId dst{};
  std::vector<Path> paths;  // server-to-server node paths
};

// Builds the MCF instance: every directed logical edge used by any path
// becomes a capacity row; each flow becomes a commodity over its paths.
[[nodiscard]] McfInstance build_mcf_instance(const LogicalTopology& topo,
                                             std::span<const FlowPaths> flows);

}  // namespace flattree
