#include "lp/mcf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace flattree {
namespace {

void validate(const McfInstance& instance) {
  for (const McfCommodity& c : instance.commodities) {
    if (c.paths.empty()) {
      throw std::invalid_argument("mcf: commodity with no paths");
    }
    for (const auto& path : c.paths) {
      for (std::uint32_t e : path) {
        if (e >= instance.capacity.size()) {
          throw std::invalid_argument("mcf: edge index out of range");
        }
      }
    }
  }
}

// Variable layout shared by both LP formulations: one rate variable per
// (commodity, path), then optionally the max-min variable t at the end.
struct VarLayout {
  std::vector<std::uint32_t> first_var;  // per commodity
  std::uint32_t total{0};
};

VarLayout layout_vars(const McfInstance& instance) {
  VarLayout l;
  l.first_var.reserve(instance.commodities.size());
  for (const McfCommodity& c : instance.commodities) {
    l.first_var.push_back(l.total);
    l.total += static_cast<std::uint32_t>(c.paths.size());
  }
  return l;
}

void add_capacity_rows(const McfInstance& instance, const VarLayout& layout,
                       LpProblem& problem) {
  // One row per edge actually used by some path.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> rows(
      instance.capacity.size());
  for (std::size_t f = 0; f < instance.commodities.size(); ++f) {
    const McfCommodity& c = instance.commodities[f];
    for (std::size_t p = 0; p < c.paths.size(); ++p) {
      const std::uint32_t var =
          layout.first_var[f] + static_cast<std::uint32_t>(p);
      for (std::uint32_t e : c.paths[p]) {
        auto& row = rows[e];
        if (!row.empty() && row.back().first == var) {
          row.back().second += 1.0;  // path crosses the edge twice (unusual)
        } else {
          row.emplace_back(var, 1.0);
        }
      }
    }
  }
  for (std::size_t e = 0; e < rows.size(); ++e) {
    if (rows[e].empty()) continue;
    LpConstraint c;
    c.terms = std::move(rows[e]);
    c.sense = ConstraintSense::kLe;
    c.rhs = instance.capacity[e];
    problem.constraints.push_back(std::move(c));
  }
}

McfResult extract(const McfInstance& instance, const VarLayout& layout,
                  const LpSolution& solution) {
  McfResult result;
  if (solution.status != LpStatus::kOptimal) return result;
  result.feasible = true;
  result.min_rate = std::numeric_limits<double>::infinity();
  double total = 0;
  result.flow_rate.resize(instance.commodities.size(), 0.0);
  result.path_rates.resize(instance.commodities.size());
  for (std::size_t f = 0; f < instance.commodities.size(); ++f) {
    const McfCommodity& c = instance.commodities[f];
    result.path_rates[f].resize(c.paths.size(), 0.0);
    for (std::size_t p = 0; p < c.paths.size(); ++p) {
      const double rate = solution.x[layout.first_var[f] + p];
      result.path_rates[f][p] = rate;
      result.flow_rate[f] += rate;
    }
    total += result.flow_rate[f];
    result.min_rate = std::min(result.min_rate, result.flow_rate[f]);
  }
  result.avg_rate =
      instance.commodities.empty()
          ? 0.0
          : total / static_cast<double>(instance.commodities.size());
  return result;
}

}  // namespace

McfResult solve_lp_min(const McfInstance& instance,
                       const SimplexSolver& solver) {
  validate(instance);
  if (instance.commodities.empty()) return McfResult{true, 0, 0, {}, {}};
  const VarLayout layout = layout_vars(instance);

  LpProblem problem;
  problem.num_vars = layout.total + 1;  // + t
  const std::uint32_t t_var = layout.total;
  problem.objective.assign(problem.num_vars, 0.0);
  problem.objective[t_var] = 1.0;

  add_capacity_rows(instance, layout, problem);
  for (std::size_t f = 0; f < instance.commodities.size(); ++f) {
    LpConstraint c;
    for (std::size_t p = 0; p < instance.commodities[f].paths.size(); ++p) {
      c.terms.emplace_back(layout.first_var[f] + p, 1.0);
    }
    c.terms.emplace_back(t_var, -1.0);
    c.sense = ConstraintSense::kGe;
    c.rhs = 0.0;
    problem.constraints.push_back(std::move(c));
  }

  const LpSolution solution = solver.solve(problem);
  McfResult result = extract(instance, layout, solution);
  if (result.feasible) {
    // The paper's LP-minimum allocates no residual bandwidth: every flow's
    // rate is exactly t*. Report rates accordingly (the per-path split is
    // whatever the LP chose, scaled is unnecessary; only totals matter).
    const double t = solution.x[t_var];
    result.min_rate = t;
    result.avg_rate = t;
    for (double& r : result.flow_rate) r = t;
  }
  return result;
}

McfResult solve_lp_avg(const McfInstance& instance,
                       const SimplexSolver& solver) {
  validate(instance);
  if (instance.commodities.empty()) return McfResult{true, 0, 0, {}, {}};
  const VarLayout layout = layout_vars(instance);

  LpProblem problem;
  problem.num_vars = layout.total;
  problem.objective.assign(problem.num_vars, 1.0);
  add_capacity_rows(instance, layout, problem);

  const LpSolution solution = solver.solve(problem);
  return extract(instance, layout, solution);
}

McfResult solve_max_min_fill(const McfInstance& instance) {
  validate(instance);
  McfResult result;
  result.feasible = true;
  result.flow_rate.assign(instance.commodities.size(), 0.0);
  result.path_rates.resize(instance.commodities.size());

  // Subflow table.
  struct Subflow {
    std::uint32_t commodity;
    std::uint32_t path;
    double rate{0.0};
    bool frozen{false};
  };
  std::vector<Subflow> subflows;
  for (std::size_t f = 0; f < instance.commodities.size(); ++f) {
    result.path_rates[f].assign(instance.commodities[f].paths.size(), 0.0);
    for (std::size_t p = 0; p < instance.commodities[f].paths.size(); ++p) {
      subflows.push_back(Subflow{static_cast<std::uint32_t>(f),
                                 static_cast<std::uint32_t>(p)});
    }
  }

  // Per-edge: residual capacity and active subflow count.
  std::vector<double> residual = instance.capacity;
  std::vector<std::uint32_t> active(instance.capacity.size(), 0);
  std::vector<std::vector<std::uint32_t>> edge_subflows(
      instance.capacity.size());
  for (std::size_t s = 0; s < subflows.size(); ++s) {
    const auto& path =
        instance.commodities[subflows[s].commodity].paths[subflows[s].path];
    for (std::uint32_t e : path) {
      ++active[e];
      edge_subflows[e].push_back(static_cast<std::uint32_t>(s));
    }
  }

  const auto freeze_edge_subflows = [&](std::size_t e,
                                        std::size_t& unfrozen_count) {
    for (std::uint32_t s : edge_subflows[e]) {
      if (subflows[s].frozen) continue;
      subflows[s].frozen = true;
      --unfrozen_count;
      const auto& path =
          instance.commodities[subflows[s].commodity].paths[subflows[s].path];
      for (std::uint32_t pe : path) --active[pe];
    }
  };

  std::size_t unfrozen = subflows.size();
  while (unfrozen > 0) {
    // Tightest edge determines the uniform increment.
    double delta = std::numeric_limits<double>::infinity();
    std::size_t argmin = residual.size();
    for (std::size_t e = 0; e < residual.size(); ++e) {
      if (active[e] == 0) continue;
      const double headroom = residual[e] / active[e];
      if (headroom < delta) {
        delta = headroom;
        argmin = e;
      }
    }
    if (!std::isfinite(delta)) break;  // no capacity-constrained subflows left
    delta = std::max(delta, 0.0);

    for (Subflow& s : subflows) {
      if (!s.frozen) s.rate += delta;
    }
    for (std::size_t e = 0; e < residual.size(); ++e) {
      if (active[e] > 0) residual[e] = std::max(0.0, residual[e] - delta * active[e]);
    }
    // Freeze every subflow crossing a saturated edge.
    const std::size_t before = unfrozen;
    for (std::size_t e = 0; e < residual.size(); ++e) {
      if (active[e] == 0 || residual[e] > 1e-9 * instance.capacity[e] + 1e-12) {
        continue;
      }
      freeze_edge_subflows(e, unfrozen);
    }
    // Guaranteed progress even under floating-point residue.
    if (unfrozen == before) freeze_edge_subflows(argmin, unfrozen);
  }

  result.min_rate = std::numeric_limits<double>::infinity();
  double total = 0;
  for (const Subflow& s : subflows) {
    result.path_rates[s.commodity][s.path] = s.rate;
    result.flow_rate[s.commodity] += s.rate;
  }
  for (double r : result.flow_rate) {
    result.min_rate = std::min(result.min_rate, r);
    total += r;
  }
  if (instance.commodities.empty()) {
    result.min_rate = 0;
  } else {
    result.avg_rate = total / static_cast<double>(instance.commodities.size());
  }
  return result;
}

McfResult solve_mptcp_model(const McfInstance& instance,
                            const SimplexSolver& solver) {
  McfResult base = solve_lp_min(instance, solver);
  if (!base.feasible) return base;

  // Consume the LP's allocation, then let every subflow fill what is left.
  McfInstance residual = instance;
  for (std::size_t f = 0; f < instance.commodities.size(); ++f) {
    const McfCommodity& c = instance.commodities[f];
    for (std::size_t p = 0; p < c.paths.size(); ++p) {
      for (std::uint32_t e : c.paths[p]) {
        residual.capacity[e] =
            std::max(0.0, residual.capacity[e] - base.path_rates[f][p]);
      }
    }
  }
  const McfResult extra = solve_max_min_fill(residual);

  McfResult result;
  result.feasible = true;
  result.min_rate = std::numeric_limits<double>::infinity();
  double total = 0;
  result.flow_rate.resize(instance.commodities.size(), 0.0);
  result.path_rates.resize(instance.commodities.size());
  for (std::size_t f = 0; f < instance.commodities.size(); ++f) {
    result.path_rates[f].resize(instance.commodities[f].paths.size(), 0.0);
    for (std::size_t p = 0; p < result.path_rates[f].size(); ++p) {
      result.path_rates[f][p] =
          base.path_rates[f][p] + extra.path_rates[f][p];
      result.flow_rate[f] += result.path_rates[f][p];
    }
    result.min_rate = std::min(result.min_rate, result.flow_rate[f]);
    total += result.flow_rate[f];
  }
  if (instance.commodities.empty()) {
    result.min_rate = 0;
  } else {
    result.avg_rate = total / static_cast<double>(instance.commodities.size());
  }
  return result;
}

McfResult solve_equal_split_fill(const McfInstance& instance) {
  validate(instance);
  McfResult result;
  result.feasible = true;
  const std::size_t num_flows = instance.commodities.size();
  result.flow_rate.assign(num_flows, 0.0);
  result.path_rates.resize(num_flows);

  // Per-edge: accumulated coefficient of each flow (1/k per crossing path)
  // and the flows that touch it.
  std::vector<double> residual = instance.capacity;
  std::vector<double> active_coeff(instance.capacity.size(), 0.0);
  std::vector<std::vector<std::pair<std::uint32_t, double>>> edge_flows(
      instance.capacity.size());
  std::vector<bool> frozen(num_flows, false);
  std::vector<std::vector<std::pair<std::uint32_t, double>>> flow_edges(
      num_flows);

  for (std::size_t f = 0; f < num_flows; ++f) {
    const McfCommodity& c = instance.commodities[f];
    result.path_rates[f].assign(c.paths.size(), 0.0);
    const double share = 1.0 / static_cast<double>(c.paths.size());
    std::unordered_map<std::uint32_t, double> coeff;
    for (const auto& path : c.paths) {
      for (std::uint32_t e : path) coeff[e] += share;
    }
    for (const auto& [e, w] : coeff) {
      flow_edges[f].emplace_back(e, w);
      edge_flows[e].emplace_back(static_cast<std::uint32_t>(f), w);
      active_coeff[e] += w;
    }
  }

  const auto freeze_edge_flows = [&](std::size_t e,
                                     std::size_t& unfrozen_count) {
    for (const auto& [f, w] : edge_flows[e]) {
      (void)w;
      if (frozen[f]) continue;
      frozen[f] = true;
      --unfrozen_count;
      for (const auto& [fe, fw] : flow_edges[f]) active_coeff[fe] -= fw;
    }
  };

  std::size_t unfrozen = num_flows;
  while (unfrozen > 0) {
    double delta = std::numeric_limits<double>::infinity();
    std::size_t argmin = residual.size();
    for (std::size_t e = 0; e < residual.size(); ++e) {
      if (active_coeff[e] <= 1e-12) continue;
      const double headroom = residual[e] / active_coeff[e];
      if (headroom < delta) {
        delta = headroom;
        argmin = e;
      }
    }
    if (!std::isfinite(delta)) break;  // remaining flows are unconstrained
    delta = std::max(delta, 0.0);

    for (std::size_t f = 0; f < num_flows; ++f) {
      if (!frozen[f]) result.flow_rate[f] += delta;
    }
    for (std::size_t e = 0; e < residual.size(); ++e) {
      residual[e] = std::max(0.0, residual[e] - delta * active_coeff[e]);
    }
    const std::size_t before = unfrozen;
    for (std::size_t e = 0; e < residual.size(); ++e) {
      if (active_coeff[e] <= 1e-12 ||
          residual[e] > 1e-9 * instance.capacity[e] + 1e-12) {
        continue;
      }
      freeze_edge_flows(e, unfrozen);
    }
    // Guaranteed progress: floating-point residue can leave the binding
    // edge fractionally above the freeze threshold; freeze it explicitly.
    if (unfrozen == before) freeze_edge_flows(argmin, unfrozen);
  }

  result.min_rate = std::numeric_limits<double>::infinity();
  double total = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    const double share =
        result.flow_rate[f] /
        static_cast<double>(instance.commodities[f].paths.size());
    for (double& pr : result.path_rates[f]) pr = share;
    result.min_rate = std::min(result.min_rate, result.flow_rate[f]);
    total += result.flow_rate[f];
  }
  if (num_flows == 0) {
    result.min_rate = 0;
  } else {
    result.avg_rate = total / static_cast<double>(num_flows);
  }
  return result;
}

}  // namespace flattree
