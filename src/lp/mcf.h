// Path-based multi-commodity-flow throughput models (§5.1 methodology).
//
// Each commodity (flow) is given a fixed set of candidate paths (from
// k-shortest-path routing); the model chooses per-path rates subject to
// directed-edge capacities. Two LP objectives match the paper exactly:
//
//   "LP minimum"  maximize t  s.t.  sum of a flow's path rates >= t
//                 (ideal load balancing; the paper then stops allocating
//                 residual bandwidth, so every flow's rate is exactly t*)
//   "LP average"  maximize the total (equivalently average) rate
//                 (best utilization; can starve flows to zero)
//
// A third allocator, progressive filling at subflow granularity, is the
// scalable stand-in used by the fluid simulator and by full-scale runs: it
// is exact max-min over subflows and mirrors what per-path congestion
// control converges to.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/simplex.h"

namespace flattree {

struct McfCommodity {
  // Each path is a list of directed-edge indices into McfInstance::capacity.
  std::vector<std::vector<std::uint32_t>> paths;
};

struct McfInstance {
  std::vector<double> capacity;  // per directed edge
  std::vector<McfCommodity> commodities;
};

struct McfResult {
  bool feasible{false};
  double min_rate{0.0};
  double avg_rate{0.0};
  std::vector<double> flow_rate;                // per commodity
  std::vector<std::vector<double>> path_rates;  // per commodity, per path
};

// LP: maximize the minimum flow rate (all flows end up at exactly t*).
[[nodiscard]] McfResult solve_lp_min(const McfInstance& instance,
                                     const SimplexSolver& solver = SimplexSolver{});

// LP: maximize the total rate.
[[nodiscard]] McfResult solve_lp_avg(const McfInstance& instance,
                                     const SimplexSolver& solver = SimplexSolver{});

// Progressive filling: every subflow (commodity, path) ramps up at the same
// rate; a subflow freezes when any edge it crosses saturates. Exact max-min
// over subflows; a flow's rate is the sum of its subflow rates. O(E^2) in
// the number of distinct saturated edges.
//
// Note: at subflow granularity extra paths always attract extra traffic,
// including long detours that waste capacity — which is NOT how coupled
// MPTCP behaves. Use it as an optimal-routing throughput proxy; use
// solve_equal_split_fill as the MPTCP model.
[[nodiscard]] McfResult solve_max_min_fill(const McfInstance& instance);

// Equal-split flow-level progressive filling: each flow spreads its rate
// uniformly over its paths (rate/k per path) and all unfrozen flows ramp
// together; a flow freezes when any edge it touches saturates. A simple
// conservative flow-level fairness model (static 1/k splitting).
[[nodiscard]] McfResult solve_equal_split_fill(const McfInstance& instance);

// Fluid model of k-shortest-path routing + coupled MPTCP, matching the
// empirical behaviour in §5.1: congestion-aware splitting drives every flow
// to (at least) the max-min fair rate — the LP-minimum allocation with
// optimal path splits — and congestion control then opportunistically
// consumes residual capacity where it exists (unlike LP-minimum, which
// stops). Computed as solve_lp_min followed by progressive filling on the
// residual capacities. Average throughput therefore lands between the
// LP-minimum and LP-average bounds, and larger k helps by enlarging the
// LP's split options — exactly the Figure 6 shape.
[[nodiscard]] McfResult solve_mptcp_model(
    const McfInstance& instance,
    const SimplexSolver& solver = SimplexSolver{});

}  // namespace flattree
