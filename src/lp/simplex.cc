#include "lp/simplex.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace flattree {
namespace {

// Row-major dense tableau with an extra objective row at the bottom and the
// RHS in the last column.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_{rows}, cols_{cols}, data_(rows * cols, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double pivot_value = at(pr, pc);
    double* prow = &data_[pr * cols_];
    const double inv = 1.0 / pivot_value;
    for (std::size_t c = 0; c < cols_; ++c) prow[c] *= inv;
    prow[pc] = 1.0;  // kill round-off on the pivot itself
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      double* row = &data_[r * cols_];
      const double factor = row[pc];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) row[c] -= factor * prow[c];
      row[pc] = 0.0;
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace

LpSolution SimplexSolver::solve(const LpProblem& problem) const {
  const double eps = options_.eps;
  const std::size_t n = problem.num_vars;
  const std::size_t m = problem.constraints.size();
  if (problem.objective.size() != n) {
    throw std::invalid_argument("simplex: objective size mismatch");
  }

  // Column layout: [0, n) structural, [n, n + m) slack/surplus (one per
  // constraint; unused entries stay zero), then artificials, then RHS.
  std::size_t num_artificial = 0;
  for (const LpConstraint& c : problem.constraints) {
    // After normalizing RHS >= 0, Ge and Eq rows need an artificial; Le rows
    // start feasible with their slack.
    const double rhs = c.rhs;
    const ConstraintSense sense =
        rhs >= 0 ? c.sense
                 : (c.sense == ConstraintSense::kLe   ? ConstraintSense::kGe
                    : c.sense == ConstraintSense::kGe ? ConstraintSense::kLe
                                                      : ConstraintSense::kEq);
    if (sense != ConstraintSense::kLe) ++num_artificial;
  }

  const std::size_t slack_base = n;
  const std::size_t art_base = n + m;
  const std::size_t total_cols = n + m + num_artificial + 1;
  const std::size_t rhs_col = total_cols - 1;
  // Rows: m constraints + phase objective row.
  Tableau tab(m + 1, total_cols);
  std::vector<std::size_t> basis(m);

  std::size_t next_art = art_base;
  for (std::size_t r = 0; r < m; ++r) {
    const LpConstraint& c = problem.constraints[r];
    const double sign = c.rhs >= 0 ? 1.0 : -1.0;
    ConstraintSense sense = c.sense;
    if (sign < 0) {
      sense = sense == ConstraintSense::kLe   ? ConstraintSense::kGe
              : sense == ConstraintSense::kGe ? ConstraintSense::kLe
                                              : ConstraintSense::kEq;
    }
    for (const auto& [var, coeff] : c.terms) {
      if (var >= n) throw std::invalid_argument("simplex: bad variable index");
      tab.at(r, var) += sign * coeff;
    }
    tab.at(r, rhs_col) = sign * c.rhs;
    switch (sense) {
      case ConstraintSense::kLe:
        tab.at(r, slack_base + r) = 1.0;
        basis[r] = slack_base + r;
        break;
      case ConstraintSense::kGe:
        tab.at(r, slack_base + r) = -1.0;
        tab.at(r, next_art) = 1.0;
        basis[r] = next_art++;
        break;
      case ConstraintSense::kEq:
        tab.at(r, next_art) = 1.0;
        basis[r] = next_art++;
        break;
    }
  }

  const std::size_t obj_row = m;
  const auto run_phase = [&](bool allow_artificial_entering) -> LpStatus {
    std::uint64_t iterations = 0;
    for (;;) {
      if (++iterations > options_.max_iterations) {
        return LpStatus::kIterationLimit;
      }
      const bool bland = iterations > options_.bland_after;
      // Entering column: positive reduced cost (objective row holds the
      // negated reduced costs of a maximization after elimination, so we
      // look for the most negative entry).
      std::size_t enter = total_cols;
      double best = -eps;
      const std::size_t limit =
          allow_artificial_entering ? rhs_col : art_base;
      for (std::size_t c = 0; c < limit; ++c) {
        const double v = tab.at(obj_row, c);
        if (v < best) {
          best = v;
          enter = c;
          if (bland) break;  // first improving column
        }
      }
      if (enter == total_cols) return LpStatus::kOptimal;

      // Ratio test.
      std::size_t leave = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m; ++r) {
        const double a = tab.at(r, enter);
        if (a <= eps) continue;
        const double ratio = tab.at(r, rhs_col) / a;
        if (ratio < best_ratio - eps ||
            (ratio < best_ratio + eps && leave != m &&
             basis[r] < basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
      if (leave == m) return LpStatus::kUnbounded;
      tab.pivot(leave, enter);
      basis[leave] = enter;
    }
  };

  // ---- Phase 1: minimize the artificial sum. --------------------------
  if (num_artificial > 0) {
    // Objective row = -(sum of artificial columns); eliminate basics.
    for (std::size_t c = art_base; c < art_base + num_artificial; ++c) {
      tab.at(obj_row, c) = 1.0;
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] >= art_base) {
        for (std::size_t c = 0; c < total_cols; ++c) {
          tab.at(obj_row, c) -= tab.at(r, c);
        }
      }
    }
    const LpStatus phase1 = run_phase(/*allow_artificial_entering=*/true);
    if (phase1 == LpStatus::kIterationLimit) {
      return LpSolution{LpStatus::kIterationLimit, 0.0, {}};
    }
    const double infeasibility = -tab.at(obj_row, rhs_col);
    if (infeasibility > 1e-6) {
      return LpSolution{LpStatus::kInfeasible, 0.0, {}};
    }
    // Drive remaining artificial basics out (degenerate rows).
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] < art_base) continue;
      std::size_t pivot_col = total_cols;
      for (std::size_t c = 0; c < art_base; ++c) {
        if (std::fabs(tab.at(r, c)) > eps) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col != total_cols) {
        tab.pivot(r, pivot_col);
        basis[r] = pivot_col;
      }
      // Otherwise the row is all-zero (redundant constraint) — harmless.
    }
  }

  // ---- Phase 2: the real objective. ------------------------------------
  for (std::size_t c = 0; c < total_cols; ++c) tab.at(obj_row, c) = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    tab.at(obj_row, c) = -problem.objective[c];
  }
  // Artificials may never re-enter: pin their reduced costs high.
  for (std::size_t c = art_base; c < art_base + num_artificial; ++c) {
    tab.at(obj_row, c) = 1.0;
  }
  for (std::size_t r = 0; r < m; ++r) {
    const double coeff = tab.at(obj_row, basis[r]);
    if (std::fabs(coeff) > 0.0) {
      for (std::size_t c = 0; c < total_cols; ++c) {
        tab.at(obj_row, c) -= coeff * tab.at(r, c);
      }
    }
  }
  const LpStatus phase2 = run_phase(/*allow_artificial_entering=*/false);
  if (phase2 == LpStatus::kUnbounded) {
    return LpSolution{LpStatus::kUnbounded, 0.0, {}};
  }
  if (phase2 == LpStatus::kIterationLimit) {
    return LpSolution{LpStatus::kIterationLimit, 0.0, {}};
  }

  LpSolution solution;
  solution.status = LpStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) solution.x[basis[r]] = tab.at(r, rhs_col);
  }
  solution.objective = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    solution.objective += problem.objective[c] * solution.x[c];
  }
  return solution;
}

}  // namespace flattree
