#include "lp/throughput.h"

#include <unordered_map>

namespace flattree {

McfInstance build_mcf_instance(const LogicalTopology& topo,
                               std::span<const FlowPaths> flows) {
  McfInstance instance;
  std::unordered_map<std::uint32_t, std::uint32_t> edge_row;  // directed -> row

  const auto row_for = [&](std::uint32_t directed) {
    const auto [it, inserted] =
        edge_row.try_emplace(directed,
                             static_cast<std::uint32_t>(instance.capacity.size()));
    if (inserted) instance.capacity.push_back(topo.capacity(directed));
    return it->second;
  };

  instance.commodities.reserve(flows.size());
  for (const FlowPaths& flow : flows) {
    McfCommodity commodity;
    commodity.paths.reserve(flow.paths.size());
    for (const Path& path : flow.paths) {
      std::vector<std::uint32_t> rows;
      for (std::uint32_t directed : topo.path_edges(path)) {
        rows.push_back(row_for(directed));
      }
      commodity.paths.push_back(std::move(rows));
    }
    instance.commodities.push_back(std::move(commodity));
  }
  return instance;
}

}  // namespace flattree
