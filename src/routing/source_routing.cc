#include "routing/source_routing.h"

#include <stdexcept>

namespace flattree {

PortMap::PortMap(const Graph& graph) : graph_{&graph} {
  to_port_.resize(graph.node_count());
  to_neighbor_.resize(graph.node_count());
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    for (const Adjacency& adj : graph.neighbors(node)) {
      // First link to a neighbor claims the port; parallel links share it.
      if (to_port_[i].contains(adj.peer)) continue;
      if (to_neighbor_[i].size() > 255) {
        throw std::invalid_argument("PortMap: more than 256 ports on a node");
      }
      to_port_[i].emplace(adj.peer,
                          static_cast<std::uint8_t>(to_neighbor_[i].size()));
      to_neighbor_[i].push_back(adj.peer);
    }
  }
}

std::uint8_t PortMap::port_to(NodeId sw, NodeId neighbor) const {
  const auto& ports = to_port_.at(sw.index());
  const auto it = ports.find(neighbor);
  if (it == ports.end()) {
    throw std::logic_error("PortMap::port_to: not adjacent");
  }
  return it->second;
}

std::optional<NodeId> PortMap::neighbor_at(NodeId sw, std::uint8_t port) const {
  const auto& neighbors = to_neighbor_.at(sw.index());
  if (port >= neighbors.size()) return std::nullopt;
  return neighbors[port];
}

std::size_t PortMap::port_count(NodeId sw) const {
  return to_neighbor_.at(sw.index()).size();
}

std::size_t PortMap::max_port_count() const {
  std::size_t best = 0;
  for (const auto& neighbors : to_neighbor_) {
    best = std::max(best, neighbors.size());
  }
  return best;
}

SourceRoute encode_route(const PortMap& ports, const Path& path) {
  if (path.size() < 2) {
    throw std::invalid_argument("encode_route: path too short");
  }
  SourceRoute route;
  // Hops are decisions made at switches: a leading server endpoint makes no
  // decision (its NIC has one port), so encoding starts at its attachment
  // switch. Every interior node is a switch by path validity.
  const std::size_t first =
      is_switch(ports.graph().node(path.front()).role) ? 0 : 1;
  for (std::size_t i = first; i + 1 < path.size(); ++i) {
    if (route.hop_count >= kMaxSourceRouteHops) {
      throw std::invalid_argument("encode_route: path exceeds 6 switch hops");
    }
    const std::uint8_t port = ports.port_to(path[i], path[i + 1]);
    const std::size_t shift = 8 * (5 - route.hop_count);
    route.mac |= static_cast<std::uint64_t>(port) << shift;
    ++route.hop_count;
  }
  return route;
}

std::uint8_t route_port_at(const SourceRoute& route, std::uint8_t ttl) {
  const std::size_t hop = static_cast<std::size_t>(kInitialTtl) - ttl;
  if (hop >= kMaxSourceRouteHops) {
    throw std::invalid_argument("route_port_at: TTL out of route range");
  }
  const std::size_t shift = 8 * (5 - hop);
  return static_cast<std::uint8_t>((route.mac >> shift) & 0xff);
}

std::vector<NodeId> replay_route(const Graph& graph, const PortMap& ports,
                                 const SourceRoute& route,
                                 NodeId first_switch) {
  std::vector<NodeId> visited{first_switch};
  NodeId here = first_switch;
  std::uint8_t ttl = kInitialTtl;
  for (std::uint8_t hop = 0; hop < route.hop_count; ++hop) {
    const std::uint8_t port = route_port_at(route, ttl);
    const auto next = ports.neighbor_at(here, port);
    if (!next) {
      throw std::logic_error("replay_route: packet sent to an unused port");
    }
    visited.push_back(*next);
    here = *next;
    --ttl;
    // A server endpoint terminates the route; only switches forward.
    if (!is_switch(graph.node(here).role)) break;
  }
  return visited;
}

std::uint64_t transit_rule_count(std::size_t diameter,
                                 std::size_t port_count) {
  return static_cast<std::uint64_t>(diameter) * port_count;
}

}  // namespace flattree
