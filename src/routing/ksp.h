// Yen's k-shortest loopless paths (§4.2, [50]) over the switch fabric.
//
// All routing in flat-tree's global and local modes is k-shortest-path based.
// Distances are hop counts. Paths transit switches only; endpoints may be
// servers. Results are deterministic: ties are broken by path length first,
// then lexicographic node order, so the same topology always yields the same
// path set (Observation 2 in §4.2.1 — "the k-shortest paths between server
// pairs are nearly deterministic").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/graph.h"
#include "obs/sink.h"
#include "routing/path.h"

namespace flattree {

namespace exec {
class ThreadPool;
}  // namespace exec

class KspSolver {
 public:
  explicit KspSolver(const Graph& graph) : graph_{&graph} {}

  // Lexicographically-smallest shortest path from src to dst, or nullopt if
  // disconnected. `banned_nodes` may not be transited (src itself is always
  // allowed); `banned_edges` are directed node pairs that may not be used.
  [[nodiscard]] std::optional<Path> shortest_path(NodeId src, NodeId dst) const;

  // Yen's algorithm: up to k loopless paths in nondecreasing length order.
  // Fewer than k are returned if the graph does not contain them.
  [[nodiscard]] std::vector<Path> k_shortest_paths(NodeId src, NodeId dst,
                                                   std::uint32_t k) const;

 private:
  using EdgeKey = std::uint64_t;
  static EdgeKey edge_key(NodeId from, NodeId to) {
    return (static_cast<EdgeKey>(from.value()) << 32) | to.value();
  }

  [[nodiscard]] std::optional<Path> constrained_shortest(
      NodeId src, NodeId dst, const std::unordered_set<NodeId>& banned_nodes,
      const std::unordered_set<EdgeKey>& banned_edges) const;

  const Graph* graph_;
};

// One cache entry evicted by PathCache::rebind_and_invalidate, with the
// forwarding-rule footprint its old paths occupied (one rule per switch
// hop). This is what lets the controller price an incremental repair
// without replaying the full rule compilation.
struct EvictedPair {
  NodeId src{};
  NodeId dst{};
  std::uint64_t rules{0};
};

// Symmetric switch-switch adjacency changes between two graphs sharing node
// ids. Adjacency is existence-level: parallel links between the same switch
// pair collapse to one adjacency, so dropping one of two parallel links is
// no delta (path sets are hop-count based and cannot change). Pairs are
// reported with the smaller node id first.
struct AdjacencyDelta {
  std::vector<std::pair<NodeId, NodeId>> removed;  // in `from`, not in `to`
  std::vector<std::pair<NodeId, NodeId>> added;    // in `to`, not in `from`

  [[nodiscard]] bool empty() const { return removed.empty() && added.empty(); }
};
[[nodiscard]] AdjacencyDelta adjacency_delta(const Graph& from,
                                             const Graph& to);

// Memoizing façade: computes and caches the k-shortest switch-to-switch
// paths on demand. Experiments touch only the switch pairs their traffic
// uses, so lazy computation keeps large topologies tractable.
class PathCache {
 public:
  PathCache(const Graph& graph, std::uint32_t k)
      : graph_{&graph}, solver_{graph}, k_{k} {}

  // k-shortest paths between the attachment switches of two servers (or
  // between two switches if switch ids are passed). Cached.
  [[nodiscard]] const std::vector<Path>& switch_paths(NodeId src_switch,
                                                      NodeId dst_switch);

  // Full server-to-server paths (server endpoints attached to the cached
  // switch paths). Not cached; cheap to build.
  [[nodiscard]] std::vector<Path> server_paths(NodeId src_server,
                                               NodeId dst_server);

  [[nodiscard]] std::uint32_t k() const { return k_; }
  [[nodiscard]] std::size_t cached_pairs() const { return cache_.size(); }

  // Warms the cache for every pair in `pairs` (server or switch endpoints;
  // servers resolve to their attachment switches), fanning the per-pair
  // Yen's runs across `pool` (serial when null). Bit-identical to looking
  // the pairs up on demand: each pair's path set is a pure function of the
  // graph, and entries are inserted from a deterministic pair order.
  // Returns the number of newly computed pairs. Not thread-safe with
  // concurrent cache access; call it from one thread like every other
  // member.
  std::size_t precompute(std::span<const std::pair<NodeId, NodeId>> pairs,
                         exec::ThreadPool* pool = nullptr);

  // Incremental invalidation for failure repair: rebinds the cache (and
  // future computations) to `graph` — which must share node ids with the
  // current graph — and evicts exactly the entries broken by the change: a
  // pair is evicted if an endpoint is in `failed_switches` or any cached
  // path transits a failed switch or hops across a node pair that is no
  // longer adjacent. Surviving entries keep their paths, which stay valid
  // (though possibly no longer globally shortest — a full recompile
  // restores optimality). Returns the number of evicted pairs; if
  // `evicted_out` is non-null it receives each evicted pair with its old
  // rule footprint. The caller owns `graph` and must keep it alive while
  // the cache is in use.
  std::size_t rebind_and_invalidate(
      const Graph& graph, std::span<const NodeId> failed_switches,
      std::vector<EvictedPair>* evicted_out = nullptr);

  // Warm rebind under an edge-level delta (single- or few-edge fail /
  // recover / conversion rewire): computes the switch-adjacency delta
  // against the current graph and evicts the *provably minimal* exact set —
  //   * a pair whose cached path hops a removed adjacency (survivors of a
  //     pure removal are exact: the cached set was the (length, lex)-least
  //     k of a path universe the removal only shrank);
  //   * when adjacencies were added, a pair that could admit a better-or-
  //     tied path through a new edge: cached fewer than k paths, or
  //     min(d(s,u)+1+d(v,t), d(s,v)+1+d(u,t)) <= length of its k-th cached
  //     path (d = switch-transit hop distance on the new graph, one BFS per
  //     new-edge endpoint). Strictly longer candidates cannot displace any
  //     cached path, ties might via lexicographic order, so <= evicts.
  // Surviving entries are byte-identical to a cold recompute on `graph`
  // (pinned by tests/test_ksp_properties.cc WarmDeltaMatchesCold*); evicted
  // pairs recompute lazily on next lookup. Returns the eviction count.
  std::size_t rebind_warm(const Graph& graph,
                          std::vector<EvictedPair>* evicted_out = nullptr);

  void clear() { cache_.clear(); }

  // Caches routing.ksp.* metric handles (cache hits/misses, pairs computed,
  // pairs evicted by repairs). Counting does not change lookup results;
  // detached (the default) the cache touches no metrics.
  void attach_obs(const obs::ObsSink& sink);

 private:
  const Graph* graph_;
  KspSolver solver_;
  std::uint32_t k_;
  std::unordered_map<std::uint64_t, std::vector<Path>> cache_;
  obs::Counter* c_hits_{nullptr};
  obs::Counter* c_misses_{nullptr};
  obs::Counter* c_computed_{nullptr};
  obs::Counter* c_evicted_{nullptr};
};

}  // namespace flattree
