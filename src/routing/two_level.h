// Two-level routing tables for Clos mode (§4: "For flat-tree Clos mode, we
// can use ECMP, two-level routing, or customized SDN routing").
//
// This is the classic fat-tree scheme (Al-Fares et al., the paper's [12]):
// switches hold a small primary table of destination prefixes (terminating
// prefixes route down toward the destination) plus a secondary table of
// host suffixes that spreads upward traffic across the uplinks, giving
// deterministic per-host load balancing with O(pod size) state per switch —
// no per-flow rules at all. Implemented over the generic Clos builder
// (clos.cc), addressing servers by their global index.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/graph.h"
#include "routing/path.h"
#include "topo/params.h"

namespace flattree {

class TwoLevelRouter {
 public:
  // `graph` must be build_clos(params) (the canonical hierarchical wiring);
  // construction validates the expected layer structure.
  TwoLevelRouter(const Graph& graph, const ClosParams& params);

  // Table-driven walk from src_server to dst_server. Returns the full node
  // path (server to server).
  [[nodiscard]] Path route(NodeId src_server, NodeId dst_server) const;

  // State footprint per switch: prefix entries + suffix entries (§4's point
  // is that this is tiny and conversion-independent for Clos mode).
  [[nodiscard]] std::size_t prefix_entries(NodeId sw) const;
  [[nodiscard]] std::size_t suffix_entries(NodeId sw) const;

 private:
  // Location helpers derived from the fixed node-ordering convention.
  [[nodiscard]] std::uint32_t server_index(NodeId server) const;
  [[nodiscard]] std::uint32_t edge_of_server(std::uint32_t server) const;
  [[nodiscard]] std::uint32_t pod_of_server(std::uint32_t server) const;

  const Graph* graph_;
  ClosParams params_;
  std::uint32_t num_servers_{0};
  std::vector<NodeId> edges_;
  std::vector<NodeId> aggs_;
  std::vector<NodeId> cores_;
};

}  // namespace flattree
