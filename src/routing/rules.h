// Network-state accounting (§4.2).
//
// k-shortest-path routing needs per-path forwarding state; the paper's core
// control-plane contribution is cutting that state down in two steps:
//   naive        one rule per (server pair, path, transit switch)
//   aggregated   prefix matching at the ingress/egress switch level --
//                one rule per (switch pair, path, transit switch)
//   source-routed  ingress keeps S*k rules; transit keeps D*C static rules
// StateAnalyzer computes all three from the *actual* path sets in use, plus
// the closed-form averages the paper quotes (n^2 k L / N and S^2 k L / N).
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "routing/ksp.h"
#include "routing/path.h"

namespace flattree {

struct StateCounts {
  // Exact per-switch rule counts derived from the path sets.
  std::uint64_t naive_max{0};
  double naive_avg{0.0};
  std::uint64_t aggregated_max{0};
  double aggregated_avg{0.0};
  std::uint64_t ingress_max{0};   // source routing: per-ingress route stack rules
  double ingress_avg{0.0};
  std::uint64_t transit_static{0};  // source routing: D x C, same on every switch

  // Closed-form estimates from §4.2 for cross-checking.
  double formula_naive_avg{0.0};       // n^2 * k * L / N
  double formula_aggregated_avg{0.0};  // S^2 * k * L / N

  double avg_path_length{0.0};  // L over the analyzed path sets
  std::uint64_t path_count{0};
};

// A traffic-independent analysis assumes all-to-all switch pairs; callers
// with a concrete workload can pass just the pairs in use.
struct SwitchPair {
  NodeId src{};
  NodeId dst{};
};

// Computes rule counts for the k-shortest-path routing of the given switch
// pairs. `servers_per_switch_hint` scales the naive count; pass 0 to use the
// real per-switch server attachment counts from the graph.
[[nodiscard]] StateCounts analyze_states(const Graph& graph, PathCache& paths,
                                         const std::vector<SwitchPair>& pairs,
                                         std::size_t max_port_count,
                                         std::size_t diameter);

// All ordered pairs of switches that have at least one attached server
// (every switch can be an ingress/egress in flat-tree).
[[nodiscard]] std::vector<SwitchPair> all_ingress_pairs(const Graph& graph);

}  // namespace flattree
