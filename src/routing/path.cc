#include "routing/path.h"

#include <unordered_set>

namespace flattree {

bool is_valid_path(const Graph& graph, std::span<const NodeId> path) {
  if (path.empty()) return false;
  std::unordered_set<NodeId> seen;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const NodeId n = path[i];
    if (n.index() >= graph.node_count()) return false;
    if (!seen.insert(n).second) return false;  // loop
    const bool interior = i > 0 && i + 1 < path.size();
    if (interior && !is_switch(graph.node(n).role)) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    bool adjacent = false;
    for (const Adjacency& adj : graph.neighbors(path[i])) {
      if (adj.peer == path[i + 1]) {
        adjacent = true;
        break;
      }
    }
    if (!adjacent) return false;
  }
  return true;
}

Path with_server_endpoints(NodeId src_server,
                           std::span<const NodeId> switch_path,
                           NodeId dst_server) {
  Path full;
  full.reserve(switch_path.size() + 2);
  full.push_back(src_server);
  full.insert(full.end(), switch_path.begin(), switch_path.end());
  full.push_back(dst_server);
  return full;
}

}  // namespace flattree
