#include "routing/two_level.h"

#include <stdexcept>

namespace flattree {

TwoLevelRouter::TwoLevelRouter(const Graph& graph, const ClosParams& params)
    : graph_{&graph}, params_{params} {
  params_.validate();
  num_servers_ = params_.total_servers();
  if (graph.count_role(NodeRole::kServer) != num_servers_ ||
      graph.count_role(NodeRole::kEdge) != params_.total_edges() ||
      graph.count_role(NodeRole::kAgg) != params_.total_aggs() ||
      graph.count_role(NodeRole::kCore) != params_.cores) {
    throw std::invalid_argument("two-level: graph does not match params");
  }
  edges_ = graph.nodes_with_role(NodeRole::kEdge);
  aggs_ = graph.nodes_with_role(NodeRole::kAgg);
  cores_ = graph.nodes_with_role(NodeRole::kCore);
  // The scheme depends on the strictly hierarchical Clos wiring: every
  // server must sit under its positional edge switch.
  for (std::uint32_t s = 0; s < num_servers_; ++s) {
    if (graph.attachment_switch(NodeId{s}) !=
        edges_[s / params_.servers_per_edge]) {
      throw std::invalid_argument(
          "two-level: server placement is not canonical Clos (use ECMP or "
          "k-shortest-path routing for converted topologies)");
    }
  }
}

std::uint32_t TwoLevelRouter::server_index(NodeId server) const {
  if (server.value() >= num_servers_ ||
      graph_->node(server).role != NodeRole::kServer) {
    throw std::invalid_argument("two-level: not a server id");
  }
  return server.value();
}

std::uint32_t TwoLevelRouter::edge_of_server(std::uint32_t server) const {
  return server / params_.servers_per_edge;
}

std::uint32_t TwoLevelRouter::pod_of_server(std::uint32_t server) const {
  return edge_of_server(server) / params_.edge_per_pod;
}

Path TwoLevelRouter::route(NodeId src_server, NodeId dst_server) const {
  const std::uint32_t src = server_index(src_server);
  const std::uint32_t dst = server_index(dst_server);
  if (src == dst) {
    throw std::invalid_argument("two-level: src == dst");
  }
  const std::uint32_t src_edge = edge_of_server(src);
  const std::uint32_t dst_edge = edge_of_server(dst);
  const std::uint32_t src_pod = pod_of_server(src);
  const std::uint32_t dst_pod = pod_of_server(dst);

  Path path{src_server, edges_[src_edge]};
  if (src_edge == dst_edge) {
    path.push_back(dst_server);
    return path;
  }

  // Upward: the host suffix of the *destination* picks the aggregation
  // switch (and, cross-pod, the core), so all packets to one host converge
  // on one deterministic path — the fat-tree two-level scheme.
  const std::uint32_t suffix = dst % params_.servers_per_edge;
  const std::uint32_t up_agg = (dst_edge + suffix) % params_.agg_per_pod;
  path.push_back(aggs_[src_pod * params_.agg_per_pod + up_agg]);

  if (src_pod != dst_pod) {
    // Suffix-selected uplink of the chosen aggregation switch.
    const std::uint32_t uplink = suffix % params_.agg_uplinks;
    const std::uint32_t core =
        (up_agg * params_.agg_uplinks + uplink) % params_.cores;
    path.push_back(cores_[core]);
    // Downward prefix route: the aggregation switch of the destination pod
    // wired to this core (see build_clos's modular rule).
    const std::uint32_t down_agg =
        (core / params_.agg_uplinks) % params_.agg_per_pod;
    path.push_back(aggs_[dst_pod * params_.agg_per_pod + down_agg]);
  }
  path.push_back(edges_[dst_edge]);
  path.push_back(dst_server);
  return path;
}

std::size_t TwoLevelRouter::prefix_entries(NodeId sw) const {
  switch (graph_->node(sw).role) {
    case NodeRole::kEdge:
      return params_.servers_per_edge;  // terminating host prefixes
    case NodeRole::kAgg:
      return params_.edge_per_pod;  // in-pod edge subnets
    case NodeRole::kCore:
      return params_.pods;  // one pod prefix per pod
    default:
      throw std::invalid_argument("two-level: not a switch");
  }
}

std::size_t TwoLevelRouter::suffix_entries(NodeId sw) const {
  switch (graph_->node(sw).role) {
    case NodeRole::kEdge:
      return params_.servers_per_edge;  // suffix -> uplink spread
    case NodeRole::kAgg:
      return params_.servers_per_edge;  // suffix -> core uplink spread
    case NodeRole::kCore:
      return 0;  // cores route down by prefix only
    default:
      throw std::invalid_argument("two-level: not a switch");
  }
}

}  // namespace flattree
