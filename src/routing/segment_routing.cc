#include "routing/segment_routing.h"

#include <algorithm>
#include <stdexcept>

namespace flattree {

LabelStack encode_label_stack(const PortMap& ports, const Path& path) {
  if (path.size() < 2) {
    throw std::invalid_argument("encode_label_stack: path too short");
  }
  LabelStack stack;
  const std::size_t first =
      is_switch(ports.graph().node(path.front()).role) ? 0 : 1;
  for (std::size_t i = first; i + 1 < path.size(); ++i) {
    stack.labels.push_back(ports.port_to(path[i], path[i + 1]));
  }
  // The first hop to execute must be on top.
  std::reverse(stack.labels.begin(), stack.labels.end());
  return stack;
}

std::vector<NodeId> replay_label_stack(const Graph& graph,
                                       const PortMap& ports, LabelStack stack,
                                       NodeId first_switch) {
  std::vector<NodeId> visited{first_switch};
  NodeId here = first_switch;
  while (!stack.empty()) {
    const std::uint8_t port = stack.labels.back();
    stack.labels.pop_back();
    const auto next = ports.neighbor_at(here, port);
    if (!next) {
      throw std::logic_error(
          "replay_label_stack: label names an unused port");
    }
    visited.push_back(*next);
    here = *next;
    // A server endpoint terminates the route; only switches forward.
    if (!is_switch(graph.node(here).role)) break;
  }
  return visited;
}

std::uint64_t segment_transit_rule_count(std::size_t port_count) {
  return port_count;
}

}  // namespace flattree
