#include "routing/ksp.h"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>

#include "exec/parallel.h"

namespace flattree {
namespace {

// Total order on paths: length first, then node values lexicographically.
// Used both for candidate selection in Yen's algorithm and for result
// determinism.
bool path_less(const Path& a, const Path& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

// Existence-level switch-switch adjacency keys of g (smaller id first).
std::set<std::uint64_t> switch_adjacencies(const Graph& g) {
  std::set<std::uint64_t> keys;
  for (std::uint32_t i = 0; i < g.link_count(); ++i) {
    const Link& l = g.link(LinkId{i});
    if (!is_switch(g.node(l.a).role) || !is_switch(g.node(l.b).role)) continue;
    const std::uint32_t lo = std::min(l.a.value(), l.b.value());
    const std::uint32_t hi = std::max(l.a.value(), l.b.value());
    keys.insert((static_cast<std::uint64_t>(lo) << 32) | hi);
  }
  return keys;
}

}  // namespace

AdjacencyDelta adjacency_delta(const Graph& from, const Graph& to) {
  if (from.node_count() != to.node_count()) {
    throw std::invalid_argument("adjacency_delta: node ids must be shared");
  }
  const std::set<std::uint64_t> before = switch_adjacencies(from);
  const std::set<std::uint64_t> after = switch_adjacencies(to);
  AdjacencyDelta delta;
  const auto unpack = [](std::uint64_t key) {
    return std::pair{NodeId{static_cast<std::uint32_t>(key >> 32)},
                     NodeId{static_cast<std::uint32_t>(key & 0xffffffffu)}};
  };
  for (const std::uint64_t key : before) {
    if (!after.contains(key)) delta.removed.push_back(unpack(key));
  }
  for (const std::uint64_t key : after) {
    if (!before.contains(key)) delta.added.push_back(unpack(key));
  }
  return delta;
}

std::optional<Path> KspSolver::shortest_path(NodeId src, NodeId dst) const {
  return constrained_shortest(src, dst, {}, {});
}

std::optional<Path> KspSolver::constrained_shortest(
    NodeId src, NodeId dst, const std::unordered_set<NodeId>& banned_nodes,
    const std::unordered_set<EdgeKey>& banned_edges) const {
  const Graph& g = *graph_;
  if (src.index() >= g.node_count() || dst.index() >= g.node_count()) {
    throw std::invalid_argument("shortest_path: bad node id");
  }
  if (src == dst) return Path{src};
  if (banned_nodes.contains(dst)) return std::nullopt;

  // BFS with deterministic parent choice: nodes are discovered in adjacency
  // order from lexicographically processed frontiers, so the reconstructed
  // path is reproducible.
  std::vector<NodeId> parent(g.node_count(), NodeId::invalid());
  std::vector<bool> visited(g.node_count(), false);
  std::deque<NodeId> queue;
  queue.push_back(src);
  visited[src.index()] = true;

  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (u == dst) break;
    // Traffic transits switches only.
    if (u != src && !is_switch(g.node(u).role)) continue;
    // Collect admissible neighbors sorted by id for determinism (adjacency
    // order is build-dependent; sorted order is canonical).
    std::vector<NodeId> next;
    for (const Adjacency& adj : g.neighbors(u)) {
      if (visited[adj.peer.index()]) continue;
      if (banned_nodes.contains(adj.peer)) continue;
      if (banned_edges.contains(edge_key(u, adj.peer))) continue;
      next.push_back(adj.peer);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    for (NodeId v : next) {
      visited[v.index()] = true;
      parent[v.index()] = u;
      queue.push_back(v);
    }
  }

  if (!visited[dst.index()]) return std::nullopt;
  Path path;
  for (NodeId n = dst; n.valid(); n = parent[n.index()]) path.push_back(n);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<Path> KspSolver::k_shortest_paths(NodeId src, NodeId dst,
                                              std::uint32_t k) const {
  std::vector<Path> result;
  if (k == 0) return result;
  auto first = shortest_path(src, dst);
  if (!first) return result;
  result.push_back(std::move(*first));

  // Candidates ordered by (length, lexicographic), deduplicated.
  auto cmp = [](const Path& a, const Path& b) { return path_less(a, b); };
  std::set<Path, decltype(cmp)> candidates(cmp);

  while (result.size() < k) {
    const Path& prev = result.back();
    for (std::size_t i = 0; i + 1 < prev.size(); ++i) {
      const NodeId spur = prev[i];
      const std::span<const NodeId> root{prev.data(), i + 1};

      std::unordered_set<EdgeKey> banned_edges;
      for (const Path& p : result) {
        if (p.size() > i + 1 &&
            std::equal(root.begin(), root.end(), p.begin())) {
          banned_edges.insert(edge_key(p[i], p[i + 1]));
        }
      }
      std::unordered_set<NodeId> banned_nodes;
      for (std::size_t j = 0; j < i; ++j) banned_nodes.insert(prev[j]);

      const auto spur_path =
          constrained_shortest(spur, dst, banned_nodes, banned_edges);
      if (!spur_path) continue;

      Path total(root.begin(), root.end());
      total.insert(total.end(), spur_path->begin() + 1, spur_path->end());
      if (std::none_of(result.begin(), result.end(),
                       [&](const Path& p) { return p == total; })) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

void PathCache::attach_obs(const obs::ObsSink& sink) {
  obs::MetricsRegistry* reg = sink.metrics();
  if (reg == nullptr) {
    c_hits_ = c_misses_ = c_computed_ = c_evicted_ = nullptr;
    return;
  }
  c_hits_ = &reg->counter("routing.ksp.cache_hits");
  c_misses_ = &reg->counter("routing.ksp.cache_misses");
  c_computed_ = &reg->counter("routing.ksp.pairs_computed");
  c_evicted_ = &reg->counter("routing.ksp.pairs_evicted");
}

const std::vector<Path>& PathCache::switch_paths(NodeId src_switch,
                                                 NodeId dst_switch) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src_switch.value()) << 32) |
      dst_switch.value();
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    obs::add(c_hits_);
    return it->second;
  }
  obs::add(c_misses_);
  obs::add(c_computed_);
  auto paths = solver_.k_shortest_paths(src_switch, dst_switch, k_);
  return cache_.emplace(key, std::move(paths)).first->second;
}

std::size_t PathCache::precompute(
    std::span<const std::pair<NodeId, NodeId>> pairs,
    exec::ThreadPool* pool) {
  // Resolve endpoints to switch pairs, drop same-switch pairs (server_paths
  // synthesizes those without touching the cache), and dedup against both
  // the cache and earlier entries, preserving first-seen order.
  std::vector<std::pair<NodeId, NodeId>> todo;
  std::unordered_set<std::uint64_t> seen;
  todo.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    const NodeId src =
        is_switch(graph_->node(a).role) ? a : graph_->attachment_switch(a);
    const NodeId dst =
        is_switch(graph_->node(b).role) ? b : graph_->attachment_switch(b);
    if (src == dst) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
    if (cache_.contains(key) || !seen.insert(key).second) continue;
    todo.emplace_back(src, dst);
  }

  // The per-pair Yen's runs only read the graph (KspSolver is const), so
  // they fan out safely; insertion stays serial because the map is not.
  std::vector<std::vector<Path>> computed = exec::parallel_map(
      pool, todo.size(), [this, &todo](std::size_t i) {
        return solver_.k_shortest_paths(todo[i].first, todo[i].second, k_);
      });
  for (std::size_t i = 0; i < todo.size(); ++i) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(todo[i].first.value()) << 32) |
        todo[i].second.value();
    cache_.emplace(key, std::move(computed[i]));
  }
  obs::add(c_computed_, todo.size());
  return todo.size();
}

std::size_t PathCache::rebind_and_invalidate(
    const Graph& graph, std::span<const NodeId> failed_switches,
    std::vector<EvictedPair>* evicted_out) {
  if (graph.node_count() != graph_->node_count()) {
    throw std::invalid_argument(
        "PathCache::rebind_and_invalidate: node ids must be shared");
  }
  graph_ = &graph;
  solver_ = KspSolver{graph};
  std::vector<bool> failed(graph.node_count(), false);
  for (NodeId id : failed_switches) failed[id.index()] = true;
  const auto broken = [&](const Path& path) {
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (failed[path[i].index()]) return true;
      if (i + 1 < path.size() && !graph.adjacent(path[i], path[i + 1])) {
        return true;
      }
    }
    return false;
  };
  std::size_t evicted = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    const bool evict = it->second.empty() ||
                       std::any_of(it->second.begin(), it->second.end(), broken);
    if (evict) {
      if (evicted_out != nullptr) {
        EvictedPair pair;
        pair.src = NodeId{static_cast<std::uint32_t>(it->first >> 32)};
        pair.dst = NodeId{static_cast<std::uint32_t>(it->first & 0xffffffffu)};
        for (const Path& path : it->second) {
          if (!path.empty()) pair.rules += path.size() - 1;
        }
        evicted_out->push_back(pair);
      }
      it = cache_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  obs::add(c_evicted_, evicted);
  return evicted;
}

std::size_t PathCache::rebind_warm(const Graph& graph,
                                   std::vector<EvictedPair>* evicted_out) {
  if (graph.node_count() != graph_->node_count()) {
    throw std::invalid_argument(
        "PathCache::rebind_warm: node ids must be shared");
  }
  const AdjacencyDelta delta = adjacency_delta(*graph_, graph);
  graph_ = &graph;
  solver_ = KspSolver{graph};
  if (delta.empty()) return 0;

  // Directed lookup set for removed adjacencies (cached paths hop either
  // direction).
  std::unordered_set<std::uint64_t> removed;
  for (const auto& [a, b] : delta.removed) {
    removed.insert((static_cast<std::uint64_t>(a.value()) << 32) | b.value());
    removed.insert((static_cast<std::uint64_t>(b.value()) << 32) | a.value());
  }
  const auto hops_removed = [&](const Path& path) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(path[i].value()) << 32) |
          path[i + 1].value();
      if (removed.contains(key)) return true;
    }
    return false;
  };

  // Switch-transit hop distances on the new graph from every endpoint of an
  // added adjacency — one BFS per distinct endpoint, O(1) per cached pair
  // afterwards.
  constexpr std::uint32_t kInf = 0xFFFFFFFFu;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> dist;
  const auto bfs_from = [&](NodeId start) -> const std::vector<std::uint32_t>& {
    const auto it = dist.find(start.value());
    if (it != dist.end()) return it->second;
    std::vector<std::uint32_t> d(graph.node_count(), kInf);
    std::deque<NodeId> queue;
    d[start.index()] = 0;
    queue.push_back(start);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const Adjacency& adj : graph.neighbors(u)) {
        if (!is_switch(graph.node(adj.peer).role)) continue;
        if (d[adj.peer.index()] != kInf) continue;
        d[adj.peer.index()] = d[u.index()] + 1;
        queue.push_back(adj.peer);
      }
    }
    return dist.emplace(start.value(), std::move(d)).first->second;
  };

  std::size_t evicted = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    const NodeId src{static_cast<std::uint32_t>(it->first >> 32)};
    const NodeId dst{static_cast<std::uint32_t>(it->first & 0xffffffffu)};
    const std::vector<Path>& paths = it->second;
    bool evict =
        std::any_of(paths.begin(), paths.end(), hops_removed);
    if (!evict && !delta.added.empty()) {
      if (paths.size() < k_) {
        // A new edge can only add paths; a short set may grow.
        evict = true;
      } else {
        // Paths are (length, lex)-sorted, so the last one is the k-th
        // best. A candidate through a new edge displaces a cached path
        // only if it is no longer than that (ties displace via lex order).
        const std::uint64_t kth = path_length(paths.back());
        for (const auto& [u, v] : delta.added) {
          const std::vector<std::uint32_t>& du = bfs_from(u);
          const std::vector<std::uint32_t>& dv = bfs_from(v);
          const auto through = [&](const std::vector<std::uint32_t>& a,
                                   const std::vector<std::uint32_t>& b) {
            if (a[src.index()] == kInf || b[dst.index()] == kInf) {
              return std::uint64_t{kInf} + kInf;
            }
            return static_cast<std::uint64_t>(a[src.index()]) + 1 +
                   b[dst.index()];
          };
          if (std::min(through(du, dv), through(dv, du)) <= kth) {
            evict = true;
            break;
          }
        }
      }
    }
    if (evict) {
      if (evicted_out != nullptr) {
        EvictedPair pair;
        pair.src = src;
        pair.dst = dst;
        for (const Path& path : paths) {
          if (!path.empty()) pair.rules += path.size() - 1;
        }
        evicted_out->push_back(pair);
      }
      it = cache_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  obs::add(c_evicted_, evicted);
  return evicted;
}

std::vector<Path> PathCache::server_paths(NodeId src_server,
                                          NodeId dst_server) {
  const NodeId src_sw = graph_->attachment_switch(src_server);
  const NodeId dst_sw = graph_->attachment_switch(dst_server);
  std::vector<Path> result;
  if (src_sw == dst_sw) {
    // Same-rack pair: the single two-hop path through the shared switch.
    result.push_back(Path{src_server, src_sw, dst_server});
    return result;
  }
  for (const Path& sw_path : switch_paths(src_sw, dst_sw)) {
    result.push_back(with_server_endpoints(src_server, sw_path, dst_server));
  }
  return result;
}

}  // namespace flattree
