// ECMP routing (flat-tree Clos mode baseline, §5.2).
//
// Real ECMP picks the next hop at every switch pseudo-randomly by hashing
// header fields, so each TCP flow rides exactly one of the equal-cost
// shortest paths. We reproduce that: the per-switch choice is a hash of
// (flow id, switch id, seed) over the dist-decreasing neighbors, giving a
// deterministic single path per flow and the same no-multipath handicap the
// paper observes for Clos+ECMP+TCP.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "routing/path.h"

namespace flattree {

class EcmpRouter {
 public:
  explicit EcmpRouter(const Graph& graph, std::uint64_t seed = 0)
      : graph_{&graph}, seed_{seed} {}

  // The single ECMP path a given flow takes between two servers.
  [[nodiscard]] Path flow_path(NodeId src_server, NodeId dst_server,
                               std::uint64_t flow_key);

  // Number of distinct equal-cost shortest switch paths (for diagnostics /
  // tests; counts paths, does not enumerate beyond the given cap).
  [[nodiscard]] std::uint64_t equal_cost_path_count(NodeId src_switch,
                                                    NodeId dst_switch,
                                                    std::uint64_t cap = 1u << 20);

 private:
  // BFS distances to `dst` over switches; cached per destination switch.
  const std::vector<std::uint32_t>& distances_to(NodeId dst_switch);

  const Graph* graph_;
  std::uint64_t seed_;
  std::vector<std::vector<std::uint32_t>> dist_cache_;
  std::vector<bool> dist_cached_;
};

}  // namespace flattree
