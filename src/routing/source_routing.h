// SDN source routing via MAC-encoded port lists (§4.2.2).
//
// The ingress switch rewrites the source MAC address to carry the packet's
// entire route as a list of next-hop output ports, one byte per hop. Transit
// switches use the packet TTL as a cursor: a switch seeing TTL = 255 - h
// extracts byte h of the MAC (OpenFlow 1.3 arbitrary-bit matching) and
// forwards to that port. Transit state is therefore O(diameter x port
// count), independent of the number of flows, and survives topology
// conversions unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/graph.h"
#include "routing/path.h"

namespace flattree {

// Stable switch-local port numbering derived from the graph: ports are
// assigned in adjacency order; parallel links to the same neighbor share the
// first port for forwarding purposes (they are one logical pipe).
class PortMap {
 public:
  explicit PortMap(const Graph& graph);

  // Output port on `sw` toward adjacent node `neighbor`.
  [[nodiscard]] std::uint8_t port_to(NodeId sw, NodeId neighbor) const;

  // Node reached from `sw` via `port`; nullopt if the port is unused.
  [[nodiscard]] std::optional<NodeId> neighbor_at(NodeId sw,
                                                  std::uint8_t port) const;

  [[nodiscard]] std::size_t port_count(NodeId sw) const;

  [[nodiscard]] const Graph& graph() const { return *graph_; }

  // Largest port count over all switches (the C in the D x C transit rule
  // bound).
  [[nodiscard]] std::size_t max_port_count() const;

 private:
  const Graph* graph_;
  // Per node: neighbor id -> port, and port -> neighbor.
  std::vector<std::unordered_map<NodeId, std::uint8_t>> to_port_;
  std::vector<std::vector<NodeId>> to_neighbor_;
};

inline constexpr std::uint8_t kInitialTtl = 255;
inline constexpr std::size_t kMaxSourceRouteHops = 6;  // 48-bit MAC

// 48-bit source route held in the source MAC field.
struct SourceRoute {
  std::uint64_t mac{0};       // byte h (from MSB of the 48 bits) = hop h port
  std::uint8_t hop_count{0};
};

// Encodes the switch-level hops of a server-to-server (or switch-to-switch)
// path. The final hop's port (toward the destination server, if present) is
// included. Throws std::invalid_argument if the path needs more than
// kMaxSourceRouteHops switch hops or a port exceeds 255.
[[nodiscard]] SourceRoute encode_route(const PortMap& ports,
                                       const Path& path);

// The output port a transit switch extracts for the given TTL, mirroring the
// OpenFlow mask-match rule: hop index = kInitialTtl - ttl.
[[nodiscard]] std::uint8_t route_port_at(const SourceRoute& route,
                                         std::uint8_t ttl);

// Walks the encoded route hop by hop from `first_switch` exactly as the
// transit rule tables would, returning the nodes visited (including
// `first_switch`). Used to prove encode/decode round-trips.
[[nodiscard]] std::vector<NodeId> replay_route(const Graph& graph,
                                               const PortMap& ports,
                                               const SourceRoute& route,
                                               NodeId first_switch);

// Number of OpenFlow entries a transit switch needs: one per (TTL value,
// output port) pair = diameter x port count (§4.2.2).
[[nodiscard]] std::uint64_t transit_rule_count(std::size_t diameter,
                                               std::size_t port_count);

}  // namespace flattree
