#include "routing/ecmp.h"

#include <algorithm>
#include <stdexcept>

#include "net/rng.h"

namespace flattree {

const std::vector<std::uint32_t>& EcmpRouter::distances_to(NodeId dst_switch) {
  if (dist_cache_.empty()) {
    dist_cache_.resize(graph_->node_count());
    dist_cached_.resize(graph_->node_count(), false);
  }
  if (!dist_cached_[dst_switch.index()]) {
    dist_cache_[dst_switch.index()] = graph_->bfs_distances(dst_switch);
    dist_cached_[dst_switch.index()] = true;
  }
  return dist_cache_[dst_switch.index()];
}

Path EcmpRouter::flow_path(NodeId src_server, NodeId dst_server,
                           std::uint64_t flow_key) {
  const Graph& g = *graph_;
  const NodeId src_sw = g.attachment_switch(src_server);
  const NodeId dst_sw = g.attachment_switch(dst_server);
  Path path{src_server, src_sw};
  if (src_sw == dst_sw) {
    path.push_back(dst_server);
    return path;
  }
  const auto& dist = distances_to(dst_sw);
  if (dist[src_sw.index()] == Graph::kUnreachable) {
    throw std::logic_error("ecmp: destination unreachable");
  }
  NodeId here = src_sw;
  while (here != dst_sw) {
    // Equal-cost next hops: neighbors strictly closer to the destination.
    std::vector<NodeId> next;
    for (const Adjacency& adj : g.neighbors(here)) {
      if (!is_switch(g.node(adj.peer).role)) continue;
      if (dist[adj.peer.index()] + 1 == dist[here.index()]) {
        next.push_back(adj.peer);
      }
    }
    if (next.empty()) {
      if (dist[here.index()] == 1 && here != dst_sw) {
        throw std::logic_error("ecmp: no switch next hop");
      }
      throw std::logic_error("ecmp: dead end");
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    const std::uint64_t h = mix64(flow_key, here.value(), seed_);
    path.push_back(next[h % next.size()]);
    here = path.back();
  }
  path.push_back(dst_server);
  return path;
}

std::uint64_t EcmpRouter::equal_cost_path_count(NodeId src_switch,
                                                NodeId dst_switch,
                                                std::uint64_t cap) {
  if (src_switch == dst_switch) return 1;
  const auto& dist = distances_to(dst_switch);
  if (dist[src_switch.index()] == Graph::kUnreachable) return 0;
  // Count paths along the BFS DAG with memoization.
  std::vector<std::uint64_t> memo(graph_->node_count(), 0);
  memo[dst_switch.index()] = 1;
  // Process switches in increasing distance from dst.
  std::vector<NodeId> order = graph_->switches();
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return dist[a.index()] < dist[b.index()];
  });
  for (NodeId u : order) {
    if (u == dst_switch || dist[u.index()] == Graph::kUnreachable) continue;
    // Unique peers only: parallel links are one logical next hop.
    std::vector<NodeId> downhill;
    for (const Adjacency& adj : graph_->neighbors(u)) {
      if (!is_switch(graph_->node(adj.peer).role)) continue;
      if (dist[adj.peer.index()] + 1 == dist[u.index()]) {
        downhill.push_back(adj.peer);
      }
    }
    std::sort(downhill.begin(), downhill.end());
    downhill.erase(std::unique(downhill.begin(), downhill.end()),
                   downhill.end());
    std::uint64_t total = 0;
    for (NodeId peer : downhill) {
      total += memo[peer.index()];
      if (total >= cap) {
        total = cap;
        break;
      }
    }
    memo[u.index()] = total;
  }
  return memo[src_switch.index()];
}

}  // namespace flattree
