// Segment routing with MPLS-style label stacks (§4.2.2, first option).
//
// "Segment routing is a natural fit to this request in SDN. In segment
// routing, the k-shortest-path routing algorithm can be implemented in the
// Path Computation Element (PCE) ... which enforces per-route states only
// at ingress switches. ... The ingress switch encodes the hops of a path as
// a stack of MPLS labels. The transit switches forward packets by dumb
// matching of the label on top of the stack and pop it upon completion."
//
// Each label is an adjacency segment: the output port on the switch that
// pops it. Compared with the MAC-encoded source routes (source_routing.h),
// label stacks have no 6-hop depth limit, and a transit switch needs only
// one rule per port (C rules instead of D x C) — the trade-off is the MPLS
// forwarding fabric requirement the paper notes not all data centers have.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "routing/path.h"
#include "routing/source_routing.h"  // PortMap

namespace flattree {

// A label stack; back() is the top of the stack (next hop to execute).
struct LabelStack {
  std::vector<std::uint8_t> labels;

  [[nodiscard]] std::size_t depth() const { return labels.size(); }
  [[nodiscard]] bool empty() const { return labels.empty(); }
};

// Encodes the switch-level hops of a path (server endpoints allowed, as in
// encode_route) into a label stack. No depth limit.
[[nodiscard]] LabelStack encode_label_stack(const PortMap& ports,
                                            const Path& path);

// Walks the stack from `first_switch` exactly as MPLS transit switches
// would: pop the top label, forward out of that port. Returns the nodes
// visited (including first_switch). Throws on a label naming an unused
// port.
[[nodiscard]] std::vector<NodeId> replay_label_stack(const Graph& graph,
                                                     const PortMap& ports,
                                                     LabelStack stack,
                                                     NodeId first_switch);

// Transit rule count for segment routing: one adjacency-segment rule per
// local port — no TTL dimension (vs transit_rule_count's D x C).
[[nodiscard]] std::uint64_t segment_transit_rule_count(std::size_t port_count);

}  // namespace flattree
