#include "routing/rules.h"

#include <algorithm>

#include "routing/source_routing.h"

namespace flattree {

std::vector<SwitchPair> all_ingress_pairs(const Graph& graph) {
  std::vector<NodeId> ingress;
  for (NodeId sw : graph.switches()) {
    if (!graph.attached_servers(sw).empty()) ingress.push_back(sw);
  }
  std::vector<SwitchPair> pairs;
  pairs.reserve(ingress.size() * (ingress.size() - 1));
  for (NodeId a : ingress) {
    for (NodeId b : ingress) {
      if (a != b) pairs.push_back(SwitchPair{a, b});
    }
  }
  return pairs;
}

StateCounts analyze_states(const Graph& graph, PathCache& paths,
                           const std::vector<SwitchPair>& pairs,
                           std::size_t max_port_count, std::size_t diameter) {
  StateCounts out;
  const std::size_t nodes = graph.node_count();
  std::vector<std::uint64_t> naive(nodes, 0);
  std::vector<std::uint64_t> aggregated(nodes, 0);
  std::vector<std::uint64_t> ingress(nodes, 0);

  std::vector<std::uint64_t> servers_at(nodes, 0);
  for (NodeId server : graph.servers()) {
    ++servers_at[graph.attachment_switch(server).index()];
  }

  std::uint64_t total_hops = 0;
  for (const SwitchPair& pair : pairs) {
    const auto& path_set = paths.switch_paths(pair.src, pair.dst);
    const std::uint64_t server_fan =
        servers_at[pair.src.index()] * servers_at[pair.dst.index()];
    for (const Path& path : path_set) {
      ++out.path_count;
      total_hops += path_length(path);
      ingress[pair.src.index()] += 1;
      for (NodeId hop : path) {
        // Each switch a path traverses must hold a matching rule.
        aggregated[hop.index()] += 1;
        naive[hop.index()] += server_fan;
      }
    }
  }

  const auto summarize = [&](const std::vector<std::uint64_t>& counts,
                             std::uint64_t& max_out, double& avg_out) {
    std::uint64_t total = 0;
    std::uint64_t switches = 0;
    for (NodeId sw : graph.switches()) {
      const std::uint64_t c = counts[sw.index()];
      max_out = std::max(max_out, c);
      total += c;
      ++switches;
    }
    avg_out = switches == 0 ? 0.0
                            : static_cast<double>(total) /
                                  static_cast<double>(switches);
  };
  summarize(naive, out.naive_max, out.naive_avg);
  summarize(aggregated, out.aggregated_max, out.aggregated_avg);
  summarize(ingress, out.ingress_max, out.ingress_avg);
  out.transit_static = transit_rule_count(diameter, max_port_count);

  if (out.path_count > 0) {
    out.avg_path_length =
        static_cast<double>(total_hops) / static_cast<double>(out.path_count);
  }

  // Closed-form §4.2 estimates: n^2 k L / N and S^2 k L / N, with n the
  // server count, S the ingress-switch count, N the switch count, L the
  // average path length, k the path fan-out.
  const double n = static_cast<double>(graph.count_role(NodeRole::kServer));
  double s = 0;
  for (NodeId sw : graph.switches()) {
    if (!graph.attached_servers(sw).empty()) s += 1;
  }
  const double big_n = static_cast<double>(graph.switches().size());
  const double k = static_cast<double>(paths.k());
  out.formula_naive_avg = n * n * k * out.avg_path_length / big_n;
  out.formula_aggregated_avg = s * s * k * out.avg_path_length / big_n;
  return out;
}

}  // namespace flattree
