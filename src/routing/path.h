// Path representation and validation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/graph.h"

namespace flattree {

// A path is a node sequence; consecutive nodes must be adjacent in the graph
// being routed on. Paths may be switch-to-switch (routing core) or
// server-to-server (allocation).
using Path = std::vector<NodeId>;

// Checks adjacency of consecutive hops, loop-freedom, and that interior
// nodes are switches. Returns false (never throws) so it can gate-keep
// untrusted path inputs.
[[nodiscard]] bool is_valid_path(const Graph& graph, std::span<const NodeId> path);

// Hop count (links traversed); 0 for trivial paths.
[[nodiscard]] inline std::size_t path_length(std::span<const NodeId> path) {
  return path.empty() ? 0 : path.size() - 1;
}

// Extends a switch-level path with the server endpoints:
// src_server -> [switch path] -> dst_server.
[[nodiscard]] Path with_server_endpoints(NodeId src_server,
                                         std::span<const NodeId> switch_path,
                                         NodeId dst_server);

}  // namespace flattree
