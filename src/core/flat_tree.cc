#include "core/flat_tree.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace flattree {

const char* to_string(ConverterType type) {
  return type == ConverterType::kFourPort ? "4-port" : "6-port";
}

const char* to_string(ConverterConfig config) {
  switch (config) {
    case ConverterConfig::kDefault: return "default";
    case ConverterConfig::kLocal: return "local";
    case ConverterConfig::kSide: return "side";
    case ConverterConfig::kCross: return "cross";
  }
  return "?";
}

const char* to_string(PodMode mode) {
  switch (mode) {
    case PodMode::kClos: return "clos";
    case PodMode::kLocal: return "local";
    case PodMode::kGlobal: return "global";
  }
  return "?";
}

void FlatTreeParams::validate() const {
  clos.validate();
  if (clos.edge_per_pod % 2 != 0) {
    throw std::invalid_argument(
        "flat-tree: edge_per_pod must be even (left/right blades)");
  }
  const std::uint32_t g = clos.core_connectors_per_edge();
  if (m() + n() == 0) {
    throw std::invalid_argument("flat-tree: need at least one converter row");
  }
  if (m() + n() > g) {
    throw std::invalid_argument(
        "flat-tree: m + n (" + std::to_string(m() + n()) +
        ") exceeds core connectors per edge column (" + std::to_string(g) + ")");
  }
  if (m() + n() > clos.servers_per_edge) {
    throw std::invalid_argument(
        "flat-tree: m + n exceeds servers per edge switch");
  }
}

FlatTreeParams FlatTreeParams::defaults_for(const ClosParams& clos) {
  FlatTreeParams p;
  p.clos = clos;
  const std::uint32_t g = clos.core_connectors_per_edge();
  std::uint32_t m = std::max<std::uint32_t>(1, g / 4);
  std::uint32_t n = std::max<std::uint32_t>(1, g / 4);
  const std::uint32_t budget = std::min(g, clos.servers_per_edge);
  while (m + n > budget && n > 0) --n;
  while (m + n > budget && m > 0) --m;
  p.six_port_per_column = m;
  p.four_port_per_column = n;
  return p;
}

FlatTree::FlatTree(FlatTreeParams params) : params_{std::move(params)} {
  params_.validate();
  build_converters();
  wire_side_bundles();
}

void FlatTree::build_converters() {
  const ClosParams& c = params_.clos;
  const std::uint32_t d = c.edge_per_pod;
  const std::uint32_t r = c.r();
  const std::uint32_t m = params_.m();
  const std::uint32_t n = params_.n();

  converters_.reserve(static_cast<std::size_t>(c.pods) * d * (m + n));
  for (std::uint32_t pod = 0; pod < c.pods; ++pod) {
    // Blade B (6-port) first, column-major, then blade A (4-port); this
    // layout is what the side-bundle index arithmetic relies on.
    for (std::uint32_t col = 0; col < d; ++col) {
      for (std::uint32_t row = 0; row < m; ++row) {
        Converter conv;
        conv.type = ConverterType::kSixPort;
        conv.pod = PodId{pod};
        conv.row = row;
        conv.col = col;
        conv.edge = pod * d + col;
        conv.agg = pod * c.agg_per_pod + col / r;
        conv.core = core_for_slot(pod, col, row);
        conv.server = server_index(conv.edge, row);
        converters_.push_back(conv);
      }
    }
    for (std::uint32_t col = 0; col < d; ++col) {
      for (std::uint32_t row = 0; row < n; ++row) {
        Converter conv;
        conv.type = ConverterType::kFourPort;
        conv.pod = PodId{pod};
        conv.row = row;
        conv.col = col;
        conv.edge = pod * d + col;
        conv.agg = pod * c.agg_per_pod + col / r;
        conv.core = core_for_slot(pod, col, m + row);
        conv.server = server_index(conv.edge, m + row);
        converters_.push_back(conv);
      }
    }
  }
}

std::uint32_t FlatTree::core_for_slot(std::uint32_t pod, std::uint32_t col,
                                      std::uint32_t slot) const {
  const ClosParams& c = params_.clos;
  const std::uint32_t g = c.core_connectors_per_edge();
  if (slot >= g) throw std::invalid_argument("core_for_slot: slot >= h/r");
  // §3.2: column j's connectors land on the consecutive core group
  // [j*g, (j+1)*g) (mod cores); within the group, blade B then blade A then
  // aggregation connectors, rotated per Pod: pattern 1 advances by m each
  // Pod (packing blade B continuously), pattern 2 by m + 1.
  const std::uint32_t m = params_.m();
  const std::uint32_t step =
      params_.pattern == WiringPattern::kPattern1 ? m : m + 1;
  const std::uint32_t offset = (pod * step) % g;
  const std::uint32_t pos = (slot + offset) % g;
  return (col * g + pos) % c.cores;
}

void FlatTree::wire_side_bundles() {
  const ClosParams& c = params_.clos;
  const std::uint32_t d = c.edge_per_pod;
  const std::uint32_t half = d / 2;
  const std::uint32_t m = params_.m();
  const std::uint32_t n = params_.n();
  const std::size_t per_pod = static_cast<std::size_t>(d) * (m + n);

  const auto six_index = [&](std::uint32_t pod, std::uint32_t col,
                             std::uint32_t row) {
    return pod * per_pod + static_cast<std::size_t>(col) * m + row;
  };

  // §3.3: converter (i, j) on the left blade of Pod p+1 pairs with
  // converter (i, (d/2 - 1 - j + i) mod (d/2)) on the right blade of Pod p.
  // Pods are closed into a ring (Pod 0's left pairs with the last Pod's
  // right) so no side bundle dangles.
  for (std::uint32_t pod = 0; pod < c.pods; ++pod) {
    const std::uint32_t prev = (pod + c.pods - 1) % c.pods;
    for (std::uint32_t col = 0; col < half; ++col) {
      for (std::uint32_t row = 0; row < m; ++row) {
        const std::uint32_t peer_col = half + (half - 1 - col + row) % half;
        const std::size_t left = six_index(pod, col, row);
        const std::size_t right = six_index(prev, peer_col, row);
        converters_[left].side_peer =
            ConverterId{static_cast<std::uint32_t>(right)};
        converters_[right].side_peer =
            ConverterId{static_cast<std::uint32_t>(left)};
      }
    }
  }
}

std::vector<ConverterConfig> FlatTree::configs_for(
    const ModeAssignment& assignment) const {
  const ClosParams& c = params_.clos;
  if (assignment.pod_modes.size() != c.pods) {
    throw std::invalid_argument("configs_for: mode count != pod count");
  }
  // Local mode target: half of each edge switch's servers move to the
  // aggregation switch (§3.5); 4-port converters move servers first, then
  // 6-port converters cover the remainder.
  const std::uint32_t target = c.servers_per_edge / 2;
  const std::uint32_t t4 = std::min(params_.n(), target);
  const std::uint32_t t6 =
      std::min(params_.m(), target > t4 ? target - t4 : 0);

  std::vector<ConverterConfig> configs(converters_.size(),
                                       ConverterConfig::kDefault);
  for (std::size_t i = 0; i < converters_.size(); ++i) {
    const Converter& conv = converters_[i];
    const PodMode mode = assignment.pod_modes[conv.pod.index()];
    switch (mode) {
      case PodMode::kClos:
        configs[i] = ConverterConfig::kDefault;
        break;
      case PodMode::kLocal:
        if (conv.type == ConverterType::kFourPort) {
          configs[i] = conv.row < t4 ? ConverterConfig::kLocal
                                     : ConverterConfig::kDefault;
        } else {
          configs[i] = conv.row < t6 ? ConverterConfig::kLocal
                                     : ConverterConfig::kDefault;
        }
        break;
      case PodMode::kGlobal:
        if (conv.type == ConverterType::kFourPort) {
          configs[i] = ConverterConfig::kLocal;
        } else {
          const PodMode peer_mode =
              assignment.pod_modes[converter(conv.side_peer).pod.index()];
          if (peer_mode == PodMode::kGlobal) {
            configs[i] = conv.row % 2 == 0 ? ConverterConfig::kSide
                                           : ConverterConfig::kCross;
          } else {
            // Hybrid boundary: the side bundle would dangle; keep the
            // circuit useful by relocating the server locally instead.
            configs[i] = ConverterConfig::kLocal;
          }
        }
        break;
    }
  }
  return configs;
}

Graph FlatTree::realize(const std::vector<ConverterConfig>& configs) const {
  return realize_impl(configs, nullptr);
}

FlatTree::LowerRealization FlatTree::realize_lower(
    const std::vector<ConverterConfig>& configs) const {
  LowerRealization result;
  result.core_endpoints.resize(params_.clos.cores);
  result.graph = realize_impl(configs, &result.core_endpoints);
  return result;
}

Graph FlatTree::realize_impl(
    const std::vector<ConverterConfig>& configs,
    std::vector<std::vector<NodeId>>* core_endpoints) const {
  const ClosParams& c = params_.clos;
  if (configs.size() != converters_.size()) {
    throw std::invalid_argument("realize: config count != converter count");
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (!is_legal_config(converters_[i].type, configs[i])) {
      throw std::invalid_argument(
          std::string("realize: illegal configuration ") +
          to_string(configs[i]) + " on a " + to_string(converters_[i].type) +
          " converter");
    }
  }

  Graph g;
  std::vector<NodeId> servers, edges, aggs, cores;
  for (std::uint32_t pod = 0; pod < c.pods; ++pod) {
    for (std::uint32_t e = 0; e < c.edge_per_pod; ++e) {
      for (std::uint32_t s = 0; s < c.servers_per_edge; ++s) {
        servers.push_back(g.add_node(NodeRole::kServer, PodId{pod}));
      }
    }
  }
  for (std::uint32_t pod = 0; pod < c.pods; ++pod) {
    for (std::uint32_t e = 0; e < c.edge_per_pod; ++e) {
      edges.push_back(g.add_node(NodeRole::kEdge, PodId{pod}));
    }
  }
  for (std::uint32_t pod = 0; pod < c.pods; ++pod) {
    for (std::uint32_t a = 0; a < c.agg_per_pod; ++a) {
      aggs.push_back(g.add_node(NodeRole::kAgg, PodId{pod}));
    }
  }
  if (core_endpoints == nullptr) {
    for (std::uint32_t core = 0; core < c.cores; ++core) {
      cores.push_back(g.add_node(NodeRole::kCore));
    }
  }

  // Either wires an endpoint to a core switch or, in multi-stage lower
  // realization, records it as that core connector's endpoint.
  const auto connect_core = [&](std::uint32_t core, NodeId endpoint) {
    if (core_endpoints == nullptr) {
      g.add_link(endpoint, cores[core], c.link_bps);
    } else {
      (*core_endpoints)[core].push_back(endpoint);
    }
  };

  // Edge-agg fabric: untouched by converters (§2.2 breaks only edge-server
  // and agg-core links).
  const std::uint32_t links_per_pair = c.edge_uplinks / c.agg_per_pod;
  for (std::uint32_t pod = 0; pod < c.pods; ++pod) {
    for (std::uint32_t e = 0; e < c.edge_per_pod; ++e) {
      for (std::uint32_t a = 0; a < c.agg_per_pod; ++a) {
        for (std::uint32_t l = 0; l < links_per_pair; ++l) {
          g.add_link(edges[pod * c.edge_per_pod + e],
                     aggs[pod * c.agg_per_pod + a], c.link_bps);
        }
      }
    }
  }

  // Servers beyond the converter rows stay on their edge switch.
  const std::uint32_t fixed_from = params_.m() + params_.n();
  for (std::uint32_t e = 0; e < c.total_edges(); ++e) {
    for (std::uint32_t s = fixed_from; s < c.servers_per_edge; ++s) {
      g.add_link(servers[server_index(e, s)], edges[e], c.link_bps);
    }
  }

  // Resolve converter circuits into direct links.
  for (std::size_t i = 0; i < converters_.size(); ++i) {
    const Converter& conv = converters_[i];
    const NodeId server = servers[conv.server];
    const NodeId edge = edges[conv.edge];
    const NodeId agg = aggs[conv.agg];
    switch (configs[i]) {
      case ConverterConfig::kDefault:
        g.add_link(edge, server, c.link_bps);
        connect_core(conv.core, agg);
        break;
      case ConverterConfig::kLocal:
        g.add_link(agg, server, c.link_bps);
        connect_core(conv.core, edge);
        break;
      case ConverterConfig::kSide:
      case ConverterConfig::kCross:
        connect_core(conv.core, server);
        break;  // side links handled pairwise below
    }
  }

  // Direct agg-core connectors (slots past the converter rows). Ordered
  // after the converter connectors so that, in multi-stage composition, the
  // endpoints an upper-stage blade receives first are the converter-borne
  // ones (relocated servers in global mode) rather than plain aggregation
  // uplinks.
  const std::uint32_t gg = c.core_connectors_per_edge();
  for (std::uint32_t pod = 0; pod < c.pods; ++pod) {
    for (std::uint32_t col = 0; col < c.edge_per_pod; ++col) {
      const std::uint32_t agg = pod * c.agg_per_pod + col / c.r();
      for (std::uint32_t slot = fixed_from; slot < gg; ++slot) {
        connect_core(core_for_slot(pod, col, slot), aggs[agg]);
      }
    }
  }

  // Side bundles, processed once per pair from the left-blade end.
  for (std::size_t i = 0; i < converters_.size(); ++i) {
    const Converter& conv = converters_[i];
    if (conv.type != ConverterType::kSixPort) continue;
    if (configs[i] != ConverterConfig::kSide &&
        configs[i] != ConverterConfig::kCross) {
      continue;
    }
    const Converter& peer = converter(conv.side_peer);
    const ConverterConfig peer_config = configs[conv.side_peer.index()];
    if (peer_config != configs[i]) {
      throw std::logic_error(
          "realize: side bundle configured " + std::string(to_string(configs[i])) +
          "/" + to_string(peer_config) +
          " — both ends of a bundle must match");
    }
    if (!conv.left_blade(c.edge_per_pod)) continue;  // links added once/pair
    const NodeId edge_a = edges[conv.edge];
    const NodeId agg_a = aggs[conv.agg];
    const NodeId edge_b = edges[peer.edge];
    const NodeId agg_b = aggs[peer.agg];
    if (configs[i] == ConverterConfig::kSide) {
      // Peer-wise: edge-edge and agg-agg across adjacent Pods.
      g.add_link(edge_a, edge_b, c.link_bps);
      g.add_link(agg_a, agg_b, c.link_bps);
    } else {
      // Crossed: edge-agg both ways.
      g.add_link(edge_a, agg_b, c.link_bps);
      g.add_link(agg_a, edge_b, c.link_bps);
    }
  }

  return g;
}

}  // namespace flattree
