// The flat-tree IP addressing scheme (§4.2.1, Figure 5).
//
// Address layout inside 10.0.0.0/8 (32-bit IPv4):
//
//   8 bits   fixed 00001010 (10.x.x.x)
//   13 bits  ingress/egress switch ID (stable across topology conversions)
//   3 bits   path ID (multi-homing for MPTCP subflows; up to 8 addresses
//            per server -> up to 64 concurrent paths)
//   2 bits   topology mode (0 global / 1 local / 2 clos)
//   6 bits   server ID under the ingress switch (reused across switches)
//
// A server needs one address per (topology mode, path id). All of them are
// preconfigured; MPTCP only sends on routable ones, so the controller
// activates a mode just by loading that mode's routing logic. The /24
// prefix (8 + 13 + 3 = 24 bits) aggregates all rules at the ingress/egress
// switch level, which is the key state reduction of §4.2.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/flat_tree.h"
#include "net/graph.h"

namespace flattree {

// Topology codes as in Figure 5c.
enum class TopoCode : std::uint8_t { kGlobal = 0, kLocal = 1, kClos = 2 };

[[nodiscard]] TopoCode code_for(PodMode mode);

struct FlatTreeAddress {
  std::uint16_t switch_id{0};  // 13 bits
  std::uint8_t path_id{0};     // 3 bits
  std::uint8_t topology{0};    // 2 bits
  std::uint8_t server_id{0};   // 6 bits

  [[nodiscard]] std::uint32_t to_ipv4() const;
  [[nodiscard]] static FlatTreeAddress from_ipv4(std::uint32_t address);

  // Dotted-quad form, e.g. "10.0.24.2".
  [[nodiscard]] std::string str() const;

  // The /24 prefix (first 24 bits) shared by all of a switch+path's servers.
  [[nodiscard]] std::uint32_t ingress_prefix() const {
    return to_ipv4() & 0xffffff00u;
  }

  friend bool operator==(const FlatTreeAddress&,
                         const FlatTreeAddress&) = default;
};

// Number of per-server IP addresses needed for k concurrent paths:
// ceil(sqrt(k)) (the full-mesh of source/destination address pairs yields
// the subflows).
[[nodiscard]] std::uint32_t addresses_for_k(std::uint32_t k);

// Address assignment for one topology mode over its realized graph.
// Switch IDs are the realized graph's switch ordinals (node index minus the
// server count), which the fixed node ordering keeps identical across
// modes.
class AddressPlan {
 public:
  AddressPlan(const Graph& realized, TopoCode topo, std::uint32_t k);

  [[nodiscard]] const std::vector<FlatTreeAddress>& addresses(
      NodeId server) const;

  // Reverse lookup: which server owns this address (if any).
  [[nodiscard]] std::optional<NodeId> server_for(FlatTreeAddress addr) const;

  [[nodiscard]] std::uint32_t addresses_per_server() const { return per_server_; }
  [[nodiscard]] TopoCode topo() const { return topo_; }
  [[nodiscard]] std::uint32_t k() const { return k_; }

 private:
  TopoCode topo_;
  std::uint32_t k_;
  std::uint32_t per_server_{0};
  std::vector<std::vector<FlatTreeAddress>> per_server_addresses_;  // by server node index
  std::vector<NodeId> server_nodes_;
  std::unordered_map<std::uint32_t, NodeId> reverse_;  // ipv4 -> server
};

// IPv6 form of the scheme (§4.2.1: "can be easily extended to IPv6
// addresses, which even support globally unique server IDs"). Layout within
// a ULA /16:
//
//   16 bits  fixed fd00::/16
//   13 bits  ingress/egress switch ID
//   3 bits   path ID
//   2 bits   topology mode
//   30 bits  reserved (zero)
//   64 bits  globally unique server ID (no 64-servers-per-switch reuse)
//
// The first 34 bits (prefix + switch + path + topology) aggregate rules at
// the ingress switch exactly as the /24 does for IPv4.
struct FlatTreeAddressV6 {
  std::uint16_t switch_id{0};   // 13 bits
  std::uint8_t path_id{0};      // 3 bits
  std::uint8_t topology{0};     // 2 bits
  std::uint64_t server_uid{0};  // globally unique

  // The 128-bit address as two big-endian halves.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> to_ipv6() const;
  [[nodiscard]] static FlatTreeAddressV6 from_ipv6(std::uint64_t hi,
                                                   std::uint64_t lo);

  // RFC 5952-ish textual form (full, un-abbreviated groups).
  [[nodiscard]] std::string str() const;

  // The aggregating prefix: top 34 bits of the high half.
  [[nodiscard]] std::uint64_t ingress_prefix() const {
    return to_ipv6().first >> 30;
  }

  friend bool operator==(const FlatTreeAddressV6&,
                         const FlatTreeAddressV6&) = default;
};

// IPv6 address assignment for one mode: like AddressPlan but with globally
// unique server IDs (the server's stable node id) in the low 64 bits, so
// no per-switch rank reuse is needed and a server keeps the same low half
// across every topology mode.
class AddressPlanV6 {
 public:
  AddressPlanV6(const Graph& realized, TopoCode topo, std::uint32_t k);

  [[nodiscard]] const std::vector<FlatTreeAddressV6>& addresses(
      NodeId server) const;
  [[nodiscard]] std::uint32_t addresses_per_server() const {
    return per_server_;
  }

 private:
  std::uint32_t per_server_{0};
  std::vector<std::vector<FlatTreeAddressV6>> per_server_addresses_;
};

// The full pre-configured address book of a convertible network: one plan
// per mode (Figure 5c lists a server's complete set across all modes).
class AddressBook {
 public:
  AddressBook(const FlatTree& tree, std::uint32_t k_global,
              std::uint32_t k_local, std::uint32_t k_clos);

  [[nodiscard]] const AddressPlan& plan(PodMode mode) const;

  // Total preconfigured addresses on one server across all modes.
  [[nodiscard]] std::uint32_t addresses_per_server() const;

 private:
  std::vector<AddressPlan> plans_;  // indexed by TopoCode
};

}  // namespace flattree
