#include "core/addressing.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace flattree {

TopoCode code_for(PodMode mode) {
  switch (mode) {
    case PodMode::kGlobal: return TopoCode::kGlobal;
    case PodMode::kLocal: return TopoCode::kLocal;
    case PodMode::kClos: return TopoCode::kClos;
  }
  return TopoCode::kClos;
}

std::uint32_t FlatTreeAddress::to_ipv4() const {
  if (switch_id >= (1u << 13) || path_id >= (1u << 3) ||
      topology >= (1u << 2) || server_id >= (1u << 6)) {
    throw std::invalid_argument("FlatTreeAddress: field overflow");
  }
  return (0x0au << 24) | (static_cast<std::uint32_t>(switch_id) << 11) |
         (static_cast<std::uint32_t>(path_id) << 8) |
         (static_cast<std::uint32_t>(topology) << 6) | server_id;
}

FlatTreeAddress FlatTreeAddress::from_ipv4(std::uint32_t address) {
  if ((address >> 24) != 0x0a) {
    throw std::invalid_argument("FlatTreeAddress: not in 10.0.0.0/8");
  }
  FlatTreeAddress a;
  a.switch_id = static_cast<std::uint16_t>((address >> 11) & 0x1fff);
  a.path_id = static_cast<std::uint8_t>((address >> 8) & 0x7);
  a.topology = static_cast<std::uint8_t>((address >> 6) & 0x3);
  a.server_id = static_cast<std::uint8_t>(address & 0x3f);
  return a;
}

std::string FlatTreeAddress::str() const {
  const std::uint32_t v = to_ipv4();
  return std::to_string(v >> 24) + "." + std::to_string((v >> 16) & 0xff) +
         "." + std::to_string((v >> 8) & 0xff) + "." +
         std::to_string(v & 0xff);
}

std::uint32_t addresses_for_k(std::uint32_t k) {
  if (k == 0) throw std::invalid_argument("addresses_for_k: k must be >= 1");
  std::uint32_t a = 1;
  while (a * a < k) ++a;
  if (a > 8) {
    throw std::invalid_argument(
        "addresses_for_k: 3-bit path ID supports at most 64 concurrent paths");
  }
  return a;
}

std::pair<std::uint64_t, std::uint64_t> FlatTreeAddressV6::to_ipv6() const {
  if (switch_id >= (1u << 13) || path_id >= (1u << 3) ||
      topology >= (1u << 2)) {
    throw std::invalid_argument("FlatTreeAddressV6: field overflow");
  }
  std::uint64_t hi = 0xfd00ULL << 48;
  hi |= static_cast<std::uint64_t>(switch_id) << 35;
  hi |= static_cast<std::uint64_t>(path_id) << 32;
  hi |= static_cast<std::uint64_t>(topology) << 30;
  return {hi, server_uid};
}

FlatTreeAddressV6 FlatTreeAddressV6::from_ipv6(std::uint64_t hi,
                                               std::uint64_t lo) {
  if ((hi >> 48) != 0xfd00) {
    throw std::invalid_argument("FlatTreeAddressV6: not in fd00::/16");
  }
  FlatTreeAddressV6 a;
  a.switch_id = static_cast<std::uint16_t>((hi >> 35) & 0x1fff);
  a.path_id = static_cast<std::uint8_t>((hi >> 32) & 0x7);
  a.topology = static_cast<std::uint8_t>((hi >> 30) & 0x3);
  a.server_uid = lo;
  return a;
}

std::string FlatTreeAddressV6::str() const {
  const auto [hi, lo] = to_ipv6();
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer),
                "%04x:%04x:%04x:%04x:%04x:%04x:%04x:%04x",
                static_cast<unsigned>(hi >> 48),
                static_cast<unsigned>((hi >> 32) & 0xffff),
                static_cast<unsigned>((hi >> 16) & 0xffff),
                static_cast<unsigned>(hi & 0xffff),
                static_cast<unsigned>(lo >> 48),
                static_cast<unsigned>((lo >> 32) & 0xffff),
                static_cast<unsigned>((lo >> 16) & 0xffff),
                static_cast<unsigned>(lo & 0xffff));
  return buffer;
}

AddressPlan::AddressPlan(const Graph& realized, TopoCode topo, std::uint32_t k)
    : topo_{topo}, k_{k}, per_server_{addresses_for_k(k)} {
  const std::uint32_t num_servers =
      static_cast<std::uint32_t>(realized.count_role(NodeRole::kServer));
  per_server_addresses_.resize(realized.node_count());
  server_nodes_ = realized.servers();

  // Rank servers under each switch by global server index ("ordered from
  // left to right" in Figure 5b).
  for (NodeId sw : realized.switches()) {
    std::vector<NodeId> attached = realized.attached_servers(sw);
    std::sort(attached.begin(), attached.end());
    const std::uint32_t switch_id = sw.value() - num_servers;
    if (switch_id >= (1u << 13)) {
      throw std::invalid_argument("AddressPlan: more than 8192 switches");
    }
    for (std::size_t rank = 0; rank < attached.size(); ++rank) {
      if (rank >= 64) {
        throw std::invalid_argument(
            "AddressPlan: more than 64 servers under one switch");
      }
      auto& list = per_server_addresses_[attached[rank].index()];
      for (std::uint32_t path = 0; path < per_server_; ++path) {
        FlatTreeAddress addr;
        addr.switch_id = static_cast<std::uint16_t>(switch_id);
        addr.path_id = static_cast<std::uint8_t>(path);
        addr.topology = static_cast<std::uint8_t>(topo);
        addr.server_id = static_cast<std::uint8_t>(rank);
        list.push_back(addr);
        reverse_.emplace(addr.to_ipv4(), attached[rank]);
      }
    }
  }
}

const std::vector<FlatTreeAddress>& AddressPlan::addresses(
    NodeId server) const {
  return per_server_addresses_.at(server.index());
}

std::optional<NodeId> AddressPlan::server_for(FlatTreeAddress addr) const {
  const auto it = reverse_.find(addr.to_ipv4());
  if (it == reverse_.end()) return std::nullopt;
  return it->second;
}

AddressPlanV6::AddressPlanV6(const Graph& realized, TopoCode topo,
                             std::uint32_t k)
    : per_server_{addresses_for_k(k)} {
  const std::uint32_t num_servers =
      static_cast<std::uint32_t>(realized.count_role(NodeRole::kServer));
  per_server_addresses_.resize(realized.node_count());
  for (NodeId server : realized.servers()) {
    const NodeId sw = realized.attachment_switch(server);
    const std::uint32_t switch_id = sw.value() - num_servers;
    if (switch_id >= (1u << 13)) {
      throw std::invalid_argument("AddressPlanV6: more than 8192 switches");
    }
    auto& list = per_server_addresses_[server.index()];
    for (std::uint32_t path = 0; path < per_server_; ++path) {
      FlatTreeAddressV6 addr;
      addr.switch_id = static_cast<std::uint16_t>(switch_id);
      addr.path_id = static_cast<std::uint8_t>(path);
      addr.topology = static_cast<std::uint8_t>(topo);
      addr.server_uid = server.value();  // globally unique, mode-stable
      list.push_back(addr);
    }
  }
}

const std::vector<FlatTreeAddressV6>& AddressPlanV6::addresses(
    NodeId server) const {
  return per_server_addresses_.at(server.index());
}

AddressBook::AddressBook(const FlatTree& tree, std::uint32_t k_global,
                         std::uint32_t k_local, std::uint32_t k_clos) {
  plans_.reserve(3);
  plans_.emplace_back(tree.realize_uniform(PodMode::kGlobal),
                      TopoCode::kGlobal, k_global);
  plans_.emplace_back(tree.realize_uniform(PodMode::kLocal), TopoCode::kLocal,
                      k_local);
  plans_.emplace_back(tree.realize_uniform(PodMode::kClos), TopoCode::kClos,
                      k_clos);
}

const AddressPlan& AddressBook::plan(PodMode mode) const {
  return plans_[static_cast<std::size_t>(code_for(mode))];
}

std::uint32_t AddressBook::addresses_per_server() const {
  std::uint32_t total = 0;
  for (const AddressPlan& plan : plans_) {
    total += plan.addresses_per_server();
  }
  return total;
}

}  // namespace flattree
