#include "core/multi_stage.h"

#include <stdexcept>
#include <string>

namespace flattree {

void MultiStageParams::validate() const {
  lower.validate();
  if (upper_pods == 0 || upper_edge_per_pod == 0 || upper_agg_per_pod == 0) {
    throw std::invalid_argument("multi-stage: zero-sized upper layer");
  }
  if (lower.clos.cores != upper_pods * upper_edge_per_pod) {
    throw std::invalid_argument(
        "multi-stage: lower cores (" + std::to_string(lower.clos.cores) +
        ") must equal upper_pods * upper_edge_per_pod (" +
        std::to_string(upper_pods * upper_edge_per_pod) + ")");
  }
  // The remaining structural constraints are exactly FlatTreeParams
  // constraints on the upper stage; delegate.
  upper_as_flat_tree().validate();
}

FlatTreeParams MultiStageParams::upper_as_flat_tree() const {
  FlatTreeParams p;
  p.clos.pods = upper_pods;
  p.clos.edge_per_pod = upper_edge_per_pod;
  p.clos.agg_per_pod = upper_agg_per_pod;
  p.clos.edge_uplinks = upper_edge_uplinks;
  // The upper stage's "servers" are the lower stage's core connectors.
  p.clos.servers_per_edge = lower.clos.core_ports;
  p.clos.agg_uplinks = upper_agg_uplinks;
  p.clos.cores = top_cores;
  p.clos.core_ports = top_core_ports;
  p.clos.link_bps = lower.clos.link_bps;
  p.six_port_per_column = upper_m;
  p.four_port_per_column = upper_n;
  p.pattern = upper_pattern;
  return p;
}

MultiStageFlatTree::MultiStageFlatTree(MultiStageParams params)
    : params_{std::move(params)},
      lower_{(params_.validate(), params_.lower)},
      upper_{params_.upper_as_flat_tree()} {}

Graph MultiStageFlatTree::realize(const ModeAssignment& lower_modes,
                                  const ModeAssignment& upper_modes) const {
  // 1. Lower stage without core nodes, collecting each core connector's
  //    endpoint.
  FlatTree::LowerRealization lower_real =
      lower_.realize_lower(lower_.configs_for(lower_modes));
  Graph g = std::move(lower_real.graph);

  // 2. Upper stage realized standalone: its "server" nodes stand in for the
  //    lower connectors and are spliced out below.
  const Graph upper_graph = upper_.realize(upper_.configs_for(upper_modes));

  const std::uint32_t connectors_per_core = params_.lower.clos.core_ports;
  const std::uint32_t upper_servers =
      upper_graph.count_role(NodeRole::kServer);
  if (upper_servers != params_.lower.clos.cores * connectors_per_core) {
    throw std::logic_error("multi-stage: connector count mismatch");
  }

  // Map every upper-graph node into the combined graph. Upper "servers"
  // resolve to lower endpoints; switches are appended with promoted roles.
  std::vector<NodeId> mapped(upper_graph.node_count(), NodeId::invalid());
  const std::uint32_t lower_pods = params_.lower.clos.pods;
  for (std::uint32_t i = 0; i < upper_graph.node_count(); ++i) {
    const Node& node = upper_graph.node(NodeId{i});
    switch (node.role) {
      case NodeRole::kServer: {
        // Upper server (c * connectors_per_core + j) is lower core c's j-th
        // connector (both orderings are pod-major and deterministic).
        const std::uint32_t core = i / connectors_per_core;
        const std::uint32_t slot = i % connectors_per_core;
        const auto& endpoints = lower_real.core_endpoints.at(core);
        if (slot >= endpoints.size()) {
          throw std::logic_error("multi-stage: lower core under-wired");
        }
        mapped[i] = endpoints[slot];
        break;
      }
      case NodeRole::kEdge:
        // Upper edge switches are the cores the lower stage addressed.
        mapped[i] = g.add_node(
            NodeRole::kCore,
            PodId{lower_pods + node.pod.value()});
        break;
      case NodeRole::kAgg:
        mapped[i] = g.add_node(NodeRole::kAgg2,
                               PodId{lower_pods + node.pod.value()});
        break;
      case NodeRole::kCore:
        mapped[i] = g.add_node(NodeRole::kCore2);
        break;
      default:
        throw std::logic_error("multi-stage: unexpected upper role");
    }
  }

  for (std::uint32_t i = 0; i < upper_graph.link_count(); ++i) {
    const Link& link = upper_graph.link(LinkId{i});
    g.add_link(mapped[link.a.index()], mapped[link.b.index()],
               link.capacity_bps);
  }
  return g;
}

}  // namespace flattree
