#include "core/profiling.h"

#include <limits>
#include <stdexcept>
#include <utility>

#include "exec/parallel.h"
#include "net/stats.h"

namespace flattree {

MnProfile profile_mn(const ClosParams& clos, WiringPattern pattern,
                     std::uint32_t stride, exec::ThreadPool* pool) {
  if (stride == 0) throw std::invalid_argument("profile_mn: stride must be >= 1");
  clos.validate();
  const std::uint32_t budget =
      std::min(clos.core_connectors_per_edge(), clos.servers_per_edge);

  // Enumerate the grid first so each cell is an indexed, independent task
  // (realize + all-pairs stats dominate; perfect fan-out shape).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> grid;
  for (std::uint32_t m = 1; m < budget; m += stride) {
    for (std::uint32_t n = 1; m + n <= budget; n += stride) {
      grid.emplace_back(m, n);
    }
  }
  if (grid.empty()) {
    throw std::invalid_argument("profile_mn: no feasible (m, n) candidates");
  }

  MnProfile profile;
  profile.candidates = exec::parallel_map(
      pool, grid.size(), [&](std::size_t i) {
        FlatTreeParams params;
        params.clos = clos;
        params.six_port_per_column = grid[i].first;
        params.four_port_per_column = grid[i].second;
        params.pattern = pattern;
        const FlatTree tree{params};
        const Graph realized = tree.realize_uniform(PodMode::kGlobal);
        const PathLengthStats stats = compute_path_length_stats(realized);

        MnCandidate candidate;
        candidate.m = grid[i].first;
        candidate.n = grid[i].second;
        candidate.avg_server_pair_hops = stats.avg_server_pair_hops;
        candidate.avg_switch_pair_hops = stats.avg_switch_pair_hops;
        return candidate;
      });

  // Strict < keeps the first minimum in enumeration order — the same
  // winner the serial sweep picked.
  double best = std::numeric_limits<double>::infinity();
  for (const MnCandidate& candidate : profile.candidates) {
    if (candidate.avg_server_pair_hops < best) {
      best = candidate.avg_server_pair_hops;
      profile.best = candidate;
    }
  }
  return profile;
}

}  // namespace flattree
