#include "core/profiling.h"

#include <limits>
#include <stdexcept>

#include "net/stats.h"

namespace flattree {

MnProfile profile_mn(const ClosParams& clos, WiringPattern pattern,
                     std::uint32_t stride) {
  if (stride == 0) throw std::invalid_argument("profile_mn: stride must be >= 1");
  clos.validate();
  const std::uint32_t budget =
      std::min(clos.core_connectors_per_edge(), clos.servers_per_edge);

  MnProfile profile;
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t m = 1; m < budget; m += stride) {
    for (std::uint32_t n = 1; m + n <= budget; n += stride) {
      FlatTreeParams params;
      params.clos = clos;
      params.six_port_per_column = m;
      params.four_port_per_column = n;
      params.pattern = pattern;
      const FlatTree tree{params};
      const Graph realized = tree.realize_uniform(PodMode::kGlobal);
      const PathLengthStats stats = compute_path_length_stats(realized);

      MnCandidate candidate;
      candidate.m = m;
      candidate.n = n;
      candidate.avg_server_pair_hops = stats.avg_server_pair_hops;
      candidate.avg_switch_pair_hops = stats.avg_switch_pair_hops;
      profile.candidates.push_back(candidate);
      if (candidate.avg_server_pair_hops < best) {
        best = candidate.avg_server_pair_hops;
        profile.best = candidate;
      }
    }
  }
  if (profile.candidates.empty()) {
    throw std::invalid_argument("profile_mn: no feasible (m, n) candidates");
  }
  return profile;
}

}  // namespace flattree
