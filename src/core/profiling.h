// (m, n) profiling (§3.4): flat-tree converts generic Clos layouts, so the
// best server distribution cannot be fixed a priori. The paper's suggestion
// is a profiling sweep — under the preferred Pod-core wiring pattern, vary
// m and n and keep the pair minimizing the average server-pair path length
// of the global-mode topology.
#pragma once

#include <cstdint>
#include <vector>

#include "core/flat_tree.h"
#include "topo/params.h"

namespace flattree {

namespace exec {
class ThreadPool;
}  // namespace exec

struct MnCandidate {
  std::uint32_t m{0};
  std::uint32_t n{0};
  double avg_server_pair_hops{0.0};
  double avg_switch_pair_hops{0.0};
};

struct MnProfile {
  std::vector<MnCandidate> candidates;  // full sweep, for ablation plots
  MnCandidate best;                     // minimal avg server-pair path length
};

// Sweeps all feasible (m, n) with m >= 1, n >= 1, m + n <= min(h/r,
// servers_per_edge). `stride` subsamples the grid for large layouts.
// Each grid cell realizes and profiles an independent topology, so the
// sweep fans across `pool` when one is given; candidates, enumeration
// order, and the selected best are bit-identical to the serial sweep.
[[nodiscard]] MnProfile profile_mn(const ClosParams& clos,
                                   WiringPattern pattern,
                                   std::uint32_t stride = 1,
                                   exec::ThreadPool* pool = nullptr);

}  // namespace flattree
