// Multi-stage flat-tree (§2.2, the paper's future-work extension):
//
//   "Flat-tree can be extended to multi-stages of Pods: the lower-layer
//    Pods consider the edge switches in the upper-layer Pods as core
//    switches; intermediate switch-only Pods take relocated servers from
//    lower-layer Pods as their own servers."
//
// The construction composes two FlatTree stages:
//
//   * The LOWER stage is an ordinary flat-tree whose "core switches" are
//     the upper stage's edge switches: lower core index c maps to upper Pod
//     c / upper_edge_per_pod, column c % upper_edge_per_pod. Every
//     lower-stage mechanism (Pod-core wiring patterns, side bundles,
//     converter configurations, per-Pod modes) applies unchanged.
//
//   * The UPPER stage is itself a flat-tree over switch-only Pods. Each
//     upper edge switch's "servers" are the connectors arriving from the
//     lower stage — the relocated lower servers in global mode, lower edge
//     or aggregation switches otherwise. Upper converter switches can
//     relocate those connectors to upper aggregation switches or to the
//     top-level cores, flattening the hierarchy one level further.
//
// Node roles in the realized graph: kServer/kEdge/kAgg for the lower stage,
// kCore for upper-Pod edge switches (exactly the "cores" the lower stage
// sees), kAgg2 for upper-Pod aggregation switches, kCore2 for the top
// cores. Node ids are stable across all mode combinations.
#pragma once

#include <cstdint>

#include "core/flat_tree.h"

namespace flattree {

struct MultiStageParams {
  // Lower stage: a complete flat-tree description. lower.clos.cores must
  // equal upper_pods * upper_edge_per_pod.
  FlatTreeParams lower;

  // Upper stage: switch-only Pods over the lower cores.
  std::uint32_t upper_pods{0};
  std::uint32_t upper_edge_per_pod{0};   // d_u; these ARE the lower cores
  std::uint32_t upper_agg_per_pod{0};
  std::uint32_t upper_edge_uplinks{0};   // per upper edge switch, to kAgg2
  std::uint32_t upper_agg_uplinks{0};    // h_u, to the top cores
  std::uint32_t top_cores{0};
  std::uint32_t top_core_ports{0};
  std::uint32_t upper_m{0};  // 6-port converter rows per upper column
  std::uint32_t upper_n{0};  // 4-port converter rows per upper column
  WiringPattern upper_pattern{WiringPattern::kPattern1};

  void validate() const;

  // The upper stage phrased as FlatTreeParams (its "servers per edge" are
  // the lower stage's per-core connector count).
  [[nodiscard]] FlatTreeParams upper_as_flat_tree() const;
};

class MultiStageFlatTree {
 public:
  explicit MultiStageFlatTree(MultiStageParams params);

  [[nodiscard]] const MultiStageParams& params() const { return params_; }
  [[nodiscard]] const FlatTree& lower() const { return lower_; }
  [[nodiscard]] const FlatTree& upper() const { return upper_; }

  // Realizes the full two-stage network for per-Pod modes at each stage.
  [[nodiscard]] Graph realize(const ModeAssignment& lower_modes,
                              const ModeAssignment& upper_modes) const;

  [[nodiscard]] Graph realize_uniform(PodMode lower_mode,
                                      PodMode upper_mode) const {
    return realize(
        ModeAssignment::uniform(params_.lower.clos.pods, lower_mode),
        ModeAssignment::uniform(params_.upper_pods, upper_mode));
  }

  // Total server count (servers live only in the lower stage).
  [[nodiscard]] std::uint32_t total_servers() const {
    return params_.lower.clos.total_servers();
  }

 private:
  MultiStageParams params_;
  FlatTree lower_;
  FlatTree upper_;
};

}  // namespace flattree
