// The flat-tree architecture (§3): a Clos network plus converter switches,
// convertible at run time between Clos, local (two-stage) random graph, and
// global random graph modes, per Pod.
//
// A FlatTree object owns the *static* wiring: which cables attach to which
// converter ports, the Pod-core wiring pattern (§3.2), and the inter-Pod
// side bundles (§3.3). It is built once. Operation modes are pure data: a
// ModeAssignment (one PodMode per Pod) deterministically maps to a converter
// configuration vector, and realize() materializes any configuration as a
// concrete Graph. Converter switches are passive circuit switches, so they
// never appear as hops in the realized graph — each circuit collapses to a
// direct link, exactly as the physical layer behaves.
//
// Node ids in every realized graph are identical across modes (servers,
// then edge, aggregation, core switches, each layer pod-major). A server
// keeps its NodeId when a conversion relocates it; only its attachment
// switch changes — this is what makes run-time conversion experiments
// meaningful.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/converter.h"
#include "net/graph.h"
#include "topo/params.h"

namespace flattree {

enum class PodMode : std::uint8_t { kClos, kLocal, kGlobal };
enum class WiringPattern : std::uint8_t { kPattern1, kPattern2 };

[[nodiscard]] const char* to_string(PodMode mode);

// One operation mode per Pod (§3.5 "Hybrid": arbitrary combinations).
struct ModeAssignment {
  std::vector<PodMode> pod_modes;

  static ModeAssignment uniform(std::uint32_t pods, PodMode mode) {
    return ModeAssignment{std::vector<PodMode>(pods, mode)};
  }
};

struct FlatTreeParams {
  ClosParams clos;
  std::uint32_t four_port_per_column{0};  // n in the paper (§3.1)
  std::uint32_t six_port_per_column{0};   // m in the paper (§3.1)
  WiringPattern pattern{WiringPattern::kPattern1};

  [[nodiscard]] std::uint32_t n() const { return four_port_per_column; }
  [[nodiscard]] std::uint32_t m() const { return six_port_per_column; }

  void validate() const;

  // A reasonable default: m = n = a quarter of the per-column core
  // connectors each (profiling via profile_mn() can refine this, §3.4).
  static FlatTreeParams defaults_for(const ClosParams& clos);
};

class FlatTree {
 public:
  explicit FlatTree(FlatTreeParams params);

  [[nodiscard]] const FlatTreeParams& params() const { return params_; }
  [[nodiscard]] const ClosParams& clos() const { return params_.clos; }
  [[nodiscard]] std::span<const Converter> converters() const {
    return converters_;
  }

  // Deterministic converter configuration for a mode assignment (§3.5):
  //   Clos    everything default.
  //   Local   4-port local; enough 6-port locals to put half of each edge
  //           switch's servers on the aggregation switch; the rest default.
  //   Global  4-port local; 6-port side on even rows / cross on odd rows.
  // In hybrid assignments, a 6-port converter whose side peer sits in a
  // non-global Pod falls back to local (its side bundle would otherwise
  // dangle); this keeps every circuit carrying traffic.
  [[nodiscard]] std::vector<ConverterConfig> configs_for(
      const ModeAssignment& assignment) const;

  // Materializes the network for a configuration vector. Throws
  // std::invalid_argument on illegal configurations (e.g. 4-port side) and
  // std::logic_error if side bundles are half-configured.
  [[nodiscard]] Graph realize(const std::vector<ConverterConfig>& configs) const;

  // Lower-stage realization for multi-stage composition (§2.2: "the
  // lower-layer Pods consider the edge switches in the upper-layer Pods as
  // core switches"). Materializes servers, edge and aggregation switches
  // with all intra-Pod and inter-Pod wiring, but instead of creating core
  // switch nodes reports each core connector's lower endpoint — the node an
  // upper-stage "edge" switch would receive on that connector.
  struct LowerRealization {
    Graph graph;  // servers + edges + aggs (+ their links); no cores
    // Per lower-core index: the endpoints wired to it, in deterministic
    // construction order (direct aggregation connectors first, then
    // converter connectors in converter order).
    std::vector<std::vector<NodeId>> core_endpoints;
  };
  [[nodiscard]] LowerRealization realize_lower(
      const std::vector<ConverterConfig>& configs) const;

  [[nodiscard]] Graph realize(const ModeAssignment& assignment) const {
    return realize(configs_for(assignment));
  }
  [[nodiscard]] Graph realize_uniform(PodMode mode) const {
    return realize(ModeAssignment::uniform(params_.clos.pods, mode));
  }

  // --- static wiring queries (used by tests and the control plane) -------

  // Core switch index a (pod, column, slot) core connector lands on; slots
  // 0..m-1 are blade B, m..m+n-1 blade A, m+n..g-1 direct agg connectors.
  [[nodiscard]] std::uint32_t core_for_slot(std::uint32_t pod,
                                            std::uint32_t col,
                                            std::uint32_t slot) const;

  [[nodiscard]] const Converter& converter(ConverterId id) const {
    return converters_.at(id.index());
  }

  // Global server index of local server `s` on global edge switch `edge`.
  [[nodiscard]] std::uint32_t server_index(std::uint32_t edge,
                                           std::uint32_t s) const {
    return edge * params_.clos.servers_per_edge + s;
  }

 private:
  void build_converters();
  void wire_side_bundles();
  [[nodiscard]] Graph realize_impl(
      const std::vector<ConverterConfig>& configs,
      std::vector<std::vector<NodeId>>* core_endpoints) const;

  FlatTreeParams params_;
  std::vector<Converter> converters_;
};

}  // namespace flattree
