// Converter switches (§2.2, Figure 1).
//
// A converter switch is a small passive circuit switch spliced into one
// edge-server cable and one aggregation-core cable of a Clos Pod. Changing
// its internal circuit configuration rewires those cables without touching
// the packet switches:
//
//   4-port (blade A)  ports {core, agg, edge, server}
//     default  core-agg, edge-server        (the original Clos links)
//     local    agg-server, core-edge        (server moves to the agg switch)
//
//   6-port (blade B)  ports {core, agg, edge, server, side x2}
//     default  core-agg, edge-server        (sides dark)
//     local    agg-server, core-edge        (sides dark)
//     side     core-server; edge and agg leave on the side bundle toward the
//              paired converter in the adjacent Pod, arriving peer-wise
//              (edge-edge, agg-agg)
//     cross    core-server; edge and agg leave crossed, arriving as
//              edge-agg / agg-edge
//
// 4-port converters must not relocate servers to core switches: doing so
// would force an edge-agg circuit on the remaining ports, wasting a link on
// a link type the Pod already has in abundance (§2.2).
#pragma once

#include <cstdint>

#include "net/ids.h"

namespace flattree {

enum class ConverterType : std::uint8_t { kFourPort, kSixPort };

enum class ConverterConfig : std::uint8_t { kDefault, kLocal, kSide, kCross };

[[nodiscard]] const char* to_string(ConverterType type);
[[nodiscard]] const char* to_string(ConverterConfig config);

// side/cross are physically impossible on 4-port converters.
[[nodiscard]] constexpr bool is_legal_config(ConverterType type,
                                             ConverterConfig config) {
  if (type == ConverterType::kFourPort) {
    return config == ConverterConfig::kDefault ||
           config == ConverterConfig::kLocal;
  }
  return true;
}

// Where the converter's server lands under a configuration.
enum class ServerAttachment : std::uint8_t { kEdge, kAgg, kCore };

[[nodiscard]] constexpr ServerAttachment server_attachment(
    ConverterConfig config) {
  switch (config) {
    case ConverterConfig::kDefault: return ServerAttachment::kEdge;
    case ConverterConfig::kLocal: return ServerAttachment::kAgg;
    case ConverterConfig::kSide:
    case ConverterConfig::kCross: return ServerAttachment::kCore;
  }
  return ServerAttachment::kEdge;
}

// One converter instance with its static cable attachments. The fields are
// global indices (index_in_role order) into the realized graph's layers.
struct Converter {
  ConverterType type{ConverterType::kFourPort};
  PodId pod{};
  std::uint32_t row{0};   // row within the blade matrix (0..n-1 or 0..m-1)
  std::uint32_t col{0};   // edge-switch column within the Pod (0..d-1)
  std::uint32_t edge{0};    // global edge switch index
  std::uint32_t agg{0};     // global aggregation switch index
  std::uint32_t core{0};    // global core switch index (from Pod-core wiring)
  std::uint32_t server{0};  // global server index (the broken-out server)
  // 6-port only: the converter this one's side bundle attaches to.
  ConverterId side_peer{};

  [[nodiscard]] bool left_blade(std::uint32_t edge_per_pod) const {
    return col < edge_per_pod / 2;
  }
};

}  // namespace flattree
