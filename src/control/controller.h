// Centralized control system (§4).
//
// The controller owns the flat-tree's static wiring and, per operation
// mode, compiles everything the network needs to run that mode:
//   * converter switch configurations (hard-coded per mode, §4),
//   * the realized topology graph,
//   * k-shortest-path routing state with ingress/egress prefix aggregation
//     (rule counts per switch, §4.2),
//   * the IP address plan for the mode (§4.2.1).
//
// plan_conversion() diffs two compiled modes the way the testbed control
// software does: count converter reconfigurations (OCS partitions), rules
// to delete from the outgoing mode and to add for the incoming mode, and
// price them with the measured per-operation latencies (Table 3).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/addressing.h"
#include "core/flat_tree.h"
#include "net/failures.h"
#include "net/graph.h"
#include "obs/sink.h"
#include "routing/ksp.h"
#include "routing/rules.h"

namespace flattree {

// Latency model calibrated against Table 3: a single 160 ms OCS
// reconfiguration pass plus per-rule delete/add on the busiest switch
// table. The paper's own numbers imply ~2.65 ms per rule at its rule
// maxima (242 global / 180 local / 76 Clos); our compiled global-mode
// tables are about twice as large (this implementation's k-shortest paths
// on the ring-closed testbed wiring traverse more switches), so the
// default constants are scaled to keep the end-to-end conversion delay at
// the paper's ~1 s magnitude. See bench_table3 for the side-by-side.
struct ConversionDelayModel {
  double ocs_reconfigure_s{0.160};
  double rule_delete_s{0.00131};  // per rule of the outgoing mode
  double rule_add_s{0.00133};     // per rule of the incoming mode
  // §4.3: "we can speed up the state distribution by having a set of
  // controllers each managing a number of switches". Rule update time
  // divides by the controller count; the OCS pass does not.
  std::uint32_t controllers{1};

  // The controllers divisor with the zero-guard applied — the single home
  // of the clamp rule (controllers == 0 behaves as 1).
  [[nodiscard]] double effective_controllers() const {
    return std::max<std::uint32_t>(1, controllers);
  }

  // Rejects meaningless timings: a negative (or NaN) per-operation delay
  // would silently produce a negative ConversionReport/RepairPlan total.
  // Throws std::invalid_argument. Called at every pricing site.
  void validate() const;
};

struct ConversionReport {
  std::uint32_t converters_changed{0};
  std::uint64_t rules_deleted{0};
  std::uint64_t rules_added{0};
  double ocs_s{0.0};
  double delete_s{0.0};
  double add_s{0.0};
  [[nodiscard]] double total_s() const { return ocs_s + delete_s + add_s; }
};

// What a repair did to a CompiledMode's routing state (see apply_repair).
struct RepairApplication {
  std::size_t pairs_invalidated{0};  // cache entries evicted
  std::size_t pairs_retained{0};     // cache entries that survived
  std::vector<EvictedPair> evicted;  // the evicted pairs + old rule counts
};

// Everything the network needs to operate one mode assignment.
class CompiledMode {
 public:
  CompiledMode(const FlatTree& tree, ModeAssignment assignment,
               std::uint32_t k, bool count_rules,
               const obs::ObsSink& sink = obs::ObsSink{});

  [[nodiscard]] const ModeAssignment& assignment() const { return assignment_; }
  [[nodiscard]] const std::vector<ConverterConfig>& configs() const {
    return configs_;
  }
  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] std::shared_ptr<const Graph> graph_ptr() const { return graph_; }
  [[nodiscard]] PathCache& paths() const { return *paths_; }
  [[nodiscard]] std::uint32_t k() const { return k_; }

  // Switches the live mode to a repaired operating topology without a full
  // recompile: replaces the graph and converter configs, then incrementally
  // invalidates the path cache — only pairs whose paths traverse a failed
  // switch or a severed adjacency are evicted; everything else keeps
  // serving. `graph` must share node ids with the current graph (every
  // flat-tree realization and every degrade() of one does). The rule-count
  // statistics are NOT recomputed — they keep describing the last full
  // compile; the incremental delta lives in the returned application and
  // the RepairPlan built from it.
  // With `warm`, the eviction runs PathCache::rebind_warm instead: the
  // provably minimal exact set under the adjacency delta, so surviving
  // entries are byte-identical to a cold recompute. Only sound when the
  // repair is a pure degrade (no converter rewire): an added adjacency
  // makes warm eviction *exact* where the legacy policy is
  // survivors-stay-valid, and the two genuinely diverge — plan_repair
  // falls back to the legacy policy for rewires.
  RepairApplication apply_repair(std::shared_ptr<const Graph> graph,
                                 std::vector<ConverterConfig> configs,
                                 std::span<const NodeId> failed_switches,
                                 bool warm = false);

  // Prefix-aggregated rule statistics (only if compiled with count_rules).
  [[nodiscard]] bool has_rule_counts() const { return has_rule_counts_; }
  [[nodiscard]] std::uint64_t total_rules() const { return total_rules_; }
  [[nodiscard]] std::uint64_t max_rules_per_switch() const {
    return max_rules_per_switch_;
  }
  [[nodiscard]] const StateCounts& state_counts() const { return states_; }

 private:
  ModeAssignment assignment_;
  std::uint32_t k_;
  std::vector<ConverterConfig> configs_;
  std::shared_ptr<const Graph> graph_;
  std::unique_ptr<PathCache> paths_;  // mutable cache over graph_
  bool has_rule_counts_{false};
  std::uint64_t total_rules_{0};
  std::uint64_t max_rules_per_switch_{0};
  StateCounts states_{};
};

struct ControllerOptions {
  std::uint32_t k_global{8};
  std::uint32_t k_local{8};
  std::uint32_t k_clos{8};
  ConversionDelayModel delay{};
  bool count_rules{true};  // disable for large topologies
  // plan_repair evicts via PathCache::rebind_warm (provably minimal exact
  // eviction under the failure's adjacency delta) instead of the legacy
  // rebind_and_invalidate survivors-stay-valid scan. Pure-removal repairs
  // produce the identical post-repair route state either way (pinned by
  // tests/test_warm_repair_diff.cc); repairs that rewire converters always
  // use the legacy policy, where the added circuits make the two semantics
  // diverge. Off by default so existing goldens stay byte-identical.
  bool warm_repair{false};
  // Observability: when attached, compiled modes count their path-cache
  // traffic (routing.ksp.*) and plan_repair/plan_conversion record
  // control.* counters, rule-delta histograms, Table-3 priced delays, and
  // tracer marks per planning phase. Disabled (all-null) by default.
  obs::ObsSink sink{};
};

struct RepairOptions {
  // Consider converter reconfiguration as a repair action: a side/cross
  // converter whose core switch died has its broken-out server stranded on
  // the dead box; flipping the converter pair to local re-homes both
  // servers onto their aggregation switches (costing one OCS pass).
  bool allow_converter_rewire{true};
};

// An incremental recovery plan: the post-repair operating topology, the
// converter reconfigurations, and the rule-table delta priced with the
// same Table-3 delay model as full conversions. Unlike a ConversionReport
// (busiest-switch table rewritten wholesale), the rule counts here are the
// exact per-pair delta: only rules for path-cache entries broken by the
// failure are deleted and replaced.
struct RepairPlan {
  std::uint32_t converters_changed{0};
  std::uint64_t rules_deleted{0};
  std::uint64_t rules_added{0};
  double ocs_s{0.0};
  double delete_s{0.0};
  double add_s{0.0};
  [[nodiscard]] double total_s() const { return ocs_s + delete_s + add_s; }

  std::size_t pairs_invalidated{0};
  std::size_t pairs_retained{0};
  bool used_converter_rewire{false};
  std::vector<ConverterConfig> configs;   // post-repair converter configs
  std::shared_ptr<const Graph> graph;     // post-repair operating topology
};

class Controller {
 public:
  Controller(FlatTree tree, ControllerOptions options);

  [[nodiscard]] const FlatTree& tree() const { return tree_; }
  [[nodiscard]] const ControllerOptions& options() const { return options_; }

  // k for a uniform mode, per the per-mode options.
  [[nodiscard]] std::uint32_t k_for(PodMode mode) const;

  [[nodiscard]] CompiledMode compile(const ModeAssignment& assignment,
                                     std::uint32_t k) const;
  [[nodiscard]] CompiledMode compile_uniform(PodMode mode) const;

  [[nodiscard]] ConversionReport plan_conversion(const CompiledMode& from,
                                                 const CompiledMode& to) const;

  // Recovery after `failures` strike while `mode` is live. Recomputes
  // routing state excluding the failed elements *incrementally*: the mode's
  // path cache keeps every entry untouched by the failure and re-solves
  // only the broken pairs on the degraded topology, so the rule delta (and
  // hence the recovery latency) scales with the blast radius instead of the
  // network size. With allow_converter_rewire, servers stranded on a failed
  // core switch are rescued by flipping their converter pair to local —
  // repair-by-reconfiguration, the flat-tree-native recovery action. `mode`
  // is mutated: after the call its graph() is the repaired topology and its
  // paths() serve routes around the failure.
  [[nodiscard]] RepairPlan plan_repair(
      CompiledMode& mode, const FailureSet& failures,
      const RepairOptions& repair_options = RepairOptions{}) const;

  // §4.3: "they can convert the topology gradually involving some of the
  // network devices... e.g. draining parts of the network incrementally
  // before making the changes". Returns the sequence of intermediate mode
  // assignments that converts one Pod per step (Pods already in their
  // target mode are skipped); the last element equals `to`. The sequence
  // may pass through hybrid assignments, which flat-tree supports natively.
  [[nodiscard]] static std::vector<ModeAssignment> gradual_plan(
      const ModeAssignment& from, const ModeAssignment& to);

 private:
  FlatTree tree_;
  ControllerOptions options_;
};

}  // namespace flattree
