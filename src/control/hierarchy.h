// Two-level, partition-tolerant control plane (the ROADMAP's disaggregated
// controller hierarchy, closing the last pre-PR-7 carry-over).
//
// One *root coordinator* (homed on a core switch, with the PR-6 standby on a
// second core) federates per-Pod *local controllers* (each homed on its
// Pod's first aggregation switch). Every control message still rides the
// PR-5 lossy channel (ControlChannelOptions); what changes is that the
// one-way delay per message is now derived from hop distance on the control
// topology (net/control_rtt.h) instead of a uniform constant — channel_for()
// fills ControlChannelOptions::switch_delay_s so a switch is charged the
// distance from the controller that actually programs it: its Pod's local
// controller under the hierarchy, the root under the flat baseline.
//
// Partition tolerance (run(), the serving-plane simulation):
//
//   * Heartbeats. The root exchanges heartbeats with each Pod controller
//     every heartbeat_period_s; heartbeat_miss_limit consecutive misses
//     declare the Pod partitioned (detection latency = period * limit).
//   * Graceful degradation. An islanded Pod controller keeps serving the
//     installed routes fail-static, performs *Pod-local repair* — a
//     plan_repair-style re-solve restricted to intra-Pod survivors — for
//     failures whose blast radius stays inside its Pod, and journals what
//     it installed. The flat baseline must defer every repair that needs a
//     rule installed inside the island until the partition heals: that
//     deferral window is precisely the blackhole gap bench_control_partition
//     measures between the two control planes.
//   * Rejoin reconciliation. When heartbeats resume, the Pod controller
//     replays its journal to the root and diverged pairs are reconciled
//     back to the canonical plan through the PR-5/PR-6 epoch protocol — at
//     no point does a mixed-epoch rule set serve traffic. Conversions
//     in flight across a partition inherit the executor's guarantee: the
//     kEpochFlip barrier refuses to commit a stage spanning an island, so
//     the stage rolls back one checkpoint (kPartial), never the whole
//     conversion (ConversionFaults::partitions +
//     ConversionExecOptions::pod_local_authority).
//   * Root crashes still promote the standby after failover_takeover_s;
//     Pod-local repair keeps working while the root seat is empty — the
//     hierarchy's second graceful-degradation win.
//
// Determinism: run() is a pure function of its arguments (the only RNG is
// the conversion executor's seeded channel), every ctrl.hier.* metric
// update is commutative, and repair/partition timings derive from the
// options and the graph — so results are byte-identical across threads.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "control/conversion_exec.h"
#include "control/controller.h"
#include "net/control_rtt.h"
#include "net/failures.h"
#include "net/graph.h"
#include "obs/sink.h"

namespace flattree {

enum class ControlPlaneKind : std::uint8_t {
  kFlat,          // one root (plus standby) programs every switch
  kHierarchical,  // root coordinator + per-Pod local controllers
};

[[nodiscard]] const char* to_string(ControlPlaneKind kind);

struct ControlHierarchyOptions {
  // Base lossy-channel parameters; delay_s doubles as the RTT model's
  // per-message floor, so flat and hierarchical planes price the same
  // message identically when topology_rtts is off.
  ControlChannelOptions channel{};
  // Per-hop one-way control latency on the realized graph.
  double per_hop_s{0.0002};
  // Derive per-switch delays from hop distance (channel_for). Off = the
  // uniform channel, for ablation.
  bool topology_rtts{true};
  double heartbeat_period_s{0.05};
  std::uint32_t heartbeat_miss_limit{3};
  // Standby promotion delay after a root crash.
  double failover_takeover_s{0.25};
  // ctrl.hier.* counters and gauges; all updates commutative.
  obs::ObsSink sink{};

  // Throws std::invalid_argument on out-of-range fields (see the channel's
  // own validate for its members; additionally per_hop_s >= 0,
  // heartbeat_period_s > 0, heartbeat_miss_limit >= 1,
  // failover_takeover_s >= 0, NaN rejected).
  void validate() const;
};

// Injected control-plane chaos for one run.
struct HierarchyFaults {
  // Control-network partitions between the root and Pod controllers (the
  // same windows drive ConversionFaults::partitions for a conversion in
  // flight).
  std::vector<ControlPartition> partitions;
  // When >= 0, the root controller crashes at this time; the standby is
  // promoted failover_takeover_s later.
  double root_crash_at_s{-1.0};
};

// One repair the control plane performed (or deferred) during a run.
struct HierarchyRepair {
  std::size_t pair{0};         // index into the tracked pairs
  double failed_at_s{0.0};     // when the storm broke the pair
  double installed_at_s{0.0};  // when replacement routes landed
  bool local{false};           // performed by the Pod controller
  bool deferred{false};        // waited out a partition / dead root seat
};

struct HierarchyRunResult {
  double duration_s{0.0};
  // Fraction-weighted route-availability integral over the tracked pairs
  // (same discipline as ExecutionReport::total_blackhole_s; a conversion's
  // own integral is folded in over its execution span).
  double blackhole_pair_s{0.0};
  double max_pair_blackhole_s{0.0};

  std::uint32_t repairs_local{0};
  std::uint32_t repairs_root{0};
  std::uint32_t repairs_deferred{0};
  std::uint32_t partitions_detected{0};
  std::uint32_t partitions_rejoined{0};
  std::uint64_t heartbeats_missed{0};
  std::uint32_t journal_appended{0};   // islanded local installs journaled
  std::uint32_t journal_replayed{0};   // journal entries replayed on rejoin
  std::uint64_t pairs_reconciled{0};   // diverged pairs restored to plan
  std::uint32_t failovers{0};
  std::vector<HierarchyRepair> repairs;

  // The staged conversion driven through this control plane, if one ran.
  std::optional<ExecutionReport> conversion;

  [[nodiscard]] double mean_repair_lag_s() const;
};

class ControlHierarchy {
 public:
  // `controller` must outlive the hierarchy. Throws on invalid options.
  ControlHierarchy(const Controller& controller, ControlPlaneKind kind,
                   ControlHierarchyOptions options);

  [[nodiscard]] ControlPlaneKind kind() const { return kind_; }
  [[nodiscard]] const ControlHierarchyOptions& options() const {
    return options_;
  }

  // Controller homes on a realization: the root sits on the first core
  // switch (first aggregation switch when the realization has no cores),
  // the standby on the second core, a Pod controller on its Pod's first
  // aggregation switch (first edge switch as fallback).
  [[nodiscard]] NodeId root_site(const Graph& graph) const;
  [[nodiscard]] NodeId standby_site(const Graph& graph) const;
  [[nodiscard]] NodeId pod_site(const Graph& graph, PodId pod) const;

  // The lossy channel with topology-aware per-switch delays on `graph`:
  // every node is charged the hop distance from the controller that
  // programs it (root everywhere under kFlat; the Pod's local controller
  // for Pod switches under kHierarchical). With topology_rtts off, returns
  // the uniform base channel.
  [[nodiscard]] ControlChannelOptions channel_for(const Graph& graph) const;

  // Serves `pairs` on `mode` for duration_s while `storm` degrades the
  // data plane and `faults` degrade the control plane, dispatching repairs
  // through this control plane's shape. When `convert_to` is non-null, a
  // staged conversion to it is driven through a ConversionExecutor at
  // convert_at_s (exec_base supplies protocol knobs; its channel is
  // replaced by channel_for, its pod_local_authority by the hierarchy's
  // kind, and the partition/root-crash faults are threaded through). The
  // conversion span's blackhole integral comes from the executor; the
  // serving simulation accounts the rest of the run.
  [[nodiscard]] HierarchyRunResult run(
      const CompiledMode& mode,
      std::span<const std::pair<NodeId, NodeId>> pairs,
      const FailureSchedule& storm, const HierarchyFaults& faults,
      double duration_s, const CompiledMode* convert_to = nullptr,
      double convert_at_s = 0.0,
      const ConversionExecOptions& exec_base = ConversionExecOptions{}) const;

 private:
  const Controller* controller_;
  ControlPlaneKind kind_;
  ControlHierarchyOptions options_;
};

}  // namespace flattree
