// Staged, fault-tolerant conversion execution (§4.3 made operational),
// hardened against concurrent failures ("conversion under fire").
//
// Controller::plan_conversion prices a mode change as one atomic diff; this
// module actually walks the network through it, live, and survives both the
// control plane misbehaving and the data plane failing underneath it on the
// way. A ConversionExecutor decomposes the diff into an ordered schedule of
// discrete steps:
//
//   per OCS partition p (the changed converter units, side-peer pairs kept
//   atomic, chunked into `ocs_partitions` groups):
//     1. kRulePatch   make-before-break: every pair whose installed routes
//                     would break when p's circuits move is re-routed on the
//                     intersection graph (valid both before and after the
//                     rewire) — or, when a pair physically moves with the
//                     rewire (its access circuit is part of p), armed with
//                     routes that activate the instant the rewire completes.
//     2. kOcs         partition p's converters rewire (one OCS pass).
//   then the two-phase epoch rule protocol:
//     3. kRuleAdd     per switch, the incoming mode's rules are installed
//                     under the new epoch tag — inert until the flip, so
//                     every packet still matches a pure old-mode table.
//     4. kEpochFlip   the barrier + ingress epoch flip: the commit point.
//                     Before it, any exhausted step rolls the fabric back to
//                     the last checkpoint; after it, the stage is committed
//                     and remaining failures are best-effort.
//     5. kRuleDelete  per switch, the old-epoch rules are garbage-collected.
//
// Every step executes over a lossy control channel (per-message drop
// probability and delay, seeded RNG) with timeout, exponential backoff with
// deterministic decorrelated jitter, and bounded idempotent retries. A step
// that exhausts its retries — an injected OCS partition failure, a
// control-plane-dead switch that never acks, or plain bad luck at high loss
// — triggers rollback to the last committed epoch: applied partitions
// un-rewire in reverse order (with the same make-before-break patching),
// installed new-epoch rules are collected, and a final kRuleRestore step
// reinstates the checkpoint's canonical routes. Rollback steps retry
// unbounded (the channel is lossy, not dead).
//
// Storm tolerance (execute_under_storm) adds three layers on top:
//
//   * Live invalidation + re-planning. A FailureSchedule of data-plane
//     fail/recover events (link ids in the origin realization's space, as a
//     reference for node-pair resolution across realizations) runs
//     concurrently with the step schedule. Due events fold into the live
//     graph at every step boundary; installed routes broken by a failure
//     are re-planned on the live graph in a batched kRulePatch step
//     (StepRecord::replan) instead of aborting, stage-target routes are
//     repaired through Controller::plan_repair on a storm-degraded copy of
//     the stage plan, and recoveries reconcile diverged pairs back to the
//     canonical plan — so a fully recovered storm leaves routes bit-for-bit
//     equal to the plan.
//   * Stage checkpoints (options.stage_checkpoints). The conversion runs as
//     Controller::gradual_plan's per-Pod stages, each driven through the
//     full epoch protocol above. Every committed stage is a durable
//     rollback point (a CheckpointRecord: assignment, configs, canonical
//     routes); an exhausted step rolls back to the *last checkpoint* — a
//     valid partial mode from the paper's convertibility spectrum — not the
//     origin, and the execution reports kPartial. The terminal state is
//     always bit-for-bit one of the checkpointed modes once active storm
//     failures have recovered.
//   * Controller failover (faults.kill_primary_at_s). A primary/standby
//     pair shares the lossy channel; when the primary dies mid-conversion
//     the standby takes over after failover_takeover_s, re-issues the step
//     that was in flight (idempotent confirm — its ack went to the dead
//     primary), and resumes. The execution loops derive their position
//     purely from durable state — converter configs readable from the OCS
//     hardware, per-switch epoch-tagged rule counts, and the last
//     checkpoint record — so the takeover genuinely reconstructs execution
//     intent from the network, never leaving mixed-epoch state behind.
//
// A transient-invariant checker runs after every state-changing step:
// server-level connectivity (of the clean realization — a storm partition
// is the storm's fault, not the executor's), no black-holed pair (every
// pair that is physically reachable on the live graph keeps a non-empty
// route set whose paths are all valid on it), and no routing loop. The
// atomic-swap baseline (staged = false: delete all old rules, one OCS pass,
// add all new rules) violates no-blackhole by construction during its rule
// window — that window is the cost the staged protocol exists to remove,
// and bench_conversion_churn / bench_conversion_storm measure it.
//
// Control-plane-dead switches are fail-static: they keep forwarding the
// rules already installed but never ack an update. Patch routes are
// therefore solved avoiding dead switches as transit; rule operations that
// would land on a dead switch inside a batched step are skipped and counted
// (conv_exec.rules_skipped_dead), while a per-switch kRuleAdd/kRuleDelete
// step addressed to a dead switch fails outright (the epoch protocol cannot
// proceed without that exact table) and rolls the conversion back.
//
// The execution's ExecutionReport carries a timeline of boundary states
// (live graph, epoch, per-pair installed routes, packet blackout window) —
// including a point per folded storm batch — that drives both simulators
// through every transient topology: run_fluid_with_conversion replays it
// through FluidSimulator::run_with_schedule on the union graph, and
// drive_packet_sim replays it through PacketSim::apply_conversion.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "control/controller.h"
#include "net/failures.h"
#include "net/graph.h"
#include "obs/sink.h"
#include "routing/path.h"
#include "sim/fluid.h"
#include "sim/packet.h"
#include "traffic/flow.h"

namespace flattree {

// The lossy control channel between the controller and the devices it
// programs. Every step is one idempotent command: each attempt draws the
// command drop and (if delivered and executed) the ack drop independently;
// a lost message surfaces as a timeout and the next attempt goes out after
// timeout_s * backoff^(attempt-1), floored at one command round trip and
// shortened by up to `jitter` of itself. The jitter draw comes from a
// dedicated RNG stream decorrelated from the per-message drop stream, so
// changing it reshapes retry *timing* without perturbing any delivery
// outcome — and executions stay byte-identical across thread counts.
struct ControlChannelOptions {
  double drop_probability{0.0};   // per message, in [0, 1)
  double delay_s{0.0005};         // one-way controller <-> device latency
  double timeout_s{0.05};         // base retransmit timeout
  double backoff{2.0};            // timeout multiplier per retry
  double jitter{0.1};             // backoff desynchronization, in [0, 1]
  std::uint32_t max_attempts{5};  // forward steps; rollback retries unbounded
  // Topology-aware per-switch one-way delays, indexed by node id (see
  // net/control_rtt.h). Empty = every message costs the uniform delay_s.
  // Per-switch steps addressed to node n use switch_delay_s[n]; untargeted
  // steps (patches, OCS passes, the epoch flip barrier) keep delay_s —
  // they fan out to many devices and the uniform figure is their
  // calibrated aggregate. Delays shape retry *timing* only; delivery
  // outcomes come from the drop stream and stay invariant.
  std::vector<double> switch_delay_s;

  // Throws std::invalid_argument on out-of-range fields (negative delays,
  // drop_probability outside [0, 1), backoff < 1, jitter outside [0, 1],
  // zero attempts, negative switch_delay_s entries, NaN).
  void validate() const;
};

// One control-network partition window: the Pod's switches are unreachable
// from the root controller for t in [start_s, end_s) (end_s < 0 = never
// heals). Core switches have no Pod and are never partitioned.
struct ControlPartition {
  PodId pod{};
  double start_s{0.0};
  double end_s{-1.0};
};

// Injected control-plane faults for chaos testing.
struct ConversionFaults {
  // Switches that keep forwarding (fail-static) but never ack an update.
  std::vector<NodeId> dead_switches;
  // Forward OCS steps (by partition index in execution order, global across
  // stages) that fail permanently: the circuits never move, every attempt
  // reports failure.
  std::vector<std::uint32_t> fail_ocs_partitions;
  // When >= 0, the primary controller dies at this simulated time; the
  // standby takes over at the next step boundary (see the header comment).
  double kill_primary_at_s{-1.0};
  // Control-network partitions. While a Pod is partitioned its switches keep
  // forwarding installed rules fail-static. Under the flat controller
  // (pod_local_authority = false) a per-switch rule step addressed into the
  // partition fails outright — the root cannot reach the table — and
  // old-epoch GC / rollback deletes into it are skipped and counted
  // (rules_skipped_dead; the leftovers are inert under the committed
  // epoch). With a Pod-local controller holding authority
  // (pod_local_authority = true) those per-switch steps succeed — the local
  // controller programs its own Pod. Either way the kEpochFlip barrier
  // fails while any Pod carrying new-epoch rules is partitioned: the
  // root-coordinated commit cannot span an island, so the in-flight stage
  // rolls back to the last checkpoint (kPartial), never the whole
  // conversion. Windows are checked at step start (per-call granularity,
  // deterministic).
  std::vector<ControlPartition> partitions;
};

struct ConversionExecOptions {
  bool staged{true};              // false = atomic-swap baseline
  std::uint32_t ocs_partitions{4};
  ControlChannelOptions channel{};
  std::uint64_t seed{1};
  bool check_invariants{true};
  // Drive Controller::gradual_plan's per-Pod stages through the epoch
  // protocol, each committed stage a durable rollback point. Requires
  // staged; rejected with the atomic baseline.
  bool stage_checkpoints{false};
  // Re-plan routes broken by storm failures instead of letting them dangle.
  // Only observable under execute_under_storm with a non-empty schedule.
  bool live_replanning{true};
  // Standby promotion delay after the primary dies (kill_primary_at_s).
  double failover_takeover_s{0.25};
  // Per-Pod local controllers hold authority over their own Pod's switch
  // tables (the hierarchical control plane of src/control/hierarchy.h):
  // per-switch rule steps into a partitioned Pod still succeed — its local
  // controller issues them — while the flat default fails them at the
  // root. The kEpochFlip barrier is root-coordinated under both regimes;
  // see ConversionFaults::partitions.
  bool pod_local_authority{false};
  // Make-before-break patches land as bounded batches of at most this many
  // rule operations, with storm detection and failover checks between
  // batches — a failure landing mid-patch is observed within one chunk,
  // not after the whole partition's worth of rules. 0 = one monolithic
  // patch step per partition.
  std::uint64_t patch_chunk_rules{256};
  // conv_exec.* metrics (steps, retries, drops, rollbacks, violations,
  // blackhole time, replan/checkpoint/failover activity) and per-step
  // tracer marks. All updates are commutative, so exports stay
  // byte-identical across thread counts.
  obs::ObsSink sink{};
};

enum class StepKind : std::uint8_t {
  kRulePatch,    // make-before-break route patch ahead of an OCS step, or a
                 // storm re-plan batch (StepRecord::replan)
  kOcs,          // one OCS partition rewires its converters
  kRuleAdd,      // one switch installs its new-epoch rules (inert)
  kEpochFlip,    // barrier + ingress epoch flip: the commit point
  kRuleDelete,   // one switch deletes rules (old-epoch GC, or the atomic
                 // baseline's up-front delete phase)
  kRuleRestore,  // rollback: reinstate the checkpoint's canonical routes
};

[[nodiscard]] const char* to_string(StepKind kind);

struct StepRecord {
  StepKind kind{StepKind::kRulePatch};
  bool rollback{false};          // executed while rolling back
  bool replan{false};            // storm re-plan / reconcile batch
  bool standby{false};           // issued by the standby after failover
  NodeId target{};               // switch for per-switch rule steps
  std::uint32_t partition{0};    // OCS partition index (kOcs/kRulePatch)
  std::uint64_t rules_added{0};
  std::uint64_t rules_deleted{0};
  double start_s{0.0};
  double finish_s{0.0};          // completion (or failure) time
  std::uint32_t attempts{1};
  bool ok{true};
};

enum class ViolationKind : std::uint8_t {
  kDisconnected,  // servers_connected() failed on an intermediate graph
  kBlackhole,     // a connected pair had no (fully) valid installed route
  kLoop,          // an installed path repeated a node
};

struct TransientViolation {
  ViolationKind kind{ViolationKind::kBlackhole};
  std::size_t step{0};  // index into ExecutionReport::steps
  std::size_t pair{0};  // index into ExecutionReport::pairs (0 for kDisconnected)
};

enum class ConversionOutcome : std::uint8_t {
  kConverted,   // every stage committed: the fabric runs the target mode
  kPartial,     // >= 1 stage committed, then rolled back to that checkpoint
  kRolledBack,  // no stage committed: back to the origin mode
};

[[nodiscard]] const char* to_string(ConversionOutcome outcome);

// A durable rollback point: the complete description of a mode the fabric
// has fully committed (origin, a per-Pod gradual stage, or the target).
// routes are the mode's *canonical* plan routes — what reconciliation
// restores once storm failures recover — per tracked pair.
struct CheckpointRecord {
  std::uint32_t stage{0};  // 0 = origin, s = after committing stage s
  double t{0.0};
  std::uint32_t epoch{0};
  ModeAssignment assignment;
  std::vector<ConverterConfig> configs;
  std::vector<std::vector<Path>> routes;
};

// One state of the execution timeline: everything the data plane would
// observe until the next point. Points come from executor step boundaries
// and, under a storm, from the storm's physical event times (the executor
// detects damage only at boundaries, but the timeline binds each failure
// and recovery when it actually happened). The graph is the live topology
// over the point's interval: the prevailing realization minus the storm
// failures physically active at t. blackout_s models the
// in-progress window the boundary closes (an OCS rewire or the atomic
// baseline's rule hole) for the packet simulator, which stalls the affected
// pipes for that long.
struct TimelinePoint {
  double t{0.0};
  std::shared_ptr<const Graph> graph;
  std::uint32_t epoch{0};  // committed stages so far (0 = outgoing mode)
  double blackout_s{0.0};
  ConversionScope scope{ConversionScope::kChangedOnly};
  // Installed routes per pair (parallel to ExecutionReport::pairs). An
  // empty set means the pair is black-holed at this boundary (atomic
  // baseline's rule window only; the staged protocol never produces one).
  std::vector<std::vector<Path>> routes;
};

struct ExecutionReport {
  ConversionOutcome outcome{ConversionOutcome::kConverted};
  bool staged{true};
  double start_s{0.0};
  double finish_s{0.0};
  std::uint32_t retries{0};            // attempts beyond each step's first
  std::uint32_t messages_dropped{0};
  std::uint32_t steps_failed{0};       // exhausted forward steps
  std::uint64_t rules_added{0};
  std::uint64_t rules_deleted{0};
  std::uint64_t rules_skipped_dead{0};
  std::size_t pairs_patched{0};        // make-before-break re-routes
  // Storm tolerance.
  std::uint32_t replans{0};            // batched re-plan/reconcile steps
  std::size_t pairs_replanned{0};      // pair-route installs off-plan
  std::uint32_t stages_total{1};
  std::uint32_t stages_committed{0};
  std::uint32_t failovers{0};          // standby takeovers
  std::uint32_t steps_reissued{0};     // in-flight steps confirmed by standby
  // Route-availability integral over the timeline: each interval charges a
  // pair the fraction of its installed paths invalid on that interval's
  // graph (no routes at all = fully dark). Storm events bind at their
  // physical times, so a broken path is charged from the instant of
  // failure until re-planned or recovered.
  double total_blackhole_s{0.0};       // summed across pairs (pair-seconds)
  double max_pair_blackhole_s{0.0};    // worst single pair
  std::vector<std::pair<NodeId, NodeId>> pairs;  // server pairs tracked
  std::vector<StepRecord> steps;
  std::vector<TransientViolation> violations;
  std::vector<TimelinePoint> timeline;  // [0] = the pre-conversion state
  // checkpoints[0] is always the origin; one more per committed stage. The
  // terminal mode is checkpoints.back(): terminal_configs equals its
  // configs, and — once every storm failure has recovered — the installed
  // routes equal its canonical routes bit-for-bit.
  std::vector<CheckpointRecord> checkpoints;
  ModeAssignment terminal_assignment;
  std::vector<ConverterConfig> terminal_configs;
};

class ConversionExecutor {
 public:
  ConversionExecutor(const Controller& controller,
                     ConversionExecOptions options);

  [[nodiscard]] const ConversionExecOptions& options() const {
    return options_;
  }

  // Executes the conversion `from` -> `to` for the given tracked server
  // pairs, starting at simulated time t0_s. Both modes must be compiled
  // from the controller's flat-tree. Deterministic: a fixed (options.seed,
  // arguments) pair always yields the identical report.
  [[nodiscard]] ExecutionReport execute(
      const CompiledMode& from, const CompiledMode& to,
      std::span<const std::pair<NodeId, NodeId>> pairs,
      const ConversionFaults& faults = ConversionFaults{},
      double t0_s = 0.0) const;

  // execute() with a concurrent data-plane failure storm. `storm` names
  // links in `from`'s realization (the reference space; ids are resolved to
  // node pairs across intermediate realizations) and must satisfy
  // FailureSchedule's construction invariants. Events fold into the live
  // graph at step boundaries; see the header comment for the re-planning,
  // checkpoint and failover semantics.
  [[nodiscard]] ExecutionReport execute_under_storm(
      const CompiledMode& from, const CompiledMode& to,
      std::span<const std::pair<NodeId, NodeId>> pairs,
      const FailureSchedule& storm,
      const ConversionFaults& faults = ConversionFaults{},
      double t0_s = 0.0) const;

 private:
  const Controller* controller_;
  ConversionExecOptions options_;
};

// -- simulator drivers --------------------------------------------------------

// The fluid-side replay of an execution: the union graph of every timeline
// state, a FailureSchedule expressing each boundary's link delta against
// that union (links absent from the current state are failed), and the
// timeline point each routing refresh belongs to. Feed the schedule to
// FluidSimulator::run_with_schedule with repair_lag 0 and a refresh that
// serves refresh_point[k]'s routes at the k-th refresh —
// run_fluid_with_conversion does exactly that.
struct ConversionDrive {
  std::shared_ptr<const Graph> base;
  FailureSchedule schedule;
  std::vector<std::size_t> refresh_point;
};

[[nodiscard]] ConversionDrive make_conversion_drive(
    const ExecutionReport& report);

// Runs `flows` through the fluid simulator while the conversion executes:
// capacity follows the timeline's graphs, routes follow its installed route
// snapshots (pairs outside report.pairs keep the point-0 routes they
// resolve to, which is an error in the caller — track every pair the
// workload uses). Flows over a black-holed pair stall until a later
// boundary restores a route, exactly like a scheduled failure.
[[nodiscard]] std::vector<FluidFlowResult> run_fluid_with_conversion(
    const ExecutionReport& report, const Workload& flows,
    const FluidOptions& options = FluidOptions{},
    ScheduleRunStats* stats = nullptr);

// Replays the timeline through a packet simulator: the caller has called
// sim.set_network(*report.timeline.front().graph) and added `flows`
// (index-aligned with the sim's flows, routed on the point-0 snapshot,
// e.g. via conversion_paths_for). Each subsequent boundary applies as an
// apply_conversion with the point's graph, routes, blackout and scope;
// pairs with an empty snapshot keep their current (black-holed) paths.
// Finally runs the event loop to horizon_s.
void drive_packet_sim(PacketSim& sim, const ExecutionReport& report,
                      const Workload& flows, double horizon_s);

// The point-`point` route snapshot for a workload flow, for wiring
// PacketSim::add_flow to a timeline state.
[[nodiscard]] std::vector<Path> conversion_paths_for(
    const ExecutionReport& report, const Flow& flow, std::size_t point = 0);

}  // namespace flattree
