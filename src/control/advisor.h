// Mode advisor: workload-driven zone planning (§5.2).
//
// The paper's operational guidance: "Flat-tree can be configured into
// different modes to optimize traffic with different locality features,
// i.e. Clos mode for rack-level locality, local mode for Pod-level
// locality, and global mode for no locality. ... flat-tree can be used in
// the hybrid mode with various service-specific zones". This module turns
// a measured workload into exactly that plan: it profiles the byte-weighted
// locality of each Pod's traffic and recommends a per-Pod mode assignment
// (plus the best uniform mode, for operators who prefer one).
#pragma once

#include <vector>

#include "core/flat_tree.h"
#include "topo/params.h"
#include "traffic/flow.h"

namespace flattree {

struct AdvisorOptions {
  // Byte fraction of a Pod's traffic that must stay inside a rack for Clos
  // mode to win, or inside the Pod (rack included) for local mode to win.
  double rack_threshold{0.5};
  double pod_threshold{0.5};
};

// Byte-weighted locality of the traffic touching one Pod.
struct PodTrafficProfile {
  double intra_rack{0.0};
  double intra_pod{0.0};  // intra-Pod but crossing racks
  double inter_pod{0.0};
  double total_bytes{0.0};

  [[nodiscard]] PodMode recommended(const AdvisorOptions& options) const;
};

struct Advice {
  ModeAssignment assignment;              // per-Pod recommendation
  std::vector<PodTrafficProfile> per_pod;
  PodMode uniform{PodMode::kClos};        // single-mode recommendation
};

// Profiles `flows` against the Clos layout (positional rack/Pod membership,
// as everywhere in this library) and recommends modes. Persistent flows
// (bytes == 0) are weighted as one unit each. Pods with no traffic default
// to global mode (they only serve transit).
[[nodiscard]] Advice advise_modes(const ClosParams& layout,
                                  const Workload& flows,
                                  const AdvisorOptions& options = {});

}  // namespace flattree
