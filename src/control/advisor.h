// Mode advisor: workload-driven zone planning (§5.2).
//
// The paper's operational guidance: "Flat-tree can be configured into
// different modes to optimize traffic with different locality features,
// i.e. Clos mode for rack-level locality, local mode for Pod-level
// locality, and global mode for no locality. ... flat-tree can be used in
// the hybrid mode with various service-specific zones". This module turns
// a measured workload into exactly that plan: it profiles the byte-weighted
// locality of each Pod's traffic and recommends a per-Pod mode assignment
// (plus the best uniform mode, for operators who prefer one).
#pragma once

#include <vector>

#include "core/flat_tree.h"
#include "topo/params.h"
#include "traffic/flow.h"

namespace flattree {

struct AdvisorOptions {
  // Byte fraction of a Pod's traffic that must stay inside a rack for Clos
  // mode to win, or inside the Pod (rack included) for local mode to win.
  double rack_threshold{0.5};
  double pod_threshold{0.5};

  // Rejects NaN or out-of-[0, 1] thresholds with a per-field diagnostic
  // (std::invalid_argument). Called by advise_modes.
  void validate() const;
};

// Byte-weighted locality of the traffic touching one Pod.
struct PodTrafficProfile {
  double intra_rack{0.0};
  double intra_pod{0.0};  // intra-Pod but crossing racks
  double inter_pod{0.0};
  double total_bytes{0.0};

  // Mode recommendation with an *explicit* tie order so closed-loop
  // decisions are seed- and platform-stable (mirroring the determinism
  // contract everywhere else in the tree):
  //   1. a fraction landing exactly on its threshold qualifies (>=, never >),
  //   2. when several modes qualify, the most local wins: Clos > local >
  //      global (rack locality implies Pod locality, so a rack-local Pod
  //      always qualifies for both; the tie rule makes the winner explicit
  //      instead of an artifact of branch ordering),
  //   3. a Pod with no traffic recommends global (it only serves transit).
  // Pinned by Advisor.TieBreak* in tests/test_advisor.cc.
  [[nodiscard]] PodMode recommended(const AdvisorOptions& options) const;

  // Rejects negative or NaN entries, and component sums exceeding
  // total_bytes beyond rounding slack, each with a per-field diagnostic
  // (std::invalid_argument) — mirroring FailureSchedule::validate for
  // profiles that crossed a trust boundary (e.g. a demand estimate handed
  // to the policy engine). `context` prefixes the diagnostic.
  void validate(const char* context = "PodTrafficProfile") const;
};

struct Advice {
  ModeAssignment assignment;              // per-Pod recommendation
  std::vector<PodTrafficProfile> per_pod;
  PodMode uniform{PodMode::kClos};        // single-mode recommendation

  // Structural + per-profile validation: assignment and per_pod must be
  // parallel, and every profile must pass PodTrafficProfile::validate.
  // Throws std::invalid_argument with the offending Pod in the diagnostic.
  void validate() const;
};

// Profiles `flows` against the Clos layout (positional rack/Pod membership,
// as everywhere in this library) and recommends modes. Persistent flows
// (bytes == 0) are weighted as one unit each. Pods with no traffic default
// to global mode (they only serve transit).
[[nodiscard]] Advice advise_modes(const ClosParams& layout,
                                  const Workload& flows,
                                  const AdvisorOptions& options = {});

}  // namespace flattree
