// AutopilotLoop: the closed loop — telemetry -> estimate -> decision ->
// storm-tolerant conversion, while the simulators keep serving traffic.
//
// The loop partitions a workload into fixed decision epochs. Each epoch it
// (1) serves the epoch's flows on the live compiled mode through the fluid
// simulator — through run_fluid_with_conversion when a conversion executes
// concurrently, so the traffic experiences every transient topology of the
// staged protocol; (2) folds the resulting per-flow telemetry into the
// TrafficMatrixEstimator; (3) asks the ReconfigPolicy for a decision at the
// epoch boundary. A kConvert decision launches
// ConversionExecutor::execute_under_storm at the start of the next epoch
// (against any ambient failure storm), and the committed terminal mode
// becomes the live mode.
//
// No lookahead: the decision at a boundary consumes only telemetry from
// epochs already served. The decision log (one EpochRecord per epoch)
// captures every input the policy consumed — the estimate snapshot, the
// live assignment, the dwell clock — plus the priced decision and the
// conversion outcome, so any decision replays bit-for-bit through
// ReconfigPolicy::evaluate (AutopilotTest.DecisionLogReplays).
//
// Determinism: epochs run serially, the estimator folds ordered telemetry,
// the policy is pure, the executor is seeded — the whole loop is a pure
// function of (workload, initial assignment, options, storm, faults), and
// every autopilot.* metric update is commutative.
#pragma once

#include <cstdint>
#include <vector>

#include "control/autopilot/estimator.h"
#include "control/autopilot/policy.h"
#include "control/conversion_exec.h"
#include "control/controller.h"
#include "control/hierarchy.h"
#include "net/failures.h"
#include "obs/sink.h"
#include "traffic/flow.h"

namespace flattree {

struct AutopilotOptions {
  TrafficMatrixEstimatorOptions estimator{};
  ReconfigPolicyOptions policy{};
  ConversionExecOptions exec{};
  double epoch_s{1.0};  // decision cadence
  // When true (default), policy.demand_window_s is overwritten with the
  // estimator's effective averaging window (half_life / ln 2) so the byte
  // forecast is calibrated to the decay actually in use.
  bool derive_demand_window{true};
  // Derive topology-aware per-switch control RTTs from the *live*
  // realization before each conversion (ControlHierarchy::channel_for):
  // exec.channel keeps its uniform delay_s as the per-message floor and
  // gains switch_delay_s from hop distances under `control_plane`'s shape.
  // Off by default so existing goldens stay byte-identical — per-switch
  // delays reshape retry timing, which lands in reported finish times.
  bool topology_rtts{false};
  ControlPlaneKind control_plane{ControlPlaneKind::kHierarchical};
  double control_per_hop_s{0.0002};  // one-way latency per hop
  // autopilot.* metrics (epochs, decisions by kind, conversions by outcome,
  // served-flow counters). Commutative updates only.
  obs::ObsSink sink{};

  void validate() const;
};

// One decision epoch: the traffic served, the telemetry-driven decision at
// the closing boundary, and (if a conversion ran during this epoch) its
// outcome. `estimate`, `assignment_at_decision` and `last_conversion_s` are
// exactly the policy's inputs — the replay contract.
struct EpochRecord {
  std::uint32_t epoch{0};
  double start_s{0.0};
  double end_s{0.0};
  ModeAssignment assignment;  // mode serving this epoch's traffic (at start)
  std::size_t flows{0};
  std::size_t completed{0};
  double bytes{0.0};      // delivered bytes (completed flows)
  double fct_sum_s{0.0};  // aggregate FCT of completed flows
  // Conversion executed during this epoch (decided at the previous
  // boundary), if any.
  bool conversion_executed{false};
  ConversionOutcome conversion_outcome{ConversionOutcome::kRolledBack};
  double conversion_finish_s{0.0};
  // Decision at the closing boundary, with its exact inputs.
  DemandEstimate estimate;
  ModeAssignment assignment_at_decision;
  double last_conversion_s{0.0};
  PolicyDecision decision;
};

struct AutopilotResult {
  std::vector<EpochRecord> epochs;
  std::vector<ExecutionReport> conversions;  // execution order
  std::size_t flows{0};
  std::size_t completed{0};
  double fct_sum_s{0.0};
  std::uint32_t conversions_started{0};
  std::uint32_t conversions_committed{0};  // outcome == kConverted
  ModeAssignment final_assignment;
};

class AutopilotLoop {
 public:
  AutopilotLoop(const Controller& controller, AutopilotOptions options);

  [[nodiscard]] const AutopilotOptions& options() const { return options_; }

  // Runs the closed loop over `flows` for duration_s starting from
  // `initial` (compiled internally). `storm` is the ambient data-plane
  // failure schedule every conversion executes under (empty = calm
  // fabric); `faults` injects control-plane chaos (dead switches, primary
  // kill) into each conversion.
  [[nodiscard]] AutopilotResult run(
      const Workload& flows, const ModeAssignment& initial, double duration_s,
      const FailureSchedule& storm = FailureSchedule{},
      const ConversionFaults& faults = ConversionFaults{}) const;

 private:
  const Controller* controller_;
  AutopilotOptions options_;
};

}  // namespace flattree
