#include "control/autopilot/policy.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/fluid.h"

namespace flattree {
namespace {

void check_nonneg(double value, const char* field) {
  if (std::isnan(value) || value < 0.0) {
    throw std::invalid_argument(std::string("ReconfigPolicyOptions.") + field +
                                ": negative or NaN");
  }
}

void check_pos(double value, const char* field) {
  if (std::isnan(value) || value <= 0.0) {
    throw std::invalid_argument(std::string("ReconfigPolicyOptions.") + field +
                                ": must be positive");
  }
}

}  // namespace

void ReconfigPolicyOptions::validate() const {
  advisor.validate();
  check_nonneg(min_dwell_s, "min_dwell_s");
  check_nonneg(min_gain_frac, "min_gain_frac");
  check_nonneg(gain_cost_multiple, "gain_cost_multiple");
  check_nonneg(min_total_bytes, "min_total_bytes");
  check_nonneg(idle_pod_bytes, "idle_pod_bytes");
  check_pos(demand_window_s, "demand_window_s");
  check_pos(horizon_s, "horizon_s");
  if (flows_per_entry == 0) {
    throw std::invalid_argument(
        "ReconfigPolicyOptions.flows_per_entry: must be positive");
  }
}

const char* to_string(PolicyAction action) {
  switch (action) {
    case PolicyAction::kHold:
      return "hold";
    case PolicyAction::kConvert:
      return "convert";
  }
  return "?";
}

const char* to_string(HoldReason reason) {
  switch (reason) {
    case HoldReason::kNone:
      return "none";
    case HoldReason::kColdStart:
      return "cold_start";
    case HoldReason::kSameMode:
      return "same_mode";
    case HoldReason::kDwell:
      return "dwell";
    case HoldReason::kGain:
      return "gain";
  }
  return "?";
}

ReconfigPolicy::ReconfigPolicy(const Controller& controller,
                               ReconfigPolicyOptions options)
    : controller_{&controller}, options_{options} {
  options_.validate();
}

Workload ReconfigPolicy::synthesize_workload(
    const DemandEstimate& estimate) const {
  const ClosParams& layout = controller_->tree().clos();
  const std::uint32_t per_rack = layout.servers_per_edge;
  const std::uint32_t per_pod = per_rack * layout.edge_per_pod;
  // Decayed mass approximates the bytes seen over the estimator's effective
  // window; rate * horizon is the byte forecast the pricing runs carry.
  const double forecast = options_.horizon_s / options_.demand_window_s;

  // Flow budget: flows_per_entry * active entries, allocated to each entry
  // in proportion to its demand mass (minimum one). A fixed per-entry count
  // would let the many light cross-Pod entries outnumber a few heavy
  // diagonal ones, manufacturing core congestion the estimate never saw and
  // hiding the intra-Pod congestion it did — the forecast would
  // systematically misrank Local against Global.
  std::uint32_t active = 0;
  double total_mass = 0.0;
  for (std::uint32_t p = 0; p < estimate.pods; ++p) {
    for (std::uint32_t q = 0; q < estimate.pods; ++q) {
      if (estimate.at(p, q) > 0.0) {
        ++active;
        total_mass += estimate.at(p, q);
      }
    }
  }
  const double budget =
      static_cast<double>(options_.flows_per_entry) * active;

  Workload flows;
  for (std::uint32_t p = 0; p < estimate.pods; ++p) {
    for (std::uint32_t q = 0; q < estimate.pods; ++q) {
      const double mass = estimate.at(p, q);
      if (!(mass > 0.0)) continue;
      const std::uint32_t n = static_cast<std::uint32_t>(std::max<long long>(
          1, std::llround(budget * mass / total_mass)));
      const double bytes_per_flow = mass * forecast / n;
      if (p != q) {
        for (std::uint32_t j = 0; j < n; ++j) {
          Flow f;
          f.src = p * per_pod + j % per_pod;
          f.dst = q * per_pod + (j + per_rack) % per_pod;
          f.bytes = bytes_per_flow;
          flows.push_back(f);
        }
        continue;
      }
      // Diagonal entry: split rack-local vs cross-rack per the Pod's own
      // locality profile, placing flows so they actually exercise (or skip)
      // the intra-rack hop.
      const PodTrafficProfile& profile = estimate.per_pod[p];
      const double local_mass = profile.intra_rack + profile.intra_pod;
      const double rack_share =
          local_mass > 0.0 ? profile.intra_rack / local_mass : 0.0;
      for (std::uint32_t j = 0; j < n; ++j) {
        Flow f;
        // First round(rack_share * n) flows are rack-local; a one-rack-wide
        // layout (per_rack == 1) cannot host a rack-local pair, so
        // everything goes cross-rack there.
        const bool rack_local =
            per_rack >= 2 && j < static_cast<std::uint32_t>(std::llround(
                                     rack_share * static_cast<double>(n)));
        if (rack_local) {
          f.src = p * per_pod + j % per_rack;
          f.dst = p * per_pod + (j + 1) % per_rack;
        } else if (layout.edge_per_pod >= 2) {
          const std::uint32_t r = j % layout.edge_per_pod;
          f.src = p * per_pod + r * per_rack + j % per_rack;
          f.dst = p * per_pod + ((r + 1) % layout.edge_per_pod) * per_rack +
                  j % per_rack;
        } else {
          f.src = p * per_pod + j % per_rack;
          f.dst = p * per_pod + (j + 1) % per_rack;
        }
        if (f.src == f.dst) continue;  // degenerate single-server layout
        f.bytes = bytes_per_flow;
        flows.push_back(f);
      }
    }
  }
  return flows;
}

double ReconfigPolicy::aggregate_fct(const CompiledMode& mode,
                                     const Workload& flows) const {
  if (flows.empty()) return 0.0;
  FluidSimulator sim{mode.graph(),
                     [&mode](NodeId src, NodeId dst, std::uint32_t) {
                       return mode.paths().server_paths(src, dst);
                     }};
  const std::vector<FluidFlowResult> results = sim.run(flows);
  double total = 0.0;
  for (const FluidFlowResult& r : results) {
    if (r.completed) total += r.fct_s();
  }
  return total;
}

PolicyDecision ReconfigPolicy::evaluate(const DemandEstimate& estimate,
                                        const CompiledMode& current,
                                        double now_s,
                                        double last_conversion_s) const {
  estimate.validate();
  const ClosParams& layout = controller_->tree().clos();
  if (estimate.pods != layout.pods) {
    throw std::invalid_argument(
        "ReconfigPolicy::evaluate: estimate Pod count != fabric Pod count");
  }

  PolicyDecision decision;
  decision.target = current.assignment();

  // Cold start: an empty (or nearly empty) estimate recommends nothing.
  if (estimate.total_bytes < options_.min_total_bytes) {
    decision.hold_reason = HoldReason::kColdStart;
    return decision;
  }

  // Advisor recommendation from the decayed locality profiles. Pods without
  // meaningful demand keep their current mode — an idle Pod must not flap
  // between defaults as its residual mass decays.
  ModeAssignment advised = current.assignment();
  for (std::uint32_t p = 0; p < estimate.pods; ++p) {
    const PodTrafficProfile& profile = estimate.per_pod[p];
    if (profile.total_bytes < options_.idle_pod_bytes) continue;
    advised.pod_modes[p] = profile.recommended(options_.advisor);
  }
  decision.target = advised;

  // Candidate set: the advisor's per-Pod call plus the three uniform
  // endpoints of the convertibility spectrum. The advisor is a locality
  // heuristic; the fluid forecast is the arbiter, and the uniform
  // candidates keep one mis-profiled Pod from locking the fabric out of a
  // better global optimum. Order fixes the deterministic tie-break: the
  // advisor's target wins ties, then Clos < Local < Global.
  std::vector<ModeAssignment> candidates;
  candidates.push_back(advised);
  for (PodMode mode :
       {PodMode::kClos, PodMode::kLocal, PodMode::kGlobal}) {
    candidates.push_back(ModeAssignment::uniform(layout.pods, mode));
  }
  std::erase_if(candidates, [&current](const ModeAssignment& a) {
    return a.pod_modes == current.assignment().pod_modes;
  });
  for (std::size_t i = 1; i < candidates.size();) {
    bool dup = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (candidates[j].pod_modes == candidates[i].pod_modes) dup = true;
    }
    if (dup) {
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (candidates.empty()) {
    decision.hold_reason = HoldReason::kSameMode;
    return decision;
  }

  // Price every candidate on the forecasted workload; strict improvement
  // keeps the first-listed winner on ties.
  const auto k_for_target = [this](const ModeAssignment& assignment) {
    std::uint32_t k = 0;
    for (PodMode mode : assignment.pod_modes) {
      k = std::max(k, controller_->k_for(mode));
    }
    return k;
  };
  const Workload forecast = synthesize_workload(estimate);
  decision.predicted_current_fct_s = aggregate_fct(current, forecast);
  std::optional<CompiledMode> best;
  for (const ModeAssignment& assignment : candidates) {
    CompiledMode candidate =
        controller_->compile(assignment, k_for_target(assignment));
    const double fct = aggregate_fct(candidate, forecast);
    if (!best.has_value() || fct < decision.predicted_target_fct_s) {
      decision.predicted_target_fct_s = fct;
      decision.target = assignment;
      best.emplace(std::move(candidate));
    }
  }
  decision.predicted_gain_s =
      decision.predicted_current_fct_s - decision.predicted_target_fct_s;
  decision.conversion_cost_s =
      controller_->plan_conversion(current, *best).total_s();
  decision.priced = true;

  // Hysteresis gates, dwell first: a conversion inside the dwell window is
  // rejected no matter how good it looks.
  if (now_s - last_conversion_s < options_.min_dwell_s) {
    decision.hold_reason = HoldReason::kDwell;
    return decision;
  }
  if (options_.require_positive_gain) {
    const double gain_floor = std::max(
        options_.gain_cost_multiple * decision.conversion_cost_s,
        options_.min_gain_frac * decision.predicted_current_fct_s);
    if (decision.predicted_gain_s < gain_floor) {
      decision.hold_reason = HoldReason::kGain;
      return decision;
    }
  }

  decision.action = PolicyAction::kConvert;
  decision.hold_reason = HoldReason::kNone;
  return decision;
}

}  // namespace flattree
