#include "control/autopilot/estimator.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace flattree {

void TrafficMatrixEstimatorOptions::validate() const {
  if (std::isnan(half_life_s) || half_life_s <= 0.0) {
    throw std::invalid_argument(
        "TrafficMatrixEstimatorOptions.half_life_s: must be positive");
  }
}

void DemandEstimate::validate() const {
  if (inter_pod.size() != static_cast<std::size_t>(pods) * pods) {
    throw std::invalid_argument("DemandEstimate: matrix shape mismatch");
  }
  if (per_pod.size() != pods) {
    throw std::invalid_argument("DemandEstimate: profile count mismatch");
  }
  for (std::size_t i = 0; i < inter_pod.size(); ++i) {
    if (std::isnan(inter_pod[i]) || inter_pod[i] < 0.0) {
      throw std::invalid_argument(
          "DemandEstimate.inter_pod[" + std::to_string(i / pods) + "][" +
          std::to_string(i % pods) + "]: negative or NaN demand");
    }
  }
  for (std::size_t p = 0; p < per_pod.size(); ++p) {
    const std::string context =
        "DemandEstimate.per_pod[" + std::to_string(p) + "]";
    per_pod[p].validate(context.c_str());
  }
  if (std::isnan(total_bytes) || total_bytes < 0.0) {
    throw std::invalid_argument(
        "DemandEstimate.total_bytes: negative or NaN demand");
  }
}

TrafficMatrixEstimator::TrafficMatrixEstimator(
    const ClosParams& layout, TrafficMatrixEstimatorOptions options)
    : layout_{layout}, options_{options} {
  layout_.validate();
  options_.validate();
  per_rack_ = layout_.servers_per_edge;
  per_pod_ = per_rack_ * layout_.edge_per_pod;
  inter_pod_.assign(static_cast<std::size_t>(layout_.pods) * layout_.pods,
                    0.0);
  per_pod_profile_.assign(layout_.pods, PodTrafficProfile{});
}

void TrafficMatrixEstimator::advance_to(double now_s) {
  if (std::isnan(now_s) || now_s <= t_) return;
  const double factor = std::exp2(-(now_s - t_) / options_.half_life_s);
  for (double& mass : inter_pod_) mass *= factor;
  for (PodTrafficProfile& profile : per_pod_profile_) {
    profile.intra_rack *= factor;
    profile.intra_pod *= factor;
    profile.inter_pod *= factor;
    profile.total_bytes *= factor;
  }
  t_ = now_s;
}

void TrafficMatrixEstimator::fold(std::uint32_t src, std::uint32_t dst,
                                  double bytes) {
  if (bytes <= 0.0 || std::isnan(bytes)) return;
  if (src >= layout_.total_servers() || dst >= layout_.total_servers()) {
    throw std::invalid_argument(
        "TrafficMatrixEstimator: server index out of range");
  }
  const std::uint32_t src_pod = src / per_pod_;
  const std::uint32_t dst_pod = dst / per_pod_;
  inter_pod_[static_cast<std::size_t>(src_pod) * layout_.pods + dst_pod] +=
      bytes;
  const auto credit = [&](PodTrafficProfile& profile) {
    profile.total_bytes += bytes;
    if (src / per_rack_ == dst / per_rack_) {
      profile.intra_rack += bytes;
    } else if (src_pod == dst_pod) {
      profile.intra_pod += bytes;
    } else {
      profile.inter_pod += bytes;
    }
  };
  credit(per_pod_profile_[src_pod]);
  if (dst_pod != src_pod) credit(per_pod_profile_[dst_pod]);
}

void TrafficMatrixEstimator::observe(
    const std::vector<obs::FlowRecord>& records, double now_s) {
  advance_to(now_s);
  for (const obs::FlowRecord& r : records) fold(r.src, r.dst, r.bytes);
}

void TrafficMatrixEstimator::observe(const obs::PairTelemetry& telemetry,
                                     double now_s) {
  advance_to(now_s);
  for (const auto& [key, counters] : telemetry.pairs()) {
    fold(key.first, key.second, counters.bytes);
  }
}

DemandEstimate TrafficMatrixEstimator::estimate() const {
  DemandEstimate est;
  est.t = t_;
  est.pods = layout_.pods;
  est.inter_pod = inter_pod_;
  est.per_pod = per_pod_profile_;
  est.total_bytes = 0.0;
  for (double mass : inter_pod_) est.total_bytes += mass;
  return est;
}

EstimatorState TrafficMatrixEstimator::state() const {
  return EstimatorState{t_, inter_pod_, per_pod_profile_};
}

void TrafficMatrixEstimator::restore(const EstimatorState& state) {
  if (state.inter_pod.size() != inter_pod_.size() ||
      state.per_pod.size() != per_pod_profile_.size()) {
    throw std::invalid_argument(
        "TrafficMatrixEstimator::restore: state shape mismatch");
  }
  t_ = state.t;
  inter_pod_ = state.inter_pod;
  per_pod_profile_ = state.per_pod;
}

}  // namespace flattree
