#include "control/autopilot/autopilot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

#include "sim/fluid.h"

namespace flattree {

void AutopilotOptions::validate() const {
  estimator.validate();
  policy.validate();
  if (std::isnan(epoch_s) || epoch_s <= 0.0) {
    throw std::invalid_argument("AutopilotOptions.epoch_s: must be positive");
  }
  if (!(control_per_hop_s >= 0.0)) {
    throw std::invalid_argument(
        "AutopilotOptions.control_per_hop_s: must be >= 0");
  }
}

AutopilotLoop::AutopilotLoop(const Controller& controller,
                             AutopilotOptions options)
    : controller_{&controller}, options_{std::move(options)} {
  if (options_.derive_demand_window) {
    options_.policy.demand_window_s =
        options_.estimator.half_life_s / std::log(2.0);
  }
  options_.validate();
}

namespace {

std::uint32_t k_for_assignment(const Controller& controller,
                               const ModeAssignment& assignment) {
  std::uint32_t k = 0;
  for (PodMode mode : assignment.pod_modes) {
    k = std::max(k, controller.k_for(mode));
  }
  return k;
}

// Unique server pairs of a flow list, sorted — the tracked-pair set for the
// executor (run_fluid_with_conversion serves routes only for tracked pairs,
// so every pair the epoch's traffic uses must appear).
std::vector<std::pair<NodeId, NodeId>> pairs_of(const Workload& flows) {
  std::set<std::pair<NodeId, NodeId>> unique;
  for (const Flow& f : flows) {
    if (f.src != f.dst) unique.emplace(f.src, f.dst);
  }
  return {unique.begin(), unique.end()};
}

}  // namespace

AutopilotResult AutopilotLoop::run(const Workload& flows,
                                   const ModeAssignment& initial,
                                   double duration_s,
                                   const FailureSchedule& storm,
                                   const ConversionFaults& faults) const {
  if (std::isnan(duration_s) || duration_s <= 0.0) {
    throw std::invalid_argument("AutopilotLoop::run: duration must be positive");
  }
  const ClosParams& layout = controller_->tree().clos();
  if (initial.pod_modes.size() != layout.pods) {
    throw std::invalid_argument(
        "AutopilotLoop::run: initial assignment Pod count != fabric");
  }

  obs::MetricsRegistry* mx = options_.sink.metrics();
  obs::Counter* m_epochs =
      mx != nullptr ? &mx->counter("autopilot.epochs") : nullptr;
  obs::Counter* m_flows =
      mx != nullptr ? &mx->counter("autopilot.flows.served") : nullptr;
  obs::Counter* m_done =
      mx != nullptr ? &mx->counter("autopilot.flows.completed") : nullptr;
  obs::Counter* m_convert =
      mx != nullptr ? &mx->counter("autopilot.decisions.convert") : nullptr;
  obs::Counter* m_hold =
      mx != nullptr ? &mx->counter("autopilot.decisions.hold") : nullptr;
  obs::Counter* m_committed =
      mx != nullptr ? &mx->counter("autopilot.conversions.converted") : nullptr;
  obs::Counter* m_not_committed =
      mx != nullptr ? &mx->counter("autopilot.conversions.not_converted")
                    : nullptr;

  const std::size_t epochs = static_cast<std::size_t>(
      std::ceil(duration_s / options_.epoch_s - 1e-12));
  std::vector<Workload> bucket(std::max<std::size_t>(1, epochs));
  for (const Flow& f : flows) {
    const auto e = static_cast<std::size_t>(f.start_s / options_.epoch_s);
    bucket[std::min(e, bucket.size() - 1)].push_back(f);
  }

  TrafficMatrixEstimator estimator{layout, options_.estimator};
  const ReconfigPolicy policy{*controller_, options_.policy};

  CompiledMode current =
      controller_->compile(initial, k_for_assignment(*controller_, initial));
  double last_conversion_s = -std::numeric_limits<double>::infinity();
  bool pending = false;
  ModeAssignment pending_target;

  AutopilotResult result;
  for (std::size_t e = 0; e < bucket.size(); ++e) {
    EpochRecord rec;
    rec.epoch = static_cast<std::uint32_t>(e);
    rec.start_s = static_cast<double>(e) * options_.epoch_s;
    rec.end_s = std::min(rec.start_s + options_.epoch_s, duration_s);
    rec.assignment = current.assignment();
    const Workload& epoch_flows = bucket[e];
    rec.flows = epoch_flows.size();

    FluidOptions fluid_opts;
    fluid_opts.sink = options_.sink;
    std::vector<FluidFlowResult> served;
    if (pending) {
      // Execute the conversion decided at the previous boundary while this
      // epoch's traffic rides through the transients.
      const CompiledMode target = controller_->compile(
          pending_target, k_for_assignment(*controller_, pending_target));
      ConversionExecOptions exec_opts = options_.exec;
      // Decorrelate control-channel draws across conversions.
      exec_opts.seed = options_.exec.seed + result.conversions_started;
      if (options_.topology_rtts) {
        // Per-switch control RTTs from the live realization: each switch is
        // charged the hop distance from the controller that programs it.
        ControlHierarchyOptions hier_opts;
        hier_opts.channel = exec_opts.channel;
        hier_opts.per_hop_s = options_.control_per_hop_s;
        const ControlHierarchy hier{*controller_, options_.control_plane,
                                    hier_opts};
        exec_opts.channel = hier.channel_for(current.graph());
      }
      const ConversionExecutor executor{*controller_, exec_opts};
      const std::vector<std::pair<NodeId, NodeId>> pairs =
          pairs_of(epoch_flows);
      ExecutionReport report = executor.execute_under_storm(
          current, target, pairs, storm, faults, rec.start_s);
      if (!epoch_flows.empty()) {
        served = run_fluid_with_conversion(report, epoch_flows, fluid_opts);
      }
      rec.conversion_executed = true;
      rec.conversion_outcome = report.outcome;
      rec.conversion_finish_s = report.finish_s;
      last_conversion_s = report.finish_s;
      ++result.conversions_started;
      if (report.outcome == ConversionOutcome::kConverted) {
        current = controller_->compile(
            target.assignment(),
            k_for_assignment(*controller_, target.assignment()));
        ++result.conversions_committed;
        obs::add(m_committed);
      } else {
        // Partial / rolled back: the fabric sits at the last checkpoint.
        current = controller_->compile(
            report.terminal_assignment,
            k_for_assignment(*controller_, report.terminal_assignment));
        obs::add(m_not_committed);
      }
      result.conversions.push_back(std::move(report));
      pending = false;
    } else if (!epoch_flows.empty()) {
      FluidSimulator sim{current.graph(),
                         [&current](NodeId src, NodeId dst, std::uint32_t) {
                           return current.paths().server_paths(src, dst);
                         },
                         fluid_opts};
      served = sim.run(epoch_flows);
    }

    for (std::size_t i = 0; i < served.size(); ++i) {
      if (!served[i].completed) continue;
      ++rec.completed;
      rec.bytes += epoch_flows[i].bytes;
      rec.fct_sum_s += served[i].fct_s();
    }
    obs::add(m_epochs);
    obs::add(m_flows, rec.flows);
    obs::add(m_done, rec.completed);

    // Fold this epoch's telemetry, then decide at the closing boundary.
    estimator.observe(collect_flow_records(epoch_flows, served), rec.end_s);
    rec.estimate = estimator.estimate();
    rec.assignment_at_decision = current.assignment();
    rec.last_conversion_s = last_conversion_s;
    rec.decision =
        policy.evaluate(rec.estimate, current, rec.end_s, last_conversion_s);
    if (rec.decision.action == PolicyAction::kConvert) {
      pending = true;
      pending_target = rec.decision.target;
      obs::add(m_convert);
    } else {
      obs::add(m_hold);
    }

    result.flows += rec.flows;
    result.completed += rec.completed;
    result.fct_sum_s += rec.fct_sum_s;
    result.epochs.push_back(std::move(rec));
  }
  result.final_assignment = current.assignment();
  return result;
}

}  // namespace flattree
