// TrafficMatrixEstimator: decayed inter-Pod demand from flow telemetry.
//
// The closed loop's sensor. Both simulators export per-flow telemetry
// (obs::FlowRecord / obs::PairTelemetry); this folds it into a decayed
// byte-mass estimate of the inter-Pod traffic matrix plus the per-Pod
// locality profiles the Advisor consumes. Decay is an explicit exponential
// half-life applied at observation time (mass *= 2^(-dt / half_life)), so
// demand that stopped flowing fades out and a diurnal shift shows up in the
// estimate within a few half-lives.
//
// Determinism contract (the autopilot's decisions must be byte-identical
// across --threads 1/2/8): every fold is a serial, ordered reduction — the
// telemetry arrives as an ordered PairTelemetry (sorted by pair) or a
// FlowRecord vector in flow order, decay factors are pure functions of
// (t_prev, t_now, half_life), and no wall-clock or scheduling-dependent
// value ever enters the state. Two estimators fed the same observation
// sequence hold bit-identical state — which is also the failover story:
// EstimatorState is plain data a standby can restore() and continue from,
// byte-exact (pinned by AutopilotTest.EstimatorStateSurvivesFailover).
#pragma once

#include <cstdint>
#include <vector>

#include "control/advisor.h"
#include "obs/telemetry.h"
#include "topo/params.h"

namespace flattree {

struct TrafficMatrixEstimatorOptions {
  double half_life_s{2.0};  // byte-mass decay half-life
  // Throws std::invalid_argument on a non-positive or NaN half-life.
  void validate() const;
};

// One snapshot of the estimate: decayed byte mass per directed Pod pair
// (row-major pods x pods; the diagonal holds intra-Pod mass, rack-local
// included) plus the advisor-ready locality profiles.
struct DemandEstimate {
  double t{0.0};            // time the estimate was advanced to
  std::uint32_t pods{0};
  std::vector<double> inter_pod;            // pods * pods, row-major
  std::vector<PodTrafficProfile> per_pod;   // decayed, advisor-ready
  double total_bytes{0.0};                  // decayed fabric-wide mass

  [[nodiscard]] double at(std::uint32_t src_pod, std::uint32_t dst_pod) const {
    return inter_pod[src_pod * pods + dst_pod];
  }

  // Rejects negative/NaN mass anywhere (per-field diagnostics via
  // PodTrafficProfile::validate) and shape mismatches. The policy engine
  // validates every estimate it prices — the estimator is upstream of a
  // trust boundary once state crosses a failover.
  void validate() const;
};

// Serializable estimator state for controller failover: plain data, no
// hidden caches. restore() on a fresh estimator reproduces the primary's
// subsequent estimates byte-for-byte.
struct EstimatorState {
  double t{0.0};
  std::vector<double> inter_pod;
  std::vector<PodTrafficProfile> per_pod;
};

class TrafficMatrixEstimator {
 public:
  TrafficMatrixEstimator(const ClosParams& layout,
                         TrafficMatrixEstimatorOptions options = {});

  // Advances the decay clock to `now_s` (no-op when now_s <= the current
  // clock: telemetry from a batch that straddles the boundary never turns
  // time backwards).
  void advance_to(double now_s);

  // advance_to(now_s), then folds the records in order. Records are
  // credited like Advisor profiles: the source Pod always, the destination
  // Pod when different. Incomplete flows contribute the bytes they actually
  // delivered (the packet sim reports partial delivery; the fluid sim
  // reports zero), so a black-holed pair does not inflate demand.
  void observe(const std::vector<obs::FlowRecord>& records, double now_s);
  void observe(const obs::PairTelemetry& telemetry, double now_s);

  [[nodiscard]] DemandEstimate estimate() const;
  [[nodiscard]] double now() const { return t_; }
  [[nodiscard]] const ClosParams& layout() const { return layout_; }

  // Failover support: plain-data state out / in.
  [[nodiscard]] EstimatorState state() const;
  void restore(const EstimatorState& state);

 private:
  void fold(std::uint32_t src, std::uint32_t dst, double bytes);

  ClosParams layout_;
  TrafficMatrixEstimatorOptions options_;
  std::uint32_t per_rack_{0};
  std::uint32_t per_pod_{0};
  double t_{0.0};
  std::vector<double> inter_pod_;           // pods * pods row-major
  std::vector<PodTrafficProfile> per_pod_profile_;
};

}  // namespace flattree
