// ReconfigPolicy: demand-aware conversion decisions with hysteresis.
//
// The closed loop's brain. Each evaluation takes a DemandEstimate (the
// decayed traffic matrix from TrafficMatrixEstimator), builds a candidate
// set — the Advisor's per-Pod mode assignment plus the three uniform
// endpoints (all-Clos / all-Local / all-Global) — and *prices* every
// candidate instead of blindly taking the advisor's word:
//
//   predicted gain   two fluid-simulator runs over a synthetic workload
//                    reconstructed from the demand estimate (one flow
//                    bundle per active matrix entry, demand mass converted
//                    to a byte forecast over the prediction horizon):
//                    aggregate FCT on the current mode minus aggregate FCT
//                    on the candidate — seconds saved per horizon.
//   conversion cost  Controller::plan_conversion priced with the Table-3
//                    ConversionDelayModel (OCS pass + rule churn).
//
// The conversion fires only when every hysteresis gate passes:
//   * cold start: no decision until the estimate carries min_total_bytes
//     (an empty-telemetry estimator recommends nothing),
//   * min-dwell: at least min_dwell_s since the last conversion — an
//     oscillating workload cannot thrash the fabric faster than the dwell,
//   * gain threshold: predicted gain must exceed gain_cost_multiple times
//     the priced conversion delay AND min_gain_frac of the current
//     aggregate FCT — conversions that barely pay for themselves under a
//     demand estimate are noise, not signal.
//
// evaluate() is pure given its arguments (no hidden state, no clock): the
// decision log records exactly the inputs, so any decision can be replayed
// and re-verified bit-for-bit (AutopilotTest.DecisionLogReplays).
#pragma once

#include <cstdint>

#include "control/advisor.h"
#include "control/autopilot/estimator.h"
#include "control/controller.h"

namespace flattree {

struct ReconfigPolicyOptions {
  AdvisorOptions advisor{};
  double min_dwell_s{3.0};          // min time between conversions
  double min_gain_frac{0.02};       // gain / current aggregate FCT floor
  double gain_cost_multiple{1.0};   // gain must exceed multiple * cost
  double min_total_bytes{1.0};      // cold-start guard on estimate mass
  double idle_pod_bytes{1.0};       // Pods below this keep their mode
  // Demand-mass -> byte-forecast conversion: mass / demand_window_s is the
  // estimated rate; the synthetic workload carries rate * horizon_s bytes
  // per matrix entry. AutopilotLoop wires demand_window_s to the
  // estimator's effective window (half_life / ln 2).
  double demand_window_s{3.0};
  double horizon_s{1.0};            // prediction horizon
  std::uint32_t flows_per_entry{2};
  // The gain gate itself. When false the policy still prices the move (the
  // decision log keeps gain/cost) but follows the advisor regardless of
  // the result — the "hysteresis off" baseline a thrash bench measures
  // against. Dwell and cold-start gates still apply.
  bool require_positive_gain{true};

  // Throws std::invalid_argument on NaN/out-of-range fields, per-field
  // diagnostics.
  void validate() const;
};

enum class PolicyAction : std::uint8_t { kHold, kConvert };
enum class HoldReason : std::uint8_t {
  kNone,       // action == kConvert
  kColdStart,  // estimate below min_total_bytes
  kSameMode,   // advisor target equals the current assignment
  kDwell,      // min_dwell_s since the last conversion not yet elapsed
  kGain,       // predicted gain below the threshold
};

[[nodiscard]] const char* to_string(PolicyAction action);
[[nodiscard]] const char* to_string(HoldReason reason);

struct PolicyDecision {
  PolicyAction action{PolicyAction::kHold};
  HoldReason hold_reason{HoldReason::kColdStart};
  ModeAssignment target;  // best-priced candidate (advisor call or a uniform
                          // endpoint; idle Pods pinned in the advisor call)
  double predicted_current_fct_s{0.0};  // aggregate FCT, current mode
  double predicted_target_fct_s{0.0};   // aggregate FCT, candidate mode
  double predicted_gain_s{0.0};
  double conversion_cost_s{0.0};    // Table-3 priced delay
  bool priced{false};               // gain/cost fields meaningful
};

class ReconfigPolicy {
 public:
  ReconfigPolicy(const Controller& controller, ReconfigPolicyOptions options);

  [[nodiscard]] const ReconfigPolicyOptions& options() const {
    return options_;
  }

  // One decision. `estimate` is validated (trust boundary — it may have
  // crossed a failover); `current` is the live compiled mode;
  // `last_conversion_s` is the completion time of the most recent
  // conversion (or -infinity for never). Pure: identical arguments always
  // produce the identical decision.
  [[nodiscard]] PolicyDecision evaluate(const DemandEstimate& estimate,
                                        const CompiledMode& current,
                                        double now_s,
                                        double last_conversion_s) const;

  // The synthetic byte forecast evaluate() prices with: one flow bundle
  // per active matrix entry, locality split per the estimate's profiles.
  // Exposed for tests and the oracle baseline.
  [[nodiscard]] Workload synthesize_workload(
      const DemandEstimate& estimate) const;

  // Aggregate (summed) FCT of `flows` on a compiled mode's routes, the
  // pricing metric.
  [[nodiscard]] double aggregate_fct(const CompiledMode& mode,
                                     const Workload& flows) const;

 private:
  const Controller* controller_;
  ReconfigPolicyOptions options_;
};

}  // namespace flattree
