#include "control/advisor.h"

#include <stdexcept>

namespace flattree {

PodMode PodTrafficProfile::recommended(const AdvisorOptions& options) const {
  if (total_bytes <= 0) return PodMode::kGlobal;
  const double rack = intra_rack / total_bytes;
  const double pod = (intra_rack + intra_pod) / total_bytes;
  if (rack >= options.rack_threshold) return PodMode::kClos;
  if (pod >= options.pod_threshold) return PodMode::kLocal;
  return PodMode::kGlobal;
}

Advice advise_modes(const ClosParams& layout, const Workload& flows,
                    const AdvisorOptions& options) {
  layout.validate();
  const std::uint32_t per_rack = layout.servers_per_edge;
  const std::uint32_t per_pod = per_rack * layout.edge_per_pod;
  const std::uint32_t servers = layout.total_servers();

  Advice advice;
  advice.per_pod.resize(layout.pods);
  PodTrafficProfile whole;

  for (const Flow& f : flows) {
    if (f.src >= servers || f.dst >= servers) {
      throw std::invalid_argument("advise_modes: server index out of range");
    }
    const double bytes = f.bytes > 0 ? f.bytes : 1.0;
    const std::uint32_t src_pod = f.src / per_pod;
    const std::uint32_t dst_pod = f.dst / per_pod;

    const auto credit = [&](PodTrafficProfile& profile) {
      profile.total_bytes += bytes;
      if (f.src / per_rack == f.dst / per_rack) {
        profile.intra_rack += bytes;
      } else if (src_pod == dst_pod) {
        profile.intra_pod += bytes;
      } else {
        profile.inter_pod += bytes;
      }
    };
    credit(advice.per_pod[src_pod]);
    if (dst_pod != src_pod) credit(advice.per_pod[dst_pod]);
    credit(whole);
  }

  advice.assignment.pod_modes.reserve(layout.pods);
  for (const PodTrafficProfile& profile : advice.per_pod) {
    advice.assignment.pod_modes.push_back(profile.recommended(options));
  }
  advice.uniform = whole.recommended(options);
  return advice;
}

}  // namespace flattree
