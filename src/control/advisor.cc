#include "control/advisor.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace flattree {
namespace {

void check_fraction(double v, const char* field) {
  if (std::isnan(v) || v < 0.0 || v > 1.0) {
    throw std::invalid_argument(std::string("AdvisorOptions.") + field +
                                ": must be in [0, 1] and not NaN");
  }
}

void check_bytes(double v, const char* context, const char* field) {
  if (std::isnan(v)) {
    throw std::invalid_argument(std::string(context) + "." + field +
                                ": NaN demand");
  }
  if (v < 0.0) {
    throw std::invalid_argument(std::string(context) + "." + field +
                                ": negative demand");
  }
}

}  // namespace

void AdvisorOptions::validate() const {
  check_fraction(rack_threshold, "rack_threshold");
  check_fraction(pod_threshold, "pod_threshold");
}

void PodTrafficProfile::validate(const char* context) const {
  check_bytes(intra_rack, context, "intra_rack");
  check_bytes(intra_pod, context, "intra_pod");
  check_bytes(inter_pod, context, "inter_pod");
  check_bytes(total_bytes, context, "total_bytes");
  // The components partition the total; allow rounding slack proportional
  // to the magnitude (EWMA-decayed profiles accumulate float error).
  const double sum = intra_rack + intra_pod + inter_pod;
  const double slack = 1e-6 * std::max(1.0, total_bytes);
  if (sum > total_bytes + slack) {
    throw std::invalid_argument(
        std::string(context) +
        ": locality components exceed total_bytes (" + std::to_string(sum) +
        " > " + std::to_string(total_bytes) + ")");
  }
}

void Advice::validate() const {
  if (assignment.pod_modes.size() != per_pod.size()) {
    throw std::invalid_argument(
        "Advice: assignment covers " +
        std::to_string(assignment.pod_modes.size()) + " Pods but " +
        std::to_string(per_pod.size()) + " profiles present");
  }
  for (std::size_t p = 0; p < per_pod.size(); ++p) {
    const std::string context = "Advice.per_pod[" + std::to_string(p) + "]";
    per_pod[p].validate(context.c_str());
  }
}

PodMode PodTrafficProfile::recommended(const AdvisorOptions& options) const {
  if (!(total_bytes > 0)) return PodMode::kGlobal;
  const double rack = intra_rack / total_bytes;
  const double pod = (intra_rack + intra_pod) / total_bytes;
  // Explicit qualification + tie order (see the header): a fraction equal
  // to its threshold qualifies, and of the qualifying modes the most local
  // one wins — Clos before local before global.
  const bool clos_qualifies = rack >= options.rack_threshold;
  const bool local_qualifies = pod >= options.pod_threshold;
  if (clos_qualifies) return PodMode::kClos;
  if (local_qualifies) return PodMode::kLocal;
  return PodMode::kGlobal;
}

Advice advise_modes(const ClosParams& layout, const Workload& flows,
                    const AdvisorOptions& options) {
  layout.validate();
  options.validate();
  const std::uint32_t per_rack = layout.servers_per_edge;
  const std::uint32_t per_pod = per_rack * layout.edge_per_pod;
  const std::uint32_t servers = layout.total_servers();

  Advice advice;
  advice.per_pod.resize(layout.pods);
  PodTrafficProfile whole;

  for (const Flow& f : flows) {
    if (f.src >= servers || f.dst >= servers) {
      throw std::invalid_argument("advise_modes: server index out of range");
    }
    const double bytes = f.bytes > 0 ? f.bytes : 1.0;
    const std::uint32_t src_pod = f.src / per_pod;
    const std::uint32_t dst_pod = f.dst / per_pod;

    const auto credit = [&](PodTrafficProfile& profile) {
      profile.total_bytes += bytes;
      if (f.src / per_rack == f.dst / per_rack) {
        profile.intra_rack += bytes;
      } else if (src_pod == dst_pod) {
        profile.intra_pod += bytes;
      } else {
        profile.inter_pod += bytes;
      }
    };
    credit(advice.per_pod[src_pod]);
    if (dst_pod != src_pod) credit(advice.per_pod[dst_pod]);
    credit(whole);
  }

  advice.assignment.pod_modes.reserve(layout.pods);
  for (const PodTrafficProfile& profile : advice.per_pod) {
    advice.assignment.pod_modes.push_back(profile.recommended(options));
  }
  advice.uniform = whole.recommended(options);
  return advice;
}

}  // namespace flattree
