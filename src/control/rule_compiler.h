// OpenFlow rule compilation and table-driven forwarding (§4.2.1 + §5.3).
//
// The testbed implementation "conducts prefix matching for the source and
// destination IP addresses on the switches a path traverses". This module
// makes that concrete: it compiles a mode's k-shortest-path routing into
// per-switch rule tables keyed on (source /24 prefix, destination /24
// prefix) — the prefix carries the ingress switch ID and the path ID, so
// each MPTCP subflow's address pair deterministically selects one path —
// plus exact-match delivery rules at the egress switch. A table-driven
// forwarding walk then proves that every routable (source address,
// destination address) pair reaches the right server, which is the property
// the whole §4.2 state-aggregation design must preserve.
//
// Subflow-to-path mapping (§4.1): with A = ceil(sqrt(k)) addresses per
// server, the address-pair (i, j) carries path index i*A + j; pairs with
// index >= k are left unroutable on purpose ("limit the routing logic to
// the necessary subflows only, and MPTCP will not allocate traffic to
// subflows with no end-to-end reachability").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/addressing.h"
#include "net/graph.h"
#include "routing/ksp.h"
#include "routing/source_routing.h"

namespace flattree {

// One prefix-pair forwarding entry: match (src /24, dst /24) -> output port.
struct PrefixRule {
  std::uint32_t src_prefix{0};  // to_ipv4() & 0xffffff00
  std::uint32_t dst_prefix{0};
  std::uint8_t out_port{0};
};

// Exact-match delivery entry at the egress switch.
struct DeliveryRule {
  std::uint32_t dst_address{0};
  std::uint8_t out_port{0};
};

class CompiledRuleTables {
 public:
  // Compiles routing state for one mode: k paths between every pair of
  // server-bearing switches, addressed by `plan` (which must have been
  // built from the same realized graph).
  CompiledRuleTables(const Graph& graph, PathCache& paths,
                     const AddressPlan& plan);

  // Table-driven forwarding: walks the rule tables from the source server's
  // switch. Returns the node sequence (starting at the ingress switch,
  // ending at the destination server) or nullopt if some switch has no
  // matching rule (the address pair is not routable in this mode).
  [[nodiscard]] std::optional<std::vector<NodeId>> forward(
      FlatTreeAddress src, FlatTreeAddress dst) const;

  // Rule counts per switch (prefix-pair rules; delivery rules separate).
  [[nodiscard]] std::size_t prefix_rules_at(NodeId sw) const;
  [[nodiscard]] std::size_t delivery_rules_at(NodeId sw) const;
  [[nodiscard]] std::size_t max_prefix_rules() const;
  [[nodiscard]] std::uint64_t total_prefix_rules() const;

  [[nodiscard]] const AddressPlan& plan() const { return *plan_; }

 private:
  static std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
    return (static_cast<std::uint64_t>(a >> 8) << 32) | (b >> 8);
  }

  const Graph* graph_;
  const AddressPlan* plan_;
  PortMap ports_;
  // Per switch: (src prefix, dst prefix) -> out port; exact dst -> port.
  std::vector<std::unordered_map<std::uint64_t, std::uint8_t>> prefix_tables_;
  std::vector<std::unordered_map<std::uint32_t, std::uint8_t>> delivery_tables_;
};

}  // namespace flattree
