#include "control/rule_compiler.h"

#include <algorithm>
#include <stdexcept>

namespace flattree {

CompiledRuleTables::CompiledRuleTables(const Graph& graph, PathCache& paths,
                                       const AddressPlan& plan)
    : graph_{&graph}, plan_{&plan}, ports_{graph} {
  prefix_tables_.resize(graph.node_count());
  delivery_tables_.resize(graph.node_count());

  const std::uint32_t num_servers =
      static_cast<std::uint32_t>(graph.count_role(NodeRole::kServer));
  const std::uint32_t addresses = plan.addresses_per_server();
  const std::uint32_t k = plan.k();

  // Delivery rules: exact destination address -> server port.
  std::vector<NodeId> ingress;
  for (NodeId sw : graph.switches()) {
    const auto servers = graph.attached_servers(sw);
    if (servers.empty()) continue;
    ingress.push_back(sw);
    for (NodeId server : servers) {
      const std::uint8_t port = ports_.port_to(sw, server);
      for (const FlatTreeAddress& addr : plan.addresses(server)) {
        delivery_tables_[sw.index()].emplace(addr.to_ipv4(), port);
      }
    }
  }

  // Prefix-pair rules along every selected path of every switch pair.
  const auto prefix_of = [&](NodeId sw, std::uint32_t path_id) {
    FlatTreeAddress addr;
    addr.switch_id = static_cast<std::uint16_t>(sw.value() - num_servers);
    addr.path_id = static_cast<std::uint8_t>(path_id);
    addr.topology = static_cast<std::uint8_t>(plan.topo());
    return addr.ingress_prefix();
  };

  for (NodeId src_sw : ingress) {
    for (NodeId dst_sw : ingress) {
      if (src_sw == dst_sw) continue;
      const auto& path_set = paths.switch_paths(src_sw, dst_sw);
      if (path_set.empty()) {
        throw std::logic_error("rule compiler: disconnected switch pair");
      }
      for (std::uint32_t i = 0; i < addresses; ++i) {
        for (std::uint32_t j = 0; j < addresses; ++j) {
          const std::uint32_t combo = i * addresses + j;
          if (combo >= k) continue;  // §4.1: unnecessary subflow, no rules
          const Path& path = path_set[combo % path_set.size()];
          const std::uint64_t key =
              pair_key(static_cast<std::uint32_t>(prefix_of(src_sw, i)),
                       static_cast<std::uint32_t>(prefix_of(dst_sw, j)));
          for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
            prefix_tables_[path[hop].index()].emplace(
                key, ports_.port_to(path[hop], path[hop + 1]));
          }
        }
      }
    }
  }
}

std::optional<std::vector<NodeId>> CompiledRuleTables::forward(
    FlatTreeAddress src, FlatTreeAddress dst) const {
  const auto src_server = plan_->server_for(src);
  if (!src_server) return std::nullopt;
  NodeId here = graph_->attachment_switch(*src_server);

  const std::uint64_t key = pair_key(src.to_ipv4(), dst.to_ipv4());
  std::vector<NodeId> visited{here};
  for (int hop = 0; hop < 16; ++hop) {
    // Egress delivery takes precedence (only the egress switch holds an
    // exact-match entry for this destination address).
    const auto& delivery = delivery_tables_[here.index()];
    const auto deliver = delivery.find(dst.to_ipv4());
    if (deliver != delivery.end()) {
      const auto server = ports_.neighbor_at(here, deliver->second);
      if (!server) return std::nullopt;
      visited.push_back(*server);
      return visited;
    }
    const auto& table = prefix_tables_[here.index()];
    const auto rule = table.find(key);
    if (rule == table.end()) return std::nullopt;  // unroutable address pair
    const auto next = ports_.neighbor_at(here, rule->second);
    if (!next) return std::nullopt;
    visited.push_back(*next);
    here = *next;
  }
  return std::nullopt;  // forwarding loop guard
}

std::size_t CompiledRuleTables::prefix_rules_at(NodeId sw) const {
  return prefix_tables_.at(sw.index()).size();
}

std::size_t CompiledRuleTables::delivery_rules_at(NodeId sw) const {
  return delivery_tables_.at(sw.index()).size();
}

std::size_t CompiledRuleTables::max_prefix_rules() const {
  std::size_t best = 0;
  for (const auto& table : prefix_tables_) {
    best = std::max(best, table.size());
  }
  return best;
}

std::uint64_t CompiledRuleTables::total_prefix_rules() const {
  std::uint64_t total = 0;
  for (const auto& table : prefix_tables_) total += table.size();
  return total;
}

}  // namespace flattree
