#include "control/hierarchy.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "obs/metrics.h"
#include "routing/ksp.h"
#include "routing/path.h"

namespace flattree {

const char* to_string(ControlPlaneKind kind) {
  switch (kind) {
    case ControlPlaneKind::kFlat: return "flat";
    case ControlPlaneKind::kHierarchical: return "hierarchical";
  }
  return "?";
}

void ControlHierarchyOptions::validate() const {
  channel.validate();
  // Negated conjunctions so NaN is rejected too.
  if (!(per_hop_s >= 0.0)) {
    throw std::invalid_argument(
        "ControlHierarchyOptions: per_hop_s must be >= 0");
  }
  if (!(heartbeat_period_s > 0.0)) {
    throw std::invalid_argument(
        "ControlHierarchyOptions: heartbeat_period_s must be > 0");
  }
  if (heartbeat_miss_limit == 0) {
    throw std::invalid_argument(
        "ControlHierarchyOptions: heartbeat_miss_limit must be >= 1");
  }
  if (!(failover_takeover_s >= 0.0)) {
    throw std::invalid_argument(
        "ControlHierarchyOptions: failover_takeover_s must be >= 0");
  }
}

double HierarchyRunResult::mean_repair_lag_s() const {
  if (repairs.empty()) return 0.0;
  double sum = 0.0;
  for (const HierarchyRepair& r : repairs) {
    sum += r.installed_at_s - r.failed_at_s;
  }
  return sum / static_cast<double>(repairs.size());
}

ControlHierarchy::ControlHierarchy(const Controller& controller,
                                   ControlPlaneKind kind,
                                   ControlHierarchyOptions options)
    : controller_{&controller}, kind_{kind}, options_{std::move(options)} {
  options_.validate();
}

namespace {

NodeId nth_with_role(const Graph& g, NodeRole role, std::size_t index) {
  const std::vector<NodeId> nodes = g.nodes_with_role(role);
  return nodes.size() > index ? nodes[index] : NodeId{};
}

}  // namespace

NodeId ControlHierarchy::root_site(const Graph& graph) const {
  NodeId site = nth_with_role(graph, NodeRole::kCore, 0);
  if (!site.valid()) site = nth_with_role(graph, NodeRole::kAgg, 0);
  if (!site.valid()) site = nth_with_role(graph, NodeRole::kEdge, 0);
  return site;
}

NodeId ControlHierarchy::standby_site(const Graph& graph) const {
  const NodeId site = nth_with_role(graph, NodeRole::kCore, 1);
  return site.valid() ? site : root_site(graph);
}

NodeId ControlHierarchy::pod_site(const Graph& graph, PodId pod) const {
  for (NodeRole role : {NodeRole::kAgg, NodeRole::kEdge}) {
    for (NodeId n : graph.nodes_with_role(role)) {
      if (graph.node(n).pod == pod) return n;
    }
  }
  return root_site(graph);
}

ControlChannelOptions ControlHierarchy::channel_for(const Graph& graph) const {
  ControlChannelOptions ch = options_.channel;
  if (!options_.topology_rtts) return ch;
  const ControlRttModel root =
      control_rtts(graph, root_site(graph), options_.per_hop_s, ch.delay_s);
  ch.switch_delay_s = root.one_way_s;
  if (kind_ != ControlPlaneKind::kHierarchical) return ch;
  // Pod switches are programmed by their local controller, one hop or two
  // away instead of across the core.
  std::uint32_t pods = 0;
  for (std::uint32_t i = 0; i < graph.node_count(); ++i) {
    const PodId p = graph.node(NodeId{i}).pod;
    if (p.valid()) pods = std::max(pods, p.value() + 1);
  }
  for (std::uint32_t p = 0; p < pods; ++p) {
    const ControlRttModel local = control_rtts(
        graph, pod_site(graph, PodId{p}), options_.per_hop_s, ch.delay_s);
    for (std::uint32_t i = 0; i < graph.node_count(); ++i) {
      const Node& n = graph.node(NodeId{i});
      if (n.pod == PodId{p} && is_switch(n.role)) {
        ch.switch_delay_s[i] = local.one_way_s[i];
      }
    }
  }
  return ch;
}

HierarchyRunResult ControlHierarchy::run(
    const CompiledMode& mode, std::span<const std::pair<NodeId, NodeId>> pairs,
    const FailureSchedule& storm, const HierarchyFaults& faults,
    double duration_s, const CompiledMode* convert_to, double convert_at_s,
    const ConversionExecOptions& exec_base) const {
  if (!(duration_s > 0.0)) {
    throw std::invalid_argument(
        "ControlHierarchy::run: duration_s must be > 0");
  }
  storm.validate();
  const std::uint32_t pod_count = controller_->tree().clos().pods;
  for (const ControlPartition& p : faults.partitions) {
    if (!p.pod.valid() || p.pod.value() >= pod_count) {
      throw std::invalid_argument(
          "ControlHierarchy::run: partition pod out of range");
    }
    if (!(p.start_s >= 0.0) || (!(p.end_s < 0.0) && !(p.end_s > p.start_s))) {
      throw std::invalid_argument(
          "ControlHierarchy::run: partition window malformed");
    }
  }

  const Graph& reference = mode.graph();
  const std::uint32_t k = mode.k();
  const ConversionDelayModel& delay = controller_->options().delay;
  const bool hier = kind_ == ControlPlaneKind::kHierarchical;

  HierarchyRunResult result;
  result.duration_s = duration_s;

  // Controller homes and their RTT models on the starting realization.
  const ControlRttModel root_rtts = control_rtts(
      reference, root_site(reference), options_.per_hop_s,
      options_.channel.delay_s);
  std::vector<ControlRttModel> pod_rtts;
  if (hier) {
    pod_rtts.reserve(pod_count);
    for (std::uint32_t p = 0; p < pod_count; ++p) {
      pod_rtts.push_back(control_rtts(reference,
                                      pod_site(reference, PodId{p}),
                                      options_.per_hop_s,
                                      options_.channel.delay_s));
    }
  }

  // -- serving state ----------------------------------------------------------
  std::shared_ptr<const Graph> cur = mode.graph_ptr();  // clean realization
  std::vector<std::vector<Path>> canonical;
  canonical.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) {
    canonical.push_back(mode.paths().server_paths(src, dst));
  }
  std::vector<std::vector<Path>> routes = canonical;
  std::vector<bool> diverged(pairs.size(), false);
  FailureSet active;  // reference space, kept sorted
  std::shared_ptr<const Graph> live = cur;
  std::optional<PathCache> live_cache;

  const auto refresh_live = [&] {
    live_cache.reset();
    if (active.empty()) {
      live = cur;
    } else {
      live = std::make_shared<const Graph>(
          degrade_mapped(*cur, reference, active));
    }
  };

  // Fraction-weighted darkness, the executor's integral discipline: a pair
  // is charged the fraction of its installed paths invalid on the live
  // graph; no routes at all charges the whole interval.
  std::vector<double> dark(pairs.size(), 0.0);
  std::vector<double> dark_total(pairs.size(), 0.0);
  const auto dark_frac_of = [&](std::size_t i) -> double {
    const std::vector<Path>& rs = routes[i];
    if (rs.empty()) return 1.0;
    std::size_t bad = 0;
    for (const Path& p : rs) {
      if (!is_valid_path(*live, p)) ++bad;
    }
    return static_cast<double>(bad) / static_cast<double>(rs.size());
  };
  const auto recompute_dark = [&] {
    for (std::size_t i = 0; i < dark.size(); ++i) dark[i] = dark_frac_of(i);
  };

  double now = 0.0;
  const auto advance = [&](double t) {
    t = std::min(t, duration_s);
    if (t <= now) return;
    const double dt = t - now;
    for (std::size_t i = 0; i < dark.size(); ++i) {
      if (dark[i] > 0.0) dark_total[i] += dark[i] * dt;
    }
    now = t;
  };

  // -- control-plane fault geometry -------------------------------------------
  const double promote_t = faults.root_crash_at_s >= 0.0
                               ? faults.root_crash_at_s +
                                     options_.failover_takeover_s
                               : -1.0;
  if (faults.root_crash_at_s >= 0.0 && faults.root_crash_at_s < duration_s) {
    result.failovers = 1;
  }
  // The window covering time t for `pod`, as its effective end.
  const auto partition_end_at = [&](PodId pod,
                                    double t) -> std::optional<double> {
    for (const ControlPartition& p : faults.partitions) {
      if (p.pod == pod && t >= p.start_s &&
          (p.end_s < 0.0 || t < p.end_s)) {
        return p.end_s < 0.0 ? duration_s : p.end_s;
      }
    }
    return std::nullopt;
  };

  // -- event queue ------------------------------------------------------------
  // Processing order at equal times: storm folds first, then partition
  // bookkeeping, then the conversion hand-off, then repair installs.
  enum class EvKind : std::uint8_t {
    kStorm = 0,
    kDetect = 1,
    kRejoin = 2,
    kConvert = 3,
    kRepair = 4,
  };
  struct Ev {
    double t;
    EvKind kind;
    std::uint64_t seq;
    std::size_t idx;
  };
  struct EvCmp {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.kind != b.kind) {
        return static_cast<int>(a.kind) > static_cast<int>(b.kind);
      }
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, EvCmp> queue;
  std::uint64_t seq = 0;

  // Storm batches: all events sharing one physical time fold together.
  struct Batch {
    double t;
    std::size_t first;
    std::size_t count;
  };
  std::vector<Batch> batches;
  {
    const std::vector<FailureEvent>& evs = storm.events();
    for (std::size_t e = 0; e < evs.size();) {
      std::size_t j = e;
      while (j < evs.size() && evs[j].time_s == evs[e].time_s) ++j;
      batches.push_back(Batch{evs[e].time_s, e, j - e});
      e = j;
    }
    for (std::size_t b = 0; b < batches.size(); ++b) {
      if (batches[b].t < duration_s) {
        queue.push(Ev{batches[b].t, EvKind::kStorm, seq++, b});
      }
    }
  }

  // Heartbeat state machine (hierarchical only): a partition is detected
  // after heartbeat_miss_limit consecutive misses, rejoined one heartbeat
  // period after it heals. Windows shorter than the detection latency pass
  // unnoticed; the missed-heartbeat count still accrues.
  std::vector<std::uint32_t> journal(pod_count, 0);
  if (hier) {
    for (std::size_t w = 0; w < faults.partitions.size(); ++w) {
      const ControlPartition& p = faults.partitions[w];
      const double end_eff =
          p.end_s < 0.0 ? duration_s : std::min(p.end_s, duration_s);
      if (p.start_s >= duration_s) continue;
      result.heartbeats_missed += static_cast<std::uint64_t>(
          std::floor((end_eff - p.start_s) / options_.heartbeat_period_s));
      const double detect_t =
          p.start_s + options_.heartbeat_period_s *
                          static_cast<double>(options_.heartbeat_miss_limit);
      if (detect_t < end_eff) {
        queue.push(Ev{detect_t, EvKind::kDetect, seq++, w});
        if (p.end_s >= 0.0 && p.end_s < duration_s) {
          queue.push(Ev{p.end_s + options_.heartbeat_period_s,
                        EvKind::kRejoin, seq++, w});
        }
      }
    }
  }

  const bool converting =
      convert_to != nullptr && convert_at_s >= 0.0 &&
      convert_at_s < duration_s;
  if (converting) {
    queue.push(Ev{convert_at_s, EvKind::kConvert, seq++, 0});
  }
  double conv_end_s = -1.0;  // conversion span already accounted up to here

  // -- repairs ----------------------------------------------------------------
  struct Pending {
    std::size_t pair;
    double failed_at;
    bool local;
    bool deferred;
    bool canceled;
  };
  std::vector<Pending> pending;
  std::vector<bool> repair_pending(pairs.size(), false);

  const auto schedule_repair = [&](std::size_t i, double t) {
    if (repair_pending[i]) return;
    const auto [src, dst] = pairs[i];
    const NodeId sa = reference.attachment_switch(src);
    const NodeId sb = reference.attachment_switch(dst);
    const PodId pa = reference.node(src).pod;
    const PodId pb = reference.node(dst).pod;
    // Pod-local repair: both endpoints live in one Pod, so its controller
    // can re-solve and install without the root — even while islanded.
    const bool local = hier && pa.valid() && pa == pb;
    double avail = t;
    bool deferred = false;
    if (!local) {
      if (promote_t >= 0.0 && t >= faults.root_crash_at_s &&
          t < promote_t) {
        avail = promote_t;  // the root seat is empty until promotion
        deferred = true;
      }
      // The root cannot install rules inside an island: wait for every
      // partition covering an endpoint Pod to heal (plus one heartbeat to
      // notice), chasing windows that begin during the wait.
      for (std::size_t guard = 0; guard <= faults.partitions.size();
           ++guard) {
        bool moved = false;
        for (const PodId p : {pa, pb}) {
          if (!p.valid()) continue;
          if (const auto end = partition_end_at(p, avail)) {
            avail = std::max(avail, *end + options_.heartbeat_period_s);
            deferred = true;
            moved = true;
          }
        }
        if (!moved) break;
      }
    }
    const ControlRttModel& m = local ? pod_rtts[pa.value()] : root_rtts;
    const double one_way = std::max(m.one_way(sa, options_.channel.delay_s),
                                    m.one_way(sb, options_.channel.delay_s));
    std::uint64_t rules = 0;
    for (const Path& path : canonical[i]) {
      if (!path.empty()) rules += path.size() - 1;
    }
    // Detection + two command rounds (state query, rule install) + the
    // Table-3 priced rule writes.
    const double install_t =
        avail + options_.heartbeat_period_s + 4.0 * one_way +
        static_cast<double>(rules) * delay.rule_add_s /
            delay.effective_controllers();
    pending.push_back(Pending{i, t, local, deferred, false});
    repair_pending[i] = true;
    if (deferred) ++result.repairs_deferred;
    queue.push(Ev{install_t, EvKind::kRepair, seq++, pending.size() - 1});
  };

  // A path the Pod controller may install on its own: every hop stays in
  // its Pod (core switches carry no Pod and disqualify).
  const auto intra_pod = [&](const Path& path, PodId pod) {
    return std::all_of(path.begin(), path.end(), [&](NodeId n) {
      return reference.node(n).pod == pod;
    });
  };

  // -- main loop --------------------------------------------------------------
  while (!queue.empty()) {
    const Ev ev = queue.top();
    queue.pop();
    if (ev.t >= duration_s && ev.kind != EvKind::kRepair) break;
    const bool stale = ev.t <= conv_end_s;  // span covered by the executor
    if (!stale) advance(ev.t);
    switch (ev.kind) {
      case EvKind::kStorm: {
        if (stale) break;  // active was reset to active_at(conv_end_s)
        const std::vector<FailureEvent>& evs = storm.events();
        const Batch& b = batches[ev.idx];
        for (std::size_t e = b.first; e < b.first + b.count; ++e) {
          const FailureEvent& fe = evs[e];
          if (fe.recover) {
            for (LinkId id : fe.elements.links) {
              active.links.erase(std::remove(active.links.begin(),
                                             active.links.end(), id),
                                 active.links.end());
            }
            for (NodeId id : fe.elements.switches) {
              active.switches.erase(std::remove(active.switches.begin(),
                                                active.switches.end(), id),
                                    active.switches.end());
            }
          } else {
            active.merge(fe.elements);
          }
        }
        std::sort(active.links.begin(), active.links.end());
        std::sort(active.switches.begin(), active.switches.end());
        refresh_live();
        // Recoveries reconcile diverged pairs whose canonical plan routes
        // are whole again — the root (or the rejoined Pod controller)
        // reasserts the plan through the epoch protocol, so no off-plan
        // rule set outlives the failure that forced it.
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          if (!diverged[i]) continue;
          const bool ok = !canonical[i].empty() &&
                          std::all_of(canonical[i].begin(),
                                      canonical[i].end(), [&](const Path& p) {
                                        return is_valid_path(*live, p);
                                      });
          if (ok) {
            routes[i] = canonical[i];
            diverged[i] = false;
            ++result.pairs_reconciled;
          }
        }
        recompute_dark();
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          if (dark[i] > 0.0) schedule_repair(i, ev.t);
        }
        break;
      }
      case EvKind::kDetect:
        ++result.partitions_detected;
        break;
      case EvKind::kRejoin: {
        ++result.partitions_rejoined;
        const PodId pod = faults.partitions[ev.idx].pod;
        result.journal_replayed += journal[pod.index()];
        journal[pod.index()] = 0;
        if (!stale) {
          // Rejoin reconciliation: diverged pairs in the rejoined Pod whose
          // plan routes are valid go back on plan.
          for (std::size_t i = 0; i < pairs.size(); ++i) {
            if (!diverged[i]) continue;
            if (reference.node(pairs[i].first).pod != pod &&
                reference.node(pairs[i].second).pod != pod) {
              continue;
            }
            const bool ok = !canonical[i].empty() &&
                            std::all_of(canonical[i].begin(),
                                        canonical[i].end(),
                                        [&](const Path& p) {
                                          return is_valid_path(*live, p);
                                        });
            if (ok) {
              routes[i] = canonical[i];
              diverged[i] = false;
              ++result.pairs_reconciled;
            }
          }
          recompute_dark();
        }
        break;
      }
      case EvKind::kConvert: {
        ConversionExecOptions eo = exec_base;
        eo.channel = channel_for(*cur);
        eo.pod_local_authority = hier;
        ConversionFaults cf;
        cf.partitions = faults.partitions;
        cf.kill_primary_at_s = faults.root_crash_at_s >= convert_at_s
                                   ? faults.root_crash_at_s
                                   : -1.0;
        cf.kill_primary_at_s =
            cf.kill_primary_at_s >= 0.0 ? cf.kill_primary_at_s : -1.0;
        const ConversionExecutor executor{*controller_, eo};
        ExecutionReport rep = executor.execute_under_storm(
            mode, *convert_to, pairs, storm, cf, convert_at_s);
        conv_end_s = rep.finish_s;
        // The executor's integral covers [convert_at_s, finish_s]; adopt
        // its terminal checkpoint as the serving state and resume.
        result.blackhole_pair_s += rep.total_blackhole_s;
        result.max_pair_blackhole_s =
            std::max(result.max_pair_blackhole_s, rep.max_pair_blackhole_s);
        cur = std::make_shared<const Graph>(
            controller_->tree().realize(rep.terminal_configs));
        canonical = rep.checkpoints.back().routes;
        routes = canonical;
        std::fill(diverged.begin(), diverged.end(), false);
        active = storm.active_at(rep.finish_s);
        std::sort(active.links.begin(), active.links.end());
        std::sort(active.switches.begin(), active.switches.end());
        refresh_live();
        now = std::min(rep.finish_s, duration_s);
        // Repairs planned against the pre-conversion state are void.
        for (std::size_t pi = 0; pi < pending.size(); ++pi) {
          if (!pending[pi].canceled && repair_pending[pending[pi].pair]) {
            pending[pi].canceled = true;
            repair_pending[pending[pi].pair] = false;
          }
        }
        recompute_dark();
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          if (dark[i] > 0.0) schedule_repair(i, now);
        }
        result.conversion = std::move(rep);
        break;
      }
      case EvKind::kRepair: {
        Pending& pr = pending[ev.idx];
        if (pr.canceled) break;
        repair_pending[pr.pair] = false;
        if (stale || now >= duration_s) break;
        if (dark[pr.pair] <= 0.0) break;  // recovered before the fix landed
        const auto [src, dst] = pairs[pr.pair];
        if (live->degree(src) == 0 || live->degree(dst) == 0) break;
        if (!live_cache.has_value()) live_cache.emplace(*live, k);
        std::vector<Path> sol = live_cache->server_paths(src, dst);
        const PodId pod = reference.node(src).pod;
        if (pr.local) {
          // The islanded Pod controller can only program its own switches.
          std::erase_if(sol, [&](const Path& p) {
            return !intra_pod(p, pod);
          });
        }
        // Targeted patch: survivors stay installed, the solve tops the ECMP
        // set back up.
        std::vector<Path> next;
        for (const Path& p : routes[pr.pair]) {
          if (is_valid_path(*live, p)) next.push_back(p);
        }
        const std::size_t want =
            std::max<std::size_t>(routes[pr.pair].size(), 1);
        for (const Path& p : sol) {
          if (next.size() >= want) break;
          if (std::find(next.begin(), next.end(), p) == next.end()) {
            next.push_back(p);
          }
        }
        if (next.empty() || next == routes[pr.pair]) break;
        routes[pr.pair] = std::move(next);
        diverged[pr.pair] = routes[pr.pair] != canonical[pr.pair];
        dark[pr.pair] = dark_frac_of(pr.pair);
        if (pr.local) {
          ++result.repairs_local;
          if (partition_end_at(pod, ev.t).has_value()) {
            // Installed while islanded: journal for rejoin replay.
            ++result.journal_appended;
            ++journal[pod.index()];
          }
        } else {
          ++result.repairs_root;
        }
        result.repairs.push_back(HierarchyRepair{
            pr.pair, pr.failed_at, ev.t, pr.local, pr.deferred});
        break;
      }
    }
    if (now >= duration_s) break;
  }
  advance(duration_s);

  for (double d : dark_total) {
    result.blackhole_pair_s += d;
    result.max_pair_blackhole_s = std::max(result.max_pair_blackhole_s, d);
  }

  if (obs::MetricsRegistry* reg = options_.sink.metrics()) {
    reg->counter("ctrl.hier.runs").add();
    reg->counter("ctrl.hier.repairs.local").add(result.repairs_local);
    reg->counter("ctrl.hier.repairs.root").add(result.repairs_root);
    reg->counter("ctrl.hier.repairs.deferred").add(result.repairs_deferred);
    reg->counter("ctrl.hier.partitions.detected")
        .add(result.partitions_detected);
    reg->counter("ctrl.hier.partitions.rejoined")
        .add(result.partitions_rejoined);
    reg->counter("ctrl.hier.heartbeats.missed").add(result.heartbeats_missed);
    reg->counter("ctrl.hier.journal.appended").add(result.journal_appended);
    reg->counter("ctrl.hier.journal.replayed").add(result.journal_replayed);
    reg->counter("ctrl.hier.reconcile.pairs").add(result.pairs_reconciled);
    reg->counter("ctrl.hier.failovers").add(result.failovers);
    reg->gauge("ctrl.hier.max_blackhole_s").set_max(result.blackhole_pair_s);
  }
  if (obs::EventTracer* tracer = options_.sink.tracer()) {
    tracer->mark("ctrl_hier", to_string(kind_), 0,
                 static_cast<std::int64_t>(result.repairs.size()));
  }
  return result;
}

}  // namespace flattree
