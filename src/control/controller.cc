#include "control/controller.h"

#include <algorithm>
#include <stdexcept>

#include "net/stats.h"
#include "routing/source_routing.h"

namespace flattree {

CompiledMode::CompiledMode(const FlatTree& tree, ModeAssignment assignment,
                           std::uint32_t k, bool count_rules)
    : assignment_{std::move(assignment)}, k_{k} {
  configs_ = tree.configs_for(assignment_);
  graph_ = std::make_shared<const Graph>(tree.realize(configs_));
  paths_ = std::make_unique<PathCache>(*graph_, k_);
  if (count_rules) {
    const auto pairs = all_ingress_pairs(*graph_);
    const PathLengthStats stats = compute_path_length_stats(*graph_);
    const PortMap ports{*graph_};
    states_ = analyze_states(*graph_, *paths_, pairs, ports.max_port_count(),
                             stats.diameter);
    has_rule_counts_ = true;
    max_rules_per_switch_ = states_.aggregated_max;
    // Total aggregated rules across all switches = avg * switch count.
    total_rules_ = static_cast<std::uint64_t>(
        states_.aggregated_avg * static_cast<double>(graph_->switches().size()) +
        0.5);
  }
}

Controller::Controller(FlatTree tree, ControllerOptions options)
    : tree_{std::move(tree)}, options_{options} {}

std::uint32_t Controller::k_for(PodMode mode) const {
  switch (mode) {
    case PodMode::kGlobal: return options_.k_global;
    case PodMode::kLocal: return options_.k_local;
    case PodMode::kClos: return options_.k_clos;
  }
  return options_.k_global;
}

CompiledMode Controller::compile(const ModeAssignment& assignment,
                                 std::uint32_t k) const {
  return CompiledMode{tree_, assignment, k, options_.count_rules};
}

CompiledMode Controller::compile_uniform(PodMode mode) const {
  return compile(ModeAssignment::uniform(tree_.clos().pods, mode),
                 k_for(mode));
}

ConversionReport Controller::plan_conversion(const CompiledMode& from,
                                             const CompiledMode& to) const {
  if (from.configs().size() != to.configs().size()) {
    throw std::invalid_argument("plan_conversion: different flat-trees");
  }
  ConversionReport report;
  for (std::size_t i = 0; i < from.configs().size(); ++i) {
    if (from.configs()[i] != to.configs()[i]) ++report.converters_changed;
  }
  // The OCS (or the distributed converter population) reconfigures in one
  // pass: all circuit changes are programmed together (Table 3 shows a
  // single 160 ms term regardless of mode).
  report.ocs_s =
      report.converters_changed > 0 ? options_.delay.ocs_reconfigure_s : 0.0;

  // Rule updates are bottlenecked by the busiest switch table (switches are
  // reprogrammed one table at a time in the testbed, and every switch's
  // delete of the outgoing mode precedes the add of the incoming mode).
  if (from.has_rule_counts() && to.has_rule_counts()) {
    report.rules_deleted = from.max_rules_per_switch();
    report.rules_added = to.max_rules_per_switch();
  }
  const double controllers =
      std::max<std::uint32_t>(1, options_.delay.controllers);
  report.delete_s = static_cast<double>(report.rules_deleted) *
                    options_.delay.rule_delete_s / controllers;
  report.add_s = static_cast<double>(report.rules_added) *
                 options_.delay.rule_add_s / controllers;
  return report;
}

std::vector<ModeAssignment> Controller::gradual_plan(
    const ModeAssignment& from, const ModeAssignment& to) {
  if (from.pod_modes.size() != to.pod_modes.size()) {
    throw std::invalid_argument("gradual_plan: pod counts differ");
  }
  std::vector<ModeAssignment> stages;
  ModeAssignment current = from;
  for (std::size_t pod = 0; pod < from.pod_modes.size(); ++pod) {
    if (current.pod_modes[pod] == to.pod_modes[pod]) continue;
    current.pod_modes[pod] = to.pod_modes[pod];
    stages.push_back(current);
  }
  return stages;
}

}  // namespace flattree
