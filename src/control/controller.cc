#include "control/controller.h"

#include <algorithm>
#include <stdexcept>

#include "net/stats.h"
#include "routing/source_routing.h"

namespace flattree {

void ConversionDelayModel::validate() const {
  // Negated conjunction so NaN (which compares false against every bound)
  // is rejected too.
  if (!(ocs_reconfigure_s >= 0.0 && rule_delete_s >= 0.0 &&
        rule_add_s >= 0.0)) {
    throw std::invalid_argument(
        "ConversionDelayModel: per-operation delays must be >= 0");
  }
}

CompiledMode::CompiledMode(const FlatTree& tree, ModeAssignment assignment,
                           std::uint32_t k, bool count_rules,
                           const obs::ObsSink& sink)
    : assignment_{std::move(assignment)}, k_{k} {
  configs_ = tree.configs_for(assignment_);
  graph_ = std::make_shared<const Graph>(tree.realize(configs_));
  paths_ = std::make_unique<PathCache>(*graph_, k_);
  paths_->attach_obs(sink);
  if (count_rules) {
    const auto pairs = all_ingress_pairs(*graph_);
    const PathLengthStats stats = compute_path_length_stats(*graph_);
    const PortMap ports{*graph_};
    states_ = analyze_states(*graph_, *paths_, pairs, ports.max_port_count(),
                             stats.diameter);
    has_rule_counts_ = true;
    max_rules_per_switch_ = states_.aggregated_max;
    // Total aggregated rules across all switches = avg * switch count.
    total_rules_ = static_cast<std::uint64_t>(
        states_.aggregated_avg * static_cast<double>(graph_->switches().size()) +
        0.5);
  }
}

RepairApplication CompiledMode::apply_repair(
    std::shared_ptr<const Graph> graph, std::vector<ConverterConfig> configs,
    std::span<const NodeId> failed_switches, bool warm) {
  RepairApplication application;
  // The outgoing realization must outlive the rebind: the cache still points
  // at it and checks node-id compatibility against it.
  const std::shared_ptr<const Graph> outgoing = std::move(graph_);
  graph_ = std::move(graph);
  configs_ = std::move(configs);
  application.pairs_invalidated =
      warm ? paths_->rebind_warm(*graph_, &application.evicted)
           : paths_->rebind_and_invalidate(*graph_, failed_switches,
                                           &application.evicted);
  application.pairs_retained = paths_->cached_pairs();
  return application;
}

Controller::Controller(FlatTree tree, ControllerOptions options)
    : tree_{std::move(tree)}, options_{options} {}

std::uint32_t Controller::k_for(PodMode mode) const {
  switch (mode) {
    case PodMode::kGlobal: return options_.k_global;
    case PodMode::kLocal: return options_.k_local;
    case PodMode::kClos: return options_.k_clos;
  }
  return options_.k_global;
}

CompiledMode Controller::compile(const ModeAssignment& assignment,
                                 std::uint32_t k) const {
  return CompiledMode{tree_, assignment, k, options_.count_rules,
                      options_.sink};
}

CompiledMode Controller::compile_uniform(PodMode mode) const {
  return compile(ModeAssignment::uniform(tree_.clos().pods, mode),
                 k_for(mode));
}

ConversionReport Controller::plan_conversion(const CompiledMode& from,
                                             const CompiledMode& to) const {
  if (from.configs().size() != to.configs().size()) {
    throw std::invalid_argument("plan_conversion: different flat-trees");
  }
  options_.delay.validate();
  ConversionReport report;
  for (std::size_t i = 0; i < from.configs().size(); ++i) {
    if (from.configs()[i] != to.configs()[i]) ++report.converters_changed;
  }
  // The OCS (or the distributed converter population) reconfigures in one
  // pass: all circuit changes are programmed together (Table 3 shows a
  // single 160 ms term regardless of mode).
  report.ocs_s =
      report.converters_changed > 0 ? options_.delay.ocs_reconfigure_s : 0.0;

  // Rule updates are bottlenecked by the busiest switch table (switches are
  // reprogrammed one table at a time in the testbed, and every switch's
  // delete of the outgoing mode precedes the add of the incoming mode).
  if (from.has_rule_counts() && to.has_rule_counts()) {
    report.rules_deleted = from.max_rules_per_switch();
    report.rules_added = to.max_rules_per_switch();
  }
  const double controllers = options_.delay.effective_controllers();
  report.delete_s = static_cast<double>(report.rules_deleted) *
                    options_.delay.rule_delete_s / controllers;
  report.add_s = static_cast<double>(report.rules_added) *
                 options_.delay.rule_add_s / controllers;
  if (obs::MetricsRegistry* reg = options_.sink.metrics()) {
    reg->counter("control.conversions").add();
    reg->counter("control.conversion.converters_changed")
        .add(report.converters_changed);
    reg->counter("control.conversion.rules_deleted").add(report.rules_deleted);
    reg->counter("control.conversion.rules_added").add(report.rules_added);
    reg->gauge("control.conversion.max_total_s").set_max(report.total_s());
  }
  if (obs::EventTracer* tracer = options_.sink.tracer()) {
    tracer->mark("control", "plan_conversion", 0,
                 static_cast<std::int64_t>(report.rules_deleted +
                                           report.rules_added));
  }
  return report;
}

RepairPlan Controller::plan_repair(CompiledMode& mode,
                                   const FailureSet& failures,
                                   const RepairOptions& repair_options) const {
  options_.delay.validate();
  const Graph& old_graph = mode.graph();
  obs::MetricsRegistry* reg = options_.sink.metrics();
  obs::EventTracer* tracer = options_.sink.tracer();
  RepairPlan plan;
  plan.configs = mode.configs();

  // Repair-by-reconfiguration: a side/cross 6-port converter breaks its
  // server out onto a core switch; if that core died, the server is
  // stranded behind a dead box. Flipping the converter — and its side peer,
  // since bundles configure pairwise — to local re-homes both servers onto
  // their aggregation switches through circuits that avoid the failure.
  const auto cores = old_graph.nodes_with_role(NodeRole::kCore);
  std::vector<bool> core_dead(cores.size(), false);
  for (NodeId id : failures.switches) {
    if (id.index() < old_graph.node_count() &&
        old_graph.node(id).role == NodeRole::kCore) {
      core_dead[id.value() - cores.front().value()] = true;
    }
  }
  if (repair_options.allow_converter_rewire) {
    const auto converters = tree_.converters();
    for (std::size_t i = 0; i < converters.size(); ++i) {
      const bool on_core = plan.configs[i] == ConverterConfig::kSide ||
                           plan.configs[i] == ConverterConfig::kCross;
      if (!on_core || !core_dead[converters[i].core]) continue;
      plan.configs[i] = ConverterConfig::kLocal;
      plan.configs[converters[i].side_peer.index()] = ConverterConfig::kLocal;
      plan.used_converter_rewire = true;
    }
  }
  for (std::size_t i = 0; i < plan.configs.size(); ++i) {
    if (plan.configs[i] != mode.configs()[i]) ++plan.converters_changed;
  }
  if (tracer != nullptr) {
    tracer->mark("control", "repair.rewire", 0,
                 static_cast<std::int64_t>(plan.converters_changed));
  }

  // The post-repair operating topology: re-realize if circuits moved (the
  // failure set's link ids then need node-pair resolution against the old
  // realization), otherwise degrade in place.
  if (plan.used_converter_rewire) {
    plan.graph = std::make_shared<const Graph>(
        degrade_mapped(tree_.realize(plan.configs), old_graph, failures));
  } else {
    plan.graph = std::make_shared<const Graph>(degrade(old_graph, failures));
  }

  // Incremental routing update: evict exactly the broken pairs, re-solve
  // them on the repaired topology, and price the rule delta per evicted
  // pair — recovery latency scales with the blast radius, not the network.
  // Warm eviction is only sound for pure degrades: a converter rewire adds
  // adjacencies, where rebind_warm's exact eviction and the legacy
  // survivors-stay-valid policy genuinely diverge.
  const bool warm = options_.warm_repair && !plan.used_converter_rewire;
  RepairApplication application =
      mode.apply_repair(plan.graph, plan.configs, failures.switches, warm);
  plan.pairs_invalidated = application.pairs_invalidated;
  plan.pairs_retained = application.pairs_retained;
  if (tracer != nullptr) {
    tracer->mark("control", "repair.invalidate", 0,
                 static_cast<std::int64_t>(plan.pairs_invalidated));
  }
  obs::Histogram* h_evicted_rules =
      reg != nullptr ? &reg->histogram("control.repair.evicted_pair_rules",
                                       {1, 2, 4, 8, 16, 32, 64, 128})
                     : nullptr;
  for (const EvictedPair& pair : application.evicted) {
    plan.rules_deleted += pair.rules;
    obs::record(h_evicted_rules, static_cast<double>(pair.rules));
    for (const Path& path : mode.paths().switch_paths(pair.src, pair.dst)) {
      if (!path.empty()) plan.rules_added += path.size() - 1;
    }
  }
  if (tracer != nullptr) {
    tracer->mark("control", "repair.repath", 0,
                 static_cast<std::int64_t>(plan.rules_added));
  }

  plan.ocs_s = plan.converters_changed > 0 ? options_.delay.ocs_reconfigure_s
                                           : 0.0;
  const double controllers = options_.delay.effective_controllers();
  plan.delete_s = static_cast<double>(plan.rules_deleted) *
                  options_.delay.rule_delete_s / controllers;
  plan.add_s = static_cast<double>(plan.rules_added) *
               options_.delay.rule_add_s / controllers;
  if (reg != nullptr) {
    reg->counter("control.repairs").add();
    reg->counter("control.repair.converters_changed")
        .add(plan.converters_changed);
    reg->counter("control.repair.rules_deleted").add(plan.rules_deleted);
    reg->counter("control.repair.rules_added").add(plan.rules_added);
    reg->counter("control.repair.pairs_evicted").add(plan.pairs_invalidated);
    reg->counter("control.repair.pairs_retained").add(plan.pairs_retained);
    reg->gauge("control.repair.max_total_s").set_max(plan.total_s());
  }
  return plan;
}

std::vector<ModeAssignment> Controller::gradual_plan(
    const ModeAssignment& from, const ModeAssignment& to) {
  if (from.pod_modes.size() != to.pod_modes.size()) {
    throw std::invalid_argument("gradual_plan: pod counts differ");
  }
  std::vector<ModeAssignment> stages;
  ModeAssignment current = from;
  for (std::size_t pod = 0; pod < from.pod_modes.size(); ++pod) {
    if (current.pod_modes[pod] == to.pod_modes[pod]) continue;
    current.pod_modes[pod] = to.pod_modes[pod];
    stages.push_back(current);
  }
  return stages;
}

}  // namespace flattree
