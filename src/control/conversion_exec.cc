#include "control/conversion_exec.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "core/converter.h"
#include "net/rng.h"
#include "obs/metrics.h"
#include "routing/ksp.h"

namespace flattree {

void ControlChannelOptions::validate() const {
  // Negated conjunctions so NaN (which compares false against every bound)
  // is rejected too.
  if (!(drop_probability >= 0.0 && drop_probability < 1.0)) {
    throw std::invalid_argument(
        "ControlChannelOptions: drop_probability must be in [0, 1)");
  }
  if (!(delay_s >= 0.0)) {
    throw std::invalid_argument("ControlChannelOptions: delay_s must be >= 0");
  }
  if (!(timeout_s > 0.0)) {
    throw std::invalid_argument("ControlChannelOptions: timeout_s must be > 0");
  }
  if (!(backoff >= 1.0)) {
    throw std::invalid_argument("ControlChannelOptions: backoff must be >= 1");
  }
  if (!(jitter >= 0.0 && jitter <= 1.0)) {
    throw std::invalid_argument(
        "ControlChannelOptions: jitter must be in [0, 1]");
  }
  if (max_attempts == 0) {
    throw std::invalid_argument(
        "ControlChannelOptions: max_attempts must be >= 1");
  }
  for (double d : switch_delay_s) {
    if (!(d >= 0.0)) {
      throw std::invalid_argument(
          "ControlChannelOptions: switch_delay_s entries must be >= 0");
    }
  }
}

const char* to_string(StepKind kind) {
  switch (kind) {
    case StepKind::kRulePatch: return "rule_patch";
    case StepKind::kOcs: return "ocs";
    case StepKind::kRuleAdd: return "rule_add";
    case StepKind::kEpochFlip: return "epoch_flip";
    case StepKind::kRuleDelete: return "rule_delete";
    case StepKind::kRuleRestore: return "rule_restore";
  }
  return "?";
}

const char* to_string(ConversionOutcome outcome) {
  switch (outcome) {
    case ConversionOutcome::kConverted: return "converted";
    case ConversionOutcome::kPartial: return "partial";
    case ConversionOutcome::kRolledBack: return "rolled_back";
  }
  return "?";
}

namespace {

std::uint64_t directed_pair_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
}

bool has_repeated_node(const Path& path) {
  Path sorted = path;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end();
}

// Changed converters grouped into rewire units (a six-port converter and its
// side peer configure pairwise, so they always move in the same OCS pass —
// FlatTree::realize rejects half-configured side bundles) and chunked into
// at most `requested` contiguous partitions.
std::vector<std::vector<std::uint32_t>> make_partitions(
    const FlatTree& tree, std::span<const ConverterConfig> from,
    std::span<const ConverterConfig> to, std::uint32_t requested) {
  const std::span<const Converter> converters = tree.converters();
  std::vector<std::vector<std::uint32_t>> units;
  std::vector<bool> seen(from.size(), false);
  for (std::uint32_t i = 0; i < from.size(); ++i) {
    if (seen[i] || from[i] == to[i]) continue;
    std::vector<std::uint32_t> unit{i};
    seen[i] = true;
    const ConverterId peer = converters[i].side_peer;
    if (peer.valid() && peer.index() < from.size() && !seen[peer.index()]) {
      unit.push_back(peer.value());
      seen[peer.index()] = true;
    }
    units.push_back(std::move(unit));
  }
  if (units.empty()) return {};
  const std::size_t count = std::min<std::size_t>(
      std::max<std::uint32_t>(1, requested), units.size());
  std::vector<std::vector<std::uint32_t>> partitions(count);
  for (std::size_t u = 0; u < units.size(); ++u) {
    std::vector<std::uint32_t>& part = partitions[u * count / units.size()];
    part.insert(part.end(), units[u].begin(), units[u].end());
  }
  return partitions;
}

bool same_failure_set(const FailureSet& a, const FailureSet& b) {
  return a.links == b.links && a.switches == b.switches;
}

struct ChannelOutcome {
  bool ok{false};
  double finish_s{0.0};
  std::uint32_t attempts{0};
  std::uint32_t dropped{0};
};

// The whole mutable execution state plus the step/timeline machinery. One
// instance per execute() call; everything it touches is local or owned by
// the caller, so executions are trivially parallel across threads.
struct Exec {
  const FlatTree& tree;
  const Controller& controller;
  const ConversionExecOptions& opt;
  const ConversionDelayModel& delay;
  const ConversionFaults& faults;
  ExecutionReport& report;
  Rng rng;
  Rng jitter_rng;  // decorrelated from the drop stream by construction
  double now{0.0};
  std::uint32_t epoch{0};
  std::uint32_t k{4};
  std::vector<ConverterConfig> configs;
  std::shared_ptr<const Graph> graph;  // current clean realization
  std::shared_ptr<const Graph> live;   // graph minus active storm failures
  std::vector<std::vector<Path>> routes;     // installed, parallel to pairs
  std::vector<std::vector<Path>> canonical;  // the plan absent any storm
  std::vector<bool> diverged;  // installed off-plan due to a storm re-plan
  std::vector<bool> dead;      // per node id, control-plane dead
  std::vector<NodeId> dead_list;  // the same, sorted

  // Storm state. Link ids of `storm` live in `reference`'s space (the
  // origin realization) and resolve to node pairs across realizations.
  const FailureSchedule* storm{nullptr};
  const Graph* reference{nullptr};
  std::size_t storm_next{0};
  // Intersection graph of an in-flight make-before-break rewire (set only
  // while rewire_partition's patch chunks are landing). A re-plan that
  // fires mid-rewire solves on this graph so its substitutes survive the
  // imminent OCS pass.
  const Graph* mbb_intersection{nullptr};
  FailureSet storm_active;  // sorted, reference space
  bool in_rollback{false};
  bool replan_failed{false};  // a forward re-plan step exhausted its retries

  // Failover state.
  bool failed_over{false};
  bool standby{false};  // steps from here on are issued by the standby

  // The current stage's goal mode, for repairing its plan routes through
  // Controller::plan_repair when the storm breaks them. stage_live is a
  // storm-degraded repaired copy, rebuilt whenever the active set changes.
  const CompiledMode* stage_target{nullptr};
  std::optional<CompiledMode> stage_live;
  FailureSet stage_live_fails;

  obs::Counter* c_steps{nullptr};
  obs::Counter* c_step_failures{nullptr};
  obs::Counter* c_retries{nullptr};
  obs::Counter* c_dropped{nullptr};
  obs::Counter* c_patched{nullptr};
  obs::Counter* c_inv_checks{nullptr};
  obs::Counter* c_violations{nullptr};
  obs::Counter* c_replan_events{nullptr};
  obs::Counter* c_replan_pairs{nullptr};
  obs::Counter* c_replan_steps{nullptr};
  obs::Counter* c_ckpt_committed{nullptr};
  obs::Counter* c_ckpt_rollbacks{nullptr};
  obs::Counter* c_fo_takeovers{nullptr};
  obs::Counter* c_fo_reissued{nullptr};
  obs::Histogram* h_attempts{nullptr};
  obs::EventTracer* tracer{nullptr};

  // One command round over the lossy channel: per attempt the command drop
  // and (if delivered and executable) the ack drop are drawn independently;
  // a forced failure (dead switch, injected OCS fault) is delivered but
  // never acks. Retries go out after a capped exponential backoff,
  // shortened by up to channel.jitter of itself from the dedicated jitter
  // stream — desynchronizing retry trains without touching the drop
  // stream, so delivery outcomes are invariant under jitter changes.
  // `unbounded` (rollback) retries until success, with a far-out safety
  // valve so an adversarial seed cannot hang the executor.
  // The one-way delay toward a step's target: the topology-aware
  // per-switch figure when the channel carries one (net/control_rtt.h),
  // else the uniform delay_s. Untargeted steps (patches, OCS passes, the
  // flip barrier) always use delay_s — they fan out to many devices and
  // the uniform figure is their calibrated aggregate.
  double one_way_for(NodeId target) const {
    const std::vector<double>& d = opt.channel.switch_delay_s;
    if (!target.valid() || target.index() >= d.size()) {
      return opt.channel.delay_s;
    }
    return d[target.index()];
  }

  // True when n's Pod has an active control partition at `now`. Core
  // switches carry no Pod and are never partitioned. Windows are checked
  // at step start — per-call granularity, deterministic.
  bool partitioned(NodeId n) const {
    if (faults.partitions.empty()) return false;
    const PodId pod = graph->node(n).pod;
    if (!pod.valid()) return false;
    for (const ControlPartition& p : faults.partitions) {
      if (p.pod == pod && now >= p.start_s &&
          (p.end_s < 0.0 || now < p.end_s)) {
        return true;
      }
    }
    return false;
  }

  // A per-switch step the commanding controller cannot deliver: the flat
  // root cannot cross a partition; a Pod-local controller with authority
  // programs its own island.
  bool partition_blocks(NodeId n) const {
    return !opt.pod_local_authority && partitioned(n);
  }

  ChannelOutcome channel_round(double start_s, double one_way_s,
                               double service_s, bool forced_fail,
                               bool unbounded) {
    const ControlChannelOptions& ch = opt.channel;
    const double rtt = 2.0 * one_way_s + service_s;
    const double base_timeout = std::max(ch.timeout_s, rtt);
    const double timeout_cap = base_timeout * 64.0;
    const std::uint32_t cap = unbounded ? 4096u : ch.max_attempts;
    ChannelOutcome out;
    double t = start_s;
    double timeout = base_timeout;
    for (std::uint32_t attempt = 1; attempt <= cap; ++attempt) {
      out.attempts = attempt;
      const bool delivered = !(rng.next_double() < ch.drop_probability);
      if (!delivered) {
        ++out.dropped;
      } else if (!forced_fail) {
        const bool acked = !(rng.next_double() < ch.drop_probability);
        if (acked) {
          out.ok = true;
          out.finish_s = t + rtt;
          return out;
        }
        ++out.dropped;
      }
      t += timeout * (1.0 - ch.jitter * jitter_rng.next_double());
      timeout = std::min(timeout * ch.backoff, timeout_cap);
    }
    out.finish_s = t;
    return out;
  }

  // Executes one schedule step over the channel, records it, and advances
  // simulated time. Returns whether the step was acked.
  bool run_step(StepKind kind, bool rollback, NodeId target,
                std::uint32_t partition, std::uint64_t adds,
                std::uint64_t dels, double extra_service_s, bool forced_fail,
                bool replan = false) {
    const double service =
        extra_service_s + (static_cast<double>(adds) * delay.rule_add_s +
                           static_cast<double>(dels) * delay.rule_delete_s) /
                              delay.effective_controllers();
    const ChannelOutcome out =
        channel_round(now, one_way_for(target), service, forced_fail,
                      rollback);
    StepRecord rec;
    rec.kind = kind;
    rec.rollback = rollback;
    rec.replan = replan;
    rec.standby = standby;
    rec.target = target;
    rec.partition = partition;
    rec.rules_added = adds;
    rec.rules_deleted = dels;
    rec.start_s = now;
    rec.finish_s = out.finish_s;
    rec.attempts = out.attempts;
    rec.ok = out.ok;
    report.steps.push_back(rec);
    now = out.finish_s;
    report.retries += out.attempts - 1;
    report.messages_dropped += out.dropped;
    if (out.ok) {
      report.rules_added += adds;
      report.rules_deleted += dels;
    } else {
      ++report.steps_failed;
    }
    obs::add(c_steps);
    obs::add(c_retries, out.attempts - 1);
    obs::add(c_dropped, out.dropped);
    obs::record(h_attempts, static_cast<double>(out.attempts));
    if (!out.ok) obs::add(c_step_failures);
    if (tracer != nullptr) {
      tracer->mark("conv_exec", to_string(kind), 0,
                   static_cast<std::int64_t>(out.attempts));
    }
    return out.ok;
  }

  // -- storm machinery --------------------------------------------------------

  void refresh_live() {
    if (storm_active.empty()) {
      live = graph;
    } else {
      live = std::make_shared<const Graph>(
          degrade_mapped(*graph, *reference, storm_active));
    }
  }

  void apply_storm_event(const FailureEvent& e) {
    if (e.recover) {
      for (LinkId id : e.elements.links) {
        storm_active.links.erase(std::remove(storm_active.links.begin(),
                                             storm_active.links.end(), id),
                                 storm_active.links.end());
      }
      for (NodeId id : e.elements.switches) {
        storm_active.switches.erase(
            std::remove(storm_active.switches.begin(),
                        storm_active.switches.end(), id),
            storm_active.switches.end());
      }
    } else {
      storm_active.merge(e.elements);
      std::sort(storm_active.links.begin(), storm_active.links.end());
      std::sort(storm_active.switches.begin(), storm_active.switches.end());
    }
  }

  // Folds storm events due by `now` into the executor's live graph and,
  // when anything changed, runs one re-plan / reconcile pass. Called at
  // every step boundary — this is the executor's *detection* point, so the
  // lag between a physical event and the next boundary is real detection
  // latency. The physical event times themselves are bound into the
  // reported timeline after execution (see the post-pass in
  // execute_under_storm), not here.
  void storm_tick() {
    if (storm == nullptr) return;
    const std::vector<FailureEvent>& evs = storm->events();
    bool changed = false;
    while (storm_next < evs.size() && evs[storm_next].time_s <= now) {
      apply_storm_event(evs[storm_next]);
      ++storm_next;
      changed = true;
    }
    if (changed) {
      refresh_live();
      obs::add(c_replan_events);
      if (opt.live_replanning) replan_pass();
    }
  }

  // The stage target's plan, repaired around the active storm through the
  // controller (Controller::plan_repair on a fresh compile of the stage
  // assignment). Returns nullptr when there is no stage target or no storm.
  PathCache* ensure_stage_live() {
    if (stage_target == nullptr || storm_active.empty()) return nullptr;
    if (stage_live.has_value() &&
        same_failure_set(stage_live_fails, storm_active)) {
      return &stage_live->paths();
    }
    CompiledMode repaired = controller.compile(stage_target->assignment(), k);
    // Map the reference-space failed links onto this realization by node
    // pair; switch ids are stable across realizations.
    FailureSet mapped;
    mapped.switches = storm_active.switches;
    const auto pair_key = [](NodeId a, NodeId b) {
      const auto lo = std::min(a.value(), b.value());
      const auto hi = std::max(a.value(), b.value());
      return (static_cast<std::uint64_t>(lo) << 32) | hi;
    };
    std::vector<std::uint64_t> severed;
    for (LinkId id : storm_active.links) {
      const Link& l = reference->link(id);
      severed.push_back(pair_key(l.a, l.b));
    }
    const Graph& rg = repaired.graph();
    for (std::uint32_t i = 0; i < rg.link_count(); ++i) {
      const Link& l = rg.link(LinkId{i});
      if (std::find(severed.begin(), severed.end(), pair_key(l.a, l.b)) !=
          severed.end()) {
        mapped.links.push_back(LinkId{i});
      }
    }
    if (!mapped.empty()) {
      (void)controller.plan_repair(repaired, mapped,
                                   RepairOptions{.allow_converter_rewire = false});
    }
    stage_live.emplace(std::move(repaired));
    stage_live_fails = storm_active;
    return &stage_live->paths();
  }

  bool all_valid_on(const Graph& g, const std::vector<Path>& paths) const {
    if (paths.empty()) return false;
    return std::all_of(paths.begin(), paths.end(), [&](const Path& p) {
      return is_valid_path(g, p);
    });
  }

  // One batched re-plan / reconcile step: pairs whose installed routes the
  // storm broke get a *targeted* patch — surviving paths stay installed,
  // only the dead ones are swapped for live-valid substitutes (preferring
  // the controller-repaired stage plan when the circuits already match the
  // stage target) — and diverged pairs whose canonical plan routes became
  // valid again are reconciled back, so a drained storm leaves the
  // installed state bit-for-bit on plan. Rule counts are diff-based (only
  // paths actually added/removed cost rules), which keeps the re-plan step
  // fast enough to run inside an outage instead of after it.
  void replan_pass() {
    struct Update {
      std::size_t pair;
      std::vector<Path> paths;
      bool to_canonical;
      double dark;  // fraction of the pair's installed paths dead on live
    };
    std::vector<Update> updates;
    // A re-plan that fires while a make-before-break rewire is in flight
    // must hand out paths that survive the imminent OCS pass: solve and
    // validate on the intersection graph minus the storm, not the full
    // live realization — a live-only substitute could ride a link the
    // rewire is about to delete, turning the fix into the next blackhole.
    std::optional<Graph> mbb_live;
    if (mbb_intersection != nullptr) {
      mbb_live.emplace(storm_active.empty()
                           ? *mbb_intersection
                           : degrade_mapped(*mbb_intersection, *reference,
                                            storm_active));
    }
    const Graph& eff = mbb_live.has_value() ? *mbb_live : *live;
    std::optional<PathCache> live_cache;
    std::optional<Graph> live_dead;
    std::optional<PathCache> live_dead_cache;
    const auto solve_live = [&](NodeId src, NodeId dst) -> std::vector<Path> {
      if (!dead_list.empty()) {
        if (!live_dead.has_value()) {
          live_dead.emplace(degrade(eff, FailureSet{{}, dead_list}));
          live_dead_cache.emplace(*live_dead, k);
        }
        if (live_dead->degree(src) > 0 && live_dead->degree(dst) > 0) {
          std::vector<Path> sol = live_dead_cache->server_paths(src, dst);
          if (!sol.empty()) return sol;
        }
      }
      if (eff.degree(src) == 0 || eff.degree(dst) == 0) return {};
      if (!live_cache.has_value()) live_cache.emplace(eff, k);
      return live_cache->server_paths(src, dst);
    };
    const bool on_target = stage_target != nullptr &&
                           configs == stage_target->configs();
    for (std::size_t i = 0; i < report.pairs.size(); ++i) {
      // Reconciliation back to plan waits for the storm to drain: a
      // diverged pair is live-valid, so swapping it mid-storm buys nothing
      // and its rules stretch the very step that fixes real blackholes.
      if (diverged[i] && storm_active.empty() &&
          all_valid_on(eff, canonical[i])) {
        updates.push_back(Update{i, canonical[i], true, 0.0});
        continue;
      }
      const std::vector<Path>& rs = routes[i];
      if (rs.empty()) continue;
      // The trigger is live-validity — is the pair dark *now*? Routes that
      // are live-valid but die at the in-flight OCS pass are the pending
      // patches' job, not this re-plan's; re-planning them here would only
      // stretch the step while real blackholes wait.
      std::size_t dead_paths = 0;
      for (const Path& p : rs) {
        if (!is_valid_path(*live, p)) ++dead_paths;
      }
      if (dead_paths == 0) continue;
      const double dark =
          static_cast<double>(dead_paths) / static_cast<double>(rs.size());
      const auto [src, dst] = report.pairs[i];
      std::vector<Path> sol;
      if (on_target) {
        // The circuits match the stage target: serve the controller's
        // repaired stage plan directly.
        if (PathCache* repaired = ensure_stage_live(); repaired != nullptr) {
          std::vector<Path> cand = repaired->server_paths(src, dst);
          if (all_valid_on(eff, cand)) sol = std::move(cand);
        }
      }
      if (sol.empty()) sol = solve_live(src, dst);
      // Targeted patch: keep the surviving paths, top the set back up from
      // the solve. A pair whose solve comes up empty still sheds its dead
      // paths (the ECMP group shrinks to the live subset); a pair with no
      // live path at all is storm-disconnected and left alone — the
      // checker holds only reachable pairs to the no-blackhole invariant.
      std::vector<Path> next;
      for (const Path& p : rs) {
        if (is_valid_path(eff, p)) next.push_back(p);
      }
      for (const Path& p : sol) {
        if (next.size() >= rs.size()) break;
        if (std::find(next.begin(), next.end(), p) == next.end()) {
          next.push_back(p);
        }
      }
      if (next.empty()) continue;
      updates.push_back(Update{i, std::move(next), false, dark});
    }
    if (updates.empty()) return;
    // Most-dark pairs first: a pair whose whole ECMP set is dead bleeds
    // every flow hashed onto it, a partially-dead pair only a fraction, and
    // a reconcile swap nothing at all. The re-plan then lands as bounded
    // rule batches, each committed and timestamped on its own — the first
    // pair fixed stops bleeding after one chunk's worth of rules, not after
    // the whole fleet's.
    std::stable_sort(updates.begin(), updates.end(),
                     [](const Update& a, const Update& b) {
                       return a.dark > b.dark;
                     });
    ++report.replans;
    const std::uint64_t budget = opt.patch_chunk_rules;
    const auto diff_rules = [&](const Update& u, std::uint64_t& a,
                                std::uint64_t& d, std::uint64_t& s) {
      std::vector<Path> removed;
      std::vector<Path> installed;
      for (const Path& p : routes[u.pair]) {
        if (std::find(u.paths.begin(), u.paths.end(), p) == u.paths.end()) {
          removed.push_back(p);
        }
      }
      for (const Path& p : u.paths) {
        if (std::find(routes[u.pair].begin(), routes[u.pair].end(), p) ==
            routes[u.pair].end()) {
          installed.push_back(p);
        }
      }
      count_rules(removed, d, s);
      count_rules(installed, a, s);
    };
    std::size_t begin = 0;
    while (begin < updates.size()) {
      std::uint64_t adds = 0;
      std::uint64_t dels = 0;
      std::uint64_t skipped = 0;
      std::size_t end = begin;
      while (end < updates.size()) {
        std::uint64_t a = adds;
        std::uint64_t d = dels;
        std::uint64_t s = skipped;
        diff_rules(updates[end], a, d, s);
        if (end > begin && budget != 0 && a + d > budget) break;
        adds = a;
        dels = d;
        skipped = s;
        ++end;
      }
      const bool ok = run_step(StepKind::kRulePatch, in_rollback, NodeId{}, 0,
                               adds, dels, 0.0, false, /*replan=*/true);
      obs::add(c_replan_steps);
      if (!ok && !in_rollback) {
        replan_failed = true;
        return;
      }
      report.rules_skipped_dead += skipped;
      for (std::size_t j = begin; j < end; ++j) {
        Update& u = updates[j];
        routes[u.pair] = std::move(u.paths);
        diverged[u.pair] = !u.to_canonical;
        if (!u.to_canonical) {
          ++report.pairs_replanned;
          obs::add(c_replan_pairs);
        }
      }
      push_point(0.0, ConversionScope::kChangedOnly);
      begin = end;
    }
  }

  // Installs a mode's canonical routes (stage commit or rollback restore).
  // Under an active storm, pairs whose plan routes are broken on the live
  // graph get the controller-repaired stage plan (or a live-graph solve)
  // instead and are marked diverged for later reconciliation.
  void install_canonical(const std::vector<std::vector<Path>>& target) {
    canonical = target;
    if (storm_active.empty() || !opt.live_replanning) {
      routes = target;
      std::fill(diverged.begin(), diverged.end(), false);
      return;
    }
    std::optional<PathCache> live_cache;
    for (std::size_t i = 0; i < report.pairs.size(); ++i) {
      if (all_valid_on(*live, target[i])) {
        routes[i] = target[i];
        diverged[i] = false;
        continue;
      }
      const auto [src, dst] = report.pairs[i];
      std::vector<Path> sol;
      if (PathCache* repaired = ensure_stage_live(); repaired != nullptr) {
        std::vector<Path> cand = repaired->server_paths(src, dst);
        if (all_valid_on(*live, cand)) sol = std::move(cand);
      }
      if (sol.empty() && live->degree(src) > 0 && live->degree(dst) > 0) {
        if (!live_cache.has_value()) live_cache.emplace(*live, k);
        std::vector<Path> cand = live_cache->server_paths(src, dst);
        if (all_valid_on(*live, cand)) sol = std::move(cand);
      }
      if (sol.empty()) {
        // Storm-disconnected: install the plan and let reconciliation (or
        // the reachability-gated checker) account for it.
        routes[i] = target[i];
        diverged[i] = false;
      } else {
        routes[i] = std::move(sol);
        diverged[i] = true;
        ++report.pairs_replanned;
        obs::add(c_replan_pairs);
      }
    }
  }

  // -- failover ---------------------------------------------------------------

  // At a step boundary: if the primary died during the last step, the
  // standby takes over — promotion costs failover_takeover_s, and the step
  // whose ack went to the dead primary is re-issued as an idempotent
  // confirm. Returns true exactly once, when the takeover happens; callers
  // driving durable-state scans restart them so the standby's position is
  // reconstructed from the network, not from the dead primary's memory.
  bool maybe_failover() {
    if (failed_over || faults.kill_primary_at_s < 0.0 ||
        now < faults.kill_primary_at_s) {
      return false;
    }
    failed_over = true;
    standby = true;
    now += opt.failover_takeover_s;
    ++report.failovers;
    obs::add(c_fo_takeovers);
    if (tracer != nullptr) tracer->mark("conv_exec", "failover", 0, 1);
    if (!report.steps.empty() &&
        report.steps.back().start_s < faults.kill_primary_at_s) {
      const StepRecord prev = report.steps.back();
      const ChannelOutcome out =
          channel_round(now, one_way_for(prev.target), 0.0, false, true);
      StepRecord rec;
      rec.kind = prev.kind;
      rec.rollback = prev.rollback;
      rec.replan = prev.replan;
      rec.standby = true;
      rec.target = prev.target;
      rec.partition = prev.partition;
      rec.start_s = now;
      rec.finish_s = out.finish_s;
      rec.attempts = out.attempts;
      rec.ok = out.ok;
      report.steps.push_back(rec);
      now = out.finish_s;
      report.retries += out.attempts - 1;
      report.messages_dropped += out.dropped;
      ++report.steps_reissued;
      obs::add(c_fo_reissued);
    }
    return true;
  }

  // -- timeline / invariants --------------------------------------------------

  // Snapshots the current state onto the timeline and runs the transient
  // invariant checker against it. The snapshot carries the *clean* current
  // realization: storm damage is applied to every point afterwards, at the
  // storm's physical event times, so a failure folded late still darkens
  // the interval it actually covered.
  void push_point(double blackout_s, ConversionScope scope) {
    TimelinePoint pt;
    pt.t = now;
    pt.graph = graph;
    pt.epoch = epoch;
    pt.blackout_s = blackout_s;
    pt.scope = scope;
    pt.routes = routes;
    report.timeline.push_back(std::move(pt));
    check_invariants();
  }

  void add_violation(ViolationKind kind, std::size_t pair) {
    const std::size_t step = report.steps.empty() ? 0 : report.steps.size() - 1;
    report.violations.push_back(TransientViolation{kind, step, pair});
    obs::add(c_violations);
  }

  void check_invariants() {
    if (!opt.check_invariants) return;
    obs::add(c_inv_checks);
    // Connectivity is judged on the clean realization: a storm partition is
    // the storm's doing, not the executor's. Route validity is judged on
    // the live graph, but only for pairs the storm left reachable.
    const bool connected = servers_connected(*graph);
    if (!connected) add_violation(ViolationKind::kDisconnected, 0);
    const bool storm_on = !storm_active.empty();
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> dist_memo;
    const auto reachable = [&](std::size_t i) {
      if (!storm_on) return true;
      const auto [src, dst] = report.pairs[i];
      auto it = dist_memo.find(src.value());
      if (it == dist_memo.end()) {
        it = dist_memo.emplace(src.value(), live->bfs_distances(src)).first;
      }
      return it->second[dst.index()] != Graph::kUnreachable;
    };
    for (std::size_t i = 0; i < report.pairs.size(); ++i) {
      const std::vector<Path>& rs = routes[i];
      if (rs.empty()) {
        // No installed route while the physical pair is connected: the
        // atomic baseline's rule hole.
        if (connected && reachable(i)) add_violation(ViolationKind::kBlackhole, i);
        continue;
      }
      for (const Path& path : rs) {
        if (has_repeated_node(path)) {
          add_violation(ViolationKind::kLoop, i);
        } else if (!is_valid_path(*live, path)) {
          if (reachable(i)) add_violation(ViolationKind::kBlackhole, i);
        }
      }
    }
  }

  // Per-switch rule footprint of a route snapshot: one rule per switch hop.
  std::vector<std::uint64_t> footprint_of(
      const std::vector<std::vector<Path>>& snapshot) const {
    std::vector<std::uint64_t> per(graph->node_count(), 0);
    for (const std::vector<Path>& rs : snapshot) {
      for (const Path& path : rs) {
        for (NodeId n : path) {
          if (is_switch(graph->node(n).role)) ++per[n.index()];
        }
      }
    }
    return per;
  }

  // Splits one route set's rule count into operations on live switches and
  // operations skipped because the switch is control-plane dead.
  void count_rules(const std::vector<Path>& paths, std::uint64_t& live_rules,
                   std::uint64_t& skipped) const {
    for (const Path& path : paths) {
      for (NodeId n : path) {
        if (!is_switch(graph->node(n).role)) continue;
        if (dead[n.index()]) {
          ++skipped;
        } else {
          ++live_rules;
        }
      }
    }
  }

  bool pair_uses_switch(const std::vector<Path>& paths, NodeId sw) const {
    for (const Path& path : paths) {
      if (std::find(path.begin(), path.end(), sw) != path.end()) return true;
    }
    return false;
  }

  // Applies (forward) or reverts (rollback) one OCS partition with
  // make-before-break patching. Returns false when a forward step exhausted
  // its retries; rollback steps retry unbounded and keep going regardless.
  bool rewire_partition(const std::vector<std::uint32_t>& members,
                        std::uint32_t pindex,
                        std::span<const ConverterConfig> goal, bool rollback,
                        bool forced_ocs_fail) {
    std::vector<ConverterConfig> next = configs;
    bool changed = false;
    for (std::uint32_t c : members) {
      if (next[c] != goal[c]) {
        next[c] = goal[c];
        changed = true;
      }
    }
    if (!changed) return true;
    auto next_graph = std::make_shared<const Graph>(tree.realize(next));

    // The intersection graph: links of the current realization that survive
    // the rewire. Any path on it is valid both before and after the pass.
    const std::vector<LinkId> removed = links_not_in(*graph, *next_graph);
    const Graph safe = degrade(*graph, FailureSet{removed, {}});
    // Any re-plan that fires while this rewire is in flight (a storm fold
    // at a patch-chunk boundary) must solve against the intersection, not
    // the full realization — see replan_pass.
    struct MbbScope {
      const Graph*& slot;
      ~MbbScope() { slot = nullptr; }
    } mbb_scope{mbb_intersection};
    mbb_intersection = &safe;

    struct PairPatch {
      std::size_t pair;
      std::vector<Path> paths;
      bool armed;  // solved on the next graph, activates when the pass lands
    };
    std::vector<PairPatch> patches;

    // Preferred solve graphs avoid dead switches as transit (their tables
    // cannot take the patch rules) and active storm failures (patching onto
    // a failed link trades one blackhole for another); the fallbacks only
    // keep a pair from being abandoned when those are its sole capacity.
    const FailureSet dead_set{{}, dead_list};
    const bool storm_on = !storm_active.empty();
    PathCache safe_cache{safe, k};
    PathCache next_cache{*next_graph, k};
    std::optional<Graph> safe_live, next_live;
    std::optional<PathCache> safe_live_cache, next_live_cache;
    if (!dead_list.empty() || storm_on) {
      const auto minus_storm = [&](const Graph& g) {
        return storm_on ? degrade_mapped(g, *reference, storm_active) : g;
      };
      safe_live.emplace(degrade(minus_storm(safe), dead_set));
      next_live.emplace(degrade(minus_storm(*next_graph), dead_set));
      safe_live_cache.emplace(*safe_live, k);
      next_live_cache.emplace(*next_live, k);
    }
    const auto solve = [](PathCache& cache, const Graph& g, NodeId src,
                          NodeId dst) -> std::vector<Path> {
      // A server whose access circuit moves with this pass has degree 0 on
      // the intersection graph — no immediate patch exists for it.
      if (g.degree(src) == 0 || g.degree(dst) == 0) return {};
      return cache.server_paths(src, dst);
    };

    for (std::size_t i = 0; i < report.pairs.size(); ++i) {
      const std::vector<Path>& rs = routes[i];
      if (rs.empty()) continue;
      bool broken = false;
      for (const Path& path : rs) {
        if (!is_valid_path(*next_graph, path)) {
          broken = true;
          break;
        }
      }
      if (!broken) continue;
      const auto [src, dst] = report.pairs[i];
      std::vector<Path> sol;
      bool armed = false;
      if (safe_live_cache.has_value()) {
        sol = solve(*safe_live_cache, *safe_live, src, dst);
        if (sol.empty()) {
          sol = solve(*next_live_cache, *next_live, src, dst);
          armed = true;
        }
      }
      if (sol.empty()) {
        sol = solve(safe_cache, safe, src, dst);
        armed = false;
      }
      if (sol.empty()) {
        sol = solve(next_cache, *next_graph, src, dst);
        armed = true;
      }
      // A pair with no route even on the full graphs is physically
      // disconnected; leave it and let the checker report it.
      if (sol.empty()) continue;
      patches.push_back(PairPatch{i, std::move(sol), armed});
    }

    // Commits one pair's patch. A storm fold that lands mid-patch (between
    // chunks) can kill candidate paths solved before the fold: with live
    // re-planning the survivors stay, the casualties are topped back up
    // from a fresh solve and the pair is marked diverged (reconciled once
    // the plan routes come back); the baseline installs the stale solve
    // as-is and dangles whatever the storm broke. Pre-OCS commits fit
    // against the intersection graph minus the storm — a top-up path drawn
    // from the full live realization could ride a link the OCS pass is
    // about to delete, turning the fix into the next blackhole. Post-OCS
    // (armed) commits fit against `live` itself, already refreshed to the
    // new realization.
    bool fit_post_ocs = false;
    std::optional<Graph> fit_graph;      // pre-OCS: safe minus storm/dead
    std::optional<PathCache> fit_cache;  // reset whenever the fit graph dies
    const auto commit_patch = [&](PairPatch& p) {
      canonical[p.pair] = p.paths;
      if (opt.live_replanning && !storm_active.empty() &&
          !all_valid_on(*live, p.paths)) {
        if (!fit_cache.has_value()) {
          if (fit_post_ocs) {
            fit_graph.reset();
          } else {
            fit_graph.emplace(degrade(
                degrade_mapped(safe, *reference, storm_active), dead_set));
          }
          fit_cache.emplace(fit_post_ocs ? *live : *fit_graph, k);
        }
        const Graph& fg = fit_post_ocs ? *live : *fit_graph;
        std::vector<Path> fitted;
        for (const Path& path : p.paths) {
          if (is_valid_path(fg, path)) fitted.push_back(path);
        }
        const auto [src, dst] = report.pairs[p.pair];
        if (fitted.size() < p.paths.size() && fg.degree(src) > 0 &&
            fg.degree(dst) > 0) {
          for (const Path& path : fit_cache->server_paths(src, dst)) {
            if (fitted.size() >= p.paths.size()) break;
            if (std::find(fitted.begin(), fitted.end(), path) ==
                fitted.end()) {
              fitted.push_back(path);
            }
          }
        }
        if (!fitted.empty()) {
          diverged[p.pair] = fitted != p.paths;
          routes[p.pair] = std::move(fitted);
          return;
        }
        // Nothing survives on live: the pair is storm-disconnected right
        // now. Install the plan anyway — the checker holds only reachable
        // pairs, and reconciliation restores the plan once the storm
        // drains.
      }
      routes[p.pair] = p.paths;
      diverged[p.pair] = false;
    };

    if (!patches.empty()) {
      // The patch lands as a sequence of bounded rule batches with storm
      // detection and failover checks between them: a failure landing
      // mid-patch is observed within one chunk's worth of rules, not after
      // the whole partition's — the difference between re-planning inside
      // an outage and after it. With no failure schedule wired in there is
      // nothing to detect mid-step, so calm executions keep the monolithic
      // patch and skip the per-chunk channel round-trips.
      const std::uint64_t budget =
          storm != nullptr ? opt.patch_chunk_rules : 0;
      std::size_t begin = 0;
      while (begin < patches.size()) {
        if (begin > 0) {
          const std::size_t folded = storm_next;
          storm_tick();
          (void)maybe_failover();
          if (storm_next != folded) {
            fit_graph.reset();
            fit_cache.reset();
          }
        }
        std::uint64_t adds = 0;
        std::uint64_t dels = 0;
        std::uint64_t skipped = 0;
        std::size_t end = begin;
        while (end < patches.size()) {
          std::uint64_t a = adds;
          std::uint64_t d = dels;
          std::uint64_t s = skipped;
          count_rules(routes[patches[end].pair], d, s);
          count_rules(patches[end].paths, a, s);
          if (end > begin && budget != 0 && a + d > budget) break;
          adds = a;
          dels = d;
          skipped = s;
          ++end;
        }
        const bool ok = run_step(StepKind::kRulePatch, rollback, NodeId{},
                                 pindex, adds, dels, 0.0, false);
        if (!ok && !rollback) return false;
        report.rules_skipped_dead += skipped;
        bool any_immediate = false;
        for (std::size_t j = begin; j < end; ++j) {
          PairPatch& p = patches[j];
          ++report.pairs_patched;
          obs::add(c_patched);
          if (!p.armed) {
            commit_patch(p);
            any_immediate = true;
          }
        }
        if (any_immediate) push_point(0.0, ConversionScope::kChangedOnly);
        begin = end;
      }
    }

    const bool ok = run_step(StepKind::kOcs, rollback, NodeId{}, pindex, 0, 0,
                             delay.ocs_reconfigure_s, forced_ocs_fail);
    if (!ok && !rollback) return false;
    configs = std::move(next);
    graph = std::move(next_graph);
    refresh_live();
    fit_post_ocs = true;  // the realization changed: fit against live now
    fit_graph.reset();
    fit_cache.reset();
    for (PairPatch& p : patches) {
      if (p.armed) commit_patch(p);
    }
    push_point(delay.ocs_reconfigure_s, ConversionScope::kChangedOnly);
    return true;
  }
};

// The atomic baseline's rule hole, made explicit for the packet simulator:
// every boundary at which some pair has no installed route stalls until the
// first later boundary where every pair is routed again.
void finalize_blackout_windows(ExecutionReport& report) {
  for (std::size_t k = 0; k < report.timeline.size(); ++k) {
    TimelinePoint& pt = report.timeline[k];
    const bool any_dark = std::any_of(
        pt.routes.begin(), pt.routes.end(),
        [](const std::vector<Path>& rs) { return rs.empty(); });
    if (!any_dark) continue;
    double restored = report.finish_s;
    for (std::size_t j = k + 1; j < report.timeline.size(); ++j) {
      const bool still_dark = std::any_of(
          report.timeline[j].routes.begin(), report.timeline[j].routes.end(),
          [](const std::vector<Path>& rs) { return rs.empty(); });
      if (!still_dark) {
        restored = report.timeline[j].t;
        break;
      }
    }
    pt.blackout_s = std::max(pt.blackout_s, restored - pt.t);
    pt.scope = ConversionScope::kFullBlackout;
  }
}

// Route-availability integral: over each timeline interval a pair is
// charged the fraction of its installed paths that are invalid on that
// interval's graph. A pair with no routes at all (the atomic baseline's
// rule hole) or none valid charges the whole interval; a pair with one of
// four ECMP paths dead charges a quarter — the flows hashed onto the dead
// path black-hole until the executor re-plans it or the link recovers.
void compute_blackhole_integral(ExecutionReport& report) {
  std::vector<double> dark(report.pairs.size(), 0.0);
  for (std::size_t k = 0; k < report.timeline.size(); ++k) {
    const TimelinePoint& pt = report.timeline[k];
    const double t_end = k + 1 < report.timeline.size()
                             ? report.timeline[k + 1].t
                             : report.finish_s;
    const double dt = std::max(0.0, t_end - pt.t);
    if (dt == 0.0) continue;
    for (std::size_t i = 0; i < report.pairs.size(); ++i) {
      const std::vector<Path>& rs = pt.routes[i];
      if (rs.empty()) {
        dark[i] += dt;
        continue;
      }
      std::size_t invalid = 0;
      for (const Path& path : rs) {
        if (!is_valid_path(*pt.graph, path)) ++invalid;
      }
      if (invalid != 0) {
        dark[i] += dt * static_cast<double>(invalid) /
                   static_cast<double>(rs.size());
      }
    }
  }
  report.total_blackhole_s = 0.0;
  report.max_pair_blackhole_s = 0.0;
  for (double d : dark) {
    report.total_blackhole_s += d;
    report.max_pair_blackhole_s = std::max(report.max_pair_blackhole_s, d);
  }
}

}  // namespace

ConversionExecutor::ConversionExecutor(const Controller& controller,
                                       ConversionExecOptions options)
    : controller_{&controller}, options_{std::move(options)} {}

ExecutionReport ConversionExecutor::execute(
    const CompiledMode& from, const CompiledMode& to,
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const ConversionFaults& faults, double t0_s) const {
  return execute_under_storm(from, to, pairs, FailureSchedule{}, faults, t0_s);
}

ExecutionReport ConversionExecutor::execute_under_storm(
    const CompiledMode& from, const CompiledMode& to,
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const FailureSchedule& storm, const ConversionFaults& faults,
    double t0_s) const {
  options_.channel.validate();
  controller_->options().delay.validate();
  const FlatTree& tree = controller_->tree();
  if (from.configs().size() != tree.converters().size() ||
      to.configs().size() != tree.converters().size()) {
    throw std::invalid_argument(
        "ConversionExecutor: modes not compiled from this controller's tree");
  }
  if (!(t0_s >= 0.0)) {
    throw std::invalid_argument("ConversionExecutor: t0_s must be >= 0");
  }
  const Graph& from_graph = from.graph();
  for (NodeId sw : faults.dead_switches) {
    if (sw.index() >= from_graph.node_count() ||
        !is_switch(from_graph.node(sw).role)) {
      throw std::invalid_argument(
          "ConversionExecutor: dead_switches must name switches");
    }
  }
  if (options_.ocs_partitions == 0) {
    throw std::invalid_argument(
        "ConversionExecutor: ocs_partitions must be >= 1");
  }
  if (options_.stage_checkpoints && !options_.staged) {
    throw std::invalid_argument(
        "ConversionExecutor: stage_checkpoints requires the staged protocol");
  }
  if (!faults.partitions.empty() && !options_.staged) {
    throw std::invalid_argument(
        "ConversionExecutor: control partitions require the staged protocol");
  }
  const std::uint32_t pod_count = tree.clos().pods;
  for (const ControlPartition& p : faults.partitions) {
    if (!p.pod.valid() || p.pod.value() >= pod_count) {
      throw std::invalid_argument(
          "ConversionExecutor: partition pod out of range");
    }
    if (!(p.start_s >= 0.0)) {
      throw std::invalid_argument(
          "ConversionExecutor: partition start_s must be >= 0");
    }
    if (!(p.end_s < 0.0) && !(p.end_s > p.start_s)) {
      throw std::invalid_argument(
          "ConversionExecutor: partition must end after it starts");
    }
  }
  storm.validate();
  for (const FailureEvent& e : storm.events()) {
    for (LinkId id : e.elements.links) {
      if (id.index() >= from_graph.link_count()) {
        throw std::invalid_argument(
            "ConversionExecutor: storm link ids must name links of the "
            "origin realization");
      }
    }
    for (NodeId sw : e.elements.switches) {
      if (sw.index() >= from_graph.node_count() ||
          !is_switch(from_graph.node(sw).role)) {
        throw std::invalid_argument(
            "ConversionExecutor: storm switches must name switches");
      }
    }
  }

  const ConversionDelayModel& delay = controller_->options().delay;
  ExecutionReport report;
  report.staged = options_.staged;
  report.start_s = t0_s;
  report.pairs.assign(pairs.begin(), pairs.end());

  obs::MetricsRegistry* reg = options_.sink.metrics();
  Exec ex{.tree = tree,
          .controller = *controller_,
          .opt = options_,
          .delay = delay,
          .faults = faults,
          .report = report,
          .rng = Rng{options_.seed},
          .jitter_rng = Rng{options_.seed ^ 0x9e3779b97f4a7c15ULL}};
  ex.now = t0_s;
  ex.k = from.k();
  ex.configs = from.configs();
  ex.graph = from.graph_ptr();
  ex.live = ex.graph;
  ex.reference = &from.graph();
  if (!storm.empty()) ex.storm = &storm;
  if (reg != nullptr) {
    ex.c_steps = &reg->counter("conv_exec.steps");
    ex.c_step_failures = &reg->counter("conv_exec.step_failures");
    ex.c_retries = &reg->counter("conv_exec.retries");
    ex.c_dropped = &reg->counter("conv_exec.messages_dropped");
    ex.c_patched = &reg->counter("conv_exec.pairs_patched");
    ex.c_inv_checks = &reg->counter("conv_exec.invariant_checks");
    ex.c_violations = &reg->counter("conv_exec.violations");
    ex.c_replan_events = &reg->counter("conv_exec.replan.events");
    ex.c_replan_pairs = &reg->counter("conv_exec.replan.pairs");
    ex.c_replan_steps = &reg->counter("conv_exec.replan.steps");
    ex.c_ckpt_committed = &reg->counter("conv_exec.checkpoint.committed");
    ex.c_ckpt_rollbacks = &reg->counter("conv_exec.checkpoint.rollbacks");
    ex.c_fo_takeovers = &reg->counter("conv_exec.failover.takeovers");
    ex.c_fo_reissued = &reg->counter("conv_exec.failover.steps_reissued");
    ex.h_attempts =
        &reg->histogram("conv_exec.step_attempts", {1, 2, 4, 8, 16, 32, 64});
  }
  ex.tracer = options_.sink.tracer();
  ex.dead.assign(from_graph.node_count(), false);
  ex.dead_list = faults.dead_switches;
  std::sort(ex.dead_list.begin(), ex.dead_list.end());
  ex.dead_list.erase(std::unique(ex.dead_list.begin(), ex.dead_list.end()),
                     ex.dead_list.end());
  for (NodeId sw : ex.dead_list) ex.dead[sw.index()] = true;

  ex.routes.reserve(report.pairs.size());
  std::vector<std::vector<Path>> from_routes;
  from_routes.reserve(report.pairs.size());
  for (const auto& [src, dst] : report.pairs) {
    from_routes.push_back(from.paths().server_paths(src, dst));
    ex.routes.push_back(from_routes.back());
  }
  ex.canonical = ex.routes;
  ex.diverged.assign(report.pairs.size(), false);

  // Pre-history: storm events already due at t0 fold silently into the
  // starting state (they are inherited conditions, not execution events).
  bool inherited_storm = false;
  if (ex.storm != nullptr) {
    const auto& evs = ex.storm->events();
    while (ex.storm_next < evs.size() &&
           evs[ex.storm_next].time_s <= t0_s) {
      ex.apply_storm_event(evs[ex.storm_next]);
      ++ex.storm_next;
      inherited_storm = true;
    }
    if (inherited_storm) ex.refresh_live();
  }
  ex.push_point(0.0, ConversionScope::kChangedOnly);  // the pre-conversion state
  if (inherited_storm && options_.live_replanning) ex.replan_pass();

  const auto ocs_forced = [&faults](std::uint32_t p) {
    return std::find(faults.fail_ocs_partitions.begin(),
                     faults.fail_ocs_partitions.end(),
                     p) != faults.fail_ocs_partitions.end();
  };
  const auto resolve_routes_of = [&](const CompiledMode& mode) {
    std::vector<std::vector<Path>> rs;
    rs.reserve(report.pairs.size());
    for (const auto& [src, dst] : report.pairs) {
      rs.push_back(mode.paths().server_paths(src, dst));
    }
    return rs;
  };

  // The stage sequence: gradual_plan's per-Pod assignments when checkpoints
  // are on (each intermediate compiled here), else the target alone.
  std::vector<CompiledMode> interim;
  std::vector<const CompiledMode*> stage_seq;
  if (options_.stage_checkpoints) {
    const std::vector<ModeAssignment> plan =
        Controller::gradual_plan(from.assignment(), to.assignment());
    if (plan.size() > 1) {
      interim.reserve(plan.size() - 1);
      for (std::size_t s = 0; s + 1 < plan.size(); ++s) {
        interim.push_back(controller_->compile(plan[s], to.k()));
      }
      for (const CompiledMode& m : interim) stage_seq.push_back(&m);
    }
    stage_seq.push_back(&to);
  } else {
    stage_seq.push_back(&to);
  }
  report.stages_total = static_cast<std::uint32_t>(stage_seq.size());
  report.checkpoints.push_back(CheckpointRecord{
      0, t0_s, 0, from.assignment(), from.configs(), from_routes});

  // Runs one from->to mini-conversion through the epoch protocol; on a
  // forward failure rolls back to `stage_from` (the last checkpoint) and
  // returns false. The loops scan durable state — converter configs and
  // per-switch next-epoch rule counts — so a standby takeover resumes from
  // what is actually installed.
  const auto run_stage = [&](const CompiledMode& stage_from,
                             const std::vector<std::vector<Path>>& from_canon,
                             const CompiledMode& stage_to,
                             std::uint32_t ocs_base, std::uint32_t ocs_count,
                             std::uint32_t commit_epoch,
                             const std::vector<std::vector<std::uint32_t>>&
                                 partitions) -> bool {
    ex.stage_target = &stage_to;
    ex.stage_live.reset();
    ex.replan_failed = false;
    bool failed = false;
    (void)ocs_count;

    // -- phase 0: per-partition OCS passes with make-before-break patches.
    bool rescan = true;
    while (rescan && !failed) {
      rescan = false;
      for (std::uint32_t p = 0;
           p < static_cast<std::uint32_t>(partitions.size()); ++p) {
        ex.storm_tick();
        if (ex.replan_failed) {
          failed = true;
          break;
        }
        if (ex.maybe_failover()) {
          // Durable-state reconstruction: rescan from the first partition —
          // applied ones no-op against the configs the OCS reports.
          rescan = true;
          break;
        }
        if (!ex.rewire_partition(partitions[p], ocs_base + p,
                                 stage_to.configs(), false,
                                 ocs_forced(ocs_base + p))) {
          failed = true;
          break;
        }
      }
    }

    // -- phase A: install the incoming mode's rules under the new epoch tag
    // (inert until the flip, so every table stays pure old-mode). The
    // per-switch next-epoch rule counts are the durable protocol state.
    std::vector<std::vector<Path>> to_routes;
    std::vector<std::uint64_t> to_fp;
    std::vector<std::uint64_t> next_epoch_rules(from_graph.node_count(), 0);
    if (!failed) {
      to_routes = resolve_routes_of(stage_to);
      to_fp = ex.footprint_of(to_routes);
      rescan = true;
      while (rescan && !failed) {
        rescan = false;
        for (std::uint32_t n = 0;
             n < static_cast<std::uint32_t>(to_fp.size()); ++n) {
          if (to_fp[n] == 0 || next_epoch_rules[n] != 0) continue;
          ex.storm_tick();
          if (ex.replan_failed) {
            failed = true;
            break;
          }
          if (ex.maybe_failover()) {
            rescan = true;
            break;
          }
          if (!ex.run_step(StepKind::kRuleAdd, false, NodeId{n}, 0, to_fp[n],
                           0, 0.0,
                           ex.dead[n] || ex.partition_blocks(NodeId{n}))) {
            failed = true;
            break;
          }
          next_epoch_rules[n] = to_fp[n];
        }
      }
    }
    // -- phase B: the barrier + epoch flip (the commit point), then GC.
    if (!failed) {
      ex.storm_tick();
      if (ex.replan_failed) failed = true;
      if (!failed) {
        (void)ex.maybe_failover();
        const std::vector<std::uint64_t> old_fp = ex.footprint_of(ex.routes);
        // The flip barrier is root-coordinated under both control-plane
        // shapes: while any Pod carrying new-epoch rules is islanded, the
        // commit cannot span it and the barrier fails — the stage rolls
        // back to the last checkpoint instead of installing a mixed-epoch
        // rule set.
        bool flip_blocked = false;
        for (std::uint32_t n = 0;
             n < static_cast<std::uint32_t>(to_fp.size()); ++n) {
          if (to_fp[n] != 0 && ex.partitioned(NodeId{n})) {
            flip_blocked = true;
            break;
          }
        }
        if (!ex.run_step(StepKind::kEpochFlip, false, NodeId{}, 0, 0, 0, 0.0,
                         flip_blocked)) {
          failed = true;
        } else {
          ex.epoch = commit_epoch;
          ex.install_canonical(to_routes);
          ex.push_point(0.0, ConversionScope::kChangedOnly);
          // Old-epoch garbage collection: post-commit, best effort. A dead
          // switch keeps its stale rules (inert under the new epoch).
          for (std::uint32_t n = 0;
               n < static_cast<std::uint32_t>(old_fp.size()); ++n) {
            if (old_fp[n] == 0) continue;
            // A dead or (root-unreachable) partitioned switch keeps its
            // stale rules — inert under the new epoch.
            if (ex.dead[n] || ex.partition_blocks(NodeId{n})) {
              report.rules_skipped_dead += old_fp[n];
              continue;
            }
            ex.storm_tick();
            ex.replan_failed = false;  // post-commit re-plans are best-effort
            (void)ex.maybe_failover();
            ex.run_step(StepKind::kRuleDelete, false, NodeId{n}, 0, 0,
                        old_fp[n], 0.0, false);
          }
          ex.storm_tick();
          ex.replan_failed = false;
          ex.stage_target = nullptr;
          ex.stage_live.reset();
          return true;
        }
      }
    }

    // -- rollback to the last checkpoint. Every rollback step retries
    // unbounded: the channel is lossy, not dead, and no rollback step
    // addresses a dead switch — steps touching one fail before mutating it,
    // so only acked (live) switches ever need undoing.
    ex.in_rollback = true;
    ex.replan_failed = false;
    ex.stage_target = &stage_from;
    ex.stage_live.reset();
    // Collect the inert new-epoch rules already installed (durable scan, in
    // reverse install order).
    for (std::uint32_t n = static_cast<std::uint32_t>(next_epoch_rules.size());
         n-- > 0;) {
      if (next_epoch_rules[n] == 0) continue;
      // Unbounded rollback retries must not stall against a partition the
      // root cannot cross: the uncollected rules are inert under the
      // checkpoint's epoch, so skip and count them instead.
      if (ex.partition_blocks(NodeId{n})) {
        report.rules_skipped_dead += next_epoch_rules[n];
        next_epoch_rules[n] = 0;
        continue;
      }
      ex.storm_tick();
      (void)ex.maybe_failover();
      ex.run_step(StepKind::kRuleDelete, true, NodeId{n}, 0, 0,
                  next_epoch_rules[n], 0.0, false);
      next_epoch_rules[n] = 0;
    }
    // Un-rewire the partitions in reverse order, with the same
    // make-before-break patching the forward passes used. Partitions that
    // never applied no-op against the durable configs.
    for (std::size_t p = partitions.size(); p-- > 0;) {
      ex.storm_tick();
      (void)ex.maybe_failover();
      ex.rewire_partition(partitions[p],
                          ocs_base + static_cast<std::uint32_t>(p),
                          stage_from.configs(), true, false);
    }
    // Reinstate the checkpoint's canonical routes.
    ex.storm_tick();
    (void)ex.maybe_failover();
    std::uint64_t adds = 0;
    std::uint64_t dels = 0;
    std::uint64_t skipped = 0;
    for (std::size_t i = 0; i < ex.routes.size(); ++i) {
      if (ex.routes[i] == from_canon[i]) continue;
      ex.count_rules(ex.routes[i], dels, skipped);
      ex.count_rules(from_canon[i], adds, skipped);
    }
    ex.run_step(StepKind::kRuleRestore, true, NodeId{}, 0, adds, dels, 0.0,
                false);
    report.rules_skipped_dead += skipped;
    ex.install_canonical(from_canon);
    ex.push_point(0.0, ConversionScope::kChangedOnly);
    ex.storm_tick();  // a recovery landing here still reconciles to plan
    ex.in_rollback = false;
    ex.stage_target = nullptr;
    ex.stage_live.reset();
    return false;
  };

  bool committed = false;
  if (options_.staged) {
    const CompiledMode* cur = &from;
    std::vector<std::vector<Path>> cur_routes = from_routes;
    std::uint32_t ocs_base = 0;
    committed = true;
    for (std::size_t s = 0; s < stage_seq.size(); ++s) {
      const std::vector<std::vector<std::uint32_t>> partitions =
          make_partitions(tree, cur->configs(), stage_seq[s]->configs(),
                          options_.ocs_partitions);
      const bool ok = run_stage(*cur, cur_routes, *stage_seq[s], ocs_base,
                                static_cast<std::uint32_t>(partitions.size()),
                                static_cast<std::uint32_t>(s) + 1, partitions);
      if (!ok) {
        committed = false;
        obs::add(ex.c_ckpt_rollbacks);
        break;
      }
      ++report.stages_committed;
      obs::add(ex.c_ckpt_committed);
      cur = stage_seq[s];
      cur_routes = ex.canonical;
      report.checkpoints.push_back(CheckpointRecord{
          static_cast<std::uint32_t>(s) + 1, ex.now, ex.epoch,
          cur->assignment(), cur->configs(), cur_routes});
      ocs_base += static_cast<std::uint32_t>(partitions.size());
    }
  } else {
    // -- atomic-swap baseline: delete everything, one OCS pass, add
    // everything. Routes die switch by switch; the rule hole between the
    // first delete and the last add is the blackhole window the staged
    // protocol exists to remove.
    const std::vector<std::vector<std::uint32_t>> partitions = make_partitions(
        tree, from.configs(), to.configs(), options_.ocs_partitions);
    bool failed = false;
    bool ocs_applied = false;
    std::vector<NodeId> added_switches;
    std::vector<NodeId> deleted_switches;
    std::vector<std::uint64_t> to_fp;
    std::vector<std::vector<Path>> to_routes;
    const std::vector<std::uint64_t> old_fp = ex.footprint_of(ex.routes);
    for (std::uint32_t n = 0; n < static_cast<std::uint32_t>(old_fp.size());
         ++n) {
      if (old_fp[n] == 0) continue;
      ex.storm_tick();
      ex.replan_failed = false;  // the baseline never aborts on a re-plan
      (void)ex.maybe_failover();
      if (!ex.run_step(StepKind::kRuleDelete, false, NodeId{n}, 0, 0,
                       old_fp[n], 0.0, ex.dead[n])) {
        failed = true;
        break;
      }
      deleted_switches.push_back(NodeId{n});
      bool any_cleared = false;
      for (std::size_t i = 0; i < ex.routes.size(); ++i) {
        if (ex.routes[i].empty()) continue;
        if (ex.pair_uses_switch(ex.routes[i], NodeId{n})) {
          ex.routes[i].clear();
          ex.canonical[i].clear();
          ex.diverged[i] = false;
          any_cleared = true;
        }
      }
      if (any_cleared) ex.push_point(0.0, ConversionScope::kFullBlackout);
    }
    if (!failed && !partitions.empty()) {
      ex.storm_tick();
      ex.replan_failed = false;
      (void)ex.maybe_failover();
      if (!ex.run_step(StepKind::kOcs, false, NodeId{}, 0, 0, 0,
                       delay.ocs_reconfigure_s, ocs_forced(0))) {
        failed = true;
      } else {
        ocs_applied = true;
        ex.configs = to.configs();
        ex.graph = to.graph_ptr();
        ex.refresh_live();
        ex.push_point(delay.ocs_reconfigure_s, ConversionScope::kFullBlackout);
      }
    }
    if (!failed) {
      to_routes = resolve_routes_of(to);
      to_fp = ex.footprint_of(to_routes);
      // A pair comes back once every switch on its new routes is programmed.
      std::vector<std::vector<std::uint32_t>> need(report.pairs.size());
      for (std::size_t i = 0; i < to_routes.size(); ++i) {
        for (const Path& path : to_routes[i]) {
          for (NodeId n : path) {
            if (is_switch(ex.graph->node(n).role)) need[i].push_back(n.value());
          }
        }
        std::sort(need[i].begin(), need[i].end());
        need[i].erase(std::unique(need[i].begin(), need[i].end()),
                      need[i].end());
      }
      std::vector<bool> programmed(ex.graph->node_count(), false);
      for (std::uint32_t n = 0; n < static_cast<std::uint32_t>(to_fp.size());
           ++n) {
        if (to_fp[n] == 0) continue;
        ex.storm_tick();
        ex.replan_failed = false;
        (void)ex.maybe_failover();
        if (!ex.run_step(StepKind::kRuleAdd, false, NodeId{n}, 0, to_fp[n], 0,
                         0.0, ex.dead[n])) {
          failed = true;
          break;
        }
        added_switches.push_back(NodeId{n});
        programmed[n] = true;
        bool any_routed = false;
        for (std::size_t i = 0; i < ex.routes.size(); ++i) {
          if (!ex.routes[i].empty() || to_routes[i].empty()) continue;
          const bool ready = std::all_of(
              need[i].begin(), need[i].end(),
              [&programmed](std::uint32_t sw) { return programmed[sw]; });
          if (ready) {
            ex.routes[i] = to_routes[i];
            ex.canonical[i] = to_routes[i];
            any_routed = true;
          }
        }
        if (any_routed) ex.push_point(0.0, ConversionScope::kChangedOnly);
      }
      if (!failed) {
        committed = true;
        ex.epoch = 1;
        ex.push_point(0.0, ConversionScope::kChangedOnly);
        report.stages_committed = 1;
        obs::add(ex.c_ckpt_committed);
        report.checkpoints.push_back(CheckpointRecord{
            1, ex.now, 1, to.assignment(), to.configs(), to_routes});
      }
    }

    if (failed) {
      ex.in_rollback = true;
      obs::add(ex.c_ckpt_rollbacks);
      // Collect whatever new-mode rules landed (their pairs go dark again
      // before the circuits revert underneath them).
      for (auto it = added_switches.rbegin(); it != added_switches.rend();
           ++it) {
        ex.storm_tick();
        (void)ex.maybe_failover();
        ex.run_step(StepKind::kRuleDelete, true, *it, 0, 0,
                    to_fp[it->index()], 0.0, false);
        bool any_cleared = false;
        for (std::size_t i = 0; i < ex.routes.size(); ++i) {
          if (ex.routes[i].empty()) continue;
          if (ex.pair_uses_switch(ex.routes[i], *it)) {
            ex.routes[i].clear();
            ex.canonical[i].clear();
            ex.diverged[i] = false;
            any_cleared = true;
          }
        }
        if (any_cleared) ex.push_point(0.0, ConversionScope::kFullBlackout);
      }
      if (ocs_applied) {
        ex.storm_tick();
        (void)ex.maybe_failover();
        ex.run_step(StepKind::kOcs, true, NodeId{}, 0, 0, 0,
                    delay.ocs_reconfigure_s, false);
        ex.configs = from.configs();
        ex.graph = from.graph_ptr();
        ex.refresh_live();
        ex.push_point(delay.ocs_reconfigure_s, ConversionScope::kFullBlackout);
      }
      // Reinstall the outgoing rules on every switch that deleted them; a
      // pair comes back once all its switches are whole again.
      std::vector<bool> missing(ex.graph->node_count(), false);
      for (NodeId sw : deleted_switches) missing[sw.index()] = true;
      for (NodeId sw : deleted_switches) {
        ex.storm_tick();
        (void)ex.maybe_failover();
        ex.run_step(StepKind::kRuleRestore, true, sw, 0, old_fp[sw.index()],
                    0, 0.0, false);
        missing[sw.index()] = false;
        bool any_routed = false;
        for (std::size_t i = 0; i < ex.routes.size(); ++i) {
          if (!ex.routes[i].empty()) continue;
          const bool ready = std::none_of(
              from_routes[i].begin(), from_routes[i].end(),
              [&](const Path& path) {
                return std::any_of(path.begin(), path.end(), [&](NodeId n) {
                  return missing[n.index()];
                });
              });
          if (ready && !from_routes[i].empty()) {
            ex.routes[i] = from_routes[i];
            ex.canonical[i] = from_routes[i];
            any_routed = true;
          }
        }
        if (any_routed) ex.push_point(0.0, ConversionScope::kFullBlackout);
      }
      ex.in_rollback = false;
    }
  }

  if (committed) {
    report.outcome = ConversionOutcome::kConverted;
  } else if (report.stages_committed > 0) {
    report.outcome = ConversionOutcome::kPartial;
  } else {
    report.outcome = ConversionOutcome::kRolledBack;
  }
  report.terminal_assignment = report.checkpoints.back().assignment;
  report.terminal_configs = ex.configs;
  report.finish_s = ex.now;
  // Bind the storm to the timeline at its *physical* times. The executor
  // only observes damage at step boundaries (detection latency), but the
  // data plane experiences a dead link the instant it dies: each event time
  // becomes a timeline point carrying the then-prevailing routes, and every
  // point's graph is degraded by the storm state active at its time. The
  // blackhole integral therefore charges a broken route from the moment of
  // failure until the executor re-planned it or the link physically
  // recovered — whichever came first.
  if (ex.storm != nullptr) {
    const std::vector<FailureEvent>& evs = storm.events();
    for (std::size_t e = 0; e < evs.size();) {
      const double t = evs[e].time_s;
      while (e < evs.size() && evs[e].time_s == t) ++e;
      if (t <= t0_s || t >= report.finish_s) continue;
      const auto pos = std::upper_bound(
          report.timeline.begin(), report.timeline.end(), t,
          [](double tt, const TimelinePoint& p) { return tt < p.t; });
      TimelinePoint pt = *(pos - 1);  // timeline[0] sits at t0 < t
      pt.t = t;
      pt.blackout_s = 0.0;
      pt.scope = ConversionScope::kChangedOnly;
      report.timeline.insert(pos, std::move(pt));
    }
    for (TimelinePoint& pt : report.timeline) {
      FailureSet active = storm.active_at(pt.t);
      if (active.empty()) continue;
      std::sort(active.links.begin(), active.links.end());
      std::sort(active.switches.begin(), active.switches.end());
      pt.graph = std::make_shared<const Graph>(
          degrade_mapped(*pt.graph, *ex.reference, active));
    }
  }
  finalize_blackout_windows(report);
  compute_blackhole_integral(report);
  if (reg != nullptr) {
    reg->counter("conv_exec.executions").add();
    reg->counter(committed ? "conv_exec.converted" : "conv_exec.rolled_back")
        .add();
    reg->counter("conv_exec.rules_added").add(report.rules_added);
    reg->counter("conv_exec.rules_deleted").add(report.rules_deleted);
    reg->counter("conv_exec.rules_skipped_dead").add(report.rules_skipped_dead);
    reg->gauge("conv_exec.max_duration_s")
        .set_max(report.finish_s - report.start_s);
    reg->gauge("conv_exec.max_blackhole_s").set_max(report.total_blackhole_s);
  }
  return report;
}

// -- simulator drivers --------------------------------------------------------

ConversionDrive make_conversion_drive(const ExecutionReport& report) {
  if (report.timeline.empty()) {
    throw std::invalid_argument("make_conversion_drive: empty timeline");
  }
  Graph merged = *report.timeline.front().graph;
  for (std::size_t k = 1; k < report.timeline.size(); ++k) {
    merged = graph_union(merged, *report.timeline[k].graph);
  }
  ConversionDrive drive;
  drive.base = std::make_shared<const Graph>(std::move(merged));

  // Per point: the union links absent from that point's operating topology
  // (ascending ids — links_not_in iterates in id order).
  std::vector<std::vector<LinkId>> absent(report.timeline.size());
  for (std::size_t k = 0; k < report.timeline.size(); ++k) {
    absent[k] = links_not_in(*drive.base, *report.timeline[k].graph);
  }

  // Event times are nudged strictly increasing across points so the k-th
  // refresh the simulator performs always corresponds to the k-th emitted
  // event (equal-time refreshes of one point are interchangeable — they
  // serve the same snapshot).
  double last_t = -1.0;
  constexpr double kNudge = 1e-9;
  for (std::size_t k = 0; k < report.timeline.size(); ++k) {
    const double t = std::max(report.timeline[k].t, last_t + kNudge);
    if (k == 0) {
      // Union links outside the initial state are dark from the start.
      if (!absent[0].empty()) {
        drive.schedule.fail_at(t, FailureSet{absent[0], {}});
        drive.refresh_point.push_back(0);
        last_t = t;
      }
      continue;
    }
    std::vector<LinkId> now_failed;
    std::vector<LinkId> now_recovered;
    std::set_difference(absent[k].begin(), absent[k].end(),
                        absent[k - 1].begin(), absent[k - 1].end(),
                        std::back_inserter(now_failed));
    std::set_difference(absent[k - 1].begin(), absent[k - 1].end(),
                        absent[k].begin(), absent[k].end(),
                        std::back_inserter(now_recovered));
    std::size_t emitted = 0;
    if (!now_failed.empty()) {
      drive.schedule.fail_at(t, FailureSet{now_failed, {}});
      drive.refresh_point.push_back(k);
      ++emitted;
    }
    if (!now_recovered.empty()) {
      drive.schedule.recover_at(t, FailureSet{now_recovered, {}});
      drive.refresh_point.push_back(k);
      ++emitted;
    }
    if (emitted == 0 &&
        report.timeline[k].routes != report.timeline[k - 1].routes) {
      // Route-only boundary: an empty recover event still triggers the
      // refresh that installs this point's snapshot.
      drive.schedule.recover_at(t, FailureSet{});
      drive.refresh_point.push_back(k);
      ++emitted;
    }
    if (emitted > 0) last_t = t;
  }
  return drive;
}

namespace {

std::shared_ptr<const std::unordered_map<std::uint64_t, std::size_t>>
pair_index_of(const ExecutionReport& report) {
  auto index =
      std::make_shared<std::unordered_map<std::uint64_t, std::size_t>>();
  for (std::size_t i = 0; i < report.pairs.size(); ++i) {
    (*index)[directed_pair_key(report.pairs[i].first,
                               report.pairs[i].second)] = i;
  }
  return index;
}

}  // namespace

std::vector<FluidFlowResult> run_fluid_with_conversion(
    const ExecutionReport& report, const Workload& flows,
    const FluidOptions& options, ScheduleRunStats* stats) {
  const ConversionDrive drive = make_conversion_drive(report);
  const auto index = pair_index_of(report);
  const auto provider_for = [&report, index](std::size_t point)
      -> PathProvider {
    return [&report, index, point](NodeId src, NodeId dst,
                                   std::uint32_t) -> std::vector<Path> {
      const auto it = index->find(directed_pair_key(src, dst));
      if (it == index->end()) return {};
      return report.timeline[point].routes[it->second];
    };
  };
  FluidSimulator sim{*drive.base, provider_for(0), options};
  std::size_t next = 0;
  const RoutingRefresh refresh = [&](const Graph&) -> PathProvider {
    const std::size_t point = next < drive.refresh_point.size()
                                  ? drive.refresh_point[next]
                                  : report.timeline.size() - 1;
    ++next;
    return provider_for(point);
  };
  return sim.run_with_schedule(flows, drive.schedule, 0.0, refresh, stats);
}

void drive_packet_sim(PacketSim& sim, const ExecutionReport& report,
                      const Workload& flows, double horizon_s) {
  if (report.timeline.empty()) {
    throw std::invalid_argument("drive_packet_sim: empty timeline");
  }
  const auto index = pair_index_of(report);
  for (std::size_t k = 1; k < report.timeline.size(); ++k) {
    const TimelinePoint& pt = report.timeline[k];
    if (pt.t >= horizon_s) break;
    sim.run_until(pt.t);
    sim.begin_segment();
    const auto paths_for = [&](std::uint32_t fi) -> std::vector<Path> {
      if (fi < flows.size()) {
        const Flow& f = flows[fi];
        const auto it = index->find(
            directed_pair_key(NodeId{f.src}, NodeId{f.dst}));
        if (it != index->end() && !pt.routes[it->second].empty()) {
          return pt.routes[it->second];
        }
      }
      // Black-holed (or untracked) pair: the flow keeps its current paths —
      // the blackout window models the hole; apply_conversion rejects empty
      // path sets by contract.
      return sim.flow_paths(fi);
    };
    sim.apply_conversion(*pt.graph, paths_for, pt.blackout_s, pt.scope);
  }
  sim.run_until(horizon_s);
}

std::vector<Path> conversion_paths_for(const ExecutionReport& report,
                                       const Flow& flow, std::size_t point) {
  if (point >= report.timeline.size()) {
    throw std::out_of_range("conversion_paths_for: point out of range");
  }
  for (std::size_t i = 0; i < report.pairs.size(); ++i) {
    if (report.pairs[i].first.value() == flow.src &&
        report.pairs[i].second.value() == flow.dst) {
      return report.timeline[point].routes[i];
    }
  }
  return {};
}

}  // namespace flattree
