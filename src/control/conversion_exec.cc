#include "control/conversion_exec.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "core/converter.h"
#include "net/rng.h"
#include "obs/metrics.h"
#include "routing/ksp.h"

namespace flattree {

void ControlChannelOptions::validate() const {
  // Negated conjunctions so NaN (which compares false against every bound)
  // is rejected too.
  if (!(drop_probability >= 0.0 && drop_probability < 1.0)) {
    throw std::invalid_argument(
        "ControlChannelOptions: drop_probability must be in [0, 1)");
  }
  if (!(delay_s >= 0.0)) {
    throw std::invalid_argument("ControlChannelOptions: delay_s must be >= 0");
  }
  if (!(timeout_s > 0.0)) {
    throw std::invalid_argument("ControlChannelOptions: timeout_s must be > 0");
  }
  if (!(backoff >= 1.0)) {
    throw std::invalid_argument("ControlChannelOptions: backoff must be >= 1");
  }
  if (max_attempts == 0) {
    throw std::invalid_argument(
        "ControlChannelOptions: max_attempts must be >= 1");
  }
}

const char* to_string(StepKind kind) {
  switch (kind) {
    case StepKind::kRulePatch: return "rule_patch";
    case StepKind::kOcs: return "ocs";
    case StepKind::kRuleAdd: return "rule_add";
    case StepKind::kEpochFlip: return "epoch_flip";
    case StepKind::kRuleDelete: return "rule_delete";
    case StepKind::kRuleRestore: return "rule_restore";
  }
  return "?";
}

const char* to_string(ConversionOutcome outcome) {
  switch (outcome) {
    case ConversionOutcome::kConverted: return "converted";
    case ConversionOutcome::kRolledBack: return "rolled_back";
  }
  return "?";
}

namespace {

std::uint64_t directed_pair_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
}

bool has_repeated_node(const Path& path) {
  Path sorted = path;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end();
}

// Changed converters grouped into rewire units (a six-port converter and its
// side peer configure pairwise, so they always move in the same OCS pass —
// FlatTree::realize rejects half-configured side bundles) and chunked into
// at most `requested` contiguous partitions.
std::vector<std::vector<std::uint32_t>> make_partitions(
    const FlatTree& tree, std::span<const ConverterConfig> from,
    std::span<const ConverterConfig> to, std::uint32_t requested) {
  const std::span<const Converter> converters = tree.converters();
  std::vector<std::vector<std::uint32_t>> units;
  std::vector<bool> seen(from.size(), false);
  for (std::uint32_t i = 0; i < from.size(); ++i) {
    if (seen[i] || from[i] == to[i]) continue;
    std::vector<std::uint32_t> unit{i};
    seen[i] = true;
    const ConverterId peer = converters[i].side_peer;
    if (peer.valid() && peer.index() < from.size() && !seen[peer.index()]) {
      unit.push_back(peer.value());
      seen[peer.index()] = true;
    }
    units.push_back(std::move(unit));
  }
  if (units.empty()) return {};
  const std::size_t count = std::min<std::size_t>(
      std::max<std::uint32_t>(1, requested), units.size());
  std::vector<std::vector<std::uint32_t>> partitions(count);
  for (std::size_t u = 0; u < units.size(); ++u) {
    std::vector<std::uint32_t>& part = partitions[u * count / units.size()];
    part.insert(part.end(), units[u].begin(), units[u].end());
  }
  return partitions;
}

struct ChannelOutcome {
  bool ok{false};
  double finish_s{0.0};
  std::uint32_t attempts{0};
  std::uint32_t dropped{0};
};

// The whole mutable execution state plus the step/timeline machinery. One
// instance per execute() call; everything it touches is local or owned by
// the caller, so executions are trivially parallel across threads.
struct Exec {
  const FlatTree& tree;
  const ConversionExecOptions& opt;
  const ConversionDelayModel& delay;
  ExecutionReport& report;
  Rng rng;
  double now{0.0};
  std::uint32_t epoch{0};
  std::uint32_t k{4};
  std::vector<ConverterConfig> configs;
  std::shared_ptr<const Graph> graph;
  std::vector<std::vector<Path>> routes;  // parallel to report.pairs
  std::vector<bool> dead;                 // per node id, control-plane dead
  std::vector<NodeId> dead_list;          // the same, sorted

  obs::Counter* c_steps{nullptr};
  obs::Counter* c_step_failures{nullptr};
  obs::Counter* c_retries{nullptr};
  obs::Counter* c_dropped{nullptr};
  obs::Counter* c_patched{nullptr};
  obs::Counter* c_inv_checks{nullptr};
  obs::Counter* c_violations{nullptr};
  obs::Histogram* h_attempts{nullptr};
  obs::EventTracer* tracer{nullptr};

  // One command round over the lossy channel: per attempt the command drop
  // and (if delivered and executable) the ack drop are drawn independently;
  // a forced failure (dead switch, injected OCS fault) is delivered but
  // never acks. Retries go out after a capped exponential backoff.
  // `unbounded` (rollback) retries until success, with a far-out safety
  // valve so an adversarial seed cannot hang the executor.
  ChannelOutcome channel_round(double start_s, double service_s,
                               bool forced_fail, bool unbounded) {
    const ControlChannelOptions& ch = opt.channel;
    const double rtt = 2.0 * ch.delay_s + service_s;
    const double base_timeout = std::max(ch.timeout_s, rtt);
    const double timeout_cap = base_timeout * 64.0;
    const std::uint32_t cap = unbounded ? 4096u : ch.max_attempts;
    ChannelOutcome out;
    double t = start_s;
    double timeout = base_timeout;
    for (std::uint32_t attempt = 1; attempt <= cap; ++attempt) {
      out.attempts = attempt;
      const bool delivered = !(rng.next_double() < ch.drop_probability);
      if (!delivered) {
        ++out.dropped;
      } else if (!forced_fail) {
        const bool acked = !(rng.next_double() < ch.drop_probability);
        if (acked) {
          out.ok = true;
          out.finish_s = t + rtt;
          return out;
        }
        ++out.dropped;
      }
      t += timeout;
      timeout = std::min(timeout * ch.backoff, timeout_cap);
    }
    out.finish_s = t;
    return out;
  }

  // Executes one schedule step over the channel, records it, and advances
  // simulated time. Returns whether the step was acked.
  bool run_step(StepKind kind, bool rollback, NodeId target,
                std::uint32_t partition, std::uint64_t adds,
                std::uint64_t dels, double extra_service_s, bool forced_fail) {
    const double service =
        extra_service_s + (static_cast<double>(adds) * delay.rule_add_s +
                           static_cast<double>(dels) * delay.rule_delete_s) /
                              delay.effective_controllers();
    const ChannelOutcome out =
        channel_round(now, service, forced_fail, rollback);
    StepRecord rec;
    rec.kind = kind;
    rec.rollback = rollback;
    rec.target = target;
    rec.partition = partition;
    rec.rules_added = adds;
    rec.rules_deleted = dels;
    rec.start_s = now;
    rec.finish_s = out.finish_s;
    rec.attempts = out.attempts;
    rec.ok = out.ok;
    report.steps.push_back(rec);
    now = out.finish_s;
    report.retries += out.attempts - 1;
    report.messages_dropped += out.dropped;
    if (out.ok) {
      report.rules_added += adds;
      report.rules_deleted += dels;
    } else {
      ++report.steps_failed;
    }
    obs::add(c_steps);
    obs::add(c_retries, out.attempts - 1);
    obs::add(c_dropped, out.dropped);
    obs::record(h_attempts, static_cast<double>(out.attempts));
    if (!out.ok) obs::add(c_step_failures);
    if (tracer != nullptr) {
      tracer->mark("conv_exec", to_string(kind), 0,
                   static_cast<std::int64_t>(out.attempts));
    }
    return out.ok;
  }

  // Snapshots the current state onto the timeline and runs the transient
  // invariant checker against it.
  void push_point(double blackout_s, ConversionScope scope) {
    TimelinePoint pt;
    pt.t = now;
    pt.graph = graph;
    pt.epoch = epoch;
    pt.blackout_s = blackout_s;
    pt.scope = scope;
    pt.routes = routes;
    report.timeline.push_back(std::move(pt));
    check_invariants();
  }

  void add_violation(ViolationKind kind, std::size_t pair) {
    const std::size_t step = report.steps.empty() ? 0 : report.steps.size() - 1;
    report.violations.push_back(TransientViolation{kind, step, pair});
    obs::add(c_violations);
  }

  void check_invariants() {
    if (!opt.check_invariants) return;
    obs::add(c_inv_checks);
    const bool connected = servers_connected(*graph);
    if (!connected) add_violation(ViolationKind::kDisconnected, 0);
    for (std::size_t i = 0; i < report.pairs.size(); ++i) {
      const std::vector<Path>& rs = routes[i];
      if (rs.empty()) {
        // No installed route while the physical pair is connected: the
        // atomic baseline's rule hole.
        if (connected) add_violation(ViolationKind::kBlackhole, i);
        continue;
      }
      for (const Path& path : rs) {
        if (has_repeated_node(path)) {
          add_violation(ViolationKind::kLoop, i);
        } else if (!is_valid_path(*graph, path)) {
          add_violation(ViolationKind::kBlackhole, i);
        }
      }
    }
  }

  // Per-switch rule footprint of a route snapshot: one rule per switch hop.
  std::vector<std::uint64_t> footprint_of(
      const std::vector<std::vector<Path>>& snapshot) const {
    std::vector<std::uint64_t> per(graph->node_count(), 0);
    for (const std::vector<Path>& rs : snapshot) {
      for (const Path& path : rs) {
        for (NodeId n : path) {
          if (is_switch(graph->node(n).role)) ++per[n.index()];
        }
      }
    }
    return per;
  }

  // Splits one route set's rule count into operations on live switches and
  // operations skipped because the switch is control-plane dead.
  void count_rules(const std::vector<Path>& paths, std::uint64_t& live,
                   std::uint64_t& skipped) const {
    for (const Path& path : paths) {
      for (NodeId n : path) {
        if (!is_switch(graph->node(n).role)) continue;
        if (dead[n.index()]) {
          ++skipped;
        } else {
          ++live;
        }
      }
    }
  }

  bool pair_uses_switch(const std::vector<Path>& paths, NodeId sw) const {
    for (const Path& path : paths) {
      if (std::find(path.begin(), path.end(), sw) != path.end()) return true;
    }
    return false;
  }

  // Applies (forward) or reverts (rollback) one OCS partition with
  // make-before-break patching. Returns false when a forward step exhausted
  // its retries; rollback steps retry unbounded and keep going regardless.
  bool rewire_partition(const std::vector<std::uint32_t>& members,
                        std::uint32_t pindex,
                        std::span<const ConverterConfig> goal, bool rollback,
                        bool forced_ocs_fail) {
    std::vector<ConverterConfig> next = configs;
    bool changed = false;
    for (std::uint32_t c : members) {
      if (next[c] != goal[c]) {
        next[c] = goal[c];
        changed = true;
      }
    }
    if (!changed) return true;
    auto next_graph = std::make_shared<const Graph>(tree.realize(next));

    // The intersection graph: links of the current realization that survive
    // the rewire. Any path on it is valid both before and after the pass.
    const std::vector<LinkId> removed = links_not_in(*graph, *next_graph);
    const Graph safe = degrade(*graph, FailureSet{removed, {}});

    struct PairPatch {
      std::size_t pair;
      std::vector<Path> paths;
      bool armed;  // solved on the next graph, activates when the pass lands
    };
    std::vector<PairPatch> patches;

    // Preferred solve graphs avoid dead switches as transit (their tables
    // cannot take the patch rules); the with-dead fallbacks only keep a
    // pair from being abandoned when the dead boxes are its sole capacity.
    const FailureSet dead_set{{}, dead_list};
    PathCache safe_cache{safe, k};
    PathCache next_cache{*next_graph, k};
    std::optional<Graph> safe_live, next_live;
    std::optional<PathCache> safe_live_cache, next_live_cache;
    if (!dead_list.empty()) {
      safe_live.emplace(degrade(safe, dead_set));
      next_live.emplace(degrade(*next_graph, dead_set));
      safe_live_cache.emplace(*safe_live, k);
      next_live_cache.emplace(*next_live, k);
    }
    const auto solve = [](PathCache& cache, const Graph& g, NodeId src,
                          NodeId dst) -> std::vector<Path> {
      // A server whose access circuit moves with this pass has degree 0 on
      // the intersection graph — no immediate patch exists for it.
      if (g.degree(src) == 0 || g.degree(dst) == 0) return {};
      return cache.server_paths(src, dst);
    };

    for (std::size_t i = 0; i < report.pairs.size(); ++i) {
      const std::vector<Path>& rs = routes[i];
      if (rs.empty()) continue;
      bool broken = false;
      for (const Path& path : rs) {
        if (!is_valid_path(*next_graph, path)) {
          broken = true;
          break;
        }
      }
      if (!broken) continue;
      const auto [src, dst] = report.pairs[i];
      std::vector<Path> sol;
      bool armed = false;
      if (!dead_list.empty()) {
        sol = solve(*safe_live_cache, *safe_live, src, dst);
        if (sol.empty()) {
          sol = solve(*next_live_cache, *next_live, src, dst);
          armed = true;
        }
      }
      if (sol.empty()) {
        sol = solve(safe_cache, safe, src, dst);
        armed = false;
      }
      if (sol.empty()) {
        sol = solve(next_cache, *next_graph, src, dst);
        armed = true;
      }
      // A pair with no route even on the full graphs is physically
      // disconnected; leave it and let the checker report it.
      if (sol.empty()) continue;
      patches.push_back(PairPatch{i, std::move(sol), armed});
    }

    if (!patches.empty()) {
      std::uint64_t adds = 0;
      std::uint64_t dels = 0;
      std::uint64_t skipped = 0;
      for (const PairPatch& p : patches) {
        count_rules(routes[p.pair], dels, skipped);
        count_rules(p.paths, adds, skipped);
      }
      const bool ok = run_step(StepKind::kRulePatch, rollback, NodeId{},
                               pindex, adds, dels, 0.0, false);
      if (!ok && !rollback) return false;
      report.rules_skipped_dead += skipped;
      bool any_immediate = false;
      for (PairPatch& p : patches) {
        ++report.pairs_patched;
        obs::add(c_patched);
        if (!p.armed) {
          routes[p.pair] = std::move(p.paths);
          any_immediate = true;
        }
      }
      if (any_immediate) push_point(0.0, ConversionScope::kChangedOnly);
    }

    const bool ok = run_step(StepKind::kOcs, rollback, NodeId{}, pindex, 0, 0,
                             delay.ocs_reconfigure_s, forced_ocs_fail);
    if (!ok && !rollback) return false;
    configs = std::move(next);
    graph = std::move(next_graph);
    for (PairPatch& p : patches) {
      if (p.armed) routes[p.pair] = std::move(p.paths);
    }
    push_point(delay.ocs_reconfigure_s, ConversionScope::kChangedOnly);
    return true;
  }
};

// The atomic baseline's rule hole, made explicit for the packet simulator:
// every boundary at which some pair has no installed route stalls until the
// first later boundary where every pair is routed again.
void finalize_blackout_windows(ExecutionReport& report) {
  for (std::size_t k = 0; k < report.timeline.size(); ++k) {
    TimelinePoint& pt = report.timeline[k];
    const bool any_dark = std::any_of(
        pt.routes.begin(), pt.routes.end(),
        [](const std::vector<Path>& rs) { return rs.empty(); });
    if (!any_dark) continue;
    double restored = report.finish_s;
    for (std::size_t j = k + 1; j < report.timeline.size(); ++j) {
      const bool still_dark = std::any_of(
          report.timeline[j].routes.begin(), report.timeline[j].routes.end(),
          [](const std::vector<Path>& rs) { return rs.empty(); });
      if (!still_dark) {
        restored = report.timeline[j].t;
        break;
      }
    }
    pt.blackout_s = std::max(pt.blackout_s, restored - pt.t);
    pt.scope = ConversionScope::kFullBlackout;
  }
}

// Route-availability integral: over each boundary interval a pair is dark
// when none of its installed paths is valid on that interval's graph.
void compute_blackhole_integral(ExecutionReport& report) {
  std::vector<double> dark(report.pairs.size(), 0.0);
  for (std::size_t k = 0; k < report.timeline.size(); ++k) {
    const TimelinePoint& pt = report.timeline[k];
    const double t_end = k + 1 < report.timeline.size()
                             ? report.timeline[k + 1].t
                             : report.finish_s;
    const double dt = std::max(0.0, t_end - pt.t);
    if (dt == 0.0) continue;
    for (std::size_t i = 0; i < report.pairs.size(); ++i) {
      bool any_valid = false;
      for (const Path& path : pt.routes[i]) {
        if (is_valid_path(*pt.graph, path)) {
          any_valid = true;
          break;
        }
      }
      if (!any_valid) dark[i] += dt;
    }
  }
  report.total_blackhole_s = 0.0;
  report.max_pair_blackhole_s = 0.0;
  for (double d : dark) {
    report.total_blackhole_s += d;
    report.max_pair_blackhole_s = std::max(report.max_pair_blackhole_s, d);
  }
}

}  // namespace

ConversionExecutor::ConversionExecutor(const Controller& controller,
                                       ConversionExecOptions options)
    : controller_{&controller}, options_{std::move(options)} {}

ExecutionReport ConversionExecutor::execute(
    const CompiledMode& from, const CompiledMode& to,
    std::span<const std::pair<NodeId, NodeId>> pairs,
    const ConversionFaults& faults, double t0_s) const {
  options_.channel.validate();
  controller_->options().delay.validate();
  const FlatTree& tree = controller_->tree();
  if (from.configs().size() != tree.converters().size() ||
      to.configs().size() != tree.converters().size()) {
    throw std::invalid_argument(
        "ConversionExecutor: modes not compiled from this controller's tree");
  }
  if (!(t0_s >= 0.0)) {
    throw std::invalid_argument("ConversionExecutor: t0_s must be >= 0");
  }
  const Graph& from_graph = from.graph();
  for (NodeId sw : faults.dead_switches) {
    if (sw.index() >= from_graph.node_count() ||
        !is_switch(from_graph.node(sw).role)) {
      throw std::invalid_argument(
          "ConversionExecutor: dead_switches must name switches");
    }
  }
  if (options_.ocs_partitions == 0) {
    throw std::invalid_argument(
        "ConversionExecutor: ocs_partitions must be >= 1");
  }

  const ConversionDelayModel& delay = controller_->options().delay;
  ExecutionReport report;
  report.staged = options_.staged;
  report.start_s = t0_s;
  report.pairs.assign(pairs.begin(), pairs.end());

  obs::MetricsRegistry* reg = options_.sink.metrics();
  Exec ex{.tree = tree,
          .opt = options_,
          .delay = delay,
          .report = report,
          .rng = Rng{options_.seed}};
  ex.now = t0_s;
  ex.k = from.k();
  ex.configs = from.configs();
  ex.graph = from.graph_ptr();
  if (reg != nullptr) {
    ex.c_steps = &reg->counter("conv_exec.steps");
    ex.c_step_failures = &reg->counter("conv_exec.step_failures");
    ex.c_retries = &reg->counter("conv_exec.retries");
    ex.c_dropped = &reg->counter("conv_exec.messages_dropped");
    ex.c_patched = &reg->counter("conv_exec.pairs_patched");
    ex.c_inv_checks = &reg->counter("conv_exec.invariant_checks");
    ex.c_violations = &reg->counter("conv_exec.violations");
    ex.h_attempts =
        &reg->histogram("conv_exec.step_attempts", {1, 2, 4, 8, 16, 32, 64});
  }
  ex.tracer = options_.sink.tracer();
  ex.dead.assign(from_graph.node_count(), false);
  ex.dead_list = faults.dead_switches;
  std::sort(ex.dead_list.begin(), ex.dead_list.end());
  ex.dead_list.erase(std::unique(ex.dead_list.begin(), ex.dead_list.end()),
                     ex.dead_list.end());
  for (NodeId sw : ex.dead_list) ex.dead[sw.index()] = true;

  ex.routes.reserve(report.pairs.size());
  std::vector<std::vector<Path>> from_routes;
  from_routes.reserve(report.pairs.size());
  for (const auto& [src, dst] : report.pairs) {
    from_routes.push_back(from.paths().server_paths(src, dst));
    ex.routes.push_back(from_routes.back());
  }
  ex.push_point(0.0, ConversionScope::kChangedOnly);  // the pre-conversion state

  const std::vector<std::vector<std::uint32_t>> partitions = make_partitions(
      tree, from.configs(), to.configs(), options_.ocs_partitions);
  const auto ocs_forced = [&faults](std::uint32_t p) {
    return std::find(faults.fail_ocs_partitions.begin(),
                     faults.fail_ocs_partitions.end(),
                     p) != faults.fail_ocs_partitions.end();
  };
  const auto resolve_to_routes = [&]() {
    std::vector<std::vector<Path>> to_routes;
    to_routes.reserve(report.pairs.size());
    for (const auto& [src, dst] : report.pairs) {
      to_routes.push_back(to.paths().server_paths(src, dst));
    }
    return to_routes;
  };

  bool failed = false;
  bool committed = false;
  bool ocs_applied = false;                 // atomic baseline's single pass
  std::size_t partitions_applied = 0;       // staged passes that landed
  std::vector<NodeId> added_switches;       // acked new-mode rule installs
  std::vector<NodeId> deleted_switches;     // atomic: acked old-rule deletes
  std::vector<std::uint64_t> to_fp;         // per-switch new-mode rules
  std::vector<std::uint64_t> old_fp;        // per-switch outgoing rules
  std::vector<std::vector<Path>> to_routes;

  if (options_.staged) {
    // -- phase 0: per-partition OCS passes with make-before-break patches.
    for (std::uint32_t p = 0;
         p < static_cast<std::uint32_t>(partitions.size()); ++p) {
      if (!ex.rewire_partition(partitions[p], p, to.configs(), false,
                               ocs_forced(p))) {
        failed = true;
        break;
      }
      ++partitions_applied;
    }
    // -- phase A: install the incoming mode's rules under the new epoch tag
    // (inert until the flip, so every table stays pure old-mode).
    if (!failed) {
      to_routes = resolve_to_routes();
      to_fp = ex.footprint_of(to_routes);
      for (std::uint32_t n = 0;
           n < static_cast<std::uint32_t>(to_fp.size()); ++n) {
        if (to_fp[n] == 0) continue;
        if (!ex.run_step(StepKind::kRuleAdd, false, NodeId{n}, 0, to_fp[n], 0,
                         0.0, ex.dead[n])) {
          failed = true;
          break;
        }
        added_switches.push_back(NodeId{n});
      }
    }
    // -- phase B: the barrier + epoch flip (the commit point), then GC.
    if (!failed) {
      old_fp = ex.footprint_of(ex.routes);
      if (!ex.run_step(StepKind::kEpochFlip, false, NodeId{}, 0, 0, 0, 0.0,
                       false)) {
        failed = true;
      } else {
        committed = true;
        ex.epoch = 1;
        ex.routes = to_routes;
        ex.push_point(0.0, ConversionScope::kChangedOnly);
        // Old-epoch garbage collection: post-commit, best effort. A dead
        // switch keeps its stale rules (inert under the new epoch).
        for (std::uint32_t n = 0;
             n < static_cast<std::uint32_t>(old_fp.size()); ++n) {
          if (old_fp[n] == 0) continue;
          if (ex.dead[n]) {
            report.rules_skipped_dead += old_fp[n];
            continue;
          }
          ex.run_step(StepKind::kRuleDelete, false, NodeId{n}, 0, 0,
                      old_fp[n], 0.0, false);
        }
      }
    }
  } else {
    // -- atomic-swap baseline: delete everything, one OCS pass, add
    // everything. Routes die switch by switch; the rule hole between the
    // first delete and the last add is the blackhole window the staged
    // protocol exists to remove.
    old_fp = ex.footprint_of(ex.routes);
    for (std::uint32_t n = 0; n < static_cast<std::uint32_t>(old_fp.size());
         ++n) {
      if (old_fp[n] == 0) continue;
      if (!ex.run_step(StepKind::kRuleDelete, false, NodeId{n}, 0, 0,
                       old_fp[n], 0.0, ex.dead[n])) {
        failed = true;
        break;
      }
      deleted_switches.push_back(NodeId{n});
      bool any_cleared = false;
      for (std::size_t i = 0; i < ex.routes.size(); ++i) {
        if (ex.routes[i].empty()) continue;
        if (ex.pair_uses_switch(ex.routes[i], NodeId{n})) {
          ex.routes[i].clear();
          any_cleared = true;
        }
      }
      if (any_cleared) ex.push_point(0.0, ConversionScope::kFullBlackout);
    }
    if (!failed && !partitions.empty()) {
      if (!ex.run_step(StepKind::kOcs, false, NodeId{}, 0, 0, 0,
                       delay.ocs_reconfigure_s, ocs_forced(0))) {
        failed = true;
      } else {
        ocs_applied = true;
        ex.configs = to.configs();
        ex.graph = to.graph_ptr();
        ex.push_point(delay.ocs_reconfigure_s, ConversionScope::kFullBlackout);
      }
    }
    if (!failed) {
      to_routes = resolve_to_routes();
      to_fp = ex.footprint_of(to_routes);
      // A pair comes back once every switch on its new routes is programmed.
      std::vector<std::vector<std::uint32_t>> need(report.pairs.size());
      for (std::size_t i = 0; i < to_routes.size(); ++i) {
        for (const Path& path : to_routes[i]) {
          for (NodeId n : path) {
            if (is_switch(ex.graph->node(n).role)) need[i].push_back(n.value());
          }
        }
        std::sort(need[i].begin(), need[i].end());
        need[i].erase(std::unique(need[i].begin(), need[i].end()),
                      need[i].end());
      }
      std::vector<bool> programmed(ex.graph->node_count(), false);
      for (std::uint32_t n = 0; n < static_cast<std::uint32_t>(to_fp.size());
           ++n) {
        if (to_fp[n] == 0) continue;
        if (!ex.run_step(StepKind::kRuleAdd, false, NodeId{n}, 0, to_fp[n], 0,
                         0.0, ex.dead[n])) {
          failed = true;
          break;
        }
        added_switches.push_back(NodeId{n});
        programmed[n] = true;
        bool any_routed = false;
        for (std::size_t i = 0; i < ex.routes.size(); ++i) {
          if (!ex.routes[i].empty() || to_routes[i].empty()) continue;
          const bool ready = std::all_of(
              need[i].begin(), need[i].end(),
              [&programmed](std::uint32_t sw) { return programmed[sw]; });
          if (ready) {
            ex.routes[i] = to_routes[i];
            any_routed = true;
          }
        }
        if (any_routed) ex.push_point(0.0, ConversionScope::kChangedOnly);
      }
      if (!failed) {
        committed = true;
        ex.epoch = 1;
        ex.push_point(0.0, ConversionScope::kChangedOnly);
      }
    }
  }

  if (failed) {
    // -- rollback to the last committed epoch (the outgoing mode). Every
    // rollback step retries unbounded: the channel is lossy, not dead, and
    // no rollback step addresses a dead switch — steps touching one fail
    // before mutating it, so only acked (live) switches ever need undoing.
    if (options_.staged) {
      // Collect the inert new-epoch rules already installed.
      for (auto it = added_switches.rbegin(); it != added_switches.rend();
           ++it) {
        ex.run_step(StepKind::kRuleDelete, true, *it, 0, 0,
                    to_fp[it->index()], 0.0, false);
      }
      // Un-rewire the applied partitions in reverse order, with the same
      // make-before-break patching the forward passes used.
      for (std::size_t p = partitions_applied; p-- > 0;) {
        ex.rewire_partition(partitions[p], static_cast<std::uint32_t>(p),
                            from.configs(), true, false);
      }
      // Reinstate the outgoing mode's canonical routes.
      std::uint64_t adds = 0;
      std::uint64_t dels = 0;
      std::uint64_t skipped = 0;
      for (std::size_t i = 0; i < ex.routes.size(); ++i) {
        if (ex.routes[i] == from_routes[i]) continue;
        ex.count_rules(ex.routes[i], dels, skipped);
        ex.count_rules(from_routes[i], adds, skipped);
      }
      ex.run_step(StepKind::kRuleRestore, true, NodeId{}, 0, adds, dels, 0.0,
                  false);
      report.rules_skipped_dead += skipped;
      ex.routes = from_routes;
      ex.push_point(0.0, ConversionScope::kChangedOnly);
    } else {
      // Collect whatever new-mode rules landed (their pairs go dark again
      // before the circuits revert underneath them).
      for (auto it = added_switches.rbegin(); it != added_switches.rend();
           ++it) {
        ex.run_step(StepKind::kRuleDelete, true, *it, 0, 0,
                    to_fp[it->index()], 0.0, false);
        bool any_cleared = false;
        for (std::size_t i = 0; i < ex.routes.size(); ++i) {
          if (ex.routes[i].empty()) continue;
          if (ex.pair_uses_switch(ex.routes[i], *it)) {
            ex.routes[i].clear();
            any_cleared = true;
          }
        }
        if (any_cleared) ex.push_point(0.0, ConversionScope::kFullBlackout);
      }
      if (ocs_applied) {
        ex.run_step(StepKind::kOcs, true, NodeId{}, 0, 0, 0,
                    delay.ocs_reconfigure_s, false);
        ex.configs = from.configs();
        ex.graph = from.graph_ptr();
        ex.push_point(delay.ocs_reconfigure_s, ConversionScope::kFullBlackout);
      }
      // Reinstall the outgoing rules on every switch that deleted them; a
      // pair comes back once all its switches are whole again.
      std::vector<bool> missing(ex.graph->node_count(), false);
      for (NodeId sw : deleted_switches) missing[sw.index()] = true;
      for (NodeId sw : deleted_switches) {
        ex.run_step(StepKind::kRuleRestore, true, sw, 0, old_fp[sw.index()],
                    0, 0.0, false);
        missing[sw.index()] = false;
        bool any_routed = false;
        for (std::size_t i = 0; i < ex.routes.size(); ++i) {
          if (!ex.routes[i].empty()) continue;
          const bool ready = std::none_of(
              from_routes[i].begin(), from_routes[i].end(),
              [&](const Path& path) {
                return std::any_of(path.begin(), path.end(), [&](NodeId n) {
                  return missing[n.index()];
                });
              });
          if (ready && !from_routes[i].empty()) {
            ex.routes[i] = from_routes[i];
            any_routed = true;
          }
        }
        if (any_routed) ex.push_point(0.0, ConversionScope::kFullBlackout);
      }
    }
  }

  report.outcome = committed ? ConversionOutcome::kConverted
                             : ConversionOutcome::kRolledBack;
  report.finish_s = ex.now;
  finalize_blackout_windows(report);
  compute_blackhole_integral(report);
  if (reg != nullptr) {
    reg->counter("conv_exec.executions").add();
    reg->counter(committed ? "conv_exec.converted" : "conv_exec.rolled_back")
        .add();
    reg->counter("conv_exec.rules_added").add(report.rules_added);
    reg->counter("conv_exec.rules_deleted").add(report.rules_deleted);
    reg->counter("conv_exec.rules_skipped_dead").add(report.rules_skipped_dead);
    reg->gauge("conv_exec.max_duration_s")
        .set_max(report.finish_s - report.start_s);
    reg->gauge("conv_exec.max_blackhole_s").set_max(report.total_blackhole_s);
  }
  return report;
}

// -- simulator drivers --------------------------------------------------------

ConversionDrive make_conversion_drive(const ExecutionReport& report) {
  if (report.timeline.empty()) {
    throw std::invalid_argument("make_conversion_drive: empty timeline");
  }
  Graph merged = *report.timeline.front().graph;
  for (std::size_t k = 1; k < report.timeline.size(); ++k) {
    merged = graph_union(merged, *report.timeline[k].graph);
  }
  ConversionDrive drive;
  drive.base = std::make_shared<const Graph>(std::move(merged));

  // Per point: the union links absent from that point's operating topology
  // (ascending ids — links_not_in iterates in id order).
  std::vector<std::vector<LinkId>> absent(report.timeline.size());
  for (std::size_t k = 0; k < report.timeline.size(); ++k) {
    absent[k] = links_not_in(*drive.base, *report.timeline[k].graph);
  }

  // Event times are nudged strictly increasing across points so the k-th
  // refresh the simulator performs always corresponds to the k-th emitted
  // event (equal-time refreshes of one point are interchangeable — they
  // serve the same snapshot).
  double last_t = -1.0;
  constexpr double kNudge = 1e-9;
  for (std::size_t k = 0; k < report.timeline.size(); ++k) {
    const double t = std::max(report.timeline[k].t, last_t + kNudge);
    if (k == 0) {
      // Union links outside the initial state are dark from the start.
      if (!absent[0].empty()) {
        drive.schedule.fail_at(t, FailureSet{absent[0], {}});
        drive.refresh_point.push_back(0);
        last_t = t;
      }
      continue;
    }
    std::vector<LinkId> now_failed;
    std::vector<LinkId> now_recovered;
    std::set_difference(absent[k].begin(), absent[k].end(),
                        absent[k - 1].begin(), absent[k - 1].end(),
                        std::back_inserter(now_failed));
    std::set_difference(absent[k - 1].begin(), absent[k - 1].end(),
                        absent[k].begin(), absent[k].end(),
                        std::back_inserter(now_recovered));
    std::size_t emitted = 0;
    if (!now_failed.empty()) {
      drive.schedule.fail_at(t, FailureSet{now_failed, {}});
      drive.refresh_point.push_back(k);
      ++emitted;
    }
    if (!now_recovered.empty()) {
      drive.schedule.recover_at(t, FailureSet{now_recovered, {}});
      drive.refresh_point.push_back(k);
      ++emitted;
    }
    if (emitted == 0 &&
        report.timeline[k].routes != report.timeline[k - 1].routes) {
      // Route-only boundary: an empty recover event still triggers the
      // refresh that installs this point's snapshot.
      drive.schedule.recover_at(t, FailureSet{});
      drive.refresh_point.push_back(k);
      ++emitted;
    }
    if (emitted > 0) last_t = t;
  }
  return drive;
}

namespace {

std::shared_ptr<const std::unordered_map<std::uint64_t, std::size_t>>
pair_index_of(const ExecutionReport& report) {
  auto index =
      std::make_shared<std::unordered_map<std::uint64_t, std::size_t>>();
  for (std::size_t i = 0; i < report.pairs.size(); ++i) {
    (*index)[directed_pair_key(report.pairs[i].first,
                               report.pairs[i].second)] = i;
  }
  return index;
}

}  // namespace

std::vector<FluidFlowResult> run_fluid_with_conversion(
    const ExecutionReport& report, const Workload& flows,
    const FluidOptions& options, ScheduleRunStats* stats) {
  const ConversionDrive drive = make_conversion_drive(report);
  const auto index = pair_index_of(report);
  const auto provider_for = [&report, index](std::size_t point)
      -> PathProvider {
    return [&report, index, point](NodeId src, NodeId dst,
                                   std::uint32_t) -> std::vector<Path> {
      const auto it = index->find(directed_pair_key(src, dst));
      if (it == index->end()) return {};
      return report.timeline[point].routes[it->second];
    };
  };
  FluidSimulator sim{*drive.base, provider_for(0), options};
  std::size_t next = 0;
  const RoutingRefresh refresh = [&](const Graph&) -> PathProvider {
    const std::size_t point = next < drive.refresh_point.size()
                                  ? drive.refresh_point[next]
                                  : report.timeline.size() - 1;
    ++next;
    return provider_for(point);
  };
  return sim.run_with_schedule(flows, drive.schedule, 0.0, refresh, stats);
}

void drive_packet_sim(PacketSim& sim, const ExecutionReport& report,
                      const Workload& flows, double horizon_s) {
  if (report.timeline.empty()) {
    throw std::invalid_argument("drive_packet_sim: empty timeline");
  }
  const auto index = pair_index_of(report);
  for (std::size_t k = 1; k < report.timeline.size(); ++k) {
    const TimelinePoint& pt = report.timeline[k];
    if (pt.t >= horizon_s) break;
    sim.run_until(pt.t);
    sim.begin_segment();
    const auto paths_for = [&](std::uint32_t fi) -> std::vector<Path> {
      if (fi < flows.size()) {
        const Flow& f = flows[fi];
        const auto it = index->find(
            directed_pair_key(NodeId{f.src}, NodeId{f.dst}));
        if (it != index->end() && !pt.routes[it->second].empty()) {
          return pt.routes[it->second];
        }
      }
      // Black-holed (or untracked) pair: the flow keeps its current paths —
      // the blackout window models the hole; apply_conversion rejects empty
      // path sets by contract.
      return sim.flow_paths(fi);
    };
    sim.apply_conversion(*pt.graph, paths_for, pt.blackout_s, pt.scope);
  }
  sim.run_until(horizon_s);
}

std::vector<Path> conversion_paths_for(const ExecutionReport& report,
                                       const Flow& flow, std::size_t point) {
  if (point >= report.timeline.size()) {
    throw std::out_of_range("conversion_paths_for: point out of range");
  }
  for (std::size_t i = 0; i < report.pairs.size(); ++i) {
    if (report.pairs[i].first.value() == flow.src &&
        report.pairs[i].second.value() == flow.dst) {
      return report.timeline[point].routes[i];
    }
  }
  return {};
}

}  // namespace flattree
