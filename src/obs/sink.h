// ObsSink: the zero-cost-when-disabled handle components hold.
//
// A sink is two raw pointers. Default-constructed it is disabled; every
// emission site either checks `sink.metrics()` / `sink.tracer()` for null or
// — hot paths — caches the Counter*/Histogram* pointers once at attach time
// and guards on those. With the sink disabled no atomics are touched, no
// strings built, no locks taken: bench output stays byte-identical to a
// build without observability.
//
// Lifetime: the ExperimentRunner (or a test) owns the registry and tracer;
// attached components must not outlive them.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flattree::obs {

class ObsSink {
 public:
  ObsSink() = default;
  ObsSink(MetricsRegistry* metrics, EventTracer* tracer)
      : metrics_{metrics}, tracer_{tracer} {}

  [[nodiscard]] bool enabled() const {
    return metrics_ != nullptr || tracer_ != nullptr;
  }
  [[nodiscard]] MetricsRegistry* metrics() const { return metrics_; }
  [[nodiscard]] EventTracer* tracer() const { return tracer_; }

 private:
  MetricsRegistry* metrics_{nullptr};
  EventTracer* tracer_{nullptr};
};

// Null-safe helpers for cached metric pointers.
inline void add(Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) c->add(n);
}
inline void record(Histogram* h, double v) {
  if (h != nullptr) h->record(v);
}
inline void set_max(Gauge* g, double v) {
  if (g != nullptr) g->set_max(v);
}

}  // namespace flattree::obs
