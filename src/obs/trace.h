// Structured event tracing with ring-buffered spans.
//
// Components emit spans (a named interval on a track) and instants into a
// bounded ring buffer; the tracer exports Chrome trace_event JSON (loadable
// in chrome://tracing or ui.perfetto.dev) and a compact text summary.
//
// Timestamps are never wall-clock: the simulators stamp events with
// *simulated* time and clockless components (the control plane) use the
// tracer's logical tick, so a trace is replayable — the same seed produces
// the same spans. With multiple threads emitting (cells fanned across the
// exec pool), the ring is mutex-guarded (race-free under TSan) but the
// interleaving of events from different cells is scheduling-dependent;
// single-threaded runs are byte-reproducible. The deterministic layer is the
// metrics registry — the trace is the microscope, not the regression
// baseline.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

namespace flattree::obs {

struct TraceEvent {
  static constexpr std::int64_t kNoArg = std::numeric_limits<std::int64_t>::min();

  double ts_us{0.0};
  double dur_us{0.0};
  std::uint32_t track{0};  // rendered as the chrome tid
  char phase{'i'};         // 'X' complete span, 'i' instant
  // Expected to be string literals (static storage); the ring stores the
  // pointers, not copies.
  const char* cat{""};
  const char* name{""};
  std::int64_t arg{kNoArg};
};

class EventTracer {
 public:
  explicit EventTracer(std::size_t capacity = 1 << 16);
  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  // A named interval [ts_s, ts_s + dur_s) on `track` (e.g. a flow's life,
  // a repair phase). `cat`/`name` must be string literals.
  void span(const char* cat, const char* name, double ts_s, double dur_s,
            std::uint32_t track = 0,
            std::int64_t arg = TraceEvent::kNoArg);

  // A point event at ts_s.
  void instant(const char* cat, const char* name, double ts_s,
               std::uint32_t track = 0,
               std::int64_t arg = TraceEvent::kNoArg);

  // Point event for clockless components: the timestamp is the tracer's
  // monotone logical tick (1 us apart), deterministic when emitted serially.
  void mark(const char* cat, const char* name, std::uint32_t track = 0,
            std::int64_t arg = TraceEvent::kNoArg);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  // Events overwritten after the ring filled (oldest-first eviction).
  [[nodiscard]] std::uint64_t dropped() const;

  // Chrome trace_event JSON: {"traceEvents":[...]}; oldest event first.
  [[nodiscard]] std::string chrome_trace_json() const;
  // Per-(cat, name) event counts and total span time, sorted by name.
  [[nodiscard]] std::string text_summary() const;
  // Writes chrome_trace_json() to `path` (atomically via a sibling temp
  // file + rename). Returns false and fills *error on failure.
  bool write_chrome_trace(const std::string& path,
                          std::string* error = nullptr) const;

  void clear();

 private:
  void push(TraceEvent event);
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;  // oldest first

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_{0};  // write cursor once the ring is full
  bool full_{false};
  std::uint64_t dropped_{0};
  std::uint64_t logical_{0};  // tick for mark()
};

}  // namespace flattree::obs
