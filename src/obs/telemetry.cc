#include "obs/telemetry.h"

#include <charconv>
#include <cmath>

namespace flattree::obs {
namespace {

// Shortest-round-trip decimal, matching metrics.cc / exec/results.cc so
// every deterministic JSON export in the tree formats numbers identically.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

}  // namespace

void PairTelemetry::record(const FlowRecord& record) {
  PairCounters& c = pairs_[{record.src, record.dst}];
  ++c.flows;
  c.bytes += record.bytes;
  if (record.completed) {
    ++c.completed;
    c.fct_sum_s += record.fct_s;
  }
  total_bytes_ += record.bytes;
  ++total_flows_;
}

void PairTelemetry::record_all(const std::vector<FlowRecord>& records) {
  for (const FlowRecord& r : records) record(r);
}

void PairTelemetry::merge(const PairTelemetry& other) {
  for (const auto& [key, c] : other.pairs_) {
    PairCounters& mine = pairs_[key];
    mine.flows += c.flows;
    mine.completed += c.completed;
    mine.bytes += c.bytes;
    mine.fct_sum_s += c.fct_sum_s;
  }
  total_bytes_ += other.total_bytes_;
  total_flows_ += other.total_flows_;
}

void PairTelemetry::clear() {
  pairs_.clear();
  total_bytes_ = 0.0;
  total_flows_ = 0;
}

std::string PairTelemetry::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, c] : pairs_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_uint(out, key.first);
    out += "-";
    append_uint(out, key.second);
    out += "\":{\"flows\":";
    append_uint(out, c.flows);
    out += ",\"completed\":";
    append_uint(out, c.completed);
    out += ",\"bytes\":";
    append_double(out, c.bytes);
    out += ",\"fct_sum_s\":";
    append_double(out, c.fct_sum_s);
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace flattree::obs
