#include "obs/trace.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

namespace flattree::obs {
namespace {

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

void append_escaped(std::string& out, const char* s) {
  out.push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

EventTracer::EventTracer(std::size_t capacity)
    : capacity_{capacity == 0 ? 1 : capacity} {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void EventTracer::push(TraceEvent event) {
  std::lock_guard lock{mutex_};
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  full_ = true;
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

void EventTracer::span(const char* cat, const char* name, double ts_s,
                       double dur_s, std::uint32_t track, std::int64_t arg) {
  TraceEvent event;
  event.ts_us = ts_s * 1e6;
  event.dur_us = dur_s * 1e6;
  event.track = track;
  event.phase = 'X';
  event.cat = cat;
  event.name = name;
  event.arg = arg;
  push(event);
}

void EventTracer::instant(const char* cat, const char* name, double ts_s,
                          std::uint32_t track, std::int64_t arg) {
  TraceEvent event;
  event.ts_us = ts_s * 1e6;
  event.track = track;
  event.phase = 'i';
  event.cat = cat;
  event.name = name;
  event.arg = arg;
  push(event);
}

void EventTracer::mark(const char* cat, const char* name, std::uint32_t track,
                       std::int64_t arg) {
  TraceEvent event;
  {
    std::lock_guard lock{mutex_};
    event.ts_us = static_cast<double>(logical_++);
  }
  event.track = track;
  event.phase = 'i';
  event.cat = cat;
  event.name = name;
  event.arg = arg;
  push(event);
}

std::size_t EventTracer::size() const {
  std::lock_guard lock{mutex_};
  return ring_.size();
}

std::uint64_t EventTracer::dropped() const {
  std::lock_guard lock{mutex_};
  return dropped_;
}

std::vector<TraceEvent> EventTracer::snapshot() const {
  std::lock_guard lock{mutex_};
  if (!full_) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

std::string EventTracer::chrome_trace_json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "\n{\"name\":";
    append_escaped(out, event.name);
    out += ",\"cat\":";
    append_escaped(out, event.cat);
    out += ",\"ph\":\"";
    out.push_back(event.phase);
    out += "\",\"ts\":";
    append_double(out, event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur\":";
      append_double(out, event.dur_us);
    }
    out += ",\"pid\":0,\"tid\":";
    append_double(out, static_cast<double>(event.track));
    if (event.arg != TraceEvent::kNoArg) {
      out += ",\"args\":{\"value\":";
      char buf[24];
      const auto r = std::to_chars(buf, buf + sizeof(buf), event.arg);
      out.append(buf, r.ptr);
      out += "}";
    } else if (event.phase == 'i') {
      out += ",\"s\":\"g\"";  // global-scope instant: visible at any zoom
    }
    out.push_back('}');
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

std::string EventTracer::text_summary() const {
  const std::vector<TraceEvent> events = snapshot();
  struct Agg {
    std::uint64_t count{0};
    double span_us{0.0};
  };
  std::map<std::pair<std::string, std::string>, Agg> by_name;
  for (const TraceEvent& event : events) {
    Agg& agg = by_name[{event.cat, event.name}];
    ++agg.count;
    if (event.phase == 'X') agg.span_us += event.dur_us;
  }
  std::string out;
  for (const auto& [key, agg] : by_name) {
    out += key.first + "/" + key.second + ": ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu event%s",
                  static_cast<unsigned long long>(agg.count),
                  agg.count == 1 ? "" : "s");
    out += buf;
    if (agg.span_us > 0) {
      std::snprintf(buf, sizeof(buf), ", %.3f ms spanned", agg.span_us / 1e3);
      out += buf;
    }
    out.push_back('\n');
  }
  {
    std::lock_guard lock{mutex_};
    if (dropped_ > 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "(ring overflow: %llu oldest dropped)\n",
                    static_cast<unsigned long long>(dropped_));
      out += buf;
    }
  }
  return out;
}

bool EventTracer::write_chrome_trace(const std::string& path,
                                     std::string* error) const {
  const std::string payload = chrome_trace_json();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + tmp;
    return false;
  }
  const bool wrote =
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    if (error != nullptr) *error = "short write to " + tmp;
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void EventTracer::clear() {
  std::lock_guard lock{mutex_};
  ring_.clear();
  next_ = 0;
  full_ = false;
  dropped_ = 0;
  logical_ = 0;
}

}  // namespace flattree::obs
