#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace flattree::obs {
namespace {

// Shortest-round-trip decimal, matching exec/results.cc exactly so the
// metrics block folded into BENCH_<name>.json and the standalone metrics
// file format numbers identically.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_{std::move(bounds)},
      buckets_(bounds_.size() + 1),
      min_{std::numeric_limits<double>::infinity()},
      max_{-std::numeric_limits<double>::infinity()} {
  // Strictly ascending: a duplicated bound would be a dead bucket.
  if (std::adjacent_find(bounds_.begin(), bounds_.end(),
                         [](double a, double b) { return a >= b; }) !=
      bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name, MetricScope scope) {
  std::lock_guard lock{mutex_};
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.scope = scope;
    entry.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string{name}, std::move(entry)).first;
  }
  if (it->second.counter == nullptr) {
    throw std::logic_error("metric '" + std::string{name} +
                           "' already registered with a different type");
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, MetricScope scope) {
  std::lock_guard lock{mutex_};
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.scope = scope;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string{name}, std::move(entry)).first;
  }
  if (it->second.gauge == nullptr) {
    throw std::logic_error("metric '" + std::string{name} +
                           "' already registered with a different type");
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      MetricScope scope) {
  std::lock_guard lock{mutex_};
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.scope = scope;
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = entries_.emplace(std::string{name}, std::move(entry)).first;
  }
  if (it->second.histogram == nullptr) {
    throw std::logic_error("metric '" + std::string{name} +
                           "' already registered with a different type");
  }
  return *it->second.histogram;
}

std::string MetricsRegistry::metrics_object_json(
    bool include_diagnostic) const {
  std::lock_guard lock{mutex_};
  std::string out = "{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.scope == MetricScope::kDiagnostic && !include_diagnostic) {
      continue;
    }
    if (!first) out.push_back(',');
    first = false;
    out += "\n  \"" + name + "\":{";
    if (entry.counter != nullptr) {
      out += "\"type\":\"counter\",\"value\":";
      append_uint(out, entry.counter->value());
    } else if (entry.gauge != nullptr) {
      out += "\"type\":\"gauge\",\"value\":";
      append_double(out, entry.gauge->value());
    } else {
      const Histogram& h = *entry.histogram;
      out += "\"type\":\"histogram\",\"count\":";
      append_uint(out, h.count());
      if (h.count() > 0) {
        out += ",\"min\":";
        append_double(out, h.min());
        out += ",\"max\":";
        append_double(out, h.max());
      }
      out += ",\"bounds\":[";
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        if (i != 0) out.push_back(',');
        append_double(out, h.bounds()[i]);
      }
      out += "],\"counts\":[";
      for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
        if (i != 0) out.push_back(',');
        append_uint(out, h.bucket_count(i));
      }
      out += "]";
    }
    out.push_back('}');
  }
  out += first ? "}" : "\n}";
  return out;
}

std::string MetricsRegistry::to_json(bool include_diagnostic) const {
  return "{\"metrics\":" + metrics_object_json(include_diagnostic) + "}\n";
}

std::string MetricsRegistry::text_summary() const {
  std::lock_guard lock{mutex_};
  std::string out;
  for (const auto& [name, entry] : entries_) {
    out += name;
    if (entry.scope == MetricScope::kDiagnostic) out += " [diagnostic]";
    out += " = ";
    if (entry.counter != nullptr) {
      append_uint(out, entry.counter->value());
    } else if (entry.gauge != nullptr) {
      append_double(out, entry.gauge->value());
    } else {
      const Histogram& h = *entry.histogram;
      out += "count ";
      append_uint(out, h.count());
      if (h.count() > 0) {
        out += ", min ";
        append_double(out, h.min());
        out += ", max ";
        append_double(out, h.max());
      }
    }
    out.push_back('\n');
  }
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock{mutex_};
  return entries_.size();
}

void MetricsRegistry::reset() {
  std::lock_guard lock{mutex_};
  for (auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) entry.counter->reset();
    if (entry.gauge != nullptr) entry.gauge->reset();
    if (entry.histogram != nullptr) entry.histogram->reset();
  }
}

}  // namespace flattree::obs
