// Per-pair flow telemetry: the counter export the closed-loop control
// plane consumes.
//
// The metrics registry (obs/metrics.h) aggregates by *name*, which is the
// right shape for fabric-wide counters but not for the per-server-pair
// FCT/bytes streams a demand estimator folds — a string per pair would
// allocate on the hot path and serialize the registry mutex. This module is
// the structured sibling: simulators export FlowRecords (one per flow:
// endpoints, acked bytes, FCT), and PairTelemetry aggregates them into
// per-directed-pair counters with the same determinism contract as the
// registry — the aggregate is a pure function of the record multiset
// (commutative adds, ordered storage), so merging shards or thread counts
// never changes the exported bytes.
//
// Producers: collect_flow_records (sim/fluid.h) for the fluid simulator,
// PacketSim::export_flow_records for the packet simulator. Consumer:
// TrafficMatrixEstimator (control/autopilot/estimator.h).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace flattree::obs {

// One flow's telemetry, as both simulators report it. `src`/`dst` are
// global server indices (the NodeId values of every realized graph);
// `bytes` is what the transport actually delivered (acked bytes for the
// packet sim, the flow size for a completed fluid flow).
struct FlowRecord {
  std::uint32_t src{0};
  std::uint32_t dst{0};
  double bytes{0.0};
  double start_s{0.0};
  double fct_s{0.0};     // meaningful only when completed
  bool completed{false};
};

// Per-directed-pair aggregate counters.
struct PairCounters {
  std::uint64_t flows{0};
  std::uint64_t completed{0};
  double bytes{0.0};
  double fct_sum_s{0.0};  // over completed flows only
};

// Deterministic per-pair accumulator. Storage is ordered by (src, dst), so
// iteration and export order never depend on insertion order; record() and
// merge() are commutative in the value domain (sums of doubles folded in
// key order), so a fixed record multiset always exports identical bytes.
// Not thread-safe: shards each own one and merge sequentially, exactly like
// the exec layer's result rows.
class PairTelemetry {
 public:
  void record(const FlowRecord& record);
  void record_all(const std::vector<FlowRecord>& records);
  void merge(const PairTelemetry& other);

  [[nodiscard]] const std::map<std::pair<std::uint32_t, std::uint32_t>,
                               PairCounters>&
  pairs() const {
    return pairs_;
  }
  [[nodiscard]] std::size_t pair_count() const { return pairs_.size(); }
  [[nodiscard]] double total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_flows() const { return total_flows_; }
  void clear();

  // {"src-dst":{"flows":...,"completed":...,"bytes":...,"fct_sum_s":...},...}
  // sorted by pair, shortest-round-trip doubles — byte-identical for a
  // fixed record multiset.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::pair<std::uint32_t, std::uint32_t>, PairCounters> pairs_;
  double total_bytes_{0.0};
  std::uint64_t total_flows_{0};
};

}  // namespace flattree::obs
