// Deterministic metrics substrate for both simulators and the control plane.
//
// The evaluation reasons about *internal* dynamics — subflow ramp-up against
// the LP bounds (Fig 6), conversion blackout windows (Table 3 / Fig 10),
// rule-table churn during rewiring — so every layer exposes counters, gauges
// and fixed-bucket histograms through one registry instead of ad-hoc printf
// instrumentation per PR.
//
// Determinism contract (what the obs determinism tests pin down):
//   * Every mutation is a commutative aggregation — counter add, histogram
//     bucket add, gauge set_max — performed with relaxed atomics, so the
//     final value of a metric is a pure function of the *multiset* of
//     updates, never of thread interleaving. Experiment cells fanned across
//     the exec pool produce the same multiset for a fixed seed, hence the
//     exported JSON is byte-identical across thread counts.
//   * Gauge::set (last-write-wins) is the one order-dependent mutation; it
//     is for serial contexts or kDiagnostic metrics only.
//   * Metrics whose value depends on scheduling or wall clock (pool steal
//     counts, task latencies) are registered kDiagnostic and excluded from
//     the deterministic JSON export; they appear in the text summary only.
//   * Export order is sorted by metric name, independent of registration
//     order (cells may register concurrently in any order).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace flattree::obs {

enum class MetricScope : std::uint8_t {
  kDeterministic,  // pure function of the seed; exported to the metrics JSON
  kDiagnostic,     // scheduling/wall-clock dependent; text summary only
};

// Monotonic event count. add() is safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time value. set() is last-write-wins and therefore only
// deterministic from serial contexts; set_max() is a commutative running
// maximum, safe from parallel cells.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void set_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
// one implicit overflow bucket catches everything above the last bound.
// Tracks count/min/max (all commutative aggregations); deliberately no sum —
// floating-point accumulation order would leak thread scheduling into the
// exported bytes.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the last index is the overflow bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// Named metric registry. Lookups create on first use and return stable
// references (metrics are never deleted); creation is mutex-guarded so cells
// running on the exec pool may register concurrently. Re-requesting a name
// with a different metric type throws std::logic_error; re-requesting a
// histogram with different bounds keeps the original bounds.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name,
                   MetricScope scope = MetricScope::kDeterministic);
  Gauge& gauge(std::string_view name,
               MetricScope scope = MetricScope::kDeterministic);
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       MetricScope scope = MetricScope::kDeterministic);

  // The inner JSON object: {"name":{"type":...},...}, sorted by name,
  // shortest-round-trip doubles. Diagnostic metrics are excluded unless
  // `include_diagnostic` — the deterministic export must not depend on
  // scheduling.
  [[nodiscard]] std::string metrics_object_json(
      bool include_diagnostic = false) const;
  // Full payload for --metrics-out: {"metrics":{...}} plus trailing newline.
  [[nodiscard]] std::string to_json(bool include_diagnostic = false) const;

  // Human-readable dump of every metric (diagnostic ones flagged).
  [[nodiscard]] std::string text_summary() const;

  [[nodiscard]] std::size_t size() const;
  void reset();  // zeroes every metric; registrations survive

 private:
  struct Entry {
    MetricScope scope{MetricScope::kDeterministic};
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace flattree::obs
