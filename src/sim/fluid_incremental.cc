#include "sim/fluid_incremental.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace flattree {

namespace {
constexpr std::uint32_t kNone = IncrementalMaxMinSolver::kNone;
}  // namespace

void IncrementalMaxMinSolver::reset(std::vector<double> capacity,
                                    std::size_t flow_slots) {
  edges_.assign(capacity.size(), EdgeRec{});
  for (std::size_t e = 0; e < capacity.size(); ++e) {
    edges_[e].capacity = capacity[e];
  }
  flows_.assign(flow_slots, FlowRec{});
  subflows_.clear();
  free_subflows_.clear();
  rounds_.clear();
  trace_valid_ = false;
  total_edged_ = 0;
  epoch_ = 0;
  pending_gen_ = 1;
  flow_touch_gen_ = 1;
  pending_dirty_.clear();
  dirty_list_.clear();
  buckets_.clear();
  cnt_buf_.clear();
  cnt_used_.clear();
  flow_touch_epoch_.assign(flow_slots, 0);
  flows_touched_pending_ = 0;
  stats_ = IncrementalSolveStats{};
}

void IncrementalMaxMinSolver::mark_pending(std::uint32_t edge) {
  EdgeRec& e = edges_[edge];
  if (e.pending_epoch == pending_gen_) return;
  e.pending_epoch = pending_gen_;
  pending_dirty_.push_back(edge);
}

void IncrementalMaxMinSolver::touch_flow(std::uint32_t slot) {
  if (flow_touch_epoch_[slot] == flow_touch_gen_) return;
  flow_touch_epoch_[slot] = flow_touch_gen_;
  ++flows_touched_pending_;
}

std::uint32_t IncrementalMaxMinSolver::alloc_subflow() {
  if (!free_subflows_.empty()) {
    const std::uint32_t s = free_subflows_.back();
    free_subflows_.pop_back();
    return s;
  }
  subflows_.emplace_back();
  return static_cast<std::uint32_t>(subflows_.size() - 1);
}

void IncrementalMaxMinSolver::set_capacity(std::uint32_t edge,
                                           double capacity) {
  EdgeRec& e = edges_[edge];
  if (e.capacity == capacity) return;
  e.capacity = capacity;
  mark_pending(edge);
}

void IncrementalMaxMinSolver::add_flow(
    std::uint32_t slot,
    const std::vector<std::vector<std::uint32_t>>& path_edges) {
  if (slot >= flows_.size()) {
    throw std::invalid_argument("incremental mcf: flow slot out of range");
  }
  FlowRec& flow = flows_[slot];
  if (flow.present) {
    throw std::logic_error("incremental mcf: flow slot already present");
  }
  flow.present = true;
  touch_flow(slot);
  flow.subflows.reserve(path_edges.size());
  for (const auto& path : path_edges) {
    const std::uint32_t s = alloc_subflow();
    SubflowRec& sub = subflows_[s];
    sub.flow = slot;
    sub.freeze_round = kNone;
    sub.edges = path;
    sub.edge_pos.resize(path.size());
    for (std::size_t i = 0; i < path.size(); ++i) {
      const std::uint32_t e = path[i];
      if (e >= edges_.size()) {
        throw std::invalid_argument("incremental mcf: edge index out of range");
      }
      sub.edge_pos[i] = static_cast<std::uint32_t>(edges_[e].crossers.size());
      edges_[e].crossers.emplace_back(s, static_cast<std::uint32_t>(i));
      mark_pending(e);
    }
    if (!path.empty()) ++total_edged_;
    flow.subflows.push_back(s);
  }
}

void IncrementalMaxMinSolver::detach_subflow(std::uint32_t s) {
  SubflowRec& sub = subflows_[s];
  for (std::size_t i = 0; i < sub.edges.size(); ++i) {
    const std::uint32_t e = sub.edges[i];
    auto& crossers = edges_[e].crossers;
    const std::uint32_t pos = sub.edge_pos[i];
    const auto moved = crossers.back();
    crossers[pos] = moved;
    subflows_[moved.first].edge_pos[moved.second] = pos;
    crossers.pop_back();
    mark_pending(e);
  }
  sub.edges.clear();
  sub.edge_pos.clear();
  sub.flow = kNone;
  sub.freeze_round = kNone;
  free_subflows_.push_back(s);
}

void IncrementalMaxMinSolver::remove_flow(std::uint32_t slot) {
  if (slot >= flows_.size() || !flows_[slot].present) return;
  touch_flow(slot);
  FlowRec& flow = flows_[slot];
  for (const std::uint32_t s : flow.subflows) {
    SubflowRec& sub = subflows_[s];
    if (!sub.edges.empty()) --total_edged_;
    if (sub.freeze_round != kNone && sub.freeze_round < rounds_.size()) {
      --rounds_[sub.freeze_round].frozen;
    }
    detach_subflow(s);
  }
  flow.subflows.clear();
  flow.present = false;
}

void IncrementalMaxMinSolver::update_flow(
    std::uint32_t slot,
    const std::vector<std::vector<std::uint32_t>>& path_edges) {
  remove_flow(slot);
  add_flow(slot, path_edges);
}

void IncrementalMaxMinSolver::make_dirty(std::uint32_t edge,
                                         std::uint32_t upto) {
  EdgeRec& e = edges_[edge];
  if (is_dirty(e)) return;
  e.dirty_epoch = epoch_;
  dirty_list_.push_back(edge);
  // Any cached saturation round at or past the current replay point is
  // stale; replay re-establishes it if the edge still saturates. (An edge
  // can only be dirtied at a round <= its cached saturation round: a later
  // dirtying would require an unfrozen crosser, but saturation froze them
  // all.)
  assert(upto == kNone || e.sat_round == kNone || e.sat_round >= upto);
  e.sat_round = kNone;

  const std::uint32_t cur = (upto == kNone) ? 0 : upto;
  if (upto == kNone) {
    // Pre-round-0: nothing has filled yet.
    e.residual = e.capacity;
    e.active = static_cast<std::uint32_t>(e.crossers.size());
  } else {
    // Re-derive residual/active at the end of round `upto` (post-decrement)
    // with the cached deltas — the exact floating-point sequence the
    // scratch solver would have produced for this edge's current crosser
    // set. Crossers frozen at rounds < upto are finalized; crossers frozen
    // at `upto` leave the active count only once their freeze is confirmed
    // (duty-decrements handle pending ones later this round).
    if (cnt_buf_.size() < rounds_.size()) cnt_buf_.resize(rounds_.size(), 0);
    std::uint32_t confirmed_now = 0;
    for (const auto& [s, pos] : e.crossers) {
      (void)pos;
      const std::uint32_t fr = subflows_[s].freeze_round;
      if (fr == kNone || fr > upto) continue;
      if (fr == upto) {
        if (subflows_[s].confirm_epoch == epoch_) ++confirmed_now;
        continue;
      }
      if (cnt_buf_[fr]++ == 0) cnt_used_.push_back(fr);
    }
    double residual = e.capacity;
    std::uint32_t a = static_cast<std::uint32_t>(e.crossers.size());
    for (std::uint32_t j = 0; j <= upto; ++j) {
      if (a > 0) {
        residual = std::max(0.0, residual - rounds_[j].delta * a);
      }
      if (j < upto) a -= cnt_buf_[j];
    }
    for (const std::uint32_t j : cnt_used_) cnt_buf_[j] = 0;
    cnt_used_.clear();
    e.residual = residual;
    e.active = a - confirmed_now;
  }

  // Schedule still-pending crossers for re-verification at their cached
  // freeze rounds; they also owe this edge an active-decrement when their
  // freeze is confirmed.
  for (const auto& [s, pos] : e.crossers) {
    (void)pos;
    SubflowRec& sub = subflows_[s];
    const std::uint32_t fr = sub.freeze_round;
    if (fr == kNone || fr < cur) continue;
    if (fr == cur && upto != kNone && sub.confirm_epoch == epoch_) continue;
    if (sub.bucket_epoch == epoch_) continue;
    sub.bucket_epoch = epoch_;
    buckets_[fr].push_back(s);
    touch_flow(sub.flow);
  }
}

void IncrementalMaxMinSolver::finalize_freeze(std::uint32_t s,
                                              std::uint32_t round) {
  SubflowRec& sub = subflows_[s];
  const std::uint32_t old = sub.freeze_round;
  sub.confirm_epoch = epoch_;
  touch_flow(sub.flow);
  const bool moved = (old != round);
  if (moved) {
    if (old != kNone) --rounds_[old].frozen;
    ++rounds_[round].frozen;
    sub.freeze_round = round;
  }
  for (const std::uint32_t e : sub.edges) {
    EdgeRec& edge = edges_[e];
    if (is_dirty(edge)) {
      assert(edge.active > 0);
      --edge.active;
    } else if (moved) {
      // The clean edge's cached trajectory assumed this subflow stayed
      // active until `old`; it froze at `round` instead. Materialization
      // sees the new freeze round (set above) and excludes the confirmed
      // freeze from the post-round active count.
      make_dirty(e, round);
    }
  }
}

void IncrementalMaxMinSolver::replay() {
  const std::uint32_t cached_rounds =
      static_cast<std::uint32_t>(rounds_.size());
  std::size_t unfrozen_edged = total_edged_;
  std::vector<std::uint32_t> dirty_ach;

  for (std::uint32_t r = 0; r < cached_rounds; ++r) {
    if (unfrozen_edged == 0) {
      // Every edged subflow froze by round r-1: the remaining cached
      // rounds can no longer occur (their freezers were removed or froze
      // earlier — all of which dirtied the edges involved).
      rounds_.resize(r);
      break;
    }
    Round& rd = rounds_[r];

    // Fair share of the dirty edges this round.
    double dmin = std::numeric_limits<double>::infinity();
    std::uint32_t dmin_id = kNone;
    dirty_ach.clear();
    for (const std::uint32_t e : dirty_list_) {
      const EdgeRec& edge = edges_[e];
      if (edge.active == 0) continue;
      const double h = edge.residual / edge.active;
      if (h < dmin) {
        dmin = h;
        dmin_id = e;
        dirty_ach.clear();
        dirty_ach.push_back(e);
      } else if (h == dmin) {
        dirty_ach.push_back(e);
        dmin_id = std::min(dmin_id, e);
      }
    }

    if (dmin < rd.delta) {
      // A dirty edge's fair share undercuts the cached level: a new round
      // must be inserted here, shifting every later level's floating-point
      // trajectory. Re-solve from this level.
      fallback_from(r);
      return;
    }
    if (dmin > rd.delta) {
      // The cached level must still be pinned by a clean edge; otherwise
      // the min may have risen and the whole tail shifts.
      bool clean_ms = false;
      for (std::uint8_t i = 0; i < rd.ms_n; ++i) {
        if (!is_dirty(edges_[rd.ms[i]])) {
          clean_ms = true;
          break;
        }
      }
      if (!clean_ms) {
        fallback_from(r);
        return;
      }
    }

    // Decrement the dirty edges by the (validated) cached delta. Clean
    // edges' residuals evolve exactly as cached — nothing to do.
    const std::size_t dirty_n = dirty_list_.size();
    for (std::size_t i = 0; i < dirty_n; ++i) {
      EdgeRec& edge = edges_[dirty_list_[i]];
      if (edge.active > 0) {
        edge.residual = std::max(0.0, edge.residual - rd.delta * edge.active);
      }
    }

    // Saturation scan over the dirty edges (clean edges saturate exactly
    // per cache; their crossers are already counted frozen). Edges dirtied
    // mid-round by the freezes below enter with their cached round-r
    // residual and provably cannot saturate here, so the pre-scan snapshot
    // of the dirty list is the complete saturation set.
    bool dirty_froze = false;
    for (std::size_t i = 0; i < dirty_n; ++i) {
      const std::uint32_t eid = dirty_list_[i];
      EdgeRec& edge = edges_[eid];
      if (edge.active == 0 || edge.residual > thresh(edge)) continue;
      edge.sat_round = r;
      for (std::size_t c = 0; c < edge.crossers.size(); ++c) {
        const std::uint32_t s = edge.crossers[c].first;
        const SubflowRec& sub = subflows_[s];
        const bool frozen_now =
            sub.freeze_round < r ||
            (sub.freeze_round == r && sub.confirm_epoch == epoch_);
        if (frozen_now) continue;
        dirty_froze = true;
        finalize_freeze(s, r);
      }
    }

    // Re-verify the scheduled subflows whose cached freeze round is r: a
    // subflow keeps its cached freeze iff one of its edges still saturates
    // at r. The queue grows when a diverging subflow dirties edges whose
    // pending crossers are also due at r.
    if (auto it = buckets_.find(r); it != buckets_.end()) {
      auto& queue = it->second;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        const std::uint32_t s = queue[i];
        SubflowRec& sub = subflows_[s];
        if (sub.freeze_round != r) continue;  // froze earlier or diverged
        if (sub.confirm_epoch == epoch_) continue;
        bool saturated = false;
        for (const std::uint32_t e : sub.edges) {
          if (edges_[e].sat_round == r) {
            saturated = true;
            break;
          }
        }
        if (saturated) {
          finalize_freeze(s, r);
        } else {
          // Diverges: stays unfrozen past r. Its edges carry it longer
          // than their cached trajectories assumed.
          --rd.frozen;
          sub.freeze_round = kNone;
          touch_flow(sub.flow);
          for (const std::uint32_t e : sub.edges) {
            if (!is_dirty(edges_[e])) make_dirty(e, r);
          }
        }
      }
    }

    if (rd.frozen == 0) {
      // The round vanished (its freezers all moved or left): the level
      // structure from here on is different. Re-solve the tail.
      fallback_from(r);
      return;
    }
    if (rd.forced &&
        (dirty_froze || is_dirty(edges_[rd.argmin]) ||
         (dmin == rd.delta && dmin_id < rd.argmin))) {
      // Forced freezes are floating-point residue tie-breaks on the
      // argmin edge; any dirty interference can change the pick. Cheaper
      // to re-solve than to re-derive the tie-break.
      fallback_from(r);
      return;
    }

    // Refresh the min-achiever head: drop dirty members whose fair share
    // moved off the level, merge dirty edges that now sit exactly on it.
    std::uint32_t new_ms[8];
    std::uint8_t new_n = 0;
    for (std::uint8_t i = 0; i < rd.ms_n; ++i) {
      if (!is_dirty(edges_[rd.ms[i]])) {
        if (new_n < 8) new_ms[new_n++] = rd.ms[i];
      }
    }
    if (dmin == rd.delta) {
      for (const std::uint32_t e : dirty_ach) {
        if (new_n < 8) new_ms[new_n++] = e;
      }
      for (std::uint8_t i = 1; i < new_n; ++i) {
        const std::uint32_t v = new_ms[i];
        std::uint8_t j = i;
        while (j > 0 && new_ms[j - 1] > v) {
          new_ms[j] = new_ms[j - 1];
          --j;
        }
        new_ms[j] = v;
      }
      if (dmin_id < rd.argmin) rd.argmin = dmin_id;
    }
    rd.ms_n = new_n;
    std::copy(new_ms, new_ms + new_n, rd.ms);

    assert(unfrozen_edged >= rd.frozen);
    unfrozen_edged -= rd.frozen;
    ++stats_.rounds_replayed;
  }

  if (unfrozen_edged > 0) {
    // Cached rounds exhausted with live subflows left: new arrivals and
    // diverged subflows (whose edges are all dirty by construction) fill
    // on above the cached levels.
    std::vector<std::uint32_t> active_edges;
    for (const std::uint32_t e : dirty_list_) {
      if (edges_[e].active > 0) active_edges.push_back(e);
    }
    std::sort(active_edges.begin(), active_edges.end());
    const double prefix = rounds_.empty() ? 0.0 : rounds_.back().prefix;
    scratch_fill(std::move(active_edges), prefix, unfrozen_edged);
  }

  stats_.links_touched = dirty_list_.size();
}

void IncrementalMaxMinSolver::fallback_from(std::uint32_t from) {
  if (from == 0) stats_.full_resolve = true;

  // Rewind every subflow frozen at or past the divergence level.
  for (SubflowRec& sub : subflows_) {
    if (sub.flow == kNone) continue;
    if (sub.freeze_round != kNone && sub.freeze_round >= from) {
      sub.freeze_round = kNone;
    }
  }
  std::size_t unfrozen_edged = 0;
  for (const SubflowRec& sub : subflows_) {
    if (sub.flow == kNone || sub.edges.empty()) continue;
    if (sub.freeze_round == kNone) ++unfrozen_edged;
  }

  // Materialize every used edge at the pre-round-`from` state by replaying
  // the kept rounds' deltas against the current crosser set — the same
  // floating-point sequence the scratch solver performs.
  std::uint64_t touched = 0;
  std::vector<std::uint32_t> active_edges;
  if (cnt_buf_.size() < rounds_.size()) cnt_buf_.resize(rounds_.size(), 0);
  for (std::uint32_t eid = 0; eid < edges_.size(); ++eid) {
    EdgeRec& e = edges_[eid];
    if (e.sat_round != kNone && e.sat_round >= from) e.sat_round = kNone;
    if (e.crossers.empty()) continue;
    ++touched;
    for (const auto& [s, pos] : e.crossers) {
      (void)pos;
      const std::uint32_t fr = subflows_[s].freeze_round;
      if (fr == kNone) continue;
      assert(fr < from);
      if (cnt_buf_[fr]++ == 0) cnt_used_.push_back(fr);
    }
    double residual = e.capacity;
    std::uint32_t a = static_cast<std::uint32_t>(e.crossers.size());
    for (std::uint32_t j = 0; j < from; ++j) {
      if (a > 0) residual = std::max(0.0, residual - rounds_[j].delta * a);
      a -= cnt_buf_[j];
    }
    for (const std::uint32_t j : cnt_used_) cnt_buf_[j] = 0;
    cnt_used_.clear();
    e.residual = residual;
    e.active = a;
    e.dirty_epoch = epoch_;  // explicit from here on
    if (a > 0) active_edges.push_back(eid);
  }
  stats_.links_touched = touched;

  rounds_.resize(from);
  const double prefix = from > 0 ? rounds_[from - 1].prefix : 0.0;
  scratch_fill(std::move(active_edges), prefix, unfrozen_edged);
}

void IncrementalMaxMinSolver::scratch_fill(
    std::vector<std::uint32_t> active_edges, double prefix,
    std::size_t unfrozen_edged) {
  // The solve_max_min_fill loop, restricted to the edges that can still
  // constrain anything (every edge with an unfrozen crosser is in
  // `active_edges`, in ascending id order — the scratch scan order — so
  // min, argmin and the freeze sweep are bitwise identical to scanning the
  // full edge array). Records the trace rounds it produces.
  while (unfrozen_edged > 0) {
    double delta = std::numeric_limits<double>::infinity();
    std::uint32_t argmin = kNone;
    Round rd;
    for (const std::uint32_t e : active_edges) {
      const EdgeRec& edge = edges_[e];
      if (edge.active == 0) continue;
      const double h = edge.residual / edge.active;
      if (h < delta) {
        delta = h;
        argmin = e;
        rd.ms_n = 1;
        rd.ms[0] = e;
      } else if (h == delta && rd.ms_n < 8) {
        rd.ms[rd.ms_n++] = e;
      }
    }
    if (!std::isfinite(delta)) break;  // only edgeless subflows remain
    delta = std::max(delta, 0.0);
    prefix += delta;

    for (const std::uint32_t e : active_edges) {
      EdgeRec& edge = edges_[e];
      if (edge.active > 0) {
        edge.residual = std::max(0.0, edge.residual - delta * edge.active);
      }
    }

    const std::uint32_t round_idx = static_cast<std::uint32_t>(rounds_.size());
    std::uint32_t frozen = 0;
    const auto freeze_edge = [&](std::uint32_t eid) {
      EdgeRec& edge = edges_[eid];
      edge.sat_round = round_idx;
      for (std::size_t c = 0; c < edge.crossers.size(); ++c) {
        const std::uint32_t s = edge.crossers[c].first;
        SubflowRec& sub = subflows_[s];
        if (sub.freeze_round != kNone) continue;
        sub.freeze_round = round_idx;
        sub.confirm_epoch = epoch_;
        ++frozen;
        --unfrozen_edged;
        touch_flow(sub.flow);
        for (const std::uint32_t pe : sub.edges) {
          EdgeRec& other = edges_[pe];
          assert(other.active > 0);
          --other.active;
        }
      }
    };
    for (const std::uint32_t e : active_edges) {
      const EdgeRec& edge = edges_[e];
      if (edge.active == 0 || edge.residual > thresh(edge)) continue;
      freeze_edge(e);
    }
    if (frozen == 0) {
      rd.forced = true;
      freeze_edge(argmin);
    }
    rd.delta = delta;
    rd.prefix = prefix;
    rd.argmin = argmin;
    rd.frozen = frozen;
    rounds_.push_back(rd);
    ++stats_.rounds_resolved;

    active_edges.erase(
        std::remove_if(active_edges.begin(), active_edges.end(),
                       [&](std::uint32_t e) { return edges_[e].active == 0; }),
        active_edges.end());
  }
}

void IncrementalMaxMinSolver::solve() {
  ++epoch_;
  stats_ = IncrementalSolveStats{};
  dirty_list_.clear();
  buckets_.clear();

  if (!trace_valid_) {
    pending_dirty_.clear();
    ++pending_gen_;
    fallback_from(0);
    trace_valid_ = true;
  } else if (!pending_dirty_.empty()) {
    for (const std::uint32_t e : pending_dirty_) make_dirty(e, kNone);
    pending_dirty_.clear();
    ++pending_gen_;
    replay();
  }

  stats_.flows_touched = flows_touched_pending_;
  flows_touched_pending_ = 0;
  ++flow_touch_gen_;
}

double IncrementalMaxMinSolver::flow_rate(std::uint32_t slot) const {
  if (!has_flow(slot)) return 0.0;
  double rate = 0.0;
  for (const std::uint32_t s : flows_[slot].subflows) {
    const std::uint32_t fr = subflows_[s].freeze_round;
    rate += fr == kNone ? (rounds_.empty() ? 0.0 : rounds_.back().prefix)
                        : rounds_[fr].prefix;
  }
  return rate;
}

std::vector<double> IncrementalMaxMinSolver::path_rates(
    std::uint32_t slot) const {
  std::vector<double> out;
  if (!has_flow(slot)) return out;
  out.reserve(flows_[slot].subflows.size());
  for (const std::uint32_t s : flows_[slot].subflows) {
    const std::uint32_t fr = subflows_[s].freeze_round;
    out.push_back(fr == kNone
                      ? (rounds_.empty() ? 0.0 : rounds_.back().prefix)
                      : rounds_[fr].prefix);
  }
  return out;
}

}  // namespace flattree
