#include "sim/packet.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace flattree {

PacketSim::PacketSim(PacketSimOptions options) : options_{options} {}

void PacketSim::attach_obs(const obs::ObsSink& sink) {
  tracer_ = sink.tracer();
  obs::MetricsRegistry* reg = sink.metrics();
  if (reg == nullptr) {
    c_drops_ = c_rto_ = c_fast_rtx_ = nullptr;
    c_flows_started_ = c_flows_done_ = nullptr;
    c_conversions_ = c_failures_ = c_events_ = nullptr;
    g_heap_max_ = g_arena_ = nullptr;
    h_fct_ = h_queue_depth_ = h_cwnd_ = nullptr;
    return;
  }
  // Engine metrics. All three are commutative across sims (counter add /
  // gauge set_max), so a sharded run exports the same bytes for any thread
  // count: sim.events_processed sums shard totals, the gauges take the max
  // over shards.
  c_events_ = &reg->counter("sim.events_processed");
  g_heap_max_ = &reg->gauge("sim.heap_max");
  g_arena_ = &reg->gauge("sim.arena.high_water");
  c_drops_ = &reg->counter("packet.drops");
  c_rto_ = &reg->counter("packet.rto_timeouts");
  c_fast_rtx_ = &reg->counter("packet.fast_retransmits");
  c_flows_started_ = &reg->counter("packet.flows.started");
  c_flows_done_ = &reg->counter("packet.flows.completed");
  c_conversions_ = &reg->counter("packet.conversions");
  c_failures_ = &reg->counter("packet.failures");
  h_fct_ = &reg->histogram(
      "packet.fct_s", {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0});
  h_queue_depth_ = &reg->histogram(
      "packet.queue.depth_pkts", {1, 2, 4, 8, 16, 32, 64, 96, 128});
  h_cwnd_ = &reg->histogram("packet.cwnd_pkts",
                            {1, 2, 4, 8, 16, 32, 64, 128, 256});
}

void PacketSim::update_pipes(const Graph& graph, double blackout_s,
                             ConversionScope scope) {
  // Aggregate the new topology's directed capacities (parallel links merge
  // into one logical pipe).
  std::unordered_map<std::uint64_t, double> wanted;
  const auto key = [](std::uint32_t from, std::uint32_t to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  };
  for (std::size_t i = 0; i < graph.link_count(); ++i) {
    const Link& link = graph.link(LinkId{static_cast<std::uint32_t>(i)});
    wanted[key(link.a.value(), link.b.value())] += link.capacity_bps;
    wanted[key(link.b.value(), link.a.value())] += link.capacity_bps;
  }

  const double stall_until = now_ + blackout_s;

  // Reconcile existing pipes: keep matches, kill removals.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> new_map(
      graph.node_count());
  for (std::uint32_t from = 0; from < pipe_map_.size(); ++from) {
    for (const auto& [to, pipe_index] : pipe_map_[from]) {
      Pipe& pipe = pipes_[pipe_index];
      const auto it = wanted.find(key(from, to));
      if (it == wanted.end()) {
        // Circuit rewired away: everything queued on it is lost. The dead
        // pipe stays in the map so a later recovery resurrects the same
        // index — subflows hold pipe indices, and a flow whose route is
        // unchanged across fail + recover must come back to a live pipe.
        pipe.dead = true;
        count_drop(pipe.queue.size());
        pipe.queue.clear();
        pipe.queued_bytes = 0;
        if (from < new_map.size()) {
          new_map[from].emplace_back(to, pipe_index);
        }
        continue;
      }
      if (pipe.dead) {
        // The circuit is back (failure recovered): revive in place. The
        // queue is already empty; traffic resumes on the next send.
        pipe.dead = false;
        pipe.rate_bps = it->second;
        pipe.blocked_until = std::max(pipe.blocked_until, stall_until);
      }
      if (pipe.rate_bps != it->second) {
        // Cable re-terminated at a different rate: treat as rewired.
        pipe.rate_bps = it->second;
        count_drop(pipe.queue.size());
        pipe.queue.clear();
        pipe.queued_bytes = 0;
        pipe.blocked_until = std::max(pipe.blocked_until, stall_until);
      }
      if (scope == ConversionScope::kFullBlackout) {
        pipe.blocked_until = std::max(pipe.blocked_until, stall_until);
      }
      if (from < new_map.size()) {
        new_map[from].emplace_back(to, pipe_index);
      }
      wanted.erase(it);
    }
  }
  // Create pipes for newly-wired circuits; they stall for the blackout.
  for (const auto& [k, capacity] : wanted) {
    const std::uint32_t from = static_cast<std::uint32_t>(k >> 32);
    const std::uint32_t to = static_cast<std::uint32_t>(k & 0xffffffffu);
    Pipe pipe;
    pipe.rate_bps = capacity;
    pipe.blocked_until = stall_until;
    new_map[from].emplace_back(to, static_cast<std::uint32_t>(pipes_.size()));
    pipes_.push_back(std::move(pipe));
  }
  pipe_map_ = std::move(new_map);
}

void PacketSim::set_network(const Graph& graph) {
  update_pipes(graph, 0.0, ConversionScope::kChangedOnly);
  network_set_ = true;
}

std::uint32_t PacketSim::pipe_between(NodeId from, NodeId to) const {
  for (const auto& [peer, pipe] : pipe_map_.at(from.index())) {
    if (peer == to.value()) return pipe;
  }
  throw std::logic_error("PacketSim: no pipe between nodes");
}

std::vector<std::uint32_t> PacketSim::pipes_for(const Path& path) const {
  std::vector<std::uint32_t> pipes;
  pipes.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    pipes.push_back(pipe_between(path[i], path[i + 1]));
  }
  return pipes;
}

void PacketSim::attach_subflows(std::uint32_t flow_index,
                                std::vector<Path> paths) {
  SimFlow& flow = flows_[flow_index];
  for (Path& path : paths) {
    Subflow sf;
    sf.flow = flow_index;
    sf.fwd_pipes = pipes_for(path);
    Path reversed(path.rbegin(), path.rend());
    sf.rev_pipes = pipes_for(reversed);
    sf.cwnd = options_.init_cwnd;
    sf.rto = options_.initial_rto_s;
    flow.subflows.push_back(static_cast<std::uint32_t>(subflows_.size()));
    subflows_.push_back(std::move(sf));
  }
  flow.current_paths = std::move(paths);
}

std::uint32_t PacketSim::add_flow(std::uint32_t src_server,
                                  std::uint32_t dst_server, double bytes,
                                  double start_s,
                                  std::vector<Path> subflow_paths) {
  if (!network_set_) {
    throw std::logic_error("PacketSim: set_network before add_flow");
  }
  if (subflow_paths.empty()) {
    throw std::invalid_argument("PacketSim: flow needs at least one subflow");
  }
  SimFlow flow;
  flow.src = src_server;
  flow.dst = dst_server;
  flow.start_s = start_s;
  if (bytes > 0) {
    flow.total_packets =
        static_cast<std::int64_t>(std::ceil(bytes / options_.mtu_bytes));
    flow.unassigned = flow.total_packets;
  } else {
    flow.total_packets = -1;
    flow.unassigned = -1;
  }
  const std::uint32_t flow_index = static_cast<std::uint32_t>(flows_.size());
  flows_.push_back(std::move(flow));
  attach_subflows(flow_index, std::move(subflow_paths));
  schedule(start_s, EventType::kFlowStart, flow_index, 0);
  return flow_index;
}

void PacketSim::schedule(double t, EventType type, std::uint32_t a,
                         std::uint32_t b, const Packet& packet) {
  // Tie-break contract: equal-timestamp events fire in scheduling order.
  // The pooled queue sequences pushes internally; the reference queue
  // carries the explicit order_ counter. Either way the order is a pure
  // function of the simulation, never of heap layout.
  if (options_.engine == PacketEngine::kPooled) {
    EventPayload& payload = queue_.emplace(t);
    payload.type = type;
    payload.a = a;
    payload.b = b;
    payload.packet = packet;
    if (queue_.size() > heap_max_) heap_max_ = queue_.size();
    return;
  }
  Event event;
  event.t = t;
  event.order = order_++;
  event.payload.type = type;
  event.payload.a = a;
  event.payload.b = b;
  event.payload.packet = packet;
  events_.push(std::move(event));
  if (events_.size() > heap_max_) heap_max_ = events_.size();
}

void PacketSim::dispatch(const EventPayload& event) {
  switch (event.type) {
    case EventType::kArrival:
      handle_arrival(event);
      break;
    case EventType::kPipeFree: {
      Pipe& pipe = pipes_[event.a];
      pipe.transmitting = false;
      if (!pipe.dead) pipe_try_send(event.a);
      break;
    }
    case EventType::kTimer:
      handle_timer(event);
      break;
    case EventType::kFlowStart:
      start_flow(event.a);
      break;
  }
}

void PacketSim::run_until(double t_s) {
  std::uint64_t processed = 0;
  if (options_.engine == PacketEngine::kPooled) {
    while (!queue_.empty() && queue_.top_time() <= t_s) {
      double t = 0.0;
      const EventPayload event = queue_.pop(&t);
      now_ = std::max(now_, t);
      ++events_done_;
      ++segment_.events_processed;
      ++processed;
      dispatch(event);
    }
  } else {
    while (!events_.empty() && events_.top().t <= t_s) {
      const Event event = events_.top();
      events_.pop();
      now_ = std::max(now_, event.t);
      ++events_done_;
      ++segment_.events_processed;
      ++processed;
      dispatch(event.payload);
    }
  }
  now_ = std::max(now_, t_s);
  if (processed > 0) {
    obs::add(c_events_, processed);
    obs::set_max(g_heap_max_, static_cast<double>(heap_max_));
    obs::set_max(g_arena_, static_cast<double>(arena_high_water()));
  }
}

std::uint64_t PacketSim::arena_high_water() const {
  // The reference engine has no arena; its queue peak is the analogue.
  return options_.engine == PacketEngine::kPooled ? queue_.arena_slots()
                                                  : heap_max_;
}

void PacketSim::start_flow(std::uint32_t flow_index) {
  SimFlow& flow = flows_[flow_index];
  if (flow.done) return;
  flow.started = true;
  obs::add(c_flows_started_);
  maybe_send(flow_index);
}

void PacketSim::maybe_send(std::uint32_t flow_index) {
  SimFlow& flow = flows_[flow_index];
  if (!flow.started || flow.done) return;
  // Round-robin over subflows until every window is full or the flow runs
  // out of unassigned packets.
  bool progress = true;
  while (progress && (flow.unassigned != 0)) {
    progress = false;
    for (std::uint32_t sf_index : flow.subflows) {
      Subflow& sf = subflows_[sf_index];
      if (!sf.alive) continue;
      if (flow.unassigned == 0) break;
      const double inflight = static_cast<double>(sf.next_seq - sf.cum_acked);
      if (inflight + 1.0 > sf.cwnd + 1e-9) continue;
      if (flow.unassigned > 0) --flow.unassigned;
      ++sf.inflight_assigned;
      subflow_send_packet(flow_index, sf_index, sf.next_seq++, false);
      progress = true;
    }
  }
}

void PacketSim::subflow_send_packet(std::uint32_t flow_index,
                                    std::uint32_t sf_index, std::uint32_t seq,
                                    bool is_retransmit) {
  Subflow& sf = subflows_[sf_index];
  Packet packet;
  packet.flow = flow_index;
  packet.subflow = sf_index;
  packet.seq = seq;
  packet.size = options_.mtu_bytes;
  packet.send_time = now_;
  packet.hop = 0;
  packet.is_ack = false;
  (void)is_retransmit;
  sf.last_send_time = now_;
  enqueue_packet(sf.fwd_pipes.front(), packet);
  if (!sf.timer_armed) arm_timer(flow_index, sf_index);
}

void PacketSim::enqueue_packet(std::uint32_t pipe_index,
                               const Packet& packet) {
  Pipe& pipe = pipes_[pipe_index];
  if (pipe.dead) {
    count_drop();  // the cable this route relied on has been rewired away
    return;
  }
  const std::uint64_t limit =
      static_cast<std::uint64_t>(options_.queue_packets) * options_.mtu_bytes;
  if (pipe.queued_bytes + packet.size > limit) {
    count_drop();
    return;
  }
  pipe.queued_bytes += packet.size;
  pipe.queue.push_back(packet);
  obs::record(h_queue_depth_, static_cast<double>(pipe.queue.size()));
  pipe_try_send(pipe_index);
}

void PacketSim::pipe_try_send(std::uint32_t pipe_index) {
  Pipe& pipe = pipes_[pipe_index];
  if (pipe.transmitting || pipe.queue.empty()) return;
  Packet packet = pipe.queue.front();
  pipe.queue.pop_front();
  pipe.queued_bytes -= packet.size;
  pipe.transmitting = true;
  const double start = std::max(now_, pipe.blocked_until);
  const double tx_done = start + packet.size * 8.0 / pipe.rate_bps;
  schedule(tx_done, EventType::kPipeFree, pipe_index, 0);
  schedule(tx_done + options_.prop_delay_s, EventType::kArrival, pipe_index, 0,
           packet);
}

void PacketSim::handle_arrival(const EventPayload& event) {
  const Packet& packet = event.packet;
  Subflow& sf = subflows_[packet.subflow];
  if (!sf.alive) {
    count_drop();  // this subflow was replaced by a conversion mid-flight
    return;
  }
  const auto& pipes = packet.is_ack ? sf.rev_pipes : sf.fwd_pipes;
  const std::uint16_t next_hop = packet.hop + 1;
  if (next_hop < pipes.size()) {
    Packet forwarded = packet;
    forwarded.hop = next_hop;
    enqueue_packet(pipes[next_hop], forwarded);
    return;
  }
  // Delivered to the end host.
  if (packet.is_ack) {
    on_ack_at_sender(packet);
  } else {
    on_data_at_receiver(packet);
  }
}

void PacketSim::on_data_at_receiver(const Packet& packet) {
  Subflow& sf = subflows_[packet.subflow];
  if (packet.seq == sf.expect_seq) {
    ++sf.expect_seq;
    while (sf.out_of_order.erase(sf.expect_seq)) ++sf.expect_seq;
  } else if (packet.seq > sf.expect_seq) {
    sf.out_of_order.insert(packet.seq);
  }
  // Immediate cumulative ACK, echoing the data packet's timestamp.
  Packet ack;
  ack.flow = packet.flow;
  ack.subflow = packet.subflow;
  ack.seq = sf.expect_seq;
  ack.size = options_.ack_bytes;
  ack.send_time = packet.send_time;
  ack.hop = 0;
  ack.is_ack = true;
  enqueue_packet(sf.rev_pipes.front(), ack);
}

void PacketSim::increase_cwnd(SimFlow& flow, Subflow& subflow) {
  if (subflow.cwnd < subflow.ssthresh) {
    subflow.cwnd += 1.0;  // slow start
    return;
  }
  if (!options_.mptcp_coupled || flow.subflows.size() == 1) {
    subflow.cwnd += 1.0 / subflow.cwnd;  // Reno congestion avoidance
    return;
  }
  // MPTCP Linked Increase (LIA): cwnd_r += min(alpha / cwnd_total,
  // 1 / cwnd_r) per ACK, with alpha coupling the subflows so the flow takes
  // as much as a single TCP on its best path.
  double total_cwnd = 0;
  double best_ratio = 0;       // max_i cwnd_i / rtt_i^2
  double sum_ratio = 0;        // sum_i cwnd_i / rtt_i
  for (std::uint32_t sf_index : flow.subflows) {
    const Subflow& sf = subflows_[sf_index];
    if (!sf.alive) continue;
    const double rtt =
        sf.srtt > 0 ? sf.srtt : options_.initial_rtt_estimate_s;
    total_cwnd += sf.cwnd;
    best_ratio = std::max(best_ratio, sf.cwnd / (rtt * rtt));
    sum_ratio += sf.cwnd / rtt;
  }
  if (total_cwnd <= 0 || sum_ratio <= 0) {
    subflow.cwnd += 1.0 / subflow.cwnd;
    return;
  }
  const double alpha = total_cwnd * best_ratio / (sum_ratio * sum_ratio);
  subflow.cwnd += std::min(alpha / total_cwnd, 1.0 / subflow.cwnd);
}

void PacketSim::on_ack_at_sender(const Packet& packet) {
  SimFlow& flow = flows_[packet.flow];
  Subflow& sf = subflows_[packet.subflow];
  if (flow.done) return;

  if (packet.seq > sf.cum_acked) {
    const std::uint32_t newly = packet.seq - sf.cum_acked;
    sf.cum_acked = packet.seq;
    sf.dup_acks = 0;
    sf.inflight_assigned -= std::min(sf.inflight_assigned, newly);
    flow.packets_acked += newly;
    flow.bytes_acked +=
        static_cast<std::uint64_t>(newly) * options_.mtu_bytes;
    segment_.bytes_acked +=
        static_cast<std::uint64_t>(newly) * options_.mtu_bytes;

    // RTT sample from the echoed timestamp (Karn-safe enough here: the
    // timestamp rides the data packet that triggered this cumulative ACK).
    const double sample = now_ - packet.send_time;
    if (sample > 0) {
      if (sf.srtt == 0) {
        sf.srtt = sample;
        sf.rttvar = sample / 2;
      } else {
        const double err = sample - sf.srtt;
        sf.srtt += 0.125 * err;
        sf.rttvar += 0.25 * (std::fabs(err) - sf.rttvar);
      }
      sf.rto = std::clamp(sf.srtt + 4 * sf.rttvar, options_.min_rto_s,
                          options_.max_rto_s);
    }

    if (sf.in_recovery) {
      if (sf.cum_acked >= sf.recover_point) {
        sf.in_recovery = false;  // full recovery
        sf.cwnd = sf.ssthresh;
      } else {
        // NewReno partial ACK: the next hole is lost too; retransmit it
        // immediately without waiting for three more duplicate ACKs.
        subflow_send_packet(packet.flow, packet.subflow, sf.cum_acked, true);
      }
    } else {
      for (std::uint32_t i = 0; i < newly; ++i) increase_cwnd(flow, sf);
      obs::record(h_cwnd_, sf.cwnd);
    }

    // Progress: push the retransmission timer forward.
    sf.rto_deadline = now_ + sf.rto;

    if (flow.total_packets >= 0 &&
        flow.packets_acked >=
            static_cast<std::uint64_t>(flow.total_packets)) {
      flow.done = true;
      flow.finish_s = now_;
      ++segment_.flows_completed;
      obs::add(c_flows_done_);
      obs::record(h_fct_, now_ - flow.start_s);
      if (tracer_ != nullptr) {
        tracer_->span("packet", "flow", flow.start_s, now_ - flow.start_s,
                      packet.flow,
                      static_cast<std::int64_t>(flow.bytes_acked));
      }
      return;
    }
    maybe_send(packet.flow);
  } else if (packet.seq == sf.cum_acked) {
    ++sf.dup_acks;
    if (sf.dup_acks == 3 && sf.next_seq > sf.cum_acked && !sf.in_recovery) {
      // Fast retransmit + multiplicative decrease (NewReno entry).
      sf.in_recovery = true;
      sf.recover_point = sf.next_seq;
      sf.ssthresh = std::max(sf.cwnd / 2.0, 2.0);
      sf.cwnd = sf.ssthresh;
      ++segment_.fast_retransmits;
      obs::add(c_fast_rtx_);
      subflow_send_packet(packet.flow, packet.subflow, sf.cum_acked, true);
    }
  }
}

void PacketSim::arm_timer(std::uint32_t flow_index, std::uint32_t sf_index) {
  Subflow& sf = subflows_[sf_index];
  sf.timer_armed = true;
  sf.rto_deadline = now_ + sf.rto;
  schedule(sf.rto_deadline, EventType::kTimer, flow_index, sf_index);
}

void PacketSim::handle_timer(const EventPayload& event) {
  const std::uint32_t sf_index = event.b;
  Subflow& sf = subflows_[sf_index];
  if (!sf.alive) return;
  SimFlow& flow = flows_[event.a];
  if (flow.done) {
    sf.timer_armed = false;
    return;
  }
  if (sf.next_seq <= sf.cum_acked) {
    sf.timer_armed = false;
    return;  // nothing outstanding
  }
  if (now_ + 1e-12 < sf.rto_deadline) {
    // Progress since this event was scheduled: sleep until the new deadline.
    schedule(sf.rto_deadline, EventType::kTimer, event.a, sf_index);
    return;
  }
  // Retransmission timeout: multiplicative backoff, window collapse,
  // go-back to the first unacked packet. Recovery mode makes each partial
  // ACK retransmit the next hole, so a burst loss (e.g. a rewired circuit
  // dropping a full queue) repairs at one hole per RTT instead of one per
  // RTO.
  sf.ssthresh = std::max(sf.cwnd / 2.0, 2.0);
  sf.cwnd = 1.0;
  sf.dup_acks = 0;
  sf.in_recovery = true;
  sf.recover_point = sf.next_seq;
  sf.rto = std::min(sf.rto * 2.0, options_.max_rto_s);
  sf.timer_armed = false;
  ++segment_.rto_timeouts;
  obs::add(c_rto_);
  subflow_send_packet(event.a, sf_index, sf.cum_acked, true);
  if (!sf.timer_armed) arm_timer(event.a, sf_index);
}

void PacketSim::apply_conversion(
    const Graph& graph,
    const std::function<std::vector<Path>(std::uint32_t)>& paths_for_flow,
    double blackout_s, ConversionScope scope) {
  obs::add(c_conversions_);
  if (tracer_ != nullptr) {
    tracer_->span("packet", "conversion_blackout", now_, blackout_s);
  }
  update_pipes(graph, blackout_s, scope);

  for (std::uint32_t fi = 0; fi < flows_.size(); ++fi) {
    SimFlow& flow = flows_[fi];
    if (flow.done) continue;
    auto paths = paths_for_flow(fi);
    if (paths.empty()) {
      throw std::logic_error("apply_conversion: flow left without paths");
    }
    if (paths == flow.current_paths) {
      // Unchanged route set: the connection rides through warm (its pipes
      // persisted; in-flight packets are only lost where circuits moved).
      continue;
    }
    // Unacked data assigned to the dying subflows goes back to the pool.
    for (std::uint32_t sf_index : flow.subflows) {
      Subflow& sf = subflows_[sf_index];
      if (!sf.alive) continue;
      sf.alive = false;
      if (flow.unassigned >= 0) flow.unassigned += sf.inflight_assigned;
    }
    flow.subflows.clear();
    attach_subflows(fi, std::move(paths));
    if (flow.started) maybe_send(fi);
  }
}

void PacketSim::apply_failure(const Graph& degraded_graph) {
  if (!network_set_) {
    throw std::logic_error("PacketSim: set_network before apply_failure");
  }
  // Pipes missing from the degraded graph die (queues dropped) and swallow
  // everything still routed into them; surviving pipes are untouched — no
  // blackout and no re-pathing until the controller's repair arrives.
  obs::add(c_failures_);
  if (tracer_ != nullptr) tracer_->instant("packet", "failure", now_);
  update_pipes(degraded_graph, 0.0, ConversionScope::kChangedOnly);
}

const std::vector<Path>& PacketSim::flow_paths(std::uint32_t flow) const {
  return flows_.at(flow).current_paths;
}

std::uint64_t PacketSim::flow_bytes_acked(std::uint32_t flow) const {
  return flows_.at(flow).bytes_acked;
}

bool PacketSim::flow_completed(std::uint32_t flow) const {
  return flows_.at(flow).done;
}

double PacketSim::flow_start_time(std::uint32_t flow) const {
  return flows_.at(flow).start_s;
}

double PacketSim::flow_finish_time(std::uint32_t flow) const {
  return flows_.at(flow).finish_s;
}

std::uint64_t PacketSim::total_bytes_acked() const {
  std::uint64_t total = 0;
  for (const SimFlow& flow : flows_) total += flow.bytes_acked;
  return total;
}

std::vector<obs::FlowRecord> PacketSim::export_flow_records() const {
  std::vector<obs::FlowRecord> records;
  records.reserve(flows_.size());
  for (const SimFlow& flow : flows_) {
    obs::FlowRecord r;
    r.src = flow.src;
    r.dst = flow.dst;
    r.bytes = static_cast<double>(flow.bytes_acked);
    r.start_s = flow.start_s;
    r.completed = flow.done;
    r.fct_s = flow.done ? flow.finish_s - flow.start_s : 0.0;
    records.push_back(r);
  }
  return records;
}

void run_with_schedule(
    PacketSim& sim, const Graph& base, const FailureSchedule& schedule,
    const std::function<std::vector<Path>(std::uint32_t, const Graph&)>&
        repath,
    double horizon_s, const PacketScheduleOptions& options) {
  // Two steps per schedule event: the data plane breaks (or heals) at the
  // event time, the control plane installs refreshed routes one repair lag
  // later. Ties resolve data-plane first — a repair landing exactly when the
  // next failure strikes still repairs the pre-failure state.
  struct Step {
    double t{0.0};
    bool repair{false};
    std::size_t event{0};
  };
  const auto& events = schedule.events();
  std::vector<Step> steps;
  steps.reserve(2 * events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    steps.push_back({events[i].time_s, false, i});
    steps.push_back({events[i].time_s + options.repair_lag_s, true, i});
  }
  std::stable_sort(steps.begin(), steps.end(),
                   [](const Step& a, const Step& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return !a.repair && b.repair;
                   });

  for (const Step& step : steps) {
    if (step.t > horizon_s) break;
    sim.run_until(step.t);
    // Each failure/repair step opens a fresh stats segment so recovery-phase
    // metrics (drops, retransmits, completions) don't inherit samples from
    // the phase before it; the queue-drop burst the step itself causes lands
    // in the new segment.
    sim.begin_segment();
    // The controller reacts to the event this step belongs to: its repair
    // reflects the failure state as of that event (later events get their
    // own, later, repair steps).
    const FailureSet active = schedule.active_at(events[step.event].time_s);
    if (!step.repair) {
      sim.apply_failure(degrade(base, active));
      continue;
    }
    const Graph repaired =
        options.planner ? options.planner(active) : degrade(base, active);
    sim.apply_conversion(
        repaired,
        [&](std::uint32_t fi) -> std::vector<Path> {
          auto paths = repath(fi, repaired);
          if (paths.empty()) return sim.flow_paths(fi);  // pair disconnected
          return paths;
        },
        options.rule_blackout_s, options.scope);
  }
  sim.run_until(horizon_s);
}

}  // namespace flattree
