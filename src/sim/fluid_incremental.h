// Incremental max-min (progressive-filling) rate allocator.
//
// solve_max_min_fill (lp/mcf.h) re-derives the whole water-filling from
// scratch on every call: each round it scans every edge for the tightest
// fair share, raises every unfrozen subflow by that delta, and freezes the
// subflows crossing saturated edges. The fluid simulator calls it once per
// arrival/departure/failure event, so the inner loop of every closed-loop
// experiment is O(network) per event even when the event perturbs one path.
//
// This solver keeps the water-filling *trace* alive between events: per
// round the uniform increment (delta), the running fill level (prefix), the
// freeze count and the min-achieving edges; per edge its saturation round;
// per subflow its freeze round. An event marks the edges whose capacity or
// crosser set changed as dirty; solve() then replays the cached rounds,
// explicitly simulating only dirty edges (their residual/active trajectory
// is re-derived with the cached deltas) and re-verifying only the subflows
// that touch them. Rounds whose fair share is unchanged are reused
// verbatim — bit for bit, because a clean edge's floating-point trajectory
// is exactly the cached one and a subflow's final rate is the prefix sum at
// its freeze round, which is how the scratch solver accumulates it.
//
// The moment a dirty edge changes the round structure — a smaller fair
// share, a vanished freeze, a forced-freeze tie — the solver *falls back
// from that round*: it materializes every edge's state at the divergence
// level and re-runs the scratch algorithm for the remaining rounds
// (recording a fresh trace tail). Levels below the divergence are still
// reused; levels at and above re-solve. The fallback path executes the
// identical arithmetic as solve_max_min_fill, so results are always
// bit-for-bit equal to a from-scratch solve — the differential battery in
// tests/test_fluid_incremental_diff.cc holds this after every event.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace flattree {

// Touch accounting for one solve() call (feeds the
// fluid.realloc.links_touched / fluid.realloc.flows_touched metrics).
struct IncrementalSolveStats {
  // Directed edges whose state had to be re-derived this solve (dirty set,
  // or every still-active edge when a fallback re-solve ran).
  std::uint64_t links_touched{0};
  // Distinct flows whose subflows were added, removed, re-verified or
  // re-frozen this solve.
  std::uint64_t flows_touched{0};
  // Cached rounds replayed verbatim / rounds re-solved by the scratch path.
  std::uint64_t rounds_replayed{0};
  std::uint64_t rounds_resolved{0};
  // True when the whole trace was rebuilt (first solve, or divergence at
  // round 0).
  bool full_resolve{false};
};

// Persistent-state drop-in for solve_max_min_fill. Usage:
//   solver.reset(capacities, flow_slots);
//   solver.add_flow(slot, path_edges); ... solver.solve();
//   rate = solver.flow_rate(slot);
// Rates are bit-for-bit identical to building an McfInstance over the
// present flows (in ascending slot order) and calling solve_max_min_fill.
class IncrementalMaxMinSolver {
 public:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  // Starts over with `capacity[e]` per directed edge and slots
  // [0, flow_slots) addressable. Drops all flows and the cached trace.
  void reset(std::vector<double> capacity, std::size_t flow_slots);

  // Updates one directed edge's capacity (no-op if unchanged).
  void set_capacity(std::uint32_t edge, double capacity);

  // Registers a flow at `slot` with one subflow per path (a path is a list
  // of directed edge indices). The slot must be free. An empty path list is
  // allowed and yields rate 0 (the fluid simulator keeps black-holed flows
  // out of the allocation entirely).
  void add_flow(std::uint32_t slot, const std::vector<std::vector<std::uint32_t>>& path_edges);

  // Removes the flow at `slot` (no-op if absent).
  void remove_flow(std::uint32_t slot);

  // Replaces the flow's path set (remove + add; no-op path sets allowed).
  void update_flow(std::uint32_t slot, const std::vector<std::vector<std::uint32_t>>& path_edges);

  [[nodiscard]] bool has_flow(std::uint32_t slot) const {
    return slot < flows_.size() && flows_[slot].present;
  }

  // Recomputes the allocation for the current flow/capacity state.
  void solve();

  // Total rate of the flow at `slot` (0 if absent/empty). Valid after
  // solve(); identical fold order to solve_max_min_fill's extraction.
  [[nodiscard]] double flow_rate(std::uint32_t slot) const;

  // Per-path rates for the flow at `slot` (empty if absent).
  [[nodiscard]] std::vector<double> path_rates(std::uint32_t slot) const;

  [[nodiscard]] const IncrementalSolveStats& last_stats() const { return stats_; }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] double capacity(std::uint32_t edge) const { return edges_[edge].capacity; }

 private:
  struct SubflowRec {
    std::uint32_t flow{kNone};          // owner slot; kNone = free-listed
    std::uint32_t freeze_round{kNone};  // round index into rounds_
    std::uint32_t bucket_epoch{0};      // scheduled for re-verification
    std::uint32_t confirm_epoch{0};     // freeze at its round finalized
    std::vector<std::uint32_t> edges;   // directed edges, path order
    std::vector<std::uint32_t> edge_pos;  // index in each edge's crossers
  };

  struct EdgeRec {
    double capacity{0.0};
    std::uint32_t sat_round{kNone};  // round this edge saturated, if any
    // (subflow, index of this edge within that subflow's edge list) — the
    // back-pointer makes removal O(1) per incidence.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> crossers;
    // Explicit ("dirty") state, valid while dirty_epoch == epoch_:
    std::uint32_t dirty_epoch{0};
    std::uint32_t pending_epoch{0};  // queued for next solve's dirty seed
    double residual{0.0};
    std::uint32_t active{0};
  };

  struct Round {
    double delta{0.0};
    double prefix{0.0};          // fill level after this round (left fold)
    std::uint32_t frozen{0};     // subflows currently frozen at this round
    std::uint32_t argmin{kNone};  // first min-achieving edge (scan order)
    bool forced{false};          // freeze came from the progress guard
    std::uint8_t ms_n{0};
    std::uint32_t ms[8];         // min-achieving edges, ascending ids
  };

  struct FlowRec {
    bool present{false};
    std::vector<std::uint32_t> subflows;  // path order
  };

  [[nodiscard]] double thresh(const EdgeRec& e) const {
    return 1e-9 * e.capacity + 1e-12;
  }
  [[nodiscard]] bool is_dirty(const EdgeRec& e) const {
    return e.dirty_epoch == epoch_;
  }

  void mark_pending(std::uint32_t edge);
  void touch_flow(std::uint32_t slot);
  std::uint32_t alloc_subflow();
  void detach_subflow(std::uint32_t s);

  // Turns `edge` explicit mid-replay: derives its residual/active at the
  // end of round `upto` (post-decrement, pre-freeze-accounting for round
  // `upto` itself) from the cached deltas and current freeze rounds, clears
  // its stale saturation round, and schedules its pending crossers for
  // re-verification. `upto == kNone` seeds at the pre-round-0 state.
  void make_dirty(std::uint32_t edge, std::uint32_t upto);

  // Finalizes a subflow freeze at `round` during replay: moves its cached
  // freeze round if needed, decrements already-dirty crossed edges, and
  // dirties its clean edges (whose future trajectory just changed).
  void finalize_freeze(std::uint32_t s, std::uint32_t round);

  // Re-runs the scratch water-filling from round `from` (0 = full solve),
  // recording a fresh trace tail. Bitwise the solve_max_min_fill loop.
  void fallback_from(std::uint32_t from);

  // The solve_max_min_fill round loop over `active_edges` (ascending ids),
  // starting at fill level `prefix`; records the rounds it produces.
  void scratch_fill(std::vector<std::uint32_t> active_edges, double prefix,
                    std::size_t unfrozen_edged);

  void replay();

  std::vector<EdgeRec> edges_;
  std::vector<FlowRec> flows_;
  std::vector<SubflowRec> subflows_;
  std::vector<std::uint32_t> free_subflows_;
  std::vector<Round> rounds_;
  bool trace_valid_{false};
  std::size_t total_edged_{0};  // live subflows with >= 1 edge

  std::uint32_t epoch_{0};
  std::uint32_t pending_gen_{1};
  std::uint32_t flow_touch_gen_{1};
  std::vector<std::uint32_t> pending_dirty_;
  std::vector<std::uint32_t> dirty_list_;  // edges explicit this solve
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> buckets_;
  std::vector<std::uint32_t> cnt_buf_;  // freeze-round histogram scratch
  std::vector<std::uint32_t> cnt_used_;

  std::vector<std::uint32_t> flow_touch_epoch_;
  std::uint64_t flows_touched_pending_{0};
  IncrementalSolveStats stats_;
};

}  // namespace flattree
