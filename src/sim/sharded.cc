#include "sim/sharded.h"

#include <algorithm>
#include <utility>

#include "exec/parallel.h"

namespace flattree {

ShardedPacketSim::ShardedPacketSim(const Graph& graph,
                                   PacketSimOptions options,
                                   std::uint64_t base_seed)
    : graph_{&graph}, options_{options}, base_seed_{base_seed} {}

ShardedRunStats ShardedPacketSim::run(std::uint32_t shards,
                                      const ShardBuilder& builder,
                                      double horizon_s,
                                      exec::ThreadPool* pool,
                                      const obs::ObsSink& sink) const {
  struct ShardResult {
    std::uint64_t events{0};
    std::uint64_t drops{0};
    std::uint64_t bytes{0};
    std::uint64_t flows{0};
    std::uint64_t completed{0};
    std::uint64_t heap_max{0};
    std::uint64_t arena{0};
    std::vector<double> fcts_s;
  };

  const std::vector<ShardResult> results = exec::parallel_map(
      pool, shards, [this, &builder, horizon_s, &sink](std::size_t s) {
        PacketSim sim{options_};
        sim.attach_obs(sink);
        sim.set_network(*graph_);
        Rng rng = exec::task_rng(base_seed_, s);
        builder(static_cast<std::uint32_t>(s), sim, rng);
        sim.run_until(horizon_s);

        ShardResult r;
        r.events = sim.events_processed();
        r.drops = sim.packets_dropped();
        r.bytes = sim.total_bytes_acked();
        r.flows = sim.flow_count();
        r.heap_max = sim.heap_max();
        r.arena = sim.arena_high_water();
        for (std::uint32_t f = 0; f < sim.flow_count(); ++f) {
          if (!sim.flow_completed(f)) continue;
          ++r.completed;
          r.fcts_s.push_back(sim.flow_finish_time(f) -
                             sim.flow_start_time(f));
        }
        return r;
      });

  ShardedRunStats merged;
  for (const ShardResult& r : results) {
    merged.events_processed += r.events;
    merged.packets_dropped += r.drops;
    merged.bytes_acked += r.bytes;
    merged.flows += r.flows;
    merged.flows_completed += r.completed;
    merged.heap_max = std::max(merged.heap_max, r.heap_max);
    merged.arena_high_water = std::max(merged.arena_high_water, r.arena);
    merged.fcts_s.insert(merged.fcts_s.end(), r.fcts_s.begin(),
                         r.fcts_s.end());
  }
  return merged;
}

}  // namespace flattree
