#include "sim/fluid.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <stdexcept>

#include "lp/mcf.h"
#include "sim/fluid_incremental.h"

namespace flattree {
namespace {

// Resolves a flow's subflow paths into directed-edge index lists.
std::vector<std::vector<std::uint32_t>> resolve_paths(
    const LogicalTopology& topo, const PathProvider& provider, const Flow& f,
    std::uint32_t index) {
  const auto paths = provider(NodeId{f.src}, NodeId{f.dst}, index);
  if (paths.empty()) {
    throw std::logic_error("fluid: path provider returned no paths");
  }
  std::vector<std::vector<std::uint32_t>> edges;
  edges.reserve(paths.size());
  for (const Path& p : paths) edges.push_back(topo.path_edges(p));
  return edges;
}

}  // namespace

FluidSimulator::FluidSimulator(const Graph& graph, PathProvider provider,
                               FluidOptions options)
    : graph_{&graph},
      topology_{graph},
      provider_{std::move(provider)},
      options_{options} {}

std::vector<double> FluidSimulator::measure_rates(const Workload& flows) {
  McfInstance instance;
  instance.capacity.assign(topology_.directed_count(), 0.0);
  for (std::size_t e = 0; e < topology_.directed_count(); ++e) {
    instance.capacity[e] = topology_.capacity(static_cast<std::uint32_t>(e));
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    McfCommodity commodity;
    commodity.paths = resolve_paths(topology_, provider_, flows[i],
                                    static_cast<std::uint32_t>(i));
    instance.commodities.push_back(std::move(commodity));
  }
  return options_.rate_model == RateModel::kEqualSplit
             ? solve_equal_split_fill(instance).flow_rate
             : solve_max_min_fill(instance).flow_rate;
}

std::vector<FluidFlowResult> FluidSimulator::run(const Workload& flows) {
  return run_with_schedule(flows, FailureSchedule{}, 0.0, nullptr, nullptr);
}

std::vector<FluidFlowResult> FluidSimulator::run_with_schedule(
    const Workload& flows, const FailureSchedule& schedule,
    double repair_lag_s, const RoutingRefresh& refresh,
    ScheduleRunStats* stats_out) {
  struct FlowState {
    double remaining{0.0};
    std::uint32_t deps_remaining{0};
    double ready_time{0.0};  // latest dependency finish + dep delay
    bool released{false};
    bool active{false};
    std::vector<std::vector<std::uint32_t>> path_edges;
    std::vector<std::uint32_t> dependents;
  };

  // Cached observability handles (null when the sink is detached).
  obs::EventTracer* tracer = options_.sink.tracer();
  obs::Counter* c_realloc = nullptr;
  obs::Counter* c_arrivals = nullptr;
  obs::Counter* c_completions = nullptr;
  obs::Counter* c_fail = nullptr;
  obs::Counter* c_recover = nullptr;
  obs::Counter* c_refresh = nullptr;
  obs::Counter* c_reroutes = nullptr;
  obs::Counter* c_black_holed = nullptr;
  obs::Counter* c_links_touched = nullptr;
  obs::Counter* c_flows_touched = nullptr;
  obs::Counter* c_full_resolves = nullptr;
  obs::Histogram* h_fct = nullptr;
  obs::Histogram* h_active = nullptr;
  obs::Histogram* h_rate_delta = nullptr;
  if (obs::MetricsRegistry* reg = options_.sink.metrics()) {
    c_realloc = &reg->counter("fluid.reallocations");
    c_arrivals = &reg->counter("fluid.arrivals");
    c_completions = &reg->counter("fluid.completions");
    c_fail = &reg->counter("fluid.fail_events");
    c_recover = &reg->counter("fluid.recover_events");
    c_refresh = &reg->counter("fluid.refreshes");
    c_reroutes = &reg->counter("fluid.reroutes");
    c_black_holed = &reg->counter("fluid.black_holed");
    // Incremental-reallocation touch accounting: how much of the network
    // each rate update actually re-derived (links_touched ≪ directed edge
    // count on sparse events is the O(affected) contract).
    c_links_touched = &reg->counter("fluid.realloc.links_touched");
    c_flows_touched = &reg->counter("fluid.realloc.flows_touched");
    c_full_resolves = &reg->counter("fluid.realloc.full_resolves");
    h_fct = &reg->histogram(
        "fluid.fct_s", {0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0});
    h_active = &reg->histogram("fluid.active_flows",
                               {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024});
    // Max relative per-flow rate change per rate update: the fluid model's
    // convergence residual (progressive filling is exact per event, so this
    // measures how hard each arrival/departure/failure perturbs the
    // allocation).
    h_rate_delta = &reg->histogram(
        "fluid.rate_update.max_rel_delta",
        {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 10.0});
  }

  std::vector<FlowState> state(flows.size());
  std::vector<FluidFlowResult> results(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].bytes <= 0) {
      throw std::invalid_argument("fluid run: flows must have bytes > 0");
    }
    state[i].remaining = flows[i].bytes;
    state[i].deps_remaining =
        static_cast<std::uint32_t>(flows[i].depends_on.size());
    state[i].ready_time = flows[i].start_s;
    for (std::uint32_t dep : flows[i].depends_on) {
      if (dep >= flows.size()) {
        throw std::invalid_argument("fluid run: dependency index out of range");
      }
      state[dep].dependents.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Arrival queue: (time, flow).
  using Arrival = std::pair<double, std::uint32_t>;
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> arrivals;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (state[i].deps_remaining == 0) {
      arrivals.emplace(flows[i].start_s, static_cast<std::uint32_t>(i));
    }
  }

  std::vector<std::uint32_t> active;
  std::vector<double> rates;  // parallel to `active`
  double now = 0.0;

  // ---- live failure state --------------------------------------------------
  ScheduleRunStats stats;
  const std::vector<FailureEvent>& events = schedule.events();
  std::size_t next_event = 0;
  // Pending routing-state refreshes, one per consumed event, each firing
  // one repair lag after its event.
  std::priority_queue<double, std::vector<double>, std::greater<>> refreshes;
  std::vector<bool> failed_link(graph_->link_count(), false);
  std::vector<bool> failed_switch(graph_->node_count(), false);
  // Per-direction capacity of the live topology; failures subtract from the
  // base value, recovery restores it.
  std::vector<double> effective(topology_.directed_count(), 0.0);
  for (std::size_t e = 0; e < effective.size(); ++e) {
    effective[e] = topology_.capacity(static_cast<std::uint32_t>(e));
  }
  // Keeps the degraded graph alive while `current_provider` routes on it.
  std::shared_ptr<const Graph> degraded_graph;
  PathProvider current_provider = provider_;

  // Incremental allocator: kept in lockstep with `effective`, the active
  // flow set, and each flow's path set. solve() replays the previous
  // event's water-filling trace and re-derives only the perturbed
  // bottleneck levels — bit-for-bit equal to the from-scratch solve in the
  // legacy branch of reallocate() (tests/test_fluid_incremental_diff.cc
  // holds the equality after every fuzzed event). Black-holed flows are
  // never registered, mirroring the legacy instance construction.
  const bool use_inc =
      options_.incremental && options_.rate_model == RateModel::kSubflow;
  IncrementalMaxMinSolver inc;
  if (use_inc) inc.reset(effective, flows.size());

  const auto recompute_effective = [&]() {
    std::vector<double> undirected(topology_.edge_count(), 0.0);
    for (std::uint32_t i = 0; i < graph_->link_count(); ++i) {
      if (failed_link[i]) continue;
      const Link& l = graph_->link(LinkId{i});
      const bool fabric = is_switch(graph_->node(l.a).role) &&
                          is_switch(graph_->node(l.b).role);
      if (fabric && (failed_switch[l.a.index()] || failed_switch[l.b.index()])) {
        continue;
      }
      undirected[*topology_.edge_between(l.a, l.b)] += l.capacity_bps;
    }
    for (std::size_t e = 0; e < effective.size(); ++e) {
      const double v = undirected[e / 2];
      if (effective[e] == v) continue;
      effective[e] = v;
      if (use_inc) inc.set_capacity(static_cast<std::uint32_t>(e), v);
    }
  };

  const auto apply_event = [&](const FailureEvent& event) {
    for (LinkId id : event.elements.links) {
      if (id.index() >= failed_link.size()) {
        throw std::invalid_argument("run_with_schedule: link id out of range");
      }
      failed_link[id.index()] = !event.recover;
    }
    for (NodeId id : event.elements.switches) {
      if (id.index() >= failed_switch.size()) {
        throw std::invalid_argument("run_with_schedule: node id out of range");
      }
      failed_switch[id.index()] = !event.recover;
    }
    recompute_effective();
    if (event.recover) {
      ++stats.recover_events;
      obs::add(c_recover);
    } else {
      ++stats.fail_events;
      obs::add(c_fail);
    }
    if (tracer != nullptr) {
      tracer->instant("fluid", event.recover ? "recover" : "fail",
                      event.time_s);
    }
    refreshes.push(event.time_s + repair_lag_s);
  };

  const auto reallocate = [&]() {
    obs::add(c_realloc);
    obs::record(h_active, static_cast<double>(active.size()));
    const std::vector<double> prev = rates;
    rates.assign(active.size(), 0.0);
    if (use_inc) {
      inc.solve();
      for (std::size_t i = 0; i < active.size(); ++i) {
        rates[i] = inc.flow_rate(active[i]);
      }
      const IncrementalSolveStats& st = inc.last_stats();
      obs::add(c_links_touched, st.links_touched);
      obs::add(c_flows_touched, st.flows_touched);
      if (st.full_resolve) obs::add(c_full_resolves);
    } else {
      McfInstance instance;
      instance.capacity = effective;
      // Flows without a route (black-holed) stay at rate zero and are kept
      // out of the instance (the allocator rejects empty commodities).
      std::vector<std::size_t> slot(active.size(), SIZE_MAX);
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (state[active[i]].path_edges.empty()) continue;
        McfCommodity commodity;
        commodity.paths = state[active[i]].path_edges;
        slot[i] = instance.commodities.size();
        instance.commodities.push_back(std::move(commodity));
      }
      const std::vector<double> solved =
          options_.rate_model == RateModel::kEqualSplit
              ? solve_equal_split_fill(instance).flow_rate
              : solve_max_min_fill(instance).flow_rate;
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (slot[i] != SIZE_MAX) rates[i] = solved[slot[i]];
      }
    }
    // Convergence residual: how hard this update perturbed the allocation.
    // Comparable only when the active set is unchanged (prev is parallel).
    if (h_rate_delta != nullptr && prev.size() == rates.size() &&
        !rates.empty()) {
      double max_rel = 0.0;
      for (std::size_t i = 0; i < rates.size(); ++i) {
        if (prev[i] > 0) {
          max_rel = std::max(max_rel,
                             std::fabs(rates[i] - prev[i]) / prev[i]);
        }
      }
      h_rate_delta->record(max_rel);
    }
  };

  // Routing state catches up with the live topology: rebuild the provider
  // over the degraded graph and re-path every unfinished flow through it.
  const auto do_refresh = [&]() {
    ++stats.refreshes;
    obs::add(c_refresh);
    if (tracer != nullptr) tracer->instant("fluid", "refresh", now);
    if (!refresh) return;
    FailureSet active_set;
    for (std::uint32_t i = 0; i < failed_link.size(); ++i) {
      if (failed_link[i]) active_set.links.push_back(LinkId{i});
    }
    for (std::uint32_t i = 0; i < failed_switch.size(); ++i) {
      if (failed_switch[i]) active_set.switches.push_back(NodeId{i});
    }
    degraded_graph =
        std::make_shared<const Graph>(degrade(*graph_, active_set));
    current_provider = refresh(*degraded_graph);
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!state[f].active) continue;
      const auto paths = current_provider(
          NodeId{flows[f].src}, NodeId{flows[f].dst},
          static_cast<std::uint32_t>(f));
      if (paths.empty()) {
        ++stats.black_holed;  // disconnected pair: stays stalled
        obs::add(c_black_holed);
        continue;
      }
      std::vector<std::vector<std::uint32_t>> edges;
      edges.reserve(paths.size());
      for (const Path& p : paths) edges.push_back(topology_.path_edges(p));
      if (edges != state[f].path_edges) {
        // update_flow handles the flow being absent (black-holed on
        // arrival, re-pathed now) as a plain add.
        if (use_inc) inc.update_flow(static_cast<std::uint32_t>(f), edges);
        state[f].path_edges = std::move(edges);
        ++stats.reroutes;
        obs::add(c_reroutes);
      }
    }
  };

  const auto complete_flow = [&](std::uint32_t f) {
    results[f].completed = true;
    results[f].finish_s = now;
    state[f].active = false;
    if (use_inc) inc.remove_flow(f);  // no-op for black-holed flows
    obs::add(c_completions);
    obs::record(h_fct, now - results[f].start_s);
    if (tracer != nullptr) {
      tracer->span("fluid", "flow", results[f].start_s,
                   now - results[f].start_s, f);
    }
    for (std::uint32_t dep : state[f].dependents) {
      FlowState& ds = state[dep];
      if (ds.deps_remaining == 0) continue;  // defensive
      --ds.deps_remaining;
      ds.ready_time =
          std::max(ds.ready_time, now + flows[dep].dep_delay_s);
      if (ds.deps_remaining == 0) {
        arrivals.emplace(std::max(ds.ready_time, flows[dep].start_s), dep);
      }
    }
  };

  // Non-scheduled runs keep the historical contract that a provider
  // returning no paths is a logic error; under a schedule an empty path set
  // is a legitimate black-holed flow.
  const bool scheduled = !events.empty();

  // Next point at which anything other than a flow completion happens.
  const auto next_change = [&]() {
    double t = std::numeric_limits<double>::infinity();
    if (!arrivals.empty()) t = std::min(t, arrivals.top().first);
    if (next_event < events.size()) {
      t = std::min(t, events[next_event].time_s);
    }
    if (!refreshes.empty()) t = std::min(t, refreshes.top());
    return t;
  };

  while (!active.empty() || !arrivals.empty() || next_event < events.size() ||
         !refreshes.empty()) {
    if (now > options_.max_time_s) break;

    // If nothing is flowing, jump to the next change (arrival, failure
    // event, or routing refresh).
    if (active.empty() && std::isfinite(next_change())) {
      now = std::max(now, next_change());
    }

    // Consume every failure event and routing refresh due now.
    bool changed = false;
    while (next_event < events.size() &&
           events[next_event].time_s <= now + 1e-12) {
      apply_event(events[next_event]);
      ++next_event;
      changed = true;
    }
    while (!refreshes.empty() && refreshes.top() <= now + 1e-12) {
      refreshes.pop();
      do_refresh();
      changed = true;
    }

    // Admit every arrival due now.
    bool admitted = false;
    while (!arrivals.empty() && arrivals.top().first <= now + 1e-12) {
      const std::uint32_t f = arrivals.top().second;
      arrivals.pop();
      if (state[f].released) continue;
      state[f].released = true;
      state[f].active = true;
      if (scheduled) {
        const auto paths = current_provider(NodeId{flows[f].src},
                                            NodeId{flows[f].dst}, f);
        state[f].path_edges.clear();
        if (paths.empty()) {
          ++stats.black_holed;  // no route yet; re-pathed at a refresh
          obs::add(c_black_holed);
        } else {
          for (const Path& p : paths) {
            state[f].path_edges.push_back(topology_.path_edges(p));
          }
        }
      } else {
        state[f].path_edges =
            resolve_paths(topology_, current_provider, flows[f], f);
      }
      if (use_inc && !state[f].path_edges.empty()) {
        inc.add_flow(f, state[f].path_edges);
      }
      results[f].started = true;
      results[f].start_s = now;
      active.push_back(f);
      admitted = true;
      obs::add(c_arrivals);
    }
    if (admitted || changed || rates.size() != active.size()) reallocate();

    // Time to next completion among active flows.
    double dt_complete = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (rates[i] > 0) {
        dt_complete =
            std::min(dt_complete, state[active[i]].remaining * 8.0 / rates[i]);
      }
    }
    const double change_t = next_change();

    if (!std::isfinite(dt_complete) && !std::isfinite(change_t)) {
      break;  // starved flows with nothing left to change that: give up
    }

    double next_time = std::min(now + dt_complete, change_t);
    // Zeno stall guard: a flow tail can sit just above the retirement
    // threshold with a completion increment smaller than one ulp of `now`,
    // so `now + dt_complete` rounds back to `now` and the loop spins with
    // dt == 0 forever. Force the minimal representable step; it drains at
    // least rate * ulp / 8 bytes, which exceeds any remainder whose drain
    // time rounds to zero, so the stuck flow retires.
    if (std::isfinite(dt_complete) && next_time <= now) {
      next_time =
          std::nextafter(now, std::numeric_limits<double>::infinity());
    }
    bool horizon_hit = false;
    if (next_time > options_.max_time_s) {
      next_time = options_.max_time_s;
      horizon_hit = true;
    }
    const double dt = next_time - now;
    // Drain bytes over [now, next_time].
    for (std::size_t i = 0; i < active.size(); ++i) {
      state[active[i]].remaining -= rates[i] * dt / 8.0;
    }
    now = next_time;
    if (horizon_hit) break;  // unfinished flows are reported as such

    // Retire completed flows.
    bool any_completed = false;
    std::vector<std::uint32_t> still_active;
    std::vector<double> still_rates;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const std::uint32_t f = active[i];
      if (state[f].remaining <= 1e-6) {
        complete_flow(f);
        any_completed = true;
      } else {
        still_active.push_back(f);
        still_rates.push_back(rates[i]);
      }
    }
    if (any_completed) {
      active = std::move(still_active);
      rates = std::move(still_rates);
      reallocate();
    }
  }

  if (stats_out != nullptr) *stats_out = stats;
  return results;
}

std::vector<CoflowStats> coflow_completion_times(
    const Workload& flows, const std::vector<FluidFlowResult>& results) {
  if (flows.size() != results.size()) {
    throw std::invalid_argument("coflow stats: result size mismatch");
  }
  std::map<std::uint32_t, CoflowStats> groups;
  std::map<std::uint32_t, std::pair<double, double>> spans;  // start, finish
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].group == Flow::kNoGroup) continue;
    auto [it, inserted] = groups.try_emplace(flows[i].group);
    CoflowStats& g = it->second;
    auto [sit, sinserted] = spans.try_emplace(
        flows[i].group, std::pair{1e300, 0.0});
    if (inserted) {
      g.group = flows[i].group;
      g.completed = true;
    }
    ++g.flows;
    g.completed = g.completed && results[i].completed;
    sit->second.first = std::min(sit->second.first, results[i].start_s);
    sit->second.second = std::max(sit->second.second, results[i].finish_s);
  }
  std::vector<CoflowStats> out;
  out.reserve(groups.size());
  for (auto& [group, stats] : groups) {
    const auto& span = spans.at(group);
    stats.cct_s = stats.completed ? span.second - span.first : 0.0;
    out.push_back(stats);
  }
  return out;
}

std::vector<obs::FlowRecord> collect_flow_records(
    const Workload& flows, const std::vector<FluidFlowResult>& results) {
  if (flows.size() != results.size()) {
    throw std::invalid_argument("collect_flow_records: result size mismatch");
  }
  std::vector<obs::FlowRecord> records;
  records.reserve(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    obs::FlowRecord r;
    r.src = flows[i].src;
    r.dst = flows[i].dst;
    r.completed = results[i].completed;
    r.bytes = results[i].completed ? flows[i].bytes : 0.0;
    r.start_s = results[i].start_s;
    r.fct_s = results[i].completed ? results[i].fct_s() : 0.0;
    records.push_back(r);
  }
  return records;
}

}  // namespace flattree
