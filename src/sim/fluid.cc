#include "sim/fluid.h"

#include <algorithm>
#include <map>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "lp/mcf.h"

namespace flattree {
namespace {

// Resolves a flow's subflow paths into directed-edge index lists.
std::vector<std::vector<std::uint32_t>> resolve_paths(
    const LogicalTopology& topo, const PathProvider& provider, const Flow& f,
    std::uint32_t index) {
  const auto paths = provider(NodeId{f.src}, NodeId{f.dst}, index);
  if (paths.empty()) {
    throw std::logic_error("fluid: path provider returned no paths");
  }
  std::vector<std::vector<std::uint32_t>> edges;
  edges.reserve(paths.size());
  for (const Path& p : paths) edges.push_back(topo.path_edges(p));
  return edges;
}

}  // namespace

FluidSimulator::FluidSimulator(const Graph& graph, PathProvider provider,
                               FluidOptions options)
    : graph_{&graph},
      topology_{graph},
      provider_{std::move(provider)},
      options_{options} {}

std::vector<double> FluidSimulator::measure_rates(const Workload& flows) {
  McfInstance instance;
  instance.capacity.assign(topology_.directed_count(), 0.0);
  for (std::size_t e = 0; e < topology_.directed_count(); ++e) {
    instance.capacity[e] = topology_.capacity(static_cast<std::uint32_t>(e));
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    McfCommodity commodity;
    commodity.paths = resolve_paths(topology_, provider_, flows[i],
                                    static_cast<std::uint32_t>(i));
    instance.commodities.push_back(std::move(commodity));
  }
  return options_.rate_model == RateModel::kEqualSplit
             ? solve_equal_split_fill(instance).flow_rate
             : solve_max_min_fill(instance).flow_rate;
}

std::vector<FluidFlowResult> FluidSimulator::run(const Workload& flows) {
  struct FlowState {
    double remaining{0.0};
    std::uint32_t deps_remaining{0};
    double ready_time{0.0};  // latest dependency finish + dep delay
    bool released{false};
    bool active{false};
    std::vector<std::vector<std::uint32_t>> path_edges;
    std::vector<std::uint32_t> dependents;
  };

  std::vector<FlowState> state(flows.size());
  std::vector<FluidFlowResult> results(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].bytes <= 0) {
      throw std::invalid_argument("fluid run: flows must have bytes > 0");
    }
    state[i].remaining = flows[i].bytes;
    state[i].deps_remaining =
        static_cast<std::uint32_t>(flows[i].depends_on.size());
    state[i].ready_time = flows[i].start_s;
    for (std::uint32_t dep : flows[i].depends_on) {
      if (dep >= flows.size()) {
        throw std::invalid_argument("fluid run: dependency index out of range");
      }
      state[dep].dependents.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Arrival queue: (time, flow).
  using Arrival = std::pair<double, std::uint32_t>;
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> arrivals;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (state[i].deps_remaining == 0) {
      arrivals.emplace(flows[i].start_s, static_cast<std::uint32_t>(i));
    }
  }

  std::vector<std::uint32_t> active;
  std::vector<double> rates;  // parallel to `active`
  double now = 0.0;

  const auto reallocate = [&]() {
    McfInstance instance;
    instance.capacity.assign(topology_.directed_count(), 0.0);
    for (std::size_t e = 0; e < topology_.directed_count(); ++e) {
      instance.capacity[e] = topology_.capacity(static_cast<std::uint32_t>(e));
    }
    for (std::uint32_t f : active) {
      McfCommodity commodity;
      commodity.paths = state[f].path_edges;
      instance.commodities.push_back(std::move(commodity));
    }
    rates = options_.rate_model == RateModel::kEqualSplit
                ? solve_equal_split_fill(instance).flow_rate
                : solve_max_min_fill(instance).flow_rate;
  };

  const auto complete_flow = [&](std::uint32_t f) {
    results[f].completed = true;
    results[f].finish_s = now;
    state[f].active = false;
    for (std::uint32_t dep : state[f].dependents) {
      FlowState& ds = state[dep];
      if (ds.deps_remaining == 0) continue;  // defensive
      --ds.deps_remaining;
      ds.ready_time =
          std::max(ds.ready_time, now + flows[dep].dep_delay_s);
      if (ds.deps_remaining == 0) {
        arrivals.emplace(std::max(ds.ready_time, flows[dep].start_s), dep);
      }
    }
  };

  while (!active.empty() || !arrivals.empty()) {
    if (now > options_.max_time_s) break;

    // Admit every arrival due now (or the earliest future one if idle).
    if (active.empty() && !arrivals.empty()) {
      now = std::max(now, arrivals.top().first);
    }
    bool admitted = false;
    while (!arrivals.empty() && arrivals.top().first <= now + 1e-12) {
      const std::uint32_t f = arrivals.top().second;
      arrivals.pop();
      if (state[f].released) continue;
      state[f].released = true;
      state[f].active = true;
      state[f].path_edges = resolve_paths(topology_, provider_, flows[f], f);
      results[f].started = true;
      results[f].start_s = now;
      active.push_back(f);
      admitted = true;
    }
    if (admitted || rates.size() != active.size()) reallocate();

    // Time to next completion among active flows.
    double dt_complete = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (rates[i] > 0) {
        dt_complete =
            std::min(dt_complete, state[active[i]].remaining * 8.0 / rates[i]);
      }
    }
    double next_arrival = std::numeric_limits<double>::infinity();
    if (!arrivals.empty()) next_arrival = arrivals.top().first;

    if (!std::isfinite(dt_complete) && !std::isfinite(next_arrival)) {
      break;  // starved flows with no future arrivals: give up
    }

    double next_time = std::min(now + dt_complete, next_arrival);
    bool horizon_hit = false;
    if (next_time > options_.max_time_s) {
      next_time = options_.max_time_s;
      horizon_hit = true;
    }
    const double dt = next_time - now;
    // Drain bytes over [now, next_time].
    for (std::size_t i = 0; i < active.size(); ++i) {
      state[active[i]].remaining -= rates[i] * dt / 8.0;
    }
    now = next_time;
    if (horizon_hit) break;  // unfinished flows are reported as such

    // Retire completed flows.
    bool any_completed = false;
    std::vector<std::uint32_t> still_active;
    std::vector<double> still_rates;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const std::uint32_t f = active[i];
      if (state[f].remaining <= 1e-6) {
        complete_flow(f);
        any_completed = true;
      } else {
        still_active.push_back(f);
        still_rates.push_back(rates[i]);
      }
    }
    if (any_completed) {
      active = std::move(still_active);
      rates = std::move(still_rates);
      reallocate();
    }
  }

  return results;
}

std::vector<CoflowStats> coflow_completion_times(
    const Workload& flows, const std::vector<FluidFlowResult>& results) {
  if (flows.size() != results.size()) {
    throw std::invalid_argument("coflow stats: result size mismatch");
  }
  std::map<std::uint32_t, CoflowStats> groups;
  std::map<std::uint32_t, std::pair<double, double>> spans;  // start, finish
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].group == Flow::kNoGroup) continue;
    auto [it, inserted] = groups.try_emplace(flows[i].group);
    CoflowStats& g = it->second;
    auto [sit, sinserted] = spans.try_emplace(
        flows[i].group, std::pair{1e300, 0.0});
    if (inserted) {
      g.group = flows[i].group;
      g.completed = true;
    }
    ++g.flows;
    g.completed = g.completed && results[i].completed;
    sit->second.first = std::min(sit->second.first, results[i].start_s);
    sit->second.second = std::max(sit->second.second, results[i].finish_s);
  }
  std::vector<CoflowStats> out;
  out.reserve(groups.size());
  for (auto& [group, stats] : groups) {
    const auto& span = spans.at(group);
    stats.cct_s = stats.completed ? span.second - span.first : 0.0;
    out.push_back(stats);
  }
  return out;
}

}  // namespace flattree
