// Flow-level fluid simulator.
//
// Large-scale experiments (Figures 6-8) need flow completion times over
// thousands of flows on thousand-server topologies, where packet-level
// simulation is intractable (the paper used htsim on one topology size; we
// use packet-level simulation for the testbed-scale runs and this fluid
// model at scale). The fluid model assumes congestion control converges
// quickly to max-min fair rates at subflow granularity between flow arrival
// and departure events — the standard fluid approximation for
// MPTCP/TCP-fair networks. Each flow is split over the paths its routing
// scheme provides (k subflows for k-shortest-path + MPTCP, one path for
// ECMP + TCP); rates are recomputed by progressive filling at every arrival
// or departure.
//
// Dependencies (Flow::depends_on) gate flow release, which is how the
// application phase models (§5.4) express broadcast rounds and barriers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/capacity.h"
#include "net/graph.h"
#include "routing/path.h"
#include "traffic/flow.h"

namespace flattree {

// Supplies the subflow paths for a flow. Implementations typically wrap a
// PathCache (k-shortest-path routing) or an EcmpRouter (single hashed path).
using PathProvider =
    std::function<std::vector<Path>(NodeId src, NodeId dst,
                                    std::uint32_t flow_index)>;

struct FluidFlowResult {
  bool started{false};
  bool completed{false};
  double start_s{0.0};
  double finish_s{0.0};
  [[nodiscard]] double fct_s() const { return finish_s - start_s; }
};

// How per-flow rates derive from the flow's path set.
enum class RateModel : std::uint8_t {
  // Per-subflow max-min: every path ramps independently; the flow gets the
  // sum. Default — cheap enough to recompute per arrival/departure event,
  // and its biases apply equally to every topology being compared. (The
  // more faithful coupled-MPTCP model, solve_mptcp_model in lp/mcf.h,
  // embeds an LP and is reserved for the throughput-bound experiments.)
  kSubflow,
  // Equal-split flow-level max-min (static 1/k splitting).
  kEqualSplit,
};

struct FluidOptions {
  double max_time_s{1e6};  // simulation horizon; unfinished flows reported
  RateModel rate_model{RateModel::kSubflow};
};

// Coflow completion times over a simulated workload: for each flow group,
// the span from the earliest member start to the latest member finish (the
// application-level metric for shuffle jobs; see Flow::group).
[[nodiscard]] std::vector<CoflowStats> coflow_completion_times(
    const Workload& flows, const std::vector<FluidFlowResult>& results);

class FluidSimulator {
 public:
  FluidSimulator(const Graph& graph, PathProvider provider,
                 FluidOptions options = FluidOptions{});

  // Event-driven FCT simulation for finite flows (bytes > 0).
  [[nodiscard]] std::vector<FluidFlowResult> run(const Workload& flows);

  // Steady-state max-min rates (bits/s) for persistent flows: all flows
  // active simultaneously; returns the per-flow rate vector.
  [[nodiscard]] std::vector<double> measure_rates(const Workload& flows);

 private:
  const Graph* graph_;
  LogicalTopology topology_;
  PathProvider provider_;
  FluidOptions options_;
};

}  // namespace flattree
